package deeplake

// Integration tests exercising the public API end to end: the full ML loop
// of Fig 2 (ingest -> version -> query -> materialize -> stream) across
// storage providers.

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/storage"
	"repro/internal/workload"
)

func buildQuickstart(t testing.TB, store Provider, n int) *Dataset {
	t.Helper()
	ctx := context.Background()
	ds, err := Create(ctx, store, "it")
	if err != nil {
		t.Fatal(err)
	}
	images, err := ds.CreateTensor(ctx, TensorSpec{Name: "images", Htype: "image"})
	if err != nil {
		t.Fatal(err)
	}
	labels, err := ds.CreateTensor(ctx, TensorSpec{Name: "labels", Htype: "class_label"})
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.ImageSpec{Height: 32, Width: 32, Channels: 3, Seed: 2}
	for i := 0; i < n; i++ {
		if err := images.Append(ctx, spec.Image(i)); err != nil {
			t.Fatal(err)
		}
		if err := labels.Append(ctx, workload.Label(2, i, 4)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ds.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestFullMLLoop(t *testing.T) {
	ctx := context.Background()
	ds := buildQuickstart(t, NewMemoryStore(), 60)

	// Version.
	c1, err := ds.Commit(ctx, "raw data")
	if err != nil {
		t.Fatal(err)
	}

	// Query: class balance.
	v, err := Query(ctx, ds, `SELECT images, labels FROM it WHERE labels < 2 ARRANGE BY labels`)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() == 0 || !v.IsSparse() {
		t.Fatalf("view: len=%d sparse=%v", v.Len(), v.IsSparse())
	}

	// Materialize the curated subset.
	out, err := Materialize(ctx, v, NewMemoryStore(), "curated")
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != uint64(v.Len()) {
		t.Fatalf("materialized rows = %d, want %d", out.NumRows(), v.Len())
	}

	// Stream the curated set.
	loader := NewDatasetLoader(out, LoaderOptions{BatchSize: 8, Shuffle: true, Workers: 4, Seed: 3})
	rows := 0
	for b := range loader.Batches(ctx) {
		rows += len(b.Samples)
		for _, s := range b.Samples {
			if s["images"].NDim() != 3 {
				t.Fatalf("decoded image rank %d", s["images"].NDim())
			}
		}
	}
	if err := loader.Err(); err != nil {
		t.Fatal(err)
	}
	if rows != v.Len() {
		t.Fatalf("streamed %d rows, want %d", rows, v.Len())
	}

	// Time travel back to the first commit.
	old, err := ds.ReadAtVersion(ctx, c1)
	if err != nil {
		t.Fatal(err)
	}
	if old.NumRows() != 60 {
		t.Fatalf("rows at %s = %d", c1, old.NumRows())
	}
}

func TestPublicAPIOnSimulatedS3(t *testing.T) {
	ctx := context.Background()
	ds := buildQuickstart(t, NewS3SimStore(), 40)
	loader := NewDatasetLoader(ds, LoaderOptions{BatchSize: 8, Workers: 8})
	rows := 0
	for b := range loader.Batches(ctx) {
		rows += len(b.Samples)
	}
	if err := loader.Err(); err != nil {
		t.Fatal(err)
	}
	if rows != 40 {
		t.Fatalf("rows = %d", rows)
	}
}

func TestWithCacheExposesShardedStats(t *testing.T) {
	ctx := context.Background()
	s3 := NewS3SimStore()
	buildQuickstart(t, s3, 16)
	cached := WithCache(s3, CacheOptions{Capacity: 1 << 28, Shards: 4})
	ds, err := Open(ctx, cached)
	if err != nil {
		t.Fatal(err)
	}
	loader := NewDatasetLoader(ds, LoaderOptions{BatchSize: 4, Workers: 4})
	rows := 0
	for b := range loader.Batches(ctx) {
		rows += len(b.Samples)
	}
	if err := loader.Err(); err != nil {
		t.Fatal(err)
	}
	if rows != 16 {
		t.Fatalf("rows = %d", rows)
	}
	var stats CacheStats = cached.Stats()
	if len(stats.Shards) != 4 {
		t.Fatalf("shard stats = %d entries, want 4", len(stats.Shards))
	}
	if stats.Misses == 0 || stats.UsedBytes == 0 {
		t.Fatalf("stats = %+v, want traffic recorded", stats)
	}
}

func TestLRUCacheChainServesSecondEpoch(t *testing.T) {
	ctx := context.Background()
	s3 := NewS3SimStore()
	buildQuickstart(t, s3, 32)
	cached := WithLRUCache(s3, 1<<28)
	ds, err := Open(ctx, cached)
	if err != nil {
		t.Fatal(err)
	}
	for epoch := 0; epoch < 2; epoch++ {
		loader := NewDatasetLoader(ds, LoaderOptions{BatchSize: 8, Workers: 4})
		rows := 0
		for b := range loader.Batches(ctx) {
			rows += len(b.Samples)
		}
		if err := loader.Err(); err != nil {
			t.Fatal(err)
		}
		if rows != 32 {
			t.Fatalf("epoch %d rows = %d", epoch, rows)
		}
	}
}

func TestQueryWithWorkersMatchesSerial(t *testing.T) {
	ctx := context.Background()
	ds := buildQuickstart(t, NewMemoryStore(), 60)
	const q = `SELECT labels FROM it WHERE MEAN(images) >= 0 AND labels < 3 ORDER BY labels DESC`
	serial, err := QueryWith(ctx, ds, q, QueryOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := QueryWith(ctx, ds, q, QueryOptions{Workers: 16})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Len() == 0 || serial.Len() != parallel.Len() {
		t.Fatalf("rows: serial %d vs parallel %d", serial.Len(), parallel.Len())
	}
	for i, idx := range serial.Indices() {
		if parallel.Indices()[i] != idx {
			t.Fatalf("row %d: serial %d vs parallel %d", i, idx, parallel.Indices()[i])
		}
	}
	// DisablePushdown must not change results, only the IO strategy.
	full, err := QueryWith(ctx, ds, `SELECT * FROM it WHERE SHAPE(images)[0] == 32`, QueryOptions{DisablePushdown: true})
	if err != nil {
		t.Fatal(err)
	}
	if full.Len() != 60 {
		t.Fatalf("full scan rows = %d, want 60", full.Len())
	}
}

func TestExplainPublicAPI(t *testing.T) {
	plan, err := Explain(`SELECT images FROM x WHERE SHAPE(images)[0] > 100 LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	if plan == "" {
		t.Fatal("empty plan")
	}
	if _, err := Explain("SELECT FROM nothing"); err == nil {
		t.Fatal("malformed query should error")
	}
}

func TestArrayHelpers(t *testing.T) {
	a, err := FromFloat64s(Float32, []int{2, 2}, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := a.Slice(Range{Start: 0, Stop: 1})
	if err != nil || sub.Len() != 2 {
		t.Fatalf("slice = %v, %v", sub, err)
	}
	s := Scalar(Int32, 7)
	if v, _ := s.Item(); v != 7 {
		t.Fatalf("scalar = %v", v)
	}
	txt := FromString("hello")
	if txt.AsString() != "hello" {
		t.Fatal("string round trip")
	}
	if All() != (Range{Start: 0, Stop: End}) {
		t.Fatal("All() range")
	}
	z, err := NewArray(Float64, 3)
	if err != nil || z.Len() != 3 {
		t.Fatalf("NewArray = %v, %v", z, err)
	}
	raw, err := FromBytes(UInt8, []int{2}, []byte{1, 2})
	if err != nil || raw.Len() != 2 {
		t.Fatalf("FromBytes = %v, %v", raw, err)
	}
}

func TestFSStoreEndToEnd(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	store, err := NewFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ds := buildQuickstart(t, store, 10)
	if _, err := ds.Commit(ctx, "on disk"); err != nil {
		t.Fatal(err)
	}
	// Reopen from disk.
	store2, err := NewFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Open(ctx, store2)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 10 {
		t.Fatalf("reopened rows = %d", back.NumRows())
	}
	arr, err := back.Tensor("labels").At(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := workload.Label(2, 3, 4).Item()
	if got, _ := arr.Item(); got != want {
		t.Fatalf("labels[3] = %v, want %v", got, want)
	}
}

func ExampleQuery() {
	ctx := context.Background()
	ds, _ := Create(ctx, NewMemoryStore(), "ex")
	labels, _ := ds.CreateTensor(ctx, TensorSpec{Name: "labels", Htype: "class_label"})
	for i := 0; i < 6; i++ {
		labels.Append(ctx, Scalar(Int32, float64(i%2)))
	}
	v, _ := Query(ctx, ds, `SELECT labels FROM ex WHERE labels == 1`)
	fmt.Println(v.Len(), "rows")
	// Output: 3 rows
}

// TestProvisionNodeDerivesCapacities asserts the one-budget contract: the
// RAM cache, decoded-chunk cache, and disk tier built by ProvisionNode get
// exactly the NodeBudget's derived shares, and the provider chain actually
// works end to end.
func TestProvisionNodeDerivesCapacities(t *testing.T) {
	ctx := context.Background()
	budget := NodeBudget{MemoryBytes: 64 << 20, DiskBytes: 8 << 20}
	cache, node, err := ProvisionNode(NewMemoryStore(), t.TempDir(), budget)
	if err != nil {
		t.Fatal(err)
	}
	if got := cache.Capacity(); got != budget.LRUBytes() {
		t.Fatalf("RAM cache capacity = %d, want LRUBytes %d", got, budget.LRUBytes())
	}
	if got := node.Budget(); got != budget.DecodedBytes() {
		t.Fatalf("NodeCache budget = %d, want DecodedBytes %d", got, budget.DecodedBytes())
	}
	if sum := budget.LRUBytes() + budget.DecodedBytes(); sum != budget.MemoryBytes {
		t.Fatalf("memory shares sum to %d, want the full budget %d", sum, budget.MemoryBytes)
	}
	disk, ok := cache.Origin().(*storage.Disk)
	if !ok {
		t.Fatalf("chain below the RAM cache is %T, want the disk tier", cache.Origin())
	}
	if got := disk.Capacity(); got != budget.DiskBytes {
		t.Fatalf("disk tier capacity = %d, want DiskBytes %d", got, budget.DiskBytes)
	}

	// The provisioned chain serves a real dataset, and the loader accepts
	// the provisioned NodeCache.
	ds := buildQuickstart(t, cache, 8)
	l := NewDatasetLoader(ds, LoaderOptions{BatchSize: 4, Cache: node})
	n := 0
	for range l.Batches(ctx) {
		n++
	}
	if err := l.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("batches = %d, want 2", n)
	}

	// Empty cacheDir skips the disk tier.
	flat, _, err := ProvisionNode(NewMemoryStore(), "", NodeBudget{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := flat.Origin().(*storage.Disk); ok {
		t.Fatal("empty cacheDir should not build a disk tier")
	}
	if got := flat.Capacity(); got != int64(DefaultNodeMemoryBytes)*3/8 {
		t.Fatalf("default budget RAM capacity = %d", got)
	}
}
