// Package deeplake is a from-scratch Go reproduction of "Deep Lake: a
// Lakehouse for Deep Learning" (Hambardzumyan et al., CIDR 2023): a
// columnar dataset format for dynamically shaped tensors on object storage
// (the Tensor Storage Format), a streaming dataloader that keeps
// accelerators utilized over the network, an embedded Tensor Query Language,
// dataset version control, materialized views, parallel ingestion
// pipelines, and an htype-aware visualization engine.
//
// This root package is the public API; the subsystems live in internal
// packages and are re-exported here. A minimal session:
//
//	store := deeplake.NewMemoryStore()
//	ds, _ := deeplake.Create(ctx, store, "quickstart")
//	images, _ := ds.CreateTensor(ctx, deeplake.TensorSpec{Name: "images", Htype: "image"})
//	labels, _ := ds.CreateTensor(ctx, deeplake.TensorSpec{Name: "labels", Htype: "class_label"})
//	... append samples ...
//	ds.Commit(ctx, "first million")
//
//	view, _ := deeplake.Query(ctx, ds, `SELECT * FROM quickstart WHERE labels == 2`)
//	loader := deeplake.NewLoader(view, deeplake.LoaderOptions{BatchSize: 32, Shuffle: true})
//	for batch := range loader.Batches(ctx) { ... }
//
// # Caching and the concurrent read path
//
// The §3.6 provider chain — an in-memory cache in front of remote object
// storage — is built for many concurrent readers. WithLRUCache (or
// WithCache for explicit sizing) chains a cache whose entries are spread
// over mutex-striped shards, so parallel lookups do not serialize behind a
// single lock, and whose misses are read-coalesced: however many readers
// miss on the same object at the same moment, exactly one Get reaches the
// origin and every waiter shares its result. Stats (per-shard hits, misses,
// resident bytes, plus the coalesced-fetch count) are available from the
// concrete *storage.LRU via WithCache.
//
// The dataloader layers the same idea over decoded chunks: its chunk cache
// coalesces concurrent fetch+decode of one chunk across workers, and a
// readahead scheduler walks the chunk visit order a configurable number
// of chunks ahead (LoaderOptions.Readahead) so origin latency overlaps with
// decode and transform work. Run
//
//	go run ./cmd/benchfig readers
//
// to measure the aggregate throughput of 1/4/16 concurrent readers sharing
// one cache over simulated S3, and the hot-chunk coalescing guarantee.
//
// # One node budget for every cache tier
//
// Rather than sizing the raw-chunk RAM cache, the decoded-chunk NodeCache
// and the local-disk tier independently, give a node one budget and let
// the tiers derive their capacities from it:
//
//	budget := deeplake.NodeBudget{MemoryBytes: 8 << 30, DiskBytes: 100 << 30}
//	cache, node, _ := deeplake.ProvisionNode(origin, "/var/cache/deeplake", budget)
//	ds, _ := deeplake.Open(ctx, cache)
//	loader := deeplake.NewLoader(ds, deeplake.LoaderOptions{Cache: node})
//
// MemoryBytes splits 3/8 to the raw-chunk LRU and 5/8 to decoded chunks
// (the shares sum exactly; zero means DefaultNodeMemoryBytes), and
// DiskBytes bounds the disk tier. ProvisionNode assembles the whole
// RAM -> disk -> origin chain plus the shared NodeCache in one call; pass
// an empty cache directory to skip the disk tier.
//
// # The chunk-aligned streaming dataloader
//
// The training read path (§4.6) is a chunk-aligned pipeline on the scan
// machinery. Each epoch is planned before any worker starts: the primary
// tensor's chunk visit order is shuffled (chunk-granular shuffling, §3.5),
// optionally sharded disjointly across simulated nodes
// (LoaderOptions{Rank, WorldSize} — every rank uses the same Seed), and the
// delivery order is fixed by spilling rows through a bounded shuffle
// buffer. Workers then own chunk-aligned jobs and drain each chunk through
// reused scan readers backed by the loader's chunk cache, so a chunk is
// fetched and decoded exactly once per epoch per rank however many rows,
// columns or workers touch it — and because delivery order is precomputed,
// the batch stream is byte-identical for a fixed seed at any worker count.
// LoaderOptions.Epochs streams several epochs through one Batches call with
// per-epoch reshuffling; batches never straddle an epoch boundary and carry
// their Batch.Epoch label. A worker failure always surfaces through
// Loader.Err after the channel closes, deterministically for a
// deterministic fault. Run
//
//	go run ./cmd/benchfig train
//
// to measure the end-to-end train loop — a simulated GPU streaming from
// simulated S3 at 1/4/16 workers and 4 rank shards against the TFRecord
// and WebDataset read paths — with the decode-once and batch-determinism
// contracts enforced by the runner (add -json for a machine-readable
// BENCH_train.json).
//
// # The parallel TQL scan engine
//
// Queries execute on a chunk-partitioned parallel scanner (§4.4). The WHERE
// clause's leading run of shape-only conjuncts — built from
// SHAPE/NDIM/LEN/SIZE of tensor references — is answered from the shape
// encoder with zero chunk IO (pushdown), and the remainder is evaluated only
// over the pushdown's surviving rows, fanned out across
// QueryOptions.Workers along chunk boundaries. Each worker reuses one
// evaluation environment and decodes every chunk it owns exactly once;
// fetches of chunks shared between workers coalesce in the provider chain.
// Ahead of evaluation, a strip scheduler prefetches the driver tensor's
// chunks in fixed-width strips of the global visit order — strips cross
// partition boundaries, so chunks owned by different workers share one
// coalesced ranged origin request (QueryOptions.StripWidth tunes the
// width, PerPartitionPrefetch restores the old per-partition path for
// A/B runs, and Stats reports planned/claimed/skipped prefetches).
// Merges are positional, so results are byte-identical at any worker
// count. Run
//
//	go run ./cmd/benchfig tql
//
// to measure filter-scan throughput at 1/4/16 workers over simulated S3 and
// the pushdown's origin-request savings against a forced full scan.
//
// # The parallel ingestion engine
//
// The write path mirrors the read path's concurrency story. Appends to
// different tensors of one dataset run concurrently: sample validation and
// encoding (htype checks, media codecs) happen outside every lock, each
// tensor guards its own chunk builder and index encoders with a private
// lock, and only a narrow dataset-level critical section remains for
// row-count and version metadata. Sealed chunks leave the builders through
// a background flush pipeline — a bounded queue drained by
// WriteOptions.FlushWorkers concurrent uploads — so appends never stall on
// object-store Put latency:
//
//	ds.SetWriteOptions(deeplake.WriteOptions{FlushWorkers: 16, MaxPending: 32})
//	... concurrent Append / AppendBatch / transform.Pipeline.Eval ...
//	ds.Flush(ctx) // barrier: drains the pipeline, then persists metadata
//
// Flush and Commit act as barriers: every queued chunk lands before any
// metadata that references it is persisted, upload errors (including
// context cancellation) surface there, and the stored objects are
// byte-identical to the serial path at every worker count — only the upload
// order differs. Transform pipelines (ETL ingestion) and view
// materialization write through the same engine by default. Run
//
//	go run ./cmd/benchfig ingest
//
// to measure 1/4/16-writer ingest throughput over simulated S3 against the
// TFRecord and WebDataset baselines.
package deeplake

import (
	"context"

	"repro/internal/core"
	"repro/internal/dataloader"
	"repro/internal/simnet"
	"repro/internal/storage"
	"repro/internal/tensor"
	"repro/internal/tql"
	"repro/internal/view"
)

// Re-exported core types. See the internal packages for full documentation.
type (
	// Dataset is an open Deep Lake dataset (§3, §4).
	Dataset = core.Dataset
	// Tensor is one typed column of a dataset (§3.2).
	Tensor = core.Tensor
	// TensorSpec declares a new tensor column.
	TensorSpec = core.TensorSpec
	// TensorMeta is persisted tensor metadata.
	TensorMeta = core.TensorMeta

	// NDArray is the in-memory n-dimensional array samples travel as.
	NDArray = tensor.NDArray
	// Dtype enumerates element types.
	Dtype = tensor.Dtype
	// Range selects [Start, Stop) along one axis.
	Range = tensor.Range

	// View is an ordered row selection with output columns (§4.4-4.5).
	View = view.View
	// Column is one output column of a view.
	Column = view.Column
	// Resolver fetches linked-tensor URLs (§4.5).
	Resolver = view.Resolver

	// Loader streams batches from a view (§4.6) on the chunk-aligned
	// pipeline: chunk-granular shuffling, distributed sharding
	// (Rank/WorldSize), multi-epoch streaming, and worker-count-
	// independent batch bytes.
	Loader = dataloader.Loader
	// LoaderOptions configures a Loader.
	LoaderOptions = dataloader.Options
	// Batch is one collated batch (Epoch labels the epoch it belongs to).
	Batch = dataloader.Batch

	// Provider is the pluggable storage contract (§3.6).
	Provider = storage.Provider

	// MergePolicy resolves merge conflicts (§4.2).
	MergePolicy = core.MergePolicy

	// WriteOptions configures the parallel ingestion engine: sealed chunks
	// upload through FlushWorkers concurrent background Puts with at most
	// MaxPending chunks in flight. The zero value is the synchronous
	// serial write path. Apply with Dataset.SetWriteOptions; Flush/Commit
	// drain the pipeline before persisting metadata.
	WriteOptions = core.WriteOptions

	// MaterializeOptions configures MaterializeWith (§4.5), including the
	// destination's WriteOptions.
	MaterializeOptions = view.MaterializeOptions
)

// Dtype constants.
const (
	Bool    = tensor.Bool
	UInt8   = tensor.UInt8
	UInt16  = tensor.UInt16
	UInt32  = tensor.UInt32
	UInt64  = tensor.UInt64
	Int8    = tensor.Int8
	Int16   = tensor.Int16
	Int32   = tensor.Int32
	Int64   = tensor.Int64
	Float32 = tensor.Float32
	Float64 = tensor.Float64
)

// Merge policies.
const (
	MergeOurs   = core.MergeOurs
	MergeTheirs = core.MergeTheirs
)

// Create initializes an empty dataset on a provider.
func Create(ctx context.Context, store Provider, name string) (*Dataset, error) {
	return core.Create(ctx, store, name)
}

// Open loads an existing dataset at its current branch head.
func Open(ctx context.Context, store Provider) (*Dataset, error) {
	return core.Open(ctx, store)
}

// Query parses and executes a TQL statement against a dataset (§4.4),
// returning the result view. Execution runs on the chunk-partitioned
// parallel scan engine with default options; see QueryWith to tune it.
func Query(ctx context.Context, ds *Dataset, src string) (*View, error) {
	return tql.Run(ctx, ds, src)
}

// ScanStats accumulates prefetch observability counters for TQL execution:
// chunks planned/claimed/skipped by the strip scheduler, failed prefetch
// rounds, and strips issued. Pass a pointer via QueryOptions.Stats; the
// same instance may accumulate across queries. Shed coalesced fetches are
// counted cache-side in CacheStats.PrefetchShed.
type ScanStats = tql.ScanStats

// QueryOptions tunes TQL execution.
type QueryOptions struct {
	// Workers bounds the parallel scan width used by WHERE evaluation and
	// by sort/group/arrange/sample key evaluation. Zero uses GOMAXPROCS; 1
	// forces a serial scan. Results are identical for every worker count.
	Workers int
	// DisablePushdown forces shape-only filters through the data-touching
	// evaluator instead of answering them from the shape encoder. It
	// exists to measure (and cross-check) what the pushdown saves; leave
	// it false in production.
	DisablePushdown bool
	// PerPartitionPrefetch reverts the scan's chunk prefetch to the legacy
	// one-batch-per-partition shape instead of cross-partition strips. It
	// exists as the A/B baseline for measuring what strips save; leave it
	// false in production.
	PerPartitionPrefetch bool
	// StripWidth bounds the chunks per prefetch strip; zero uses
	// tql.DefaultStripWidth (16).
	StripWidth int
	// Stats, when non-nil, accumulates the scan's prefetch counters.
	Stats *ScanStats
}

// QueryWith is Query with explicit execution options: the WHERE clause's
// leading shape-only conjuncts are answered by the shape encoder with zero
// chunk IO, and the remainder is evaluated across a bounded worker pool
// over chunk-aligned row partitions. Ahead of the workers, a strip
// scheduler hands the provider chain fixed-width runs of the scan's global
// chunk order, so chunks owned by different workers still share coalesced
// ranged origin requests.
func QueryWith(ctx context.Context, ds *Dataset, src string, opts QueryOptions) (*View, error) {
	return tql.RunWith(ctx, ds, src, tql.Options{
		Workers:              opts.Workers,
		DisablePushdown:      opts.DisablePushdown,
		PerPartitionPrefetch: opts.PerPartitionPrefetch,
		StripWidth:           opts.StripWidth,
		Stats:                opts.Stats,
	})
}

// Explain parses a TQL statement and renders its logical plan.
func Explain(src string) (string, error) {
	q, err := tql.Parse(src)
	if err != nil {
		return "", err
	}
	plan, err := tql.Compile(q)
	if err != nil {
		return "", err
	}
	return plan.Explain(), nil
}

// NewLoader builds a streaming dataloader over a view.
func NewLoader(v *View, opts LoaderOptions) *Loader { return dataloader.New(v, opts) }

// NewDatasetLoader streams all complete rows of a dataset.
func NewDatasetLoader(ds *Dataset, opts LoaderOptions) *Loader {
	return dataloader.ForDataset(ds, opts)
}

// AllRows returns the identity view over a dataset.
func AllRows(ds *Dataset) *View { return view.All(ds) }

// NewView builds a view over explicit row indices; nil columns selects all
// visible tensors.
func NewView(ds *Dataset, indices []uint64, columns []Column) *View {
	return view.New(ds, indices, columns)
}

// Materialize writes a view into a fresh dataset with an optimal streaming
// layout (§4.5). Chunk uploads overlap row evaluation through the
// destination's flush pipeline; see MaterializeWith to tune or disable it.
func Materialize(ctx context.Context, v *View, dst Provider, name string) (*Dataset, error) {
	return view.Materialize(ctx, v, dst, view.MaterializeOptions{Name: name})
}

// MaterializeWith is Materialize with explicit options: commit message and
// the destination dataset's write pipeline (WriteOptions).
func MaterializeWith(ctx context.Context, v *View, dst Provider, opts MaterializeOptions) (*Dataset, error) {
	return view.Materialize(ctx, v, dst, opts)
}

// NewResolver builds a linked-tensor resolver.
func NewResolver() *Resolver { return view.NewResolver() }

// LinkedColumn builds a view column that resolves a link[image] tensor.
func LinkedColumn(name string, t *Tensor, r *Resolver) Column {
	return view.LinkedColumn(name, t, r)
}

// Storage constructors.

// NewMemoryStore returns an in-process provider.
func NewMemoryStore() Provider { return storage.NewMemory() }

// NewFSStore returns a provider rooted at a local directory.
func NewFSStore(dir string) (Provider, error) { return storage.NewFS(dir) }

// NewS3SimStore returns an in-process object store behaving like an S3
// bucket in the same region (latency/bandwidth simulated; §6 evaluation
// substrate).
func NewS3SimStore() Provider { return storage.NewSimObjectStore(simnet.S3SameRegion()) }

// NewS3CrossRegionSimStore simulates a cross-region bucket (Fig 10 setup).
func NewS3CrossRegionSimStore() Provider {
	return storage.NewSimObjectStore(simnet.S3CrossRegion())
}

// NewMinIOSimStore simulates MinIO on a local network (Fig 8 setup).
func NewMinIOSimStore() Provider { return storage.NewSimObjectStore(simnet.MinIOLAN()) }

// WithLRUCache chains an in-memory LRU cache of the given byte capacity in
// front of a slower provider (§3.6). The cache is sharded and
// read-coalescing; see WithCache to control the shard count or to keep the
// concrete type for stats.
func WithLRUCache(origin Provider, capacity int64) Provider {
	return storage.NewLRU(origin, capacity)
}

// CacheOptions sizes the provider-chain cache.
type CacheOptions struct {
	// Capacity is the total byte budget, split evenly across shards.
	Capacity int64
	// Shards is the number of mutex-striped shards. Zero picks a count
	// scaled to Capacity (one shard per 16MB, at most
	// storage.DefaultShards) so per-shard capacity always fits full-size
	// chunks. One shard gives globally exact LRU ordering; more shards
	// trade eviction precision for lookup concurrency, and objects larger
	// than Capacity/Shards bypass the cache.
	Shards int
}

// CacheStats reports cache counters: aggregate and per-shard hits, misses,
// and resident bytes, plus how many fetches were coalesced into another
// reader's in-flight origin Get.
type CacheStats = storage.Stats

// WithCache chains a sharded, read-coalescing in-memory cache in front of a
// slower provider. The returned *storage.LRU implements Provider and
// exposes Stats().
func WithCache(origin Provider, opts CacheOptions) *storage.LRU {
	if opts.Shards <= 0 {
		return storage.NewLRU(origin, opts.Capacity)
	}
	return storage.NewShardedLRU(origin, opts.Capacity, opts.Shards)
}

// RetryOptions configures the resilience layer of the provider chain:
// attempts per operation, capped exponential backoff with deterministic
// seeded jitter, a per-attempt timeout, and a lifetime retry budget.
type RetryOptions = storage.RetryOptions

// WithRetry wraps a provider so transient failures (storage.IsRetryable:
// errors marked storage.ErrTransient, or the wrapper's own per-attempt
// timeout firing) are re-attempted under capped exponential backoff.
// Context cancellation and missing keys are never retried. Stack it below
// WithCache — cache over retry over origin — so a miss coalesced across N
// readers is retried once for all of them, and the cache's Stats() then
// reports the retry count.
func WithRetry(origin Provider, opts RetryOptions) *storage.Retry {
	return storage.NewRetry(origin, opts)
}

// VerifyOptions configures the integrity layer: heal attempts per corrupted
// read and the quarantine threshold for keys that keep failing.
type VerifyOptions = storage.VerifyOptions

// WithVerify wraps a provider with CRC32C verify-on-read and self-healing
// re-fetch. Digests are recorded on every Put and seeded from the dataset's
// chunk checksum manifests automatically at Open. Stack it between WithCache
// and WithRetry — cache over verify over retry over origin — so a poisoned
// transfer is detected before it enters the cache, healed with one re-fetch
// for all coalesced waiters, and the cache's Stats() then reports
// CorruptionsDetected/CorruptionsRepaired/Quarantined.
func WithVerify(origin Provider, opts VerifyOptions) *storage.Verify {
	return storage.NewVerify(origin, opts)
}

// DiskTierOptions configures the local-disk cache tier; see WithDiskTier.
type DiskTierOptions = storage.DiskOptions

// DiskTierStats reports a disk tier's counters: hits (with the warm-start
// subset ledgered separately as WarmHits), misses, evictions, detected
// corruptions, and the resident population. Also surfaced through the RAM
// cache's CacheStats.Disk when the tier sits under a WithCache layer.
type DiskTierStats = storage.DiskStats

// WithDiskTier chains a local-disk cache at dir between the in-memory cache
// and the origin, completing the §3.6 storage hierarchy: RAM over local
// disk over (remote) origin —
//
//	disk, _ := deeplake.WithDiskTier(origin, "/tmp/dl-cache", deeplake.DiskTierOptions{})
//	cache := deeplake.WithLRUCache(disk, 1<<30)
//
// The tier persists fetched objects under dir (atomically, crash-safely)
// and indexes whatever a previous process left there, so a restarted
// training job starts warm: chunks the killed run already paid origin round
// trips for are served from local disk, ledgered as WarmHits. Reads from
// disk are CRC32C-verified against digests seeded from the dataset's chunk
// checksum manifests at Open; a file corrupted while the process was down
// is deleted and transparently re-fetched from the origin.
func WithDiskTier(origin Provider, dir string, opts DiskTierOptions) (*storage.Disk, error) {
	return storage.NewDisk(origin, dir, opts)
}

// NodeCache is a node-level decoded-chunk cache shared between Loaders via
// LoaderOptions.Cache: every rank's loader colocated on one node reads
// through it, so a chunk shared between ranks is fetched and decoded once
// per NODE per epoch instead of once per rank (§3.5's buffer cache at node
// scope). Entries are keyed by dataset + commit + tensor + chunk, so
// loaders over different datasets or commits share one cache safely, and
// chunks with outstanding planned jobs are pinned against eviction so a
// tight budget never forces a silent re-decode. NodeCache.Stats reports the
// node-level counters.
type NodeCache = dataloader.NodeCache

// NodeCacheStats is a point-in-time copy of a NodeCache's counters.
type NodeCacheStats = dataloader.NodeCacheStats

// NewNodeCache builds a shared decoded-chunk cache with the given byte
// budget (<=0 means the loader default, 256MB):
//
//	node := deeplake.NewNodeCache(1 << 30)
//	for rank := 0; rank < 4; rank++ {
//		loaders[rank] = deeplake.NewLoader(v, deeplake.LoaderOptions{
//			Rank: rank, WorldSize: 4, Cache: node,
//		})
//	}
func NewNodeCache(budget int64) *NodeCache { return dataloader.NewNodeCache(budget) }

// NodeBudget is the single capacity knob for a training node's cache
// hierarchy. Instead of sizing the raw-chunk RAM LRU, the decoded-chunk
// NodeCache, and the local-disk tier independently (and over-committing the
// machine three times), declare what the node actually has:
//
//	cache, node, _ := deeplake.ProvisionNode(origin, "/tmp/dl-cache",
//		deeplake.NodeBudget{MemoryBytes: 8 << 30, DiskBytes: 100 << 30})
//
// MemoryBytes splits 3/8 to the raw-chunk LRU and 5/8 to the decoded-chunk
// cache (decode inflates payloads and re-decoding is the costlier miss);
// DiskBytes bounds the disk tier (zero = 4GB default, negative =
// unbounded). The split is a derivation of defaults — callers needing
// asymmetric tiers keep using WithCache/NewNodeCache/WithDiskTier directly.
type NodeBudget = storage.NodeBudget

// DefaultNodeMemoryBytes is the memory budget assumed when
// NodeBudget.MemoryBytes is unset (1GB).
const DefaultNodeMemoryBytes = storage.DefaultNodeMemoryBytes

// ProvisionNode derives a node's cache hierarchy from one NodeBudget: a
// sharded read-coalescing RAM cache (budget.LRUBytes) over an optional
// local-disk tier at cacheDir (budget.DiskCapacity; empty cacheDir skips
// the tier) over origin, plus a NodeCache (budget.DecodedBytes) to share
// between the node's Loaders via LoaderOptions.Cache. The returned
// *storage.LRU is the provider to Open datasets through.
func ProvisionNode(origin Provider, cacheDir string, budget NodeBudget) (*storage.LRU, *NodeCache, error) {
	chain := origin
	if cacheDir != "" {
		disk, err := storage.NewDisk(origin, cacheDir, storage.DiskOptions{Capacity: budget.DiskCapacity()})
		if err != nil {
			return nil, nil, err
		}
		chain = disk
	}
	return storage.NewLRU(chain, budget.LRUBytes()), dataloader.NewNodeCache(budget.DecodedBytes()), nil
}

// Fsck types, re-exported for integrity tooling.
type (
	// FsckOptions selects fsck behavior (Repair collects garbage and
	// rewrites torn metadata).
	FsckOptions = core.FsckOptions
	// FsckReport is the outcome of a consistency walk.
	FsckReport = core.FsckReport
	// FsckIssue is one finding: kind, exact object key, detail.
	FsckIssue = core.FsckIssue
	// IntegrityInfo summarizes an open handle's integrity state (commit
	// generation, abandoned staged generations, checksum coverage).
	IntegrityInfo = core.IntegrityInfo
)

// Fsck walks a dataset's manifest against its stored objects: missing
// chunks, orphaned blobs from dead generations, checksum mismatches, torn
// metadata. With opts.Repair it rewrites torn metadata from the published
// root snapshot and deletes the garbage; missing or corrupt data is
// reported but never repairable.
func Fsck(ctx context.Context, store Provider, opts FsckOptions) (*FsckReport, error) {
	return core.Fsck(ctx, store, opts)
}

// Array constructors.

// NewArray allocates a zeroed array.
func NewArray(d Dtype, shape ...int) (*NDArray, error) { return tensor.New(d, shape...) }

// FromBytes wraps a raw buffer as an array.
func FromBytes(d Dtype, shape []int, data []byte) (*NDArray, error) {
	return tensor.FromBytes(d, shape, data)
}

// FromFloat64s builds an array from float64 values.
func FromFloat64s(d Dtype, shape []int, values []float64) (*NDArray, error) {
	return tensor.FromFloat64s(d, shape, values)
}

// Scalar wraps one value as a 0-d array.
func Scalar(d Dtype, v float64) *NDArray { return tensor.Scalar(d, v) }

// FromString encodes a string as a text sample.
func FromString(s string) *NDArray { return tensor.FromString(s) }

// All selects an entire axis in a Slice call.
func All() Range { return tensor.All() }

// End marks an open upper bound in a Range.
const End = tensor.End
