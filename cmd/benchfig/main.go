// Command benchfig regenerates the paper's evaluation figures (§6) as text
// tables: Fig 6 (ingestion across formats), Fig 7 (local dataloaders),
// Fig 8 (storage locations), Fig 9 (ImageNet training modes on S3), Fig 10
// (distributed CLIP-like training utilization), plus the ablation sweeps
// and the subsystem scenarios (concurrent readers, TQL scan, parallel
// ingest, end-to-end train loop).
//
// With -json, every scenario additionally writes a machine-readable
// BENCH_<scenario>.json (series rows plus config) under -json-dir, so the
// perf trajectory is recorded per PR.
//
// Usage:
//
//	benchfig [-n N] [-workers W] [-side PX] [-json [-json-dir DIR]] \
//	         [-fetch-batch CHUNKS] [-autotune-cap BYTES] [-ranks R] \
//	         [fig6|fig7|fig8|fig9|fig10|readers|tql|ingest|train|ablations|all]
//
// The absolute-throughput knobs (train scenario):
//
//   - -fetch-batch sets how many upcoming chunks the readahead scheduler
//     hands to the storage fetch planner per strip; near-adjacent chunks
//     coalesce into single batched ranged origin requests. 0 keeps the
//     scenario default (32); negative disables batching, restoring
//     one-request-per-chunk for A/B comparison.
//   - -autotune-cap sets the ingest chunk-size autotuner's ceiling in bytes.
//     The train scenario ingests under deliberately pathological static
//     bounds and lets the autotuner grow chunks toward this cap; 0 keeps
//     the scenario default (16KiB at toy scale), negative disables the
//     autotuner entirely to measure the untuned layout.
//   - -ranks sets how many rank-sharded loaders run colocated on one
//     simulated node, all sharing one node-level decoded-chunk cache; the
//     runner asserts each shared chunk is fetched+decoded once per NODE
//     (not once per rank), and a kill+reopen pass over the local-disk tier
//     must show a nonzero warm-start hit rate with byte-identical batches.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

type runner struct {
	name string
	def  int // default N at CLI scale
	fn   func(context.Context, bench.Config) (*bench.Result, error)
}

func main() {
	n := flag.Int("n", 0, "sample count (0 = per-figure default)")
	workers := flag.Int("workers", 8, "loader/ingest parallelism")
	side := flag.Int("side", 0, "override synthetic image edge length (0 = figure default)")
	seed := flag.Int64("seed", 1, "workload seed")
	fetchBatch := flag.Int("fetch-batch", 0, "train: chunks per coalesced prefetch strip (0 = default 32, negative disables batching)")
	autotuneCap := flag.Int("autotune-cap", 0, "train: ingest chunk autotuner cap in bytes (0 = default, negative disables)")
	ranks := flag.Int("ranks", 0, "train: same-node rank loaders sharing one node-level chunk cache (0 = default 4); the runner enforces per-node decode-once across them")
	jsonOut := flag.Bool("json", false, "write BENCH_<scenario>.json with the measured series")
	jsonDir := flag.String("json-dir", ".", "directory for -json output")
	flag.Parse()

	targets := flag.Args()
	if len(targets) == 0 {
		targets = []string{"all"}
	}

	runners := []runner{
		{"fig6", 64, bench.Fig6Ingestion},
		{"fig7", 2000, bench.Fig7LocalLoaders},
		{"fig8", 800, bench.Fig8StorageLocations},
		{"fig9", 600, bench.Fig9ImageNetCloud},
		{"fig10", 2048, bench.Fig10DistributedCLIP},
		{"readers", 384, bench.ConcurrentReaders},
		{"tql", 384, bench.TQLScan},
		{"ingest", 384, bench.IngestThroughput},
		{"train", 384, bench.TrainStream},
		{"chaos", 384, bench.Chaos},
	}
	ablations := []runner{
		{"ablation-chunksize", 400, bench.AblationChunkSize},
		{"ablation-shufflebuffer", 1000, bench.AblationShuffleBuffer},
		{"ablation-workers", 800, bench.AblationWorkers},
		{"ablation-versiondepth", 50, bench.AblationVersionDepth},
		{"ablation-sparseviews", 600, bench.AblationSparseViews},
		{"ablation-cache", 600, bench.AblationCacheEpochs},
	}

	want := map[string]bool{}
	for _, t := range targets {
		want[t] = true
	}
	run := func(r runner) {
		cfg := bench.Config{
			N: *n, Workers: *workers, ImageSide: *side, Seed: *seed,
			FetchBatch: *fetchBatch, AutotuneCapBytes: *autotuneCap, Ranks: *ranks,
		}
		if cfg.N == 0 {
			cfg.N = r.def
		}
		start := time.Now()
		res, err := r.fn(context.Background(), cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.name, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		fmt.Print(res.Format())
		fmt.Printf("  (completed in %s)\n\n", elapsed.Round(time.Millisecond))
		if *jsonOut {
			path, err := res.WriteJSON(*jsonDir, cfg, elapsed)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: writing json: %v\n", r.name, err)
				os.Exit(1)
			}
			fmt.Printf("  wrote %s\n\n", path)
		}
	}
	for _, r := range runners {
		if want["all"] || want[r.name] {
			run(r)
		}
	}
	for _, r := range ablations {
		if want["all"] || want["ablations"] || want[r.name] {
			run(r)
		}
	}
}
