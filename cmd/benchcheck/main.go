// Command benchcheck compares freshly measured BENCH_<scenario>.json reports
// (written by cmd/benchfig -json) against checked-in baselines and fails when
// any series row regressed beyond tolerance, so the perf trajectory the bench
// scenarios record is enforced in CI rather than just archived.
//
// A row regresses when its value moves against the report's Better direction
// by more than the tolerance fraction: for "higher" rows, current <
// baseline*(1-tol); for "lower" rows, current > baseline*(1+tol). A row
// present in the baseline but missing from the current report fails (a
// silently dropped measurement is a regression of coverage); rows new in the
// current report are reported but pass, pending a baseline refresh.
//
// Usage:
//
//	benchcheck [-baseline DIR] [-tolerance FRAC] [-tolerance-for id=FRAC]... \
//	           BENCH_a.json [BENCH_b.json ...]
//
// Refresh baselines with -update-baselines: instead of checking, each given
// report is rewritten into the baseline directory as BENCH_<id>.json
// (normalised, sorted keys), ready to commit. Use after an intentional perf
// change so the gate tracks the new level instead of the stale one.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/bench"
)

func main() {
	baselineDir := flag.String("baseline", "ci/baselines", "directory holding baseline BENCH_<id>.json files")
	update := flag.Bool("update-baselines", false, "rewrite the baseline files from the given reports instead of checking")
	tolerance := flag.Float64("tolerance", 0.25, "allowed regression fraction")
	perScenario := map[string]float64{}
	flag.Func("tolerance-for", "per-scenario tolerance override, id=FRAC (repeatable)", func(s string) error {
		id, frac, ok := strings.Cut(s, "=")
		if !ok {
			return fmt.Errorf("want id=FRAC, got %q", s)
		}
		v, err := strconv.ParseFloat(frac, 64)
		if err != nil {
			return err
		}
		perScenario[id] = v
		return nil
	})
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "benchcheck: no reports given")
		os.Exit(2)
	}
	failed := false
	for _, path := range flag.Args() {
		cur, err := readReport(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %s: %v\n", path, err)
			failed = true
			continue
		}
		basePath := filepath.Join(*baselineDir, "BENCH_"+cur.ID+".json")
		if *update {
			if err := writeBaseline(basePath, cur); err != nil {
				fmt.Fprintf(os.Stderr, "benchcheck: %s: %v\n", basePath, err)
				failed = true
				continue
			}
			fmt.Printf("updated %s (%d rows from %s)\n", basePath, len(cur.Rows), path)
			continue
		}
		base, err := readReport(basePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %s: no baseline (%v) — run benchfig -json -json-dir %s to create one\n",
				path, err, *baselineDir)
			failed = true
			continue
		}
		tol := *tolerance
		if v, ok := perScenario[cur.ID]; ok {
			tol = v
		}
		if !check(cur, base, tol) {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// writeBaseline normalises a report through the bench.Report type (so stray
// fields in a hand-edited file don't survive) and writes it where the checker
// will look for it.
func writeBaseline(path string, rep *bench.Report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func readReport(path string) (*bench.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep bench.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	if rep.ID == "" {
		return nil, fmt.Errorf("%s: report has no id", path)
	}
	return &rep, nil
}

// check compares one report against its baseline, printing a verdict per
// row, and reports whether the scenario passed.
func check(cur, base *bench.Report, tol float64) bool {
	current := map[string]bench.Row{}
	for _, row := range cur.Rows {
		current[row.Name] = row
	}
	ok := true
	fmt.Printf("== %s (better: %s, tolerance %.0f%%, baseline n=%d) ==\n", cur.ID, base.Better, tol*100, base.N)
	for _, want := range base.Rows {
		got, found := current[want.Name]
		if !found {
			fmt.Printf("  FAIL %-28s missing from current report (baseline %.3f %s)\n", want.Name, want.Value, want.Unit)
			ok = false
			continue
		}
		delete(current, want.Name)
		if regressed(base.Better, got.Value, want.Value, tol) {
			fmt.Printf("  FAIL %-28s %.3f %s vs baseline %.3f (%+.1f%%, %s is better)\n",
				want.Name, got.Value, got.Unit, want.Value, pct(got.Value, want.Value), base.Better)
			ok = false
			continue
		}
		fmt.Printf("  ok   %-28s %.3f %s vs baseline %.3f (%+.1f%%)\n",
			want.Name, got.Value, got.Unit, want.Value, pct(got.Value, want.Value))
	}
	for name, row := range current {
		fmt.Printf("  new  %-28s %.3f %s (not in baseline; refresh baselines to gate it)\n", name, row.Value, row.Unit)
	}
	return ok
}

// regressed reports whether value moved against the better direction past
// the tolerance fraction of the baseline.
func regressed(better string, got, want, tol float64) bool {
	if better == "lower" {
		return got > want*(1+tol)
	}
	return got < want*(1-tol)
}

func pct(got, want float64) float64 {
	if want == 0 {
		return 0
	}
	return (got/want - 1) * 100
}
