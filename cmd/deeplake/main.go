// Command deeplake is the CLI for Deep Lake datasets on local filesystem
// storage: create datasets, add tensors, ingest synthetic or CSV data,
// inspect, run TQL queries, and drive version control (commit, checkout,
// branch, log, diff, merge) — the workflows of §4 and §5.
//
// Usage:
//
//	deeplake create  -path DIR -name NAME
//	deeplake info    -path DIR
//	deeplake tensor  -path DIR -tensor NAME [-htype H] [-dtype D]
//	deeplake ingest  -path DIR -csv FILE [-commit MSG]
//	deeplake synth   -path DIR -n N [-side PX]         (synthetic images+labels)
//	deeplake query   -path DIR -q "SELECT ..." [-explain]
//	deeplake commit  -path DIR -m MESSAGE
//	deeplake checkout -path DIR -ref REF [-create]
//	deeplake log     -path DIR
//	deeplake branch  -path DIR
//	deeplake diff    -path DIR -a REF -b REF
//	deeplake merge   -path DIR -from BRANCH [-theirs]
//	deeplake fsck    -path DIR [-repair]
//
// fsck walks the manifest against stored objects — missing chunks, orphaned
// blobs from dead generations, checksum mismatches, torn metadata — and
// exits non-zero when the dataset is not clean. With -repair it rewrites
// torn metadata from the published root snapshot and collects the garbage;
// missing or corrupt data is reported but cannot be repaired.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/connector"
	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/tensor"
	"repro/internal/tql"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	var (
		path    = fs.String("path", "", "dataset directory")
		name    = fs.String("name", "dataset", "dataset name (create)")
		tname   = fs.String("tensor", "", "tensor name")
		htype   = fs.String("htype", "", "tensor htype")
		dtype   = fs.String("dtype", "", "tensor dtype")
		csvPath = fs.String("csv", "", "csv file to ingest")
		commit  = fs.String("commit", "", "commit message after ingest")
		n       = fs.Int("n", 100, "synthetic sample count")
		side    = fs.Int("side", 64, "synthetic image edge length")
		q       = fs.String("q", "", "TQL query")
		explain = fs.Bool("explain", false, "print the query plan instead of executing")
		msg     = fs.String("m", "", "commit message")
		ref     = fs.String("ref", "", "branch or commit ref")
		create  = fs.Bool("create", false, "create the branch on checkout")
		refA    = fs.String("a", "", "diff: left ref")
		refB    = fs.String("b", "", "diff: right ref")
		from    = fs.String("from", "", "merge: source branch")
		theirs  = fs.Bool("theirs", false, "merge: prefer source on conflict")
		repair  = fs.Bool("repair", false, "fsck: repair what can be repaired")
	)
	fs.Parse(os.Args[2:])
	if *path == "" {
		fatal("missing -path")
	}
	ctx := context.Background()
	store, err := storage.NewFS(*path)
	if err != nil {
		fatal("%v", err)
	}

	switch cmd {
	case "create":
		ds, err := core.Create(ctx, store, *name)
		check(err)
		check(ds.Flush(ctx))
		fmt.Printf("created dataset %q at %s (branch %s)\n", *name, *path, ds.Branch())

	case "info":
		ds := open(ctx, store)
		fmt.Printf("dataset %q  branch=%s  version=%s  rows=%d\n", ds.Name(), ds.Branch(), ds.Version(), ds.NumRows())
		for _, tn := range ds.Tensors() {
			t := ds.Tensor(tn)
			m := t.Meta()
			fmt.Printf("  %-24s htype=%-16s dtype=%-8s len=%-8d chunks=%d\n",
				tn, m.Htype, m.Dtype, m.Length, t.NumChunks())
		}

	case "tensor":
		if *tname == "" {
			fatal("missing -tensor")
		}
		ds := open(ctx, store)
		spec := core.TensorSpec{Name: *tname, Htype: *htype}
		if *dtype != "" {
			d, err := tensor.ParseDtype(*dtype)
			check(err)
			spec.Dtype = d
		}
		_, err := ds.CreateTensor(ctx, spec)
		check(err)
		check(ds.Flush(ctx))
		fmt.Printf("created tensor %q\n", *tname)

	case "ingest":
		if *csvPath == "" {
			fatal("missing -csv")
		}
		ds := open(ctx, store)
		f, err := os.Open(*csvPath)
		check(err)
		defer f.Close()
		stats, err := connector.Sync(ctx, connector.CSVSource{SourceName: *csvPath, R: f}, ds,
			connector.SyncOptions{CreateTensors: true, CommitMessage: *commit})
		check(err)
		fmt.Printf("ingested %d records", stats.Records)
		if stats.Commit != "" {
			fmt.Printf(" (commit %s)", stats.Commit)
		}
		fmt.Println()

	case "synth":
		ds := open(ctx, store)
		images := ds.Tensor("images")
		if images == nil {
			images, err = ds.CreateTensor(ctx, core.TensorSpec{Name: "images", Htype: "image"})
			check(err)
		}
		labels := ds.Tensor("labels")
		if labels == nil {
			labels, err = ds.CreateTensor(ctx, core.TensorSpec{Name: "labels", Htype: "class_label"})
			check(err)
		}
		spec := workload.ImageSpec{Height: *side, Width: *side, Channels: 3, Seed: 1}
		for i := 0; i < *n; i++ {
			check(images.Append(ctx, spec.Image(i)))
			check(labels.Append(ctx, workload.Label(1, i, 10)))
		}
		check(ds.Flush(ctx))
		fmt.Printf("appended %d synthetic samples\n", *n)

	case "query":
		if *q == "" {
			fatal("missing -q")
		}
		if *explain {
			parsed, err := tql.Parse(*q)
			check(err)
			plan, err := tql.Compile(parsed)
			check(err)
			fmt.Println(plan.Explain())
			return
		}
		ds := open(ctx, store)
		v, err := tql.Run(ctx, ds, *q)
		check(err)
		fmt.Printf("%d rows, columns %v, sparse=%v\n", v.Len(), v.ColumnNames(), v.IsSparse())
		for i := 0; i < v.Len() && i < 10; i++ {
			src, _ := v.SourceRow(i)
			fmt.Printf("  row %d (source %d)\n", i, src)
		}
		if v.Len() > 10 {
			fmt.Printf("  ... %d more\n", v.Len()-10)
		}

	case "commit":
		if *msg == "" {
			fatal("missing -m")
		}
		ds := open(ctx, store)
		id, err := ds.Commit(ctx, *msg)
		check(err)
		fmt.Printf("committed %s\n", id)

	case "checkout":
		if *ref == "" {
			fatal("missing -ref")
		}
		ds := open(ctx, store)
		check(ds.Checkout(ctx, *ref, *create))
		fmt.Printf("now at branch=%q version=%s\n", ds.Branch(), ds.Version())

	case "log":
		ds := open(ctx, store)
		log, err := ds.Log()
		check(err)
		for _, node := range log {
			fmt.Printf("%s  %s  %s\n", node.ID, node.CommittedAt.Format("2006-01-02 15:04:05"), node.Message)
		}

	case "branch":
		ds := open(ctx, store)
		for _, b := range ds.Branches() {
			marker := " "
			if b == ds.Branch() {
				marker = "*"
			}
			fmt.Printf("%s %s\n", marker, b)
		}

	case "diff":
		if *refA == "" || *refB == "" {
			fatal("missing -a/-b")
		}
		ds := open(ctx, store)
		d, err := ds.Diff(ctx, *refA, *refB)
		check(err)
		fmt.Printf("base %s\n", d.Base)
		printSide := func(label string, side map[string]core.TensorDiff) {
			fmt.Printf("%s:\n", label)
			for tn, td := range side {
				fmt.Printf("  %-24s +%d samples, %d updated\n", tn, td.Added, len(td.Updated))
			}
		}
		printSide(*refA, d.Left)
		printSide(*refB, d.Right)

	case "merge":
		if *from == "" {
			fatal("missing -from")
		}
		ds := open(ctx, store)
		policy := core.MergeOurs
		if *theirs {
			policy = core.MergeTheirs
		}
		check(ds.Merge(ctx, *from, policy))
		fmt.Printf("merged %s into %s\n", *from, ds.Branch())

	case "fsck":
		rep, err := core.Fsck(ctx, store, core.FsckOptions{Repair: *repair})
		check(err)
		fmt.Print(rep.Format())
		if !rep.Clean() {
			if *repair {
				fatal("fsck: unrepairable issues remain")
			}
			fatal("fsck: issues found (re-run with -repair to fix the repairable ones)")
		}

	default:
		usage()
	}
}

func open(ctx context.Context, store storage.Provider) *core.Dataset {
	ds, err := core.Open(ctx, store)
	check(err)
	return ds
}

func check(err error) {
	if err != nil {
		fatal("%v", err)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: deeplake <create|info|tensor|ingest|synth|query|commit|checkout|log|branch|diff|merge|fsck> [flags]")
	os.Exit(2)
}
