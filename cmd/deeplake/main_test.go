package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

var binary string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "deeplake-cli")
	if err != nil {
		os.Exit(1)
	}
	binary = filepath.Join(dir, "deeplake")
	out, err := exec.Command("go", "build", "-o", binary, ".").CombinedOutput()
	if err != nil {
		os.Stderr.Write(out)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func run(t *testing.T, args ...string) string {
	t.Helper()
	out, err := exec.Command(binary, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("deeplake %s: %v\n%s", strings.Join(args, " "), err, out)
	}
	return string(out)
}

func runExpectError(t *testing.T, args ...string) string {
	t.Helper()
	out, err := exec.Command(binary, args...).CombinedOutput()
	if err == nil {
		t.Fatalf("deeplake %s should have failed\n%s", strings.Join(args, " "), out)
	}
	return string(out)
}

func TestCLIWorkflow(t *testing.T) {
	dir := t.TempDir()
	p := "-path=" + dir

	// Create + info.
	out := run(t, "create", p, "-name", "clitest")
	if !strings.Contains(out, "clitest") {
		t.Fatalf("create output: %q", out)
	}
	out = run(t, "info", p)
	if !strings.Contains(out, "branch=main") {
		t.Fatalf("info output: %q", out)
	}

	// Synthetic ingest.
	run(t, "synth", p, "-n", "30", "-side", "32")
	out = run(t, "info", p)
	if !strings.Contains(out, "images") || !strings.Contains(out, "len=30") {
		t.Fatalf("info after synth: %q", out)
	}

	// Commit + log.
	out = run(t, "commit", p, "-m", "first thirty")
	if !strings.Contains(out, "committed") {
		t.Fatalf("commit output: %q", out)
	}
	out = run(t, "log", p)
	if !strings.Contains(out, "first thirty") {
		t.Fatalf("log output: %q", out)
	}

	// Query + explain.
	out = run(t, "query", p, "-q", "SELECT labels FROM clitest WHERE labels == 1")
	if !strings.Contains(out, "rows") {
		t.Fatalf("query output: %q", out)
	}
	out = run(t, "query", p, "-q", "SELECT labels FROM x WHERE SHAPE(labels)[0] == 0", "-explain")
	if !strings.Contains(out, "filter") {
		t.Fatalf("explain output: %q", out)
	}

	// Branch + checkout + merge.
	run(t, "checkout", p, "-ref", "exp", "-create")
	out = run(t, "branch", p)
	if !strings.Contains(out, "* exp") {
		t.Fatalf("branch output: %q", out)
	}
	run(t, "synth", p, "-n", "5", "-side", "32")
	run(t, "commit", p, "-m", "five more on exp")
	run(t, "checkout", p, "-ref", "main")
	run(t, "merge", p, "-from", "exp", "-theirs")
	out = run(t, "info", p)
	if !strings.Contains(out, "len=35") {
		t.Fatalf("info after merge: %q", out)
	}

	// Diff between refs.
	out = run(t, "diff", p, "-a", "exp", "-b", "main")
	if !strings.Contains(out, "base") {
		t.Fatalf("diff output: %q", out)
	}
}

func TestCLICSVIngest(t *testing.T) {
	dir := t.TempDir()
	p := "-path=" + dir
	run(t, "create", p, "-name", "csv")
	csv := filepath.Join(t.TempDir(), "meta.csv")
	os.WriteFile(csv, []byte("id,score\n1,0.5\n2,0.9\n"), 0o644)
	out := run(t, "ingest", p, "-csv", csv, "-commit", "metadata")
	if !strings.Contains(out, "ingested 2 records") {
		t.Fatalf("ingest output: %q", out)
	}
	out = run(t, "info", p)
	if !strings.Contains(out, "score") {
		t.Fatalf("info after ingest: %q", out)
	}
}

func TestCLIErrors(t *testing.T) {
	dir := t.TempDir()
	p := "-path=" + dir
	runExpectError(t, "info", p)     // no dataset yet
	runExpectError(t, "query", p)    // missing -q
	runExpectError(t, "commit", p)   // missing -m
	runExpectError(t, "nonsense", p) // unknown command
	run(t, "create", p, "-name", "x")
	runExpectError(t, "query", p, "-q", "SELECT nosuch FROM x")
	runExpectError(t, "checkout", p, "-ref", "ghost")
}

func TestCLIFsck(t *testing.T) {
	dir := t.TempDir()
	p := "-path=" + dir

	run(t, "create", p, "-name", "fscktest")
	run(t, "synth", p, "-n", "20", "-side", "8")

	out := run(t, "fsck", p)
	if !strings.Contains(out, "clean") {
		t.Fatalf("fsck on healthy dataset: %q", out)
	}

	// Flip a byte in a stored chunk; fsck must fail and name the object.
	var victim string
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if victim == "" && !info.IsDir() && strings.Contains(path, string(filepath.Separator)+"chunks"+string(filepath.Separator)) {
			victim = path
		}
		return nil
	})
	if err != nil || victim == "" {
		t.Fatalf("no chunk file found: %v", err)
	}
	raw, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x5A
	if err := os.WriteFile(victim, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	rel, err := filepath.Rel(dir, victim)
	if err != nil {
		t.Fatal(err)
	}
	key := filepath.ToSlash(rel)
	out = runExpectError(t, "fsck", p)
	if !strings.Contains(out, "checksum-mismatch") || !strings.Contains(out, key) {
		t.Fatalf("fsck should name the corrupted object %q:\n%s", key, out)
	}
	// Corruption is not repairable: -repair still exits non-zero.
	out = runExpectError(t, "fsck", p, "-repair")
	if !strings.Contains(out, "unrepairable") {
		t.Fatalf("fsck -repair on corrupted chunk: %q", out)
	}
}
