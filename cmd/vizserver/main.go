// Command vizserver serves a Deep Lake dataset over HTTP for in-browser
// inspection (§4.3): /info, /layout, /sample?tensor=&row=, /render?row=,
// and /query?q= run TQL against the live dataset, streaming straight from
// the storage provider.
//
// Usage:
//
//	vizserver -path DIR [-addr :8080]
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/viz"
)

func main() {
	path := flag.String("path", "", "dataset directory")
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()
	if *path == "" {
		fmt.Fprintln(os.Stderr, "missing -path")
		os.Exit(2)
	}
	store, err := storage.NewFS(*path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ds, err := core.Open(context.Background(), store)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("serving dataset %q (%d rows) on %s\n", ds.Name(), ds.NumRows(), *addr)
	if err := http.ListenAndServe(*addr, viz.NewServer(ds)); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
