package deeplake

// testing.B benchmarks, one per evaluation figure and ablation of the paper
// (§6). Each delegates to internal/bench with a bench-friendly sample count;
// cmd/benchfig runs the same experiments at full scale and prints the series
// tables. Run with:
//
//	go test -bench=. -benchmem
import (
	"context"
	"testing"

	"repro/internal/bench"
)

// benchConfig keeps each testing.B iteration in the hundreds of
// milliseconds while preserving the figure's qualitative shape.
func benchConfig(n, side int) bench.Config {
	return bench.Config{N: n, Workers: 8, ImageSide: side, Seed: 1}
}

func runFigure(b *testing.B, cfg bench.Config, fn func(context.Context, bench.Config) (*bench.Result, error)) {
	b.Helper()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := fn(ctx, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("no measurements")
		}
	}
}

// BenchmarkFig6Ingestion regenerates Fig 6: ingestion speed of raw images
// into Deep Lake vs WebDataset, Beton/FFCV, Zarr, N5, TFRecord, Squirrel
// and file-per-sample.
func BenchmarkFig6Ingestion(b *testing.B) {
	runFigure(b, benchConfig(16, 256), bench.Fig6Ingestion)
}

// BenchmarkFig7LocalLoaders regenerates Fig 7: dataloader iteration speed
// over JPEG images on local storage.
func BenchmarkFig7LocalLoaders(b *testing.B) {
	runFigure(b, benchConfig(256, 64), bench.Fig7LocalLoaders)
}

// BenchmarkFig8StorageLocations regenerates Fig 8: streaming the same
// dataset from local disk, S3 and MinIO-LAN cost models.
func BenchmarkFig8StorageLocations(b *testing.B) {
	runFigure(b, benchConfig(128, 64), bench.Fig8StorageLocations)
}

// BenchmarkFig9ImageNetCloud regenerates Fig 9: epoch timelines for AWS
// File Mode, Fast File Mode, Deep Lake streaming, and local training.
func BenchmarkFig9ImageNetCloud(b *testing.B) {
	runFigure(b, benchConfig(96, 64), bench.Fig9ImageNetCloud)
}

// BenchmarkFig10DistributedCLIP regenerates Fig 10: 16 simulated GPUs
// training over a cross-region multimodal dataset.
func BenchmarkFig10DistributedCLIP(b *testing.B) {
	runFigure(b, benchConfig(512, 48), bench.Fig10DistributedCLIP)
}

// BenchmarkAblationChunkSize sweeps the chunk target size (§3.5 default
// 8MB) against epoch time and request count on S3.
func BenchmarkAblationChunkSize(b *testing.B) {
	runFigure(b, benchConfig(64, 64), bench.AblationChunkSize)
}

// BenchmarkAblationShuffleBuffer sweeps the shuffle buffer size against
// throughput and shuffle quality (§3.5 buffer-based shuffling).
func BenchmarkAblationShuffleBuffer(b *testing.B) {
	runFigure(b, benchConfig(256, 32), bench.AblationShuffleBuffer)
}

// BenchmarkAblationWorkers sweeps loader worker counts (§4.6 scheduler).
func BenchmarkAblationWorkers(b *testing.B) {
	runFigure(b, benchConfig(128, 48), bench.AblationWorkers)
}

// BenchmarkAblationVersionDepth measures dataset-open latency against
// commit-chain depth (§4.2 chunk resolution walk).
func BenchmarkAblationVersionDepth(b *testing.B) {
	runFigure(b, benchConfig(48, 0), bench.AblationVersionDepth)
}

// BenchmarkAblationSparseViews compares streaming a sparse query view with
// its materialized twin (§4.5 materialization).
func BenchmarkAblationSparseViews(b *testing.B) {
	runFigure(b, benchConfig(200, 64), bench.AblationSparseViews)
}

// BenchmarkAblationCacheEpochs measures the LRU-over-S3 provider chain
// across epochs (§3.6 memory caching by chaining storage providers).
func BenchmarkAblationCacheEpochs(b *testing.B) {
	runFigure(b, benchConfig(128, 64), bench.AblationCacheEpochs)
}

// BenchmarkTQLScan measures the chunk-partitioned parallel TQL filter scan
// and the shape-encoder pushdown's origin-request savings (§4.4 query
// scheduler over the Tensor Storage Format).
func BenchmarkTQLScan(b *testing.B) {
	runFigure(b, benchConfig(96, 0), bench.TQLScan)
}

// BenchmarkIngestThroughput measures the parallel ingestion engine: 1/4/16
// concurrent writers into one dataset over simulated S3, lock-split append
// path plus the background chunk flush pipeline, against the TFRecord and
// WebDataset write paths (§4.1.2 ingestion).
func BenchmarkIngestThroughput(b *testing.B) {
	runFigure(b, benchConfig(96, 0), bench.IngestThroughput)
}

// BenchmarkTrainStream measures the end-to-end train loop on the
// chunk-aligned streaming dataloader: a simulated GPU fed from simulated
// S3 at 1/4/16 workers and 4 Rank/WorldSize shards, against the TFRecord
// and WebDataset read paths (§4.6 streaming dataloader). The runner also
// enforces the decode-once and batch-determinism contracts.
func BenchmarkTrainStream(b *testing.B) {
	runFigure(b, benchConfig(96, 0), bench.TrainStream)
}

// BenchmarkChaos measures the resilience layer: the train and ingest
// workloads over a fault-injecting simulated S3 (seeded transient errors,
// stalls, partial reads) behind the singleflight+retry chain. The runner
// enforces byte-identical delivery and stored bytes versus the fault-free
// runs, fetch-once accounting net of retries, and the one-extra-request
// coalesced-fault contract.
func BenchmarkChaos(b *testing.B) {
	runFigure(b, benchConfig(96, 0), bench.Chaos)
}
