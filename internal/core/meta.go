package core

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/chunk"
	"repro/internal/tensor"
)

// FormatVersion is bumped on incompatible dataset layout changes.
const FormatVersion = 1

// TensorSpec declares a new tensor column (§3.2-3.3).
type TensorSpec struct {
	// Name identifies the tensor; "/" segments express group nesting
	// (§3.1: groups implement syntactic nesting).
	Name string
	// Htype is the htype expression ("image", "sequence[image]",
	// "link[image]", ...). Empty means generic.
	Htype string
	// Dtype overrides the htype's default element type.
	Dtype tensor.Dtype
	// SampleCompression is the per-sample media codec ("jpeg", "png",
	// "none"). Empty adopts the htype default.
	SampleCompression string
	// ChunkCompression is the per-chunk byte codec ("lz4", "deflate",
	// "none"). Empty adopts the htype default.
	ChunkCompression string
	// Hidden excludes the tensor from listings; used for derived data
	// such as down-sampled previews and sample ids (§3.4).
	Hidden bool
	// Bounds overrides the chunk sizing policy; zero value uses the 8MB
	// default.
	Bounds chunk.Bounds
}

// TensorMeta is the persisted tensor metadata (meta.json).
type TensorMeta struct {
	Htype             string       `json:"htype"`
	Dtype             string       `json:"dtype"`
	SampleCompression string       `json:"sample_compression"`
	ChunkCompression  string       `json:"chunk_compression"`
	Hidden            bool         `json:"hidden"`
	Bounds            chunk.Bounds `json:"bounds"`
	// NextChunkID feeds monotonically increasing chunk ids.
	NextChunkID uint64 `json:"next_chunk_id"`
	// Length is the logical row count (sequence rows for sequence
	// tensors, samples otherwise).
	Length uint64 `json:"length"`
	// Checksums maps chunk names ("%016x" of the chunk id) to the CRC32C
	// of the stored (post-compression) chunk object. Entries accumulate as
	// chunks are written and ride along commits, so readers of any version
	// in this lineage can verify the bytes they fetch. Datasets written
	// before checksums existed simply have no entries; verification is
	// skipped for those chunks and surfaced in IntegrityInfo.
	Checksums map[string]uint32 `json:"checksums,omitempty"`
	// Autotune is the chunk-size autotuner's schedule position at save
	// time. It rides meta.json and the root snapshots dataset.json points
	// at, so a writer that reopens the dataset resumes the exact per-tensor
	// chunk-size trajectory — same levels, same observed-sample floor — and
	// produces chunks byte-identical to an uninterrupted run. Absent for
	// datasets written before the autotuner persisted state (the schedule
	// then restarts from the base target, which is only a layout
	// pessimisation, never a correctness issue).
	Autotune *chunk.AutotuneState `json:"autotune,omitempty"`
}

// datasetMeta is the persisted dataset metadata (dataset.json), the
// provenance file of §3.4.
type datasetMeta struct {
	Name          string    `json:"name"`
	FormatVersion int       `json:"format_version"`
	CreatedAt     time.Time `json:"created_at"`
	CurrentBranch string    `json:"current_branch"`
	NextSampleID  uint64    `json:"next_sample_id"`
	// Generation is the commit protocol's publish pointer: every
	// persistRoot stages a full snapshot of the mutable head state under
	// roots/<generation> and only then rewrites dataset.json to point at
	// it. A writer killed mid-flush leaves the previous generation fully
	// readable. Zero means a legacy dataset written before the staged
	// protocol existed; such datasets open from the plain per-object
	// layout.
	Generation uint64 `json:"generation,omitempty"`
}

// schemaFile lists the tensors of one version (schema evolution is tracked
// per version, §3.1).
type schemaFile struct {
	Tensors []string `json:"tensors"`
}

// diffRecord is the per-tensor, per-version commit diff (§4.2: "for each
// version, a commit diff file is also stored per tensor").
type diffRecord struct {
	// AddedFrom/AddedTo delimit [from, to) sample indices appended in
	// this version.
	AddedFrom uint64 `json:"added_from"`
	AddedTo   uint64 `json:"added_to"`
	// Updated lists indices modified in place in this version.
	Updated []uint64 `json:"updated,omitempty"`
}

// chunkSetFile lists chunk ids materialized in one version directory
// (§4.2: "a corresponding chunk_set per tensor containing the names of all
// the modified chunks").
type chunkSetFile struct {
	Chunks []uint64 `json:"chunks"`
}

// Storage layout helpers. All keys are relative to the dataset root.

const (
	datasetMetaKey = "dataset.json"
	versionTreeKey = "version_control.json"
	rootsPrefix    = "roots/"
)

// rootKey is the staged snapshot object for one generation; see
// datasetMeta.Generation.
func rootKey(gen uint64) string { return fmt.Sprintf("%s%016x", rootsPrefix, gen) }

// chunkName is the canonical textual name of a chunk id, used both as the
// final key segment and as the TensorMeta.Checksums map key.
func chunkName(id uint64) string { return fmt.Sprintf("%016x", id) }

func versionPrefix(vid string) string { return "versions/" + vid }

func schemaKey(vid string) string { return versionPrefix(vid) + "/schema.json" }

func tensorPrefix(vid, name string) string { return versionPrefix(vid) + "/tensors/" + name }

func tensorMetaKey(vid, name string) string { return tensorPrefix(vid, name) + "/meta.json" }

func chunkEncoderKey(vid, name string) string { return tensorPrefix(vid, name) + "/chunk_encoder" }

func shapeEncoderKey(vid, name string) string { return tensorPrefix(vid, name) + "/shape_encoder" }

func tileEncoderKey(vid, name string) string { return tensorPrefix(vid, name) + "/tile_encoder" }

func seqEncoderKey(vid, name string) string { return tensorPrefix(vid, name) + "/sequence_encoder" }

func chunkSetKey(vid, name string) string { return tensorPrefix(vid, name) + "/chunk_set.json" }

func diffKey(vid, name string) string { return tensorPrefix(vid, name) + "/diff.json" }

func chunkKey(vid, name string, id uint64) string {
	return tensorPrefix(vid, name) + "/chunks/" + chunkName(id)
}

func marshalJSON(v any) ([]byte, error) { return json.MarshalIndent(v, "", "  ") }
