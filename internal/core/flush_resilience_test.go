package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/tensor"
)

// The flush-pipeline resilience suite: run with -race. It covers the
// automatic redrive of parked uploads (WriteOptions.FlushRetries), the
// sticky error clearing once every pending blob drains, and the interaction
// between automatic and manual recovery under a fault-injecting provider.

// faultyDataset builds a dataset whose chunk uploads hit a Faulty provider.
// Setup (Create, CreateTensor) runs disarmed so only the write path under
// study sees faults.
func faultyDataset(t *testing.T, cfg storage.FaultConfig, opts WriteOptions) (*Dataset, *Tensor, *storage.Faulty) {
	t.Helper()
	ctx := context.Background()
	faulty := storage.NewFaulty(storage.NewMemory(), cfg)
	faulty.SetArmed(false)
	ds, err := Create(ctx, faulty, "resilience")
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.SetWriteOptions(opts); err != nil {
		t.Fatal(err)
	}
	tr, err := ds.CreateTensor(ctx, TensorSpec{Name: "x", Dtype: tensor.Int64, Bounds: smallBounds})
	if err != nil {
		t.Fatal(err)
	}
	faulty.SetArmed(true)
	return ds, tr, faulty
}

// appendRows appends n scalar rows, tolerating DeferredFlushError — the row
// is recorded and its chunk parked for redrive, which is the behavior under
// test.
func appendRows(t *testing.T, tr *Tensor, n int) {
	t.Helper()
	ctx := context.Background()
	for i := 0; i < n; i++ {
		err := tr.Append(ctx, tensor.Scalar(tensor.Int64, float64(i)))
		var dfe *DeferredFlushError
		if err != nil && !errors.As(err, &dfe) {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

// retryFlush drives Flush until it succeeds, failing the test on a
// non-transient error. The faulty provider also faults metadata Puts (which
// bypass the pipeline), so individual Flush calls may legitimately fail.
func retryFlush(t *testing.T, ds *Dataset, attempts int) {
	t.Helper()
	ctx := context.Background()
	var err error
	for i := 0; i < attempts; i++ {
		if err = ds.Flush(ctx); err == nil {
			return
		}
		if !storage.IsRetryable(err) && !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("flush failed non-transiently: %v", err)
		}
	}
	t.Fatalf("flush still failing after %d attempts: %v", attempts, err)
}

// TestFlushAutoRedriveRecoversParkedUploads ingests through a pipeline whose
// Puts fail 30% of the time: parked chunks must be redriven automatically
// under backoff, Flush must converge, and every row must land durably.
func TestFlushAutoRedriveRecoversParkedUploads(t *testing.T) {
	ctx := context.Background()
	const rows = 300
	ds, tr, faulty := faultyDataset(t,
		storage.FaultConfig{Seed: 11, PutErrRate: 0.3},
		WriteOptions{
			FlushWorkers: 4, MaxPending: 8, FlushRetries: 16,
			FlushBackoff: storage.Backoff{Base: time.Millisecond, Max: 10 * time.Millisecond, Seed: 11},
		})
	appendRows(t, tr, rows)
	retryFlush(t, ds, 32)
	if faulty.Stats().Total() == 0 {
		t.Fatal("fault schedule injected nothing; the test exercised only the happy path")
	}

	// Reopen from storage (disarmed) and verify every row is durable.
	faulty.SetArmed(false)
	reopened, err := Open(ctx, faulty)
	if err != nil {
		t.Fatal(err)
	}
	rx := reopened.Tensor("x")
	if rx == nil {
		t.Fatal("tensor missing after reopen")
	}
	if got := rx.Len(); got != rows {
		t.Fatalf("%d/%d rows durable after faulty ingest", got, rows)
	}
	for _, i := range []uint64{0, rows / 2, rows - 1} {
		arr, err := rx.At(ctx, i)
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		v, _ := arr.Item()
		if int64(v) != int64(i) {
			t.Fatalf("row %d = %v", i, v)
		}
	}
}

// TestFlushStickyErrorClearsAfterRecovery asserts the bugfix: once a failed
// upload has been redriven successfully and no blobs are pending, the
// pipeline must stop reporting the stale error — a recovered dataset flushes
// clean.
func TestFlushStickyErrorClearsAfterRecovery(t *testing.T) {
	ctx := context.Background()
	// Exactly one Put fault: the first sealed chunk's upload fails and
	// parks; everything afterwards succeeds.
	ds, tr, _ := faultyDataset(t,
		storage.FaultConfig{Seed: 1, PutErrRate: 1, MaxFaults: 1},
		WriteOptions{
			FlushWorkers: 2, MaxPending: 4, FlushRetries: 8,
			FlushBackoff: storage.Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond, Seed: 1},
		})
	appendRows(t, tr, 100)
	retryFlush(t, ds, 8)

	// The pipeline recovered; later flushes must not resurrect the old
	// failure (the sticky error is cleared once pending drained).
	for i := 0; i < 3; i++ {
		if err := ds.Flush(ctx); err != nil {
			t.Fatalf("flush %d after recovery: %v", i, err)
		}
	}
}

// TestFlushManualRedriveTakesOverAutoRetry races a manual Flush against the
// pipeline's pending automatic redrive timer: the manual path must take over
// cleanly (cancelling the timer, not double-driving uploads) and still land
// every row.
func TestFlushManualRedriveTakesOverAutoRetry(t *testing.T) {
	ctx := context.Background()
	const rows = 200
	ds, tr, _ := faultyDataset(t,
		storage.FaultConfig{Seed: 23, PutErrRate: 0.5},
		WriteOptions{
			FlushWorkers: 4, MaxPending: 8, FlushRetries: 16,
			// Long backoff: the auto-redrive timer is almost always pending
			// when the manual Flush arrives, maximizing the takeover window.
			FlushBackoff: storage.Backoff{Base: 50 * time.Millisecond, Max: 100 * time.Millisecond, Seed: 23},
		})
	appendRows(t, tr, rows)
	retryFlush(t, ds, 64)

	faulty := ds.store.(*storage.Faulty)
	faulty.SetArmed(false)
	reopened, err := Open(ctx, faulty)
	if err != nil {
		t.Fatal(err)
	}
	if got := reopened.Tensor("x").Len(); got != rows {
		t.Fatalf("%d/%d rows durable after manual/auto redrive race", got, rows)
	}
}

// TestFlushUploadTimeoutParksStalledPuts covers the black-hole failure mode:
// a stalled background Put must die of WriteOptions.UploadTimeout (uploads
// run on a pipeline-owned context), park its chunk, and be recovered by the
// automatic redrive — the appending caller is never stuck.
func TestFlushUploadTimeoutParksStalledPuts(t *testing.T) {
	ctx := context.Background()
	const rows = 120
	ds, tr, faulty := faultyDataset(t,
		storage.FaultConfig{Seed: 5, StallRate: 0.2, MaxFaults: 4},
		WriteOptions{
			FlushWorkers: 4, MaxPending: 8,
			UploadTimeout: 20 * time.Millisecond,
			FlushRetries:  16,
			FlushBackoff:  storage.Backoff{Base: time.Millisecond, Max: 10 * time.Millisecond, Seed: 5},
		})
	appendRows(t, tr, rows)
	retryFlush(t, ds, 32)
	if faulty.Stats().Stalls == 0 {
		t.Fatal("no stalls injected; the timeout path was not exercised")
	}

	faulty.SetArmed(false)
	reopened, err := Open(ctx, faulty)
	if err != nil {
		t.Fatal(err)
	}
	if got := reopened.Tensor("x").Len(); got != rows {
		t.Fatalf("%d/%d rows durable after stalled uploads", got, rows)
	}
}

// TestFlushNonRetryableErrorStaysManual asserts the classification boundary:
// a permanent upload failure must NOT trigger automatic redrive (which would
// hammer a broken provider); it stays parked until a manual Flush redrives
// it.
func TestFlushNonRetryableErrorStaysManual(t *testing.T) {
	ctx := context.Background()
	// Flaky fails exactly one Put with a permanent (non-transient) error.
	// Flaky's counter covers read-path ops only, so wrap Puts by hand.
	mem := storage.NewMemory()
	perm := &failNthPut{inner: mem, failOn: 1, err: errors.New("permanent: access denied")}
	ds, err := Create(ctx, perm, "manual")
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.SetWriteOptions(WriteOptions{
		FlushWorkers: 2, MaxPending: 4, FlushRetries: 8,
		FlushBackoff: storage.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond},
	}); err != nil {
		t.Fatal(err)
	}
	tr, err := ds.CreateTensor(ctx, TensorSpec{Name: "x", Dtype: tensor.Int64, Bounds: smallBounds})
	if err != nil {
		t.Fatal(err)
	}
	perm.arm()
	appendRows(t, tr, 100)

	// Give any (wrong) automatic redrive time to fire, then flush manually:
	// the manual path clears the sticky error and redrives.
	time.Sleep(30 * time.Millisecond)
	if err := ds.Flush(ctx); err != nil {
		t.Fatalf("manual flush after permanent fault: %v", err)
	}
	reopened, err := Open(ctx, mem)
	if err != nil {
		t.Fatal(err)
	}
	if got := reopened.Tensor("x").Len(); got != 100 {
		t.Fatalf("%d/100 rows durable", got)
	}
}

// failNthPut fails the n-th armed Put with a fixed (non-transient) error.
type failNthPut struct {
	inner  storage.Provider
	failOn int64
	err    error

	armed atomic.Bool
	seen  atomic.Int64
}

func (p *failNthPut) arm() { p.armed.Store(true) }

func (p *failNthPut) Put(ctx context.Context, key string, data []byte) error {
	if p.armed.Load() && p.seen.Add(1) == p.failOn {
		return fmt.Errorf("put %q: %w", key, p.err)
	}
	return p.inner.Put(ctx, key, data)
}

func (p *failNthPut) Get(ctx context.Context, key string) ([]byte, error) {
	return p.inner.Get(ctx, key)
}

func (p *failNthPut) GetRange(ctx context.Context, key string, offset, length int64) ([]byte, error) {
	return p.inner.GetRange(ctx, key, offset, length)
}

func (p *failNthPut) Delete(ctx context.Context, key string) error { return p.inner.Delete(ctx, key) }

func (p *failNthPut) Exists(ctx context.Context, key string) (bool, error) {
	return p.inner.Exists(ctx, key)
}

func (p *failNthPut) List(ctx context.Context, prefix string) ([]string, error) {
	return p.inner.List(ctx, prefix)
}

func (p *failNthPut) Size(ctx context.Context, key string) (int64, error) {
	return p.inner.Size(ctx, key)
}
