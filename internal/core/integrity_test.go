package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/storage"
	"repro/internal/tensor"
)

// guillotine simulates a writer killed at the worst possible moment of the
// commit protocol: the instant before dataset.json is rewritten to publish
// the staged generation. Everything before that Put (chunk uploads, plain
// metadata, the staged root snapshot) lands; the publish itself never does.
type guillotine struct {
	storage.Provider
	armed bool
}

func (g *guillotine) Put(ctx context.Context, key string, data []byte) error {
	if g.armed && key == datasetMetaKey {
		return errors.New("simulated crash: writer killed before publishing dataset.json")
	}
	return g.Provider.Put(ctx, key, data)
}

func appendLabels(t *testing.T, ds *Dataset, from, to int) {
	t.Helper()
	ctx := context.Background()
	for i := from; i < to; i++ {
		err := ds.Append(ctx, map[string]*tensor.NDArray{
			"labels": tensor.Scalar(tensor.Int32, float64(i)),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func readLabel(t *testing.T, ds *Dataset, i int) int {
	t.Helper()
	arr, err := ds.Tensor("labels").At(context.Background(), uint64(i))
	if err != nil {
		t.Fatalf("At(%d): %v", i, err)
	}
	v, _ := arr.Item()
	return int(v)
}

func countIssues(rep *FsckReport, kind string) int {
	n := 0
	for _, i := range rep.Issues {
		if i.Kind == kind {
			n++
		}
	}
	return n
}

// TestCrashBetweenFlushAndPublish is the crash-consistency litmus from the
// integrity work: a writer killed after uploading chunks (and rewriting the
// plain head metadata) but before the atomic dataset.json publish must leave
// the previous generation fully readable, fsck must find only collectable
// garbage — orphans and torn plain metadata, nothing missing — and repair
// must bring the dataset back to clean.
func TestCrashBetweenFlushAndPublish(t *testing.T) {
	ctx := context.Background()
	mem := storage.NewMemory()
	g := &guillotine{Provider: mem}
	ds, err := Create(ctx, g, "crash")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.CreateTensor(ctx, TensorSpec{Name: "labels", Htype: "class_label", Bounds: smallBounds}); err != nil {
		t.Fatal(err)
	}
	appendLabels(t, ds, 0, 40)
	if err := ds.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	// The kill: more rows land chunks and metadata, but the publish fails.
	g.armed = true
	appendLabels(t, ds, 40, 80)
	if err := ds.Flush(ctx); err == nil {
		t.Fatal("flush through the guillotine should fail")
	}

	// Survivor reopen: the previous generation, fully readable.
	back, err := Open(ctx, mem)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	if n := back.NumRows(); n != 40 {
		t.Fatalf("reopened at %d rows, want the 40 of the published generation", n)
	}
	for _, i := range []int{0, 17, 39} {
		if got := readLabel(t, back, i); got != i {
			t.Fatalf("row %d = %d after crash recovery", i, got)
		}
	}
	info := back.Integrity()
	if info.Generation == 0 {
		t.Fatal("expected a published generation")
	}
	if info.AbandonedGeneration != info.Generation+1 {
		t.Fatalf("abandoned generation = %d, want %d", info.AbandonedGeneration, info.Generation+1)
	}

	// fsck: the abandoned root and its orphan chunks, torn plain metadata —
	// and NOTHING missing or corrupt.
	rep, err := Fsck(ctx, mem, FsckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("fsck should flag the crashed writer's footprint")
	}
	if countIssues(rep, FsckAbandonedRoot) != 1 {
		t.Fatalf("want 1 abandoned root, got report:\n%s", rep.Format())
	}
	if countIssues(rep, FsckOrphanChunk) == 0 {
		t.Fatalf("want orphan chunks from the dead generation, got report:\n%s", rep.Format())
	}
	if countIssues(rep, FsckTornMetadata) == 0 {
		t.Fatalf("want torn plain head metadata, got report:\n%s", rep.Format())
	}
	if n := countIssues(rep, FsckMissingChunk) + countIssues(rep, FsckChecksumMismatch) + countIssues(rep, FsckMissingObject); n != 0 {
		t.Fatalf("crash must not lose or corrupt published data, got report:\n%s", rep.Format())
	}
	for _, i := range rep.Issues {
		if !i.Repairable {
			t.Fatalf("all crash footprint must be repairable, got %s", i)
		}
	}

	// Repair, then everything is clean and still readable.
	rep, err = Fsck(ctx, mem, FsckOptions{Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("repair left issues:\n%s", rep.Format())
	}
	rep, err = Fsck(ctx, mem, FsckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || len(rep.Issues) != 0 {
		t.Fatalf("post-repair fsck not clean:\n%s", rep.Format())
	}
	back, err = Open(ctx, mem)
	if err != nil {
		t.Fatal(err)
	}
	if n := back.NumRows(); n != 40 {
		t.Fatalf("post-repair reopen has %d rows", n)
	}
	if info := back.Integrity(); info.AbandonedGeneration != 0 {
		t.Fatalf("abandoned generation still reported after repair: %+v", info)
	}

	// The repaired dataset accepts new writes.
	g.armed = false
	ds2, err := Open(ctx, mem)
	if err != nil {
		t.Fatal(err)
	}
	appendLabels(t, ds2, 40, 50)
	if err := ds2.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if n := ds2.NumRows(); n != 50 {
		t.Fatalf("rows after recovery write = %d", n)
	}
}

// TestOpenRejectsGarbageMetadata covers the "never panic, always actionable"
// contract for broken root objects.
func TestOpenRejectsGarbageMetadata(t *testing.T) {
	ctx := context.Background()

	newFlushed := func(t *testing.T) *storage.Memory {
		mem := storage.NewMemory()
		ds, err := Create(ctx, mem, "garbage")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ds.CreateTensor(ctx, TensorSpec{Name: "labels", Htype: "class_label", Bounds: smallBounds}); err != nil {
			t.Fatal(err)
		}
		appendLabels(t, ds, 0, 10)
		if err := ds.Flush(ctx); err != nil {
			t.Fatal(err)
		}
		return mem
	}

	t.Run("garbage dataset.json", func(t *testing.T) {
		mem := newFlushed(t)
		if err := mem.Put(ctx, datasetMetaKey, []byte("{not json")); err != nil {
			t.Fatal(err)
		}
		_, err := Open(ctx, mem)
		if err == nil || !strings.Contains(err.Error(), "corrupt dataset.json") {
			t.Fatalf("Open = %v, want corrupt dataset.json error", err)
		}
	})

	t.Run("truncated dataset.json", func(t *testing.T) {
		mem := newFlushed(t)
		raw, err := mem.Get(ctx, datasetMetaKey)
		if err != nil {
			t.Fatal(err)
		}
		if err := mem.Put(ctx, datasetMetaKey, raw[:len(raw)/2]); err != nil {
			t.Fatal(err)
		}
		_, err = Open(ctx, mem)
		if err == nil || !strings.Contains(err.Error(), "corrupt dataset.json") {
			t.Fatalf("Open = %v, want corrupt dataset.json error", err)
		}
	})

	t.Run("torn version_control.json is shadowed by the root snapshot", func(t *testing.T) {
		mem := newFlushed(t)
		if err := mem.Put(ctx, versionTreeKey, []byte("garbage tree")); err != nil {
			t.Fatal(err)
		}
		ds, err := Open(ctx, mem)
		if err != nil {
			t.Fatalf("Open with torn plain tree should recover from the snapshot, got %v", err)
		}
		if n := ds.NumRows(); n != 10 {
			t.Fatalf("rows = %d", n)
		}
		rep, err := Fsck(ctx, mem, FsckOptions{Repair: true})
		if err != nil {
			t.Fatal(err)
		}
		if countIssues(rep, FsckTornMetadata) == 0 || !rep.Clean() {
			t.Fatalf("fsck should repair the torn tree copy:\n%s", rep.Format())
		}
	})

	t.Run("garbage root snapshot", func(t *testing.T) {
		mem := newFlushed(t)
		var meta datasetMeta
		raw, err := mem.Get(ctx, datasetMetaKey)
		if err != nil {
			t.Fatal(err)
		}
		if err := unmarshalJSON(raw, &meta); err != nil {
			t.Fatal(err)
		}
		if err := mem.Put(ctx, rootKey(meta.Generation), []byte("}{")); err != nil {
			t.Fatal(err)
		}
		_, err = Open(ctx, mem)
		if err == nil || !strings.Contains(err.Error(), "corrupt root snapshot") {
			t.Fatalf("Open = %v, want corrupt root snapshot error", err)
		}
		rep, err := Fsck(ctx, mem, FsckOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if countIssues(rep, FsckCorruptObject) == 0 {
			t.Fatalf("fsck should name the corrupt snapshot:\n%s", rep.Format())
		}
	})
}

// TestMissingChunkIsNamedExactly: deleting a manifest-referenced chunk makes
// reads fail with a wrapped error naming the exact object (IsNotFound still
// true through the wrap), and fsck reports that object as missing.
func TestMissingChunkIsNamedExactly(t *testing.T) {
	ctx := context.Background()
	mem := storage.NewMemory()
	ds, err := Create(ctx, mem, "missing")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.CreateTensor(ctx, TensorSpec{Name: "labels", Htype: "class_label", Bounds: smallBounds}); err != nil {
		t.Fatal(err)
	}
	appendLabels(t, ds, 0, 60)
	if err := ds.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	keys, err := mem.List(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	victim := ""
	for _, k := range keys {
		if strings.Contains(k, "/labels/chunks/") {
			victim = k
			break
		}
	}
	if victim == "" {
		t.Fatal("no chunk key found")
	}
	if err := mem.Delete(ctx, victim); err != nil {
		t.Fatal(err)
	}

	back, err := Open(ctx, mem)
	if err != nil {
		t.Fatalf("Open must survive a missing chunk (reads fail lazily): %v", err)
	}
	var readErr error
	for i := 0; i < 60; i++ {
		if _, err := back.Tensor("labels").At(ctx, uint64(i)); err != nil {
			readErr = err
			break
		}
	}
	if readErr == nil {
		t.Fatal("reading every row should hit the missing chunk")
	}
	if !strings.Contains(readErr.Error(), victim) {
		t.Fatalf("read error %q does not name the missing object %q", readErr, victim)
	}
	if !storage.IsNotFound(readErr) {
		t.Fatalf("wrapped missing-chunk error lost IsNotFound: %v", readErr)
	}

	rep, err := Fsck(ctx, mem, FsckOptions{Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("fsck cannot repair a missing chunk; report must stay dirty")
	}
	found := false
	for _, i := range rep.Issues {
		if i.Kind == FsckMissingChunk && i.Key == victim {
			found = true
			if i.Repairable || i.Repaired {
				t.Fatalf("missing chunk marked repairable: %s", i)
			}
		}
	}
	if !found {
		t.Fatalf("fsck does not name %q:\n%s", victim, rep.Format())
	}
}

// TestChecksumMismatchDetected: flip one byte of a stored chunk and fsck
// must name it; a reader over a Verify chain must classify the failure as
// corruption.
func TestChecksumMismatchDetected(t *testing.T) {
	ctx := context.Background()
	mem := storage.NewMemory()
	ds, err := Create(ctx, mem, "flip")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.CreateTensor(ctx, TensorSpec{Name: "labels", Htype: "class_label", Bounds: smallBounds}); err != nil {
		t.Fatal(err)
	}
	appendLabels(t, ds, 0, 60)
	if err := ds.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	keys, err := mem.List(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	victim := ""
	for _, k := range keys {
		if strings.Contains(k, "/labels/chunks/") {
			victim = k
			break
		}
	}
	raw, err := mem.Get(ctx, victim)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := mem.Put(ctx, victim, raw); err != nil {
		t.Fatal(err)
	}

	rep, err := Fsck(ctx, mem, FsckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mismatches := 0
	for _, i := range rep.Issues {
		if i.Kind == FsckChecksumMismatch {
			mismatches++
			if i.Key != victim {
				t.Fatalf("mismatch names %q, want %q", i.Key, victim)
			}
		}
	}
	if mismatches != 1 {
		t.Fatalf("want exactly 1 checksum mismatch:\n%s", rep.Format())
	}

	// A reader over the verifying chain fails with a corruption-classified
	// error (at-rest damage in Memory is permanent, so no heal can succeed).
	verify := storage.NewVerify(mem, storage.VerifyOptions{HealAttempts: 1, QuarantineAfter: -1})
	back, err := Open(ctx, storage.NewLRU(verify, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	info := back.Integrity()
	if info.SeededDigests == 0 || info.ChunksWithChecksum == 0 || info.ChunksWithoutChecksum != 0 {
		t.Fatalf("digest seeding at open: %+v", info)
	}
	var readErr error
	for i := 0; i < 60; i++ {
		if _, err := back.Tensor("labels").At(ctx, uint64(i)); err != nil {
			readErr = err
			break
		}
	}
	if readErr == nil {
		t.Fatal("corrupted chunk should fail verified reads")
	}
	if !storage.IsCorrupted(readErr) {
		t.Fatalf("read error not classified corrupted: %v", readErr)
	}
}

// TestSelfHealingReadThroughVerifyChain: transient in-flight corruption is
// healed invisibly — every row reads back clean and the verify layer records
// a detected+repaired pair, at exactly one extra origin request.
func TestSelfHealingReadThroughVerifyChain(t *testing.T) {
	ctx := context.Background()
	mem := storage.NewMemory()
	ds, err := Create(ctx, mem, "heal")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.CreateTensor(ctx, TensorSpec{Name: "labels", Htype: "class_label", Bounds: smallBounds}); err != nil {
		t.Fatal(err)
	}
	appendLabels(t, ds, 0, 120)
	if err := ds.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	faulty := storage.NewFaulty(mem, storage.FaultConfig{Seed: 7, CorruptRate: 1, MaxFaults: 2})
	faulty.SetArmed(false) // no faults while Open reads metadata and seeds digests
	counting := storage.NewCounting(faulty)
	verify := storage.NewVerify(counting, storage.VerifyOptions{})
	cache := storage.NewLRU(verify, 1<<30)

	back, err := Open(ctx, cache)
	if err != nil {
		t.Fatal(err)
	}
	if info := back.Integrity(); info.SeededDigests == 0 {
		t.Fatalf("no digests seeded: %+v", info)
	}
	counting.Reset()
	faulty.SetArmed(true)
	for i := 0; i < 120; i++ {
		if got := readLabel(t, back, i); got != i {
			t.Fatalf("row %d = %d through corrupting wire", i, got)
		}
	}
	faulty.SetArmed(false)
	vs := verify.Stats()
	fs := faulty.Stats()
	if fs.Corruptions == 0 {
		t.Fatal("fault schedule injected no corruption")
	}
	if vs.Detected != vs.Repaired || vs.Repaired == 0 {
		t.Fatalf("verify stats %+v: every injected corruption must heal", vs)
	}
	stats := cache.Stats()
	if stats.CorruptionsDetected != vs.Detected || stats.CorruptionsRepaired != vs.Repaired {
		t.Fatalf("cache stats do not surface verify counters: %+v", stats)
	}
	// Each corrupted transfer costs exactly one extra origin request: the
	// LRU fetches every chunk once, and every injected corruption adds one
	// heal re-fetch — nothing more.
	chunks := int64(back.Tensor("labels").NumChunks())
	if moved := counting.Snapshot().Requests(); moved != chunks+fs.Corruptions {
		t.Fatalf("origin requests = %d, want %d chunks + %d corruptions", moved, chunks, fs.Corruptions)
	}
}

// TestLegacyDatasetWithoutChecksumsOpens: a pre-integrity layout (no
// generation, no roots, no checksum manifest) still opens and reads;
// verification is skipped and surfaced in IntegrityInfo, and fsck treats the
// unverifiable chunks as clean.
func TestLegacyDatasetWithoutChecksumsOpens(t *testing.T) {
	ctx := context.Background()
	mem := storage.NewMemory()
	ds, err := Create(ctx, mem, "legacy")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.CreateTensor(ctx, TensorSpec{Name: "labels", Htype: "class_label", Bounds: smallBounds}); err != nil {
		t.Fatal(err)
	}
	appendLabels(t, ds, 0, 30)
	if err := ds.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	// Rewrite the layout as a pre-integrity writer would have left it:
	// no generation pointer, no roots/, no checksums in tensor metadata.
	strip := func(key string, fields ...string) {
		raw, err := mem.Get(ctx, key)
		if err != nil {
			t.Fatal(err)
		}
		var m map[string]any
		if err := unmarshalJSON(raw, &m); err != nil {
			t.Fatal(err)
		}
		for _, f := range fields {
			delete(m, f)
		}
		if err := mem.Put(ctx, key, mustJSON(m)); err != nil {
			t.Fatal(err)
		}
	}
	strip(datasetMetaKey, "generation")
	roots, err := mem.List(ctx, rootsPrefix)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range roots {
		if err := mem.Delete(ctx, k); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := mem.List(ctx, "versions/")
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if strings.HasSuffix(k, "/meta.json") {
			strip(k, "checksums")
		}
	}

	back, err := Open(ctx, storage.NewLRU(storage.NewVerify(mem, storage.VerifyOptions{}), 1<<20))
	if err != nil {
		t.Fatalf("legacy dataset must open: %v", err)
	}
	for i := 0; i < 30; i++ {
		if got := readLabel(t, back, i); got != i {
			t.Fatalf("legacy row %d = %d", i, got)
		}
	}
	info := back.Integrity()
	if info.Generation != 0 || info.ChunksWithChecksum != 0 || info.ChunksWithoutChecksum == 0 || info.SeededDigests != 0 {
		t.Fatalf("legacy integrity info: %+v", info)
	}

	rep, err := Fsck(ctx, mem, FsckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("legacy dataset should fsck clean:\n%s", rep.Format())
	}
	if rep.ChunksUnverified == 0 || rep.ChunksVerified != 0 {
		t.Fatalf("legacy chunks should count as unverified: %+v", rep)
	}
}

// TestFsckCleanAcrossVersions: a dataset with commits, branches and multiple
// flushes must produce a clean report — no false positives from the
// multi-version layout.
func TestFsckCleanAcrossVersions(t *testing.T) {
	ctx := context.Background()
	mem := storage.NewMemory()
	ds, err := Create(ctx, mem, "versions")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.CreateTensor(ctx, TensorSpec{Name: "labels", Htype: "class_label", Bounds: smallBounds}); err != nil {
		t.Fatal(err)
	}
	appendLabels(t, ds, 0, 25)
	if _, err := ds.Commit(ctx, "first"); err != nil {
		t.Fatal(err)
	}
	appendLabels(t, ds, 25, 50)
	if err := ds.Checkout(ctx, "side", true); err != nil {
		t.Fatal(err)
	}
	appendLabels(t, ds, 50, 60)
	if _, err := ds.Commit(ctx, "side work"); err != nil {
		t.Fatal(err)
	}
	if err := ds.Checkout(ctx, "main", false); err != nil {
		t.Fatal(err)
	}
	if err := ds.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	rep, err := Fsck(ctx, mem, FsckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || len(rep.Issues) != 0 {
		t.Fatalf("healthy multi-version dataset flagged:\n%s", rep.Format())
	}
	if rep.ChunksVerified == 0 {
		t.Fatalf("no chunks verified: %+v", rep)
	}

	// And a reopened handle round-trips through the snapshot path.
	back, err := Open(ctx, mem)
	if err != nil {
		t.Fatal(err)
	}
	if n := back.NumRows(); n != 50 {
		t.Fatalf("main rows = %d, want 50", n)
	}
	if got := fmt.Sprint(back.Integrity().Generation); got == "0" {
		t.Fatal("expected generation-based open")
	}
}
