package core

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/chunk"
	"repro/internal/compress"
	"repro/internal/encoder"
	"repro/internal/storage"
	"repro/internal/tensor"
)

// Tensor is one typed column of a dataset (§3.2). Appends accumulate in a
// bounded chunk builder; reads consult the chunk encoder and fetch chunks
// (or sub-chunk byte ranges) from the storage provider.
//
// Locking: mu guards the tensor's mutable write state (meta counters,
// builder, encoders, chunk maps, diff). Writers hold it exclusively under a
// shared ds.mu, so appends to different tensors of one dataset run
// concurrently; readers hold both shared. Fields set at construction (ds,
// name, spec, codecs) are immutable and read lock-free — sample encoding
// only touches those, which is why it happens outside every lock.
type Tensor struct {
	ds   *Dataset
	name string
	meta TensorMeta
	spec tensor.HtypeSpec

	mu sync.RWMutex

	chunkCodec  compress.Codec       // nil means uncompressed chunks
	sampleCodec compress.SampleCodec // nil means raw samples

	chunkEnc *encoder.ChunkEncoder
	shapeEnc *encoder.ShapeEncoder
	tileEnc  *encoder.TileEncoder
	seqEnc   *encoder.SequenceEncoder

	builder        *chunk.Builder
	pendingID      uint64
	pendingSamples []chunk.Sample

	// chunkVersion maps chunk id -> version directory holding it,
	// resolved by walking the version tree (§4.2).
	chunkVersion map[uint64]string
	// chunkSet holds the ids written in the current head version.
	chunkSet map[uint64]bool

	diff diffRecord

	// savedState is the tensor state as of the last successful save()
	// (or as loaded), i.e. the durable state whose chunks are all in
	// storage. Root snapshots embed this rather than the live state, so a
	// generation published between flushes (e.g. by CreateTensor) never
	// references pending chunks. Guarded like the rest of the write state.
	savedState   tensorRootState
	savedStateOK bool
}

// newTensor builds an empty tensor from a spec and resolves codecs.
func newTensor(ds *Dataset, spec TensorSpec) (*Tensor, error) {
	hspec, err := tensor.ParseHtype(spec.Htype)
	if err != nil {
		return nil, err
	}
	dtype := spec.Dtype
	if dtype == tensor.InvalidDtype {
		dtype = hspec.Base.DefaultDtype
		if dtype == tensor.InvalidDtype {
			dtype = tensor.Float64 // generic fallback
		}
	}
	sampleComp := spec.SampleCompression
	if sampleComp == "" {
		sampleComp = hspec.Base.DefaultSampleCompression
	}
	if hspec.Link {
		// Linked tensors store URL strings; media codecs do not apply.
		sampleComp = "none"
	}
	chunkComp := spec.ChunkCompression
	if chunkComp == "" {
		chunkComp = hspec.Base.DefaultChunkCompression
	}
	bounds := spec.Bounds
	if bounds.Validate() != nil {
		bounds = chunk.DefaultBounds()
	}
	meta := TensorMeta{
		Htype:             hspec.String(),
		Dtype:             dtype.String(),
		SampleCompression: normalizeCodecName(sampleComp),
		ChunkCompression:  normalizeCodecName(chunkComp),
		Hidden:            spec.Hidden,
		Bounds:            bounds,
	}
	t := newTensorShell(ds, spec.Name, meta, hspec)
	if err := t.resolveCodecs(); err != nil {
		return nil, err
	}
	return t, nil
}

// newTensorShell builds the common in-memory skeleton of a tensor handle:
// fresh encoders, an empty builder sized from meta.Bounds, empty chunk maps.
// Callers still resolve codecs and (when loading) hydrate encoder/diff/chunk
// state.
func newTensorShell(ds *Dataset, name string, meta TensorMeta, hspec tensor.HtypeSpec) *Tensor {
	t := &Tensor{
		ds:           ds,
		name:         name,
		meta:         meta,
		spec:         hspec,
		chunkEnc:     encoder.NewChunkEncoder(),
		shapeEnc:     encoder.NewShapeEncoder(),
		tileEnc:      encoder.NewTileEncoder(),
		seqEnc:       encoder.NewSequenceEncoder(),
		builder:      chunk.NewBuilder(meta.Bounds),
		chunkVersion: map[uint64]string{},
		chunkSet:     map[uint64]bool{},
	}
	t.builder.SetAutotune(int(ds.writeOpts.AutotuneChunkBytes))
	if meta.Autotune != nil {
		t.builder.RestoreAutotune(*meta.Autotune)
	}
	return t
}

func normalizeCodecName(name string) string {
	if name == "" {
		return "none"
	}
	return name
}

func (t *Tensor) resolveCodecs() error {
	if t.meta.ChunkCompression != "none" {
		c, err := compress.ByName(t.meta.ChunkCompression)
		if err != nil {
			return err
		}
		t.chunkCodec = c
	}
	if t.meta.SampleCompression != "none" {
		c, err := compress.SampleByName(t.meta.SampleCompression)
		if err != nil {
			return err
		}
		t.sampleCodec = c
	}
	return nil
}

// loadTensor opens a tensor from the current head version directory and
// resolves its chunk-to-version map by walking the tree ancestry.
func loadTensor(ctx context.Context, ds *Dataset, name string) (*Tensor, error) {
	vid := ds.head
	rawMeta, err := ds.store.Get(ctx, tensorMetaKey(vid, name))
	if err != nil {
		return nil, err
	}
	var meta TensorMeta
	if err := unmarshalJSON(rawMeta, &meta); err != nil {
		return nil, err
	}
	hspec, err := tensor.ParseHtype(meta.Htype)
	if err != nil {
		return nil, err
	}
	t := newTensorShell(ds, name, meta, hspec)
	if err := t.resolveCodecs(); err != nil {
		return nil, err
	}
	if err := loadEncoder(ctx, ds.store, chunkEncoderKey(vid, name), t.chunkEnc); err != nil {
		return nil, err
	}
	if err := loadEncoder(ctx, ds.store, shapeEncoderKey(vid, name), t.shapeEnc); err != nil {
		return nil, err
	}
	if err := loadEncoder(ctx, ds.store, tileEncoderKey(vid, name), t.tileEnc); err != nil {
		return nil, err
	}
	if err := loadEncoder(ctx, ds.store, seqEncoderKey(vid, name), t.seqEnc); err != nil {
		return nil, err
	}
	if raw, err := ds.store.Get(ctx, diffKey(vid, name)); err == nil {
		if err := unmarshalJSON(raw, &t.diff); err != nil {
			return nil, err
		}
	} else if !storage.IsNotFound(err) {
		return nil, err
	}
	if err := t.resolveChunkVersions(ctx); err != nil {
		return nil, err
	}
	if st, err := t.snapshotState(); err == nil {
		t.savedState, t.savedStateOK = st, true
	}
	return t, nil
}

type binaryCodec interface {
	MarshalBinary() ([]byte, error)
	UnmarshalBinary([]byte) error
}

func loadEncoder(ctx context.Context, store storage.Provider, key string, enc binaryCodec) error {
	raw, err := store.Get(ctx, key)
	if storage.IsNotFound(err) {
		return nil // empty encoder
	}
	if err != nil {
		return err
	}
	return enc.UnmarshalBinary(raw)
}

// resolveChunkVersions walks the version ancestry from the current head to
// the root, reading each version's chunk_set and recording, for every chunk
// id, the first (newest) version that materializes it — the paper's chunk
// resolution rule (§4.2).
func (t *Tensor) resolveChunkVersions(ctx context.Context) error {
	return t.resolveChunkVersionsWith(ctx, nil, false)
}

// resolveChunkVersionsWith is resolveChunkVersions with an optional override
// for the head version's chunk set: when haveHead is true, headChunks is used
// instead of reading the head's chunk_set.json. Root-snapshot loading passes
// the embedded set, since the plain head object may be torn by a writer
// killed mid-flush while ancestor chunk sets are frozen at commit time.
func (t *Tensor) resolveChunkVersionsWith(ctx context.Context, headChunks []uint64, haveHead bool) error {
	anc, err := t.ds.tree.Ancestry(t.ds.head)
	if err != nil {
		return err
	}
	t.chunkVersion = map[uint64]string{}
	t.chunkSet = map[uint64]bool{}
	for i, vid := range anc {
		var ids []uint64
		if i == 0 && haveHead {
			ids = headChunks
		} else {
			raw, err := t.ds.store.Get(ctx, chunkSetKey(vid, t.name))
			if storage.IsNotFound(err) {
				continue
			}
			if err != nil {
				return err
			}
			var set chunkSetFile
			if err := unmarshalJSON(raw, &set); err != nil {
				return err
			}
			ids = set.Chunks
		}
		for _, id := range ids {
			if _, seen := t.chunkVersion[id]; !seen {
				t.chunkVersion[id] = vid
			}
			if i == 0 {
				t.chunkSet[id] = true
			}
		}
	}
	return nil
}

// Name returns the tensor name.
func (t *Tensor) Name() string { return t.name }

// ChunkIdentity returns the storage object key of a chunk —
// versions/<vid>/tensors/<name>/chunks/<id> — which is the chunk's
// commit-scoped identity: vid is the version directory that owns the bytes,
// so the same chunk id on two branches (NextChunkID rides versioned meta
// and can collide across them) yields two distinct identities, and a
// checkout that rebinds the id to another version's bytes changes the
// identity with it. Shared decoded-chunk caches use this (plus the
// dataset's ScopeID) as their key. A chunk not yet resolved to a version —
// a pending chunk still in the writer — is attributed to the current head.
func (t *Tensor) ChunkIdentity(chunkID uint64) string {
	t.ds.mu.RLock()
	defer t.ds.mu.RUnlock()
	t.mu.RLock()
	defer t.mu.RUnlock()
	vid, ok := t.chunkVersion[chunkID]
	if !ok {
		vid = t.ds.head
	}
	return chunkKey(vid, t.name, chunkID)
}

// Meta returns a copy of the tensor metadata.
func (t *Tensor) Meta() TensorMeta {
	t.ds.mu.RLock()
	defer t.ds.mu.RUnlock()
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.meta
}

// Htype returns the parsed htype spec.
func (t *Tensor) Htype() tensor.HtypeSpec { return t.spec }

// Dtype returns the element type.
func (t *Tensor) Dtype() tensor.Dtype {
	d, _ := tensor.ParseDtype(t.meta.Dtype)
	return d
}

// Len returns the logical row count.
func (t *Tensor) Len() uint64 {
	t.ds.mu.RLock()
	defer t.ds.mu.RUnlock()
	return t.lengthShared()
}

// lengthShared reads the row count under the tensor lock only; the caller
// already holds ds.mu (shared or exclusive).
func (t *Tensor) lengthShared() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.meta.Length
}

// EffectiveBounds returns the chunk builder's current working bounds: the
// static spec bounds reshaped by the autotune schedule (doubling toward the
// cap, shrink-on-regret after oversized seals, the mean-sample floor).
// Observability for ingest tooling; the schedule itself persists in the
// tensor metadata so reopened writers resume it.
func (t *Tensor) EffectiveBounds() chunk.Bounds {
	t.ds.mu.RLock()
	defer t.ds.mu.RUnlock()
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.builder.EffectiveBounds()
}

// NumChunks returns the number of chunks indexed by the chunk encoder.
func (t *Tensor) NumChunks() int {
	t.ds.mu.RLock()
	defer t.ds.mu.RUnlock()
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.chunkEnc.NumChunks()
}

// allocChunkID hands out the next chunk id. Caller holds the tensor write
// lock (or ds.mu exclusively).
func (t *Tensor) allocChunkID() uint64 {
	id := t.meta.NextChunkID
	t.meta.NextChunkID++
	return id
}

// save persists tensor metadata, encoders, chunk set and diff into the
// current head version directory. The writes route through the flush
// pipeline when one is configured (they are independent objects; callers
// drain before persisting the root files that reference them). Caller
// holds ds.mu exclusively.
func (t *Tensor) save(ctx context.Context) error {
	st, err := t.snapshotState()
	if err != nil {
		return err
	}
	vid := t.ds.head
	if err := t.ds.putObject(ctx, tensorMetaKey(vid, t.name), mustJSON(st.Meta)); err != nil {
		return err
	}
	for key, blob := range map[string][]byte{
		chunkEncoderKey(vid, t.name): st.ChunkEnc,
		shapeEncoderKey(vid, t.name): st.ShapeEnc,
		tileEncoderKey(vid, t.name):  st.TileEnc,
		seqEncoderKey(vid, t.name):   st.SeqEnc,
	} {
		if err := t.ds.putObject(ctx, key, blob); err != nil {
			return err
		}
	}
	if err := t.ds.putObject(ctx, chunkSetKey(vid, t.name), mustJSON(st.ChunkSet)); err != nil {
		return err
	}
	if err := t.ds.putObject(ctx, diffKey(vid, t.name), mustJSON(st.Diff)); err != nil {
		return err
	}
	t.savedState, t.savedStateOK = st, true
	return nil
}

// snapshotState captures the tensor's live state as a root-snapshot record.
// The Checksums map is deep-copied: the live map keeps growing as chunks are
// written, while the snapshot must stay frozen at save time.
func (t *Tensor) snapshotState() (tensorRootState, error) {
	st := tensorRootState{Meta: t.meta, Diff: t.diff}
	if len(t.meta.Checksums) > 0 {
		cs := make(map[string]uint32, len(t.meta.Checksums))
		for k, v := range t.meta.Checksums {
			cs[k] = v
		}
		st.Meta.Checksums = cs
	}
	// Freeze the autotuner's schedule position into the snapshot (fresh
	// pointer: the live builder keeps moving after save).
	at := t.builder.AutotuneState()
	st.Meta.Autotune = &at
	var err error
	if st.ChunkEnc, err = t.chunkEnc.MarshalBinary(); err != nil {
		return st, err
	}
	if st.ShapeEnc, err = t.shapeEnc.MarshalBinary(); err != nil {
		return st, err
	}
	if st.TileEnc, err = t.tileEnc.MarshalBinary(); err != nil {
		return st, err
	}
	if st.SeqEnc, err = t.seqEnc.MarshalBinary(); err != nil {
		return st, err
	}
	ids := make([]uint64, 0, len(t.chunkSet))
	for id := range t.chunkSet {
		ids = append(ids, id)
	}
	sortUint64s(ids)
	st.ChunkSet = chunkSetFile{Chunks: ids}
	return st, nil
}

// rootState returns the state a root snapshot should embed: the last durably
// saved state when one exists, else the live state of a tensor created in
// this process and not yet saved (necessarily empty, hence durable).
func (t *Tensor) rootState() (tensorRootState, error) {
	if t.savedStateOK {
		return t.savedState, nil
	}
	return t.snapshotState()
}

// flushPending seals the buffered chunk and writes it to storage. Caller
// holds the tensor write lock (or ds.mu exclusively). pendingSamples is
// cleared as soon as the builder is consumed — from that point the sealed
// blob (inline-stored, or held in the pipeline's pending map) is the
// authoritative copy those rows are read from.
func (t *Tensor) flushPending(ctx context.Context) error {
	if t.builder.Len() == 0 {
		return nil
	}
	blob, _, err := t.builder.Flush()
	if err != nil {
		return err
	}
	t.pendingSamples = nil
	return t.writeChunk(ctx, t.pendingID, blob)
}

// writeChunk compresses and stores one chunk blob in the head version,
// updating the chunk set and version map. With a flush pipeline configured
// the sealed blob is handed to the background uploaders and the call
// returns once the chunk is queued (readers see it through the pipeline's
// pending map until the upload lands); otherwise the Put happens inline.
// Caller holds the tensor write lock (or ds.mu exclusively); ds.head is
// stable because every writer also holds ds.mu shared.
func (t *Tensor) writeChunk(ctx context.Context, id uint64, blob []byte) error {
	if t.chunkCodec != nil {
		var err error
		blob, err = t.chunkCodec.Compress(blob)
		if err != nil {
			return err
		}
	}
	// Record the stored object's CRC32C in the checksum manifest before the
	// bytes go out: the digest describes the blob we hand to storage, so
	// even a parked-and-redriven upload lands bytes matching the manifest.
	if t.meta.Checksums == nil {
		t.meta.Checksums = map[string]uint32{}
	}
	t.meta.Checksums[chunkName(id)] = storage.Checksum(blob)
	key := chunkKey(t.ds.head, t.name, id)
	if fp := t.ds.flusher; fp != nil {
		// The pipeline records the blob even when enqueue errors (sticky
		// failure or cancelled backpressure wait): the bytes stay readable
		// and a later flush redrives them. Register the chunk in the index
		// maps regardless so tensor state stays consistent with the rows
		// the chunk encoder already references, then surface the error as
		// deferred — append paths finish recording their row before
		// reporting it, keeping multi-tensor rows aligned.
		err := fp.enqueue(ctx, key, blob)
		t.chunkSet[id] = true
		t.chunkVersion[id] = t.ds.head
		if err != nil {
			return &DeferredFlushError{Cause: err}
		}
		return nil
	}
	if err := t.ds.store.Put(ctx, key, blob); err != nil {
		return err
	}
	t.chunkSet[id] = true
	t.chunkVersion[id] = t.ds.head
	return nil
}

// readChunk fetches, decompresses and integrity-checks chunk id, resolving
// the owning version directory through the version map. Chunks whose upload
// is still in flight are served from the pipeline's pending map, so
// same-process readers never race the background uploaders.
//
// Corruption detected above the storage chain (a decompression failure or a
// failed chunk-footer CRC) is healed once: the poisoned copy is evicted from
// any cache in the chain and the chunk re-fetched through the verifying
// providers. Bytes that are still bad after that surface as an error naming
// the exact object, wrapping chunk.ErrCorrupt.
func (t *Tensor) readChunk(ctx context.Context, id uint64) ([]byte, error) {
	vid, ok := t.chunkVersion[id]
	if !ok {
		return nil, fmt.Errorf("core: chunk %d of tensor %q not found in any version", id, t.name)
	}
	key := chunkKey(vid, t.name, id)
	raw, inflight := []byte(nil), false
	if fp := t.ds.flusher; fp != nil {
		raw, inflight = fp.lookup(key)
	}
	if !inflight {
		var err error
		raw, err = t.ds.store.Get(ctx, key)
		if err != nil {
			if storage.IsNotFound(err) {
				return nil, fmt.Errorf("core: chunk object %q of tensor %q is referenced by the manifest but missing from storage: %w", key, t.name, err)
			}
			return nil, err
		}
	}
	blob, err := t.decodeChunkBlob(raw)
	if err == nil {
		return blob, nil
	}
	if inflight {
		// In-memory pending bytes never involve a cache or transport;
		// corruption here is a real bug, not a heal candidate.
		return nil, fmt.Errorf("core: in-flight chunk %q of tensor %q: %w", key, t.name, err)
	}
	storage.Evict(t.ds.store, key)
	raw, ferr := t.ds.store.Get(ctx, key)
	if ferr != nil {
		return nil, fmt.Errorf("core: re-fetch of corrupt chunk %q of tensor %q failed: %w", key, t.name, ferr)
	}
	blob, err = t.decodeChunkBlob(raw)
	if err != nil {
		return nil, fmt.Errorf("core: chunk object %q of tensor %q is corrupt after re-fetch: %w", key, t.name, err)
	}
	return blob, nil
}

// decodeChunkBlob decompresses a stored chunk object and verifies its footer
// CRC when the chunk format carries one. Every failure mode wraps
// chunk.ErrCorrupt: a blob that fails to decompress is by definition not the
// bytes the writer produced.
func (t *Tensor) decodeChunkBlob(raw []byte) ([]byte, error) {
	blob := raw
	if t.chunkCodec != nil {
		var err error
		blob, err = t.chunkCodec.Decompress(raw)
		if err != nil {
			return nil, fmt.Errorf("%w: decompress: %w", chunk.ErrCorrupt, err)
		}
	}
	if _, err := chunk.Verify(blob); err != nil {
		return nil, err
	}
	return blob, nil
}

func sortUint64s(s []uint64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func mustJSON(v any) []byte {
	b, err := marshalJSON(v)
	if err != nil {
		panic(err)
	}
	return b
}

func unmarshalJSON(data []byte, v any) error { return json.Unmarshal(data, v) }
