package core

import (
	"bytes"
	"context"
	"fmt"
	"image"
	"image/color"
	_ "image/jpeg" // registered for AppendEncoded shape sniffing
	_ "image/png"

	"repro/internal/chunk"
	"repro/internal/encoder"
	"repro/internal/tensor"
)

// Append adds one sample to the tensor. For sequence tensors use
// AppendSequence; for link tensors use AppendLink.
func (t *Tensor) Append(ctx context.Context, arr *tensor.NDArray) error {
	t.ds.mu.Lock()
	defer t.ds.mu.Unlock()
	if err := t.ds.ensureWritable(); err != nil {
		return err
	}
	if t.spec.Sequence {
		return fmt.Errorf("core: tensor %q is a sequence tensor; use AppendSequence", t.name)
	}
	if t.spec.Link {
		return fmt.Errorf("core: tensor %q is a link tensor; use AppendLink", t.name)
	}
	s, err := t.encodeSample(arr)
	if err != nil {
		return err
	}
	if err := t.appendEncodedSample(ctx, s, arr); err != nil {
		return err
	}
	t.meta.Length++
	t.diff.AddedTo = t.meta.Length
	return nil
}

// AppendBatch appends samples along the first axis of a stacked array: a
// [N, ...] array becomes N samples of shape [...].
func (t *Tensor) AppendBatch(ctx context.Context, batch *tensor.NDArray) error {
	if batch.NDim() == 0 {
		return fmt.Errorf("core: batch must have a leading axis")
	}
	n := batch.Shape()[0]
	for i := 0; i < n; i++ {
		row, err := batch.Index(i)
		if err != nil {
			return err
		}
		if err := t.Append(ctx, row); err != nil {
			return err
		}
	}
	return nil
}

// AppendSequence adds one row of ordered items to a sequence tensor
// (§3.3, sequence[image]). Items are validated against the base htype.
func (t *Tensor) AppendSequence(ctx context.Context, items []*tensor.NDArray) error {
	t.ds.mu.Lock()
	defer t.ds.mu.Unlock()
	if err := t.ds.ensureWritable(); err != nil {
		return err
	}
	if !t.spec.Sequence {
		return fmt.Errorf("core: tensor %q is not a sequence tensor", t.name)
	}
	for _, item := range items {
		s, err := t.encodeSample(item)
		if err != nil {
			return err
		}
		if err := t.appendEncodedSample(ctx, s, item); err != nil {
			return err
		}
	}
	if err := t.seqEnc.AppendRow(len(items)); err != nil {
		return err
	}
	t.meta.Length++
	t.diff.AddedTo = t.meta.Length
	return nil
}

// AppendLink adds a reference to externally stored data to a link tensor
// (§4.5: linked tensors store pointers to one or multiple cloud providers).
func (t *Tensor) AppendLink(ctx context.Context, url string) error {
	t.ds.mu.Lock()
	defer t.ds.mu.Unlock()
	if err := t.ds.ensureWritable(); err != nil {
		return err
	}
	if !t.spec.Link {
		return fmt.Errorf("core: tensor %q is not a link tensor", t.name)
	}
	s := chunk.Sample{Shape: []int{len(url)}, Data: []byte(url)}
	if err := t.appendEncodedSample(ctx, s, nil); err != nil {
		return err
	}
	t.meta.Length++
	t.diff.AddedTo = t.meta.Length
	return nil
}

// AppendEncoded copies pre-encoded media bytes straight into a chunk
// without recoding, the paper's fast ingestion path (§5: "If a raw image
// compression matches the tensor sample compression, the binary is directly
// copied into a chunk without additional decoding"). The sample shape is
// sniffed from the media header.
func (t *Tensor) AppendEncoded(ctx context.Context, data []byte) error {
	t.ds.mu.Lock()
	defer t.ds.mu.Unlock()
	if err := t.ds.ensureWritable(); err != nil {
		return err
	}
	if t.sampleCodec == nil {
		return fmt.Errorf("core: tensor %q has no sample compression; AppendEncoded requires one", t.name)
	}
	cfg, format, err := image.DecodeConfig(bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("core: cannot sniff media header: %w", err)
	}
	if format != t.meta.SampleCompression {
		return fmt.Errorf("core: media format %q does not match tensor sample compression %q", format, t.meta.SampleCompression)
	}
	shape := []int{cfg.Height, cfg.Width, 3}
	if cfg.ColorModel == color.GrayModel || cfg.ColorModel == color.Gray16Model {
		shape = []int{cfg.Height, cfg.Width}
	}
	s := chunk.Sample{Shape: shape, Data: data}
	if err := t.appendEncodedSample(ctx, s, nil); err != nil {
		return err
	}
	t.meta.Length++
	t.diff.AddedTo = t.meta.Length
	return nil
}

// encodeSample validates a sample against the htype and encodes it for
// storage: media codec output for sample-compressed tensors, raw
// little-endian bytes otherwise.
func (t *Tensor) encodeSample(arr *tensor.NDArray) (chunk.Sample, error) {
	if err := t.spec.Base.Check(arr); err != nil {
		return chunk.Sample{}, err
	}
	if want := t.Dtype(); arr.Dtype() != want && t.spec.Base.Name != "generic" {
		if len(t.spec.Base.AllowedDtypes) > 0 {
			allowed := false
			for _, d := range t.spec.Base.AllowedDtypes {
				if arr.Dtype() == d {
					allowed = true
					break
				}
			}
			if !allowed {
				return chunk.Sample{}, fmt.Errorf("core: dtype %s not allowed for tensor %q", arr.Dtype(), t.name)
			}
		}
	} else if arr.Dtype() != want && t.spec.Base.Name == "generic" {
		return chunk.Sample{}, fmt.Errorf("core: dtype %s does not match tensor %q dtype %s", arr.Dtype(), t.name, want)
	}
	if t.sampleCodec != nil {
		shape := arr.Shape()
		var h, w, c int
		switch arr.NDim() {
		case 2:
			h, w, c = shape[0], shape[1], 1
		case 3:
			h, w, c = shape[0], shape[1], shape[2]
		default:
			return chunk.Sample{}, fmt.Errorf("core: sample compression requires 2-d or 3-d samples, got %d-d", arr.NDim())
		}
		data, err := t.sampleCodec.Encode(arr.Bytes(), h, w, c)
		if err != nil {
			return chunk.Sample{}, err
		}
		return chunk.Sample{Shape: append([]int(nil), shape...), Data: data}, nil
	}
	data := make([]byte, arr.NumBytes())
	copy(data, arr.Bytes())
	return chunk.Sample{Shape: append([]int(nil), arr.Shape()...), Data: data}, nil
}

// appendEncodedSample routes a storage-ready sample to the buffered
// builder, an oversized single-sample chunk, or the tiling path. Caller
// holds the write lock. arr is the decoded array when available (needed for
// tiling); nil for media/link samples which are never tiled.
func (t *Tensor) appendEncodedSample(ctx context.Context, s chunk.Sample, arr *tensor.NDArray) error {
	idx := t.chunkEnc.NumSamples()
	switch {
	case t.builder.NeedsTiling(len(s.Data)) && arr != nil && t.sampleCodec == nil && t.spec.Base.Name != "video":
		// Raw oversize sample: spatial tiling (§3.4).
		if err := t.appendTiled(ctx, idx, arr); err != nil {
			return err
		}
	case t.builder.NeedsTiling(len(s.Data)):
		// Videos and compressed media stay whole in their own chunk
		// (§3.4: "The only exception to tiling is videos").
		if err := t.flushPending(ctx); err != nil {
			return err
		}
		id := t.allocChunkID()
		blob, err := chunk.Encode([]chunk.Sample{s})
		if err != nil {
			return err
		}
		if err := t.writeChunk(ctx, id, blob); err != nil {
			return err
		}
		if err := t.chunkEnc.Append(id, 1); err != nil {
			return err
		}
	default:
		if t.builder.ShouldFlushBefore(len(s.Data)) {
			if err := t.flushPending(ctx); err != nil {
				return err
			}
		}
		if t.builder.Len() == 0 {
			t.pendingID = t.allocChunkID()
		}
		if err := t.builder.Append(s); err != nil {
			return err
		}
		t.pendingSamples = append(t.pendingSamples, s)
		if err := t.chunkEnc.Append(t.pendingID, 1); err != nil {
			return err
		}
	}
	t.shapeEnc.Append(s.Shape)
	return nil
}

// appendTiled splits an oversize raw sample across tile chunks and records
// the layout in the tile encoder. Caller holds the write lock.
func (t *Tensor) appendTiled(ctx context.Context, idx uint64, arr *tensor.NDArray) error {
	if err := t.flushPending(ctx); err != nil {
		return err
	}
	layout, err := chunk.PlanTiles(arr.Shape(), arr.Dtype().Size(), t.meta.Bounds.Target)
	if err != nil {
		return err
	}
	tiles, err := layout.Split(arr)
	if err != nil {
		return err
	}
	ids := make([]uint64, 0, len(tiles))
	for _, tile := range tiles {
		id := t.allocChunkID()
		blob, err := chunk.Encode([]chunk.Sample{{
			Shape: tile.Shape(),
			Data:  tile.Bytes(),
		}})
		if err != nil {
			return err
		}
		if err := t.writeChunk(ctx, id, blob); err != nil {
			return err
		}
		ids = append(ids, id)
	}
	if err := t.tileEnc.Set(idx, encoder.TileEntry{Layout: layout, ChunkIDs: ids}); err != nil {
		return err
	}
	// The chunk encoder still needs a row so index arithmetic stays
	// contiguous; the first tile chunk stands for the sample.
	return t.chunkEnc.Append(ids[0], 1)
}
