package core

import (
	"bytes"
	"context"
	"fmt"
	"image"
	"image/color"
	_ "image/jpeg" // registered for AppendEncoded shape sniffing
	_ "image/png"

	"repro/internal/chunk"
	"repro/internal/encoder"
	"repro/internal/tensor"
)

// The append paths below share one locking discipline: sample validation
// and encoding (htype checks, media codecs, byte copies — the CPU-heavy
// part) run outside every lock, then the append takes ds.mu shared (so the
// dataset cannot be flushed, committed, or checked out mid-append, while
// appends to other tensors proceed concurrently) plus this tensor's write
// lock for the index/builder mutation, which with a flush pipeline
// configured is pure in-memory work.

// beginWrite takes the shared structure lock and re-checks that the write
// can proceed: the dataset must be writable, and this handle must still be
// the live tensor — a Checkout during the unlocked encoding replaces
// ds.tensors with fresh objects, and committing to an orphaned handle
// would silently lose the write. On success the caller holds ds.mu.RLock.
func (t *Tensor) beginWrite() error {
	t.ds.mu.RLock()
	if err := t.ds.ensureWritable(); err != nil {
		t.ds.mu.RUnlock()
		return err
	}
	if t.ds.tensors[t.name] != t {
		t.ds.mu.RUnlock()
		return fmt.Errorf("core: tensor handle %q is stale (a checkout replaced it); reacquire it with Dataset.Tensor", t.name)
	}
	return nil
}

// writableNow snapshots writability without retaining any lock; append
// paths use it to surface the detached-checkout error before paying for
// encoding.
func (ds *Dataset) writableNow() error {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	return ds.ensureWritable()
}

// Append adds one sample to the tensor. For sequence tensors use
// AppendSequence; for link tensors use AppendLink.
func (t *Tensor) Append(ctx context.Context, arr *tensor.NDArray) error {
	if err := t.ds.writableNow(); err != nil {
		return err
	}
	if t.spec.Sequence {
		return fmt.Errorf("core: tensor %q is a sequence tensor; use AppendSequence", t.name)
	}
	if t.spec.Link {
		return fmt.Errorf("core: tensor %q is a link tensor; use AppendLink", t.name)
	}
	s, err := t.encodeSample(arr)
	if err != nil {
		return err
	}
	if err := t.beginWrite(); err != nil {
		return err
	}
	defer t.ds.mu.RUnlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	err = t.appendEncodedSample(ctx, s, arr)
	if err != nil && !isDeferredFlush(err) {
		return err
	}
	t.meta.Length++
	t.diff.AddedTo = t.meta.Length
	return err
}

// AppendBatch appends samples along the first axis of a stacked array: a
// [N, ...] array becomes N samples of shape [...]. The whole batch is
// validated and encoded up front, outside every lock, and appended under a
// single lock acquisition — one writability check and one lock handoff per
// batch instead of per row.
func (t *Tensor) AppendBatch(ctx context.Context, batch *tensor.NDArray) error {
	if batch.NDim() == 0 {
		return fmt.Errorf("core: batch must have a leading axis")
	}
	if err := t.ds.writableNow(); err != nil {
		return err
	}
	if t.spec.Sequence {
		return fmt.Errorf("core: tensor %q is a sequence tensor; use AppendSequence", t.name)
	}
	if t.spec.Link {
		return fmt.Errorf("core: tensor %q is a link tensor; use AppendLink", t.name)
	}
	n := batch.Shape()[0]
	rows := make([]*tensor.NDArray, 0, n)
	encoded := make([]chunk.Sample, 0, n)
	for i := 0; i < n; i++ {
		row, err := batch.Index(i)
		if err != nil {
			return err
		}
		s, err := t.encodeSample(row)
		if err != nil {
			return err
		}
		rows = append(rows, row)
		encoded = append(encoded, s)
	}
	if err := t.beginWrite(); err != nil {
		return err
	}
	defer t.ds.mu.RUnlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	var dc deferredCollector
	for i, s := range encoded {
		if err := dc.note(t.appendEncodedSample(ctx, s, rows[i])); err != nil {
			return err
		}
		t.meta.Length++
		t.diff.AddedTo = t.meta.Length
	}
	return dc.err()
}

// AppendSequence adds one row of ordered items to a sequence tensor
// (§3.3, sequence[image]). Items are validated against the base htype.
func (t *Tensor) AppendSequence(ctx context.Context, items []*tensor.NDArray) error {
	if err := t.ds.writableNow(); err != nil {
		return err
	}
	if !t.spec.Sequence {
		return fmt.Errorf("core: tensor %q is not a sequence tensor", t.name)
	}
	encoded := make([]chunk.Sample, 0, len(items))
	for _, item := range items {
		s, err := t.encodeSample(item)
		if err != nil {
			return err
		}
		encoded = append(encoded, s)
	}
	if err := t.beginWrite(); err != nil {
		return err
	}
	defer t.ds.mu.RUnlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	var dc deferredCollector
	for i, s := range encoded {
		if err := dc.note(t.appendEncodedSample(ctx, s, items[i])); err != nil {
			return err
		}
	}
	if err := t.seqEnc.AppendRow(len(items)); err != nil {
		return err
	}
	t.meta.Length++
	t.diff.AddedTo = t.meta.Length
	return dc.err()
}

// AppendLink adds a reference to externally stored data to a link tensor
// (§4.5: linked tensors store pointers to one or multiple cloud providers).
func (t *Tensor) AppendLink(ctx context.Context, url string) error {
	// No expensive encoding precedes the lock here, so a single
	// beginWrite suffices (writability is checked under it, before the
	// link-type check, matching the other append paths' error order).
	if err := t.beginWrite(); err != nil {
		return err
	}
	defer t.ds.mu.RUnlock()
	if !t.spec.Link {
		return fmt.Errorf("core: tensor %q is not a link tensor", t.name)
	}
	s := chunk.Sample{Shape: []int{len(url)}, Data: []byte(url)}
	t.mu.Lock()
	defer t.mu.Unlock()
	err := t.appendEncodedSample(ctx, s, nil)
	if err != nil && !isDeferredFlush(err) {
		return err
	}
	t.meta.Length++
	t.diff.AddedTo = t.meta.Length
	return err
}

// AppendEncoded copies pre-encoded media bytes straight into a chunk
// without recoding, the paper's fast ingestion path (§5: "If a raw image
// compression matches the tensor sample compression, the binary is directly
// copied into a chunk without additional decoding"). The sample shape is
// sniffed from the media header, outside any lock.
func (t *Tensor) AppendEncoded(ctx context.Context, data []byte) error {
	if err := t.ds.writableNow(); err != nil {
		return err
	}
	if t.sampleCodec == nil {
		return fmt.Errorf("core: tensor %q has no sample compression; AppendEncoded requires one", t.name)
	}
	cfg, format, err := image.DecodeConfig(bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("core: cannot sniff media header: %w", err)
	}
	if format != t.meta.SampleCompression {
		return fmt.Errorf("core: media format %q does not match tensor sample compression %q", format, t.meta.SampleCompression)
	}
	shape := []int{cfg.Height, cfg.Width, 3}
	if cfg.ColorModel == color.GrayModel || cfg.ColorModel == color.Gray16Model {
		shape = []int{cfg.Height, cfg.Width}
	}
	s := chunk.Sample{Shape: shape, Data: data}
	if err := t.beginWrite(); err != nil {
		return err
	}
	defer t.ds.mu.RUnlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	err = t.appendEncodedSample(ctx, s, nil)
	if err != nil && !isDeferredFlush(err) {
		return err
	}
	t.meta.Length++
	t.diff.AddedTo = t.meta.Length
	return err
}

// encodeSample validates a sample against the htype and encodes it for
// storage: media codec output for sample-compressed tensors, raw
// little-endian bytes otherwise. It touches only immutable tensor
// configuration and therefore runs without any lock, so concurrent
// appenders (transform workers, batch ingestors) encode in parallel.
func (t *Tensor) encodeSample(arr *tensor.NDArray) (chunk.Sample, error) {
	if err := t.spec.Base.Check(arr); err != nil {
		return chunk.Sample{}, err
	}
	if want := t.Dtype(); arr.Dtype() != want && t.spec.Base.Name != "generic" {
		if len(t.spec.Base.AllowedDtypes) > 0 {
			allowed := false
			for _, d := range t.spec.Base.AllowedDtypes {
				if arr.Dtype() == d {
					allowed = true
					break
				}
			}
			if !allowed {
				return chunk.Sample{}, fmt.Errorf("core: dtype %s not allowed for tensor %q", arr.Dtype(), t.name)
			}
		}
	} else if arr.Dtype() != want && t.spec.Base.Name == "generic" {
		return chunk.Sample{}, fmt.Errorf("core: dtype %s does not match tensor %q dtype %s", arr.Dtype(), t.name, want)
	}
	if t.sampleCodec != nil {
		shape := arr.Shape()
		var h, w, c int
		switch arr.NDim() {
		case 2:
			h, w, c = shape[0], shape[1], 1
		case 3:
			h, w, c = shape[0], shape[1], shape[2]
		default:
			return chunk.Sample{}, fmt.Errorf("core: sample compression requires 2-d or 3-d samples, got %d-d", arr.NDim())
		}
		data, err := t.sampleCodec.Encode(arr.Bytes(), h, w, c)
		if err != nil {
			return chunk.Sample{}, err
		}
		return chunk.Sample{Shape: append([]int(nil), shape...), Data: data}, nil
	}
	data := make([]byte, arr.NumBytes())
	copy(data, arr.Bytes())
	return chunk.Sample{Shape: append([]int(nil), arr.Shape()...), Data: data}, nil
}

// appendEncodedSample routes a storage-ready sample to the buffered
// builder, an oversized single-sample chunk, or the tiling path. Caller
// holds the tensor write lock. arr is the decoded array when available
// (needed for tiling); nil for media/link samples which are never tiled.
//
// Deferred flush errors (a writeChunk whose bytes were accepted and parked
// by the pipeline) do not abort the append: the sample is fully recorded
// in the builder and encoders and the error is returned afterwards, so
// callers — in particular multi-tensor row appends — never leave torn
// index state behind a storage hiccup. Structural errors still abort.
func (t *Tensor) appendEncodedSample(ctx context.Context, s chunk.Sample, arr *tensor.NDArray) error {
	var dc deferredCollector
	note := dc.note
	idx := t.chunkEnc.NumSamples()
	switch {
	case t.builder.NeedsTiling(len(s.Data)) && arr != nil && t.sampleCodec == nil && t.spec.Base.Name != "video":
		// Raw oversize sample: spatial tiling (§3.4).
		if err := t.appendTiled(ctx, idx, arr, note); err != nil {
			return err
		}
	case t.builder.NeedsTiling(len(s.Data)):
		// Videos and compressed media stay whole in their own chunk
		// (§3.4: "The only exception to tiling is videos").
		if err := note(t.flushPending(ctx)); err != nil {
			return err
		}
		id := t.allocChunkID()
		blob, err := chunk.Encode([]chunk.Sample{s})
		if err != nil {
			return err
		}
		if err := note(t.writeChunk(ctx, id, blob)); err != nil {
			return err
		}
		if err := t.chunkEnc.Append(id, 1); err != nil {
			return err
		}
	default:
		if t.builder.ShouldFlushBefore(len(s.Data)) {
			if err := note(t.flushPending(ctx)); err != nil {
				return err
			}
		}
		if t.builder.Len() == 0 {
			t.pendingID = t.allocChunkID()
		}
		if err := t.builder.Append(s); err != nil {
			return err
		}
		t.pendingSamples = append(t.pendingSamples, s)
		if err := t.chunkEnc.Append(t.pendingID, 1); err != nil {
			return err
		}
	}
	t.shapeEnc.Append(s.Shape)
	return dc.err()
}

// appendTiled splits an oversize raw sample across tile chunks and records
// the layout in the tile encoder. Caller holds the tensor write lock; note
// classifies writeChunk errors (deferred flush failures are collected, the
// tile layout is still fully recorded).
func (t *Tensor) appendTiled(ctx context.Context, idx uint64, arr *tensor.NDArray, note func(error) error) error {
	if err := note(t.flushPending(ctx)); err != nil {
		return err
	}
	layout, err := chunk.PlanTiles(arr.Shape(), arr.Dtype().Size(), t.meta.Bounds.Target)
	if err != nil {
		return err
	}
	tiles, err := layout.Split(arr)
	if err != nil {
		return err
	}
	ids := make([]uint64, 0, len(tiles))
	for _, tile := range tiles {
		id := t.allocChunkID()
		blob, err := chunk.Encode([]chunk.Sample{{
			Shape: tile.Shape(),
			Data:  tile.Bytes(),
		}})
		if err != nil {
			return err
		}
		if err := note(t.writeChunk(ctx, id, blob)); err != nil {
			return err
		}
		ids = append(ids, id)
	}
	if err := t.tileEnc.Set(idx, encoder.TileEntry{Layout: layout, ChunkIDs: ids}); err != nil {
		return err
	}
	// The chunk encoder still needs a row so index arithmetic stays
	// contiguous; the first tile chunk stands for the sample.
	return t.chunkEnc.Append(ids[0], 1)
}
