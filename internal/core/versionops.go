package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/storage"
	"repro/internal/version"
)

// Commit flushes the working version, freezes it as an immutable snapshot
// with the given message, and opens a fresh mutable head (§4.2). It returns
// the commit id.
func (ds *Dataset) Commit(ctx context.Context, message string) (string, error) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if err := ds.ensureWritable(); err != nil {
		return "", err
	}
	if err := ds.flushLocked(ctx); err != nil {
		return "", err
	}
	committed, newHead, err := ds.tree.Commit(ds.branch, message, ds.now())
	if err != nil {
		return "", err
	}
	oldHead := ds.head
	ds.head = newHead.ID
	if err := ds.carryStateForward(ctx, oldHead); err != nil {
		return "", err
	}
	if err := ds.persistRoot(ctx); err != nil {
		return "", err
	}
	return committed.ID, nil
}

// carryStateForward copies schema, tensor metadata, encoders and resets
// chunk sets/diffs into the (new, empty) head version directory. Chunks are
// NOT copied — the new version holds only chunks modified in it (§4.2).
// Caller holds the write lock; ds.head is already the new version.
func (ds *Dataset) carryStateForward(ctx context.Context, from string) error {
	raw, err := ds.store.Get(ctx, schemaKey(from))
	if err != nil {
		return err
	}
	if err := ds.store.Put(ctx, schemaKey(ds.head), raw); err != nil {
		return err
	}
	for _, name := range ds.order {
		t := ds.tensors[name]
		t.chunkSet = map[uint64]bool{}
		t.diff = diffRecord{AddedFrom: t.meta.Length, AddedTo: t.meta.Length}
		if err := t.save(ctx); err != nil {
			return err
		}
	}
	// save routes through the flush pipeline; fence the new head's state
	// before the caller persists the root files.
	return ds.drainFlusher(ctx)
}

// Checkout switches to a branch, creating it when create is true, or enters
// a detached read-only state at a commit id. Pending writes are flushed
// first.
func (ds *Dataset) Checkout(ctx context.Context, ref string, create bool) error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.branch != "" {
		if err := ds.flushLocked(ctx); err != nil {
			return err
		}
	}
	if create {
		head, err := ds.tree.CreateBranch(ref, ds.currentRefLocked(), ds.now())
		if err != nil {
			return err
		}
		ds.branch = ref
		oldState := head.Parent
		ds.head = head.ID
		if oldState == "" {
			// Branch rooted at an empty lineage: fresh schema.
			if err := ds.store.Put(ctx, schemaKey(ds.head), mustJSON(schemaFile{Tensors: []string{}})); err != nil {
				return err
			}
		} else if err := ds.carryStateFrom(ctx, oldState); err != nil {
			return err
		}
		if err := ds.loadTensors(ctx); err != nil {
			return err
		}
		return ds.persistRoot(ctx)
	}
	node, err := ds.tree.Resolve(ref)
	if err != nil {
		return err
	}
	if _, isBranch := ds.tree.Heads[ref]; isBranch {
		ds.branch = ref
		ds.head = node.ID
	} else {
		// Detached checkout of a specific commit: read-only time travel
		// (§5.2).
		if !node.Committed {
			return fmt.Errorf("core: cannot checkout mutable head %q of another branch", ref)
		}
		ds.branch = ""
		ds.head = node.ID
	}
	if err := ds.loadTensors(ctx); err != nil {
		return err
	}
	return ds.persistRoot(ctx)
}

// carryStateFrom copies schema/meta/encoders from an existing version dir
// into the current head (used when forking a branch).
func (ds *Dataset) carryStateFrom(ctx context.Context, from string) error {
	raw, err := ds.store.Get(ctx, schemaKey(from))
	if err != nil {
		return err
	}
	if err := ds.store.Put(ctx, schemaKey(ds.head), raw); err != nil {
		return err
	}
	var schema schemaFile
	if err := unmarshalJSON(raw, &schema); err != nil {
		return err
	}
	for _, name := range schema.Tensors {
		for _, key := range []struct{ src, dst string }{
			{tensorMetaKey(from, name), tensorMetaKey(ds.head, name)},
			{chunkEncoderKey(from, name), chunkEncoderKey(ds.head, name)},
			{shapeEncoderKey(from, name), shapeEncoderKey(ds.head, name)},
			{tileEncoderKey(from, name), tileEncoderKey(ds.head, name)},
			{seqEncoderKey(from, name), seqEncoderKey(ds.head, name)},
		} {
			blob, err := ds.store.Get(ctx, key.src)
			if storage.IsNotFound(err) {
				continue
			}
			if err != nil {
				return err
			}
			if err := ds.store.Put(ctx, key.dst, blob); err != nil {
				return err
			}
		}
		// Fresh chunk set and diff for the fork head.
		if err := ds.store.Put(ctx, chunkSetKey(ds.head, name), mustJSON(chunkSetFile{})); err != nil {
			return err
		}
		var meta TensorMeta
		rawMeta, err := ds.store.Get(ctx, tensorMetaKey(from, name))
		if err != nil {
			return err
		}
		if err := unmarshalJSON(rawMeta, &meta); err != nil {
			return err
		}
		d := diffRecord{AddedFrom: meta.Length, AddedTo: meta.Length}
		if err := ds.store.Put(ctx, diffKey(ds.head, name), mustJSON(d)); err != nil {
			return err
		}
	}
	return nil
}

func (ds *Dataset) currentRefLocked() string {
	if ds.branch != "" {
		return ds.branch
	}
	return ds.head
}

// Log returns committed versions reachable from the current position,
// newest first.
func (ds *Dataset) Log() ([]*version.Node, error) {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	return ds.tree.Log(ds.currentRefLocked())
}

// Branches lists all branches.
func (ds *Dataset) Branches() []string {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	return ds.tree.Branches()
}

// TensorDiff summarizes one tensor's changes on one side of a Diff.
type TensorDiff struct {
	// Added counts samples appended.
	Added uint64
	// Updated lists indices modified in place.
	Updated []uint64
}

// DiffResult reports per-tensor changes of two refs relative to their
// common ancestor (§4.2 Diff).
type DiffResult struct {
	Base string
	// Left/Right map tensor name to its changes on each side.
	Left, Right map[string]TensorDiff
}

// Diff compares two refs (branch names or commit ids). Pending working-set
// changes are flushed first so the comparison reflects the live state.
func (ds *Dataset) Diff(ctx context.Context, a, b string) (*DiffResult, error) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.branch != "" {
		if err := ds.flushLocked(ctx); err != nil {
			return nil, err
		}
	}
	base, err := ds.tree.CommonAncestor(a, b)
	if err != nil {
		return nil, err
	}
	left, err := ds.collectDiffs(ctx, a, base)
	if err != nil {
		return nil, err
	}
	right, err := ds.collectDiffs(ctx, b, base)
	if err != nil {
		return nil, err
	}
	return &DiffResult{Base: base, Left: left, Right: right}, nil
}

// collectDiffs aggregates per-version diff records from ref down to (but
// excluding) base.
func (ds *Dataset) collectDiffs(ctx context.Context, ref, base string) (map[string]TensorDiff, error) {
	node, err := ds.tree.Resolve(ref)
	if err != nil {
		return nil, err
	}
	anc, err := ds.tree.Ancestry(node.ID)
	if err != nil {
		return nil, err
	}
	out := map[string]TensorDiff{}
	for _, vid := range anc {
		if vid == base {
			break
		}
		raw, err := ds.store.Get(ctx, schemaKey(vid))
		if storage.IsNotFound(err) {
			continue
		}
		if err != nil {
			return nil, err
		}
		var schema schemaFile
		if err := unmarshalJSON(raw, &schema); err != nil {
			return nil, err
		}
		for _, name := range schema.Tensors {
			rawDiff, err := ds.store.Get(ctx, diffKey(vid, name))
			if storage.IsNotFound(err) {
				continue
			}
			if err != nil {
				return nil, err
			}
			var d diffRecord
			if err := unmarshalJSON(rawDiff, &d); err != nil {
				return nil, err
			}
			agg := out[name]
			agg.Added += d.AddedTo - d.AddedFrom
			agg.Updated = append(agg.Updated, d.Updated...)
			out[name] = agg
		}
	}
	for name, agg := range out {
		sort.Slice(agg.Updated, func(i, j int) bool { return agg.Updated[i] < agg.Updated[j] })
		out[name] = agg
	}
	return out, nil
}

// MergePolicy resolves conflicting in-place updates during Merge.
type MergePolicy int

const (
	// MergeOurs keeps the destination branch's value on conflict.
	MergeOurs MergePolicy = iota
	// MergeTheirs takes the source branch's value on conflict.
	MergeTheirs
)

// Merge applies the changes of srcBranch since the common ancestor onto the
// current branch (§4.2 Merge): appended samples are appended here; in-place
// updates are re-applied, with conflicts (both sides updated the same
// index) resolved by policy.
func (ds *Dataset) Merge(ctx context.Context, srcBranch string, policy MergePolicy) error {
	if ds.Branch() == "" {
		return fmt.Errorf("core: cannot merge into a detached checkout")
	}
	if srcBranch == ds.Branch() {
		return fmt.Errorf("core: cannot merge a branch into itself")
	}
	diff, err := ds.Diff(ctx, srcBranch, ds.Branch())
	if err != nil {
		return err
	}
	// Open a read-only view of the source head to pull data from.
	srcNode, err := func() (*version.Node, error) {
		ds.mu.RLock()
		defer ds.mu.RUnlock()
		return ds.tree.Resolve(srcBranch)
	}()
	if err != nil {
		return err
	}
	src := &Dataset{
		store:   ds.store,
		meta:    ds.meta,
		tree:    ds.tree,
		branch:  "", // detached
		head:    srcNode.ID,
		tensors: map[string]*Tensor{},
		now:     ds.now,
	}
	if err := src.loadTensors(ctx); err != nil {
		return err
	}
	for name, change := range diff.Left {
		srcT := src.Tensor(name)
		dstT := ds.Tensor(name)
		if srcT == nil {
			continue
		}
		if dstT == nil {
			// Tensor created on the source branch: recreate here.
			spec := TensorSpec{
				Name:              name,
				Htype:             srcT.meta.Htype,
				Dtype:             srcT.Dtype(),
				SampleCompression: srcT.meta.SampleCompression,
				ChunkCompression:  srcT.meta.ChunkCompression,
				Hidden:            srcT.meta.Hidden,
				Bounds:            srcT.meta.Bounds,
			}
			var err error
			dstT, err = ds.CreateTensor(ctx, spec)
			if err != nil {
				return err
			}
		}
		// Appends: source samples beyond its base length.
		srcLen := srcT.Len()
		for idx := srcLen - change.Added; idx < srcLen; idx++ {
			arr, err := srcT.At(ctx, idx)
			if err != nil {
				return err
			}
			if err := dstT.Append(ctx, arr); err != nil {
				return err
			}
		}
		// Updates with conflict resolution.
		rightUpdated := map[uint64]bool{}
		if r, ok := diff.Right[name]; ok {
			for _, u := range r.Updated {
				rightUpdated[u] = true
			}
		}
		for _, idx := range change.Updated {
			if rightUpdated[idx] && policy == MergeOurs {
				continue // keep ours
			}
			if idx >= dstT.Len() {
				continue // updated a sample we do not have
			}
			arr, err := srcT.At(ctx, idx)
			if err != nil {
				return err
			}
			if err := dstT.SetAt(ctx, idx, arr); err != nil {
				return err
			}
		}
	}
	return ds.Flush(ctx)
}

// ReadAtVersion opens a detached read-only dataset at a specific commit,
// sharing storage with ds — the time-travel primitive behind TQL's
// versioned queries (§4.4).
func (ds *Dataset) ReadAtVersion(ctx context.Context, ref string) (*Dataset, error) {
	ds.mu.RLock()
	node, err := ds.tree.Resolve(ref)
	ds.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	if !node.Committed {
		// A branch head: read it through a detached twin as well.
		if _, isBranch := ds.tree.Heads[ref]; !isBranch {
			return nil, fmt.Errorf("core: ref %q is not a commit or branch", ref)
		}
	}
	out := &Dataset{
		store:   ds.store,
		meta:    ds.meta,
		tree:    ds.tree,
		branch:  "",
		head:    node.ID,
		tensors: map[string]*Tensor{},
		now:     ds.now,
	}
	if err := out.loadTensors(ctx); err != nil {
		return nil, err
	}
	return out, nil
}
