package core

import (
	"context"
	"sync/atomic"
	"testing"

	"repro/internal/chunk"
	"repro/internal/storage"
	"repro/internal/tensor"
)

// scanDataset builds a flushed single-tensor dataset with enough rows to
// span several chunks.
func scanDataset(t *testing.T, n int) (*Dataset, *Tensor) {
	t.Helper()
	ctx := context.Background()
	ds, err := Create(ctx, storage.NewMemory(), "scan")
	if err != nil {
		t.Fatal(err)
	}
	x, err := ds.CreateTensor(ctx, TensorSpec{
		Name: "x", Dtype: tensor.Int32,
		Bounds: chunk.Bounds{Min: 256, Target: 512, Max: 1024},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		arr, _ := tensor.FromFloat64s(tensor.Int32, []int{4}, []float64{float64(i), 0, 0, 0})
		if err := x.Append(ctx, arr); err != nil {
			t.Fatal(err)
		}
	}
	if err := ds.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	return ds, x
}

// TestScanReaderFetchHook: a reader built with NewScanReaderWith pulls every
// chunk through the hook exactly once per chunk on an ascending walk, and
// StoredAt hands back the stored samples the direct path would decode.
func TestScanReaderFetchHook(t *testing.T) {
	const n = 200
	ctx := context.Background()
	_, x := scanDataset(t, n)

	var fetches int64
	r := x.NewScanReaderWith(func(ctx context.Context, chunkID uint64) ([]chunk.Sample, error) {
		atomic.AddInt64(&fetches, 1)
		return x.ReadChunkSamples(ctx, chunkID)
	})
	for i := uint64(0); i < n; i++ {
		s, ok, err := r.StoredAt(ctx, i)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("row %d took the fallback path on a plain flushed tensor", i)
		}
		arr, err := x.DecodeStored(s.Data, s.Shape)
		if err != nil {
			t.Fatal(err)
		}
		if v, _ := arr.At(0); v != float64(i) {
			t.Fatalf("row %d decoded to %v", i, v)
		}
	}
	if want := int64(x.NumChunks()); fetches != want {
		t.Fatalf("ascending walk fetched %d times for %d chunks", fetches, want)
	}
}

// TestScanReaderAtMatchesTensorAt: the chunk-reusing read path returns the
// same arrays as the direct per-sample path, including via the fetch hook.
func TestScanReaderAtMatchesTensorAt(t *testing.T) {
	const n = 120
	ctx := context.Background()
	_, x := scanDataset(t, n)
	direct := x.NewScanReader()
	hooked := x.NewScanReaderWith(func(ctx context.Context, chunkID uint64) ([]chunk.Sample, error) {
		return x.ReadChunkSamples(ctx, chunkID)
	})
	for i := uint64(0); i < n; i++ {
		want, err := x.At(ctx, i)
		if err != nil {
			t.Fatal(err)
		}
		for name, r := range map[string]*ScanReader{"direct": direct, "hooked": hooked} {
			got, err := r.At(ctx, i)
			if err != nil {
				t.Fatalf("%s row %d: %v", name, i, err)
			}
			if !got.Equal(want) {
				t.Fatalf("%s row %d differs from Tensor.At", name, i)
			}
		}
	}
}

// TestScanReaderFallsBackForWriteBufferedRows: rows still in the chunk
// builder are not served from sealed chunks; StoredAt reports the fallback
// and ScanReader.At transparently reads them through Tensor.At.
func TestScanReaderFallsBackForWriteBufferedRows(t *testing.T) {
	ctx := context.Background()
	ds, err := Create(ctx, storage.NewMemory(), "pending")
	if err != nil {
		t.Fatal(err)
	}
	x, err := ds.CreateTensor(ctx, TensorSpec{Name: "x", Dtype: tensor.Int32})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		arr, _ := tensor.FromFloat64s(tensor.Int32, []int{1}, []float64{float64(i)})
		if err := x.Append(ctx, arr); err != nil {
			t.Fatal(err)
		}
	}
	// No flush: every row is write-buffered.
	r := x.NewScanReader()
	if _, ok, err := r.StoredAt(ctx, 3); err != nil || ok {
		t.Fatalf("StoredAt on a buffered row: ok=%v err=%v, want fallback", ok, err)
	}
	arr, err := r.At(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := arr.At(0); v != 3 {
		t.Fatalf("buffered row read %v", v)
	}
}
