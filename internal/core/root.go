package core

import (
	"context"
	"encoding/json"
	"fmt"
	"strconv"

	"repro/internal/storage"
	"repro/internal/tensor"
)

// rootFile is the staged generation snapshot (roots/<gen>): a single object
// holding every piece of mutable head state — dataset metadata, the version
// tree, the head schema, and each tensor's metadata, encoders, chunk set and
// diff. persistRoot writes it under a brand-new key and only then rewrites
// dataset.json to point at it, so the snapshot a reader follows is immutable
// once published and a writer killed mid-flush cannot tear it.
type rootFile struct {
	Meta datasetMeta `json:"meta"`
	// Branch/Head identify the version the tensor snapshots belong to.
	// Open uses the embedded tensor state only when it resolves to the
	// same head (a detached checkout may publish a root for a commit other
	// than the branch head a fresh Open lands on).
	Branch  string                     `json:"branch"`
	Head    string                     `json:"head"`
	Tree    json.RawMessage            `json:"tree"`
	Schema  schemaFile                 `json:"schema"`
	Tensors map[string]tensorRootState `json:"tensors"`
}

// tensorRootState is one tensor's full mutable head state as embedded in a
// root snapshot. Encoder payloads are the same binary blobs the plain
// per-object layout stores (base64 in JSON).
type tensorRootState struct {
	Meta     TensorMeta   `json:"meta"`
	ChunkEnc []byte       `json:"chunk_encoder,omitempty"`
	ShapeEnc []byte       `json:"shape_encoder,omitempty"`
	TileEnc  []byte       `json:"tile_encoder,omitempty"`
	SeqEnc   []byte       `json:"sequence_encoder,omitempty"`
	ChunkSet chunkSetFile `json:"chunk_set"`
	Diff     diffRecord   `json:"diff"`
}

// buildRootLocked assembles the snapshot for the given (already staged)
// metadata and marshalled tree. Caller holds ds.mu exclusively.
func (ds *Dataset) buildRootLocked(meta datasetMeta, rawTree []byte) (*rootFile, error) {
	root := &rootFile{
		Meta:    meta,
		Branch:  ds.branch,
		Head:    ds.head,
		Tree:    rawTree,
		Schema:  schemaFile{Tensors: append([]string{}, ds.order...)},
		Tensors: make(map[string]tensorRootState, len(ds.order)),
	}
	for _, name := range ds.order {
		st, err := ds.tensors[name].rootState()
		if err != nil {
			return nil, err
		}
		root.Tensors[name] = st
	}
	return root, nil
}

// loadRoot fetches and parses the snapshot for one generation.
func loadRoot(ctx context.Context, store storage.Provider, gen uint64) (*rootFile, error) {
	raw, err := store.Get(ctx, rootKey(gen))
	if err != nil {
		return nil, err
	}
	root := &rootFile{}
	if err := unmarshalJSON(raw, root); err != nil {
		return nil, fmt.Errorf("core: corrupt root snapshot %s: %w", rootKey(gen), err)
	}
	return root, nil
}

// loadTensorsFromRoot opens every tensor from the embedded snapshot state
// instead of the plain per-object layout. The snapshot is authoritative: the
// plain head objects may be torn by a writer killed mid-flush, but the
// published root never is.
func (ds *Dataset) loadTensorsFromRoot(ctx context.Context, root *rootFile) error {
	ds.tensors = map[string]*Tensor{}
	ds.order = nil
	for _, name := range root.Schema.Tensors {
		st, ok := root.Tensors[name]
		if !ok {
			return fmt.Errorf("core: root snapshot generation %d lists tensor %q in its schema but carries no state for it", root.Meta.Generation, name)
		}
		t, err := loadTensorFromState(ctx, ds, name, st)
		if err != nil {
			return fmt.Errorf("core: load tensor %q: %w", name, err)
		}
		ds.tensors[name] = t
		ds.order = append(ds.order, name)
	}
	ds.seedChecksums()
	return nil
}

// loadTensorFromState builds a tensor handle from snapshot state. Ancestor
// versions are still resolved through the tree (their chunk sets are frozen
// at commit time and safe to read as plain objects); only the head version's
// chunk set comes from the snapshot.
func loadTensorFromState(ctx context.Context, ds *Dataset, name string, st tensorRootState) (*Tensor, error) {
	hspec, err := tensor.ParseHtype(st.Meta.Htype)
	if err != nil {
		return nil, err
	}
	t := newTensorShell(ds, name, st.Meta, hspec)
	if err := t.resolveCodecs(); err != nil {
		return nil, err
	}
	for blob, enc := range map[*[]byte]binaryCodec{
		&st.ChunkEnc: t.chunkEnc,
		&st.ShapeEnc: t.shapeEnc,
		&st.TileEnc:  t.tileEnc,
		&st.SeqEnc:   t.seqEnc,
	} {
		if len(*blob) == 0 {
			continue
		}
		if err := enc.UnmarshalBinary(*blob); err != nil {
			return nil, err
		}
	}
	t.diff = st.Diff
	if err := t.resolveChunkVersionsWith(ctx, st.ChunkSet.Chunks, true); err != nil {
		return nil, err
	}
	t.savedState, t.savedStateOK = st, true
	return t, nil
}

// seedChecksums registers every resolved chunk's recorded CRC32C with a
// storage.Verify layer in the provider chain (a no-op when none is stacked),
// and tallies coverage for IntegrityInfo. Called after tensor loading, when
// the chunk-to-version maps are complete.
func (ds *Dataset) seedChecksums() {
	digests := map[string]uint32{}
	withDigest, withoutDigest := 0, 0
	for _, name := range ds.order {
		t := ds.tensors[name]
		for id, vid := range t.chunkVersion {
			crc, ok := t.meta.Checksums[chunkName(id)]
			if !ok {
				withoutDigest++
				continue
			}
			withDigest++
			digests[chunkKey(vid, t.name, id)] = crc
		}
	}
	ds.integrity.ChunksWithChecksum = withDigest
	ds.integrity.ChunksWithoutChecksum = withoutDigest
	ds.integrity.SeededDigests = storage.SeedDigests(ds.store, digests)
}

// IntegrityInfo summarizes what the integrity machinery knows about an open
// dataset: which commit generation it reads from, whether a staged-but-never-
// published generation from a crashed writer was found, and how much of the
// chunk population carries checksums.
type IntegrityInfo struct {
	// Generation is the published commit generation this handle opened at
	// (0 for legacy datasets written before the staged-root protocol, or
	// for a handle that created the dataset in this process).
	Generation uint64
	// AbandonedGeneration is a staged generation found past the published
	// one — the footprint of a writer killed between staging its snapshot
	// and publishing it. Zero when none was found. The abandoned snapshot
	// and its chunks are garbage; fsck -repair removes them.
	AbandonedGeneration uint64
	// RootMissing reports that dataset.json pointed at a generation whose
	// snapshot object was gone, so the dataset opened from the plain
	// per-object layout instead.
	RootMissing bool
	// ChunksWithChecksum / ChunksWithoutChecksum count resolved chunks
	// with and without a recorded CRC32C. Pre-checksum datasets show all
	// chunks unverified rather than failing to open.
	ChunksWithChecksum    int
	ChunksWithoutChecksum int
	// SeededDigests is how many digests were handed to a storage.Verify
	// layer at load time (0 when the provider chain has none).
	SeededDigests int
}

// Integrity reports the handle's integrity summary.
func (ds *Dataset) Integrity() IntegrityInfo {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	return ds.integrity
}

// parseChunkName inverts chunkName; ok is false for malformed names.
func parseChunkName(name string) (uint64, bool) {
	id, err := strconv.ParseUint(name, 16, 64)
	return id, err == nil
}
