package core

import (
	"context"
	"fmt"

	"repro/internal/chunk"
	"repro/internal/compress"
	"repro/internal/encoder"
	"repro/internal/tensor"
)

// At returns sample idx as an array. Sequence rows come back stacked when
// items share a shape (use SequenceAt otherwise); link samples come back as
// the stored URL bytes (use view.Resolve to fetch the target).
func (t *Tensor) At(ctx context.Context, idx uint64) (*tensor.NDArray, error) {
	t.ds.mu.RLock()
	defer t.ds.mu.RUnlock()
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.atLocked(ctx, idx)
}

func (t *Tensor) atLocked(ctx context.Context, idx uint64) (*tensor.NDArray, error) {
	if t.spec.Sequence {
		items, err := t.sequenceAtLocked(ctx, int(idx))
		if err != nil {
			return nil, err
		}
		return tensor.Stack(items)
	}
	return t.itemAt(ctx, idx)
}

// itemAt reads one flat stored sample (for sequence tensors, one item).
func (t *Tensor) itemAt(ctx context.Context, idx uint64) (*tensor.NDArray, error) {
	if entry, tiled := t.tileEnc.Get(idx); tiled {
		return t.readTiled(ctx, entry, nil)
	}
	s, err := t.storedSample(ctx, idx)
	if err != nil {
		return nil, err
	}
	return t.decodeSample(s)
}

// storedSample fetches the encoded bytes + shape of flat sample idx, from
// the pending write buffer or from its chunk.
func (t *Tensor) storedSample(ctx context.Context, idx uint64) (chunk.Sample, error) {
	chunkID, local, err := t.chunkEnc.Lookup(idx)
	if err != nil {
		return chunk.Sample{}, err
	}
	if t.builder.Len() > 0 && chunkID == t.pendingID {
		if local >= len(t.pendingSamples) {
			return chunk.Sample{}, fmt.Errorf("core: pending sample %d out of range", local)
		}
		return t.pendingSamples[local], nil
	}
	raw, err := t.readChunk(ctx, chunkID)
	if err != nil {
		return chunk.Sample{}, err
	}
	samples, err := chunk.Decode(raw)
	if err != nil {
		return chunk.Sample{}, err
	}
	if local >= len(samples) {
		return chunk.Sample{}, fmt.Errorf("core: sample %d beyond chunk %d (%d samples)", local, chunkID, len(samples))
	}
	return samples[local], nil
}

// decodeSample turns a stored sample into an array.
func (t *Tensor) decodeSample(s chunk.Sample) (*tensor.NDArray, error) {
	return t.decodeSampleArena(s, nil)
}

// decodeSampleArena is decodeSample with the raw-payload copy drawn from an
// arena (nil falls back to the heap): the per-sample make+copy the hot scan
// path would otherwise pay becomes a bump allocation in a pooled slab.
// Media decodes draw their flattened HWC pixel buffer from the arena too
// when the codec supports DecodeInto; only the codec's internal decode
// state still allocates where the codec puts it.
func (t *Tensor) decodeSampleArena(s chunk.Sample, a *chunk.Arena) (*tensor.NDArray, error) {
	if t.sampleCodec != nil {
		var (
			pixels  []byte
			h, w, c int
			err     error
		)
		if di, ok := t.sampleCodec.(compress.DecoderInto); ok && a != nil {
			pixels, h, w, c, err = di.DecodeInto(s.Data, a.Alloc)
		} else {
			pixels, h, w, c, err = t.sampleCodec.Decode(s.Data)
		}
		if err != nil {
			return nil, err
		}
		shape := []int{h, w, c}
		if c == 1 {
			shape = []int{h, w}
		}
		arr, err := tensor.FromBytes(tensor.UInt8, shape, pixels)
		if err != nil {
			return nil, err
		}
		// Honor the recorded logical shape when compatible (e.g. a
		// stored [H,W,1] vs decoded [H,W]).
		if prod(s.Shape) == arr.Len() && len(s.Shape) > 0 {
			return arr.Reshape(s.Shape...)
		}
		return arr, nil
	}
	var data []byte
	if a != nil {
		data = a.Copy(s.Data)
	} else {
		data = make([]byte, len(s.Data))
		copy(data, s.Data)
	}
	return tensor.FromBytes(t.Dtype(), s.Shape, data)
}

// readTiled assembles a tiled sample, fetching only the tiles overlapping
// region (nil = whole sample).
func (t *Tensor) readTiled(ctx context.Context, entry encoder.TileEntry, region []tensor.Range) (*tensor.NDArray, error) {
	needed := entry.Layout.TilesOverlapping(region)
	tiles := make(map[int]*tensor.NDArray, len(needed))
	for _, ti := range needed {
		raw, err := t.readChunk(ctx, entry.ChunkIDs[ti])
		if err != nil {
			return nil, err
		}
		samples, err := chunk.Decode(raw)
		if err != nil {
			return nil, err
		}
		if len(samples) != 1 {
			return nil, fmt.Errorf("core: tile chunk holds %d samples, want 1", len(samples))
		}
		arr, err := t.decodeSample(samples[0])
		if err != nil {
			return nil, err
		}
		tiles[ti] = arr
	}
	return entry.Layout.Assemble(t.Dtype(), tiles, region)
}

// Slice reads a sub-region of sample idx (TQL's images[a:b, c:d]). Tiled
// samples fetch only overlapping tiles; raw uncompressed samples whose
// region constrains only the first axis are read with a sub-chunk byte
// range request (§3.5), never transferring the rest of the sample.
func (t *Tensor) Slice(ctx context.Context, idx uint64, region []tensor.Range) (*tensor.NDArray, error) {
	t.ds.mu.RLock()
	defer t.ds.mu.RUnlock()
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.spec.Sequence {
		return nil, fmt.Errorf("core: Slice of sequence tensors is not supported; slice items individually")
	}
	if entry, tiled := t.tileEnc.Get(idx); tiled {
		return t.readTiled(ctx, entry, region)
	}
	// Range-read fast path: uncompressed chunk + raw sample + region
	// constraining only axis 0.
	if t.chunkCodec == nil && t.sampleCodec == nil && len(region) == 1 {
		if arr, ok, err := t.rangeReadFirstAxis(ctx, idx, region[0]); err != nil {
			return nil, err
		} else if ok {
			return arr, nil
		}
	}
	arr, err := t.itemAt(ctx, idx)
	if err != nil {
		return nil, err
	}
	return arr.Slice(region...)
}

// rangeReadFirstAxis serves Slice(idx, [lo:hi]) with one byte-range request
// when the sample is raw and its chunk is uncompressed. ok=false means the
// fast path does not apply (e.g. the sample sits in the write buffer).
func (t *Tensor) rangeReadFirstAxis(ctx context.Context, idx uint64, r tensor.Range) (*tensor.NDArray, bool, error) {
	chunkID, local, err := t.chunkEnc.Lookup(idx)
	if err != nil {
		return nil, false, err
	}
	if t.builder.Len() > 0 && chunkID == t.pendingID {
		return nil, false, nil
	}
	vid, ok := t.chunkVersion[chunkID]
	if !ok {
		return nil, false, fmt.Errorf("core: chunk %d not found in any version", chunkID)
	}
	key := chunkKey(vid, t.name, chunkID)

	shape, err := t.shapeEnc.Get(idx)
	if err != nil {
		return nil, false, err
	}
	if len(shape) == 0 {
		return nil, false, nil
	}
	// Fetch the directory with a header read tightly bounded by the
	// chunk's actual sample count (known from the chunk encoder row) and
	// this sample's rank.
	row := 0
	for ; row < t.chunkEnc.NumChunks(); row++ {
		if _, _, id, _ := t.chunkEnc.ChunkRange(row); id == chunkID {
			break
		}
	}
	first, last, _, err := t.chunkEnc.ChunkRange(row)
	if err != nil {
		return nil, false, err
	}
	headerLen := chunk.HeaderRange(int(last-first+1), maxRankHint)
	head, err := t.ds.store.GetRange(ctx, key, 0, headerLen)
	if err != nil {
		return nil, false, err
	}
	dir, err := chunk.DecodeDirectory(head)
	if err != nil {
		return nil, false, err
	}
	sampleOff, _, sampleShape, err := dir.SampleRange(head, local)
	if err != nil {
		return nil, false, err
	}
	lo, hi, err := resolveAxis(r, sampleShape[0])
	if err != nil {
		return nil, false, err
	}
	rowElems := 1
	for _, d := range sampleShape[1:] {
		rowElems *= d
	}
	elem := t.Dtype().Size()
	off := sampleOff + int64(lo*rowElems*elem)
	length := int64((hi - lo) * rowElems * elem)
	data, err := t.ds.store.GetRange(ctx, key, off, length)
	if err != nil {
		return nil, false, err
	}
	outShape := append([]int{hi - lo}, sampleShape[1:]...)
	arr, err := tensor.FromBytes(t.Dtype(), outShape, data)
	if err != nil {
		return nil, false, err
	}
	return arr, true, nil
}

// maxRankHint bounds the per-sample shape entries assumed when sizing the
// directory prefetch for range reads.
const maxRankHint = 8

// SequenceAt returns the items of sequence row i.
func (t *Tensor) SequenceAt(ctx context.Context, row int) ([]*tensor.NDArray, error) {
	t.ds.mu.RLock()
	defer t.ds.mu.RUnlock()
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.sequenceAtLocked(ctx, row)
}

func (t *Tensor) sequenceAtLocked(ctx context.Context, row int) ([]*tensor.NDArray, error) {
	if !t.spec.Sequence {
		return nil, fmt.Errorf("core: tensor %q is not a sequence tensor", t.name)
	}
	start, end, err := t.seqEnc.RowRange(row)
	if err != nil {
		return nil, err
	}
	items := make([]*tensor.NDArray, 0, end-start)
	for i := start; i < end; i++ {
		item, err := t.itemAt(ctx, i)
		if err != nil {
			return nil, err
		}
		items = append(items, item)
	}
	return items, nil
}

// SequenceLen returns the item count of sequence row i.
func (t *Tensor) SequenceLen(row int) (int, error) {
	t.ds.mu.RLock()
	defer t.ds.mu.RUnlock()
	t.mu.RLock()
	defer t.mu.RUnlock()
	start, end, err := t.seqEnc.RowRange(row)
	if err != nil {
		return 0, err
	}
	return int(end - start), nil
}

// LinkAt returns the URL stored at idx of a link tensor.
func (t *Tensor) LinkAt(ctx context.Context, idx uint64) (string, error) {
	t.ds.mu.RLock()
	defer t.ds.mu.RUnlock()
	t.mu.RLock()
	defer t.mu.RUnlock()
	if !t.spec.Link {
		return "", fmt.Errorf("core: tensor %q is not a link tensor", t.name)
	}
	s, err := t.storedSample(ctx, idx)
	if err != nil {
		return "", err
	}
	return string(s.Data), nil
}

// RawAt returns the stored (still media-encoded) bytes and logical shape of
// sample idx. The streaming dataloader uses it to move decode work into its
// worker pool (§4.6).
func (t *Tensor) RawAt(ctx context.Context, idx uint64) ([]byte, []int, error) {
	t.ds.mu.RLock()
	defer t.ds.mu.RUnlock()
	t.mu.RLock()
	defer t.mu.RUnlock()
	s, err := t.storedSample(ctx, idx)
	if err != nil {
		return nil, nil, err
	}
	data := make([]byte, len(s.Data))
	copy(data, s.Data)
	return data, append([]int(nil), s.Shape...), nil
}

// Shape returns the logical shape of sample idx from the shape encoder —
// no chunk data is touched (§3.4 hidden shape metadata).
func (t *Tensor) Shape(idx uint64) ([]int, error) {
	t.ds.mu.RLock()
	defer t.ds.mu.RUnlock()
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.shapeEnc.Get(idx)
}

// DecodeStored decodes bytes previously returned by RawAt into an array;
// safe for concurrent use (dataloader workers).
func (t *Tensor) DecodeStored(data []byte, shape []int) (*tensor.NDArray, error) {
	return t.decodeSample(chunk.Sample{Shape: shape, Data: data})
}

// ChunkOf exposes the chunk id and local index of a sample; the chunk-aware
// dataloader scheduler groups requests by chunk with it.
func (t *Tensor) ChunkOf(idx uint64) (uint64, int, error) {
	t.ds.mu.RLock()
	defer t.ds.mu.RUnlock()
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.chunkEnc.Lookup(idx)
}

// ReadChunkSamples fetches a whole chunk and returns its stored samples;
// the dataloader fetches each chunk once for all samples it needs.
func (t *Tensor) ReadChunkSamples(ctx context.Context, chunkID uint64) ([]chunk.Sample, error) {
	t.ds.mu.RLock()
	defer t.ds.mu.RUnlock()
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.builder.Len() > 0 && chunkID == t.pendingID {
		out := make([]chunk.Sample, len(t.pendingSamples))
		copy(out, t.pendingSamples)
		return out, nil
	}
	raw, err := t.readChunk(ctx, chunkID)
	if err != nil {
		return nil, err
	}
	return chunk.Decode(raw)
}

func prod(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}

func resolveAxis(r tensor.Range, n int) (int, int, error) {
	lo, hi := r.Start, r.Stop
	if lo < 0 {
		lo += n
	}
	if hi != tensor.End && hi < 0 {
		hi += n
	}
	if hi == tensor.End || hi > n {
		hi = n
	}
	if lo < 0 || lo > n || hi < lo {
		return 0, 0, fmt.Errorf("core: invalid range [%d:%d) for axis of size %d", r.Start, r.Stop, n)
	}
	return lo, hi, nil
}
