package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/tensor"
)

// The write-path stress suite: run with -race. It covers the lock-split
// invariants — appends to disjoint tensors proceed concurrently, Flush is a
// consistent barrier against in-flight appends, and a cancelled ingest
// leaves the dataset reopenable at its last flushed state.

// TestParallelWritersDisjointTensors hammers one dataset with 16 goroutines,
// each appending to its own tensor through the background flush pipeline,
// and verifies every value lands.
func TestParallelWritersDisjointTensors(t *testing.T) {
	ctx := context.Background()
	ds, store := newTestDataset(t)
	if err := ds.SetWriteOptions(WriteOptions{FlushWorkers: 8, MaxPending: 16}); err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 16, 64
	tensors := make([]*Tensor, writers)
	for w := 0; w < writers; w++ {
		tt, err := ds.CreateTensor(ctx, TensorSpec{
			Name: fmt.Sprintf("w%02d", w), Dtype: tensor.Int64, Bounds: smallBounds,
		})
		if err != nil {
			t.Fatal(err)
		}
		tensors[w] = tt
	}
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := tensors[w].Append(ctx, tensor.Scalar(tensor.Int64, float64(w*1000+i))); err != nil {
					errs <- fmt.Errorf("writer %d append %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := ds.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	// Reopen from storage: the flushed state must be complete and correct.
	reopened, err := Open(ctx, store)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < writers; w++ {
		tt := reopened.Tensor(fmt.Sprintf("w%02d", w))
		if tt == nil {
			t.Fatalf("tensor w%02d missing after reopen", w)
		}
		if got := tt.Len(); got != perWriter {
			t.Fatalf("tensor w%02d has %d rows, want %d", w, got, perWriter)
		}
		for _, i := range []uint64{0, perWriter / 2, perWriter - 1} {
			arr, err := tt.At(ctx, i)
			if err != nil {
				t.Fatal(err)
			}
			if v, _ := arr.Item(); v != float64(w*1000+int(i)) {
				t.Fatalf("w%02d[%d] = %v, want %d", w, i, v, w*1000+int(i))
			}
		}
	}
}

// TestConcurrentAppendAndFlush interleaves appends with dataset-wide
// flushes; Flush must act as a barrier (no torn chunk/encoder state) while
// appends continue around it.
func TestConcurrentAppendAndFlush(t *testing.T) {
	ctx := context.Background()
	ds, store := newTestDataset(t)
	if err := ds.SetWriteOptions(WriteOptions{FlushWorkers: 4}); err != nil {
		t.Fatal(err)
	}
	x, err := ds.CreateTensor(ctx, TensorSpec{Name: "x", Dtype: tensor.Int64, Bounds: smallBounds})
	if err != nil {
		t.Fatal(err)
	}
	const total = 256
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 0; i < total; i++ {
			if err := x.Append(ctx, tensor.Scalar(tensor.Int64, float64(i))); err != nil {
				errs <- fmt.Errorf("append %d: %w", i, err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if err := ds.Flush(ctx); err != nil {
				errs <- fmt.Errorf("flush: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := ds.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	reopened, err := Open(ctx, store)
	if err != nil {
		t.Fatal(err)
	}
	rx := reopened.Tensor("x")
	if got := rx.Len(); got != total {
		t.Fatalf("reopened length %d, want %d", got, total)
	}
	for i := uint64(0); i < total; i++ {
		arr, err := rx.At(ctx, i)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if v, _ := arr.Item(); v != float64(i) {
			t.Fatalf("x[%d] = %v", i, v)
		}
	}
}

// gatedStore blocks Puts on a release channel while gated, making
// cancellation-while-uploading deterministic. Uploads run on the
// pipeline's background context, so the gate — not a context — controls
// when the wire unblocks.
type gatedStore struct {
	storage.Provider
	mu      sync.Mutex
	gated   bool
	release chan struct{} // closed to unblock gated Puts
	signal  chan struct{} // receives one value per blocked Put
}

func (g *gatedStore) Put(ctx context.Context, key string, data []byte) error {
	g.mu.Lock()
	gated := g.gated
	g.mu.Unlock()
	if gated {
		select {
		case g.signal <- struct{}{}:
		default:
		}
		select {
		case <-g.release:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return g.Provider.Put(ctx, key, data)
}

// TestCancelMidIngestReopenable cancels an ingest while chunk uploads are
// stuck on the wire: the appender's context aborts its backpressure wait,
// a Flush whose own context expires surfaces an error without corrupting
// anything, and once the wire recovers a plain Flush retries the parked
// uploads — every acknowledged append survives, and a fresh Open sees a
// consistent dataset.
func TestCancelMidIngestReopenable(t *testing.T) {
	ctx := context.Background()
	mem := storage.NewMemory()
	gs := &gatedStore{Provider: mem, release: make(chan struct{}), signal: make(chan struct{}, 1)}
	ds, err := Create(ctx, gs, "cancel-test")
	if err != nil {
		t.Fatal(err)
	}
	x, err := ds.CreateTensor(ctx, TensorSpec{Name: "x", Dtype: tensor.Int64, Bounds: smallBounds})
	if err != nil {
		t.Fatal(err)
	}
	const flushed = 32
	for i := 0; i < flushed; i++ {
		if err := x.Append(ctx, tensor.Scalar(tensor.Int64, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := ds.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	// Switch to pipelined uploads and block the wire.
	if err := ds.SetWriteOptions(WriteOptions{FlushWorkers: 2, MaxPending: 4}); err != nil {
		t.Fatal(err)
	}
	gs.mu.Lock()
	gs.gated = true
	gs.mu.Unlock()

	// The appender fills the bounded pipeline (uploads can't progress) and
	// must abort its backpressure wait when its context is cancelled.
	ingestCtx, cancel := context.WithCancel(ctx)
	type result struct {
		appended int
		err      error
	}
	done := make(chan result, 1)
	go func() {
		n := 0
		for i := 0; i < 512; i++ {
			if err := x.Append(ingestCtx, tensor.Scalar(tensor.Int64, float64(flushed+i))); err != nil {
				done <- result{appended: n, err: err}
				return
			}
			n++
		}
		done <- result{appended: n}
	}()
	<-gs.signal // at least one chunk upload is blocked mid-flight
	cancel()
	res := <-done
	if res.err == nil {
		t.Fatal("append loop completed despite blocked pipeline and cancelled context")
	}
	if !errors.Is(res.err, context.Canceled) {
		t.Fatalf("append failed with %v, want context.Canceled", res.err)
	}
	if res.appended >= 512 {
		t.Fatalf("all %d appends succeeded; cancellation never bit", res.appended)
	}

	// A flush whose own context expires while the wire is stuck surfaces
	// an error instead of hanging.
	shortCtx, shortCancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer shortCancel()
	if err := ds.Flush(shortCtx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Flush with expired context = %v, want context.DeadlineExceeded", err)
	}

	// Wire recovers: a plain Flush redrives every parked upload, so no
	// acknowledged append is lost.
	close(gs.release)
	gs.mu.Lock()
	gs.gated = false
	gs.mu.Unlock()
	if err := ds.Flush(ctx); err != nil {
		t.Fatalf("Flush after recovery: %v", err)
	}

	// The in-memory handle is authoritative for how many rows were
	// recorded (an append surfacing a deferred flush error still commits
	// its row); the reopened dataset must match it exactly — nothing
	// recorded is lost, and rows stay dense and ordered.
	want := x.Len()
	if want < uint64(flushed+res.appended) {
		t.Fatalf("in-memory length %d below %d acknowledged appends", want, flushed+res.appended)
	}
	reopened, err := Open(ctx, gs)
	if err != nil {
		t.Fatalf("reopen after cancelled ingest: %v", err)
	}
	rx := reopened.Tensor("x")
	if rx == nil {
		t.Fatal("tensor x missing after reopen")
	}
	if got := rx.Len(); got != want {
		t.Fatalf("reopened length %d, want %d (every recorded append)", got, want)
	}
	for _, i := range []uint64{0, flushed - 1, flushed, want - 1} {
		arr, err := rx.At(ctx, i)
		if err != nil {
			t.Fatalf("read %d after reopen: %v", i, err)
		}
		if v, _ := arr.Item(); v != float64(i) {
			t.Fatalf("x[%d] = %v after reopen", i, v)
		}
	}
	// The reopened dataset is writable again.
	if err := rx.Append(ctx, tensor.Scalar(tensor.Int64, 9999)); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
	if err := reopened.Flush(ctx); err != nil {
		t.Fatalf("flush after reopen: %v", err)
	}
}
