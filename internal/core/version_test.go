package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/storage"
	"repro/internal/tensor"
)

func appendInts(t *testing.T, tr *Tensor, vals ...int) {
	t.Helper()
	ctx := context.Background()
	for _, v := range vals {
		if err := tr.Append(ctx, tensor.Scalar(tensor.Int32, float64(v))); err != nil {
			t.Fatal(err)
		}
	}
}

func readInt(t *testing.T, tr *Tensor, idx uint64) int {
	t.Helper()
	arr, err := tr.At(context.Background(), idx)
	if err != nil {
		t.Fatalf("At(%d): %v", idx, err)
	}
	v, err := arr.Item()
	if err != nil {
		t.Fatal(err)
	}
	return int(v)
}

func TestCommitAndTimeTravel(t *testing.T) {
	ctx := context.Background()
	ds, _ := newTestDataset(t)
	x, err := ds.CreateTensor(ctx, TensorSpec{Name: "x", Dtype: tensor.Int32, Bounds: smallBounds})
	if err != nil {
		t.Fatal(err)
	}
	appendInts(t, x, 1, 2, 3)
	c1, err := ds.Commit(ctx, "three samples")
	if err != nil {
		t.Fatal(err)
	}
	appendInts(t, x, 4, 5)
	c2, err := ds.Commit(ctx, "five samples")
	if err != nil {
		t.Fatal(err)
	}
	if x.Len() != 5 {
		t.Fatalf("len = %d", x.Len())
	}

	// Time travel to c1: only three samples.
	old, err := ds.ReadAtVersion(ctx, c1)
	if err != nil {
		t.Fatal(err)
	}
	ox := old.Tensor("x")
	if ox.Len() != 3 {
		t.Fatalf("len at c1 = %d", ox.Len())
	}
	if got := readInt(t, ox, 2); got != 3 {
		t.Fatalf("c1 x[2] = %d", got)
	}
	// c2 sees all five.
	cur, err := ds.ReadAtVersion(ctx, c2)
	if err != nil {
		t.Fatal(err)
	}
	if cur.Tensor("x").Len() != 5 {
		t.Fatalf("len at c2 = %d", cur.Tensor("x").Len())
	}

	// Log newest first.
	log, err := ds.Log()
	if err != nil || len(log) != 2 {
		t.Fatalf("log = %v, %v", log, err)
	}
	if log[0].Message != "five samples" || log[1].Message != "three samples" {
		t.Fatalf("log messages = %q, %q", log[0].Message, log[1].Message)
	}
}

func TestChunksSharedAcrossVersions(t *testing.T) {
	// Committing must not copy chunk data: a new version holds only
	// chunks modified in it (§4.2).
	ctx := context.Background()
	store := storage.NewMemory()
	ds, err := Create(ctx, store, "shared")
	if err != nil {
		t.Fatal(err)
	}
	x, _ := ds.CreateTensor(ctx, TensorSpec{Name: "x", Dtype: tensor.Int32, Bounds: smallBounds})
	appendInts(t, x, 1, 2, 3, 4, 5, 6, 7, 8)
	if _, err := ds.Commit(ctx, "c1"); err != nil {
		t.Fatal(err)
	}
	before := countChunkObjects(t, store)
	if _, err := ds.Commit(ctx, "c2 (no changes)"); err != nil {
		t.Fatal(err)
	}
	after := countChunkObjects(t, store)
	if after != before {
		t.Fatalf("empty commit copied chunks: %d -> %d", before, after)
	}
	// Reads at head still resolve through ancestor chunk sets.
	if got := readInt(t, ds.Tensor("x"), 7); got != 8 {
		t.Fatalf("x[7] = %d", got)
	}
}

func countChunkObjects(t *testing.T, store *storage.Memory) int {
	t.Helper()
	keys, err := store.List(context.Background(), "versions/")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, k := range keys {
		if contains(k, "/chunks/") {
			n++
		}
	}
	return n
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestBranchingIsolation(t *testing.T) {
	ctx := context.Background()
	ds, _ := newTestDataset(t)
	x, _ := ds.CreateTensor(ctx, TensorSpec{Name: "x", Dtype: tensor.Int32, Bounds: smallBounds})
	appendInts(t, x, 1, 2, 3)
	if _, err := ds.Commit(ctx, "base"); err != nil {
		t.Fatal(err)
	}

	// Fork dev and diverge.
	if err := ds.Checkout(ctx, "dev", true); err != nil {
		t.Fatal(err)
	}
	if ds.Branch() != "dev" {
		t.Fatalf("branch = %q", ds.Branch())
	}
	appendInts(t, ds.Tensor("x"), 100)
	if ds.Tensor("x").Len() != 4 {
		t.Fatalf("dev len = %d", ds.Tensor("x").Len())
	}
	if _, err := ds.Commit(ctx, "dev adds 100"); err != nil {
		t.Fatal(err)
	}

	// Back to main: the append is invisible.
	if err := ds.Checkout(ctx, "main", false); err != nil {
		t.Fatal(err)
	}
	if ds.Tensor("x").Len() != 3 {
		t.Fatalf("main len = %d after dev diverged", ds.Tensor("x").Len())
	}
	// Main keeps evolving independently.
	appendInts(t, ds.Tensor("x"), 42)
	if got := readInt(t, ds.Tensor("x"), 3); got != 42 {
		t.Fatalf("main x[3] = %d", got)
	}

	// Dev still sees its own data.
	if err := ds.Checkout(ctx, "dev", false); err != nil {
		t.Fatal(err)
	}
	if got := readInt(t, ds.Tensor("x"), 3); got != 100 {
		t.Fatalf("dev x[3] = %d", got)
	}
}

func TestDetachedCheckoutIsReadOnly(t *testing.T) {
	ctx := context.Background()
	ds, _ := newTestDataset(t)
	x, _ := ds.CreateTensor(ctx, TensorSpec{Name: "x", Dtype: tensor.Int32})
	appendInts(t, x, 1)
	c1, _ := ds.Commit(ctx, "c1")
	if err := ds.Checkout(ctx, c1, false); err != nil {
		t.Fatal(err)
	}
	if ds.Branch() != "" {
		t.Fatalf("branch = %q, want detached", ds.Branch())
	}
	if err := ds.Tensor("x").Append(ctx, tensor.Scalar(tensor.Int32, 9)); err == nil {
		t.Fatal("append on detached head should error")
	}
	if _, err := ds.Commit(ctx, "nope"); err == nil {
		t.Fatal("commit on detached head should error")
	}
	// Re-attach.
	if err := ds.Checkout(ctx, "main", false); err != nil {
		t.Fatal(err)
	}
	if err := ds.Tensor("x").Append(ctx, tensor.Scalar(tensor.Int32, 9)); err != nil {
		t.Fatal(err)
	}
}

func TestInPlaceUpdateCopyOnWrite(t *testing.T) {
	ctx := context.Background()
	ds, _ := newTestDataset(t)
	x, _ := ds.CreateTensor(ctx, TensorSpec{Name: "x", Dtype: tensor.Int32, Bounds: smallBounds})
	appendInts(t, x, 10, 20, 30, 40)
	c1, err := ds.Commit(ctx, "original")
	if err != nil {
		t.Fatal(err)
	}
	// Update sample 1 post-commit.
	if err := x.SetAt(ctx, 1, tensor.Scalar(tensor.Int32, 99)); err != nil {
		t.Fatal(err)
	}
	if got := readInt(t, x, 1); got != 99 {
		t.Fatalf("x[1] = %d after update", got)
	}
	// The committed snapshot still sees the original value.
	old, err := ds.ReadAtVersion(ctx, c1)
	if err != nil {
		t.Fatal(err)
	}
	if got := readInt(t, old.Tensor("x"), 1); got != 20 {
		t.Fatalf("c1 x[1] = %d, want 20 (copy-on-write violated)", got)
	}
}

func TestUpdateInPendingBuffer(t *testing.T) {
	ctx := context.Background()
	ds, _ := newTestDataset(t)
	x, _ := ds.CreateTensor(ctx, TensorSpec{Name: "x", Dtype: tensor.Int32})
	appendInts(t, x, 1, 2, 3) // stays buffered (default 8MB bounds)
	if err := x.SetAt(ctx, 2, tensor.Scalar(tensor.Int32, 33)); err != nil {
		t.Fatal(err)
	}
	if got := readInt(t, x, 2); got != 33 {
		t.Fatalf("buffered update: x[2] = %d", got)
	}
	if err := ds.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if got := readInt(t, x, 2); got != 33 {
		t.Fatalf("after flush: x[2] = %d", got)
	}
}

func TestSparseAssignmentPadsWhenNotStrict(t *testing.T) {
	ctx := context.Background()
	ds, _ := newTestDataset(t)
	x, _ := ds.CreateTensor(ctx, TensorSpec{Name: "x", Dtype: tensor.Int32})
	if err := x.SetAt(ctx, 5, tensor.Scalar(tensor.Int32, 7)); err != nil {
		t.Fatal(err)
	}
	if x.Len() != 6 {
		t.Fatalf("len = %d after sparse set", x.Len())
	}
	if got := readInt(t, x, 5); got != 7 {
		t.Fatalf("x[5] = %d", got)
	}
	// Padded entries are empty.
	pad, err := x.At(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pad.Len() != 0 {
		t.Fatalf("pad sample has %d elements", pad.Len())
	}

	ds.SetStrict(true)
	if err := x.SetAt(ctx, 50, tensor.Scalar(tensor.Int32, 1)); err == nil {
		t.Fatal("strict mode should reject out-of-bounds assignment")
	}
}

func TestDiffBetweenBranches(t *testing.T) {
	ctx := context.Background()
	ds, _ := newTestDataset(t)
	x, _ := ds.CreateTensor(ctx, TensorSpec{Name: "x", Dtype: tensor.Int32, Bounds: smallBounds})
	appendInts(t, x, 1, 2, 3)
	ds.Commit(ctx, "base")

	ds.Checkout(ctx, "dev", true)
	appendInts(t, ds.Tensor("x"), 4, 5)
	ds.Tensor("x").SetAt(ctx, 0, tensor.Scalar(tensor.Int32, 11))
	ds.Commit(ctx, "dev changes")

	ds.Checkout(ctx, "main", false)
	appendInts(t, ds.Tensor("x"), 6)

	diff, err := ds.Diff(ctx, "dev", "main")
	if err != nil {
		t.Fatal(err)
	}
	left := diff.Left["x"]
	if left.Added != 2 || !reflect.DeepEqual(left.Updated, []uint64{0}) {
		t.Fatalf("dev diff = %+v", left)
	}
	right := diff.Right["x"]
	if right.Added != 1 || len(right.Updated) != 0 {
		t.Fatalf("main diff = %+v", right)
	}
}

func TestMergeAppendsAndUpdates(t *testing.T) {
	ctx := context.Background()
	ds, _ := newTestDataset(t)
	x, _ := ds.CreateTensor(ctx, TensorSpec{Name: "x", Dtype: tensor.Int32, Bounds: smallBounds})
	appendInts(t, x, 1, 2, 3)
	ds.Commit(ctx, "base")

	ds.Checkout(ctx, "dev", true)
	appendInts(t, ds.Tensor("x"), 4, 5)
	ds.Tensor("x").SetAt(ctx, 1, tensor.Scalar(tensor.Int32, 22))
	ds.Commit(ctx, "dev work")

	ds.Checkout(ctx, "main", false)
	if err := ds.Merge(ctx, "dev", MergeTheirs); err != nil {
		t.Fatal(err)
	}
	mx := ds.Tensor("x")
	if mx.Len() != 5 {
		t.Fatalf("merged len = %d", mx.Len())
	}
	if got := readInt(t, mx, 3); got != 4 {
		t.Fatalf("merged x[3] = %d", got)
	}
	if got := readInt(t, mx, 1); got != 22 {
		t.Fatalf("merged update x[1] = %d", got)
	}
}

func TestMergeConflictPolicies(t *testing.T) {
	ctx := context.Background()
	for _, tc := range []struct {
		policy MergePolicy
		want   int
	}{
		{MergeOurs, 200},
		{MergeTheirs, 100},
	} {
		ds, _ := newTestDataset(t)
		x, _ := ds.CreateTensor(ctx, TensorSpec{Name: "x", Dtype: tensor.Int32})
		appendInts(t, x, 1, 2, 3)
		ds.Commit(ctx, "base")

		ds.Checkout(ctx, "dev", true)
		ds.Tensor("x").SetAt(ctx, 0, tensor.Scalar(tensor.Int32, 100))
		ds.Commit(ctx, "dev edit")

		ds.Checkout(ctx, "main", false)
		ds.Tensor("x").SetAt(ctx, 0, tensor.Scalar(tensor.Int32, 200))

		if err := ds.Merge(ctx, "dev", tc.policy); err != nil {
			t.Fatal(err)
		}
		if got := readInt(t, ds.Tensor("x"), 0); got != tc.want {
			t.Fatalf("policy %v: x[0] = %d, want %d", tc.policy, got, tc.want)
		}
	}
}

func TestMergeErrors(t *testing.T) {
	ctx := context.Background()
	ds, _ := newTestDataset(t)
	if err := ds.Merge(ctx, "main", MergeOurs); err == nil {
		t.Fatal("self-merge should error")
	}
}

func TestSchemaEvolutionAcrossVersions(t *testing.T) {
	// A tensor added on a branch appears after merge; versions before its
	// creation do not list it (§4.2 schema tracked with version control).
	ctx := context.Background()
	ds, _ := newTestDataset(t)
	ds.CreateTensor(ctx, TensorSpec{Name: "a", Dtype: tensor.Int32})
	appendInts(t, ds.Tensor("a"), 1)
	c1, _ := ds.Commit(ctx, "just a")

	ds.CreateTensor(ctx, TensorSpec{Name: "b", Dtype: tensor.Int32})
	appendInts(t, ds.Tensor("b"), 9)
	ds.Commit(ctx, "added b")

	old, err := ds.ReadAtVersion(ctx, c1)
	if err != nil {
		t.Fatal(err)
	}
	if old.Tensor("b") != nil {
		t.Fatal("tensor b should not exist at c1")
	}
	if got := ds.Tensors(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("tensors at head = %v", got)
	}
}
