package core

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/storage"
	"repro/internal/tensor"
)

// TestDatasetRoundTripProperty drives a random workload — appends of random
// dtypes/shapes, interleaved in-place updates, flushes and reopens — and
// verifies every sample against an in-memory reference model. This is the
// integration-level invariant: the Tensor Storage Format is a faithful,
// durable array store under any operation order.
func TestDatasetRoundTripProperty(t *testing.T) {
	dtypes := []tensor.Dtype{tensor.UInt8, tensor.Int32, tensor.Float64, tensor.Int16}
	f := func(seed int64, opsRaw uint8) bool {
		ctx := context.Background()
		rng := rand.New(rand.NewSource(seed))
		store := storage.NewMemory()
		ds, err := Create(ctx, store, "prop")
		if err != nil {
			return false
		}
		dt := dtypes[rng.Intn(len(dtypes))]
		tr, err := ds.CreateTensor(ctx, TensorSpec{Name: "x", Dtype: dt, Bounds: smallBounds})
		if err != nil {
			return false
		}
		var ref []*tensor.NDArray // reference model

		randArray := func() *tensor.NDArray {
			rank := rng.Intn(3) + 1
			shape := make([]int, rank)
			n := 1
			for i := range shape {
				shape[i] = rng.Intn(4) + 1
				n *= shape[i]
			}
			vals := make([]float64, n)
			for i := range vals {
				vals[i] = float64(rng.Intn(100))
			}
			a, _ := tensor.FromFloat64s(dt, shape, vals)
			return a
		}

		ops := int(opsRaw)%40 + 5
		for op := 0; op < ops; op++ {
			switch k := rng.Intn(10); {
			case k < 6: // append
				a := randArray()
				if err := tr.Append(ctx, a); err != nil {
					return false
				}
				ref = append(ref, a)
			case k < 8 && len(ref) > 0: // in-place update
				idx := rng.Intn(len(ref))
				a := randArray()
				if err := tr.SetAt(ctx, uint64(idx), a); err != nil {
					return false
				}
				ref[idx] = a
			case k == 8: // flush
				if err := ds.Flush(ctx); err != nil {
					return false
				}
			default: // flush + reopen
				if err := ds.Flush(ctx); err != nil {
					return false
				}
				ds, err = Open(ctx, store)
				if err != nil {
					return false
				}
				tr = ds.Tensor("x")
			}
		}
		// Final verification after a flush + reopen.
		if err := ds.Flush(ctx); err != nil {
			return false
		}
		ds, err = Open(ctx, store)
		if err != nil {
			return false
		}
		tr = ds.Tensor("x")
		if tr.Len() != uint64(len(ref)) {
			return false
		}
		for i, want := range ref {
			got, err := tr.At(ctx, uint64(i))
			if err != nil {
				return false
			}
			if !got.Equal(want) {
				return false
			}
			shape, err := tr.Shape(uint64(i))
			if err != nil || len(shape) != want.NDim() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestVersionedRoundTripProperty extends the model with commits: after each
// commit the snapshot is pinned and must keep returning its frozen contents
// even as the head mutates.
func TestVersionedRoundTripProperty(t *testing.T) {
	f := func(seed int64, opsRaw uint8) bool {
		ctx := context.Background()
		rng := rand.New(rand.NewSource(seed))
		ds, err := Create(ctx, storage.NewMemory(), "vprop")
		if err != nil {
			return false
		}
		tr, err := ds.CreateTensor(ctx, TensorSpec{Name: "x", Dtype: tensor.Int64, Bounds: smallBounds})
		if err != nil {
			return false
		}
		var live []int64
		type snapshot struct {
			id   string
			vals []int64
		}
		var snaps []snapshot

		ops := int(opsRaw)%25 + 5
		for op := 0; op < ops; op++ {
			switch k := rng.Intn(10); {
			case k < 6:
				v := int64(rng.Intn(1000))
				if err := tr.Append(ctx, tensor.Scalar(tensor.Int64, float64(v))); err != nil {
					return false
				}
				live = append(live, v)
			case k < 8 && len(live) > 0:
				idx := rng.Intn(len(live))
				v := int64(rng.Intn(1000))
				if err := tr.SetAt(ctx, uint64(idx), tensor.Scalar(tensor.Int64, float64(v))); err != nil {
					return false
				}
				live[idx] = v
			default:
				id, err := ds.Commit(ctx, "snap")
				if err != nil {
					return false
				}
				snaps = append(snaps, snapshot{id: id, vals: append([]int64(nil), live...)})
			}
		}
		// Every snapshot must still read back its frozen contents.
		for _, s := range snaps {
			old, err := ds.ReadAtVersion(ctx, s.id)
			if err != nil {
				return false
			}
			ot := old.Tensor("x")
			if ot.Len() != uint64(len(s.vals)) {
				return false
			}
			for i, want := range s.vals {
				arr, err := ot.At(ctx, uint64(i))
				if err != nil {
					return false
				}
				if got, _ := arr.Item(); int64(got) != want {
					return false
				}
			}
		}
		// And the head reads the live model.
		for i, want := range live {
			arr, err := tr.At(ctx, uint64(i))
			if err != nil {
				return false
			}
			if got, _ := arr.Item(); int64(got) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
