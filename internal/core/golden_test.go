package core

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/tensor"
)

// Golden equivalence suite: the parallel flush pipeline must produce a
// byte-identical dataset to the serial write path — same storage keys, same
// blobs — for every chunk, chunk set, diff, meta, encoder, schema and root
// file, at any flush-worker count. Only the upload ORDER may differ.

// pinClock fixes every timestamp source of a freshly created dataset so two
// builds are bit-comparable.
func pinClock(ds *Dataset) {
	fixed := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	ds.now = func() time.Time { return fixed }
	ds.meta.CreatedAt = fixed
	for _, n := range ds.tree.Nodes {
		n.CreatedAt = fixed
	}
}

// buildGoldenDataset writes a deterministic mixed workload — multi-chunk
// scalars, batched appends, raw images, a sequence tensor, a link tensor,
// an oversize tiled sample, in-place updates, padding, a commit with
// post-commit appends — through the given write options.
func buildGoldenDataset(t *testing.T, opts WriteOptions) storage.Provider {
	t.Helper()
	ctx := context.Background()
	store := storage.NewMemory()
	ds, err := Create(ctx, store, "golden")
	if err != nil {
		t.Fatal(err)
	}
	pinClock(ds)
	if err := ds.SetWriteOptions(opts); err != nil {
		t.Fatal(err)
	}
	vals, err := ds.CreateTensor(ctx, TensorSpec{Name: "vals", Dtype: tensor.Float64, Bounds: smallBounds})
	if err != nil {
		t.Fatal(err)
	}
	imgs, err := ds.CreateTensor(ctx, TensorSpec{Name: "imgs", Htype: "generic", Dtype: tensor.UInt8, Bounds: smallBounds})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := ds.CreateTensor(ctx, TensorSpec{Name: "seq", Htype: "sequence[generic]", Dtype: tensor.Int32, Bounds: smallBounds})
	if err != nil {
		t.Fatal(err)
	}
	links, err := ds.CreateTensor(ctx, TensorSpec{Name: "links", Htype: "link[image]", Bounds: smallBounds})
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 96; i++ {
		if err := vals.Append(ctx, tensor.Scalar(tensor.Float64, float64(i)*1.5)); err != nil {
			t.Fatal(err)
		}
	}
	// Batched rows through the single-lock batch path.
	bvals := make([]float64, 32*3)
	for i := range bvals {
		bvals[i] = float64(i % 17)
	}
	batch, err := tensor.FromFloat64s(tensor.Float64, []int{32, 3}, bvals)
	if err != nil {
		t.Fatal(err)
	}
	if err := vals.AppendBatch(ctx, batch); err != nil {
		t.Fatal(err)
	}
	// Small raw images, several per chunk.
	for i := 0; i < 24; i++ {
		pix := make([]byte, 4*4*3)
		for p := range pix {
			pix[p] = byte((i*31 + p) % 251)
		}
		img, err := tensor.FromBytes(tensor.UInt8, []int{4, 4, 3}, pix)
		if err != nil {
			t.Fatal(err)
		}
		if err := imgs.Append(ctx, img); err != nil {
			t.Fatal(err)
		}
	}
	// One oversize raw sample: exercises the tiling path.
	pix := make([]byte, 16*16*3)
	for p := range pix {
		pix[p] = byte(p % 101)
	}
	big, err := tensor.FromBytes(tensor.UInt8, []int{16, 16, 3}, pix)
	if err != nil {
		t.Fatal(err)
	}
	if err := imgs.Append(ctx, big); err != nil {
		t.Fatal(err)
	}
	// Sequence rows and links.
	for i := 0; i < 8; i++ {
		items := []*tensor.NDArray{
			tensor.Scalar(tensor.Int32, float64(i)),
			tensor.Scalar(tensor.Int32, float64(i * 2)),
		}
		if err := seq.AppendSequence(ctx, items); err != nil {
			t.Fatal(err)
		}
		if err := links.AppendLink(ctx, fmt.Sprintf("s3://bucket/object-%03d.png", i)); err != nil {
			t.Fatal(err)
		}
	}
	// In-place updates (copy-on-write chunk rewrites under existing ids).
	for _, idx := range []uint64{3, 40, 95} {
		if err := vals.SetAt(ctx, idx, tensor.Scalar(tensor.Float64, float64(idx)+0.25)); err != nil {
			t.Fatal(err)
		}
	}
	// Commit freezes v1; post-commit appends land in the new head.
	if _, err := ds.Commit(ctx, "golden snapshot"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := vals.Append(ctx, tensor.Scalar(tensor.Float64, float64(1000+i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := vals.PadTo(ctx, 200); err != nil {
		t.Fatal(err)
	}
	if err := ds.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	return store
}

// snapshotKeys lists every stored object key.
func snapshotKeys(t *testing.T, store storage.Provider) []string {
	t.Helper()
	keys, err := store.List(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(keys)
	return keys
}

// TestParallelFlushGoldenEquivalence builds the same dataset through the
// serial path, a 1-worker pipeline and a 16-worker pipeline, and asserts the
// stored objects are byte-identical across all three.
func TestParallelFlushGoldenEquivalence(t *testing.T) {
	ctx := context.Background()
	serial := buildGoldenDataset(t, WriteOptions{})
	serialKeys := snapshotKeys(t, serial)
	if len(serialKeys) == 0 {
		t.Fatal("golden build produced no objects")
	}
	var chunkKeys int
	for _, k := range serialKeys {
		if strings.Contains(k, "/chunks/") {
			chunkKeys++
		}
	}
	if chunkKeys < 10 {
		t.Fatalf("golden build produced only %d chunk objects; workload too small to be meaningful", chunkKeys)
	}

	for _, workers := range []int{1, 16} {
		t.Run(fmt.Sprintf("flushworkers-%d", workers), func(t *testing.T) {
			parallel := buildGoldenDataset(t, WriteOptions{FlushWorkers: workers})
			parallelKeys := snapshotKeys(t, parallel)
			if got, want := fmt.Sprint(parallelKeys), fmt.Sprint(serialKeys); got != want {
				t.Fatalf("stored key sets differ:\nserial:   %v\nparallel: %v", serialKeys, parallelKeys)
			}
			for _, key := range serialKeys {
				want, err := serial.Get(ctx, key)
				if err != nil {
					t.Fatal(err)
				}
				got, err := parallel.Get(ctx, key)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("object %q differs between serial and %d-worker flush (%d vs %d bytes)",
						key, workers, len(want), len(got))
				}
			}
		})
	}
}
