package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/chunk"
	"repro/internal/storage"
	"repro/internal/tensor"
)

func newTestDataset(t *testing.T) (*Dataset, *storage.Memory) {
	t.Helper()
	store := storage.NewMemory()
	ds, err := Create(context.Background(), store, "test")
	if err != nil {
		t.Fatal(err)
	}
	return ds, store
}

// smallBounds keeps chunks tiny so tests exercise multi-chunk layouts.
var smallBounds = chunk.Bounds{Min: 64, Target: 128, Max: 256}

func TestCreateAndOpen(t *testing.T) {
	ctx := context.Background()
	ds, store := newTestDataset(t)
	if ds.Name() != "test" || ds.Branch() != "main" {
		t.Fatalf("name=%q branch=%q", ds.Name(), ds.Branch())
	}
	if _, err := Create(ctx, store, "again"); err == nil {
		t.Fatal("double create should error")
	}
	if err := ds.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	back, err := Open(ctx, store)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name() != "test" {
		t.Fatalf("reopened name = %q", back.Name())
	}
	if _, err := Open(ctx, storage.NewMemory()); err == nil {
		t.Fatal("open on empty store should error")
	}
}

func TestCreateTensorValidation(t *testing.T) {
	ctx := context.Background()
	ds, _ := newTestDataset(t)
	if _, err := ds.CreateTensor(ctx, TensorSpec{Name: "labels", Htype: "class_label"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.CreateTensor(ctx, TensorSpec{Name: "labels"}); err == nil {
		t.Fatal("duplicate tensor should error")
	}
	if _, err := ds.CreateTensor(ctx, TensorSpec{Name: ""}); err == nil {
		t.Fatal("empty name should error")
	}
	if _, err := ds.CreateTensor(ctx, TensorSpec{Name: "x", Htype: "martian"}); err == nil {
		t.Fatal("unknown htype should error")
	}
}

func TestHtypeDefaultsApplied(t *testing.T) {
	ctx := context.Background()
	ds, _ := newTestDataset(t)
	img, err := ds.CreateTensor(ctx, TensorSpec{Name: "images", Htype: "image"})
	if err != nil {
		t.Fatal(err)
	}
	if img.Meta().SampleCompression != "jpeg" {
		t.Fatalf("image sample compression = %q", img.Meta().SampleCompression)
	}
	lbl, err := ds.CreateTensor(ctx, TensorSpec{Name: "labels", Htype: "class_label"})
	if err != nil {
		t.Fatal(err)
	}
	if lbl.Meta().ChunkCompression != "lz4" {
		t.Fatalf("label chunk compression = %q", lbl.Meta().ChunkCompression)
	}
	if lbl.Dtype() != tensor.Int32 {
		t.Fatalf("label dtype = %v", lbl.Dtype())
	}
}

func TestAppendAndReadSmallTensor(t *testing.T) {
	ctx := context.Background()
	ds, _ := newTestDataset(t)
	labels, err := ds.CreateTensor(ctx, TensorSpec{Name: "labels", Htype: "class_label", Bounds: smallBounds})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := labels.Append(ctx, tensor.Scalar(tensor.Int32, float64(i%7))); err != nil {
			t.Fatal(err)
		}
	}
	if labels.Len() != 100 {
		t.Fatalf("len = %d", labels.Len())
	}
	// Reads served partly from pending buffer, partly from chunks.
	for i := 0; i < 100; i++ {
		arr, err := labels.At(ctx, uint64(i))
		if err != nil {
			t.Fatalf("At(%d): %v", i, err)
		}
		v, _ := arr.Item()
		if v != float64(i%7) {
			t.Fatalf("At(%d) = %v, want %d", i, v, i%7)
		}
	}
	if labels.NumChunks() < 2 {
		t.Fatalf("expected multiple chunks under small bounds, got %d", labels.NumChunks())
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	ctx := context.Background()
	ds, store := newTestDataset(t)
	vals, err := ds.CreateTensor(ctx, TensorSpec{Name: "vals", Dtype: tensor.Float64, Bounds: smallBounds})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		arr, _ := tensor.FromFloat64s(tensor.Float64, []int{3}, []float64{float64(i), float64(i * 2), float64(i * 3)})
		if err := vals.Append(ctx, arr); err != nil {
			t.Fatal(err)
		}
	}
	if err := ds.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	back, err := Open(ctx, store)
	if err != nil {
		t.Fatal(err)
	}
	vt := back.Tensor("vals")
	if vt == nil || vt.Len() != 50 {
		t.Fatalf("reopened tensor = %v", vt)
	}
	arr, err := vt.At(ctx, 49)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(arr.Float64s(), []float64{49, 98, 147}) {
		t.Fatalf("At(49) = %v", arr.Float64s())
	}
	shape, err := vt.Shape(10)
	if err != nil || !reflect.DeepEqual(shape, []int{3}) {
		t.Fatalf("Shape(10) = %v, %v", shape, err)
	}
}

func TestDynamicShapesInOneTensor(t *testing.T) {
	ctx := context.Background()
	ds, _ := newTestDataset(t)
	tr, err := ds.CreateTensor(ctx, TensorSpec{Name: "ragged", Dtype: tensor.Int32, Bounds: smallBounds})
	if err != nil {
		t.Fatal(err)
	}
	shapes := [][]int{{2, 3}, {5}, {1, 1, 1}, {4, 2}}
	for i, s := range shapes {
		arr := tensor.MustNew(tensor.Int32, s...)
		arr.SetAt(float64(i), make([]int, len(s))...)
		if err := tr.Append(ctx, arr); err != nil {
			t.Fatal(err)
		}
	}
	for i, s := range shapes {
		arr, err := tr.At(ctx, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(arr.Shape(), s) {
			t.Fatalf("sample %d shape = %v, want %v", i, arr.Shape(), s)
		}
		got, err := tr.Shape(uint64(i))
		if err != nil || !reflect.DeepEqual(got, s) {
			t.Fatalf("shape encoder sample %d = %v, %v", i, got, err)
		}
	}
}

func TestImageTensorJPEGRoundTrip(t *testing.T) {
	ctx := context.Background()
	ds, _ := newTestDataset(t)
	img, err := ds.CreateTensor(ctx, TensorSpec{Name: "images", Htype: "image"})
	if err != nil {
		t.Fatal(err)
	}
	// A smooth gradient image JPEG handles well.
	h, w := 32, 32
	pix := make([]byte, h*w*3)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			pix[(y*w+x)*3] = byte(x * 8)
			pix[(y*w+x)*3+1] = byte(y * 8)
			pix[(y*w+x)*3+2] = 128
		}
	}
	arr, _ := tensor.FromBytes(tensor.UInt8, []int{h, w, 3}, pix)
	if err := img.Append(ctx, arr); err != nil {
		t.Fatal(err)
	}
	got, err := img.At(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Shape(), []int{h, w, 3}) {
		t.Fatalf("decoded shape = %v", got.Shape())
	}
	// Lossy: bounded error.
	var sum float64
	for i := range pix {
		d := float64(pix[i]) - got.Float64s()[i]
		if d < 0 {
			d = -d
		}
		sum += d
	}
	if mae := sum / float64(len(pix)); mae > 15 {
		t.Fatalf("jpeg mae = %.2f", mae)
	}
	// Wrong dtype/shape rejected by htype.
	if err := img.Append(ctx, tensor.MustNew(tensor.Float32, 4, 4, 3)); err == nil {
		t.Fatal("float image should be rejected")
	}
}

func TestAppendEncodedDirectCopy(t *testing.T) {
	ctx := context.Background()
	ds, _ := newTestDataset(t)
	img, err := ds.CreateTensor(ctx, TensorSpec{Name: "images", Htype: "image"})
	if err != nil {
		t.Fatal(err)
	}
	// Encode a JPEG out-of-band, then ingest the raw bytes.
	src := tensor.MustNew(tensor.UInt8, 16, 24, 3)
	sample, err := img.encodeSample(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := img.AppendEncoded(ctx, sample.Data); err != nil {
		t.Fatal(err)
	}
	shape, err := img.Shape(0)
	if err != nil || !reflect.DeepEqual(shape, []int{16, 24, 3}) {
		t.Fatalf("sniffed shape = %v, %v", shape, err)
	}
	// Stored bytes must be the exact input (no recode).
	raw, _, err := img.RawAt(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != string(sample.Data) {
		t.Fatal("AppendEncoded must copy bytes verbatim")
	}
	if err := img.AppendEncoded(ctx, []byte("not an image")); err == nil {
		t.Fatal("garbage media should error")
	}
	lbl, _ := ds.CreateTensor(ctx, TensorSpec{Name: "labels", Htype: "class_label"})
	if err := lbl.AppendEncoded(ctx, sample.Data); err == nil {
		t.Fatal("AppendEncoded on uncompressed tensor should error")
	}
}

func TestGroups(t *testing.T) {
	ctx := context.Background()
	ds, _ := newTestDataset(t)
	g := ds.Group("camera")
	if _, err := g.CreateTensor(ctx, TensorSpec{Name: "rgb", Htype: "image"}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.CreateTensor(ctx, TensorSpec{Name: "depth", Dtype: tensor.Float32}); err != nil {
		t.Fatal(err)
	}
	if ds.Tensor("camera/rgb") == nil {
		t.Fatal("grouped tensor not addressable by full name")
	}
	if g.Tensor("rgb") == nil {
		t.Fatal("grouped tensor not addressable via group")
	}
	if got := g.Tensors(); !reflect.DeepEqual(got, []string{"depth", "rgb"}) {
		t.Fatalf("group tensors = %v", got)
	}
}

func TestHiddenTensorsExcludedFromListing(t *testing.T) {
	ctx := context.Background()
	ds, _ := newTestDataset(t)
	if _, err := ds.CreateTensor(ctx, TensorSpec{Name: "x", Dtype: tensor.Int32}); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.CreateTensor(ctx, TensorSpec{Name: "_shadow", Dtype: tensor.Int32, Hidden: true}); err != nil {
		t.Fatal(err)
	}
	if got := ds.Tensors(); !reflect.DeepEqual(got, []string{"x"}) {
		t.Fatalf("Tensors = %v", got)
	}
	if got := ds.AllTensors(); len(got) != 2 {
		t.Fatalf("AllTensors = %v", got)
	}
}

func TestRowAppendAssignsSampleIDs(t *testing.T) {
	ctx := context.Background()
	ds, _ := newTestDataset(t)
	if _, err := ds.CreateTensor(ctx, TensorSpec{Name: "a", Dtype: tensor.Int32}); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.CreateTensor(ctx, TensorSpec{Name: "b", Dtype: tensor.Int32}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		err := ds.Append(ctx, map[string]*tensor.NDArray{
			"a": tensor.Scalar(tensor.Int32, float64(i)),
			"b": tensor.Scalar(tensor.Int32, float64(i*10)),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if ds.NumRows() != 3 {
		t.Fatalf("rows = %d", ds.NumRows())
	}
	ids := ds.Tensor(SampleIDTensor)
	if ids == nil || ids.Len() != 3 {
		t.Fatal("sample id tensor missing or wrong length")
	}
	v, _ := ids.At(ctx, 2)
	if id, _ := v.Item(); id != 2 {
		t.Fatalf("sample id 2 = %v", id)
	}
	if err := ds.Append(ctx, map[string]*tensor.NDArray{"zzz": tensor.Scalar(tensor.Int32, 0)}); err == nil {
		t.Fatal("append to unknown tensor should error")
	}
}

func TestSequenceTensor(t *testing.T) {
	ctx := context.Background()
	ds, _ := newTestDataset(t)
	seq, err := ds.CreateTensor(ctx, TensorSpec{Name: "frames", Htype: "sequence[generic]", Dtype: tensor.Int32, Bounds: smallBounds})
	if err != nil {
		t.Fatal(err)
	}
	rows := [][]float64{{1, 2, 3}, {4}, {}, {5, 6}}
	for _, row := range rows {
		items := make([]*tensor.NDArray, len(row))
		for i, v := range row {
			items[i] = tensor.Scalar(tensor.Int32, v)
		}
		if err := seq.AppendSequence(ctx, items); err != nil {
			t.Fatal(err)
		}
	}
	if seq.Len() != 4 {
		t.Fatalf("sequence rows = %d", seq.Len())
	}
	for i, row := range rows {
		items, err := seq.SequenceAt(ctx, i)
		if err != nil {
			t.Fatal(err)
		}
		if len(items) != len(row) {
			t.Fatalf("row %d has %d items, want %d", i, len(items), len(row))
		}
		for j, v := range row {
			got, _ := items[j].Item()
			if got != v {
				t.Fatalf("row %d item %d = %v, want %v", i, j, got, v)
			}
		}
		n, err := seq.SequenceLen(i)
		if err != nil || n != len(row) {
			t.Fatalf("SequenceLen(%d) = %d, %v", i, n, err)
		}
	}
	// At on a sequence row stacks items of equal shape.
	stacked, err := seq.At(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stacked.Shape(), []int{3}) {
		t.Fatalf("stacked shape = %v", stacked.Shape())
	}
	// Wrong-API guards.
	if err := seq.Append(ctx, tensor.Scalar(tensor.Int32, 1)); err == nil {
		t.Fatal("Append on sequence tensor should error")
	}
	plain, _ := ds.CreateTensor(ctx, TensorSpec{Name: "plain", Dtype: tensor.Int32})
	if err := plain.AppendSequence(ctx, nil); err == nil {
		t.Fatal("AppendSequence on plain tensor should error")
	}
}

func TestLinkTensor(t *testing.T) {
	ctx := context.Background()
	ds, _ := newTestDataset(t)
	links, err := ds.CreateTensor(ctx, TensorSpec{Name: "ext", Htype: "link[image]"})
	if err != nil {
		t.Fatal(err)
	}
	urls := []string{"sim://bucket-a/img0.jpg", "sim://bucket-b/img1.jpg"}
	for _, u := range urls {
		if err := links.AppendLink(ctx, u); err != nil {
			t.Fatal(err)
		}
	}
	for i, u := range urls {
		got, err := links.LinkAt(ctx, uint64(i))
		if err != nil || got != u {
			t.Fatalf("LinkAt(%d) = %q, %v", i, got, err)
		}
	}
	if err := links.Append(ctx, tensor.MustNew(tensor.UInt8, 2, 2, 3)); err == nil {
		t.Fatal("Append on link tensor should error")
	}
	plain, _ := ds.CreateTensor(ctx, TensorSpec{Name: "plain", Dtype: tensor.Int32})
	if err := plain.AppendLink(ctx, "x"); err == nil {
		t.Fatal("AppendLink on plain tensor should error")
	}
	if _, err := plain.LinkAt(ctx, 0); err == nil {
		t.Fatal("LinkAt on plain tensor should error")
	}
}
