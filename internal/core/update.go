package core

import (
	"context"
	"fmt"

	"repro/internal/chunk"
	"repro/internal/encoder"
	"repro/internal/tensor"
)

func tileEntryOf(layout chunk.TileLayout, ids []uint64) encoder.TileEntry {
	return encoder.TileEntry{Layout: layout, ChunkIDs: ids}
}

// SetAt replaces sample idx in place (§3.5 random-access writes: annotators
// writing labels, models storing predictions). The containing chunk is
// rewritten copy-on-write into the current head version, so committed
// versions keep the original bytes (§4.2).
//
// When Strict is disabled on the dataset and idx is beyond the current
// length, the tensor is padded with empty samples up to idx first (§3.5
// sparse tensors).
func (t *Tensor) SetAt(ctx context.Context, idx uint64, arr *tensor.NDArray) error {
	t.ds.mu.Lock()
	defer t.ds.mu.Unlock()
	if err := t.ds.ensureWritable(); err != nil {
		return err
	}
	if t.spec.Sequence {
		return fmt.Errorf("core: SetAt on sequence tensors is not supported")
	}
	if idx >= t.meta.Length {
		if t.ds.strict {
			return fmt.Errorf("core: index %d out of bounds for tensor %q (len %d, strict mode)", idx, t.name, t.meta.Length)
		}
		if err := t.padToLocked(ctx, idx+1); err != nil {
			return err
		}
	}
	s, err := t.encodeSample(arr)
	if err != nil {
		return err
	}
	if err := t.replaceStored(ctx, idx, s); err != nil {
		return err
	}
	if err := t.shapeEnc.Set(idx, s.Shape); err != nil {
		return err
	}
	t.recordUpdate(idx)
	return nil
}

// replaceStored swaps the stored bytes of flat sample idx. Caller holds the
// write lock.
func (t *Tensor) replaceStored(ctx context.Context, idx uint64, s chunk.Sample) error {
	if _, tiled := t.tileEnc.Get(idx); tiled {
		// Replacing a tiled sample re-tiles it from scratch.
		arr, err := t.decodeSample(s)
		if err != nil {
			return err
		}
		if t.sampleCodec == nil {
			arr, err = tensor.FromBytes(t.Dtype(), s.Shape, s.Data)
			if err != nil {
				return err
			}
		}
		if err := t.appendTiledReplace(ctx, idx, arr); err != nil {
			return err
		}
		return nil
	}
	chunkID, local, err := t.chunkEnc.Lookup(idx)
	if err != nil {
		return err
	}
	if t.builder.Len() > 0 && chunkID == t.pendingID {
		if local >= len(t.pendingSamples) {
			return fmt.Errorf("core: pending sample %d out of range", local)
		}
		old := t.pendingSamples[local]
		grown := t.builder.PayloadBytes() - len(old.Data) + len(s.Data)
		if grown <= t.meta.Bounds.Max || len(t.pendingSamples) == 1 {
			t.pendingSamples[local] = s
			return t.rebuildPending()
		}
		// The replacement would overflow the buffered chunk: persist
		// the pending chunk as-is and rewrite it copy-on-write below,
		// where chunks may exceed the bound (Rechunk repairs layout,
		// §3.5).
		if err := t.flushPending(ctx); err != nil {
			return err
		}
	}
	raw, err := t.readChunk(ctx, chunkID)
	if err != nil {
		return err
	}
	samples, err := chunk.Decode(raw)
	if err != nil {
		return err
	}
	if local >= len(samples) {
		return fmt.Errorf("core: sample %d beyond chunk %d", local, chunkID)
	}
	samples[local] = s
	blob, err := chunk.Encode(samples)
	if err != nil {
		return err
	}
	// Copy-on-write: the rewritten chunk lands in the head version under
	// the same id; ancestry lookup finds the newest copy first.
	return t.writeChunk(ctx, chunkID, blob)
}

// appendTiledReplace re-tiles a sample that was already tiled, reusing its
// index slot.
func (t *Tensor) appendTiledReplace(ctx context.Context, idx uint64, arr *tensor.NDArray) error {
	layout, err := chunk.PlanTiles(arr.Shape(), arr.Dtype().Size(), t.meta.Bounds.Target)
	if err != nil {
		return err
	}
	tiles, err := layout.Split(arr)
	if err != nil {
		return err
	}
	ids := make([]uint64, 0, len(tiles))
	for _, tile := range tiles {
		id := t.allocChunkID()
		blob, err := chunk.Encode([]chunk.Sample{{Shape: tile.Shape(), Data: tile.Bytes()}})
		if err != nil {
			return err
		}
		if err := t.writeChunk(ctx, id, blob); err != nil {
			return err
		}
		ids = append(ids, id)
	}
	return t.tileEnc.Set(idx, tileEntryOf(layout, ids))
}

// rebuildPending re-syncs the chunk builder after an in-buffer update.
func (t *Tensor) rebuildPending() error {
	b := chunk.NewBuilder(t.meta.Bounds)
	for _, s := range t.pendingSamples {
		if err := b.Append(s); err != nil {
			return err
		}
	}
	t.builder = b
	return nil
}

// recordUpdate notes idx in the commit diff, deduplicated.
func (t *Tensor) recordUpdate(idx uint64) {
	for _, u := range t.diff.Updated {
		if u == idx {
			return
		}
	}
	t.diff.Updated = append(t.diff.Updated, idx)
}

// PadTo extends the tensor with empty samples until it has n rows,
// supporting sparse out-of-bounds assignment (§3.5).
func (t *Tensor) PadTo(ctx context.Context, n uint64) error {
	t.ds.mu.Lock()
	defer t.ds.mu.Unlock()
	if err := t.ds.ensureWritable(); err != nil {
		return err
	}
	return t.padToLocked(ctx, n)
}

func (t *Tensor) padToLocked(ctx context.Context, n uint64) error {
	for t.meta.Length < n {
		empty := chunk.Sample{Shape: []int{0}, Data: nil}
		if err := t.appendEncodedSample(ctx, empty, nil); err != nil {
			return err
		}
		t.meta.Length++
		t.diff.AddedTo = t.meta.Length
	}
	return nil
}

// Rechunk rewrites the tensor's chunks at the optimal layout (§3.5: "we
// implement an on-the-fly re-chunking algorithm to fix the data layout"
// after random assignment degrades it). All samples are re-packed into
// fresh bounded chunks in the current head version; the chunk encoder is
// replaced wholesale. Tiled samples are left untouched.
func (t *Tensor) Rechunk(ctx context.Context) error {
	t.ds.mu.Lock()
	defer t.ds.mu.Unlock()
	if err := t.ds.ensureWritable(); err != nil {
		return err
	}
	if err := t.flushPending(ctx); err != nil {
		return err
	}
	total := t.chunkEnc.NumSamples()
	var (
		newIDs    []uint64
		newCounts []int
		builder   = chunk.NewBuilder(t.meta.Bounds)
		curID     uint64
		curCount  int
	)
	flush := func() error {
		if builder.Len() == 0 {
			return nil
		}
		blob, n, err := builder.Flush()
		if err != nil {
			return err
		}
		if err := t.writeChunk(ctx, curID, blob); err != nil {
			return err
		}
		newIDs = append(newIDs, curID)
		newCounts = append(newCounts, n)
		curCount = 0
		return nil
	}
	for idx := uint64(0); idx < total; idx++ {
		if entry, tiled := t.tileEnc.Get(idx); tiled {
			if err := flush(); err != nil {
				return err
			}
			// Keep the tile chunks; re-register the index slot.
			newIDs = append(newIDs, entry.ChunkIDs[0])
			newCounts = append(newCounts, 1)
			continue
		}
		s, err := t.storedSample(ctx, idx)
		if err != nil {
			return err
		}
		// Deep-copy: source chunk buffers are reused across reads.
		cp := chunk.Sample{Shape: append([]int(nil), s.Shape...), Data: append([]byte(nil), s.Data...)}
		if builder.ShouldFlushBefore(len(cp.Data)) {
			if err := flush(); err != nil {
				return err
			}
		}
		if builder.Len() == 0 {
			curID = t.allocChunkID()
		}
		if err := builder.Append(cp); err != nil {
			return err
		}
		curCount++
	}
	if err := flush(); err != nil {
		return err
	}
	_ = curCount
	return t.chunkEnc.ReplaceAll(newIDs, newCounts)
}
