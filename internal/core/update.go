package core

import (
	"context"
	"fmt"

	"repro/internal/chunk"
	"repro/internal/encoder"
	"repro/internal/tensor"
)

func tileEntryOf(layout chunk.TileLayout, ids []uint64) encoder.TileEntry {
	return encoder.TileEntry{Layout: layout, ChunkIDs: ids}
}

// SetAt replaces sample idx in place (§3.5 random-access writes: annotators
// writing labels, models storing predictions). The containing chunk is
// rewritten copy-on-write into the current head version, so committed
// versions keep the original bytes (§4.2).
//
// When Strict is disabled on the dataset and idx is beyond the current
// length, the tensor is padded with empty samples up to idx first (§3.5
// sparse tensors).
func (t *Tensor) SetAt(ctx context.Context, idx uint64, arr *tensor.NDArray) error {
	if err := t.ds.writableNow(); err != nil {
		return err
	}
	if t.spec.Sequence {
		return fmt.Errorf("core: SetAt on sequence tensors is not supported")
	}
	// Encode outside the locks; only the index/chunk surgery below needs
	// exclusive access.
	s, err := t.encodeSample(arr)
	if err != nil {
		return err
	}
	if err := t.beginWrite(); err != nil {
		return err
	}
	defer t.ds.mu.RUnlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	// Deferred flush errors (parked, redrivable uploads) do not abort the
	// update mid-way: the index state is fully adjusted and the error is
	// surfaced afterwards.
	var dc deferredCollector
	if idx >= t.meta.Length {
		if t.ds.strict {
			return fmt.Errorf("core: index %d out of bounds for tensor %q (len %d, strict mode)", idx, t.name, t.meta.Length)
		}
		if err := dc.note(t.padToLocked(ctx, idx+1)); err != nil {
			return err
		}
	}
	if err := dc.note(t.replaceStored(ctx, idx, s)); err != nil {
		return err
	}
	if err := t.shapeEnc.Set(idx, s.Shape); err != nil {
		return err
	}
	t.recordUpdate(idx)
	return dc.err()
}

// replaceStored swaps the stored bytes of flat sample idx. Caller holds
// the tensor write lock. A deferred flush error from sealing or rewriting
// (bytes parked, redrivable) is carried through — the replacement still
// completes — so the caller's index state never diverges from the data.
func (t *Tensor) replaceStored(ctx context.Context, idx uint64, s chunk.Sample) error {
	var dc deferredCollector
	note := dc.note
	if _, tiled := t.tileEnc.Get(idx); tiled {
		// Replacing a tiled sample re-tiles it from scratch.
		arr, err := t.decodeSample(s)
		if err != nil {
			return err
		}
		if t.sampleCodec == nil {
			arr, err = tensor.FromBytes(t.Dtype(), s.Shape, s.Data)
			if err != nil {
				return err
			}
		}
		if err := note(t.appendTiledReplace(ctx, idx, arr)); err != nil {
			return err
		}
		return dc.err()
	}
	chunkID, local, err := t.chunkEnc.Lookup(idx)
	if err != nil {
		return err
	}
	if t.builder.Len() > 0 && chunkID == t.pendingID {
		if local >= len(t.pendingSamples) {
			return fmt.Errorf("core: pending sample %d out of range", local)
		}
		old := t.pendingSamples[local]
		grown := t.builder.PayloadBytes() - len(old.Data) + len(s.Data)
		if grown <= t.meta.Bounds.Max || len(t.pendingSamples) == 1 {
			t.pendingSamples[local] = s
			return t.rebuildPending()
		}
		// The replacement would overflow the buffered chunk: persist
		// the pending chunk as-is and rewrite it copy-on-write below,
		// where chunks may exceed the bound (Rechunk repairs layout,
		// §3.5). A deferred seal failure parks the blob readable, so the
		// rewrite below still sees the current bytes.
		if err := note(t.flushPending(ctx)); err != nil {
			return err
		}
	}
	raw, err := t.readChunk(ctx, chunkID)
	if err != nil {
		return err
	}
	samples, err := chunk.Decode(raw)
	if err != nil {
		return err
	}
	if local >= len(samples) {
		return fmt.Errorf("core: sample %d beyond chunk %d", local, chunkID)
	}
	samples[local] = s
	blob, err := chunk.Encode(samples)
	if err != nil {
		return err
	}
	// Copy-on-write: the rewritten chunk lands in the head version under
	// the same id; ancestry lookup finds the newest copy first.
	if err := note(t.writeChunk(ctx, chunkID, blob)); err != nil {
		return err
	}
	return dc.err()
}

// appendTiledReplace re-tiles a sample that was already tiled, reusing its
// index slot. Deferred flush errors from tile uploads are collected; the
// tile layout is still fully recorded before they surface.
func (t *Tensor) appendTiledReplace(ctx context.Context, idx uint64, arr *tensor.NDArray) error {
	var dc deferredCollector
	layout, err := chunk.PlanTiles(arr.Shape(), arr.Dtype().Size(), t.meta.Bounds.Target)
	if err != nil {
		return err
	}
	tiles, err := layout.Split(arr)
	if err != nil {
		return err
	}
	ids := make([]uint64, 0, len(tiles))
	for _, tile := range tiles {
		id := t.allocChunkID()
		blob, err := chunk.Encode([]chunk.Sample{{Shape: tile.Shape(), Data: tile.Bytes()}})
		if err != nil {
			return err
		}
		if err := dc.note(t.writeChunk(ctx, id, blob)); err != nil {
			return err
		}
		ids = append(ids, id)
	}
	if err := t.tileEnc.Set(idx, tileEntryOf(layout, ids)); err != nil {
		return err
	}
	return dc.err()
}

// rebuildPending re-syncs the chunk builder after an in-buffer update.
func (t *Tensor) rebuildPending() error {
	b := chunk.NewBuilder(t.meta.Bounds)
	for _, s := range t.pendingSamples {
		if err := b.Append(s); err != nil {
			return err
		}
	}
	t.builder = b
	return nil
}

// recordUpdate notes idx in the commit diff, deduplicated.
func (t *Tensor) recordUpdate(idx uint64) {
	for _, u := range t.diff.Updated {
		if u == idx {
			return
		}
	}
	t.diff.Updated = append(t.diff.Updated, idx)
}

// PadTo extends the tensor with empty samples until it has n rows,
// supporting sparse out-of-bounds assignment (§3.5).
func (t *Tensor) PadTo(ctx context.Context, n uint64) error {
	if err := t.beginWrite(); err != nil {
		return err
	}
	defer t.ds.mu.RUnlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.padToLocked(ctx, n)
}

func (t *Tensor) padToLocked(ctx context.Context, n uint64) error {
	var dc deferredCollector
	for t.meta.Length < n {
		empty := chunk.Sample{Shape: []int{0}, Data: nil}
		if err := dc.note(t.appendEncodedSample(ctx, empty, nil)); err != nil {
			return err
		}
		t.meta.Length++
		t.diff.AddedTo = t.meta.Length
	}
	return dc.err()
}

// Rechunk rewrites the tensor's chunks at the optimal layout (§3.5: "we
// implement an on-the-fly re-chunking algorithm to fix the data layout"
// after random assignment degrades it). All samples are re-packed into
// fresh bounded chunks in the current head version; the chunk encoder is
// replaced wholesale. Tiled samples are left untouched.
func (t *Tensor) Rechunk(ctx context.Context) error {
	if err := t.beginWrite(); err != nil {
		return err
	}
	defer t.ds.mu.RUnlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	// Deferred flush errors must not abort a rechunk midway: writeChunk
	// has already registered the new id, so bailing before ReplaceAll
	// would persist chunk ids no row references. Collect them, finish the
	// swap, surface afterwards.
	var dc deferredCollector
	note := dc.note
	if err := note(t.flushPending(ctx)); err != nil {
		return err
	}
	total := t.chunkEnc.NumSamples()
	var (
		newIDs    []uint64
		newCounts []int
		builder   = chunk.NewBuilder(t.meta.Bounds)
		curID     uint64
		curCount  int
	)
	flush := func() error {
		if builder.Len() == 0 {
			return nil
		}
		blob, n, err := builder.Flush()
		if err != nil {
			return err
		}
		if err := note(t.writeChunk(ctx, curID, blob)); err != nil {
			return err
		}
		newIDs = append(newIDs, curID)
		newCounts = append(newCounts, n)
		curCount = 0
		return nil
	}
	for idx := uint64(0); idx < total; idx++ {
		if entry, tiled := t.tileEnc.Get(idx); tiled {
			if err := flush(); err != nil {
				return err
			}
			// Keep the tile chunks; re-register the index slot.
			newIDs = append(newIDs, entry.ChunkIDs[0])
			newCounts = append(newCounts, 1)
			continue
		}
		s, err := t.storedSample(ctx, idx)
		if err != nil {
			return err
		}
		// Deep-copy: source chunk buffers are reused across reads.
		cp := chunk.Sample{Shape: append([]int(nil), s.Shape...), Data: append([]byte(nil), s.Data...)}
		if builder.ShouldFlushBefore(len(cp.Data)) {
			if err := flush(); err != nil {
				return err
			}
		}
		if builder.Len() == 0 {
			curID = t.allocChunkID()
		}
		if err := builder.Append(cp); err != nil {
			return err
		}
		curCount++
	}
	if err := flush(); err != nil {
		return err
	}
	_ = curCount
	if err := t.chunkEnc.ReplaceAll(newIDs, newCounts); err != nil {
		return err
	}
	return dc.err()
}
