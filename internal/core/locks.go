package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/storage"
)

// Branch-based advisory locks (§7.3: "Deep Lake implements branch-based
// locks for concurrent access"). A writer acquires the lock of the branch it
// intends to mutate; other writers observe the holder and back off, while
// readers are never blocked (reads only touch immutable commits plus the
// holder's in-flight head).

// lockRecord is the persisted lock file.
type lockRecord struct {
	Owner      string    `json:"owner"`
	Branch     string    `json:"branch"`
	AcquiredAt time.Time `json:"acquired_at"`
}

func branchLockKey(branch string) string { return "locks/" + branch + ".json" }

// ErrBranchLocked reports a conflicting lock holder.
type ErrBranchLocked struct {
	Branch string
	Owner  string
}

func (e *ErrBranchLocked) Error() string {
	return fmt.Sprintf("core: branch %q is locked by %q", e.Branch, e.Owner)
}

// AcquireBranchLock takes the current branch's writer lock for owner.
// Re-acquiring a lock already held by the same owner succeeds (reentrant).
func (ds *Dataset) AcquireBranchLock(ctx context.Context, owner string) error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.branch == "" {
		return fmt.Errorf("core: cannot lock a detached checkout")
	}
	if owner == "" {
		return fmt.Errorf("core: lock owner must be non-empty")
	}
	key := branchLockKey(ds.branch)
	raw, err := ds.store.Get(ctx, key)
	if err == nil {
		var rec lockRecord
		if err := unmarshalJSON(raw, &rec); err != nil {
			return fmt.Errorf("core: corrupt lock file: %w", err)
		}
		if rec.Owner != owner {
			return &ErrBranchLocked{Branch: ds.branch, Owner: rec.Owner}
		}
		return nil // reentrant
	}
	if !storage.IsNotFound(err) {
		return err
	}
	rec := lockRecord{Owner: owner, Branch: ds.branch, AcquiredAt: ds.now()}
	return ds.store.Put(ctx, key, mustJSON(rec))
}

// ReleaseBranchLock drops the current branch's lock if owner holds it.
func (ds *Dataset) ReleaseBranchLock(ctx context.Context, owner string) error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.branch == "" {
		return fmt.Errorf("core: cannot unlock a detached checkout")
	}
	key := branchLockKey(ds.branch)
	raw, err := ds.store.Get(ctx, key)
	if storage.IsNotFound(err) {
		return nil
	}
	if err != nil {
		return err
	}
	var rec lockRecord
	if err := unmarshalJSON(raw, &rec); err != nil {
		return err
	}
	if rec.Owner != owner {
		return &ErrBranchLocked{Branch: ds.branch, Owner: rec.Owner}
	}
	return ds.store.Delete(ctx, key)
}

// BranchLockHolder reports the current branch's lock holder, if any.
func (ds *Dataset) BranchLockHolder(ctx context.Context) (owner string, held bool, err error) {
	ds.mu.RLock()
	branch := ds.branch
	ds.mu.RUnlock()
	if branch == "" {
		return "", false, nil
	}
	raw, err := ds.store.Get(ctx, branchLockKey(branch))
	if storage.IsNotFound(err) {
		return "", false, nil
	}
	if err != nil {
		return "", false, err
	}
	var rec lockRecord
	if err := unmarshalJSON(raw, &rec); err != nil {
		return "", false, err
	}
	return rec.Owner, true, nil
}
