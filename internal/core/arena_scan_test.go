package core

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/chunk"
	"repro/internal/storage"
	"repro/internal/tensor"
)

// TestAutotuneGoldenDeterminism is the ingest autotuner's acceptance test:
// with AutotuneChunkBytes set, the stored bytes are a pure function of the
// append sequence — the serial path, a 1-worker and a 16-worker flush
// pipeline all produce byte-identical objects — and the grown targets
// actually change the layout (fewer, larger chunk objects than the static
// policy).
func TestAutotuneGoldenDeterminism(t *testing.T) {
	ctx := context.Background()
	const autoCap = 4096

	static := buildGoldenDataset(t, WriteOptions{})
	staticChunks := countChunkKeys(snapshotKeys(t, static))

	serial := buildGoldenDataset(t, WriteOptions{AutotuneChunkBytes: autoCap})
	serialKeys := snapshotKeys(t, serial)
	if len(serialKeys) == 0 {
		t.Fatal("autotuned golden build produced no objects")
	}
	autoChunks := countChunkKeys(serialKeys)
	if autoChunks >= staticChunks {
		t.Fatalf("autotune left the layout unchanged: %d chunk objects with cap %d, %d without",
			autoChunks, autoCap, staticChunks)
	}

	for _, workers := range []int{1, 16} {
		t.Run(fmt.Sprintf("flushworkers-%d", workers), func(t *testing.T) {
			parallel := buildGoldenDataset(t, WriteOptions{FlushWorkers: workers, AutotuneChunkBytes: autoCap})
			parallelKeys := snapshotKeys(t, parallel)
			if got, want := fmt.Sprint(parallelKeys), fmt.Sprint(serialKeys); got != want {
				t.Fatalf("stored key sets differ under autotune:\nserial:   %v\nparallel: %v",
					serialKeys, parallelKeys)
			}
			for _, key := range serialKeys {
				want, err := serial.Get(ctx, key)
				if err != nil {
					t.Fatal(err)
				}
				got, err := parallel.Get(ctx, key)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("object %q differs between serial and %d-worker autotuned flush (%d vs %d bytes)",
						key, workers, len(want), len(got))
				}
			}
		})
	}
}

func countChunkKeys(keys []string) int {
	n := 0
	for _, k := range keys {
		if strings.Contains(k, "/chunks/") {
			n++
		}
	}
	return n
}

// TestScanReaderArenaMatchesHeapPath: installing an arena changes where the
// decoded payload bytes live, never what they are.
func TestScanReaderArenaMatchesHeapPath(t *testing.T) {
	const n = 150
	ctx := context.Background()
	_, x := scanDataset(t, n)

	plain := x.NewScanReader()
	arena := chunk.NewArena()
	arenaReader := x.NewScanReader()
	arenaReader.SetArena(arena)

	for i := uint64(0); i < n; i++ {
		want, err := plain.At(ctx, i)
		if err != nil {
			t.Fatal(err)
		}
		got, err := arenaReader.At(ctx, i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("row %d: arena decode differs from heap decode", i)
		}
	}
	// SetArena(nil) restores plain heap allocation mid-stream.
	arenaReader.SetArena(nil)
	if _, err := arenaReader.At(ctx, 0); err != nil {
		t.Fatal(err)
	}
}

// TestScanReaderArenaCutsAllocs asserts the decode path's allocs/op drop
// when an arena serves the payload copies: the per-sample make+copy
// disappears into slab bump allocation.
func TestScanReaderArenaCutsAllocs(t *testing.T) {
	const n = 200
	ctx := context.Background()
	_, x := scanDataset(t, n)

	measure := func(r *ScanReader) float64 {
		// Warm the reader's chunk slot so the measured loop never pays a
		// fetch+decode.
		var i uint64
		return testing.AllocsPerRun(400, func() {
			if _, err := r.At(ctx, i%n); err != nil {
				t.Fatal(err)
			}
			i++
		})
	}

	plain := measure(x.NewScanReader())
	withArena := x.NewScanReader()
	withArena.SetArena(chunk.NewArena())
	arenaAllocs := measure(withArena)

	if arenaAllocs >= plain {
		t.Fatalf("arena did not cut decode allocations: %.1f allocs/op with arena, %.1f without",
			arenaAllocs, plain)
	}
}

// BenchmarkScanReaderAt reports the steady-state per-sample cost of the
// chunk-granular read path with and without a buffer arena; the allocs/op
// column is the headline (ISSUE: near-zero per-sample heap allocation for
// payload copies).
func BenchmarkScanReaderAt(b *testing.B) {
	const n = 512
	ctx := context.Background()
	ds, err := Create(ctx, storage.NewMemory(), "bench")
	if err != nil {
		b.Fatal(err)
	}
	x, err := ds.CreateTensor(ctx, TensorSpec{
		Name: "x", Dtype: tensor.Int32,
		Bounds: chunk.Bounds{Min: 1 << 10, Target: 4 << 10, Max: 8 << 10},
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		arr, _ := tensor.FromFloat64s(tensor.Int32, []int{16}, make([]float64, 16))
		if err := x.Append(ctx, arr); err != nil {
			b.Fatal(err)
		}
	}
	if err := ds.Flush(ctx); err != nil {
		b.Fatal(err)
	}

	run := func(b *testing.B, arena *chunk.Arena) {
		r := x.NewScanReader()
		r.SetArena(arena)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := r.At(ctx, uint64(i%n)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("heap", func(b *testing.B) { run(b, nil) })
	b.Run("arena", func(b *testing.B) { run(b, chunk.NewArena()) })
}
