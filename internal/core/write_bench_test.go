package core

import (
	"context"
	"testing"

	"repro/internal/chunk"
	"repro/internal/storage"
	"repro/internal/tensor"
)

// Benchmarks for the batch append fix: AppendBatch encodes the whole batch
// outside the locks and takes the tensor lock once, where the old path
// re-acquired the dataset lock (and re-checked writability) for every row.
// Run with:
//
//	go test ./internal/core -bench BenchmarkAppend -benchmem

const benchBatchRows = 64

func benchBatch(b *testing.B) *tensor.NDArray {
	b.Helper()
	vals := make([]float64, benchBatchRows*8)
	for i := range vals {
		vals[i] = float64(i % 251)
	}
	batch, err := tensor.FromFloat64s(tensor.Float64, []int{benchBatchRows, 8}, vals)
	if err != nil {
		b.Fatal(err)
	}
	return batch
}

func benchWriteDataset(b *testing.B) *Tensor {
	b.Helper()
	ctx := context.Background()
	// A raw in-memory provider keeps storage cost near zero, so the
	// benchmark isolates exactly what the batch path removes: the per-row
	// writability check and lock round-trip.
	store := storage.NewMemory()
	ds, err := Create(ctx, store, "bench")
	if err != nil {
		b.Fatal(err)
	}
	// Small chunk bounds so batches actually seal chunks and the write
	// path's storage cost is visible, not just in-memory buffering.
	bounds := chunk.Bounds{Min: 1 << 10, Target: 2 << 10, Max: 4 << 10}
	t, err := ds.CreateTensor(ctx, TensorSpec{Name: "x", Dtype: tensor.Float64, Bounds: bounds})
	if err != nil {
		b.Fatal(err)
	}
	return t
}

// BenchmarkAppendPerRow is the old AppendBatch behavior: one full Append —
// writability check, lock round-trip, encode — per row.
func BenchmarkAppendPerRow(b *testing.B) {
	ctx := context.Background()
	t := benchWriteDataset(b)
	batch := benchBatch(b)
	b.ReportMetric(benchBatchRows, "rows/op")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < benchBatchRows; r++ {
			row, err := batch.Index(r)
			if err != nil {
				b.Fatal(err)
			}
			if err := t.Append(ctx, row); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAppendBatch appends the same rows through the batched path: one
// writability check and one lock acquisition per batch.
func BenchmarkAppendBatch(b *testing.B) {
	ctx := context.Background()
	t := benchWriteDataset(b)
	batch := benchBatch(b)
	b.ReportMetric(benchBatchRows, "rows/op")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := t.AppendBatch(ctx, batch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppendBatchPipelined is the batched path with the background
// flush pipeline: sealed chunks upload off the append path.
func BenchmarkAppendBatchPipelined(b *testing.B) {
	ctx := context.Background()
	t := benchWriteDataset(b)
	if err := t.ds.SetWriteOptions(WriteOptions{FlushWorkers: 4}); err != nil {
		b.Fatal(err)
	}
	batch := benchBatch(b)
	b.ReportMetric(benchBatchRows, "rows/op")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := t.AppendBatch(ctx, batch); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := t.ds.Flush(ctx); err != nil {
		b.Fatal(err)
	}
}
