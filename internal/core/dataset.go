// Package core implements the Tensor Storage Format dataset (§3): columnar
// datasets whose columns are typed tensors of dynamically shaped
// n-dimensional samples, chunked between size bounds, indexed by compressed
// encoders, and versioned through a branching commit tree over any storage
// provider.
//
// A dataset on storage is fully self-contained (§5): a provenance file
// (dataset.json), a version-control file, and per-version sub-directories
// holding tensor metadata, encoders, and only the chunks modified in that
// version (§4.2).
package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chunk"
	"repro/internal/storage"
	"repro/internal/tensor"
	"repro/internal/version"
)

// SampleIDTensor is the hidden tensor holding per-row sample ids used to
// track identity across merges (§4.2: "ids of samples are generated and
// stored during the dataset population").
const SampleIDTensor = "_sample_id"

// Dataset is an open Deep Lake dataset bound to a storage provider.
//
// Locking: ds.mu is the structure lock. Operations that change the dataset
// shape — CreateTensor, Flush, Commit, Checkout, Merge — hold it
// exclusively. Per-tensor writers (Append and friends) and all readers hold
// it shared and take the owning tensor's lock (Tensor.mu) underneath, so
// appends to different tensors proceed concurrently and only structure
// operations serialize the whole dataset. Lock order is always ds.mu before
// Tensor.mu.
type Dataset struct {
	mu    sync.RWMutex
	store storage.Provider
	meta  datasetMeta
	tree  *version.Tree

	// idMu is the narrow critical section for sample-id allocation, taken
	// without ds.mu held exclusively so row appends stay concurrent.
	idMu sync.Mutex

	// writeOpts/flusher configure the parallel ingestion engine; nil
	// flusher means the synchronous serial write path. writeOptsSet
	// records that SetWriteOptions was called, distinguishing explicit
	// serial from never-configured. Guarded by ds.mu.
	writeOpts    WriteOptions
	writeOptsSet bool
	flusher      *flushPipeline

	// branch is the checked-out branch; empty when detached at a commit.
	branch string
	// head is the current version id (mutable head, or a frozen commit
	// when detached).
	head string

	tensors map[string]*Tensor
	order   []string

	// strict rejects out-of-bounds SetAt instead of padding (§3.5:
	// "While the strict mode is disabled, out-of-the-bounds indices of a
	// tensor can be assigned").
	strict bool

	// integrity summarizes what Open learned about the dataset's
	// integrity state (generation, abandoned staged roots, checksum
	// coverage). Guarded by ds.mu.
	integrity IntegrityInfo

	// scope is a process-unique handle identity assigned at Create/Open,
	// used to namespace shared (node-level) dataloader caches: datasets
	// have no UUID, so two handles are assumed distinct unless they are
	// literally the same handle. Immutable after construction.
	scope uint64

	// now supplies timestamps; replaceable in tests.
	now func() time.Time
}

// scopeCounter hands out process-unique dataset scope ids; see
// Dataset.scope.
var scopeCounter atomic.Uint64

// ScopeID returns the process-unique identity of this dataset handle.
// Shared caches keyed across datasets (the dataloader's node cache) include
// it so chunks from different handles can never alias: the id is unique per
// handle, so two Opens of the same store are treated as distinct datasets —
// conservative (they won't share decoded chunks) but never wrong.
func (ds *Dataset) ScopeID() uint64 { return ds.scope }

// SetStrict toggles strict index checking for in-place assignment.
func (ds *Dataset) SetStrict(strict bool) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	ds.strict = strict
}

// Create initializes an empty dataset on the provider. The provider's
// namespace must not already contain a dataset.
func Create(ctx context.Context, store storage.Provider, name string) (*Dataset, error) {
	if ok, err := store.Exists(ctx, datasetMetaKey); err != nil {
		return nil, err
	} else if ok {
		return nil, fmt.Errorf("core: dataset already exists")
	}
	now := time.Now().UTC()
	ds := &Dataset{
		store: store,
		meta: datasetMeta{
			Name:          name,
			FormatVersion: FormatVersion,
			CreatedAt:     now,
			CurrentBranch: version.DefaultBranch,
		},
		tree:    version.NewTree(now),
		branch:  version.DefaultBranch,
		tensors: map[string]*Tensor{},
		now:     func() time.Time { return time.Now().UTC() },
		scope:   scopeCounter.Add(1),
	}
	headNode, err := ds.tree.Head(ds.branch)
	if err != nil {
		return nil, err
	}
	ds.head = headNode.ID
	// Schema first, root last: the staged-publish protocol (see
	// persistRoot) means the dataset only becomes visible to Open once the
	// root that references the schema is published.
	if err := ds.store.Put(ctx, schemaKey(ds.head), mustJSON(schemaFile{Tensors: []string{}})); err != nil {
		return nil, err
	}
	if err := ds.persistRoot(ctx); err != nil {
		return nil, err
	}
	return ds, nil
}

// Open loads an existing dataset at its current branch head.
func Open(ctx context.Context, store storage.Provider) (*Dataset, error) {
	ds := &Dataset{
		store:   store,
		tensors: map[string]*Tensor{},
		now:     func() time.Time { return time.Now().UTC() },
		scope:   scopeCounter.Add(1),
	}
	raw, err := store.Get(ctx, datasetMetaKey)
	if err != nil {
		if storage.IsNotFound(err) {
			return nil, fmt.Errorf("core: no dataset at this location")
		}
		return nil, err
	}
	if err := unmarshalJSON(raw, &ds.meta); err != nil {
		return nil, fmt.Errorf("core: corrupt dataset.json: %w", err)
	}
	if ds.meta.FormatVersion != FormatVersion {
		return nil, fmt.Errorf("core: unsupported format version %d", ds.meta.FormatVersion)
	}
	ds.integrity.Generation = ds.meta.Generation

	// Prefer the published root snapshot: it is written whole under a
	// fresh key before dataset.json points at it, so unlike the plain head
	// objects it cannot be torn by a writer killed mid-flush. A legacy
	// dataset (Generation 0) has no snapshot and opens from plain objects.
	var root *rootFile
	if ds.meta.Generation > 0 {
		root, err = loadRoot(ctx, store, ds.meta.Generation)
		if err != nil {
			if !storage.IsNotFound(err) {
				return nil, err
			}
			// Snapshot vanished (over-eager manual cleanup): fall back
			// to the plain layout and surface the fact.
			ds.integrity.RootMissing = true
			root = nil
		}
	}
	if root != nil {
		ds.tree, err = version.Unmarshal(root.Tree)
		if err != nil {
			return nil, fmt.Errorf("core: corrupt version tree in root snapshot %s: %w", rootKey(ds.meta.Generation), err)
		}
	} else {
		rawTree, err := store.Get(ctx, versionTreeKey)
		if err != nil {
			return nil, fmt.Errorf("core: missing version tree: %w", err)
		}
		ds.tree, err = version.Unmarshal(rawTree)
		if err != nil {
			return nil, fmt.Errorf("core: corrupt version tree: %w", err)
		}
	}
	ds.branch = ds.meta.CurrentBranch
	headNode, err := ds.tree.Head(ds.branch)
	if err != nil {
		return nil, err
	}
	ds.head = headNode.ID

	// A staged generation past the published one is the footprint of a
	// writer killed between staging its snapshot and publishing it. The
	// previous (published) generation stays authoritative; the abandoned
	// one is reported so fsck can collect it.
	if ok, err := store.Exists(ctx, rootKey(ds.meta.Generation+1)); err == nil && ok {
		ds.integrity.AbandonedGeneration = ds.meta.Generation + 1
	}

	if root != nil && root.Head == ds.head {
		if err := ds.loadTensorsFromRoot(ctx, root); err != nil {
			return nil, err
		}
	} else if err := ds.loadTensors(ctx); err != nil {
		return nil, err
	}
	return ds, nil
}

// Name returns the dataset name.
func (ds *Dataset) Name() string {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	return ds.meta.Name
}

// Branch returns the checked-out branch; empty when detached.
func (ds *Dataset) Branch() string {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	return ds.branch
}

// Version returns the current version id.
func (ds *Dataset) Version() string {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	return ds.head
}

// Store exposes the underlying provider (read-only use by the streaming
// layers).
func (ds *Dataset) Store() storage.Provider { return ds.store }

// CreateTensor adds a tensor column to the dataset.
func (ds *Dataset) CreateTensor(ctx context.Context, spec TensorSpec) (*Tensor, error) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if err := ds.ensureWritable(); err != nil {
		return nil, err
	}
	if spec.Name == "" || strings.HasPrefix(spec.Name, "/") || strings.HasSuffix(spec.Name, "/") {
		return nil, fmt.Errorf("core: invalid tensor name %q", spec.Name)
	}
	if _, exists := ds.tensors[spec.Name]; exists {
		return nil, fmt.Errorf("core: tensor %q already exists", spec.Name)
	}
	t, err := newTensor(ds, spec)
	if err != nil {
		return nil, err
	}
	// Clear any sticky error from unrelated background uploads (their
	// blobs redrive here), then land the tensor's metadata before the
	// schema that references it. The tensor is registered in ds.tensors
	// only once everything is durable, so a failed create leaves no
	// half-registered tensor behind — the call can simply be retried.
	if ds.flusher != nil {
		if err := ds.flusher.redrive(ctx); err != nil {
			return nil, err
		}
	}
	if err := t.save(ctx); err != nil {
		return nil, err
	}
	if err := ds.drainFlusher(ctx); err != nil {
		return nil, err
	}
	ds.tensors[spec.Name] = t
	ds.order = append(ds.order, spec.Name)
	if err := ds.persistSchema(ctx); err != nil {
		delete(ds.tensors, spec.Name)
		ds.order = ds.order[:len(ds.order)-1]
		return nil, err
	}
	// Publish a generation covering the schema change so a process that
	// opens the dataset without an intervening Flush still sees the new
	// tensor through the snapshot. Roll back on failure: the staged (or
	// plain) objects are harmless garbage and the call can be retried.
	if err := ds.persistRoot(ctx); err != nil {
		delete(ds.tensors, spec.Name)
		ds.order = ds.order[:len(ds.order)-1]
		return nil, err
	}
	return t, nil
}

// DeleteTensor removes a tensor from the current working version's schema.
// Historical commits keep the tensor (schema evolution is version-tracked,
// §2.4(3)/§3.1); its chunks in ancestor versions remain untouched.
func (ds *Dataset) DeleteTensor(ctx context.Context, name string) error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if err := ds.ensureWritable(); err != nil {
		return err
	}
	if _, ok := ds.tensors[name]; !ok {
		return fmt.Errorf("core: tensor %q does not exist", name)
	}
	// Land every queued AND parked upload before listing this tensor's
	// keys, so neither a background Put nor a later flush's redrive
	// resurrects an object after the delete.
	if ds.flusher != nil {
		if err := ds.flusher.redrive(ctx); err != nil {
			return err
		}
		if err := ds.flusher.drain(ctx); err != nil {
			return err
		}
	}
	delete(ds.tensors, name)
	for i, n := range ds.order {
		if n == name {
			ds.order = append(ds.order[:i], ds.order[i+1:]...)
			break
		}
	}
	// Drop the working version's copies of the tensor state; chunks in
	// this head are garbage but ancestors keep theirs.
	keys, err := ds.store.List(ctx, tensorPrefix(ds.head, name)+"/")
	if err != nil {
		return err
	}
	for _, key := range keys {
		if err := ds.store.Delete(ctx, key); err != nil {
			return err
		}
	}
	if err := ds.persistSchema(ctx); err != nil {
		return err
	}
	return ds.persistRoot(ctx)
}

// Tensor returns an open tensor by name, or nil if absent.
func (ds *Dataset) Tensor(name string) *Tensor {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	return ds.tensors[name]
}

// Tensors lists visible (non-hidden) tensor names in creation order.
func (ds *Dataset) Tensors() []string {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	var out []string
	for _, name := range ds.order {
		if !ds.tensors[name].meta.Hidden {
			out = append(out, name)
		}
	}
	return out
}

// AllTensors lists every tensor including hidden ones.
func (ds *Dataset) AllTensors() []string {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	return append([]string(nil), ds.order...)
}

// NumRows returns the minimum length across visible tensors — the number of
// complete rows. A dataset with no tensors has zero rows.
func (ds *Dataset) NumRows() uint64 {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	var n uint64
	first := true
	for _, name := range ds.order {
		t := ds.tensors[name]
		if t.meta.Hidden {
			continue
		}
		if l := t.lengthShared(); first || l < n {
			n = l
			first = false
		}
	}
	if first {
		return 0
	}
	return n
}

// MaxLength returns the maximum length across visible tensors.
func (ds *Dataset) MaxLength() uint64 {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	var n uint64
	for _, name := range ds.order {
		t := ds.tensors[name]
		if !t.meta.Hidden {
			if l := t.lengthShared(); l > n {
				n = l
			}
		}
	}
	return n
}

// Append adds one full row across the given visible tensors and assigns a
// hidden sample id. Tensors absent from values are left untouched.
//
// The row is appended atomically with respect to other Append calls:
// samples encode outside every lock, then the involved tensors (plus the
// hidden sample-id tensor) are locked together in name order, so
// concurrent row appenders interleave whole rows — index k holds the same
// caller's values in every tensor. Storage trouble cannot tear a row
// either: flush failures defer (the row commits, the error surfaces, the
// next Flush retries the upload). Only a structural failure — an internal
// encoder/builder invariant violation, which no input or storage
// condition produces — can abort mid-row, and its error return means the
// handle should be abandoned.
func (ds *Dataset) Append(ctx context.Context, values map[string]*tensor.NDArray) error {
	ds.mu.RLock()
	err := ds.ensureWritable()
	idt := ds.tensors[SampleIDTensor]
	ds.mu.RUnlock()
	if err != nil {
		return err
	}

	if idt == nil {
		idt, err = ds.CreateTensor(ctx, TensorSpec{
			Name:   SampleIDTensor,
			Htype:  "generic",
			Dtype:  tensor.UInt64,
			Hidden: true,
		})
		if err != nil {
			// A concurrent row append may have created it first.
			if idt = ds.Tensor(SampleIDTensor); idt == nil {
				return err
			}
		}
	}

	// Validate and encode every sample before taking any lock.
	names := make([]string, 0, len(values))
	for name := range values {
		if name == SampleIDTensor {
			return fmt.Errorf("core: cannot append to hidden tensor %q", name)
		}
		names = append(names, name)
	}
	sort.Strings(names)
	type rowPart struct {
		t   *Tensor
		s   chunk.Sample
		arr *tensor.NDArray
	}
	parts := make([]rowPart, 0, len(names))
	for _, name := range names {
		t := ds.Tensor(name)
		if t == nil {
			return fmt.Errorf("core: unknown tensor %q", name)
		}
		if t.spec.Sequence {
			return fmt.Errorf("core: append to %q: tensor is a sequence tensor; use AppendSequence", name)
		}
		if t.spec.Link {
			return fmt.Errorf("core: append to %q: tensor is a link tensor; use AppendLink", name)
		}
		s, err := t.encodeSample(values[name])
		if err != nil {
			return fmt.Errorf("core: append to %q: %w", name, err)
		}
		parts = append(parts, rowPart{t: t, s: s, arr: values[name]})
	}

	// Lock the full tensor set in name order (the one deterministic
	// multi-tensor lock order in the package; _sample_id sorts with the
	// rest) and commit the row.
	locked := append(parts, rowPart{t: idt})
	sort.Slice(locked, func(i, j int) bool { return locked[i].t.name < locked[j].t.name })
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	if err := ds.ensureWritable(); err != nil {
		return err
	}
	for i := range locked {
		// A Checkout during the unlocked encoding replaces ds.tensors;
		// committing to orphaned handles would silently lose the row.
		if ds.tensors[locked[i].t.name] != locked[i].t {
			return fmt.Errorf("core: tensor handle %q is stale (a checkout replaced it)", locked[i].t.name)
		}
	}
	for i := range locked {
		locked[i].t.mu.Lock()
	}
	defer func() {
		for i := len(locked) - 1; i >= 0; i-- {
			locked[i].t.mu.Unlock()
		}
	}()
	// Deferred flush errors (storage hiccups whose bytes are parked and
	// retried by the next Flush) do not abort the row: every tensor still
	// records its sample, so index k stays aligned across the row; the
	// first such error is surfaced after the row commits.
	var dc deferredCollector
	for _, p := range parts {
		if err := dc.note(p.t.appendEncodedSample(ctx, p.s, p.arr)); err != nil {
			return fmt.Errorf("core: append to %q: %w", p.t.name, err)
		}
		p.t.meta.Length++
		p.t.diff.AddedTo = p.t.meta.Length
	}
	ds.idMu.Lock()
	id := ds.meta.NextSampleID
	ds.meta.NextSampleID++
	ds.idMu.Unlock()
	idSample, err := idt.encodeSample(tensor.Scalar(tensor.UInt64, float64(id)))
	if err != nil {
		return err
	}
	if err := dc.note(idt.appendEncodedSample(ctx, idSample, nil)); err != nil {
		return err
	}
	idt.meta.Length++
	idt.diff.AddedTo = idt.meta.Length
	return dc.err()
}

// Flush writes all buffered chunks and metadata to storage. A dataset must
// be flushed (or committed) before another process opens it.
func (ds *Dataset) Flush(ctx context.Context) error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.flushLocked(ctx)
}

// flushLocked seals every tensor's pending chunk, waits for the flush
// pipeline to land all chunk uploads (the barrier that keeps version
// semantics identical to the serial path), then persists metadata strictly
// after the data it references — in parallel across tensors when a
// pipeline is configured, since per-tensor metadata objects are
// independent. dataset.json and the version tree go last, once everything
// they reference is durable. Caller holds ds.mu exclusively.
func (ds *Dataset) flushLocked(ctx context.Context) error {
	// A new flush attempt restarts uploads that failed or were cancelled
	// earlier — their blobs are still in the pipeline's pending map, so a
	// transient upload error is recovered by simply flushing again.
	if ds.flusher != nil {
		if err := ds.flusher.redrive(ctx); err != nil {
			return err
		}
	}
	for _, name := range ds.order {
		if err := ds.tensors[name].flushPending(ctx); err != nil {
			return err
		}
	}
	if err := ds.drainFlusher(ctx); err != nil {
		return err
	}
	// save() routes per-tensor metadata through the pipeline as well (the
	// objects are independent), so a second drain fences them before the
	// root files that reference everything go out.
	for _, name := range ds.order {
		if err := ds.tensors[name].save(ctx); err != nil {
			return err
		}
	}
	if err := ds.drainFlusher(ctx); err != nil {
		return err
	}
	return ds.persistRoot(ctx)
}

// drainFlusher waits for every queued upload and surfaces the first error.
// Caller holds ds.mu exclusively.
func (ds *Dataset) drainFlusher(ctx context.Context) error {
	if ds.flusher == nil {
		return nil
	}
	return ds.flusher.drain(ctx)
}

// putObject stores one metadata object: through the flush pipeline when one
// is configured (callers fence with drainFlusher before depending on it),
// inline otherwise.
func (ds *Dataset) putObject(ctx context.Context, key string, blob []byte) error {
	if ds.flusher != nil {
		return ds.flusher.enqueue(ctx, key, blob)
	}
	return ds.store.Put(ctx, key, blob)
}

func (ds *Dataset) ensureWritable() error {
	if ds.branch == "" {
		return fmt.Errorf("core: dataset is in detached read-only state at %s; checkout a branch to write", ds.head)
	}
	return nil
}

// persistRoot publishes the dataset's mutable head state with the staged
// write-new-then-publish protocol: stage a complete snapshot of everything a
// reader needs under the next generation's roots/ key, then atomically flip
// dataset.json to point at it (FS providers rename into place; object stores
// replace whole objects). A writer killed anywhere before the dataset.json
// rewrite leaves the previous generation untouched and fully readable — the
// staged snapshot and any chunks uploaded for it are mere garbage that fsck
// collects. version_control.json is also rewritten (after the publish) as a
// convenience copy for tooling; readers of generation-aware datasets treat
// the tree embedded in the snapshot as authoritative.
//
// Caller holds ds.mu exclusively; NextSampleID is copied under idMu because
// row appends allocate ids outside the structure lock. The in-memory
// generation advances only after a successful publish, so a retried flush
// restages the same generation and converges to identical bytes.
func (ds *Dataset) persistRoot(ctx context.Context) error {
	ds.meta.CurrentBranch = ds.branch
	if ds.branch == "" {
		// Keep the last real branch on detached checkouts so a plain
		// Open recovers a writable state.
		ds.meta.CurrentBranch = version.DefaultBranch
	}
	ds.idMu.Lock()
	meta := ds.meta
	ds.idMu.Unlock()
	rawTree, err := ds.tree.Marshal()
	if err != nil {
		return err
	}
	gen := meta.Generation + 1
	meta.Generation = gen
	root, err := ds.buildRootLocked(meta, rawTree)
	if err != nil {
		return err
	}
	if err := ds.store.Put(ctx, rootKey(gen), mustJSON(root)); err != nil {
		return err
	}
	// The publish point: after this Put, generation gen is live.
	if err := ds.store.Put(ctx, datasetMetaKey, mustJSON(meta)); err != nil {
		return err
	}
	if err := ds.store.Put(ctx, versionTreeKey, rawTree); err != nil {
		return err
	}
	ds.idMu.Lock()
	ds.meta.Generation = gen
	ds.idMu.Unlock()
	// Keep the current and previous snapshots (the previous one is the
	// crash-recovery target while the next publish is in flight); drop
	// older ones best-effort.
	if gen > 2 {
		_ = ds.store.Delete(ctx, rootKey(gen-2))
	}
	return nil
}

func (ds *Dataset) persistSchema(ctx context.Context) error {
	return ds.store.Put(ctx, schemaKey(ds.head), mustJSON(schemaFile{Tensors: append([]string(nil), ds.order...)}))
}

// loadTensors reads the schema of the current head and opens every tensor.
func (ds *Dataset) loadTensors(ctx context.Context) error {
	raw, err := ds.store.Get(ctx, schemaKey(ds.head))
	if err != nil {
		return fmt.Errorf("core: missing schema for version %s: %w", ds.head, err)
	}
	var schema schemaFile
	if err := unmarshalJSON(raw, &schema); err != nil {
		return err
	}
	ds.tensors = map[string]*Tensor{}
	ds.order = nil
	for _, name := range schema.Tensors {
		t, err := loadTensor(ctx, ds, name)
		if err != nil {
			return fmt.Errorf("core: load tensor %q: %w", name, err)
		}
		ds.tensors[name] = t
		ds.order = append(ds.order, name)
	}
	ds.seedChecksums()
	return nil
}

// Group is a syntactic view over tensors sharing a name prefix (§3.1).
type Group struct {
	ds     *Dataset
	prefix string
}

// Group returns a group rooted at name.
func (ds *Dataset) Group(name string) Group {
	return Group{ds: ds, prefix: strings.TrimSuffix(name, "/") + "/"}
}

// CreateTensor creates a tensor inside the group.
func (g Group) CreateTensor(ctx context.Context, spec TensorSpec) (*Tensor, error) {
	spec.Name = g.prefix + spec.Name
	return g.ds.CreateTensor(ctx, spec)
}

// Tensor opens a tensor inside the group.
func (g Group) Tensor(name string) *Tensor { return g.ds.Tensor(g.prefix + name) }

// Tensors lists visible tensors in the group, names relative to it.
func (g Group) Tensors() []string {
	var out []string
	for _, name := range g.ds.Tensors() {
		if strings.HasPrefix(name, g.prefix) {
			out = append(out, strings.TrimPrefix(name, g.prefix))
		}
	}
	sort.Strings(out)
	return out
}
