// Package core implements the Tensor Storage Format dataset (§3): columnar
// datasets whose columns are typed tensors of dynamically shaped
// n-dimensional samples, chunked between size bounds, indexed by compressed
// encoders, and versioned through a branching commit tree over any storage
// provider.
//
// A dataset on storage is fully self-contained (§5): a provenance file
// (dataset.json), a version-control file, and per-version sub-directories
// holding tensor metadata, encoders, and only the chunks modified in that
// version (§4.2).
package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/storage"
	"repro/internal/tensor"
	"repro/internal/version"
)

// SampleIDTensor is the hidden tensor holding per-row sample ids used to
// track identity across merges (§4.2: "ids of samples are generated and
// stored during the dataset population").
const SampleIDTensor = "_sample_id"

// Dataset is an open Deep Lake dataset bound to a storage provider.
type Dataset struct {
	mu    sync.RWMutex
	store storage.Provider
	meta  datasetMeta
	tree  *version.Tree

	// branch is the checked-out branch; empty when detached at a commit.
	branch string
	// head is the current version id (mutable head, or a frozen commit
	// when detached).
	head string

	tensors map[string]*Tensor
	order   []string

	// strict rejects out-of-bounds SetAt instead of padding (§3.5:
	// "While the strict mode is disabled, out-of-the-bounds indices of a
	// tensor can be assigned").
	strict bool

	// now supplies timestamps; replaceable in tests.
	now func() time.Time
}

// SetStrict toggles strict index checking for in-place assignment.
func (ds *Dataset) SetStrict(strict bool) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	ds.strict = strict
}

// Create initializes an empty dataset on the provider. The provider's
// namespace must not already contain a dataset.
func Create(ctx context.Context, store storage.Provider, name string) (*Dataset, error) {
	if ok, err := store.Exists(ctx, datasetMetaKey); err != nil {
		return nil, err
	} else if ok {
		return nil, fmt.Errorf("core: dataset already exists")
	}
	now := time.Now().UTC()
	ds := &Dataset{
		store: store,
		meta: datasetMeta{
			Name:          name,
			FormatVersion: FormatVersion,
			CreatedAt:     now,
			CurrentBranch: version.DefaultBranch,
		},
		tree:    version.NewTree(now),
		branch:  version.DefaultBranch,
		tensors: map[string]*Tensor{},
		now:     func() time.Time { return time.Now().UTC() },
	}
	headNode, err := ds.tree.Head(ds.branch)
	if err != nil {
		return nil, err
	}
	ds.head = headNode.ID
	if err := ds.persistRoot(ctx); err != nil {
		return nil, err
	}
	if err := ds.store.Put(ctx, schemaKey(ds.head), mustJSON(schemaFile{Tensors: []string{}})); err != nil {
		return nil, err
	}
	return ds, nil
}

// Open loads an existing dataset at its current branch head.
func Open(ctx context.Context, store storage.Provider) (*Dataset, error) {
	ds := &Dataset{
		store:   store,
		tensors: map[string]*Tensor{},
		now:     func() time.Time { return time.Now().UTC() },
	}
	raw, err := store.Get(ctx, datasetMetaKey)
	if err != nil {
		if storage.IsNotFound(err) {
			return nil, fmt.Errorf("core: no dataset at this location")
		}
		return nil, err
	}
	if err := unmarshalJSON(raw, &ds.meta); err != nil {
		return nil, fmt.Errorf("core: corrupt dataset.json: %w", err)
	}
	if ds.meta.FormatVersion != FormatVersion {
		return nil, fmt.Errorf("core: unsupported format version %d", ds.meta.FormatVersion)
	}
	rawTree, err := store.Get(ctx, versionTreeKey)
	if err != nil {
		return nil, fmt.Errorf("core: missing version tree: %w", err)
	}
	ds.tree, err = version.Unmarshal(rawTree)
	if err != nil {
		return nil, err
	}
	ds.branch = ds.meta.CurrentBranch
	headNode, err := ds.tree.Head(ds.branch)
	if err != nil {
		return nil, err
	}
	ds.head = headNode.ID
	if err := ds.loadTensors(ctx); err != nil {
		return nil, err
	}
	return ds, nil
}

// Name returns the dataset name.
func (ds *Dataset) Name() string {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	return ds.meta.Name
}

// Branch returns the checked-out branch; empty when detached.
func (ds *Dataset) Branch() string {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	return ds.branch
}

// Version returns the current version id.
func (ds *Dataset) Version() string {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	return ds.head
}

// Store exposes the underlying provider (read-only use by the streaming
// layers).
func (ds *Dataset) Store() storage.Provider { return ds.store }

// CreateTensor adds a tensor column to the dataset.
func (ds *Dataset) CreateTensor(ctx context.Context, spec TensorSpec) (*Tensor, error) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if err := ds.ensureWritable(); err != nil {
		return nil, err
	}
	if spec.Name == "" || strings.HasPrefix(spec.Name, "/") || strings.HasSuffix(spec.Name, "/") {
		return nil, fmt.Errorf("core: invalid tensor name %q", spec.Name)
	}
	if _, exists := ds.tensors[spec.Name]; exists {
		return nil, fmt.Errorf("core: tensor %q already exists", spec.Name)
	}
	t, err := newTensor(ds, spec)
	if err != nil {
		return nil, err
	}
	ds.tensors[spec.Name] = t
	ds.order = append(ds.order, spec.Name)
	if err := t.save(ctx); err != nil {
		return nil, err
	}
	if err := ds.persistSchema(ctx); err != nil {
		return nil, err
	}
	return t, nil
}

// DeleteTensor removes a tensor from the current working version's schema.
// Historical commits keep the tensor (schema evolution is version-tracked,
// §2.4(3)/§3.1); its chunks in ancestor versions remain untouched.
func (ds *Dataset) DeleteTensor(ctx context.Context, name string) error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if err := ds.ensureWritable(); err != nil {
		return err
	}
	if _, ok := ds.tensors[name]; !ok {
		return fmt.Errorf("core: tensor %q does not exist", name)
	}
	delete(ds.tensors, name)
	for i, n := range ds.order {
		if n == name {
			ds.order = append(ds.order[:i], ds.order[i+1:]...)
			break
		}
	}
	// Drop the working version's copies of the tensor state; chunks in
	// this head are garbage but ancestors keep theirs.
	keys, err := ds.store.List(ctx, tensorPrefix(ds.head, name)+"/")
	if err != nil {
		return err
	}
	for _, key := range keys {
		if err := ds.store.Delete(ctx, key); err != nil {
			return err
		}
	}
	return ds.persistSchema(ctx)
}

// Tensor returns an open tensor by name, or nil if absent.
func (ds *Dataset) Tensor(name string) *Tensor {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	return ds.tensors[name]
}

// Tensors lists visible (non-hidden) tensor names in creation order.
func (ds *Dataset) Tensors() []string {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	var out []string
	for _, name := range ds.order {
		if !ds.tensors[name].meta.Hidden {
			out = append(out, name)
		}
	}
	return out
}

// AllTensors lists every tensor including hidden ones.
func (ds *Dataset) AllTensors() []string {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	return append([]string(nil), ds.order...)
}

// NumRows returns the minimum length across visible tensors — the number of
// complete rows. A dataset with no tensors has zero rows.
func (ds *Dataset) NumRows() uint64 {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	var n uint64
	first := true
	for _, name := range ds.order {
		t := ds.tensors[name]
		if t.meta.Hidden {
			continue
		}
		if first || t.meta.Length < n {
			n = t.meta.Length
			first = false
		}
	}
	if first {
		return 0
	}
	return n
}

// MaxLength returns the maximum length across visible tensors.
func (ds *Dataset) MaxLength() uint64 {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	var n uint64
	for _, name := range ds.order {
		t := ds.tensors[name]
		if !t.meta.Hidden && t.meta.Length > n {
			n = t.meta.Length
		}
	}
	return n
}

// Append adds one full row across the given visible tensors and assigns a
// hidden sample id. Tensors absent from values are left untouched.
func (ds *Dataset) Append(ctx context.Context, values map[string]*tensor.NDArray) error {
	ds.mu.Lock()
	if err := ds.ensureWritable(); err != nil {
		ds.mu.Unlock()
		return err
	}
	idt := ds.tensors[SampleIDTensor]
	ds.mu.Unlock()

	if idt == nil {
		var err error
		idt, err = ds.CreateTensor(ctx, TensorSpec{
			Name:   SampleIDTensor,
			Htype:  "generic",
			Dtype:  tensor.UInt64,
			Hidden: true,
		})
		if err != nil {
			return err
		}
	}
	for name, arr := range values {
		t := ds.Tensor(name)
		if t == nil {
			return fmt.Errorf("core: unknown tensor %q", name)
		}
		if err := t.Append(ctx, arr); err != nil {
			return fmt.Errorf("core: append to %q: %w", name, err)
		}
	}
	ds.mu.Lock()
	id := ds.meta.NextSampleID
	ds.meta.NextSampleID++
	ds.mu.Unlock()
	return idt.Append(ctx, tensor.Scalar(tensor.UInt64, float64(id)))
}

// Flush writes all buffered chunks and metadata to storage. A dataset must
// be flushed (or committed) before another process opens it.
func (ds *Dataset) Flush(ctx context.Context) error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.flushLocked(ctx)
}

func (ds *Dataset) flushLocked(ctx context.Context) error {
	for _, name := range ds.order {
		t := ds.tensors[name]
		if err := t.flushPending(ctx); err != nil {
			return err
		}
		if err := t.save(ctx); err != nil {
			return err
		}
	}
	return ds.persistRoot(ctx)
}

func (ds *Dataset) ensureWritable() error {
	if ds.branch == "" {
		return fmt.Errorf("core: dataset is in detached read-only state at %s; checkout a branch to write", ds.head)
	}
	return nil
}

// persistRoot writes dataset.json and the version tree.
func (ds *Dataset) persistRoot(ctx context.Context) error {
	ds.meta.CurrentBranch = ds.branch
	if ds.branch == "" {
		// Keep the last real branch on detached checkouts so a plain
		// Open recovers a writable state.
		ds.meta.CurrentBranch = version.DefaultBranch
	}
	if err := ds.store.Put(ctx, datasetMetaKey, mustJSON(ds.meta)); err != nil {
		return err
	}
	rawTree, err := ds.tree.Marshal()
	if err != nil {
		return err
	}
	return ds.store.Put(ctx, versionTreeKey, rawTree)
}

func (ds *Dataset) persistSchema(ctx context.Context) error {
	return ds.store.Put(ctx, schemaKey(ds.head), mustJSON(schemaFile{Tensors: append([]string(nil), ds.order...)}))
}

// loadTensors reads the schema of the current head and opens every tensor.
func (ds *Dataset) loadTensors(ctx context.Context) error {
	raw, err := ds.store.Get(ctx, schemaKey(ds.head))
	if err != nil {
		return fmt.Errorf("core: missing schema for version %s: %w", ds.head, err)
	}
	var schema schemaFile
	if err := unmarshalJSON(raw, &schema); err != nil {
		return err
	}
	ds.tensors = map[string]*Tensor{}
	ds.order = nil
	for _, name := range schema.Tensors {
		t, err := loadTensor(ctx, ds, name)
		if err != nil {
			return fmt.Errorf("core: load tensor %q: %w", name, err)
		}
		ds.tensors[name] = t
		ds.order = append(ds.order, name)
	}
	return nil
}

// Group is a syntactic view over tensors sharing a name prefix (§3.1).
type Group struct {
	ds     *Dataset
	prefix string
}

// Group returns a group rooted at name.
func (ds *Dataset) Group(name string) Group {
	return Group{ds: ds, prefix: strings.TrimSuffix(name, "/") + "/"}
}

// CreateTensor creates a tensor inside the group.
func (g Group) CreateTensor(ctx context.Context, spec TensorSpec) (*Tensor, error) {
	spec.Name = g.prefix + spec.Name
	return g.ds.CreateTensor(ctx, spec)
}

// Tensor opens a tensor inside the group.
func (g Group) Tensor(name string) *Tensor { return g.ds.Tensor(g.prefix + name) }

// Tensors lists visible tensors in the group, names relative to it.
func (g Group) Tensors() []string {
	var out []string
	for _, name := range g.ds.Tensors() {
		if strings.HasPrefix(name, g.prefix) {
			out = append(out, strings.TrimPrefix(name, g.prefix))
		}
	}
	sort.Strings(out)
	return out
}
