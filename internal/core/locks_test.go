package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/tensor"
)

func TestBranchLockLifecycle(t *testing.T) {
	ctx := context.Background()
	ds, store := newTestDataset(t)

	// No holder initially.
	owner, held, err := ds.BranchLockHolder(ctx)
	if err != nil || held || owner != "" {
		t.Fatalf("initial holder = %q, %v, %v", owner, held, err)
	}

	// Acquire, reentrant re-acquire.
	if err := ds.AcquireBranchLock(ctx, "trainer-1"); err != nil {
		t.Fatal(err)
	}
	if err := ds.AcquireBranchLock(ctx, "trainer-1"); err != nil {
		t.Fatalf("reentrant acquire: %v", err)
	}
	owner, held, _ = ds.BranchLockHolder(ctx)
	if !held || owner != "trainer-1" {
		t.Fatalf("holder = %q, %v", owner, held)
	}

	// A second writer (same storage) is refused.
	other, err := Open(ctx, store)
	if err != nil {
		t.Fatal(err)
	}
	err = other.AcquireBranchLock(ctx, "trainer-2")
	var locked *ErrBranchLocked
	if !errors.As(err, &locked) || locked.Owner != "trainer-1" {
		t.Fatalf("conflicting acquire = %v", err)
	}

	// Wrong owner cannot release.
	if err := other.ReleaseBranchLock(ctx, "trainer-2"); err == nil {
		t.Fatal("foreign release should error")
	}
	// Rightful release frees the branch.
	if err := ds.ReleaseBranchLock(ctx, "trainer-1"); err != nil {
		t.Fatal(err)
	}
	if err := other.AcquireBranchLock(ctx, "trainer-2"); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	// Releasing an unheld lock is a no-op.
	if err := other.ReleaseBranchLock(ctx, "trainer-2"); err != nil {
		t.Fatal(err)
	}
	if err := other.ReleaseBranchLock(ctx, "trainer-2"); err != nil {
		t.Fatalf("double release: %v", err)
	}
}

func TestBranchLockPerBranch(t *testing.T) {
	ctx := context.Background()
	ds, _ := newTestDataset(t)
	x, _ := ds.CreateTensor(ctx, TensorSpec{Name: "x", Dtype: tensor.Int32, Bounds: smallBounds})
	appendInts(t, x, 1)
	if _, err := ds.Commit(ctx, "base"); err != nil {
		t.Fatal(err)
	}
	if err := ds.AcquireBranchLock(ctx, "alice"); err != nil {
		t.Fatal(err)
	}
	// A different branch has an independent lock.
	if err := ds.Checkout(ctx, "dev", true); err != nil {
		t.Fatal(err)
	}
	if err := ds.AcquireBranchLock(ctx, "bob"); err != nil {
		t.Fatalf("dev lock: %v", err)
	}
	owner, held, _ := ds.BranchLockHolder(ctx)
	if !held || owner != "bob" {
		t.Fatalf("dev holder = %q", owner)
	}
	// Back on main, alice still holds.
	if err := ds.Checkout(ctx, "main", false); err != nil {
		t.Fatal(err)
	}
	owner, held, _ = ds.BranchLockHolder(ctx)
	if !held || owner != "alice" {
		t.Fatalf("main holder = %q", owner)
	}
}

func TestBranchLockErrors(t *testing.T) {
	ctx := context.Background()
	ds, _ := newTestDataset(t)
	if err := ds.AcquireBranchLock(ctx, ""); err == nil {
		t.Fatal("empty owner should error")
	}
	x, _ := ds.CreateTensor(ctx, TensorSpec{Name: "x", Dtype: tensor.Int32, Bounds: smallBounds})
	appendInts(t, x, 1)
	c1, _ := ds.Commit(ctx, "c1")
	if err := ds.Checkout(ctx, c1, false); err != nil {
		t.Fatal(err)
	}
	if err := ds.AcquireBranchLock(ctx, "x"); err == nil {
		t.Fatal("detached lock should error")
	}
	if err := ds.ReleaseBranchLock(ctx, "x"); err == nil {
		t.Fatal("detached unlock should error")
	}
	if _, held, err := ds.BranchLockHolder(ctx); err != nil || held {
		t.Fatalf("detached holder = %v, %v", held, err)
	}
}
