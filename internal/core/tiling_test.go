package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/chunk"
	"repro/internal/storage"
	"repro/internal/tensor"
)

func TestOversizeSampleIsTiled(t *testing.T) {
	ctx := context.Background()
	ds, _ := newTestDataset(t)
	// Max 256 bytes; a 20x20 int32 sample is 1600 bytes -> tiled.
	tr, err := ds.CreateTensor(ctx, TensorSpec{Name: "big", Dtype: tensor.Int32, Bounds: smallBounds})
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]float64, 400)
	for i := range vals {
		vals[i] = float64(i)
	}
	big, _ := tensor.FromFloat64s(tensor.Int32, []int{20, 20}, vals)
	if err := tr.Append(ctx, big); err != nil {
		t.Fatal(err)
	}
	// A small sample after the big one still works.
	if err := tr.Append(ctx, tensor.Scalar(tensor.Int32, 5)); err != nil {
		t.Fatal(err)
	}

	got, err := tr.At(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(big) {
		t.Fatal("tiled sample did not round trip")
	}
	if v := readInt(t, tr, 1); v != 5 {
		t.Fatalf("sample after tiled = %d", v)
	}
	if tr.tileEnc.Len() != 1 {
		t.Fatalf("tile encoder has %d entries", tr.tileEnc.Len())
	}
}

func TestTiledSliceFetchesOnlyOverlappingTiles(t *testing.T) {
	ctx := context.Background()
	store := storage.NewCounting(storage.NewMemory())
	ds, err := Create(ctx, store, "tiles")
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := ds.CreateTensor(ctx, TensorSpec{Name: "big", Dtype: tensor.Int32, Bounds: smallBounds})
	vals := make([]float64, 1024)
	for i := range vals {
		vals[i] = float64(i % 251)
	}
	big, _ := tensor.FromFloat64s(tensor.Int32, []int{32, 32}, vals)
	if err := tr.Append(ctx, big); err != nil {
		t.Fatal(err)
	}
	entry, ok := tr.tileEnc.Get(0)
	if !ok || len(entry.ChunkIDs) < 4 {
		t.Fatalf("expected a multi-tile layout, got %+v", entry)
	}

	store.Reset()
	region := []tensor.Range{{Start: 0, Stop: 2}, {Start: 0, Stop: 2}}
	part, err := tr.Slice(ctx, 0, region)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := big.Slice(region...)
	if !part.Equal(want) {
		t.Fatal("tiled slice mismatch")
	}
	if gets := store.Snapshot().Gets; gets >= int64(len(entry.ChunkIDs)) {
		t.Fatalf("slice fetched %d chunks of %d; should fetch only overlapping tiles", gets, len(entry.ChunkIDs))
	}
}

func TestTiledSamplePersistsAcrossReopen(t *testing.T) {
	ctx := context.Background()
	store := storage.NewMemory()
	ds, _ := Create(ctx, store, "tiles")
	tr, _ := ds.CreateTensor(ctx, TensorSpec{Name: "big", Dtype: tensor.Int32, Bounds: smallBounds})
	vals := make([]float64, 400)
	for i := range vals {
		vals[i] = float64(i)
	}
	big, _ := tensor.FromFloat64s(tensor.Int32, []int{20, 20}, vals)
	tr.Append(ctx, big)
	if err := ds.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	back, err := Open(ctx, store)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.Tensor("big").At(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(big) {
		t.Fatal("tiled sample lost across reopen")
	}
}

func TestVideoExemptFromTiling(t *testing.T) {
	ctx := context.Background()
	ds, _ := newTestDataset(t)
	vid, err := ds.CreateTensor(ctx, TensorSpec{Name: "clips", Htype: "video", Bounds: smallBounds})
	if err != nil {
		t.Fatal(err)
	}
	// 8 frames of 8x8x3 = 1536 bytes > max 256, but videos stay whole.
	clip := tensor.MustNew(tensor.UInt8, 8, 8, 8, 3)
	for f := 0; f < 8; f++ {
		clip.SetAt(float64(f+1), f, 0, 0, 0)
	}
	if err := vid.Append(ctx, clip); err != nil {
		t.Fatal(err)
	}
	if vid.tileEnc.Len() != 0 {
		t.Fatal("video sample must not be tiled (§3.4)")
	}
	got, err := vid.At(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(clip) {
		t.Fatal("video round trip failed")
	}
}

func TestVideoFrameRangeRead(t *testing.T) {
	// Reading frames [2,4) of a stored video must use a byte-range
	// request, not a full chunk fetch (§3.4: range-based requests while
	// streaming video).
	ctx := context.Background()
	inner := storage.NewMemory()
	count := storage.NewCounting(inner)
	ds, err := Create(ctx, count, "video")
	if err != nil {
		t.Fatal(err)
	}
	vid, _ := ds.CreateTensor(ctx, TensorSpec{Name: "clips", Htype: "video", Bounds: smallBounds})
	clip := tensor.MustNew(tensor.UInt8, 8, 4, 4, 3)
	for f := 0; f < 8; f++ {
		clip.SetAt(float64(10+f), f, 1, 1, 1)
	}
	if err := vid.Append(ctx, clip); err != nil {
		t.Fatal(err)
	}
	if err := ds.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	count.Reset()
	frames, err := vid.Slice(ctx, 0, []tensor.Range{{Start: 2, Stop: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(frames.Shape(), []int{2, 4, 4, 3}) {
		t.Fatalf("frame slice shape = %v", frames.Shape())
	}
	want, _ := clip.Slice(tensor.Range{Start: 2, Stop: 4})
	if !frames.Equal(want) {
		t.Fatal("frame data mismatch")
	}
	if snap := count.Snapshot(); snap.Gets != 0 {
		t.Fatalf("frame read did %d full Gets; want range requests only", snap.Gets)
	} else if snap.RangeGets == 0 {
		t.Fatal("frame read made no range requests")
	}
}

func TestRangeReadBytesAreProportional(t *testing.T) {
	ctx := context.Background()
	inner := storage.NewMemory()
	count := storage.NewCounting(inner)
	ds, _ := Create(ctx, count, "ranges")
	tr, _ := ds.CreateTensor(ctx, TensorSpec{Name: "x", Dtype: tensor.UInt8, Bounds: chunk.Bounds{Min: 1 << 20, Target: 2 << 20, Max: 4 << 20}})
	// One 100KB sample.
	big := tensor.MustNew(tensor.UInt8, 1000, 100)
	tr.Append(ctx, big)
	ds.Flush(ctx)

	count.Reset()
	if _, err := tr.Slice(ctx, 0, []tensor.Range{{Start: 0, Stop: 10}}); err != nil {
		t.Fatal(err)
	}
	// 10 rows x 100 bytes = 1KB payload; directory overhead allowed, but
	// nowhere near the 100KB full sample.
	if br := count.Snapshot().BytesRead; br > 20_000 {
		t.Fatalf("range read transferred %d bytes for a 1KB slice", br)
	}
}

func TestRechunkAfterSparseWrites(t *testing.T) {
	ctx := context.Background()
	ds, _ := newTestDataset(t)
	tr, _ := ds.CreateTensor(ctx, TensorSpec{Name: "x", Dtype: tensor.Int32, Bounds: smallBounds})
	// Sparse assignment creates a degenerate layout.
	for _, idx := range []uint64{50, 10, 30} {
		if err := tr.SetAt(ctx, idx, tensor.Scalar(tensor.Int32, float64(idx))); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 51 {
		t.Fatalf("len = %d", tr.Len())
	}
	before := map[uint64]int{}
	for i := uint64(0); i < tr.Len(); i++ {
		arr, err := tr.At(ctx, i)
		if err != nil {
			t.Fatal(err)
		}
		before[i] = arr.Len()
	}

	if err := tr.Rechunk(ctx); err != nil {
		t.Fatal(err)
	}
	// Content identical after re-chunking.
	for i := uint64(0); i < tr.Len(); i++ {
		arr, err := tr.At(ctx, i)
		if err != nil {
			t.Fatalf("post-rechunk At(%d): %v", i, err)
		}
		if arr.Len() != before[i] {
			t.Fatalf("sample %d changed size after rechunk", i)
		}
	}
	for _, idx := range []uint64{50, 10, 30} {
		if got := readInt(t, tr, idx); got != int(idx) {
			t.Fatalf("x[%d] = %d after rechunk", idx, got)
		}
	}
	if err := ds.Flush(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestRechunkPreservesTiledSamples(t *testing.T) {
	ctx := context.Background()
	ds, _ := newTestDataset(t)
	tr, _ := ds.CreateTensor(ctx, TensorSpec{Name: "x", Dtype: tensor.Int32, Bounds: smallBounds})
	appendInts(t, tr, 1, 2)
	vals := make([]float64, 400)
	for i := range vals {
		vals[i] = float64(i)
	}
	big, _ := tensor.FromFloat64s(tensor.Int32, []int{20, 20}, vals)
	tr.Append(ctx, big)
	appendInts(t, tr, 3)

	if err := tr.Rechunk(ctx); err != nil {
		t.Fatal(err)
	}
	got, err := tr.At(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(big) {
		t.Fatal("tiled sample corrupted by rechunk")
	}
	if v := readInt(t, tr, 3); v != 3 {
		t.Fatalf("x[3] = %d", v)
	}
}

func TestStorageFailurePropagates(t *testing.T) {
	ctx := context.Background()
	boom := errors.New("injected failure")
	inner := storage.NewMemory()
	ds, err := Create(ctx, inner, "flaky")
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := ds.CreateTensor(ctx, TensorSpec{Name: "x", Dtype: tensor.Int32, Bounds: smallBounds})
	appendInts(t, tr, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16,
		17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32)
	if err := ds.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	// Swap in a provider that fails every read.
	ds.store = storage.NewFlaky(inner, 1, boom)
	tr.ds = ds
	// The pending buffer is empty post-flush; reads must hit storage and
	// surface the injected error.
	if _, err := tr.At(ctx, 0); !errors.Is(err, boom) {
		t.Fatalf("expected injected error, got %v", err)
	}
}

func TestContextCancellationPropagates(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ds, _ := newTestDataset(t)
	tr, _ := ds.CreateTensor(ctx, TensorSpec{Name: "x", Dtype: tensor.Int32, Bounds: smallBounds})
	appendInts(t, tr, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16,
		17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32)
	ds.Flush(ctx)
	cancel()
	if _, err := tr.At(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
}
