package core

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/storage"
)

// WriteOptions configures the dataset's parallel ingestion engine: sealed
// chunks leave the per-tensor builders through a background flush pipeline
// that uploads to the storage provider with bounded concurrency, so appends
// never stall on object-store Put latency.
//
// The zero value keeps the fully synchronous write path: every sealed chunk
// is uploaded inline before the append returns, exactly as the serial
// format reference behaves. Any FlushWorkers > 0 switches to pipelined
// uploads; Flush and Commit drain the pipeline before persisting metadata,
// so the stored objects (chunks, chunk sets, diffs, encoders, meta) are
// byte-identical to the serial path at every worker count — only the upload
// order differs.
type WriteOptions struct {
	// FlushWorkers is the number of concurrent chunk uploads. 0 keeps the
	// synchronous serial path; 1 pipelines uploads behind a single worker.
	FlushWorkers int
	// MaxPending bounds how many sealed chunks may sit in the pipeline
	// (queued or uploading) before appends block for backpressure. 0
	// defaults to 2*FlushWorkers. Note that chunks parked by a FAILED
	// upload (kept in memory, readable, retried by the next Flush) are
	// outside this bound: appends surface a DeferredFlushError while the
	// provider is failing, and callers that keep appending anyway
	// accumulate one parked blob per sealed chunk until a Flush redrives
	// them — stop ingesting when appends report flush failures.
	MaxPending int
	// UploadTimeout bounds each background Put. 0 means no deadline; set
	// it when the provider has no internal timeout, so a hung upload
	// fails (and parks its chunk for retry) instead of pinning a worker
	// lane and a pending slot forever.
	UploadTimeout time.Duration
	// FlushRetries enables automatic recovery: after a retryable upload
	// failure (storage.IsRetryable, or the pipeline's own UploadTimeout
	// firing) the pipeline redrives every parked blob by itself under
	// capped exponential backoff, up to FlushRetries redrive bursts per
	// failure streak, instead of waiting for the next manual Flush. A
	// successful full drain resets the streak. 0 keeps the manual-only
	// behavior.
	FlushRetries int
	// FlushBackoff shapes the automatic redrive schedule. The zero value
	// uses the storage.Backoff defaults (10ms base, 1s cap).
	FlushBackoff storage.Backoff
	// AutotuneChunkBytes enables ingest-time chunk-size autotuning with the
	// given target ceiling in bytes: each tensor's builder grows its
	// effective target from the configured Bounds.Target toward this cap
	// (doubling per sealed chunk, floored at the mean observed sample size
	// times a small factor), converging into the paper's 8–16MB band without
	// per-dataset tuning. The schedule depends only on each tensor's append
	// sequence — appends are serialized per tensor regardless of
	// FlushWorkers — so the stored chunks are byte-identical at any worker
	// count. 0 disables autotuning and keeps the static bounds (the default,
	// so existing golden layouts are unaffected).
	AutotuneChunkBytes int64
}

// DeferredFlushError wraps a storage error from the background flush
// pipeline: the sealed bytes it covers are parked in the pipeline's
// pending map — still readable, and retried by the next Flush — so the
// append that surfaced it HAS been recorded in the working state. Callers
// should treat it as "uploads are currently failing", not "this sample was
// rejected". Unwrap exposes the cause (e.g. context.Canceled).
type DeferredFlushError struct{ Cause error }

func (e *DeferredFlushError) Error() string {
	return "core: background chunk flush failing (data parked for retry): " + e.Cause.Error()
}

// Unwrap lets errors.Is/As see through to the cause.
func (e *DeferredFlushError) Unwrap() error { return e.Cause }

// isDeferredFlush reports whether err (anywhere in its chain) is a parked,
// redrivable flush failure rather than a structural append failure.
func isDeferredFlush(err error) bool {
	var dfe *DeferredFlushError
	return errors.As(err, &dfe)
}

// deferredCollector centralizes the write path's error policy: deferred
// flush failures are collected (the operation keeps going, state stays
// consistent) while structural errors abort. note returns the error only
// when it must abort; err surfaces the first deferred failure afterwards.
type deferredCollector struct{ first error }

func (c *deferredCollector) note(err error) error {
	if err == nil || isDeferredFlush(err) {
		if c.first == nil {
			c.first = err
		}
		return nil
	}
	return err
}

func (c *deferredCollector) err() error { return c.first }

func (o WriteOptions) withDefaults() WriteOptions {
	if o.FlushWorkers > 0 && o.MaxPending <= 0 {
		o.MaxPending = 2 * o.FlushWorkers
	}
	if o.MaxPending < o.FlushWorkers {
		o.MaxPending = o.FlushWorkers
	}
	return o
}

// flushPipeline is the background chunk uploader. Sealed blobs enter
// through enqueue (blocking once MaxPending uploads are in flight —
// backpressure on the appenders) and are uploaded by at most FlushWorkers
// concurrent Puts.
//
// The pending map is the source of truth for every blob that is not yet
// durable: readers consult it before the provider, so same-process reads
// never race an upload, and a blob is only removed once its Put succeeded.
// A failed or aborted upload parks the entry (uploader=false) instead of
// dropping it — the data stays readable, and the next flush attempt
// redrives parked entries, which makes transient upload errors recoverable
// by simply calling Flush again. With FlushRetries > 0 the pipeline also
// redrives parked entries by itself under capped exponential backoff after
// a retryable failure, so recovery does not wait for a manual Flush; the
// sticky error clears once every pending blob has drained, so a recovered
// dataset never reports a stale failure. Re-enqueueing a key still in
// flight (copy-on-write SetAt rewrites a chunk under its existing id) hands
// the newer bytes to the existing uploader via a generation counter instead
// of racing a second Put on the same object.
//
// Uploads run on the pipeline's own background context, not the enqueuing
// caller's: once an append has been acknowledged, cancelling that caller's
// context must not retroactively fail the upload. Cancellation is honored
// where the caller is actually waiting — the enqueue backpressure wait and
// the drain barrier both select on the caller's context.
type flushPipeline struct {
	store storage.Provider
	// putTimeout bounds each Put (0 = none); see WriteOptions.UploadTimeout.
	putTimeout time.Duration

	// slots bounds total in-flight uploads; workers bounds concurrent Puts.
	slots   chan struct{}
	workers chan struct{}

	// autoRetries/backoff configure automatic redrive of parked uploads
	// (WriteOptions.FlushRetries/FlushBackoff); 0 disables it.
	autoRetries int
	backoff     storage.Backoff

	mu       sync.Mutex
	firstErr error
	pending  map[string]*pendingChunk
	// retryAttempt counts automatic redrive bursts in the current failure
	// streak; retryStop is non-nil while a backoff timer is pending and is
	// closed by a manual redrive that takes over recovery.
	retryAttempt int
	retryStop    chan struct{}
	// active counts uploader goroutines; idle is closed when active drops
	// to zero (and replaced when it rises again), so drain can select on
	// quiescence against its caller's context without a dangling waiter —
	// an abandoned drain leaves nothing behind that a later begin() could
	// race (the sync.WaitGroup Add-during-Wait hazard).
	active int
	idle   chan struct{}
}

type pendingChunk struct {
	blob []byte
	gen  uint64
	// uploader marks an uploader goroutine responsible for this entry;
	// false means the entry is parked (failed or aborted) awaiting redrive.
	uploader bool
}

func newFlushPipeline(store storage.Provider, opts WriteOptions) *flushPipeline {
	opts = opts.withDefaults()
	idle := make(chan struct{})
	close(idle)
	return &flushPipeline{
		store:       store,
		putTimeout:  opts.UploadTimeout,
		autoRetries: opts.FlushRetries,
		backoff:     opts.FlushBackoff,
		slots:       make(chan struct{}, opts.MaxPending),
		workers:     make(chan struct{}, opts.FlushWorkers),
		pending:     map[string]*pendingChunk{},
		idle:        idle,
	}
}

// begin registers one uploader goroutine. Caller must hold p.mu NOT held.
func (p *flushPipeline) begin() {
	p.mu.Lock()
	if p.active == 0 {
		p.idle = make(chan struct{})
	}
	p.active++
	p.mu.Unlock()
}

// end retires one uploader goroutine, signaling quiescence at zero.
func (p *flushPipeline) end() {
	p.mu.Lock()
	p.active--
	if p.active == 0 {
		close(p.idle)
	}
	p.mu.Unlock()
}

// Err returns the sticky first upload error (cleared by redrive).
func (p *flushPipeline) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.firstErr
}

// lookup returns the not-yet-durable blob stored under key, if any.
func (p *flushPipeline) lookup(key string) ([]byte, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if pc, ok := p.pending[key]; ok {
		return pc.blob, true
	}
	return nil, false
}

// enqueue hands one sealed blob to the pipeline. The blob is recorded in
// the pending map unconditionally — even when enqueue returns an error, the
// bytes stay readable and redrivable — so callers may treat the chunk as
// part of the dataset state regardless. An error reports that uploads are
// not currently progressing (sticky failure, or ctx cancelled during the
// backpressure wait).
func (p *flushPipeline) enqueue(ctx context.Context, key string, blob []byte) error {
	p.mu.Lock()
	pc, ok := p.pending[key]
	if ok {
		pc.blob = blob
		pc.gen++
	} else {
		pc = &pendingChunk{blob: blob, gen: 1}
		p.pending[key] = pc
	}
	if err := p.firstErr; err != nil {
		// Writes are failing; park the entry and fail fast.
		p.mu.Unlock()
		return err
	}
	if pc.uploader {
		// The existing uploader will observe the new generation.
		p.mu.Unlock()
		return nil
	}
	pc.uploader = true
	p.mu.Unlock()

	select {
	case p.slots <- struct{}{}:
	case <-ctx.Done():
		p.park(key)
		return ctx.Err()
	}
	p.begin()
	go p.upload(key)
	return nil
}

// park marks key's entry as having no uploader; redrive picks it up.
func (p *flushPipeline) park(key string) {
	p.mu.Lock()
	if pc, ok := p.pending[key]; ok {
		pc.uploader = false
	}
	p.mu.Unlock()
}

// upload runs in its own goroutine holding one slot: acquire a worker
// lane, Put the latest generation of the key, release. If a re-enqueue
// replaced the blob while the Put was on the wire, Put again until the
// written generation is the newest, so the store converges to the final
// bytes. A failed Put parks the entry and records the sticky error.
func (p *flushPipeline) upload(key string) {
	defer p.end()
	defer func() { <-p.slots }()
	p.workers <- struct{}{}
	defer func() { <-p.workers }()
	for {
		p.mu.Lock()
		pc := p.pending[key]
		if pc == nil || !pc.uploader {
			p.mu.Unlock()
			return
		}
		blob, gen := pc.blob, pc.gen
		p.mu.Unlock()
		// Pipeline-owned context: the enqueuing caller's cancellation must
		// not retroactively fail an acknowledged write. UploadTimeout (when
		// set) keeps a black-holed Put from pinning this lane forever.
		putCtx, cancel := context.Background(), func() {}
		if p.putTimeout > 0 {
			putCtx, cancel = context.WithTimeout(putCtx, p.putTimeout)
		}
		err := p.store.Put(putCtx, key, blob)
		cancel()
		if err != nil {
			p.failAndPark(key, err)
			return
		}
		p.mu.Lock()
		if cur, ok := p.pending[key]; ok && cur == pc && cur.gen == gen {
			delete(p.pending, key)
			if len(p.pending) == 0 {
				// Every blob is durable. A sticky error left over from a
				// failure that has since been redriven successfully would
				// misreport this recovered dataset on the next
				// Flush/Commit, so clear it — and reset the automatic
				// redrive streak, since the pipeline is healthy again.
				p.firstErr = nil
				p.retryAttempt = 0
			}
			p.mu.Unlock()
			return
		}
		p.mu.Unlock()
	}
}

// retryableUpload classifies a background Put failure for automatic
// redrive: explicitly transient storage errors, plus the pipeline's own
// UploadTimeout firing (uploads run on a background context, so a deadline
// error here is never the appending caller giving up).
func retryableUpload(err error) bool {
	return storage.IsRetryable(err) || errors.Is(err, context.DeadlineExceeded)
}

// failAndPark atomically parks key's entry and records the sticky error —
// one critical section, so a concurrent redrive can never observe the park
// without the error (recover the blob, then be re-failed by a stale write).
// If automatic redrive is enabled and the failure is retryable, it also
// schedules a backoff-delayed redrive of everything parked.
func (p *flushPipeline) failAndPark(key string, err error) {
	p.mu.Lock()
	if pc, ok := p.pending[key]; ok {
		pc.uploader = false
	}
	if p.firstErr == nil {
		p.firstErr = err
	}
	schedule := p.autoRetries > 0 && p.retryStop == nil &&
		p.retryAttempt < p.autoRetries && retryableUpload(err)
	var (
		stop  chan struct{}
		delay time.Duration
	)
	if schedule {
		p.retryAttempt++
		delay = p.backoff.Delay(p.retryAttempt)
		stop = make(chan struct{})
		p.retryStop = stop
	}
	p.mu.Unlock()
	if schedule {
		// The redrive timer registers as an active uploader so drain (the
		// Flush/Commit barrier) waits for the recovery attempt instead of
		// reporting a failure that is about to be retried.
		p.begin()
		go p.autoRedrive(stop, delay)
	}
}

// autoRedrive waits out the backoff, then restarts an uploader for every
// parked entry — the automatic counterpart of a manual Flush's redrive. A
// manual redrive that arrives first closes stop and takes over; the timer
// then exits without touching anything.
func (p *flushPipeline) autoRedrive(stop chan struct{}, delay time.Duration) {
	defer p.end()
	t := time.NewTimer(delay)
	defer t.Stop()
	select {
	case <-t.C:
	case <-stop:
		return
	}
	p.mu.Lock()
	if p.retryStop == stop {
		p.retryStop = nil
	}
	var parked []string
	for key, pc := range p.pending {
		if !pc.uploader {
			pc.uploader = true
			parked = append(parked, key)
		}
	}
	p.mu.Unlock()
	for _, key := range parked {
		// Block for a slot unconditionally: slots are only held by upload
		// goroutines, which always release, so this cannot deadlock — and
		// bailing out here would strand entries marked uploader=true with
		// no uploader.
		p.slots <- struct{}{}
		p.begin()
		go p.upload(key)
	}
}

// redrive clears the sticky error and restarts an uploader for every
// parked entry, making a new flush attempt after a transient failure (or a
// cancelled ingest) retry everything that never landed. It also cancels any
// pending automatic redrive timer and resets the failure streak — the
// manual flush takes over recovery. Caller holds the dataset structure lock
// exclusively.
func (p *flushPipeline) redrive(ctx context.Context) error {
	p.mu.Lock()
	p.firstErr = nil
	p.retryAttempt = 0
	if p.retryStop != nil {
		close(p.retryStop)
		p.retryStop = nil
	}
	var parked []string
	for key, pc := range p.pending {
		if !pc.uploader {
			pc.uploader = true
			parked = append(parked, key)
		}
	}
	p.mu.Unlock()
	for i, key := range parked {
		select {
		case p.slots <- struct{}{}:
		case <-ctx.Done():
			for _, k := range parked[i:] {
				p.park(k)
			}
			return ctx.Err()
		}
		p.begin()
		go p.upload(key)
	}
	return nil
}

// drain is the flush/commit barrier: it waits until every active uploader
// finished (honoring ctx — uploads keep running in the background if the
// caller gives up, and an abandoned drain leaves no dangling waiter) and
// returns the sticky error, if any. Caller holds the dataset structure
// lock exclusively, which guarantees no concurrent enqueue races the wait.
func (p *flushPipeline) drain(ctx context.Context) error {
	for {
		p.mu.Lock()
		idle := p.idle
		quiescent := p.active == 0
		p.mu.Unlock()
		if quiescent {
			return p.Err()
		}
		select {
		case <-idle:
			// Loop: the caller holds the structure lock exclusively so no
			// new enqueue can start uploads, but re-check rather than
			// assume.
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// SetWriteOptions reconfigures the dataset's write path. FlushWorkers > 0
// installs the background flush pipeline; the zero value restores the
// synchronous serial path. Reconfiguring first redrives and drains any
// previous pipeline so no queued upload outlives its configuration; on
// error the previous configuration stays in place (with its pending data
// intact) and the call can be retried. The drain waits without a deadline
// — if the provider can hang, set WriteOptions.UploadTimeout when first
// configuring the pipeline so a black-holed Put fails instead of blocking
// this call.
func (ds *Dataset) SetWriteOptions(opts WriteOptions) error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.flusher != nil {
		ctx := context.Background()
		if err := ds.flusher.redrive(ctx); err != nil {
			return err
		}
		if err := ds.flusher.drain(ctx); err != nil {
			return err
		}
	}
	ds.writeOpts = opts
	ds.writeOptsSet = true
	if opts.FlushWorkers > 0 {
		ds.flusher = newFlushPipeline(ds.store, opts)
	} else {
		ds.flusher = nil
	}
	// Propagate the autotune cap to every existing builder; tensors created
	// later pick it up from ds.writeOpts in newTensor/loadTensor.
	for _, name := range ds.order {
		t := ds.tensors[name]
		t.mu.Lock()
		t.builder.SetAutotune(int(opts.AutotuneChunkBytes))
		t.mu.Unlock()
	}
	return nil
}

// WriteOptions returns the currently configured write options.
func (ds *Dataset) WriteOptions() WriteOptions {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	return ds.writeOpts
}

// WriteOptionsConfigured reports whether SetWriteOptions has been called on
// this handle — it distinguishes an explicitly-serial dataset (zero options
// set on purpose) from one that was never configured, so layers that
// install a default pipeline (transform.Pipeline.Eval) don't override a
// deliberate choice.
func (ds *Dataset) WriteOptionsConfigured() bool {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	return ds.writeOptsSet
}
