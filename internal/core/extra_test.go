package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/tensor"
)

func TestDatasetAccessors(t *testing.T) {
	ctx := context.Background()
	ds, store := newTestDataset(t)
	if ds.Version() == "" {
		t.Fatal("empty version id")
	}
	if ds.Store() != store {
		t.Fatal("Store accessor mismatch")
	}
	a, _ := ds.CreateTensor(ctx, TensorSpec{Name: "a", Dtype: tensor.Int32, Bounds: smallBounds})
	b, _ := ds.CreateTensor(ctx, TensorSpec{Name: "b", Dtype: tensor.Int32, Bounds: smallBounds})
	appendInts(t, a, 1, 2, 3)
	appendInts(t, b, 1)
	if ds.NumRows() != 1 {
		t.Fatalf("NumRows = %d (min across tensors)", ds.NumRows())
	}
	if ds.MaxLength() != 3 {
		t.Fatalf("MaxLength = %d", ds.MaxLength())
	}
	if a.Name() != "a" {
		t.Fatalf("Name = %q", a.Name())
	}
	if a.Htype().Base.Name != "generic" {
		t.Fatalf("Htype = %v", a.Htype())
	}
	if got := ds.Branches(); !reflect.DeepEqual(got, []string{"main"}) {
		t.Fatalf("Branches = %v", got)
	}
}

func TestAppendBatch(t *testing.T) {
	ctx := context.Background()
	ds, _ := newTestDataset(t)
	x, _ := ds.CreateTensor(ctx, TensorSpec{Name: "x", Dtype: tensor.Int32, Bounds: smallBounds})
	batch, _ := tensor.FromFloat64s(tensor.Int32, []int{4, 2}, []float64{1, 2, 3, 4, 5, 6, 7, 8})
	if err := x.AppendBatch(ctx, batch); err != nil {
		t.Fatal(err)
	}
	if x.Len() != 4 {
		t.Fatalf("len = %d", x.Len())
	}
	arr, _ := x.At(ctx, 2)
	if !reflect.DeepEqual(arr.Float64s(), []float64{5, 6}) {
		t.Fatalf("x[2] = %v", arr.Float64s())
	}
	if err := x.AppendBatch(ctx, tensor.Scalar(tensor.Int32, 1)); err == nil {
		t.Fatal("0-d batch should error")
	}
}

func TestPadToPublic(t *testing.T) {
	ctx := context.Background()
	ds, _ := newTestDataset(t)
	x, _ := ds.CreateTensor(ctx, TensorSpec{Name: "x", Dtype: tensor.Int32, Bounds: smallBounds})
	if err := x.PadTo(ctx, 5); err != nil {
		t.Fatal(err)
	}
	if x.Len() != 5 {
		t.Fatalf("len = %d", x.Len())
	}
	// Idempotent for smaller n.
	if err := x.PadTo(ctx, 3); err != nil {
		t.Fatal(err)
	}
	if x.Len() != 5 {
		t.Fatalf("len shrank to %d", x.Len())
	}
}

func TestReplaceTiledSample(t *testing.T) {
	ctx := context.Background()
	ds, _ := newTestDataset(t)
	tr, _ := ds.CreateTensor(ctx, TensorSpec{Name: "big", Dtype: tensor.Int32, Bounds: smallBounds})
	mk := func(fill float64) *tensor.NDArray {
		vals := make([]float64, 400)
		for i := range vals {
			vals[i] = fill
		}
		a, _ := tensor.FromFloat64s(tensor.Int32, []int{20, 20}, vals)
		return a
	}
	if err := tr.Append(ctx, mk(1)); err != nil {
		t.Fatal(err)
	}
	if tr.tileEnc.Len() != 1 {
		t.Fatal("sample not tiled")
	}
	// In-place replace of a tiled sample re-tiles it.
	if err := tr.SetAt(ctx, 0, mk(9)); err != nil {
		t.Fatal(err)
	}
	got, err := tr.At(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.At(10, 10); v != 9 {
		t.Fatalf("replaced tiled sample value = %v", v)
	}
	if !reflect.DeepEqual(got.Shape(), []int{20, 20}) {
		t.Fatalf("shape = %v", got.Shape())
	}
}

func TestSliceErrorsAndEdges(t *testing.T) {
	ctx := context.Background()
	ds, _ := newTestDataset(t)
	seq, _ := ds.CreateTensor(ctx, TensorSpec{Name: "s", Htype: "sequence[generic]", Dtype: tensor.Int32, Bounds: smallBounds})
	seq.AppendSequence(ctx, []*tensor.NDArray{tensor.Scalar(tensor.Int32, 1)})
	if _, err := seq.Slice(ctx, 0, nil); err == nil {
		t.Fatal("Slice on sequence tensor should error")
	}

	x, _ := ds.CreateTensor(ctx, TensorSpec{Name: "x", Dtype: tensor.Int32, Bounds: smallBounds})
	arr, _ := tensor.FromFloat64s(tensor.Int32, []int{4, 4}, make([]float64, 16))
	x.Append(ctx, arr)
	ds.Flush(ctx)
	// Multi-axis slice on a flushed raw sample (slow path).
	got, err := x.Slice(ctx, 0, []tensor.Range{{Start: 1, Stop: 3}, {Start: 0, Stop: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Shape(), []int{2, 2}) {
		t.Fatalf("slice shape = %v", got.Shape())
	}
	// Invalid ranges propagate.
	if _, err := x.Slice(ctx, 0, []tensor.Range{{Start: 5, Stop: 2}}); err == nil {
		t.Fatal("invalid range should error")
	}
	// Out-of-bounds sample.
	if _, err := x.Slice(ctx, 99, nil); err == nil {
		t.Fatal("missing sample should error")
	}
}

func TestLZ4ChunkCompressedTensorRoundTrip(t *testing.T) {
	// Chunk compression path end to end: write, flush, reopen, read.
	ctx := context.Background()
	ds, store := newTestDataset(t)
	m, err := ds.CreateTensor(ctx, TensorSpec{
		Name: "mask", Htype: "binary_mask", Dtype: tensor.UInt8, Bounds: smallBounds,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Meta().ChunkCompression != "lz4" {
		t.Fatalf("chunk compression = %q", m.Meta().ChunkCompression)
	}
	for i := 0; i < 40; i++ {
		mask := tensor.MustNew(tensor.UInt8, 8, 8)
		for k := 0; k < i%64; k++ {
			mask.Bytes()[k] = 1
		}
		if err := m.Append(ctx, mask); err != nil {
			t.Fatal(err)
		}
	}
	if err := ds.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	back, err := Open(ctx, store)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.Tensor("mask").At(ctx, 10)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.At(0, 5); v != 1 {
		t.Fatalf("mask[10][0,5] = %v", v)
	}
	if v, _ := got.At(7, 7); v != 0 {
		t.Fatalf("mask[10][7,7] = %v", v)
	}
}

func TestMergeCreatesTensorFromBranch(t *testing.T) {
	ctx := context.Background()
	ds, _ := newTestDataset(t)
	a, _ := ds.CreateTensor(ctx, TensorSpec{Name: "a", Dtype: tensor.Int32, Bounds: smallBounds})
	appendInts(t, a, 1)
	ds.Commit(ctx, "base")

	ds.Checkout(ctx, "feature", true)
	nb, err := ds.CreateTensor(ctx, TensorSpec{Name: "extra", Dtype: tensor.Int32, Bounds: smallBounds})
	if err != nil {
		t.Fatal(err)
	}
	appendInts(t, nb, 7, 8)
	ds.Commit(ctx, "adds extra tensor")

	ds.Checkout(ctx, "main", false)
	if ds.Tensor("extra") != nil {
		t.Fatal("extra should not exist on main yet")
	}
	if err := ds.Merge(ctx, "feature", MergeTheirs); err != nil {
		t.Fatal(err)
	}
	ex := ds.Tensor("extra")
	if ex == nil || ex.Len() != 2 {
		t.Fatalf("merged tensor = %v", ex)
	}
	if got := readInt(t, ex, 1); got != 8 {
		t.Fatalf("extra[1] = %d", got)
	}
}

func TestReadAtVersionOfBranchHead(t *testing.T) {
	ctx := context.Background()
	ds, _ := newTestDataset(t)
	x, _ := ds.CreateTensor(ctx, TensorSpec{Name: "x", Dtype: tensor.Int32, Bounds: smallBounds})
	appendInts(t, x, 1, 2)
	ds.Flush(ctx)
	// Reading "main" (a branch ref) through ReadAtVersion yields a
	// detached twin at the mutable head.
	twin, err := ds.ReadAtVersion(ctx, "main")
	if err != nil {
		t.Fatal(err)
	}
	if twin.Branch() != "" || twin.Tensor("x").Len() != 2 {
		t.Fatalf("twin = branch %q len %d", twin.Branch(), twin.Tensor("x").Len())
	}
	if _, err := ds.ReadAtVersion(ctx, "ghost"); err == nil {
		t.Fatal("unknown ref should error")
	}
}

func TestCheckoutErrors(t *testing.T) {
	ctx := context.Background()
	ds, _ := newTestDataset(t)
	if err := ds.Checkout(ctx, "ghost", false); err == nil {
		t.Fatal("unknown ref should error")
	}
	// Checking out another branch's mutable head by id is rejected.
	x, _ := ds.CreateTensor(ctx, TensorSpec{Name: "x", Dtype: tensor.Int32, Bounds: smallBounds})
	appendInts(t, x, 1)
	ds.Commit(ctx, "c")
	head := ds.Version()
	ds.Checkout(ctx, "other", true)
	if err := ds.Checkout(ctx, head, false); err == nil {
		t.Fatal("checking out a mutable head id should error")
	}
}

func TestGenericDtypeMismatchRejected(t *testing.T) {
	ctx := context.Background()
	ds, _ := newTestDataset(t)
	x, _ := ds.CreateTensor(ctx, TensorSpec{Name: "x", Dtype: tensor.Int32, Bounds: smallBounds})
	if err := x.Append(ctx, tensor.Scalar(tensor.Float64, 1)); err == nil {
		t.Fatal("dtype mismatch on generic tensor should error")
	}
}

func TestSampleCompressionRankValidation(t *testing.T) {
	ctx := context.Background()
	ds, _ := newTestDataset(t)
	img, _ := ds.CreateTensor(ctx, TensorSpec{Name: "img", Htype: "image"})
	// 1-d input cannot be media-encoded; htype check rejects first.
	if err := img.Append(ctx, tensor.MustNew(tensor.UInt8, 5)); err == nil {
		t.Fatal("1-d image should be rejected")
	}
}

func TestDeleteTensor(t *testing.T) {
	ctx := context.Background()
	ds, store := newTestDataset(t)
	a, _ := ds.CreateTensor(ctx, TensorSpec{Name: "a", Dtype: tensor.Int32, Bounds: smallBounds})
	b, _ := ds.CreateTensor(ctx, TensorSpec{Name: "b", Dtype: tensor.Int32, Bounds: smallBounds})
	appendInts(t, a, 1, 2)
	appendInts(t, b, 3)
	c1, err := ds.Commit(ctx, "both tensors")
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.DeleteTensor(ctx, "b"); err != nil {
		t.Fatal(err)
	}
	if ds.Tensor("b") != nil {
		t.Fatal("b still open after delete")
	}
	if got := ds.Tensors(); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("tensors = %v", got)
	}
	if err := ds.DeleteTensor(ctx, "b"); err == nil {
		t.Fatal("double delete should error")
	}
	// Reopen sees the deletion.
	if err := ds.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	back, err := Open(ctx, store)
	if err != nil {
		t.Fatal(err)
	}
	if back.Tensor("b") != nil {
		t.Fatal("b resurrected after reopen")
	}
	// The committed snapshot still has it (schema evolution).
	old, err := back.ReadAtVersion(ctx, c1)
	if err != nil {
		t.Fatal(err)
	}
	if old.Tensor("b") == nil {
		t.Fatal("b missing from committed snapshot")
	}
	if got := readInt(t, old.Tensor("b"), 0); got != 3 {
		t.Fatalf("historical b[0] = %d", got)
	}
}

func TestAudioAndSegmentMaskHtypes(t *testing.T) {
	ctx := context.Background()
	ds, _ := newTestDataset(t)
	audio, err := ds.CreateTensor(ctx, TensorSpec{Name: "waveform", Htype: "audio", Bounds: smallBounds})
	if err != nil {
		t.Fatal(err)
	}
	clip := tensor.MustNew(tensor.Float32, 32, 2) // stereo samples
	clip.SetAt(0.5, 10, 1)
	if err := audio.Append(ctx, clip); err != nil {
		t.Fatal(err)
	}
	got, err := audio.At(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.At(10, 1); v != 0.5 {
		t.Fatalf("waveform[10,1] = %v", v)
	}
	// 3-d audio rejected.
	if err := audio.Append(ctx, tensor.MustNew(tensor.Float32, 2, 2, 2)); err == nil {
		t.Fatal("3-d audio should be rejected")
	}

	seg, err := ds.CreateTensor(ctx, TensorSpec{Name: "segmap", Htype: "segment_mask", Bounds: smallBounds})
	if err != nil {
		t.Fatal(err)
	}
	m := tensor.MustNew(tensor.Int32, 8, 8)
	m.SetAt(7, 3, 3)
	if err := seg.Append(ctx, m); err != nil {
		t.Fatal(err)
	}
	if seg.Meta().ChunkCompression != "lz4" {
		t.Fatalf("segment_mask chunk compression = %q", seg.Meta().ChunkCompression)
	}
	back, err := seg.At(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := back.At(3, 3); v != 7 {
		t.Fatalf("segmap[3,3] = %v", v)
	}
}

func TestEmbeddingHtypeRoundTrip(t *testing.T) {
	ctx := context.Background()
	ds, _ := newTestDataset(t)
	emb, err := ds.CreateTensor(ctx, TensorSpec{Name: "vec", Htype: "embedding", Bounds: smallBounds})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := tensor.FromFloat64s(tensor.Float32, []int{4}, []float64{0.1, 0.2, 0.3, 0.4})
	if err := emb.Append(ctx, v); err != nil {
		t.Fatal(err)
	}
	got, err := emb.At(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dtype() != tensor.Float32 || got.Len() != 4 {
		t.Fatalf("embedding = %v", got)
	}
	// Rank-2 embeddings rejected.
	if err := emb.Append(ctx, tensor.MustNew(tensor.Float32, 2, 2)); err == nil {
		t.Fatal("2-d embedding should be rejected")
	}
}
