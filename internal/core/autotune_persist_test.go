package core

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"repro/internal/storage"
	"repro/internal/tensor"
)

// Autotune persistence suite: the chunk-size autotuner's schedule position
// rides TensorMeta (and the root snapshots dataset.json points at), so a
// writer that flushes, closes, and reopens a dataset resumes the exact
// per-tensor chunk-size trajectory and stores bytes identical to a writer
// that never went away.

// appendMixedSizes appends rows [lo, hi) of deterministically varying byte
// widths — small labels punctuated by fat media-sized rows — the mixed-size
// workload the shrink-on-regret schedule exists for.
func appendMixedSizes(t *testing.T, x *Tensor, lo, hi int) {
	t.Helper()
	ctx := context.Background()
	sizes := []int{16, 48, 700, 32, 24, 64, 900, 40}
	for i := lo; i < hi; i++ {
		n := sizes[i%len(sizes)]
		data := make([]byte, n)
		for p := range data {
			data[p] = byte((i*13 + p) % 251)
		}
		arr, err := tensor.FromBytes(tensor.UInt8, []int{n}, data)
		if err != nil {
			t.Fatal(err)
		}
		if err := x.Append(ctx, arr); err != nil {
			t.Fatal(err)
		}
	}
}

// buildResumable writes two mixed-size phases with an autotuned writer,
// flushing between them; when reopen is set the dataset is closed and
// reopened from storage at the phase boundary. Returns the store plus the
// autotune level persisted after phase one (to prove restoration is
// load-bearing, not vacuous).
func buildResumable(t *testing.T, reopen bool) (storage.Provider, int) {
	t.Helper()
	ctx := context.Background()
	const autoCap = 4096
	store := storage.NewMemory()
	ds, err := Create(ctx, store, "resume")
	if err != nil {
		t.Fatal(err)
	}
	pinClock(ds)
	if err := ds.SetWriteOptions(WriteOptions{AutotuneChunkBytes: autoCap}); err != nil {
		t.Fatal(err)
	}
	x, err := ds.CreateTensor(ctx, TensorSpec{Name: "x", Dtype: tensor.UInt8, Bounds: smallBounds})
	if err != nil {
		t.Fatal(err)
	}
	appendMixedSizes(t, x, 0, 120)
	if err := ds.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	level := x.builder.AutotuneState().Level
	if reopen {
		ds, err = Open(ctx, store)
		if err != nil {
			t.Fatal(err)
		}
		pinClock(ds)
		if err := ds.SetWriteOptions(WriteOptions{AutotuneChunkBytes: autoCap}); err != nil {
			t.Fatal(err)
		}
		x = ds.Tensor("x")
		if x == nil {
			t.Fatal("tensor x missing after reopen")
		}
	}
	appendMixedSizes(t, x, 120, 240)
	if err := ds.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	return store, level
}

// TestAutotunePersistResumesSchedule is the reopen golden test: flush,
// reopen, append must store objects byte-identical to an uninterrupted
// writer flushing at the same point.
func TestAutotunePersistResumesSchedule(t *testing.T) {
	ctx := context.Background()
	straight, level := buildResumable(t, false)
	resumed, _ := buildResumable(t, true)
	if level == 0 {
		t.Fatal("phase one never grew the schedule; the reopen comparison proves nothing")
	}

	wantKeys := snapshotKeys(t, straight)
	gotKeys := snapshotKeys(t, resumed)
	if got, want := fmt.Sprint(gotKeys), fmt.Sprint(wantKeys); got != want {
		t.Fatalf("stored key sets differ after reopen:\nuninterrupted: %v\nresumed:       %v",
			wantKeys, gotKeys)
	}
	for _, key := range wantKeys {
		want, err := straight.Get(ctx, key)
		if err != nil {
			t.Fatal(err)
		}
		got, err := resumed.Get(ctx, key)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("object %q differs between uninterrupted and reopened writer (%d vs %d bytes)",
				key, len(want), len(got))
		}
	}
}

// TestAutotuneStateSurvivesReopen pins the mechanism itself: the persisted
// meta carries the schedule position and a reopened tensor's builder reports
// the same state.
func TestAutotuneStateSurvivesReopen(t *testing.T) {
	ctx := context.Background()
	store := storage.NewMemory()
	ds, err := Create(ctx, store, "state")
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.SetWriteOptions(WriteOptions{AutotuneChunkBytes: 4096}); err != nil {
		t.Fatal(err)
	}
	x, err := ds.CreateTensor(ctx, TensorSpec{Name: "x", Dtype: tensor.UInt8, Bounds: smallBounds})
	if err != nil {
		t.Fatal(err)
	}
	appendMixedSizes(t, x, 0, 120)
	if err := ds.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	raw, err := store.Get(ctx, tensorMetaKey(ds.head, "x"))
	if err != nil {
		t.Fatal(err)
	}
	var m TensorMeta
	if err := unmarshalJSON(raw, &m); err != nil {
		t.Fatal(err)
	}
	want := m.Autotune
	if want == nil {
		t.Fatal("flush did not persist autotune state")
	}
	if want.ObsCount != 120 {
		t.Fatalf("persisted ObsCount %d, want 120", want.ObsCount)
	}

	ds2, err := Open(ctx, store)
	if err != nil {
		t.Fatal(err)
	}
	x2 := ds2.Tensor("x")
	if x2 == nil {
		t.Fatal("tensor x missing after reopen")
	}
	if got := x2.builder.AutotuneState(); got != *want {
		t.Fatalf("reopened builder state %+v, want persisted %+v", got, *want)
	}
}
