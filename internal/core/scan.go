package core

import (
	"context"

	"repro/internal/chunk"
	"repro/internal/storage"
	"repro/internal/tensor"
)

// ChunkSpan is one chunk's contiguous range of sample indices, [First, Last]
// inclusive. The TQL scan engine and the streaming dataloader partition a
// row space along these boundaries so concurrent workers touch disjoint
// chunk sets.
type ChunkSpan struct {
	First, Last uint64
	ChunkID     uint64
}

// ChunkSpans returns the tensor's chunk-aligned partition of its sample
// range, in index order. An empty tensor returns no spans.
func (t *Tensor) ChunkSpans() []ChunkSpan {
	t.ds.mu.RLock()
	defer t.ds.mu.RUnlock()
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.chunkEnc.NumChunks()
	out := make([]ChunkSpan, 0, n)
	for r := 0; r < n; r++ {
		first, last, id, err := t.chunkEnc.ChunkRange(r)
		if err != nil {
			break
		}
		out = append(out, ChunkSpan{First: first, Last: last, ChunkID: id})
	}
	return out
}

// ChunkFetch is a pluggable fetch+decode source for a ScanReader: given a
// chunk id it returns the chunk's stored samples. The streaming dataloader
// passes its decoded-chunk cache here, so the reader's chunk loads coalesce
// with other workers and the readahead scheduler instead of going straight
// to the tensor's read path.
type ChunkFetch func(ctx context.Context, chunkID uint64) ([]chunk.Sample, error)

// ScanReader reads samples of one tensor with chunk-granular reuse: walking
// rows in ascending order fetches and decodes each chunk once instead of
// once per sample. Without a ChunkFetch the fetch goes through the provider
// chain, so concurrent readers pulling the same chunk still coalesce into
// one origin Get. A ScanReader is NOT safe for concurrent use; each scan or
// loader worker owns one per tensor.
type ScanReader struct {
	t       *Tensor
	fetch   ChunkFetch
	arena   *chunk.Arena
	valid   bool
	chunkID uint64
	samples []chunk.Sample
}

// NewScanReader returns a reader with an empty chunk slot whose fetches use
// the tensor's direct read path.
func (t *Tensor) NewScanReader() *ScanReader { return &ScanReader{t: t} }

// NewScanReaderWith returns a reader whose chunk fetches are served by fetch
// (e.g. the dataloader's decoded-chunk cache) instead of the tensor's direct
// read path.
func (t *Tensor) NewScanReaderWith(fetch ChunkFetch) *ScanReader {
	return &ScanReader{t: t, fetch: fetch}
}

// SetArena installs a buffer arena for At's sample decodes: raw payload
// copies bump-allocate from pooled slabs instead of the heap, taking the
// steady-state scan loop to near-zero allocations per sample. The caller
// owns the arena's lifecycle — Reset it only once every array decoded
// through this reader is dead (see chunk.Arena). A nil arena restores plain
// heap allocation.
func (r *ScanReader) SetArena(a *chunk.Arena) { r.arena = a }

// locate resolves idx to chunk coordinates under the read locks, reporting
// fallback=true for samples the chunk-granular path cannot serve: sequence
// rows, tiled samples, and rows still in the write buffer.
func (r *ScanReader) locate(idx uint64) (chunkID uint64, local int, fallback bool, err error) {
	t := r.t
	t.ds.mu.RLock()
	defer t.ds.mu.RUnlock()
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.spec.Sequence {
		return 0, 0, true, nil
	}
	if _, tiled := t.tileEnc.Get(idx); tiled {
		return 0, 0, true, nil
	}
	chunkID, local, err = t.chunkEnc.Lookup(idx)
	if err != nil {
		return 0, 0, false, err
	}
	if t.builder.Len() > 0 && chunkID == t.pendingID {
		return 0, 0, true, nil
	}
	return chunkID, local, false, nil
}

// StoredAt returns the stored (still media-encoded) sample idx, decoding the
// containing chunk once and reusing it across calls. ok=false means the
// sample needs the tensor's direct read path (sequences, tiles,
// write-buffered rows); callers fall back to Tensor.At or RawAt. The chunk
// load itself runs outside the tensor locks, so a ChunkFetch may re-enter
// tensor read methods (the dataloader's cache calls ReadChunkSamples).
func (r *ScanReader) StoredAt(ctx context.Context, idx uint64) (chunk.Sample, bool, error) {
	chunkID, local, fallback, err := r.locate(idx)
	if err != nil {
		return chunk.Sample{}, false, err
	}
	if fallback {
		return chunk.Sample{}, false, nil
	}
	if !r.valid || r.chunkID != chunkID {
		var samples []chunk.Sample
		if r.fetch != nil {
			samples, err = r.fetch(ctx, chunkID)
		} else {
			samples, err = r.t.ReadChunkSamples(ctx, chunkID)
		}
		if err != nil {
			return chunk.Sample{}, false, err
		}
		r.chunkID, r.samples, r.valid = chunkID, samples, true
	}
	if local >= len(r.samples) {
		// Tiled samples register under their first tile chunk; the direct
		// read path reassembles them.
		return chunk.Sample{}, false, nil
	}
	return r.samples[local], true, nil
}

// At returns sample idx like Tensor.At, but keeps the decoded chunk of the
// previous call so sequential reads within one chunk pay a single
// fetch+decode. Sequence, tiled and write-buffered samples fall back to the
// direct per-sample path.
func (r *ScanReader) At(ctx context.Context, idx uint64) (*tensor.NDArray, error) {
	s, ok, err := r.StoredAt(ctx, idx)
	if err != nil {
		return nil, err
	}
	if !ok {
		return r.t.At(ctx, idx)
	}
	return r.t.decodeSampleArena(s, r.arena)
}

// PrefetchChunks resolves the given chunk ids to storage keys and hands them
// to the provider chain's Prefetcher (the LRU cache's coalescing fetch
// planner), which packs near-adjacent chunk objects into batched ranged
// origin requests running in the background: the call returns once every
// eligible chunk is claimed in the cache's singleflight layer, so readers
// arriving later coalesce onto the in-flight batch rather than issuing their
// own round trips. Chunks still in the write buffer, in the flush pipeline's
// pending map, or unknown to the version map are skipped. A provider chain
// without a Prefetcher makes this a no-op, so callers can prefetch
// unconditionally. Returns the number of chunk objects claimed for fetch.
func (t *Tensor) PrefetchChunks(ctx context.Context, ids []uint64, opts storage.PlanOptions) (int, error) {
	pf, ok := t.ds.store.(storage.Prefetcher)
	if !ok || len(ids) == 0 {
		return 0, nil
	}
	t.ds.mu.RLock()
	t.mu.RLock()
	if opts.SizeHint <= 0 {
		// Chunk objects are ~effective-target bytes; the planner sizes
		// whole-object requests it cannot stat with this.
		opts.SizeHint = int64(t.builder.EffectiveBounds().Target)
	}
	keys := make([]string, 0, len(ids))
	for _, id := range ids {
		if t.builder.Len() > 0 && id == t.pendingID {
			continue
		}
		vid, known := t.chunkVersion[id]
		if !known {
			continue
		}
		key := chunkKey(vid, t.name, id)
		if fp := t.ds.flusher; fp != nil {
			if _, inflight := fp.lookup(key); inflight {
				continue
			}
		}
		keys = append(keys, key)
	}
	t.mu.RUnlock()
	t.ds.mu.RUnlock()
	if len(keys) == 0 {
		return 0, nil
	}
	return pf.PrefetchAsync(ctx, keys, opts), nil
}
