package core

import (
	"context"
	"fmt"

	"repro/internal/chunk"
	"repro/internal/tensor"
)

// ChunkSpan is one chunk's contiguous range of sample indices, [First, Last]
// inclusive. The TQL scan engine partitions a query's row space along these
// boundaries so concurrent workers touch disjoint chunk sets.
type ChunkSpan struct {
	First, Last uint64
	ChunkID     uint64
}

// ChunkSpans returns the tensor's chunk-aligned partition of its sample
// range, in index order. An empty tensor returns no spans.
func (t *Tensor) ChunkSpans() []ChunkSpan {
	t.ds.mu.RLock()
	defer t.ds.mu.RUnlock()
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.chunkEnc.NumChunks()
	out := make([]ChunkSpan, 0, n)
	for r := 0; r < n; r++ {
		first, last, id, err := t.chunkEnc.ChunkRange(r)
		if err != nil {
			break
		}
		out = append(out, ChunkSpan{First: first, Last: last, ChunkID: id})
	}
	return out
}

// ScanReader reads samples of one tensor with chunk-granular reuse: walking
// rows in ascending order fetches and decodes each chunk once instead of
// once per sample. The fetch itself goes through the provider chain, so
// concurrent readers pulling the same chunk still coalesce into one origin
// Get. A ScanReader is NOT safe for concurrent use; each scan worker owns
// one per tensor.
type ScanReader struct {
	t       *Tensor
	valid   bool
	chunkID uint64
	samples []chunk.Sample
}

// NewScanReader returns a reader with an empty chunk slot.
func (t *Tensor) NewScanReader() *ScanReader { return &ScanReader{t: t} }

// At returns sample idx like Tensor.At, but keeps the decoded chunk of the
// previous call so sequential reads within one chunk pay a single
// fetch+decode. Sequence, tiled and write-buffered samples fall back to the
// direct per-sample path.
func (r *ScanReader) At(ctx context.Context, idx uint64) (*tensor.NDArray, error) {
	t := r.t
	t.ds.mu.RLock()
	defer t.ds.mu.RUnlock()
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.spec.Sequence {
		return t.atLocked(ctx, idx)
	}
	if _, tiled := t.tileEnc.Get(idx); tiled {
		return t.atLocked(ctx, idx)
	}
	chunkID, local, err := t.chunkEnc.Lookup(idx)
	if err != nil {
		return nil, err
	}
	if t.builder.Len() > 0 && chunkID == t.pendingID {
		return t.atLocked(ctx, idx)
	}
	if !r.valid || r.chunkID != chunkID {
		raw, err := t.readChunk(ctx, chunkID)
		if err != nil {
			return nil, err
		}
		samples, err := chunk.Decode(raw)
		if err != nil {
			return nil, err
		}
		r.chunkID, r.samples, r.valid = chunkID, samples, true
	}
	if local >= len(r.samples) {
		return nil, fmt.Errorf("core: sample %d beyond chunk %d (%d samples)", local, r.chunkID, len(r.samples))
	}
	return t.decodeSample(r.samples[local])
}
