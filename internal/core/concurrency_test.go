package core

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/tensor"
)

// TestConcurrentReadersDuringWrites exercises the coarse dataset lock: many
// goroutines read while one appends; every read must observe a consistent
// sample (the §3.5 concurrent annotator/training scenario).
func TestConcurrentReadersDuringWrites(t *testing.T) {
	ctx := context.Background()
	ds, _ := newTestDataset(t)
	x, err := ds.CreateTensor(ctx, TensorSpec{Name: "x", Dtype: tensor.Int64, Bounds: smallBounds})
	if err != nil {
		t.Fatal(err)
	}
	// Seed enough samples that readers always have work.
	for i := 0; i < 64; i++ {
		if err := x.Append(ctx, tensor.Scalar(tensor.Int64, float64(i))); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 16)

	// 8 readers hammering random-ish indices.
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			i := uint64(r)
			for {
				select {
				case <-stop:
					return
				default:
				}
				idx := i % 64
				arr, err := x.At(ctx, idx)
				if err != nil {
					errs <- fmt.Errorf("reader %d at %d: %w", r, idx, err)
					return
				}
				v, _ := arr.Item()
				if v != float64(idx) {
					errs <- fmt.Errorf("reader %d: x[%d] = %v", r, idx, v)
					return
				}
				i += 7
			}
		}(r)
	}
	// One writer appending and updating.
	for i := 64; i < 256; i++ {
		if err := x.Append(ctx, tensor.Scalar(tensor.Int64, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if x.Len() != 256 {
		t.Fatalf("len = %d", x.Len())
	}
}

// TestConcurrentChunkReads verifies that parallel whole-chunk reads (the
// dataloader's access pattern) are race-free and consistent.
func TestConcurrentChunkReads(t *testing.T) {
	ctx := context.Background()
	ds, _ := newTestDataset(t)
	x, _ := ds.CreateTensor(ctx, TensorSpec{Name: "x", Dtype: tensor.Int32, Bounds: smallBounds})
	for i := 0; i < 200; i++ {
		x.Append(ctx, tensor.Scalar(tensor.Int32, float64(i)))
	}
	if err := ds.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := uint64(w); i < 200; i += 16 {
				chunkID, local, err := x.ChunkOf(i)
				if err != nil {
					t.Errorf("ChunkOf(%d): %v", i, err)
					return
				}
				samples, err := x.ReadChunkSamples(ctx, chunkID)
				if err != nil {
					t.Errorf("ReadChunkSamples(%d): %v", chunkID, err)
					return
				}
				arr, err := x.DecodeStored(samples[local].Data, samples[local].Shape)
				if err != nil {
					t.Errorf("decode: %v", err)
					return
				}
				if v, _ := arr.Item(); v != float64(i) {
					t.Errorf("x[%d] = %v via chunk path", i, v)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestSequenceOfImages exercises the sequence[image] meta-htype (§3.3):
// rows of JPEG-compressed frames with per-row lengths.
func TestSequenceOfImages(t *testing.T) {
	ctx := context.Background()
	ds, _ := newTestDataset(t)
	seq, err := ds.CreateTensor(ctx, TensorSpec{Name: "episodes", Htype: "sequence[image]", Bounds: smallBounds})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Meta().SampleCompression != "jpeg" {
		t.Fatalf("sequence[image] sample compression = %q", seq.Meta().SampleCompression)
	}
	frame := func(v byte) *tensor.NDArray {
		f := tensor.MustNew(tensor.UInt8, 16, 16, 3)
		for i := range f.Bytes() {
			f.Bytes()[i] = v
		}
		return f
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(seq.AppendSequence(ctx, []*tensor.NDArray{frame(10), frame(20), frame(30)}))
	must(seq.AppendSequence(ctx, []*tensor.NDArray{frame(40)}))
	if seq.Len() != 2 {
		t.Fatalf("rows = %d", seq.Len())
	}
	items, err := seq.SequenceAt(ctx, 0)
	must(err)
	if len(items) != 3 {
		t.Fatalf("row 0 items = %d", len(items))
	}
	// JPEG of a constant image decodes near-exactly.
	v, _ := items[1].At(8, 8, 0)
	if v < 15 || v > 25 {
		t.Fatalf("frame 1 value = %v, want ~20", v)
	}
	n, err := seq.SequenceLen(1)
	must(err)
	if n != 1 {
		t.Fatalf("row 1 length = %d", n)
	}
	// Persistence.
	must(ds.Flush(ctx))
	st := ds.store
	back, err := Open(ctx, st)
	must(err)
	items, err = back.Tensor("episodes").SequenceAt(ctx, 0)
	must(err)
	if len(items) != 3 {
		t.Fatalf("reopened row 0 items = %d", len(items))
	}
}

// TestVideoSequencePlaybackPattern covers the §4.3 sequential-view access:
// jumping to a specific position of a sequence without fetching the rest.
func TestSequenceRandomItemAccess(t *testing.T) {
	ctx := context.Background()
	ds, _ := newTestDataset(t)
	seq, _ := ds.CreateTensor(ctx, TensorSpec{Name: "s", Htype: "sequence[generic]", Dtype: tensor.Int32, Bounds: smallBounds})
	for row := 0; row < 10; row++ {
		items := make([]*tensor.NDArray, row%4+1)
		for k := range items {
			items[k] = tensor.Scalar(tensor.Int32, float64(row*10+k))
		}
		if err := seq.AppendSequence(ctx, items); err != nil {
			t.Fatal(err)
		}
	}
	// Jump straight to row 7, item 2.
	items, err := seq.SequenceAt(ctx, 7)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := items[2].Item(); v != 72 {
		t.Fatalf("row 7 item 2 = %v", v)
	}
}
