package core

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"strings"

	"repro/internal/storage"
	"repro/internal/version"
)

// Fsck issue kinds. Each issue names the exact storage object it concerns.
const (
	// FsckCorruptObject: a metadata object exists but does not parse.
	FsckCorruptObject = "corrupt-object"
	// FsckMissingRoot: dataset.json points at a generation whose snapshot
	// object is gone.
	FsckMissingRoot = "missing-root"
	// FsckAbandonedRoot: a staged generation newer than the published one —
	// the footprint of a writer killed between staging and publishing.
	FsckAbandonedRoot = "abandoned-root"
	// FsckStaleRoot: a snapshot older than the previous generation that
	// best-effort cleanup failed to remove.
	FsckStaleRoot = "stale-root"
	// FsckTornMetadata: a plain head object disagrees with the published
	// root snapshot (torn by a crashed writer; the snapshot is
	// authoritative).
	FsckTornMetadata = "torn-metadata"
	// FsckMissingObject: a metadata object referenced by the version tree
	// is absent.
	FsckMissingObject = "missing-object"
	// FsckMissingChunk: a chunk listed in a version's chunk set is absent.
	FsckMissingChunk = "missing-chunk"
	// FsckChecksumMismatch: a stored chunk's bytes fail the CRC32C recorded
	// in the tensor's checksum manifest.
	FsckChecksumMismatch = "checksum-mismatch"
	// FsckOrphanChunk: a stored chunk not referenced by its version's chunk
	// set (e.g. uploaded for a generation that was never published).
	FsckOrphanChunk = "orphan-chunk"
	// FsckOrphanVersion: a version directory with no node in the version
	// tree.
	FsckOrphanVersion = "orphan-version"
)

// FsckOptions configures a consistency walk.
type FsckOptions struct {
	// Repair makes fsck fix what it safely can: rewrite torn head metadata
	// from the published root snapshot, and delete abandoned/stale roots,
	// orphan chunks and orphan version directories. Missing chunks and
	// checksum mismatches are data loss and are only ever reported.
	Repair bool
}

// FsckIssue is one problem found by Fsck.
type FsckIssue struct {
	Kind       string
	Key        string // the exact storage object concerned
	Detail     string
	Repairable bool
	Repaired   bool
}

func (i FsckIssue) String() string {
	state := ""
	switch {
	case i.Repaired:
		state = " [repaired]"
	case i.Repairable:
		state = " [repairable]"
	}
	return fmt.Sprintf("%s: %s: %s%s", i.Kind, i.Key, i.Detail, state)
}

// FsckReport is the result of a consistency walk.
type FsckReport struct {
	// Generation is the published generation (0 for legacy datasets).
	Generation uint64
	// Issues lists every problem found, in discovery order.
	Issues []FsckIssue
	// ObjectsChecked counts storage objects inspected.
	ObjectsChecked int
	// ChunksVerified / ChunksUnverified count chunks whose bytes were /
	// could not be CRC-checked (no manifest entry — pre-checksum data).
	ChunksVerified   int
	ChunksUnverified int
}

// Clean reports whether the dataset has no outstanding problems: no issues,
// or every issue repaired.
func (r *FsckReport) Clean() bool {
	for _, i := range r.Issues {
		if !i.Repaired {
			return false
		}
	}
	return true
}

// Format renders the report for humans, one line per issue.
func (r *FsckReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fsck: generation %d, %d objects checked, %d chunks verified, %d unverified (no checksum)\n",
		r.Generation, r.ObjectsChecked, r.ChunksVerified, r.ChunksUnverified)
	for _, i := range r.Issues {
		fmt.Fprintf(&b, "  %s\n", i.String())
	}
	if r.Clean() {
		b.WriteString("  clean\n")
	}
	return b.String()
}

// fsckState threads the walk.
type fsckState struct {
	store storage.Provider
	rep   *FsckReport
	root  *rootFile
	tree  *version.Tree
	// fixes holds the repair action for the same-index repairable issue.
	fixes []func(context.Context) error
}

func (f *fsckState) issue(kind, key, detail string, fix func(context.Context) error) {
	f.rep.Issues = append(f.rep.Issues, FsckIssue{Kind: kind, Key: key, Detail: detail, Repairable: fix != nil})
	f.fixes = append(f.fixes, fix)
}

// Fsck walks a dataset's storage namespace and cross-checks the manifest
// against the stored objects: every referenced chunk present, every stored
// chunk referenced, every checksum matching, the plain head metadata in
// agreement with the published root snapshot, and no leftovers from dead
// generations. With opts.Repair it fixes what is safely fixable (see
// FsckOptions). The returned error is reserved for infrastructure failures
// (storage errors, no dataset at all); consistency problems land in the
// report.
func Fsck(ctx context.Context, store storage.Provider, opts FsckOptions) (*FsckReport, error) {
	f := &fsckState{store: store, rep: &FsckReport{}}

	raw, err := store.Get(ctx, datasetMetaKey)
	if err != nil {
		if storage.IsNotFound(err) {
			return nil, fmt.Errorf("core: no dataset at this location")
		}
		return nil, err
	}
	f.rep.ObjectsChecked++
	var meta datasetMeta
	if err := unmarshalJSON(raw, &meta); err != nil {
		f.issue(FsckCorruptObject, datasetMetaKey, fmt.Sprintf("does not parse: %v", err), nil)
		return f.rep, nil
	}
	f.rep.Generation = meta.Generation

	if meta.Generation > 0 {
		root, err := loadRoot(ctx, store, meta.Generation)
		switch {
		case err == nil:
			f.root = root
		case storage.IsNotFound(err):
			f.issue(FsckMissingRoot, rootKey(meta.Generation),
				"dataset.json points at this generation but its snapshot is gone", nil)
		default:
			f.issue(FsckCorruptObject, rootKey(meta.Generation), err.Error(), nil)
		}
		f.rep.ObjectsChecked++
	}
	if err := f.checkRootsListing(ctx, meta.Generation); err != nil {
		return nil, err
	}

	// Resolve the version tree: the snapshot's embedded copy is
	// authoritative when present; otherwise the plain object must parse.
	if f.root != nil {
		f.tree, err = version.Unmarshal(f.root.Tree)
		if err != nil {
			f.issue(FsckCorruptObject, rootKey(meta.Generation), fmt.Sprintf("embedded version tree does not parse: %v", err), nil)
			return f.rep, nil
		}
		f.checkPlainTree(ctx)
	} else {
		rawTree, err := store.Get(ctx, versionTreeKey)
		if err != nil {
			if storage.IsNotFound(err) {
				f.issue(FsckMissingObject, versionTreeKey, "version tree is missing and no root snapshot exists to restore it", nil)
				return f.rep, nil
			}
			return nil, err
		}
		f.rep.ObjectsChecked++
		f.tree, err = version.Unmarshal(rawTree)
		if err != nil {
			f.issue(FsckCorruptObject, versionTreeKey, fmt.Sprintf("does not parse: %v", err), nil)
			return f.rep, nil
		}
	}

	if f.root != nil {
		f.checkHeadObjects(ctx, meta.CurrentBranch)
	}
	if err := f.checkVersions(ctx); err != nil {
		return nil, err
	}
	if err := f.checkOrphanVersions(ctx); err != nil {
		return nil, err
	}

	if opts.Repair {
		if err := f.repair(ctx); err != nil {
			return f.rep, err
		}
	}
	return f.rep, nil
}

// checkRootsListing flags staged-but-unpublished generations (a crashed
// writer's footprint) and stale snapshots older than the kept window
// (current + previous).
func (f *fsckState) checkRootsListing(ctx context.Context, gen uint64) error {
	keys, err := f.store.List(ctx, rootsPrefix)
	if err != nil {
		return err
	}
	for _, key := range keys {
		key := key
		g, ok := parseChunkName(strings.TrimPrefix(key, rootsPrefix))
		if !ok {
			f.issue(FsckOrphanVersion, key, "unparseable name under roots/", func(ctx context.Context) error {
				return f.store.Delete(ctx, key)
			})
			continue
		}
		switch {
		case g > gen:
			f.issue(FsckAbandonedRoot, key,
				fmt.Sprintf("staged generation %d was never published (writer died before the dataset.json flip); published generation is %d", g, gen),
				func(ctx context.Context) error { return f.store.Delete(ctx, key) })
		case gen >= 2 && g < gen-1:
			f.issue(FsckStaleRoot, key,
				fmt.Sprintf("superseded snapshot (published generation is %d)", gen),
				func(ctx context.Context) error { return f.store.Delete(ctx, key) })
		}
	}
	return nil
}

// checkPlainTree cross-checks the convenience version_control.json copy
// against the snapshot's embedded tree.
func (f *fsckState) checkPlainTree(ctx context.Context) {
	fix := func(ctx context.Context) error {
		tree, err := version.Unmarshal(f.root.Tree)
		if err != nil {
			return err
		}
		raw, err := tree.Marshal()
		if err != nil {
			return err
		}
		return f.store.Put(ctx, versionTreeKey, raw)
	}
	raw, err := f.store.Get(ctx, versionTreeKey)
	if err != nil {
		f.issue(FsckTornMetadata, versionTreeKey, "missing; the published root snapshot has the authoritative copy", fix)
		return
	}
	f.rep.ObjectsChecked++
	if !jsonSemanticallyEqual(raw, f.root.Tree) {
		f.issue(FsckTornMetadata, versionTreeKey, "disagrees with the tree embedded in the published root snapshot", fix)
	}
}

// checkHeadObjects cross-checks the plain per-object copies of the head
// version's mutable state against the authoritative snapshot.
func (f *fsckState) checkHeadObjects(ctx context.Context, branch string) {
	headNode, err := f.tree.Head(branch)
	if err != nil {
		return
	}
	head := headNode.ID
	if f.root.Head != head {
		// Snapshot was published from a detached checkout; the plain head
		// objects have no snapshot counterpart to compare against.
		return
	}

	compare := func(key string, want []byte, semantic bool) {
		raw, err := f.store.Get(ctx, key)
		missing := storage.IsNotFound(err)
		if err != nil && !missing {
			return
		}
		if !missing {
			f.rep.ObjectsChecked++
		}
		equal := false
		switch {
		case missing:
			// A missing plain object equals an empty snapshot payload
			// (encoders with no state are simply not written).
			equal = len(want) == 0
		case semantic:
			equal = jsonSemanticallyEqual(raw, want)
		default:
			equal = string(raw) == string(want)
		}
		if !equal {
			f.issue(FsckTornMetadata, key, "disagrees with the published root snapshot", func(ctx context.Context) error {
				return f.store.Put(ctx, key, want)
			})
		}
	}

	compare(schemaKey(head), mustJSON(f.root.Schema), true)
	for _, name := range f.root.Schema.Tensors {
		st, ok := f.root.Tensors[name]
		if !ok {
			continue
		}
		compare(tensorMetaKey(head, name), mustJSON(st.Meta), true)
		compare(chunkEncoderKey(head, name), st.ChunkEnc, false)
		compare(shapeEncoderKey(head, name), st.ShapeEnc, false)
		compare(tileEncoderKey(head, name), st.TileEnc, false)
		compare(seqEncoderKey(head, name), st.SeqEnc, false)
		compare(chunkSetKey(head, name), mustJSON(st.ChunkSet), true)
		compare(diffKey(head, name), mustJSON(st.Diff), true)
	}
}

// versionTensorState is what checkVersions needs per tensor: the chunk set
// and the checksum manifest.
type versionTensorState struct {
	chunks    []uint64
	checksums map[string]uint32
}

// versionState resolves one version's tensor states: from the snapshot for
// the snapshot's own version, from plain objects otherwise (frozen at commit
// time, so safe to read directly).
func (f *fsckState) versionState(ctx context.Context, vid string) (map[string]versionTensorState, error) {
	out := map[string]versionTensorState{}
	if f.root != nil && f.root.Head == vid {
		for _, name := range f.root.Schema.Tensors {
			st := f.root.Tensors[name]
			out[name] = versionTensorState{chunks: st.ChunkSet.Chunks, checksums: st.Meta.Checksums}
		}
		return out, nil
	}
	raw, err := f.store.Get(ctx, schemaKey(vid))
	if err != nil {
		if storage.IsNotFound(err) {
			f.issue(FsckMissingObject, schemaKey(vid), "version has no schema object", nil)
			return out, nil
		}
		return nil, err
	}
	f.rep.ObjectsChecked++
	var schema schemaFile
	if err := unmarshalJSON(raw, &schema); err != nil {
		f.issue(FsckCorruptObject, schemaKey(vid), fmt.Sprintf("does not parse: %v", err), nil)
		return out, nil
	}
	for _, name := range schema.Tensors {
		ts := versionTensorState{}
		if raw, err := f.store.Get(ctx, tensorMetaKey(vid, name)); err == nil {
			f.rep.ObjectsChecked++
			var tm TensorMeta
			if err := unmarshalJSON(raw, &tm); err != nil {
				f.issue(FsckCorruptObject, tensorMetaKey(vid, name), fmt.Sprintf("does not parse: %v", err), nil)
			} else {
				ts.checksums = tm.Checksums
			}
		} else if storage.IsNotFound(err) {
			f.issue(FsckMissingObject, tensorMetaKey(vid, name), "tensor listed in the version schema has no metadata object", nil)
		} else {
			return nil, err
		}
		if raw, err := f.store.Get(ctx, chunkSetKey(vid, name)); err == nil {
			f.rep.ObjectsChecked++
			var set chunkSetFile
			if err := unmarshalJSON(raw, &set); err != nil {
				f.issue(FsckCorruptObject, chunkSetKey(vid, name), fmt.Sprintf("does not parse: %v", err), nil)
			} else {
				ts.chunks = set.Chunks
			}
		} else if !storage.IsNotFound(err) {
			return nil, err
		}
		out[name] = ts
	}
	return out, nil
}

// checkVersions walks every version in the tree: referenced chunks must
// exist and match their recorded CRC32C, and stored chunks must be
// referenced.
func (f *fsckState) checkVersions(ctx context.Context) error {
	vids := make([]string, 0, len(f.tree.Nodes))
	for vid := range f.tree.Nodes {
		vids = append(vids, vid)
	}
	sort.Strings(vids)
	for _, vid := range vids {
		tensors, err := f.versionState(ctx, vid)
		if err != nil {
			return err
		}
		names := make([]string, 0, len(tensors))
		for name := range tensors {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			ts := tensors[name]
			referenced := make(map[uint64]bool, len(ts.chunks))
			for _, id := range ts.chunks {
				referenced[id] = true
				key := chunkKey(vid, name, id)
				f.rep.ObjectsChecked++
				want, hasDigest := ts.checksums[chunkName(id)]
				if !hasDigest {
					ok, err := f.store.Exists(ctx, key)
					if err != nil {
						return err
					}
					if !ok {
						f.issue(FsckMissingChunk, key, "referenced by the version's chunk set but absent from storage", nil)
						continue
					}
					f.rep.ChunksUnverified++
					continue
				}
				raw, err := f.store.Get(ctx, key)
				if err != nil {
					if storage.IsNotFound(err) {
						f.issue(FsckMissingChunk, key, "referenced by the version's chunk set but absent from storage", nil)
						continue
					}
					return err
				}
				if got := storage.Checksum(raw); got != want {
					f.issue(FsckChecksumMismatch, key,
						fmt.Sprintf("stored bytes have CRC32C %08x, manifest records %08x", got, want), nil)
					continue
				}
				f.rep.ChunksVerified++
			}
			// Stored chunks this version's set does not reference.
			prefix := tensorPrefix(vid, name) + "/chunks/"
			keys, err := f.store.List(ctx, prefix)
			if err != nil {
				return err
			}
			for _, key := range keys {
				key := key
				id, ok := parseChunkName(strings.TrimPrefix(key, prefix))
				if !ok || !referenced[id] {
					f.issue(FsckOrphanChunk, key,
						"stored but not referenced by the version's chunk set (e.g. uploaded for a generation that was never published)",
						func(ctx context.Context) error { return f.store.Delete(ctx, key) })
				}
			}
		}
	}
	return nil
}

// checkOrphanVersions flags version directories with no node in the tree —
// the object footprint of commits or branches that were never published.
func (f *fsckState) checkOrphanVersions(ctx context.Context) error {
	keys, err := f.store.List(ctx, "versions/")
	if err != nil {
		return err
	}
	flagged := map[string]bool{}
	for _, key := range keys {
		rest := strings.TrimPrefix(key, "versions/")
		vid, _, _ := strings.Cut(rest, "/")
		if vid == "" || flagged[vid] {
			continue
		}
		if _, ok := f.tree.Nodes[vid]; ok {
			continue
		}
		flagged[vid] = true
		prefix := versionPrefix(vid) + "/"
		f.issue(FsckOrphanVersion, versionPrefix(vid),
			"version directory has no node in the version tree (never-published commit or branch)",
			func(ctx context.Context) error {
				keys, err := f.store.List(ctx, prefix)
				if err != nil {
					return err
				}
				for _, k := range keys {
					if err := f.store.Delete(ctx, k); err != nil {
						return err
					}
				}
				return nil
			})
	}
	return nil
}

// repair runs the collected fixes: metadata rewrites first (they restore the
// invariants deletions are judged against), then deletions of orphans and
// dead snapshots.
func (f *fsckState) repair(ctx context.Context) error {
	order := func(kind string) int {
		switch kind {
		case FsckTornMetadata:
			return 0
		default:
			return 1
		}
	}
	idx := make([]int, 0, len(f.rep.Issues))
	for i := range f.rep.Issues {
		if f.fixes[i] != nil {
			idx = append(idx, i)
		}
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return order(f.rep.Issues[idx[a]].Kind) < order(f.rep.Issues[idx[b]].Kind)
	})
	for _, i := range idx {
		if err := f.fixes[i](ctx); err != nil {
			return fmt.Errorf("core: fsck repair of %s %q: %w", f.rep.Issues[i].Kind, f.rep.Issues[i].Key, err)
		}
		f.rep.Issues[i].Repaired = true
	}
	return nil
}

// jsonSemanticallyEqual compares two JSON documents structurally, ignoring
// formatting (the snapshot embeds nested JSON re-indented by the outer
// marshal).
func jsonSemanticallyEqual(a, b []byte) bool {
	var va, vb any
	if unmarshalJSON(a, &va) != nil || unmarshalJSON(b, &vb) != nil {
		return string(a) == string(b)
	}
	return reflect.DeepEqual(va, vb)
}
