package view

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/storage"
)

// MaterializeOptions configures Materialize.
type MaterializeOptions struct {
	// Name for the produced dataset.
	Name string
	// Message recorded as the first commit of the produced dataset,
	// preserving lineage back to the query.
	Message string
	// Write configures the destination's parallel ingestion engine. The
	// zero value defaults to a small background flush pipeline
	// (FlushWorkers = 4) so chunk uploads overlap row evaluation; set
	// Write.FlushWorkers < 0 to force the synchronous serial path. The
	// stored bytes are identical either way — the final Commit drains the
	// pipeline before metadata is persisted.
	Write core.WriteOptions
}

// resolveWrite maps the option's zero/negative conventions onto the core
// semantics (0 workers = synchronous).
func (o MaterializeOptions) resolveWrite() core.WriteOptions {
	w := o.Write
	if w.FlushWorkers == 0 {
		w.FlushWorkers = 4
	}
	if w.FlushWorkers < 0 {
		w = core.WriteOptions{}
	}
	return w
}

// Materialize evaluates every view row and writes a fresh dataset with an
// optimal chunk layout onto dst (§4.5: "materialization transforms the
// dataset view into an optimal layout to stream into deep learning
// frameworks"). Identity columns keep their tensor metadata (htype and
// compressions); computed and resolved-link columns are written from their
// evaluated arrays.
func Materialize(ctx context.Context, v *View, dst storage.Provider, opts MaterializeOptions) (*core.Dataset, error) {
	if opts.Name == "" {
		opts.Name = v.ds.Name() + "-view"
	}
	out, err := core.Create(ctx, dst, opts.Name)
	if err != nil {
		return nil, err
	}
	if err := out.SetWriteOptions(opts.resolveWrite()); err != nil {
		return nil, err
	}
	// Create output tensors.
	for _, c := range v.Columns() {
		spec := core.TensorSpec{Name: c.Name}
		if c.Source == "" && v.Len() > 0 {
			// Computed column: infer the dtype from the first row.
			probe, err := v.At(ctx, 0, c.Name)
			if err != nil {
				return nil, fmt.Errorf("view: probing column %q: %w", c.Name, err)
			}
			spec.Dtype = probe.Dtype()
		}
		if c.Source != "" {
			src := v.ds.Tensor(c.Source)
			if src == nil {
				return nil, fmt.Errorf("view: source tensor %q missing", c.Source)
			}
			m := src.Meta()
			spec.Htype = m.Htype
			spec.Dtype = src.Dtype()
			spec.SampleCompression = m.SampleCompression
			spec.ChunkCompression = m.ChunkCompression
			spec.Bounds = m.Bounds
		}
		if _, err := out.CreateTensor(ctx, spec); err != nil {
			return nil, err
		}
	}
	// Stream rows in view order; appends re-pack into dense bounded
	// chunks, which is exactly the layout fix for sparse views.
	for row := 0; row < v.Len(); row++ {
		src, err := v.SourceRow(row)
		if err != nil {
			return nil, err
		}
		for _, c := range v.Columns() {
			dstT := out.Tensor(c.Name)
			// Identity columns over link/sequence tensors copy
			// through their specialized append paths.
			if c.Eval == nil && c.Source != "" {
				srcT := v.ds.Tensor(c.Source)
				switch {
				case srcT.Htype().Link:
					url, err := srcT.LinkAt(ctx, src)
					if err != nil {
						return nil, err
					}
					if err := dstT.AppendLink(ctx, url); err != nil {
						return nil, err
					}
					continue
				case srcT.Htype().Sequence:
					items, err := srcT.SequenceAt(ctx, int(src))
					if err != nil {
						return nil, err
					}
					if err := dstT.AppendSequence(ctx, items); err != nil {
						return nil, err
					}
					continue
				}
			}
			arr, err := v.At(ctx, row, c.Name)
			if err != nil {
				return nil, fmt.Errorf("view: materialize row %d column %q: %w", row, c.Name, err)
			}
			if err := dstT.Append(ctx, arr); err != nil {
				return nil, err
			}
		}
	}
	if opts.Message == "" {
		opts.Message = fmt.Sprintf("materialized view of %s@%s (%d rows)", v.ds.Name(), v.ds.Version(), v.Len())
	}
	if _, err := out.Commit(ctx, opts.Message); err != nil {
		return nil, err
	}
	return out, nil
}
