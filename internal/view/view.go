// Package view implements dataset views (§4.4-4.5): ordered row selections
// over a dataset with optional computed (virtual) columns, produced by TQL
// queries or manual index selection. Views can be streamed directly — at the
// cost of a sparse chunk layout — or materialized into a fresh dataset with
// an optimal streaming layout and full lineage.
//
// The package also resolves linked tensors (link[...] htypes): URL samples
// pointing at external storage providers, fetched through a scheme registry
// and inlined during materialization.
package view

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/tensor"
)

// Column is one output column of a view.
type Column struct {
	// Name is the output tensor name.
	Name string
	// Source names the underlying dataset tensor for identity columns;
	// empty for computed columns.
	Source string
	// Eval computes the column value for one source row. It must be safe
	// for concurrent use (dataloader workers call it in parallel). Nil
	// for identity columns.
	Eval func(ctx context.Context, row uint64) (*tensor.NDArray, error)
}

// Stored reports whether the column reads straight from a stored dataset
// tensor — the columns whose chunk layout the streaming dataloader can
// align fetches and shuffling to.
func (c Column) Stored() bool { return c.Source != "" && c.Eval == nil }

// View is an ordered selection of dataset rows with output columns.
type View struct {
	ds      *core.Dataset
	indices []uint64
	columns []Column
}

// New builds a view over explicit row indices. A nil columns slice selects
// all visible tensors as identity columns.
func New(ds *core.Dataset, indices []uint64, columns []Column) *View {
	if columns == nil {
		for _, name := range ds.Tensors() {
			columns = append(columns, Column{Name: name, Source: name})
		}
	}
	return &View{ds: ds, indices: indices, columns: columns}
}

// All returns the identity view over every complete row of the dataset.
func All(ds *core.Dataset) *View {
	n := ds.NumRows()
	idx := make([]uint64, n)
	for i := range idx {
		idx[i] = uint64(i)
	}
	return New(ds, idx, nil)
}

// Dataset returns the underlying dataset.
func (v *View) Dataset() *core.Dataset { return v.ds }

// Len returns the number of rows in the view.
func (v *View) Len() int { return len(v.indices) }

// Indices returns the source row index for each view row. Callers must not
// mutate the slice.
func (v *View) Indices() []uint64 { return v.indices }

// Columns returns the output columns. Callers must not mutate the slice.
func (v *View) Columns() []Column { return v.columns }

// ColumnNames lists output column names in order.
func (v *View) ColumnNames() []string {
	out := make([]string, len(v.columns))
	for i, c := range v.columns {
		out[i] = c.Name
	}
	return out
}

// SourceRow maps a view row to its dataset row index.
func (v *View) SourceRow(row int) (uint64, error) {
	if row < 0 || row >= len(v.indices) {
		return 0, fmt.Errorf("view: row %d out of range (%d rows)", row, len(v.indices))
	}
	return v.indices[row], nil
}

// At evaluates one cell of the view.
func (v *View) At(ctx context.Context, row int, column string) (*tensor.NDArray, error) {
	src, err := v.SourceRow(row)
	if err != nil {
		return nil, err
	}
	for _, c := range v.columns {
		if c.Name != column {
			continue
		}
		if c.Eval != nil {
			return c.Eval(ctx, src)
		}
		t := v.ds.Tensor(c.Source)
		if t == nil {
			return nil, fmt.Errorf("view: source tensor %q missing", c.Source)
		}
		return t.At(ctx, src)
	}
	return nil, fmt.Errorf("view: unknown column %q", column)
}

// Row evaluates all columns of one view row.
func (v *View) Row(ctx context.Context, row int) (map[string]*tensor.NDArray, error) {
	out := make(map[string]*tensor.NDArray, len(v.columns))
	for _, c := range v.columns {
		arr, err := v.At(ctx, row, c.Name)
		if err != nil {
			return nil, fmt.Errorf("view: column %q row %d: %w", c.Name, row, err)
		}
		out[c.Name] = arr
	}
	return out, nil
}

// Subview restricts the view to rows [lo, hi).
func (v *View) Subview(lo, hi int) (*View, error) {
	if lo < 0 || hi > len(v.indices) || lo > hi {
		return nil, fmt.Errorf("view: subview [%d:%d) out of range (%d rows)", lo, hi, len(v.indices))
	}
	return &View{ds: v.ds, indices: v.indices[lo:hi], columns: v.columns}, nil
}

// IsSparse reports whether the view's rows are non-contiguous over the
// source dataset — the layout the paper warns streams sub-optimally until
// materialized (§4.5).
func (v *View) IsSparse() bool {
	for i := 1; i < len(v.indices); i++ {
		if v.indices[i] != v.indices[i-1]+1 {
			return true
		}
	}
	return false
}
