package view

import (
	"bytes"
	"context"
	"fmt"
	"image"
	_ "image/jpeg" // sniffed media decoding for resolved links
	_ "image/png"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/tensor"
)

// Resolver fetches the bytes behind linked-tensor URLs (§4.5: pointers to
// one or multiple cloud providers, consolidated in a single tensor). URLs
// take the form scheme://bucket/key; each scheme+bucket pair maps to a
// registered storage provider, standing in for the paper's multi-cloud
// credentials set.
type Resolver struct {
	mu        sync.RWMutex
	providers map[string]storage.Provider
}

// NewResolver returns an empty resolver.
func NewResolver() *Resolver {
	return &Resolver{providers: map[string]storage.Provider{}}
}

// Register binds base (e.g. "sim://bucket-a") to a provider.
func (r *Resolver) Register(base string, p storage.Provider) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.providers[strings.TrimSuffix(base, "/")] = p
}

// Fetch retrieves the raw bytes behind url.
func (r *Resolver) Fetch(ctx context.Context, url string) ([]byte, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for base, p := range r.providers {
		if strings.HasPrefix(url, base+"/") {
			return p.Get(ctx, strings.TrimPrefix(url, base+"/"))
		}
	}
	return nil, fmt.Errorf("view: no provider registered for %q", url)
}

// ResolveImage fetches url and decodes it into an HWC uint8 array, the read
// path of link[image] tensors.
func (r *Resolver) ResolveImage(ctx context.Context, url string) (*tensor.NDArray, error) {
	data, err := r.Fetch(ctx, url)
	if err != nil {
		return nil, err
	}
	img, _, err := image.Decode(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("view: decoding %q: %w", url, err)
	}
	b := img.Bounds()
	h, w := b.Dy(), b.Dx()
	pix := make([]byte, h*w*3)
	i := 0
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			cr, cg, cb, _ := img.At(x, y).RGBA()
			pix[i] = byte(cr >> 8)
			pix[i+1] = byte(cg >> 8)
			pix[i+2] = byte(cb >> 8)
			i += 3
		}
	}
	return tensor.FromBytes(tensor.UInt8, []int{h, w, 3}, pix)
}

// LinkedColumn builds a view column that transparently resolves a
// link[image] tensor through the resolver, so queries, streaming and
// materialization treat it as a regular image tensor (§4.5).
func LinkedColumn(name string, t *core.Tensor, r *Resolver) Column {
	return Column{
		Name: name,
		Eval: func(ctx context.Context, row uint64) (*tensor.NDArray, error) {
			url, err := t.LinkAt(ctx, row)
			if err != nil {
				return nil, err
			}
			return r.ResolveImage(ctx, url)
		},
	}
}
