package view

import (
	"reflect"
	"testing"
)

func TestStripeCoversAllRowsDisjointly(t *testing.T) {
	ds := buildDataset(t) // 20 rows
	v := All(ds)
	world := 3
	seen := map[uint64]int{}
	for rank := 0; rank < world; rank++ {
		s, err := Stripe(v, rank, world)
		if err != nil {
			t.Fatal(err)
		}
		for _, idx := range s.Indices() {
			seen[idx]++
		}
	}
	if len(seen) != 20 {
		t.Fatalf("stripes cover %d/20 rows", len(seen))
	}
	for idx, count := range seen {
		if count != 1 {
			t.Fatalf("row %d assigned %d times", idx, count)
		}
	}
	// Rank 1 of 3 gets rows 1, 4, 7, ...
	s, _ := Stripe(v, 1, 3)
	if got := s.Indices()[:3]; !reflect.DeepEqual(got, []uint64{1, 4, 7}) {
		t.Fatalf("rank-1 stripe = %v", got)
	}
	if _, err := Stripe(v, 3, 3); err == nil {
		t.Fatal("rank == world should error")
	}
	if _, err := Stripe(v, 0, 0); err == nil {
		t.Fatal("zero world should error")
	}
}

func TestContiguousPartition(t *testing.T) {
	ds := buildDataset(t) // 20 rows
	v := All(ds)
	// 20 rows over 3 ranks: 7, 7, 6.
	sizes := []int{7, 7, 6}
	next := uint64(0)
	for rank := 0; rank < 3; rank++ {
		p, err := Contiguous(v, rank, 3)
		if err != nil {
			t.Fatal(err)
		}
		if p.Len() != sizes[rank] {
			t.Fatalf("rank %d size = %d, want %d", rank, p.Len(), sizes[rank])
		}
		for _, idx := range p.Indices() {
			if idx != next {
				t.Fatalf("rank %d: row %d, want %d (blocks must be contiguous)", rank, idx, next)
			}
			next++
		}
	}
	if next != 20 {
		t.Fatalf("covered %d/20 rows", next)
	}
	if _, err := Contiguous(v, -1, 3); err == nil {
		t.Fatal("negative rank should error")
	}
}
