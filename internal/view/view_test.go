package view

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/tensor"
)

var smallBounds = chunk.Bounds{Min: 64, Target: 128, Max: 256}

func buildDataset(t *testing.T) *core.Dataset {
	t.Helper()
	ctx := context.Background()
	ds, err := core.Create(ctx, storage.NewMemory(), "src")
	if err != nil {
		t.Fatal(err)
	}
	x, err := ds.CreateTensor(ctx, core.TensorSpec{Name: "x", Dtype: tensor.Int32, Bounds: smallBounds})
	if err != nil {
		t.Fatal(err)
	}
	y, err := ds.CreateTensor(ctx, core.TensorSpec{Name: "y", Dtype: tensor.Float64, Bounds: smallBounds})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := x.Append(ctx, tensor.Scalar(tensor.Int32, float64(i))); err != nil {
			t.Fatal(err)
		}
		if err := y.Append(ctx, tensor.Scalar(tensor.Float64, float64(i)*0.5)); err != nil {
			t.Fatal(err)
		}
	}
	return ds
}

func TestAllViewCoversDataset(t *testing.T) {
	ds := buildDataset(t)
	v := All(ds)
	if v.Len() != 20 {
		t.Fatalf("len = %d", v.Len())
	}
	if !reflect.DeepEqual(v.ColumnNames(), []string{"x", "y"}) {
		t.Fatalf("columns = %v", v.ColumnNames())
	}
	if v.IsSparse() {
		t.Fatal("identity view must not be sparse")
	}
	arr, err := v.At(context.Background(), 7, "x")
	if err != nil {
		t.Fatal(err)
	}
	if val, _ := arr.Item(); val != 7 {
		t.Fatalf("At(7, x) = %v", val)
	}
}

func TestSparseSelectionAndRow(t *testing.T) {
	ds := buildDataset(t)
	ctx := context.Background()
	v := New(ds, []uint64{3, 9, 15}, nil)
	if !v.IsSparse() || v.Len() != 3 {
		t.Fatalf("sparse=%v len=%d", v.IsSparse(), v.Len())
	}
	row, err := v.Row(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	xv, _ := row["x"].Item()
	yv, _ := row["y"].Item()
	if xv != 9 || yv != 4.5 {
		t.Fatalf("row 1 = x:%v y:%v", xv, yv)
	}
	if _, err := v.At(ctx, 5, "x"); err == nil {
		t.Fatal("row out of range should error")
	}
	if _, err := v.At(ctx, 0, "z"); err == nil {
		t.Fatal("unknown column should error")
	}
}

func TestComputedColumn(t *testing.T) {
	ds := buildDataset(t)
	ctx := context.Background()
	xt := ds.Tensor("x")
	v := New(ds, []uint64{0, 1, 2}, []Column{
		{Name: "x", Source: "x"},
		{Name: "x2", Eval: func(ctx context.Context, row uint64) (*tensor.NDArray, error) {
			arr, err := xt.At(ctx, row)
			if err != nil {
				return nil, err
			}
			return arr.Mul(tensor.Scalar(tensor.Float64, 2))
		}},
	})
	got, err := v.At(ctx, 2, "x2")
	if err != nil {
		t.Fatal(err)
	}
	if val, _ := got.Item(); val != 4 {
		t.Fatalf("x2[2] = %v", val)
	}
}

func TestSubview(t *testing.T) {
	ds := buildDataset(t)
	v := All(ds)
	sub, err := v.Subview(5, 10)
	if err != nil || sub.Len() != 5 {
		t.Fatalf("subview = %v, %v", sub, err)
	}
	src, _ := sub.SourceRow(0)
	if src != 5 {
		t.Fatalf("subview row 0 maps to %d", src)
	}
	if _, err := v.Subview(10, 5); err == nil {
		t.Fatal("inverted subview should error")
	}
	if _, err := v.Subview(0, 100); err == nil {
		t.Fatal("oversized subview should error")
	}
}

func TestMaterializeDensifiesSparseView(t *testing.T) {
	ds := buildDataset(t)
	ctx := context.Background()
	v := New(ds, []uint64{2, 4, 6, 8}, nil)
	dst := storage.NewMemory()
	out, err := Materialize(ctx, v, dst, MaterializeOptions{Name: "filtered"})
	if err != nil {
		t.Fatal(err)
	}
	if out.Name() != "filtered" || out.NumRows() != 4 {
		t.Fatalf("materialized: name=%q rows=%d", out.Name(), out.NumRows())
	}
	for i, want := range []float64{2, 4, 6, 8} {
		arr, err := out.Tensor("x").At(ctx, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if val, _ := arr.Item(); val != want {
			t.Fatalf("materialized x[%d] = %v, want %v", i, val, want)
		}
	}
	// Lineage: one commit recorded.
	log, err := out.Log()
	if err != nil || len(log) != 1 {
		t.Fatalf("log = %v, %v", log, err)
	}
	// Metadata carried over.
	if out.Tensor("x").Dtype() != tensor.Int32 {
		t.Fatalf("materialized dtype = %v", out.Tensor("x").Dtype())
	}
}

func TestResolverFetchAndRegistry(t *testing.T) {
	ctx := context.Background()
	bucket := storage.NewMemory()
	bucket.Put(ctx, "data/a.bin", []byte("payload"))
	r := NewResolver()
	r.Register("sim://bucket-a", bucket)

	got, err := r.Fetch(ctx, "sim://bucket-a/data/a.bin")
	if err != nil || string(got) != "payload" {
		t.Fatalf("Fetch = %q, %v", got, err)
	}
	if _, err := r.Fetch(ctx, "sim://unknown/b"); err == nil {
		t.Fatal("unregistered base should error")
	}
}

func TestLinkedColumnResolvesImages(t *testing.T) {
	ctx := context.Background()
	// External bucket with a PNG.
	bucket := storage.NewMemory()
	src := tensor.MustNew(tensor.UInt8, 5, 7, 3)
	for i := 0; i < src.Len(); i++ {
		src.SetAt(float64(i%255), i/(7*3), (i/3)%7, i%3)
	}
	png, err := encodePNG(src)
	if err != nil {
		t.Fatal(err)
	}
	bucket.Put(ctx, "imgs/0.png", png)

	resolver := NewResolver()
	resolver.Register("sim://ext", bucket)

	ds, _ := core.Create(ctx, storage.NewMemory(), "linked")
	links, err := ds.CreateTensor(ctx, core.TensorSpec{Name: "images", Htype: "link[image]"})
	if err != nil {
		t.Fatal(err)
	}
	if err := links.AppendLink(ctx, "sim://ext/imgs/0.png"); err != nil {
		t.Fatal(err)
	}

	v := New(ds, []uint64{0}, []Column{LinkedColumn("images", links, resolver)})
	got, err := v.At(ctx, 0, "images")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Shape(), []int{5, 7, 3}) {
		t.Fatalf("resolved shape = %v", got.Shape())
	}
	if !got.Equal(src) {
		t.Fatal("png link resolution must be lossless")
	}

	// Materializing the resolved view inlines the image.
	out, err := Materialize(ctx, v, storage.NewMemory(), MaterializeOptions{Name: "inlined"})
	if err != nil {
		t.Fatal(err)
	}
	inlined, err := out.Tensor("images").At(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(inlined.Shape(), []int{5, 7, 3}) {
		t.Fatalf("inlined shape = %v", inlined.Shape())
	}
}

func TestMaterializeIdentityLinkCopiesURL(t *testing.T) {
	ctx := context.Background()
	ds, _ := core.Create(ctx, storage.NewMemory(), "links")
	links, _ := ds.CreateTensor(ctx, core.TensorSpec{Name: "ext", Htype: "link[image]"})
	links.AppendLink(ctx, "sim://b/k.jpg")
	v := New(ds, []uint64{0}, []Column{{Name: "ext", Source: "ext"}})
	out, err := Materialize(ctx, v, storage.NewMemory(), MaterializeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	url, err := out.Tensor("ext").LinkAt(ctx, 0)
	if err != nil || url != "sim://b/k.jpg" {
		t.Fatalf("copied link = %q, %v", url, err)
	}
}

func encodePNG(arr *tensor.NDArray) ([]byte, error) {
	// Reuse the sample codec registry through a tiny indirection to avoid
	// an import cycle in tests.
	c, err := pngCodec()
	if err != nil {
		return nil, err
	}
	s := arr.Shape()
	return c.Encode(arr.Bytes(), s[0], s[1], s[2])
}
