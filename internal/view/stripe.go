package view

import "fmt"

// Stripe partitions a view across a fleet of consumers: rank r of world w
// receives rows r, r+w, r+2w, ... — the distributed-training sharding of
// §6.5 where each of 16 GPUs streams its own slice of the dataset.
//
// Stripe and Contiguous shard at the ROW level, before any loader exists;
// the streaming dataloader's LoaderOptions{Rank, WorldSize} shards the
// CHUNK visit order instead, which keeps each rank's fetches chunk-local
// and reshuffles the shards every epoch. Prefer the loader-level sharding
// for training fleets; these helpers remain for materializing per-node
// subsets and for consumers outside the dataloader.
func Stripe(v *View, rank, world int) (*View, error) {
	if world <= 0 || rank < 0 || rank >= world {
		return nil, fmt.Errorf("view: invalid stripe rank %d of world %d", rank, world)
	}
	var indices []uint64
	src := v.Indices()
	for i := rank; i < len(src); i += world {
		indices = append(indices, src[i])
	}
	return &View{ds: v.ds, indices: indices, columns: v.columns}, nil
}

// Contiguous partitions a view into world contiguous blocks, giving rank
// its block — chunk-friendlier than Stripe when consumers stream
// sequentially, since each rank touches a disjoint chunk range.
func Contiguous(v *View, rank, world int) (*View, error) {
	if world <= 0 || rank < 0 || rank >= world {
		return nil, fmt.Errorf("view: invalid partition rank %d of world %d", rank, world)
	}
	n := v.Len()
	per := n / world
	rem := n % world
	lo := rank*per + min(rank, rem)
	size := per
	if rank < rem {
		size++
	}
	return v.Subview(lo, lo+size)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
