package view

import "repro/internal/compress"

func pngCodec() (compress.SampleCodec, error) {
	return compress.SampleByName("png")
}
