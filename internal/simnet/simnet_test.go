package simnet

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestProfilesWellFormed(t *testing.T) {
	for _, p := range []Profile{Local(), S3SameRegion(), S3CrossRegion(), MinIOLAN()} {
		if p.Name == "" {
			t.Errorf("profile missing name: %+v", p)
		}
		if p.Lanes <= 0 {
			t.Errorf("%s: lanes must be positive", p.Name)
		}
		if p.ReadBytesPerSec <= 0 || p.WriteBytesPerSec <= 0 {
			t.Errorf("%s: bandwidth must be positive", p.Name)
		}
		if p.TimeScale <= 0 {
			t.Errorf("%s: time scale must be positive", p.Name)
		}
	}
}

func TestReadChargesLatencyAndBandwidth(t *testing.T) {
	p := Profile{
		Name:            "test",
		ReadLatency:     10 * time.Millisecond,
		ReadBytesPerSec: 1e6, // 1MB/s
		Lanes:           1,
		TimeScale:       1e9, // effectively no real sleeping
	}
	n := NewNetwork(p)
	if err := n.Read(context.Background(), 1_000_000); err != nil {
		t.Fatal(err)
	}
	_, _, out, sim := n.Stats()
	if out != 1_000_000 {
		t.Fatalf("bytesOut = %d, want 1000000", out)
	}
	want := 10*time.Millisecond + time.Second
	if sim != want {
		t.Fatalf("simulated = %v, want %v", sim, want)
	}
}

func TestWriteAccounting(t *testing.T) {
	n := NewNetwork(Profile{Name: "t", WriteLatency: time.Millisecond, WriteBytesPerSec: 1e6, Lanes: 2, TimeScale: 1e9})
	for i := 0; i < 5; i++ {
		if err := n.Write(context.Background(), 100); err != nil {
			t.Fatal(err)
		}
	}
	req, in, _, _ := n.Stats()
	if req != 5 || in != 500 {
		t.Fatalf("requests=%d bytesIn=%d, want 5, 500", req, in)
	}
}

func TestLaneContention(t *testing.T) {
	// With one lane and a measurable scaled delay, two concurrent reads
	// must serialize: total wall time >= 2 * per-request time.
	p := Profile{
		Name:        "serial",
		ReadLatency: 20 * time.Millisecond,
		Lanes:       1,
		TimeScale:   2, // each request sleeps 10ms real time
	}
	n := NewNetwork(p)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := n.Read(context.Background(), 0); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if el := time.Since(start); el < 18*time.Millisecond {
		t.Fatalf("two requests on one lane finished in %v; expected serialization >= ~20ms", el)
	}
}

func TestParallelLanesOverlap(t *testing.T) {
	p := Profile{
		Name:        "parallel",
		ReadLatency: 20 * time.Millisecond,
		Lanes:       8,
		TimeScale:   2, // 10ms real per request
	}
	n := NewNetwork(p)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := n.Read(context.Background(), 0); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if el := time.Since(start); el > 60*time.Millisecond {
		t.Fatalf("8 requests on 8 lanes took %v; expected overlap well under 80ms", el)
	}
}

func TestContextCancellation(t *testing.T) {
	p := Profile{Name: "slow", ReadLatency: time.Hour, Lanes: 1, TimeScale: 1}
	n := NewNetwork(p)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- n.Read(ctx, 0) }()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("read did not observe cancellation")
	}
}

func TestCancelledWhileQueuedForLane(t *testing.T) {
	p := Profile{Name: "busy", ReadLatency: time.Hour, Lanes: 1, TimeScale: 1}
	n := NewNetwork(p)
	// Occupy the only lane.
	bg, cancelBG := context.WithCancel(context.Background())
	defer cancelBG()
	go n.Read(bg, 0)
	time.Sleep(5 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := n.Read(ctx, 0); err != context.DeadlineExceeded {
		t.Fatalf("queued read err = %v, want deadline exceeded", err)
	}
}

func TestZeroByteCosts(t *testing.T) {
	if d := bytesDuration(0, 1e6); d != 0 {
		t.Fatalf("bytesDuration(0) = %v, want 0", d)
	}
	if d := bytesDuration(100, 0); d != 0 {
		t.Fatalf("bytesDuration with zero bandwidth = %v, want 0", d)
	}
}
