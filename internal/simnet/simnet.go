// Package simnet models the latency and bandwidth characteristics of the
// storage backends used in the paper's evaluation (local filesystem, AWS S3
// same-region, S3 cross-region, MinIO over a local network).
//
// The paper measures how the Tensor Storage Format's layout interacts with
// storage cost: many small GETs are punished by per-request latency, while
// large range reads amortize it against bandwidth. simnet reproduces exactly
// that cost model as an in-process simulator so the benchmarks run without
// cloud credentials: each request pays a first-byte latency plus a per-byte
// transfer time, and only a bounded number of requests progress concurrently
// (S3-style connection lanes).
//
// All simulated durations are divided by the profile's TimeScale so that the
// benchmark suite finishes quickly while preserving relative ordering.
package simnet

import (
	"context"
	"math"
	"sync"
	"time"
)

// Profile describes the cost model of one storage location.
type Profile struct {
	// Name identifies the location in benchmark output (e.g. "s3").
	Name string
	// ReadLatency is the per-request time to first byte for reads.
	ReadLatency time.Duration
	// WriteLatency is the per-request time to first byte for writes.
	WriteLatency time.Duration
	// ReadBytesPerSec is the per-lane read bandwidth.
	ReadBytesPerSec float64
	// WriteBytesPerSec is the per-lane write bandwidth.
	WriteBytesPerSec float64
	// Lanes is the number of requests that may progress concurrently.
	// Additional requests queue, as they would behind an HTTP connection
	// pool.
	Lanes int
	// TimeScale divides every simulated duration. 1 = real time; 100 =
	// hundredfold speedup. Zero means 1.
	TimeScale float64
}

// Standard profiles. Magnitudes follow public S3/GCS latency figures and the
// paper's setup (MinIO on another machine in a local network, which the paper
// reports as slower for streaming than S3); TimeScale compresses them so a
// full figure regeneration takes seconds.
const defaultTimeScale = 200

// Local is a fast NVMe-like local filesystem: negligible request latency,
// high bandwidth, effectively unlimited parallelism.
func Local() Profile {
	return Profile{
		Name:             "local",
		ReadLatency:      80 * time.Microsecond,
		WriteLatency:     120 * time.Microsecond,
		ReadBytesPerSec:  2.0e9,
		WriteBytesPerSec: 1.5e9,
		Lanes:            64,
		TimeScale:        defaultTimeScale,
	}
}

// S3SameRegion models an S3 bucket in the same region as the compute
// instance: ~15ms first byte, ~90MB/s per connection, wide parallelism.
func S3SameRegion() Profile {
	return Profile{
		Name:             "s3",
		ReadLatency:      15 * time.Millisecond,
		WriteLatency:     25 * time.Millisecond,
		ReadBytesPerSec:  90e6,
		WriteBytesPerSec: 70e6,
		Lanes:            48,
		TimeScale:        defaultTimeScale,
	}
}

// S3CrossRegion models the Fig 10 setup: bucket in us-east, GPUs in
// us-central. Higher round-trip latency, lower per-lane throughput.
func S3CrossRegion() Profile {
	return Profile{
		Name:             "s3-cross-region",
		ReadLatency:      55 * time.Millisecond,
		WriteLatency:     70 * time.Millisecond,
		ReadBytesPerSec:  45e6,
		WriteBytesPerSec: 35e6,
		Lanes:            48,
		TimeScale:        defaultTimeScale,
	}
}

// MinIOLAN models MinIO running on another machine in a local network: low
// request latency but a single 1GbE link shared by few lanes, which is the
// regime where the paper observes both Deep Lake and WebDataset slowing down
// relative to S3.
func MinIOLAN() Profile {
	return Profile{
		Name:             "minio-lan",
		ReadLatency:      2 * time.Millisecond,
		WriteLatency:     3 * time.Millisecond,
		ReadBytesPerSec:  25e6,
		WriteBytesPerSec: 20e6,
		Lanes:            4,
		TimeScale:        defaultTimeScale,
	}
}

// Network is a shared simulated transport: a lane pool plus a cost function.
// One Network instance stands for one storage endpoint; all goroutines
// touching that endpoint contend for its lanes, exactly like a connection
// pool in an SDK.
type Network struct {
	profile Profile
	lanes   chan struct{}

	mu        sync.Mutex
	simulated time.Duration // total simulated time spent, pre-scaling
	requests  int64
	bytesIn   int64
	bytesOut  int64
}

// NewNetwork creates a transport with the given profile.
func NewNetwork(p Profile) *Network {
	if p.Lanes <= 0 {
		p.Lanes = 1
	}
	if p.TimeScale <= 0 {
		p.TimeScale = 1
	}
	return &Network{
		profile: p,
		lanes:   make(chan struct{}, p.Lanes),
	}
}

// Profile returns the cost model this network simulates.
func (n *Network) Profile() Profile { return n.profile }

// Read charges the cost of reading size bytes in one request.
func (n *Network) Read(ctx context.Context, size int) error {
	d := n.profile.ReadLatency + bytesDuration(size, n.profile.ReadBytesPerSec)
	if err := n.charge(ctx, d); err != nil {
		return err
	}
	n.mu.Lock()
	n.requests++
	n.bytesOut += int64(size)
	n.mu.Unlock()
	return nil
}

// Write charges the cost of writing size bytes in one request.
func (n *Network) Write(ctx context.Context, size int) error {
	d := n.profile.WriteLatency + bytesDuration(size, n.profile.WriteBytesPerSec)
	if err := n.charge(ctx, d); err != nil {
		return err
	}
	n.mu.Lock()
	n.requests++
	n.bytesIn += int64(size)
	n.mu.Unlock()
	return nil
}

// Stats reports cumulative simulated traffic.
func (n *Network) Stats() (requests, bytesIn, bytesOut int64, simulated time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.requests, n.bytesIn, n.bytesOut, n.simulated
}

// charge occupies a lane for the scaled duration d.
func (n *Network) charge(ctx context.Context, d time.Duration) error {
	select {
	case n.lanes <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	defer func() { <-n.lanes }()

	n.mu.Lock()
	n.simulated += d
	n.mu.Unlock()

	scaled := time.Duration(float64(d) / n.profile.TimeScale)
	if scaled <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(scaled)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func bytesDuration(size int, bytesPerSec float64) time.Duration {
	if bytesPerSec <= 0 || size <= 0 {
		return 0
	}
	sec := float64(size) / bytesPerSec
	if math.IsInf(sec, 0) || math.IsNaN(sec) {
		return 0
	}
	return time.Duration(sec * float64(time.Second))
}
