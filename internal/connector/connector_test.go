package connector

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/tensor"
)

func newDS(t *testing.T) *core.Dataset {
	t.Helper()
	ds, err := core.Create(context.Background(), storage.NewMemory(), "etl")
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestCSVSync(t *testing.T) {
	ctx := context.Background()
	ds := newDS(t)
	csv := "id,name,score\n1,apple,0.9\n2,banana,0.75\n3,cherry,1\n"
	stats, err := Sync(ctx, CSVSource{SourceName: "fruits", R: strings.NewReader(csv)}, ds,
		SyncOptions{CreateTensors: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 3 {
		t.Fatalf("records = %d", stats.Records)
	}
	// Inferred schemas: id int64, name text, score float64 (first row
	// decides; "1" in score row 3 still lands as float64 scalar).
	idT := ds.Tensor("id")
	if idT == nil || idT.Dtype() != tensor.Int64 {
		t.Fatalf("id tensor = %v", idT)
	}
	nameT := ds.Tensor("name")
	if nameT == nil || nameT.Htype().Base.Name != "text" {
		t.Fatalf("name tensor htype = %v", nameT.Htype())
	}
	arr, err := nameT.At(ctx, 1)
	if err != nil || arr.AsString() != "banana" {
		t.Fatalf("name[1] = %q, %v", arr.AsString(), err)
	}
	score, _ := ds.Tensor("score").At(ctx, 2)
	if v, _ := score.Item(); v != 1 {
		t.Fatalf("score[2] = %v", v)
	}
}

func TestJSONLSync(t *testing.T) {
	ctx := context.Background()
	ds := newDS(t)
	jsonl := `{"label": 3, "caption": "a cat"}
{"label": 5, "caption": "a dog"}`
	stats, err := Sync(ctx, JSONLSource{SourceName: "meta", R: strings.NewReader(jsonl)}, ds,
		SyncOptions{CreateTensors: true, CommitMessage: "initial sync"})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 2 || stats.Commit == "" {
		t.Fatalf("stats = %+v", stats)
	}
	lbl, _ := ds.Tensor("label").At(ctx, 1)
	if v, _ := lbl.Item(); v != 5 {
		t.Fatalf("label[1] = %v", v)
	}
	// Commit recorded.
	log, err := ds.Log()
	if err != nil || len(log) != 1 || log[0].Message != "initial sync" {
		t.Fatalf("log = %v, %v", log, err)
	}
}

func TestSQLTableSourceWithPredicate(t *testing.T) {
	ctx := context.Background()
	ds := newDS(t)
	src := SQLTableSource{
		Table:   "annotations",
		Columns: []string{"image_id", "quality"},
		Rows: [][]any{
			{int64(1), 0.9},
			{int64(2), 0.2},
			{int64(3), 0.95},
		},
		Where: func(r Record) bool { return r["quality"].(float64) > 0.5 },
	}
	stats, err := Sync(ctx, src, ds, SyncOptions{CreateTensors: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 2 {
		t.Fatalf("filtered records = %d, want 2", stats.Records)
	}
	ids := ds.Tensor("image_id")
	v0, _ := ids.At(ctx, 0)
	v1, _ := ids.At(ctx, 1)
	a, _ := v0.Item()
	b, _ := v1.Item()
	if a != 1 || b != 3 {
		t.Fatalf("ids = %v, %v", a, b)
	}
}

func TestMappingsSelectAndRename(t *testing.T) {
	ctx := context.Background()
	ds := newDS(t)
	csv := "a,b,c\n1,2,3\n4,5,6\n"
	_, err := Sync(ctx, CSVSource{SourceName: "t", R: strings.NewReader(csv)}, ds, SyncOptions{
		CreateTensors: true,
		Mappings:      []FieldMapping{{Column: "a", Tensor: "alpha"}, {Column: "c"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Tensor("alpha") == nil || ds.Tensor("c") == nil {
		t.Fatal("mapped tensors missing")
	}
	if ds.Tensor("b") != nil {
		t.Fatal("unmapped column should not sync")
	}
	arr, _ := ds.Tensor("alpha").At(ctx, 1)
	if v, _ := arr.Item(); v != 4 {
		t.Fatalf("alpha[1] = %v", v)
	}
}

func TestSyncErrors(t *testing.T) {
	ctx := context.Background()
	ds := newDS(t)
	// Missing column in mapping.
	csv := "a\n1\n"
	_, err := Sync(ctx, CSVSource{SourceName: "t", R: strings.NewReader(csv)}, ds, SyncOptions{
		CreateTensors: true,
		Mappings:      []FieldMapping{{Column: "zz"}},
	})
	if err == nil {
		t.Fatal("missing column should error")
	}
	// Existing tensor required when CreateTensors is false.
	_, err = Sync(ctx, CSVSource{SourceName: "t", R: strings.NewReader("a\n1\n")}, ds, SyncOptions{})
	if err == nil {
		t.Fatal("missing tensor without CreateTensors should error")
	}
	// Malformed CSV.
	_, err = Sync(ctx, CSVSource{SourceName: "t", R: strings.NewReader("")}, ds, SyncOptions{CreateTensors: true})
	if err == nil {
		t.Fatal("empty csv should error on header")
	}
	// SQL row width mismatch.
	src := SQLTableSource{Table: "x", Columns: []string{"a", "b"}, Rows: [][]any{{1}}}
	if _, err := Sync(ctx, src, ds, SyncOptions{CreateTensors: true}); err == nil {
		t.Fatal("row width mismatch should error")
	}
}

func TestStringToNumericConversion(t *testing.T) {
	ctx := context.Background()
	ds := newDS(t)
	if _, err := ds.CreateTensor(ctx, core.TensorSpec{Name: "n", Dtype: tensor.Float64}); err != nil {
		t.Fatal(err)
	}
	src := SQLTableSource{Table: "t", Columns: []string{"n"}, Rows: [][]any{{"3.5"}}}
	if _, err := Sync(ctx, src, ds, SyncOptions{}); err != nil {
		t.Fatal(err)
	}
	arr, _ := ds.Tensor("n").At(ctx, 0)
	if v, _ := arr.Item(); v != 3.5 {
		t.Fatalf("n[0] = %v", v)
	}
	// Unparseable string into numeric tensor errors.
	src2 := SQLTableSource{Table: "t", Columns: []string{"n"}, Rows: [][]any{{"abc"}}}
	if _, err := Sync(ctx, src2, ds, SyncOptions{}); err == nil {
		t.Fatal("non-numeric string should error")
	}
}
