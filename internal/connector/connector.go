// Package connector implements the ETL destination-connector protocol of
// §4.1.1: pluggable sources (CSV, JSON-lines, simulated SQL tables — the
// stand-ins for Airbyte's source catalogue) whose records are transformed
// into a columnar form and synchronized into Deep Lake tensors.
package connector

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/tensor"
)

// Record is one source row: column name to value. Values are string,
// float64, int64, bool or []byte.
type Record map[string]any

// Source produces records, the connector protocol's extract side.
type Source interface {
	// Name identifies the source in logs.
	Name() string
	// Read streams every record to fn in order.
	Read(ctx context.Context, fn func(Record) error) error
}

// CSVSource reads comma-separated data with a header row.
type CSVSource struct {
	// SourceName labels the source.
	SourceName string
	// R supplies the CSV text.
	R io.Reader
}

// Name implements Source.
func (s CSVSource) Name() string { return s.SourceName }

// Read implements Source. Numeric-looking fields are converted to numbers.
func (s CSVSource) Read(ctx context.Context, fn func(Record) error) error {
	r := csv.NewReader(s.R)
	header, err := r.Read()
	if err != nil {
		return fmt.Errorf("connector: csv header: %w", err)
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		row, err := r.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		rec := Record{}
		for i, col := range header {
			if i >= len(row) {
				continue
			}
			rec[col] = coerce(row[i])
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}

// coerce converts a CSV cell into int64, float64 or string.
func coerce(cell string) any {
	if v, err := strconv.ParseInt(cell, 10, 64); err == nil {
		return v
	}
	if v, err := strconv.ParseFloat(cell, 64); err == nil {
		return v
	}
	return cell
}

// JSONLSource reads one JSON object per line.
type JSONLSource struct {
	SourceName string
	R          io.Reader
}

// Name implements Source.
func (s JSONLSource) Name() string { return s.SourceName }

// Read implements Source.
func (s JSONLSource) Read(ctx context.Context, fn func(Record) error) error {
	dec := json.NewDecoder(s.R)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var rec map[string]any
		err := dec.Decode(&rec)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		out := Record{}
		for k, v := range rec {
			switch t := v.(type) {
			case float64:
				if t == float64(int64(t)) {
					out[k] = int64(t)
				} else {
					out[k] = t
				}
			default:
				out[k] = v
			}
		}
		if err := fn(out); err != nil {
			return err
		}
	}
}

// SQLTableSource simulates a relational-database source: an in-memory
// table with an optional predicate, standing in for "metadata might
// already reside in a relational database" (§4.1.1).
type SQLTableSource struct {
	Table   string
	Columns []string
	Rows    [][]any
	// Where optionally filters rows before emission.
	Where func(Record) bool
}

// Name implements Source.
func (s SQLTableSource) Name() string { return "sql:" + s.Table }

// Read implements Source.
func (s SQLTableSource) Read(ctx context.Context, fn func(Record) error) error {
	for _, row := range s.Rows {
		if err := ctx.Err(); err != nil {
			return err
		}
		if len(row) != len(s.Columns) {
			return fmt.Errorf("connector: row width %d != %d columns", len(row), len(s.Columns))
		}
		rec := Record{}
		for i, col := range s.Columns {
			rec[col] = row[i]
		}
		if s.Where != nil && !s.Where(rec) {
			continue
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
	return nil
}

// FieldMapping maps one source column to a destination tensor.
type FieldMapping struct {
	// Column is the source column name.
	Column string
	// Tensor is the destination tensor name; empty reuses Column.
	Tensor string
}

// SyncOptions configures Sync.
type SyncOptions struct {
	// Mappings selects and renames columns; nil syncs every column of
	// the first record under its own name.
	Mappings []FieldMapping
	// CreateTensors creates missing destination tensors (text for
	// strings, float64/int64 scalars for numbers).
	CreateTensors bool
	// CommitMessage commits the sync when non-empty.
	CommitMessage string
}

// SyncStats reports a Sync run.
type SyncStats struct {
	Records int
	Commit  string
}

// Sync pulls every record from src into ds, converting values into the
// columnar tensor form (the connector protocol's load side).
func Sync(ctx context.Context, src Source, ds *core.Dataset, opts SyncOptions) (SyncStats, error) {
	var stats SyncStats
	mappings := opts.Mappings
	err := src.Read(ctx, func(rec Record) error {
		if mappings == nil {
			for col := range rec {
				mappings = append(mappings, FieldMapping{Column: col})
			}
			sortMappings(mappings)
		}
		for _, m := range mappings {
			name := m.Tensor
			if name == "" {
				name = m.Column
			}
			val, ok := rec[m.Column]
			if !ok {
				return fmt.Errorf("connector: record missing column %q", m.Column)
			}
			t := ds.Tensor(name)
			if t == nil {
				if !opts.CreateTensors {
					return fmt.Errorf("connector: tensor %q does not exist", name)
				}
				spec := specFor(name, val)
				var err error
				t, err = ds.CreateTensor(ctx, spec)
				if err != nil {
					return err
				}
			}
			arr, err := toArray(val, t)
			if err != nil {
				return fmt.Errorf("connector: column %q: %w", m.Column, err)
			}
			if err := t.Append(ctx, arr); err != nil {
				return err
			}
		}
		stats.Records++
		return nil
	})
	if err != nil {
		return stats, err
	}
	if opts.CommitMessage != "" {
		commit, err := ds.Commit(ctx, opts.CommitMessage)
		if err != nil {
			return stats, err
		}
		stats.Commit = commit
	} else if err := ds.Flush(ctx); err != nil {
		return stats, err
	}
	return stats, nil
}

func sortMappings(ms []FieldMapping) {
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && ms[j].Column < ms[j-1].Column; j-- {
			ms[j], ms[j-1] = ms[j-1], ms[j]
		}
	}
}

// specFor infers a tensor spec from the first value of a column.
func specFor(name string, val any) core.TensorSpec {
	switch val.(type) {
	case string:
		return core.TensorSpec{Name: name, Htype: "text"}
	case int64:
		return core.TensorSpec{Name: name, Dtype: tensor.Int64}
	case float64:
		return core.TensorSpec{Name: name, Dtype: tensor.Float64}
	case bool:
		return core.TensorSpec{Name: name, Dtype: tensor.Bool}
	case []byte:
		return core.TensorSpec{Name: name, Htype: "json"}
	}
	return core.TensorSpec{Name: name, Htype: "text"}
}

// toArray converts one record value into the destination tensor's sample
// form.
func toArray(val any, t *core.Tensor) (*tensor.NDArray, error) {
	switch v := val.(type) {
	case string:
		if t.Htype().Base.Name == "text" {
			return tensor.FromString(v), nil
		}
		// Numeric tensor fed a string: parse.
		f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		if err != nil {
			return nil, fmt.Errorf("cannot convert %q to %s", v, t.Dtype())
		}
		return tensor.Scalar(t.Dtype(), f), nil
	case int64:
		if t.Htype().Base.Name == "text" {
			return tensor.FromString(strconv.FormatInt(v, 10)), nil
		}
		return tensor.Scalar(t.Dtype(), float64(v)), nil
	case float64:
		if t.Htype().Base.Name == "text" {
			return tensor.FromString(strconv.FormatFloat(v, 'g', -1, 64)), nil
		}
		return tensor.Scalar(t.Dtype(), v), nil
	case bool:
		f := 0.0
		if v {
			f = 1
		}
		return tensor.Scalar(t.Dtype(), f), nil
	case []byte:
		arr, err := tensor.FromBytes(tensor.UInt8, []int{len(v)}, append([]byte(nil), v...))
		return arr, err
	case nil:
		return tensor.FromString(""), nil
	}
	return nil, fmt.Errorf("unsupported value type %T", val)
}
