package baselines

import (
	"context"
	"encoding/binary"
	"fmt"

	"repro/internal/storage"
)

// FileSample is the layout most teams start with: one object per sample
// (img_00000042.jpg) plus a labels file, consumed by a naive per-sample
// loader — the "native PyTorch dataloader" bar in Fig 7 and the
// object-storage worst case in Fig 8, where per-request latency is paid
// once per image.
type FileSample struct{}

// Name implements Format.
func (FileSample) Name() string { return "filesample" }

func fileKey(i int, encoding string) string {
	ext := "bin"
	if encoding == "jpeg" {
		ext = "jpg"
	}
	return fmt.Sprintf("img_%08d.%s", i, ext)
}

const fileManifestKey = "manifest.bin"

// Write implements Format: one PUT per sample plus a manifest holding
// labels, shapes and encodings.
func (FileSample) Write(ctx context.Context, store storage.Provider, samples []Sample) error {
	manifest := binary.LittleEndian.AppendUint32(nil, uint32(len(samples)))
	for _, s := range samples {
		if err := store.Put(ctx, fileKey(s.Index, s.Encoding), s.Data); err != nil {
			return err
		}
		manifest = binary.LittleEndian.AppendUint32(manifest, uint32(s.Index))
		manifest = binary.LittleEndian.AppendUint32(manifest, uint32(s.Label))
		enc := byte(0)
		if s.Encoding == "jpeg" {
			enc = 1
		}
		manifest = append(manifest, enc, byte(len(s.Shape)))
		for _, d := range s.Shape {
			manifest = binary.LittleEndian.AppendUint32(manifest, uint32(d))
		}
	}
	return store.Put(ctx, fileManifestKey, manifest)
}

type fileEntry struct {
	index    int
	label    int32
	encoding string
	shape    []int
}

func parseManifest(blob []byte) ([]fileEntry, error) {
	if len(blob) < 4 {
		return nil, fmt.Errorf("filesample: short manifest")
	}
	n := int(binary.LittleEndian.Uint32(blob))
	p := 4
	out := make([]fileEntry, 0, n)
	for i := 0; i < n; i++ {
		if p+10 > len(blob) {
			return nil, fmt.Errorf("filesample: truncated manifest")
		}
		e := fileEntry{
			index: int(binary.LittleEndian.Uint32(blob[p:])),
			label: int32(binary.LittleEndian.Uint32(blob[p+4:])),
		}
		e.encoding = "raw"
		if blob[p+8] == 1 {
			e.encoding = "jpeg"
		}
		rank := int(blob[p+9])
		p += 10
		if p+rank*4 > len(blob) {
			return nil, fmt.Errorf("filesample: truncated shape")
		}
		e.shape = make([]int, rank)
		for k := range e.shape {
			e.shape[k] = int(binary.LittleEndian.Uint32(blob[p:]))
			p += 4
		}
		out = append(out, e)
	}
	return out, nil
}

// Iterate implements Format: workers fetch one object per sample — the
// request-per-image pattern whose latency cost §2.3 describes.
func (FileSample) Iterate(ctx context.Context, store storage.Provider, workers int, fn func(Sample) error) error {
	blob, err := store.Get(ctx, fileManifestKey)
	if err != nil {
		return err
	}
	entries, err := parseManifest(blob)
	if err != nil {
		return err
	}
	return runWorkers(ctx, workers, entries, func(e fileEntry) error {
		data, err := store.Get(ctx, fileKey(e.index, e.encoding))
		if err != nil {
			return err
		}
		s, err := decodeToRaw(Sample{Index: e.index, Data: data, Shape: e.shape, Encoding: e.encoding, Label: e.label})
		if err != nil {
			return err
		}
		return fn(s)
	})
}
