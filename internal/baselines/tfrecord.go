package baselines

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/storage"
)

// TFRecord reproduces TensorFlow's record stream: length-prefixed records
// with masked CRC32-C checksums over both the length and the payload,
// written as a handful of sequential record files. Records hold a minimal
// feature encoding (image bytes, shape, encoding flag, label) standing in
// for the protobuf Example message.
type TFRecord struct {
	// RecordsPerFile splits the stream (default 1024).
	RecordsPerFile int
}

// Name implements Format.
func (TFRecord) Name() string { return "tfrecord" }

func (t TFRecord) perFile() int {
	if t.RecordsPerFile <= 0 {
		return 1024
	}
	return t.RecordsPerFile
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// maskedCRC implements TFRecord's masked checksum.
func maskedCRC(data []byte) uint32 {
	c := crc32.Checksum(data, castagnoli)
	return ((c >> 15) | (c << 17)) + 0xa282ead8
}

func tfrecordKey(i int) string { return fmt.Sprintf("part-%05d.tfrecord", i) }

// encodeExample packs a sample into the mini-Example payload.
func encodeExample(s Sample) []byte {
	out := make([]byte, 0, len(s.Data)+32)
	enc := byte(0)
	if s.Encoding == "jpeg" {
		enc = 1
	}
	out = append(out, enc)
	out = binary.LittleEndian.AppendUint32(out, uint32(s.Label))
	out = binary.LittleEndian.AppendUint32(out, uint32(s.Index))
	out = append(out, byte(len(s.Shape)))
	for _, d := range s.Shape {
		out = binary.LittleEndian.AppendUint32(out, uint32(d))
	}
	return append(out, s.Data...)
}

func decodeExample(payload []byte) (Sample, error) {
	if len(payload) < 10 {
		return Sample{}, fmt.Errorf("tfrecord: short example")
	}
	s := Sample{Encoding: "raw"}
	if payload[0] == 1 {
		s.Encoding = "jpeg"
	}
	s.Label = int32(binary.LittleEndian.Uint32(payload[1:]))
	s.Index = int(binary.LittleEndian.Uint32(payload[5:]))
	rank := int(payload[9])
	p := 10
	if len(payload) < p+rank*4 {
		return Sample{}, fmt.Errorf("tfrecord: truncated shape")
	}
	s.Shape = make([]int, rank)
	for i := range s.Shape {
		s.Shape[i] = int(binary.LittleEndian.Uint32(payload[p:]))
		p += 4
	}
	s.Data = payload[p:]
	return s, nil
}

// Write implements Format.
func (t TFRecord) Write(ctx context.Context, store storage.Provider, samples []Sample) error {
	var out []byte
	file := 0
	inFile := 0
	flush := func() error {
		if len(out) == 0 {
			return nil
		}
		if err := store.Put(ctx, tfrecordKey(file), out); err != nil {
			return err
		}
		file++
		out = nil
		inFile = 0
		return nil
	}
	var lenBuf [8]byte
	for _, s := range samples {
		payload := encodeExample(s)
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(payload)))
		out = append(out, lenBuf[:]...)
		out = binary.LittleEndian.AppendUint32(out, maskedCRC(lenBuf[:]))
		out = append(out, payload...)
		out = binary.LittleEndian.AppendUint32(out, maskedCRC(payload))
		inFile++
		if inFile >= t.perFile() {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

// Iterate implements Format: record files stream sequentially across
// workers; every checksum is verified, as TensorFlow's reader does.
func (t TFRecord) Iterate(ctx context.Context, store storage.Provider, workers int, fn func(Sample) error) error {
	files, err := store.List(ctx, "part-")
	if err != nil {
		return err
	}
	return runWorkers(ctx, workers, files, func(key string) error {
		blob, err := store.Get(ctx, key)
		if err != nil {
			return err
		}
		p := 0
		for p < len(blob) {
			if p+12 > len(blob) {
				return fmt.Errorf("tfrecord: truncated length header")
			}
			lenBytes := blob[p : p+8]
			n := int(binary.LittleEndian.Uint64(lenBytes))
			if crc := binary.LittleEndian.Uint32(blob[p+8:]); crc != maskedCRC(lenBytes) {
				return fmt.Errorf("tfrecord: length crc mismatch")
			}
			p += 12
			if p+n+4 > len(blob) {
				return fmt.Errorf("tfrecord: truncated record")
			}
			payload := blob[p : p+n]
			if crc := binary.LittleEndian.Uint32(blob[p+n:]); crc != maskedCRC(payload) {
				return fmt.Errorf("tfrecord: payload crc mismatch")
			}
			p += n + 4
			s, err := decodeExample(payload)
			if err != nil {
				return err
			}
			s, err = decodeToRaw(s)
			if err != nil {
				return err
			}
			if err := fn(s); err != nil {
				return err
			}
		}
		return nil
	})
}
