package baselines

import (
	"context"
	"encoding/binary"
	"fmt"

	"repro/internal/storage"
)

// Beton reproduces the essential layout of FFCV's .beton format: one binary
// file with a fixed header, a full sample index table (offset, length,
// encoding, label, shape) up front, and the sample payloads behind it. The
// index enables random access and page-aligned parallel reads, which is why
// FFCV loads fast locally; the cost is a single-file write path.
type Beton struct{}

// Name implements Format.
func (Beton) Name() string { return "beton" }

const (
	betonKey     = "dataset.beton"
	betonMagic   = "BETN"
	betonVersion = 1
	// betonIndexEntry is the fixed index entry size: offset(8) length(8)
	// encoding(1) label(4) rank(1) dims(3*4).
	betonIndexEntry = 8 + 8 + 1 + 4 + 1 + 12
)

// Write implements Format.
func (Beton) Write(ctx context.Context, store storage.Provider, samples []Sample) error {
	headerLen := 4 + 2 + 4
	indexLen := len(samples) * betonIndexEntry
	var payload int
	for _, s := range samples {
		payload += len(s.Data)
	}
	out := make([]byte, 0, headerLen+indexLen+payload)
	out = append(out, betonMagic...)
	out = binary.LittleEndian.AppendUint16(out, betonVersion)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(samples)))
	offset := uint64(headerLen + indexLen)
	for _, s := range samples {
		out = binary.LittleEndian.AppendUint64(out, offset)
		out = binary.LittleEndian.AppendUint64(out, uint64(len(s.Data)))
		enc := byte(0)
		if s.Encoding == "jpeg" {
			enc = 1
		}
		out = append(out, enc)
		out = binary.LittleEndian.AppendUint32(out, uint32(s.Label))
		if len(s.Shape) > 3 {
			return fmt.Errorf("beton: rank %d unsupported", len(s.Shape))
		}
		out = append(out, byte(len(s.Shape)))
		var dims [3]uint32
		for i, d := range s.Shape {
			dims[i] = uint32(d)
		}
		for _, d := range dims {
			out = binary.LittleEndian.AppendUint32(out, d)
		}
		offset += uint64(len(s.Data))
	}
	for _, s := range samples {
		out = append(out, s.Data...)
	}
	return store.Put(ctx, betonKey, out)
}

// Iterate implements Format: the index table is fetched once, then workers
// random-access sample payloads with byte-range reads (FFCV's quasi-random
// page loading).
func (Beton) Iterate(ctx context.Context, store storage.Provider, workers int, fn func(Sample) error) error {
	head, err := store.GetRange(ctx, betonKey, 0, 10)
	if err != nil {
		return err
	}
	if len(head) < 10 || string(head[:4]) != betonMagic {
		return fmt.Errorf("beton: bad header")
	}
	if v := binary.LittleEndian.Uint16(head[4:]); v != betonVersion {
		return fmt.Errorf("beton: unsupported version %d", v)
	}
	n := int(binary.LittleEndian.Uint32(head[6:]))
	index, err := store.GetRange(ctx, betonKey, 10, int64(n*betonIndexEntry))
	if err != nil {
		return err
	}
	if len(index) != n*betonIndexEntry {
		return fmt.Errorf("beton: truncated index")
	}
	jobs := make([]int, n)
	for i := range jobs {
		jobs[i] = i
	}
	return runWorkers(ctx, workers, jobs, func(i int) error {
		e := index[i*betonIndexEntry:]
		off := binary.LittleEndian.Uint64(e)
		length := binary.LittleEndian.Uint64(e[8:])
		enc := "raw"
		if e[16] == 1 {
			enc = "jpeg"
		}
		label := int32(binary.LittleEndian.Uint32(e[17:]))
		rank := int(e[21])
		shape := make([]int, rank)
		for k := 0; k < rank; k++ {
			shape[k] = int(binary.LittleEndian.Uint32(e[22+k*4:]))
		}
		data, err := store.GetRange(ctx, betonKey, int64(off), int64(length))
		if err != nil {
			return err
		}
		s, err := decodeToRaw(Sample{Index: i, Data: data, Shape: shape, Encoding: enc, Label: label})
		if err != nil {
			return err
		}
		return fn(s)
	})
}
