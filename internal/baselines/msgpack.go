package baselines

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Minimal MessagePack encoder/decoder covering the types Squirrel-style
// sample dicts need: maps with string keys, strings, binary blobs, signed
// integers and arrays of integers. Implemented from the MessagePack spec.

// mpEncoder appends MessagePack values to a buffer.
type mpEncoder struct {
	buf []byte
}

func (e *mpEncoder) mapHeader(n int) {
	switch {
	case n <= 15:
		e.buf = append(e.buf, 0x80|byte(n))
	case n <= math.MaxUint16:
		e.buf = append(e.buf, 0xde)
		e.buf = binary.BigEndian.AppendUint16(e.buf, uint16(n))
	default:
		e.buf = append(e.buf, 0xdf)
		e.buf = binary.BigEndian.AppendUint32(e.buf, uint32(n))
	}
}

func (e *mpEncoder) arrayHeader(n int) {
	switch {
	case n <= 15:
		e.buf = append(e.buf, 0x90|byte(n))
	case n <= math.MaxUint16:
		e.buf = append(e.buf, 0xdc)
		e.buf = binary.BigEndian.AppendUint16(e.buf, uint16(n))
	default:
		e.buf = append(e.buf, 0xdd)
		e.buf = binary.BigEndian.AppendUint32(e.buf, uint32(n))
	}
}

func (e *mpEncoder) str(s string) {
	n := len(s)
	switch {
	case n <= 31:
		e.buf = append(e.buf, 0xa0|byte(n))
	case n <= math.MaxUint8:
		e.buf = append(e.buf, 0xd9, byte(n))
	case n <= math.MaxUint16:
		e.buf = append(e.buf, 0xda)
		e.buf = binary.BigEndian.AppendUint16(e.buf, uint16(n))
	default:
		e.buf = append(e.buf, 0xdb)
		e.buf = binary.BigEndian.AppendUint32(e.buf, uint32(n))
	}
	e.buf = append(e.buf, s...)
}

func (e *mpEncoder) bin(b []byte) {
	n := len(b)
	switch {
	case n <= math.MaxUint8:
		e.buf = append(e.buf, 0xc4, byte(n))
	case n <= math.MaxUint16:
		e.buf = append(e.buf, 0xc5)
		e.buf = binary.BigEndian.AppendUint16(e.buf, uint16(n))
	default:
		e.buf = append(e.buf, 0xc6)
		e.buf = binary.BigEndian.AppendUint32(e.buf, uint32(n))
	}
	e.buf = append(e.buf, b...)
}

func (e *mpEncoder) int(v int64) {
	switch {
	case v >= 0 && v <= 127:
		e.buf = append(e.buf, byte(v))
	case v < 0 && v >= -32:
		e.buf = append(e.buf, byte(v))
	case v >= math.MinInt8 && v <= math.MaxInt8:
		e.buf = append(e.buf, 0xd0, byte(v))
	case v >= math.MinInt16 && v <= math.MaxInt16:
		e.buf = append(e.buf, 0xd1)
		e.buf = binary.BigEndian.AppendUint16(e.buf, uint16(v))
	case v >= math.MinInt32 && v <= math.MaxInt32:
		e.buf = append(e.buf, 0xd2)
		e.buf = binary.BigEndian.AppendUint32(e.buf, uint32(v))
	default:
		e.buf = append(e.buf, 0xd3)
		e.buf = binary.BigEndian.AppendUint64(e.buf, uint64(v))
	}
}

// mpDecoder reads MessagePack values from a buffer.
type mpDecoder struct {
	buf []byte
	p   int
}

var errMsgpack = fmt.Errorf("msgpack: malformed data")

func (d *mpDecoder) byteAt() (byte, error) {
	if d.p >= len(d.buf) {
		return 0, errMsgpack
	}
	b := d.buf[d.p]
	d.p++
	return b, nil
}

func (d *mpDecoder) take(n int) ([]byte, error) {
	if n < 0 || d.p+n > len(d.buf) {
		return nil, errMsgpack
	}
	out := d.buf[d.p : d.p+n]
	d.p += n
	return out, nil
}

func (d *mpDecoder) mapHeader() (int, error) {
	b, err := d.byteAt()
	if err != nil {
		return 0, err
	}
	switch {
	case b&0xf0 == 0x80:
		return int(b & 0x0f), nil
	case b == 0xde:
		raw, err := d.take(2)
		if err != nil {
			return 0, err
		}
		return int(binary.BigEndian.Uint16(raw)), nil
	case b == 0xdf:
		raw, err := d.take(4)
		if err != nil {
			return 0, err
		}
		return int(binary.BigEndian.Uint32(raw)), nil
	}
	return 0, errMsgpack
}

func (d *mpDecoder) arrayHeader() (int, error) {
	b, err := d.byteAt()
	if err != nil {
		return 0, err
	}
	switch {
	case b&0xf0 == 0x90:
		return int(b & 0x0f), nil
	case b == 0xdc:
		raw, err := d.take(2)
		if err != nil {
			return 0, err
		}
		return int(binary.BigEndian.Uint16(raw)), nil
	case b == 0xdd:
		raw, err := d.take(4)
		if err != nil {
			return 0, err
		}
		return int(binary.BigEndian.Uint32(raw)), nil
	}
	return 0, errMsgpack
}

func (d *mpDecoder) str() (string, error) {
	b, err := d.byteAt()
	if err != nil {
		return "", err
	}
	var n int
	switch {
	case b&0xe0 == 0xa0:
		n = int(b & 0x1f)
	case b == 0xd9:
		l, err := d.byteAt()
		if err != nil {
			return "", err
		}
		n = int(l)
	case b == 0xda:
		raw, err := d.take(2)
		if err != nil {
			return "", err
		}
		n = int(binary.BigEndian.Uint16(raw))
	case b == 0xdb:
		raw, err := d.take(4)
		if err != nil {
			return "", err
		}
		n = int(binary.BigEndian.Uint32(raw))
	default:
		return "", errMsgpack
	}
	raw, err := d.take(n)
	return string(raw), err
}

func (d *mpDecoder) bin() ([]byte, error) {
	b, err := d.byteAt()
	if err != nil {
		return nil, err
	}
	var n int
	switch b {
	case 0xc4:
		l, err := d.byteAt()
		if err != nil {
			return nil, err
		}
		n = int(l)
	case 0xc5:
		raw, err := d.take(2)
		if err != nil {
			return nil, err
		}
		n = int(binary.BigEndian.Uint16(raw))
	case 0xc6:
		raw, err := d.take(4)
		if err != nil {
			return nil, err
		}
		n = int(binary.BigEndian.Uint32(raw))
	default:
		return nil, errMsgpack
	}
	return d.take(n)
}

func (d *mpDecoder) int() (int64, error) {
	b, err := d.byteAt()
	if err != nil {
		return 0, err
	}
	switch {
	case b <= 0x7f: // positive fixint
		return int64(b), nil
	case b >= 0xe0: // negative fixint
		return int64(int8(b)), nil
	case b == 0xd0:
		v, err := d.byteAt()
		return int64(int8(v)), err
	case b == 0xd1:
		raw, err := d.take(2)
		if err != nil {
			return 0, err
		}
		return int64(int16(binary.BigEndian.Uint16(raw))), nil
	case b == 0xd2:
		raw, err := d.take(4)
		if err != nil {
			return 0, err
		}
		return int64(int32(binary.BigEndian.Uint32(raw))), nil
	case b == 0xd3:
		raw, err := d.take(8)
		if err != nil {
			return 0, err
		}
		return int64(binary.BigEndian.Uint64(raw)), nil
	}
	return 0, errMsgpack
}
