package baselines

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"

	"repro/internal/storage"
)

// ArrayStore reproduces the statically chunked array layout of Zarr and N5:
// a [N, H, W, C] array split on a fixed chunk grid of imagesPerChunk along
// the first axis, one object per chunk, with a JSON metadata file. Two
// properties drive its Fig 6 behavior:
//
//   - static chunking forces ragged samples to be padded to the declared
//     (H, W, C), inflating writes (the paper's "underutilized storage for
//     dynamically shaped tensors");
//   - appending fewer samples than a full chunk means read-modify-write of
//     the trailing chunk — the coordination cost chunk-mapped formats avoid.
//
// The N5 flavor differs only in metadata conventions and a per-chunk binary
// header, mirroring the real formats' relationship.
type ArrayStore struct {
	// Flavor is "zarr" or "n5".
	Flavor string
	// ImagesPerChunk sets the chunk grid along the sample axis
	// (default 4).
	ImagesPerChunk int
}

// Name implements Format.
func (a ArrayStore) Name() string {
	if a.Flavor == "" {
		return "zarr"
	}
	return a.Flavor
}

func (a ArrayStore) perChunk() int {
	if a.ImagesPerChunk <= 0 {
		return 4
	}
	return a.ImagesPerChunk
}

type arrayMeta struct {
	Flavor    string `json:"flavor"`
	N         int    `json:"n"`
	Height    int    `json:"height"`
	Width     int    `json:"width"`
	Channels  int    `json:"channels"`
	PerChunk  int    `json:"per_chunk"`
	NumChunks int    `json:"num_chunks"`
}

func (a ArrayStore) metaKey() string {
	if a.Name() == "n5" {
		return "attributes.json"
	}
	return ".zarray"
}

func (a ArrayStore) chunkKey(i int) string {
	if a.Name() == "n5" {
		return fmt.Sprintf("%d/0/0/0", i)
	}
	return fmt.Sprintf("%d.0.0.0", i)
}

func labelsKey() string { return "labels.bin" }

// Write implements Format. Samples are appended one by one, exactly as the
// Fig 6 experiment serially writes images: each append lands in the
// trailing chunk, which is read back, extended, padded, and rewritten until
// full — the write amplification inherent to static chunk grids.
func (a ArrayStore) Write(ctx context.Context, store storage.Provider, samples []Sample) error {
	if len(samples) == 0 {
		return store.Put(ctx, a.metaKey(), mustJSONBytes(arrayMeta{Flavor: a.Name()}))
	}
	// The declared array shape is the max over sample shapes (static
	// chunking cannot represent ragged data).
	maxH, maxW, maxC := 0, 0, 1
	for _, s := range samples {
		if s.Encoding != "raw" {
			return fmt.Errorf("arraystore: %s stores raw arrays only", a.Name())
		}
		h, w, c := dims3(s.Shape)
		if h > maxH {
			maxH = h
		}
		if w > maxW {
			maxW = w
		}
		if c > maxC {
			maxC = c
		}
	}
	per := a.perChunk()
	sampleBytes := maxH * maxW * maxC
	labels := make([]byte, 0, len(samples)*4)

	var curChunk []byte
	curLen := 0
	chunkIdx := 0
	for _, s := range samples {
		// Read-modify-write: reload the trailing chunk if we "crashed"
		// between appends. Here the chunk is still in memory between
		// iterations, but every chunk-fill still costs a full object
		// PUT per append batch boundary; to model the serial-append
		// cost faithfully we re-PUT the trailing chunk on every
		// sample, as a naive TensorStore append loop does.
		padded := make([]byte, sampleBytes)
		copyPadded(padded, s, maxH, maxW, maxC)
		curChunk = append(curChunk, padded...)
		curLen++
		labels = binary.LittleEndian.AppendUint32(labels, uint32(s.Label))

		blob := curChunk
		if a.Name() == "n5" {
			blob = a.n5Wrap(curChunk, curLen, maxH, maxW, maxC)
		}
		if err := store.Put(ctx, a.chunkKey(chunkIdx), blob); err != nil {
			return err
		}
		if curLen == per {
			curChunk = nil
			curLen = 0
			chunkIdx++
		}
	}
	numChunks := chunkIdx
	if curLen > 0 {
		numChunks++
	}
	meta := arrayMeta{
		Flavor: a.Name(), N: len(samples),
		Height: maxH, Width: maxW, Channels: maxC,
		PerChunk: per, NumChunks: numChunks,
	}
	if err := store.Put(ctx, labelsKey(), labels); err != nil {
		return err
	}
	return store.Put(ctx, a.metaKey(), mustJSONBytes(meta))
}

// n5Wrap prepends the N5 chunk header (mode, rank, dims).
func (a ArrayStore) n5Wrap(data []byte, n, h, w, c int) []byte {
	out := make([]byte, 0, len(data)+2+2+4*4)
	out = binary.BigEndian.AppendUint16(out, 0) // default mode
	out = binary.BigEndian.AppendUint16(out, 4) // rank
	for _, d := range []int{n, h, w, c} {
		out = binary.BigEndian.AppendUint32(out, uint32(d))
	}
	return append(out, data...)
}

func (a ArrayStore) n5Unwrap(blob []byte) ([]byte, error) {
	if len(blob) < 2+2+16 {
		return nil, fmt.Errorf("n5: short chunk")
	}
	return blob[2+2+16:], nil
}

// Iterate implements Format: chunks are fetched in parallel and samples
// sliced out of the dense grid.
func (a ArrayStore) Iterate(ctx context.Context, store storage.Provider, workers int, fn func(Sample) error) error {
	rawMeta, err := store.Get(ctx, a.metaKey())
	if err != nil {
		return err
	}
	var meta arrayMeta
	if err := json.Unmarshal(rawMeta, &meta); err != nil {
		return err
	}
	labels, err := store.Get(ctx, labelsKey())
	if err != nil {
		return err
	}
	sampleBytes := meta.Height * meta.Width * meta.Channels
	jobs := make([]int, meta.NumChunks)
	for i := range jobs {
		jobs[i] = i
	}
	return runWorkers(ctx, workers, jobs, func(ci int) error {
		blob, err := store.Get(ctx, a.chunkKey(ci))
		if err != nil {
			return err
		}
		if a.Name() == "n5" {
			blob, err = a.n5Unwrap(blob)
			if err != nil {
				return err
			}
		}
		inChunk := len(blob) / sampleBytes
		for k := 0; k < inChunk; k++ {
			idx := ci*meta.PerChunk + k
			if idx >= meta.N {
				break
			}
			data := make([]byte, sampleBytes)
			copy(data, blob[k*sampleBytes:(k+1)*sampleBytes])
			s := Sample{
				Index:    idx,
				Data:     data,
				Shape:    []int{meta.Height, meta.Width, meta.Channels},
				Encoding: "raw",
				Label:    int32(binary.LittleEndian.Uint32(labels[idx*4:])),
			}
			if err := fn(s); err != nil {
				return err
			}
		}
		return nil
	})
}

func dims3(shape []int) (h, w, c int) {
	switch len(shape) {
	case 2:
		return shape[0], shape[1], 1
	case 3:
		return shape[0], shape[1], shape[2]
	}
	return 1, 1, 1
}

// copyPadded places a possibly smaller sample into the top-left corner of
// the padded (maxH, maxW, maxC) cell.
func copyPadded(dst []byte, s Sample, maxH, maxW, maxC int) {
	h, w, c := dims3(s.Shape)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			for ch := 0; ch < c; ch++ {
				dst[(y*maxW+x)*maxC+ch] = s.Data[(y*w+x)*c+ch]
			}
		}
	}
}

func mustJSONBytes(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}
