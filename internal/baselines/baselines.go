// Package baselines implements from scratch the essential storage layout
// and loading strategy of every system the paper benchmarks against
// (§6, Figs 6-8): WebDataset tar shards, FFCV's Beton single-file format,
// Zarr/N5-style statically chunked array stores, TFRecord streams,
// Squirrel's MessagePack shards, and the file-per-sample layout consumed by
// a naive (PyTorch-style) dataloader.
//
// Each format implements the same Format interface so the benchmark harness
// ingests the identical sample stream into each and iterates them back with
// the same worker parallelism.
package baselines

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/compress"
	"repro/internal/storage"
)

// Sample is the exchange unit between workloads and formats.
type Sample struct {
	// Index is the sample position.
	Index int
	// Data is the payload: raw HWC pixels when Encoding is "raw", media
	// bytes when Encoding is "jpeg".
	Data []byte
	// Shape is the pixel shape (H, W, C).
	Shape []int
	// Encoding is "raw" or "jpeg".
	Encoding string
	// Label is the class label.
	Label int32
}

// Format writes and iterates datasets in one baseline layout.
type Format interface {
	// Name identifies the format in benchmark output.
	Name() string
	// Write ingests samples in order onto the provider.
	Write(ctx context.Context, store storage.Provider, samples []Sample) error
	// Iterate streams every sample back, decoded to raw pixels, calling
	// fn from up to workers goroutines. Order is format-defined.
	Iterate(ctx context.Context, store storage.Provider, workers int, fn func(Sample) error) error
}

// decodeToRaw normalizes a stored sample to raw pixels, decoding media in
// the calling (worker) goroutine.
func decodeToRaw(s Sample) (Sample, error) {
	if s.Encoding != "jpeg" {
		return s, nil
	}
	codec, err := compress.SampleByName("jpeg")
	if err != nil {
		return Sample{}, err
	}
	pixels, h, w, c, err := codec.Decode(s.Data)
	if err != nil {
		return Sample{}, fmt.Errorf("baselines: decode sample %d: %w", s.Index, err)
	}
	s.Data = pixels
	s.Shape = []int{h, w, c}
	s.Encoding = "raw"
	return s, nil
}

// runWorkers fans jobs out to a bounded pool and propagates the first
// error, the shared iteration skeleton of all loaders.
func runWorkers[T any](ctx context.Context, workers int, jobs []T, run func(T) error) error {
	if workers <= 0 {
		workers = 1
	}
	ch := make(chan T)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	setErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				if ctx.Err() != nil {
					return
				}
				if err := run(j); err != nil {
					setErr(err)
					return
				}
			}
		}()
	}
loop:
	for _, j := range jobs {
		mu.Lock()
		stop := firstErr != nil
		mu.Unlock()
		if stop || ctx.Err() != nil {
			break loop
		}
		ch <- j
	}
	close(ch)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
