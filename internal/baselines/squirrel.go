package baselines

import (
	"context"
	"fmt"

	"repro/internal/storage"
)

// Squirrel reproduces squirrel-core's layout: shards of MessagePack-encoded
// sample dictionaries ({"image": bin, "label": int, ...}), streamed shard
// by shard. Self-describing per-sample encoding buys flexibility at the
// cost of per-field framing overhead versus fixed-layout formats.
type Squirrel struct {
	// SamplesPerShard sets the shard granularity (default 256).
	SamplesPerShard int
}

// Name implements Format.
func (Squirrel) Name() string { return "squirrel" }

func (s Squirrel) perShard() int {
	if s.SamplesPerShard <= 0 {
		return 256
	}
	return s.SamplesPerShard
}

func squirrelKey(i int) string { return fmt.Sprintf("sq-shard-%06d.msgpack", i) }

// Write implements Format.
func (s Squirrel) Write(ctx context.Context, store storage.Provider, samples []Sample) error {
	var enc mpEncoder
	shard := 0
	inShard := 0
	flush := func() error {
		if inShard == 0 {
			return nil
		}
		if err := store.Put(ctx, squirrelKey(shard), enc.buf); err != nil {
			return err
		}
		shard++
		enc = mpEncoder{}
		inShard = 0
		return nil
	}
	for _, smp := range samples {
		enc.mapHeader(5)
		enc.str("image")
		enc.bin(smp.Data)
		enc.str("label")
		enc.int(int64(smp.Label))
		enc.str("index")
		enc.int(int64(smp.Index))
		enc.str("encoding")
		enc.str(smp.Encoding)
		enc.str("shape")
		enc.arrayHeader(len(smp.Shape))
		for _, d := range smp.Shape {
			enc.int(int64(d))
		}
		inShard++
		if inShard >= s.perShard() {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

// Iterate implements Format.
func (s Squirrel) Iterate(ctx context.Context, store storage.Provider, workers int, fn func(Sample) error) error {
	shards, err := store.List(ctx, "sq-shard-")
	if err != nil {
		return err
	}
	return runWorkers(ctx, workers, shards, func(key string) error {
		blob, err := store.Get(ctx, key)
		if err != nil {
			return err
		}
		dec := mpDecoder{buf: blob}
		for dec.p < len(dec.buf) {
			nFields, err := dec.mapHeader()
			if err != nil {
				return err
			}
			var smp Sample
			for f := 0; f < nFields; f++ {
				field, err := dec.str()
				if err != nil {
					return err
				}
				switch field {
				case "image":
					smp.Data, err = dec.bin()
				case "label":
					var v int64
					v, err = dec.int()
					smp.Label = int32(v)
				case "index":
					var v int64
					v, err = dec.int()
					smp.Index = int(v)
				case "encoding":
					smp.Encoding, err = dec.str()
				case "shape":
					var n int
					n, err = dec.arrayHeader()
					if err != nil {
						return err
					}
					smp.Shape = make([]int, n)
					for i := 0; i < n; i++ {
						var v int64
						v, err = dec.int()
						if err != nil {
							return err
						}
						smp.Shape[i] = int(v)
					}
				default:
					return fmt.Errorf("squirrel: unknown field %q", field)
				}
				if err != nil {
					return err
				}
			}
			out, err := decodeToRaw(smp)
			if err != nil {
				return err
			}
			if err := fn(out); err != nil {
				return err
			}
		}
		return nil
	})
}
