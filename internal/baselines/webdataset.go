package baselines

import (
	"archive/tar"
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/storage"
)

// WebDataset reproduces the WebDataset layout: POSIX tar shards whose
// members pair each sample's media file with sidecar files sharing the
// basename (000001.jpg + 000001.cls). Loaders stream whole shards
// sequentially, which is why WebDataset ingests fast and streams well but
// cannot random-access without an external index.
type WebDataset struct {
	// ShardBytes is the target shard size (default 64MB).
	ShardBytes int
	// NoDecode skips media decoding during iteration, isolating the
	// storage path (used by the Fig 8 harness).
	NoDecode bool
}

// Name implements Format.
func (w WebDataset) Name() string { return "webdataset" }

func (w WebDataset) shardBytes() int {
	if w.ShardBytes <= 0 {
		return 64 << 20
	}
	return w.ShardBytes
}

func shardKey(i int) string { return fmt.Sprintf("shard-%06d.tar", i) }

// Write implements Format.
func (w WebDataset) Write(ctx context.Context, store storage.Provider, samples []Sample) error {
	var (
		buf   bytes.Buffer
		tw    = tar.NewWriter(&buf)
		shard = 0
	)
	flush := func() error {
		if buf.Len() == 0 {
			return nil
		}
		if err := tw.Close(); err != nil {
			return err
		}
		if err := store.Put(ctx, shardKey(shard), buf.Bytes()); err != nil {
			return err
		}
		shard++
		buf = bytes.Buffer{}
		tw = tar.NewWriter(&buf)
		return nil
	}
	for _, s := range samples {
		ext := "bin"
		if s.Encoding == "jpeg" {
			ext = "jpg"
		}
		base := fmt.Sprintf("%08d", s.Index)
		payload := s.Data
		if err := writeTarFile(tw, base+"."+ext, payload); err != nil {
			return err
		}
		if err := writeTarFile(tw, base+".cls", []byte(strconv.Itoa(int(s.Label)))); err != nil {
			return err
		}
		if s.Encoding != "jpeg" {
			// Raw samples need a shape sidecar to be recoverable.
			if err := writeTarFile(tw, base+".shape", encodeShape(s.Shape)); err != nil {
				return err
			}
		}
		if buf.Len() >= w.shardBytes() {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

func writeTarFile(tw *tar.Writer, name string, data []byte) error {
	if err := tw.WriteHeader(&tar.Header{Name: name, Mode: 0o644, Size: int64(len(data))}); err != nil {
		return err
	}
	_, err := tw.Write(data)
	return err
}

func encodeShape(shape []int) []byte {
	out := make([]byte, 0, 1+len(shape)*4)
	out = append(out, byte(len(shape)))
	for _, d := range shape {
		out = binary.LittleEndian.AppendUint32(out, uint32(d))
	}
	return out
}

func decodeShape(data []byte) ([]int, error) {
	if len(data) < 1 {
		return nil, fmt.Errorf("webdataset: empty shape sidecar")
	}
	n := int(data[0])
	if len(data) != 1+n*4 {
		return nil, fmt.Errorf("webdataset: bad shape sidecar length %d", len(data))
	}
	shape := make([]int, n)
	for i := range shape {
		shape[i] = int(binary.LittleEndian.Uint32(data[1+i*4:]))
	}
	return shape, nil
}

// Iterate implements Format: shards are distributed across workers and each
// shard is streamed front to back, the WebDataset iteration model.
func (w WebDataset) Iterate(ctx context.Context, store storage.Provider, workers int, fn func(Sample) error) error {
	shards, err := store.List(ctx, "shard-")
	if err != nil {
		return err
	}
	return runWorkers(ctx, workers, shards, func(key string) error {
		blob, err := store.Get(ctx, key)
		if err != nil {
			return err
		}
		tr := tar.NewReader(bytes.NewReader(blob))
		var cur Sample
		curBase := ""
		emit := func() error {
			if curBase == "" {
				return nil
			}
			if w.NoDecode {
				return fn(cur)
			}
			s, err := decodeToRaw(cur)
			if err != nil {
				return err
			}
			return fn(s)
		}
		for {
			hdr, err := tr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			dot := strings.LastIndexByte(hdr.Name, '.')
			if dot < 0 {
				continue
			}
			base, ext := hdr.Name[:dot], hdr.Name[dot+1:]
			if base != curBase {
				if err := emit(); err != nil {
					return err
				}
				cur = Sample{}
				curBase = base
				if idx, err := strconv.Atoi(base); err == nil {
					cur.Index = idx
				}
			}
			data, err := io.ReadAll(tr)
			if err != nil {
				return err
			}
			switch ext {
			case "jpg":
				cur.Data = data
				cur.Encoding = "jpeg"
			case "bin":
				cur.Data = data
				cur.Encoding = "raw"
			case "shape":
				shape, err := decodeShape(data)
				if err != nil {
					return err
				}
				cur.Shape = shape
			case "cls":
				v, err := strconv.Atoi(string(data))
				if err != nil {
					return err
				}
				cur.Label = int32(v)
			}
		}
		return emit()
	})
}
