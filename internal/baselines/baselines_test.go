package baselines

import (
	"bytes"
	"context"
	"errors"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/compress"
	"repro/internal/storage"
	"repro/internal/workload"
)

// allFormats returns one instance of every baseline.
func allFormats() []Format {
	return []Format{
		WebDataset{ShardBytes: 1 << 16},
		Beton{},
		ArrayStore{Flavor: "zarr", ImagesPerChunk: 3},
		ArrayStore{Flavor: "n5", ImagesPerChunk: 3},
		TFRecord{RecordsPerFile: 7},
		Squirrel{SamplesPerShard: 5},
		FileSample{},
		ParquetLite{RowsPerGroup: 6},
	}
}

// rawSamples builds n small deterministic raw samples.
func rawSamples(n int) []Sample {
	out := make([]Sample, n)
	for i := range out {
		data := make([]byte, 4*6*3)
		for k := range data {
			data[k] = byte((i*31 + k*7) % 256)
		}
		out[i] = Sample{Index: i, Data: data, Shape: []int{4, 6, 3}, Encoding: "raw", Label: int32(i % 5)}
	}
	return out
}

// jpegSamples builds n JPEG-encoded samples from the workload generator.
func jpegSamples(t testing.TB, n int) []Sample {
	t.Helper()
	codec, err := compress.SampleByName("jpeg")
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.ImageSpec{Height: 32, Width: 32, Channels: 3, Seed: 11}
	out := make([]Sample, n)
	for i := range out {
		img := spec.Image(i)
		s := img.Shape()
		enc, err := codec.Encode(img.Bytes(), s[0], s[1], s[2])
		if err != nil {
			t.Fatal(err)
		}
		out[i] = Sample{Index: i, Data: enc, Shape: s, Encoding: "jpeg", Label: int32(i % 3)}
	}
	return out
}

func collect(t testing.TB, f Format, store storage.Provider, workers int) map[int]Sample {
	t.Helper()
	var mu sync.Mutex
	got := map[int]Sample{}
	err := f.Iterate(context.Background(), store, workers, func(s Sample) error {
		mu.Lock()
		got[s.Index] = s
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatalf("%s iterate: %v", f.Name(), err)
	}
	return got
}

func TestRawRoundTripAllFormats(t *testing.T) {
	ctx := context.Background()
	samples := rawSamples(20)
	for _, f := range allFormats() {
		t.Run(f.Name(), func(t *testing.T) {
			store := storage.NewMemory()
			if err := f.Write(ctx, store, samples); err != nil {
				t.Fatal(err)
			}
			got := collect(t, f, store, 4)
			if len(got) != len(samples) {
				t.Fatalf("%d samples back, want %d", len(got), len(samples))
			}
			for _, want := range samples {
				s, ok := got[want.Index]
				if !ok {
					t.Fatalf("sample %d missing", want.Index)
				}
				if s.Label != want.Label {
					t.Fatalf("sample %d label = %d, want %d", want.Index, s.Label, want.Label)
				}
				if !bytes.Equal(s.Data, want.Data) {
					t.Fatalf("sample %d data mismatch", want.Index)
				}
			}
		})
	}
}

func TestJPEGRoundTripDecodableFormats(t *testing.T) {
	// Array stores are raw-only; every byte-oriented format must carry
	// JPEG payloads and decode them during iteration.
	ctx := context.Background()
	samples := jpegSamples(t, 10)
	for _, f := range []Format{WebDataset{ShardBytes: 1 << 16}, Beton{}, TFRecord{}, Squirrel{}, FileSample{}, ParquetLite{RowsPerGroup: 4}} {
		t.Run(f.Name(), func(t *testing.T) {
			store := storage.NewMemory()
			if err := f.Write(ctx, store, samples); err != nil {
				t.Fatal(err)
			}
			got := collect(t, f, store, 4)
			if len(got) != len(samples) {
				t.Fatalf("%d samples, want %d", len(got), len(samples))
			}
			for idx, s := range got {
				if s.Encoding != "raw" {
					t.Fatalf("sample %d not decoded: %q", idx, s.Encoding)
				}
				if len(s.Shape) != 3 || s.Shape[0] != 32 || s.Shape[1] != 32 {
					t.Fatalf("sample %d shape = %v", idx, s.Shape)
				}
				if len(s.Data) != 32*32*3 {
					t.Fatalf("sample %d decoded to %d bytes", idx, len(s.Data))
				}
			}
		})
	}
}

func TestArrayStoreRejectsJPEG(t *testing.T) {
	ctx := context.Background()
	if err := (ArrayStore{}).Write(ctx, storage.NewMemory(), jpegSamples(t, 2)); err == nil {
		t.Fatal("array stores must reject media-encoded samples")
	}
}

func TestArrayStorePadsRaggedSamples(t *testing.T) {
	// Static chunking pads everything to the max shape: storage grows
	// accordingly (the §2.2/§7.1 inefficiency the paper calls out).
	ctx := context.Background()
	samples := []Sample{
		{Index: 0, Data: make([]byte, 4*4), Shape: []int{4, 4, 1}, Encoding: "raw"},
		{Index: 1, Data: make([]byte, 16*16), Shape: []int{16, 16, 1}, Encoding: "raw"},
	}
	for i := range samples[0].Data {
		samples[0].Data[i] = 7
	}
	store := storage.NewMemory()
	if err := (ArrayStore{ImagesPerChunk: 2}).Write(ctx, store, samples); err != nil {
		t.Fatal(err)
	}
	if store.TotalBytes() < 2*16*16 {
		t.Fatalf("padded store only %d bytes; expected >= 512 (2 padded cells)", store.TotalBytes())
	}
	got := collect(t, ArrayStore{ImagesPerChunk: 2}, store, 2)
	// Sample 0 comes back padded to 16x16 with its content in the corner.
	s0 := got[0]
	if s0.Shape[0] != 16 || s0.Shape[1] != 16 {
		t.Fatalf("padded shape = %v", s0.Shape)
	}
	if s0.Data[0] != 7 || s0.Data[3] != 7 {
		t.Fatal("original content lost in padding")
	}
	if s0.Data[16*16-1] != 0 {
		t.Fatal("padding not zeroed")
	}
}

func TestArrayStoreWriteAmplification(t *testing.T) {
	// Serial appends into a static grid rewrite the trailing chunk per
	// sample: PUT count ~= N, and bytes written greatly exceed payload.
	ctx := context.Background()
	samples := rawSamples(12)
	counting := storage.NewCounting(storage.NewMemory())
	if err := (ArrayStore{ImagesPerChunk: 4}).Write(ctx, counting, samples); err != nil {
		t.Fatal(err)
	}
	writes := counting.Snapshot()
	if writes.Puts < int64(len(samples)) {
		t.Fatalf("puts = %d, expected >= one per sample (read-modify-write)", writes.Puts)
	}
	payload := int64(len(samples) * len(samples[0].Data))
	if writes.BytesWritten < 2*payload {
		t.Fatalf("bytes written %d vs payload %d: amplification missing", writes.BytesWritten, payload)
	}
}

func TestWebDatasetShardsSplit(t *testing.T) {
	ctx := context.Background()
	store := storage.NewMemory()
	samples := rawSamples(30)
	if err := (WebDataset{ShardBytes: 2048}).Write(ctx, store, samples); err != nil {
		t.Fatal(err)
	}
	shards, _ := store.List(ctx, "shard-")
	if len(shards) < 2 {
		t.Fatalf("expected multiple shards, got %v", shards)
	}
}

func TestBetonRandomAccessUsesRanges(t *testing.T) {
	ctx := context.Background()
	inner := storage.NewMemory()
	counting := storage.NewCounting(inner)
	samples := rawSamples(16)
	if err := (Beton{}).Write(ctx, counting, samples); err != nil {
		t.Fatal(err)
	}
	counting.Reset()
	got := collect(t, Beton{}, counting, 4)
	if len(got) != 16 {
		t.Fatalf("%d samples", len(got))
	}
	reads := counting.Snapshot()
	if reads.Gets != 0 {
		t.Fatalf("beton did %d full Gets; must use range reads", reads.Gets)
	}
	if reads.RangeGets < 16 {
		t.Fatalf("range gets = %d", reads.RangeGets)
	}
}

func TestTFRecordDetectsCorruption(t *testing.T) {
	ctx := context.Background()
	store := storage.NewMemory()
	if err := (TFRecord{}).Write(ctx, store, rawSamples(3)); err != nil {
		t.Fatal(err)
	}
	keys, _ := store.List(ctx, "part-")
	blob, _ := store.Get(ctx, keys[0])
	blob[20] ^= 0xFF // flip a payload byte
	store.Put(ctx, keys[0], blob)
	err := (TFRecord{}).Iterate(ctx, store, 1, func(Sample) error { return nil })
	if err == nil {
		t.Fatal("corrupted record must fail the crc check")
	}
}

func TestIterateErrorPropagation(t *testing.T) {
	ctx := context.Background()
	boom := errors.New("consumer failed")
	for _, f := range allFormats() {
		store := storage.NewMemory()
		if err := f.Write(ctx, store, rawSamples(10)); err != nil {
			t.Fatalf("%s write: %v", f.Name(), err)
		}
		err := f.Iterate(ctx, store, 2, func(s Sample) error {
			if s.Index == 4 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Errorf("%s: err = %v, want consumer failure", f.Name(), err)
		}
	}
}

func TestMsgpackRoundTripProperty(t *testing.T) {
	f := func(key string, blob []byte, n int32) bool {
		var enc mpEncoder
		enc.mapHeader(1)
		enc.str(key)
		enc.bin(blob)
		enc.int(int64(n))
		dec := mpDecoder{buf: enc.buf}
		fields, err := dec.mapHeader()
		if err != nil || fields != 1 {
			return false
		}
		gotKey, err := dec.str()
		if err != nil || gotKey != key {
			return false
		}
		gotBlob, err := dec.bin()
		if err != nil || !bytes.Equal(gotBlob, blob) {
			return false
		}
		gotN, err := dec.int()
		return err == nil && gotN == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMsgpackIntEdgeCases(t *testing.T) {
	for _, v := range []int64{0, 1, 127, 128, -1, -32, -33, 255, 32767, -32768, 1 << 30, -(1 << 40)} {
		var enc mpEncoder
		enc.int(v)
		dec := mpDecoder{buf: enc.buf}
		got, err := dec.int()
		if err != nil || got != v {
			t.Errorf("int %d -> %d, %v", v, got, err)
		}
	}
}

func TestFormatsOnSortedIndices(t *testing.T) {
	// Every format must deliver exactly the index set it ingested.
	ctx := context.Background()
	samples := rawSamples(25)
	for _, f := range allFormats() {
		store := storage.NewMemory()
		if err := f.Write(ctx, store, samples); err != nil {
			t.Fatal(err)
		}
		got := collect(t, f, store, 3)
		var indices []int
		for i := range got {
			indices = append(indices, i)
		}
		sort.Ints(indices)
		for i, idx := range indices {
			if i != idx {
				t.Fatalf("%s: index set broken at %d (%v)", f.Name(), i, indices[:minI(10, len(indices))])
			}
		}
	}
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}
