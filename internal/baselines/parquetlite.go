package baselines

import (
	"context"
	"encoding/binary"
	"fmt"

	"repro/internal/storage"
)

// ParquetLite reproduces the essential layout of a Parquet-style columnar
// file for the comparison in §7.1-§7.2: row groups, per-column chunks
// (image bytes as a byte-array column with length prefixes, labels as a
// plain int32 column), and a footer holding row-group offsets, read last.
// Parquet shines on small analytic cells; storing megabyte media samples in
// a byte-array column forces whole-row-group reads and loses the
// sub-sample addressing the Tensor Storage Format provides — the paper's
// "Parquet is optimized for small cells" observation.
type ParquetLite struct {
	// RowsPerGroup sets row-group granularity (default 64).
	RowsPerGroup int
}

// Name implements Format.
func (ParquetLite) Name() string { return "parquet-lite" }

func (p ParquetLite) perGroup() int {
	if p.RowsPerGroup <= 0 {
		return 64
	}
	return p.RowsPerGroup
}

const (
	parquetKey   = "dataset.parq"
	parquetMagic = "PQL1"
)

// Write implements Format: one object with row groups then a footer.
func (p ParquetLite) Write(ctx context.Context, store storage.Provider, samples []Sample) error {
	var body []byte
	type groupMeta struct {
		offset, length uint64
		rows           uint32
	}
	var groups []groupMeta

	for start := 0; start < len(samples); start += p.perGroup() {
		end := start + p.perGroup()
		if end > len(samples) {
			end = len(samples)
		}
		groupStart := len(body)
		// Column 1: image byte-array (length-prefixed values).
		for _, s := range samples[start:end] {
			body = binary.LittleEndian.AppendUint32(body, uint32(len(s.Data)))
			enc := byte(0)
			if s.Encoding == "jpeg" {
				enc = 1
			}
			body = append(body, enc, byte(len(s.Shape)))
			for _, d := range s.Shape {
				body = binary.LittleEndian.AppendUint32(body, uint32(d))
			}
			body = append(body, s.Data...)
		}
		// Column 2: labels, plain int32.
		for _, s := range samples[start:end] {
			body = binary.LittleEndian.AppendUint32(body, uint32(s.Label))
		}
		groups = append(groups, groupMeta{
			offset: uint64(groupStart),
			length: uint64(len(body) - groupStart),
			rows:   uint32(end - start),
		})
	}
	// Footer: group directory + magic trailer (read last, like Parquet).
	footerStart := len(body)
	body = binary.LittleEndian.AppendUint32(body, uint32(len(groups)))
	for _, g := range groups {
		body = binary.LittleEndian.AppendUint64(body, g.offset)
		body = binary.LittleEndian.AppendUint64(body, g.length)
		body = binary.LittleEndian.AppendUint32(body, g.rows)
	}
	body = binary.LittleEndian.AppendUint32(body, uint32(len(body)-footerStart))
	body = append(body, parquetMagic...)
	return store.Put(ctx, parquetKey, body)
}

// Iterate implements Format: footer first, then row groups in parallel.
func (p ParquetLite) Iterate(ctx context.Context, store storage.Provider, workers int, fn func(Sample) error) error {
	size, err := store.Size(ctx, parquetKey)
	if err != nil {
		return err
	}
	if size < 8 {
		return fmt.Errorf("parquet-lite: file too small")
	}
	trailer, err := store.GetRange(ctx, parquetKey, size-8, 8)
	if err != nil {
		return err
	}
	if string(trailer[4:]) != parquetMagic {
		return fmt.Errorf("parquet-lite: bad magic")
	}
	footerLen := int64(binary.LittleEndian.Uint32(trailer))
	footer, err := store.GetRange(ctx, parquetKey, size-8-footerLen, footerLen)
	if err != nil {
		return err
	}
	if len(footer) < 4 {
		return fmt.Errorf("parquet-lite: truncated footer")
	}
	nGroups := int(binary.LittleEndian.Uint32(footer))
	if len(footer) != 4+nGroups*20 {
		return fmt.Errorf("parquet-lite: footer length mismatch")
	}
	type group struct {
		index          int
		offset, length uint64
		rows           int
	}
	groups := make([]group, nGroups)
	for i := range groups {
		e := footer[4+i*20:]
		groups[i] = group{
			index:  i,
			offset: binary.LittleEndian.Uint64(e),
			length: binary.LittleEndian.Uint64(e[8:]),
			rows:   int(binary.LittleEndian.Uint32(e[16:])),
		}
	}
	rowBase := make([]int, nGroups)
	for i := 1; i < nGroups; i++ {
		rowBase[i] = rowBase[i-1] + groups[i-1].rows
	}
	return runWorkers(ctx, workers, groups, func(g group) error {
		blob, err := store.GetRange(ctx, parquetKey, int64(g.offset), int64(g.length))
		if err != nil {
			return err
		}
		// Decode image column.
		type cell struct {
			data     []byte
			shape    []int
			encoding string
		}
		cells := make([]cell, 0, g.rows)
		pos := 0
		for r := 0; r < g.rows; r++ {
			if pos+6 > len(blob) {
				return fmt.Errorf("parquet-lite: truncated group")
			}
			n := int(binary.LittleEndian.Uint32(blob[pos:]))
			enc := "raw"
			if blob[pos+4] == 1 {
				enc = "jpeg"
			}
			rank := int(blob[pos+5])
			pos += 6
			shape := make([]int, rank)
			for k := range shape {
				shape[k] = int(binary.LittleEndian.Uint32(blob[pos:]))
				pos += 4
			}
			if pos+n > len(blob) {
				return fmt.Errorf("parquet-lite: truncated value")
			}
			cells = append(cells, cell{data: blob[pos : pos+n], shape: shape, encoding: enc})
			pos += n
		}
		// Label column.
		if pos+4*g.rows > len(blob) {
			return fmt.Errorf("parquet-lite: truncated labels")
		}
		for r := 0; r < g.rows; r++ {
			label := int32(binary.LittleEndian.Uint32(blob[pos+r*4:]))
			s, err := decodeToRaw(Sample{
				Index:    rowBase[g.index] + r,
				Data:     cells[r].data,
				Shape:    cells[r].shape,
				Encoding: cells[r].encoding,
				Label:    label,
			})
			if err != nil {
				return err
			}
			if err := fn(s); err != nil {
				return err
			}
		}
		return nil
	})
}
