package dataloader

import (
	"context"
	"sync"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/view"
)

// The readahead scheduler (§4.6 "fetches the next batch in advance") walks
// the epoch plans' chunk visit order ahead of the worker pool and pulls
// upcoming chunks into the chunk cache, so by the time a worker takes a
// chunk job its chunk is usually resident. It stays at most K chunks ahead
// of the job the workers are currently on, bounding memory the same way the
// cache's byte budget does, and its fetches coalesce with worker fetches
// through the cache's singleflight layer — the chunk is still read only
// once.

// readaheadDriver resolves the tensor whose chunks the scheduler
// prefetches. It returns nil when no column drives chunked reads
// (computed-only views, sequence/link primaries, no chunk-aligned groups),
// in which case readahead is a no-op.
func readaheadDriver(v *view.View, primary string, groups []groupRef) *core.Tensor {
	if primary == "" {
		return nil
	}
	t := v.Dataset().Tensor(primary)
	if t == nil || t.Htype().Sequence || t.Htype().Link {
		return nil
	}
	for _, g := range groups {
		if g.chunk {
			return t
		}
	}
	return nil
}

// raProgress tracks the highest chunk-job ordinal the workers have started
// on; the scheduler blocks on it to stay within its lookahead window.
type raProgress struct {
	mu       sync.Mutex
	cond     *sync.Cond
	frontier int
	closed   bool
}

func newRAProgress() *raProgress {
	p := &raProgress{frontier: -1}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// advance records that a worker has started the chunk job with the given
// ordinal.
func (p *raProgress) advance(ord int) {
	p.mu.Lock()
	if ord > p.frontier {
		p.frontier = ord
		p.cond.Broadcast()
	}
	p.mu.Unlock()
}

// waitUntil blocks until the worker frontier reaches ord (or the epoch
// ends); it reports false when the epoch ended first.
func (p *raProgress) waitUntil(ord int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.frontier < ord && !p.closed {
		p.cond.Wait()
	}
	return !p.closed
}

// current returns the worker frontier.
func (p *raProgress) current() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.frontier
}

// stop releases any waiting scheduler; called when the pipeline shuts down.
func (p *raProgress) stop() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

// runReadahead walks the epochs' chunk visit orders and prefetches each
// chunk once the workers are within k distinct chunks of it. Each epoch's
// shard skeleton is rebuilt on demand (buildShard is deterministic and
// O(chunks)), so no cross-epoch itinerary is ever held in memory. Ordinals
// count visit groups — sub-jobs of a split group share one — keeping the
// lookahead window measured in chunks, and groups without a stored chunk
// are skipped but still occupy their ordinal, so the scheduler stays
// aligned with the worker frontier. Fetch errors are ignored here: the
// worker that needs the chunk will hit the same error on its own read path
// and report it with row context.
func runReadahead(ctx context.Context, l *Loader, t *core.Tensor, secondaries []*core.Tensor, groups []groupRef, o Options, prog *raProgress, k int, ready chan<- struct{}) {
	v := l.v
	// ready gates the job feeder: it is closed once the first fetch strip has
	// been issued (and landed), so the workers' first cache misses find the
	// strip's chunks already cached or in flight instead of racing the
	// planner with their own one-chunk origin round trips. Closed on every
	// exit path so an early return can never wedge the pipeline.
	var readyOnce sync.Once
	release := func() {
		if ready != nil {
			readyOnce.Do(func() { close(ready) })
		}
	}
	defer release()
	// Chunks the scheduler decodes are ahead of the feeder's per-job pins
	// (the opening strip lands before any job is enqueued at all), so the
	// scheduler holds its own pin on every chunk in the lookahead window and
	// drops it once the worker frontier passes the chunk's ordinal — by
	// which point the job that needs it has been enqueued and carries the
	// feeder's pin. Without this, a tight budget evicts each prefetched
	// chunk before its job runs and every chunk decodes twice. Pins route
	// through l.pins so the pipeline's shutdown sweep reclaims whatever an
	// aborted walk leaves held.
	type raPin struct {
		ord int
		key cacheKey
	}
	var held []raPin
	releasePast := func(frontier int) {
		i := 0
		for ; i < len(held) && held[i].ord <= frontier; i++ {
			l.pins.unpin(l.cache, held[i].key)
		}
		held = held[i:]
	}
	defer func() {
		for _, h := range held {
			l.pins.unpin(l.cache, h.key)
		}
	}()
	ord := 0
	for e := 0; e < o.Epochs; e++ {
		shard := buildShard(groups, o, e)
		// planned marks how far into the shard the strip prefetcher has
		// handed chunk ids to the storage-level fetch planner.
		planned := 0
		for i, g := range shard.groups {
			if !prog.waitUntil(ord-k) || ctx.Err() != nil {
				return
			}
			releasePast(prog.current())
			// Strip prefetch: hand the next FetchBatch upcoming chunks to
			// the tensor's storage prefetcher as one coalesced fetch plan —
			// near-adjacent chunk objects ride one batched ranged origin
			// request into the byte cache, so the per-chunk cache.get below
			// (and the workers' own fetches) land as cache hits. Paced by
			// the same frontier wait as the walk, so at most one strip of
			// bytes runs ahead of the lookahead window. Errors are ignored
			// like fetch errors below: readers recover per-chunk.
			if o.FetchBatch > 0 && i >= planned {
				ids := make([]uint64, 0, o.FetchBatch)
				j := i
				for ; j < len(shard.groups) && len(ids) < o.FetchBatch; j++ {
					if shard.groups[j].chunk {
						ids = append(ids, shard.groups[j].key)
					}
				}
				planned = j
				// Secondary stored fields (labels beside images, say) have
				// their own chunk layout that the primary-driven walk never
				// visits; without this their first touch by a worker is a
				// bare origin round trip on the delivery critical path.
				// Hand the chunks covering this strip's rows to the planner
				// too — the prefetcher skips anything already cached, so
				// re-listing a chunk shared between strips costs nothing.
				// PrefetchChunks claims the chunks and returns while the
				// coalesced round trips fly in the background, so per-tensor
				// plans overlap each other and the walk below; workers that
				// reach a strip chunk early coalesce onto its in-flight
				// fetch through the cache's singleflight layer.
				if len(ids) > 0 {
					_, _ = t.PrefetchChunks(ctx, ids, storage.PlanOptions{})
				}
				for _, sec := range secondaries {
					if sids := stripSecondaryIDs(v, sec, shard.groups[i:j]); len(sids) > 0 {
						_, _ = sec.PrefetchChunks(ctx, sids, storage.PlanOptions{})
					}
				}
			}
			if i == 0 {
				release()
			}
			// Workers already started (or passed) this chunk: they
			// fetched it themselves, and under budget pressure it may
			// even have been consumed and evicted — refetching would
			// waste origin bandwidth and evict entries workers still
			// hold hot.
			if g.chunk && ord > prog.current() {
				key := cacheKey{scope: l.scope, obj: t.ChunkIdentity(g.key)}
				l.pins.pin(l.cache, key)
				held = append(held, raPin{ord: ord, key: key})
				_, _ = l.cacheGet(ctx, t, g.key)
			}
			ord++
		}
	}
}

// stripSecondaryIDs lists the distinct chunk ids of t covering the view rows
// of the given groups, in visit order. Rows that fail to resolve (computed
// views, rows still in the write buffer) are skipped — the worker's own read
// path handles them.
func stripSecondaryIDs(v *view.View, t *core.Tensor, groups []groupRef) []uint64 {
	var ids []uint64
	seen := map[uint64]bool{}
	for _, g := range groups {
		for _, row := range g.rows {
			src, err := v.SourceRow(row)
			if err != nil {
				continue
			}
			id, _, err := t.ChunkOf(src)
			if err != nil || seen[id] {
				continue
			}
			seen[id] = true
			ids = append(ids, id)
		}
	}
	return ids
}
