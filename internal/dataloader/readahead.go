package dataloader

import (
	"context"
	"sync"

	"repro/internal/core"
	"repro/internal/view"
)

// The readahead scheduler (§4.6 "fetches the next batch in advance") walks
// the sampler's visit order ahead of the worker pool and pulls upcoming
// chunks into the chunk cache, so by the time a worker reaches a row its
// chunk is usually resident. It stays at most K distinct chunks ahead of the
// chunk the workers are currently on, bounding memory the same way the
// cache's byte budget does, and its fetches coalesce with worker fetches
// through the cache's singleflight layer — the chunk is still read only once.

// prefetchPlan is the chunk itinerary derived from the sampler: the distinct
// chunk IDs of the primary stored tensor in first-visit order, and each
// sampler position's ordinal into that sequence.
type prefetchPlan struct {
	t      *core.Tensor
	chunks []uint64
	rowOrd []int
}

// buildPrefetchPlan resolves the sampler order to a chunk itinerary. It
// returns nil when no column drives chunked reads (computed-only views,
// sequence/link primaries), in which case readahead is a no-op.
func buildPrefetchPlan(v *view.View, cols []view.Column, order []int) *prefetchPlan {
	name := primaryColumn(cols)
	if name == "" {
		return nil
	}
	t := v.Dataset().Tensor(name)
	if t == nil || t.Htype().Sequence || t.Htype().Link {
		return nil
	}
	plan := &prefetchPlan{t: t, rowOrd: make([]int, len(order))}
	seen := map[uint64]int{}
	last := 0
	for seq, row := range order {
		ord := last
		if src, err := v.SourceRow(row); err == nil {
			if id, _, err := t.ChunkOf(src); err == nil {
				o, ok := seen[id]
				if !ok {
					o = len(plan.chunks)
					seen[id] = o
					plan.chunks = append(plan.chunks, id)
				}
				ord = o
			}
		}
		plan.rowOrd[seq] = ord
		last = ord
	}
	if len(plan.chunks) == 0 {
		return nil
	}
	return plan
}

// raProgress tracks the highest chunk ordinal the workers have started on;
// the scheduler blocks on it to stay within its lookahead window.
type raProgress struct {
	mu       sync.Mutex
	cond     *sync.Cond
	frontier int
	closed   bool
}

func newRAProgress() *raProgress {
	p := &raProgress{frontier: -1}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// advance records that a worker has started a row of the given chunk
// ordinal.
func (p *raProgress) advance(ord int) {
	p.mu.Lock()
	if ord > p.frontier {
		p.frontier = ord
		p.cond.Broadcast()
	}
	p.mu.Unlock()
}

// waitUntil blocks until the worker frontier reaches ord (or the epoch
// ends); it reports false when the epoch ended first.
func (p *raProgress) waitUntil(ord int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.frontier < ord && !p.closed {
		p.cond.Wait()
	}
	return !p.closed
}

// current returns the worker frontier.
func (p *raProgress) current() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.frontier
}

// stop releases any waiting scheduler; called when the pipeline shuts down.
func (p *raProgress) stop() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

// runReadahead prefetches chunk ord once the workers are within k chunks of
// it. Fetch errors are ignored here: the worker that needs the chunk will
// hit the same error on its own read path and report it with row context.
func runReadahead(ctx context.Context, cache *chunkCache, plan *prefetchPlan, prog *raProgress, k int) {
	for ord, id := range plan.chunks {
		if !prog.waitUntil(ord-k) || ctx.Err() != nil {
			return
		}
		// Workers already started (or passed) this chunk: they fetched it
		// themselves, and under budget pressure it may even have been
		// consumed and evicted — refetching would waste origin bandwidth
		// and evict entries workers still hold hot.
		if ord <= prog.current() {
			continue
		}
		_, _ = cache.get(ctx, plan.t, id)
	}
}
