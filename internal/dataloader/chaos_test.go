package dataloader

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/tensor"
)

// The loader chaos suite: run with -race. A flaky origin mid-epoch must
// either surface through Loader.Err after an in-order prefix (no Retry
// layer), or be recovered transparently with a byte-identical batch stream
// (Retry stacked below the loader's chunk cache).

// epochHash drains one epoch and hashes every delivered sample's dtype,
// shape and bytes in delivery order, returning the loader for Err checks.
func epochHash(t *testing.T, ds *core.Dataset, opts Options) (uint64, int, *Loader) {
	t.Helper()
	l := ForDataset(ds, opts)
	h := fnv.New64a()
	n := 0
	for b := range l.Batches(context.Background()) {
		for _, s := range b.Samples {
			for _, name := range []string{"x", "label"} {
				arr := s[name]
				h.Write([]byte(name))
				h.Write(arr.Bytes())
			}
			n++
		}
	}
	return h.Sum64(), n, l
}

func TestLoaderSurfacesMidEpochFaultAfterInOrderPrefix(t *testing.T) {
	const rows = 256
	mem := storage.NewMemory()
	ds := loaderDataset(t, mem, rows)
	chunks := ds.Tensor("x").NumChunks() + ds.Tensor("label").NumChunks()
	if chunks < 8 {
		t.Fatalf("dataset too coarse (%d chunks) to fault mid-epoch", chunks)
	}

	// No Retry layer: a transient fault partway through the chunk sequence
	// must stop the loader. Reopen the dataset over the faulty chain so
	// every chunk read passes through it.
	faulty := storage.NewFaulty(mem, storage.FaultConfig{Seed: 17, GetErrRate: 0.5})
	faulty.SetArmed(false)
	fds, err := core.Open(context.Background(), faulty)
	if err != nil {
		t.Fatal(err)
	}
	faulty.SetArmed(true)
	l := ForDataset(fds, Options{BatchSize: 8, Workers: 4})
	next := 0
	for b := range l.Batches(context.Background()) {
		for _, s := range b.Samples {
			// Sequential epoch: the delivered prefix must stay in order —
			// a fault must never cause skipped or reordered rows.
			if got := int(s["x"].Float64s()[0]); got != next {
				t.Fatalf("row %d delivered out of order (want %d) around the fault", got, next)
			}
			next++
		}
	}
	if err := l.Err(); err == nil {
		t.Fatal("epoch over a faulty origin with no retry layer reported no error")
	} else if !storage.IsRetryable(err) {
		t.Fatalf("loader flattened the transient classification: %v", err)
	}
	if next == rows {
		t.Fatal("every row delivered despite injected faults; fault schedule never fired")
	}
}

func TestLoaderRecoversTransparentlyWithRetryLayer(t *testing.T) {
	const rows = 256
	mem := storage.NewMemory()
	ds := loaderDataset(t, mem, rows)

	// Fault-free reference epoch, shuffled for a fixed seed.
	opts := Options{BatchSize: 8, Workers: 4, Shuffle: true, Seed: 9}
	refHash, refN, l := epochHash(t, ds, opts)
	if err := l.Err(); err != nil {
		t.Fatal(err)
	}
	if refN != rows {
		t.Fatalf("reference epoch delivered %d/%d", refN, rows)
	}

	// Same epoch over the resilient chain: Retry below the loader's cache
	// absorbs every injected fault (errors and stalls both).
	faulty := storage.NewFaulty(mem, storage.FaultConfig{
		Seed: 17, GetErrRate: 0.2, RangeErrRate: 0.2, StallRate: 0.05,
	})
	faulty.SetArmed(false)
	retry := storage.NewRetry(faulty, storage.RetryOptions{
		Attempts:  6,
		OpTimeout: 50 * time.Millisecond,
		Backoff:   storage.Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond, Seed: 9},
	})
	fds, err := core.Open(context.Background(), retry)
	if err != nil {
		t.Fatal(err)
	}
	faulty.SetArmed(true)
	hash, n, fl := epochHash(t, fds, opts)
	faulty.SetArmed(false)
	if err := fl.Err(); err != nil {
		t.Fatalf("retry layer leaked a fault into the loader: %v", err)
	}
	if n != rows {
		t.Fatalf("faulty epoch delivered %d/%d rows", n, rows)
	}
	if hash != refHash {
		t.Fatal("batch stream over the faulty origin differs from the fault-free epoch")
	}
	if faulty.Stats().Total() == 0 {
		t.Fatal("fault schedule injected nothing; transparency untested")
	}
	if retry.Stats().Retries == 0 {
		t.Fatal("no retries recorded despite injected faults")
	}
}

func TestLoaderCancelDuringBackoffStopsPromptly(t *testing.T) {
	const rows = 256
	mem := storage.NewMemory()
	loaderDataset(t, mem, rows)

	// Every read faults and the backoff is very long: cancelling the epoch
	// context must tear the loader down promptly, not wait out the timers.
	faulty := storage.NewFaulty(mem, storage.FaultConfig{Seed: 3, GetErrRate: 1, RangeErrRate: 1})
	faulty.SetArmed(false)
	retry := storage.NewRetry(faulty, storage.RetryOptions{
		Attempts: 10,
		Backoff:  storage.Backoff{Base: 30 * time.Second, Max: 30 * time.Second},
	})
	fds, err := core.Open(context.Background(), retry)
	if err != nil {
		t.Fatal(err)
	}
	faulty.SetArmed(true)
	ctx, cancel := context.WithCancel(context.Background())
	l := ForDataset(fds, Options{BatchSize: 8, Workers: 4})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range l.Batches(ctx) {
		}
	}()
	time.Sleep(20 * time.Millisecond) // let workers fault and enter backoff
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("cancel did not abort retry backoffs; loader still running")
	}
}

// TestLoaderWarmRestartsFromDiskTier is the disk-tier chaos scenario: a
// training job killed mid-epoch leaves its local-disk tier populated; a
// fresh process over the same directory must start warm — serving restart
// reads from the surviving files instead of the origin — and still deliver
// a batch stream byte-identical to a never-killed run.
func TestLoaderWarmRestartsFromDiskTier(t *testing.T) {
	const rows = 256
	ctx := context.Background()
	mem := storage.NewMemory()
	ds := loaderDataset(t, mem, rows)
	opts := Options{BatchSize: 8, Workers: 4, Shuffle: true, Seed: 11}

	// Fault-free reference epoch straight off the origin.
	refHash, refN, rl := epochHash(t, ds, opts)
	if err := rl.Err(); err != nil {
		t.Fatal(err)
	}
	if refN != rows {
		t.Fatalf("reference epoch delivered %d/%d", refN, rows)
	}

	// Run 1: stream through RAM -> disk tier -> origin, killed mid-epoch.
	dir := t.TempDir()
	counting := storage.NewCounting(mem)
	openTier := func() (*core.Dataset, *storage.Disk) {
		t.Helper()
		disk, err := storage.NewDisk(counting, dir, storage.DiskOptions{})
		if err != nil {
			t.Fatal(err)
		}
		tds, err := core.Open(ctx, storage.NewLRU(disk, 1<<30))
		if err != nil {
			t.Fatal(err)
		}
		return tds, disk
	}
	tds1, _ := openTier()
	killCtx, kill := context.WithCancel(ctx)
	defer kill()
	l1 := ForDataset(tds1, opts)
	batches := 0
	for range l1.Batches(killCtx) {
		if batches++; batches == 4 {
			kill() // the simulated job kill, mid-epoch
		}
	}
	if batches >= rows/opts.BatchSize {
		t.Fatalf("kill landed after the full epoch (%d batches); mid-epoch restart untested", batches)
	}

	// Run 2: a fresh process over the same directory. The restart must be
	// warm — some reads served by files the killed run left behind — and
	// the delivered stream must match the never-killed reference exactly.
	tds2, disk2 := openTier()
	hash, n, l2 := epochHash(t, tds2, opts)
	if err := l2.Err(); err != nil {
		t.Fatal(err)
	}
	if n != rows {
		t.Fatalf("restarted epoch delivered %d/%d rows", n, rows)
	}
	if hash != refHash {
		t.Fatal("restarted batch stream differs from the never-killed epoch")
	}
	if st := disk2.Stats(); st.WarmHits == 0 {
		t.Fatalf("restart over a populated disk tier served no warm hits: %+v", st)
	}
}

// TestLoaderSurfacesWorkerDeath: a worker goroutine killed mid-epoch (user
// code calling runtime.Goexit — the Go analogue of a dataloader worker
// process dying) must not truncate the stream silently. The contract is the
// worker-failure contract: an in-order prefix strictly before the dying
// row's delivery position, full batches only, and a deterministic
// ErrWorkerDied from Err() — at any worker count, every run.
func TestLoaderSurfacesWorkerDeath(t *testing.T) {
	const n, killRow = 200, 97
	ds := loaderDataset(t, storage.NewMemory(), n)
	for round := 0; round < 6; round++ {
		workers := []int{1, 2, 8}[round%3]
		l := ForDataset(ds, Options{
			BatchSize: 8, Workers: workers,
			Transform: func(s map[string]*tensor.NDArray) (map[string]*tensor.NDArray, error) {
				if v, _ := s["x"].At(0); v == killRow {
					runtime.Goexit()
				}
				return s, nil
			},
		})
		next := 0
		for b := range l.Batches(context.Background()) {
			if len(b.Samples) != 8 {
				t.Fatalf("workers=%d: partial batch of %d emitted on the death path", workers, len(b.Samples))
			}
			for _, s := range b.Samples {
				if v, _ := s["x"].At(0); v != float64(next) {
					t.Fatalf("workers=%d: row %v delivered out of order (want %d)", workers, v, next)
				}
				next++
			}
		}
		if next > killRow {
			t.Fatalf("workers=%d: delivered %d rows at/past the dying row %d", workers, next, killRow)
		}
		err := l.Err()
		if !errors.Is(err, ErrWorkerDied) {
			t.Fatalf("workers=%d round %d: Err() = %v, want ErrWorkerDied", workers, round, err)
		}
		if !strings.Contains(err.Error(), fmt.Sprintf("position %d", killRow)) {
			t.Fatalf("workers=%d: death position not deterministic: %v", workers, err)
		}
	}
}
