// Package dataloader implements the streaming dataloader of §4.6 as a
// chunk-aligned pipeline on the scan machinery: parallel chunk fetching,
// per-worker chunk-granular decode and user transforms, collation into
// batches, and bounded prefetching — delivering data fast enough that the
// (simulated) accelerator, not IO, is the bottleneck.
//
// The pipeline is:
//
//	epoch plans -> readahead scheduler ┐
//	epoch plans -> chunk jobs -> fetch+decode+transform workers -> reorder -> collate -> Batches()
//
// The sampler precomputes, per epoch, a chunk visit order (shuffled and
// sharded across Rank/WorldSize) and a delivery order (rows spilled through
// a bounded shuffle buffer). Workers own whole chunk jobs: each drains one
// chunk's rows through reused core.ScanReaders backed by a byte-budgeted
// chunk cache, so a chunk is fetched and decoded exactly once per epoch per
// rank no matter how many rows, columns or workers touch it — concurrent
// fetches of the same chunk coalesce through a singleflight layer — and a
// readahead scheduler walks the visit order a few chunks ahead of the
// workers so fetch latency overlaps with decode. Media decoding runs inside
// the worker pool (the Go analogue of the paper's per-process C++ decode
// that avoids the Python GIL). Because the delivery order is fixed before
// any worker starts, the batch stream is byte-identical for a given seed at
// any worker count.
package dataloader

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/tensor"
	"repro/internal/view"
)

// Transform mutates one sample row; it runs inside the worker pool and must
// be safe for concurrent use.
type Transform func(map[string]*tensor.NDArray) (map[string]*tensor.NDArray, error)

// ErrWorkerDied marks an epoch aborted because a worker goroutine died
// mid-job without returning — user code in the worker (a Transform, a
// codec) called runtime.Goexit or panicked past the pipeline. The loader
// never truncates the stream silently: Err() carries this sentinel wrapped
// with the dying row's delivery position, and delivery stops strictly
// before that position, exactly like any other worker failure.
var ErrWorkerDied = errors.New("dataloader: worker died mid-epoch")

// Options configures a Loader.
type Options struct {
	// BatchSize is the number of samples per batch (default 1).
	BatchSize int
	// Fields restricts the loaded columns; nil loads every view column.
	// Loading fewer tensors streams fewer chunks (§3.1 partial access).
	Fields []string
	// Shuffle enables chunk-granular shuffled streaming (§3.5): the chunk
	// visit order is randomized, then rows spill through a bounded buffer.
	Shuffle bool
	// ShuffleBuffer is the shuffle buffer size in samples (default 2048).
	ShuffleBuffer int
	// Seed makes shuffling reproducible. Batches are byte-identical for a
	// fixed seed at any worker count.
	Seed int64
	// Workers sets the fetch/decode/transform worker count (default
	// GOMAXPROCS).
	Workers int
	// Prefetch is the number of batches buffered ahead of the consumer
	// (default 4).
	Prefetch int
	// Transform is applied per sample in the worker pool.
	Transform Transform
	// DropLast drops each epoch's trailing partial batch.
	DropLast bool
	// MemoryBudget caps the chunk buffer cache in bytes (default 256MB).
	// This is the loader's "efficient resource allocation" bound (§4.6).
	MemoryBudget int64
	// Readahead is how many chunks the prefetch scheduler stays ahead of
	// the workers along the chunk visit order (default 4). Negative
	// disables readahead. Prefetches coalesce with worker fetches through
	// the chunk cache's singleflight layer, so no chunk is read twice.
	Readahead int
	// FetchBatch is how many upcoming chunks the readahead scheduler hands
	// to the storage layer's fetch planner at a time: near-adjacent chunk
	// objects in the strip coalesce into single batched ranged origin
	// requests (default 8). Requires a prefetch-capable provider chain (a
	// storage.LRU over a BatchProvider); otherwise it is a no-op. Negative
	// disables batched prefetch, keeping the one-request-per-chunk
	// behavior.
	FetchBatch int
	// RawBytes controls media decoding of sample-compressed tensors.
	// When true, raw stored bytes are exposed as 1-d uint8 arrays
	// (useful for byte-throughput benchmarks). Default false (decode).
	RawBytes bool
	// Rank and WorldSize shard each epoch's chunk visit order disjointly
	// across simulated training nodes (§6.5): rank r of world w owns
	// chunks r, r+w, r+2w, ... of the (shuffled) order. Every rank must
	// use the same Seed; the rank shards are then disjoint and together
	// cover every row. When the dataset has fewer chunks than ranks, the
	// shards degrade to row striding so no node starves (coverage stays
	// disjoint and complete). WorldSize 0 or 1 means a single node.
	Rank      int
	WorldSize int
	// Epochs streams this many epochs through one Batches call (default
	// 1). Each epoch reshuffles the chunk visit order with a reseeded rng
	// (derived from Seed and the epoch number), and batches never straddle
	// an epoch boundary.
	Epochs int
	// Cache shares a node-level decoded-chunk cache between Loaders: hand
	// the same NodeCache to every Loader (every rank) colocated on one
	// node and each shared chunk is fetched+decoded once per node instead
	// of once per rank (§3.5 buffer promoted to node scope; ROADMAP item
	// 4). Keys carry dataset and commit identity, so Loaders over
	// different datasets or commits can share one cache safely. Nil keeps
	// a private per-Loader cache sized by MemoryBudget; when Cache is set
	// the shared cache's own budget governs and MemoryBudget is ignored.
	Cache *NodeCache
}

func (o Options) withDefaults() Options {
	if o.BatchSize <= 0 {
		o.BatchSize = 1
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Prefetch <= 0 {
		o.Prefetch = 4
	}
	if o.ShuffleBuffer <= 0 {
		o.ShuffleBuffer = 2048
	}
	if o.MemoryBudget <= 0 {
		o.MemoryBudget = 256 << 20
	}
	if o.Readahead == 0 {
		o.Readahead = 4
	}
	if o.FetchBatch == 0 {
		o.FetchBatch = 8
	}
	if o.WorldSize <= 0 {
		o.WorldSize = 1
	}
	if o.Epochs <= 0 {
		o.Epochs = 1
	}
	return o
}

// Batch is one collated batch.
type Batch struct {
	// Index is the batch sequence number, starting at zero and running
	// across epochs.
	Index int
	// Epoch is the zero-based epoch this batch belongs to.
	Epoch int
	// Samples holds the per-sample column maps, in order.
	Samples []map[string]*tensor.NDArray
	// Stacked holds, per column, samples stacked along a new leading
	// axis — present only for columns whose samples share shape and
	// dtype (the deep-learning collation of §4.6).
	Stacked map[string]*tensor.NDArray
	// Unstacked names the columns (sorted) that could not be stacked —
	// mismatched shapes or dtypes across the batch's samples. Their values
	// are still delivered per-sample through Samples; they are listed here
	// so a consumer reading only Stacked sees the column was dropped from
	// collation rather than silently absent.
	Unstacked []string
}

// Loader streams batches from a view.
type Loader struct {
	v     *view.View
	opts  Options
	cache *NodeCache
	// scope is the owning dataset handle's identity, part of every cache
	// key so Loaders sharing a NodeCache across datasets never alias.
	scope uint64
	// led is this Loader's share of the (possibly shared) cache counters;
	// pins tracks the eviction pins its pipeline currently holds.
	led  cacheLedger
	pins pinLedger

	err  atomic.Value // error
	rows int64        // rows delivered (stats)
}

// New builds a loader over a view.
func New(v *view.View, opts Options) *Loader {
	opts = opts.withDefaults()
	cache := opts.Cache
	if cache == nil {
		cache = NewNodeCache(opts.MemoryBudget)
	}
	return &Loader{v: v, opts: opts, cache: cache, scope: v.Dataset().ScopeID()}
}

// Cache returns the node cache this Loader reads through — the shared one
// handed in via Options.Cache, or its private default.
func (l *Loader) Cache() *NodeCache { return l.cache }

// cacheGet reads one chunk's samples through the node cache, attributing
// ledger counters to this Loader.
func (l *Loader) cacheGet(ctx context.Context, t *core.Tensor, chunkID uint64) ([]chunk.Sample, error) {
	return l.cache.get(ctx, &l.led, l.scope, t, chunkID)
}

// ForDataset is a convenience wrapper over the identity view.
func ForDataset(ds *core.Dataset, opts Options) *Loader {
	return New(view.All(ds), opts)
}

// Err returns the first pipeline error once Batches' channel is closed. A
// worker failure always surfaces here (never silently truncates the
// stream), and when the pipeline fails on a sample it is the error of the
// earliest delivery position that aborted the epoch — not whatever
// cancellation fallout other workers produced while shutting down.
func (l *Loader) Err() error {
	if e, ok := l.err.Load().(error); ok {
		return e
	}
	return nil
}

// Rows reports how many samples have been delivered.
func (l *Loader) Rows() int64 { return atomic.LoadInt64(&l.rows) }

// CacheStats reports this Loader's chunk buffer cache hits and misses. On
// a shared NodeCache the figures are per-Loader shares; NodeCache.Stats
// has the node-level aggregate.
func (l *Loader) CacheStats() (hits, misses int64) {
	return l.led.hits.Load(), l.led.misses.Load()
}

// CacheCoalesced reports how many of this Loader's chunk fetches were
// absorbed into another in-flight fetch of the same chunk (workers, the
// readahead scheduler, or — on a shared cache — another Loader entirely).
func (l *Loader) CacheCoalesced() int64 { return l.led.coalesced.Load() }

// CacheDecodes reports how many chunk fetch+decodes this Loader actually
// ran (a decode joined by several Loaders is attributed to the one whose
// call ran it). The chunk-decode-once contract bounds the SUM across all
// Loaders sharing a NodeCache by the distinct (tensor, chunk) pairs
// visited per epoch — per node, not per rank.
func (l *Loader) CacheDecodes() int64 { return l.led.decodes.Load() }

// columns resolves the output column subset.
func (l *Loader) columns() ([]view.Column, error) {
	all := l.v.Columns()
	if l.opts.Fields == nil {
		return all, nil
	}
	var out []view.Column
	for _, f := range l.opts.Fields {
		found := false
		for _, c := range all {
			if c.Name == f {
				out = append(out, c)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("dataloader: unknown field %q", f)
		}
	}
	return out, nil
}

// primaryColumn picks the column whose chunk layout drives shuffling,
// sharding and readahead: the first stored identity column (typically the
// large media tensor).
func primaryColumn(cols []view.Column) string {
	for _, c := range cols {
		if c.Stored() {
			return c.Source
		}
	}
	return ""
}

type result struct {
	seq    int
	sample map[string]*tensor.NDArray
}

// errSink resolves which failure an epoch reports. Workers record errors
// with the delivery sequence of the failing row; the sink keeps the error
// of the earliest delivery position and never lets cancellation fallout
// (other workers aborting after the pipeline context is cancelled) displace
// a real failure — so Err() is deterministic for a deterministic fault.
type errSink struct {
	mu  sync.Mutex
	set bool
	seq int
	err error
}

func isCancel(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func (s *errSink) record(seq int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case !s.set:
		s.set, s.seq, s.err = true, seq, err
	case isCancel(err):
		// Shutdown fallout never displaces the recorded failure.
	case isCancel(s.err):
		s.seq, s.err = seq, err
	case seq < s.seq:
		s.seq, s.err = seq, err
	}
}

// barrier returns the delivery sequence of the recorded failure; rows at or
// past it are never delivered.
func (s *errSink) barrier() (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq, s.set
}

func (s *errSink) get() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Batches starts the pipeline and returns the batch channel. The channel
// closes when every requested epoch completes, the context is cancelled, or
// an error occurs (check Err afterwards). Batches may only be called once
// per Loader.
func (l *Loader) Batches(ctx context.Context) <-chan Batch {
	out := make(chan Batch, l.opts.Prefetch)
	cols, err := l.columns()
	if err == nil && (l.opts.Rank < 0 || l.opts.Rank >= l.opts.WorldSize) {
		err = fmt.Errorf("dataloader: rank %d out of range for world size %d", l.opts.Rank, l.opts.WorldSize)
	}
	if err != nil {
		l.err.Store(err)
		close(out)
		return out
	}
	ctx, cancel := context.WithCancel(ctx)
	primary := primaryColumn(cols)

	// Group rows by primary chunk once (the partition never changes), then
	// walk every epoch's shuffled, sharded chunk visit order to fix the
	// epoch row counts and ordinal bases. Only these O(Epochs) integers
	// are retained: the skeletons themselves are deterministic to rebuild,
	// so the feeder and the readahead scheduler regenerate each epoch's
	// shard on demand and the O(rows) plans live one epoch at a time.
	groups := chunkGroups(l.v, primary)
	epochEnd := make([]int, l.opts.Epochs)
	ordBase := make([]int, l.opts.Epochs)
	totalRows, totalOrds := 0, 0
	for e := range epochEnd {
		shard := buildShard(groups, l.opts, e)
		ordBase[e] = totalOrds
		totalOrds += len(shard.groups)
		totalRows += shard.rows
		epochEnd[e] = totalRows
	}

	jobs := make(chan chunkJob, l.opts.Workers*2)
	results := make(chan result, l.opts.Workers*4)
	sink := &errSink{}

	// Readahead scheduler: prefetch upcoming chunks into the chunk cache,
	// staying at most Readahead distinct chunks ahead of the workers along
	// the chunk visit order.
	var prog *raProgress
	var raReady chan struct{}
	if l.opts.Readahead > 0 {
		if t := readaheadDriver(l.v, primary, groups); t != nil {
			// Secondary stored fields ride the same strip prefetch so their
			// chunks land in coalesced plans instead of worker round trips.
			var secondaries []*core.Tensor
			for _, c := range cols {
				if !c.Stored() || c.Source == primary {
					continue
				}
				if st := l.v.Dataset().Tensor(c.Source); st != nil && !st.Htype().Sequence && !st.Htype().Link {
					secondaries = append(secondaries, st)
				}
			}
			prog = newRAProgress()
			go func() {
				<-ctx.Done()
				prog.stop()
			}()
			raReady = make(chan struct{})
			go runReadahead(ctx, l, t, secondaries, groups, l.opts, prog, l.opts.Readahead, raReady)
		}
	}

	// Job feeder: chunk jobs in visit order, epochs back to back, with
	// sequences and chunk ordinals renumbered into the global stream. The
	// first job waits for the readahead scheduler's opening fetch strip, so
	// the workers' first misses coalesce onto the strip's batched origin
	// requests instead of racing them with one-chunk round trips.
	//
	// Each job's primary chunk is pinned in the node cache before the job
	// is enqueued and unpinned by the worker that finishes it, so a tight
	// MemoryBudget can never evict a decoded chunk that a
	// planned-but-unstarted job still needs (the silent re-decode that
	// would break the fetch+decode-once contract). The feeder joins the
	// worker WaitGroup so the pipeline's pin sweep (releaseAll below) runs
	// strictly after the last pin is taken.
	primaryTensor := l.v.Dataset().Tensor(primary)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(jobs)
		if raReady != nil {
			select {
			case <-raReady:
			case <-ctx.Done():
				return
			}
		}
		seqBase := 0
		for e := 0; e < l.opts.Epochs; e++ {
			p := buildPlan(l.v, buildShard(groups, l.opts, e), l.opts, e)
			for _, cj := range p.jobs {
				cj.ord += ordBase[e]
				for ri := range cj.rows {
					cj.rows[ri].seq += seqBase
				}
				if primaryTensor != nil && cj.chunkID != noChunk {
					cj.pin = cacheKey{scope: l.scope, obj: primaryTensor.ChunkIdentity(cj.chunkID)}
					cj.pinned = true
					l.pins.pin(l.cache, cj.pin)
				}
				select {
				case jobs <- cj:
				case <-ctx.Done():
					return
				}
			}
			seqBase += p.rows
		}
	}()

	// Workers: each owns whole chunk jobs and drains them through reused
	// per-tensor ScanReaders backed by the shared chunk cache, so one job
	// fetches and decodes its chunk exactly once.
	//
	// When the batched-prefetch path is active, the fetch planner — not the
	// worker count — overlaps origin latency: workers almost never block on
	// the wire, so goroutines beyond the CPU count only add scheduler churn.
	// Cap the spawned pool at a small multiple of GOMAXPROCS then; the
	// batch stream is delivery-sequence ordered, so the cap (like Workers
	// itself) never changes what is delivered. Without batched prefetch,
	// workers ARE the IO parallelism and the full count is spawned.
	spawn := l.opts.Workers
	if prog != nil && l.opts.FetchBatch > 0 {
		if c := 2 * runtime.GOMAXPROCS(0); c < spawn {
			spawn = c
		}
	}
	for w := 0; w < spawn; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Worker-death watchdog: a goroutine that dies mid-job without
			// reaching a normal exit path (user code calling runtime.Goexit,
			// or a panic unwinding) would otherwise strand its undelivered
			// rows — the reorder stage would wait on sequence numbers that
			// never arrive and the stream would truncate silently with a nil
			// Err. Record the death at the dying row's delivery position
			// instead: the contract stays the worker-failure contract — an
			// in-order prefix strictly before the death position, then a
			// deterministic error.
			exited, deathSeq := false, 0
			defer func() {
				if exited {
					return
				}
				sink.record(deathSeq, fmt.Errorf("%w at delivery position %d", ErrWorkerDied, deathSeq))
				cancel()
			}()
			rl := newRowLoader(l, cols)
			for cj := range jobs {
				if prog != nil {
					prog.advance(cj.ord)
				}
				for _, rj := range cj.rows {
					deathSeq = rj.seq
					sample, err := rl.load(ctx, rj)
					if err != nil {
						sink.record(rj.seq, err)
						cancel()
						exited = true
						return
					}
					select {
					case results <- result{seq: rj.seq, sample: sample}:
					case <-ctx.Done():
						exited = true
						return
					}
				}
				// Job done: its chunk no longer needs eviction protection
				// from this job. Early-return paths above leave the pin to
				// the pipeline sweep below.
				if cj.pinned {
					l.pins.unpin(l.cache, cj.pin)
				}
			}
			exited = true
		}()
	}
	go func() {
		wg.Wait()
		// Pipeline over (feeder and workers both done): drop whatever pins
		// are still held — jobs stranded in the channel by a cancellation,
		// jobs a dying worker never finished — so an aborted epoch cannot
		// leak pinned entries into a shared, long-lived cache.
		l.pins.releaseAll(l.cache)
		close(results)
	}()

	// Reorder + collate + emit: rows leave in the precomputed delivery
	// order regardless of which worker decoded them, and never at or past
	// a recorded failure's position.
	go func() {
		defer cancel()
		defer close(out)
		// Finalize the epoch error before the channel closes (LIFO: this
		// runs first), whichever path unwound the stage: a recorded worker
		// failure always wins over cancellation fallout, so Err() is
		// deterministic once the consumer sees the close.
		defer func() {
			if err := sink.get(); err != nil {
				l.err.Store(err)
				return
			}
			if ctx.Err() != nil {
				l.err.Store(ctx.Err())
			}
		}()
		pending := map[int]map[string]*tensor.NDArray{}
		next := 0
		epoch := 0
		batchIdx := 0
		coll := newCollator()
		var cur []map[string]*tensor.NDArray
		flush := func(force bool) bool {
			if len(cur) == 0 {
				return true
			}
			if !force && len(cur) < l.opts.BatchSize {
				return true
			}
			if force && l.opts.DropLast && len(cur) < l.opts.BatchSize {
				cur = nil
				return true
			}
			stacked, unstacked := coll.collate(cur)
			b := Batch{Index: batchIdx, Epoch: epoch, Samples: cur, Stacked: stacked, Unstacked: unstacked}
			batchIdx++
			cur = nil
			select {
			case out <- b:
				return true
			case <-ctx.Done():
				return false
			}
		}
		for r := range results {
			if bseq, bad := sink.barrier(); bad && r.seq >= bseq {
				continue
			}
			pending[r.seq] = r.sample
			for {
				if bseq, bad := sink.barrier(); bad && next >= bseq {
					break
				}
				s, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				// Skip past epochs the rank's shard left empty.
				for epoch+1 < len(epochEnd) && next >= epochEnd[epoch] {
					epoch++
				}
				next++
				cur = append(cur, s)
				atomic.AddInt64(&l.rows, 1)
				if next == epochEnd[epoch] {
					if !flush(true) {
						return
					}
				} else if len(cur) == l.opts.BatchSize {
					if !flush(false) {
						return
					}
				}
			}
		}
	}()
	return out
}

// rowLoader is one worker's read state: a ScanReader per stored column,
// backed by the shared chunk cache, so the rows of one chunk job decode
// their chunk once however many rows and columns it covers, and chunks
// shared between workers are still fetched once (singleflight).
type rowLoader struct {
	l       *Loader
	cols    []view.Column
	readers map[string]*core.ScanReader
	// arena serves the worker's sample decode copies from pooled slabs.
	// The decoded arrays escape into user batches, so the arena is never
	// Reset — it amortizes allocation (few large slabs instead of one heap
	// allocation per sample), it does not recycle memory.
	arena *chunk.Arena
}

func newRowLoader(l *Loader, cols []view.Column) *rowLoader {
	return &rowLoader{l: l, cols: cols, readers: map[string]*core.ScanReader{}, arena: chunk.NewArena()}
}

func (w *rowLoader) reader(t *core.Tensor) *core.ScanReader {
	r, ok := w.readers[t.Name()]
	if !ok {
		r = t.NewScanReaderWith(func(ctx context.Context, chunkID uint64) ([]chunk.Sample, error) {
			return w.l.cacheGet(ctx, t, chunkID)
		})
		r.SetArena(w.arena)
		w.readers[t.Name()] = r
	}
	return r
}

// load materializes one row of the selected columns.
func (w *rowLoader) load(ctx context.Context, rj rowJob) (map[string]*tensor.NDArray, error) {
	sample := make(map[string]*tensor.NDArray, len(w.cols))
	for _, c := range w.cols {
		var arr *tensor.NDArray
		var err error
		switch {
		case c.Eval != nil:
			arr, err = c.Eval(ctx, rj.src)
		case c.Source != "":
			arr, err = w.loadStored(ctx, c.Source, rj.src)
		default:
			err = fmt.Errorf("dataloader: column %q has neither source nor eval", c.Name)
		}
		if err != nil {
			return nil, fmt.Errorf("dataloader: row %d column %q: %w", rj.row, c.Name, err)
		}
		sample[c.Name] = arr
	}
	if w.l.opts.Transform != nil {
		out, err := w.l.opts.Transform(sample)
		if err != nil {
			return nil, fmt.Errorf("dataloader: transform at row %d: %w", rj.row, err)
		}
		sample = out
	}
	return sample, nil
}

// loadStored reads one stored sample through the worker's ScanReader and
// decodes it in this worker.
func (w *rowLoader) loadStored(ctx context.Context, tensorName string, src uint64) (*tensor.NDArray, error) {
	t := w.l.v.Dataset().Tensor(tensorName)
	if t == nil {
		return nil, fmt.Errorf("dataloader: unknown tensor %q", tensorName)
	}
	// Sequence/link samples take the tensor's own read path.
	if t.Htype().Sequence || t.Htype().Link {
		return t.At(ctx, src)
	}
	r := w.reader(t)
	if w.l.opts.RawBytes {
		s, ok, err := r.StoredAt(ctx, src)
		if err != nil {
			return nil, err
		}
		if !ok {
			// Tiled or write-buffered samples fall back to the tensor read
			// path, which reassembles them.
			return t.At(ctx, src)
		}
		return tensor.FromBytes(tensor.UInt8, []int{len(s.Data)}, w.arena.Copy(s.Data))
	}
	// At decodes through the reader's arena and falls back to the tensor
	// read path for tiled or write-buffered samples itself.
	return r.At(ctx, src)
}

// collator assembles the Stacked side of batches for one pipeline. The
// stacked columns' backing bytes are drawn from a per-pipeline arena
// instead of a fresh heap array per column per batch: stacked arrays escape
// into user batches, so the arena is never Reset — like the rowLoader's
// decode arena it amortizes allocation into pooled 256KB slabs rather than
// recycling memory. One collator is owned by the single reorder/emit
// goroutine, so it needs no locking.
type collator struct {
	arena *chunk.Arena
	// arrs is the reused per-column gather scratch.
	arrs []*tensor.NDArray
}

func newCollator() *collator {
	return &collator{arena: chunk.NewArena()}
}

// collate stacks equal-shape columns along a new batch axis. Columns whose
// samples disagree on shape or dtype cannot be stacked; they are returned
// in unstacked (sorted) so the batch can surface them instead of silently
// dropping the column — their per-sample values remain in Batch.Samples.
func (c *collator) collate(samples []map[string]*tensor.NDArray) (out map[string]*tensor.NDArray, unstacked []string) {
	if len(samples) == 0 {
		return nil, nil
	}
	out = make(map[string]*tensor.NDArray, len(samples[0]))
	for name := range samples[0] {
		arrs := c.arrs[:0]
		complete := true
		for _, s := range samples {
			a, ok := s[name]
			if !ok {
				complete = false
				break
			}
			arrs = append(arrs, a)
		}
		c.arrs = arrs[:0]
		if !complete {
			// The column is not present in every sample (transforms may
			// emit ragged maps): nothing coherent to stack or report.
			continue
		}
		stacked, err := c.stack(arrs)
		if err != nil {
			unstacked = append(unstacked, name)
			continue
		}
		out[name] = stacked
	}
	sort.Strings(unstacked)
	return out, unstacked
}

// stack runs tensor.StackInto over an arena-backed buffer sized for the
// column. Shape/dtype validation happens in StackInto before the buffer is
// touched; on mismatch the reserved bytes are simply abandoned to the
// arena's current slab (bounded by error frequency, and mismatched columns
// are reported once per batch).
func (c *collator) stack(arrs []*tensor.NDArray) (*tensor.NDArray, error) {
	buf := c.arena.Alloc(arrs[0].NumBytes() * len(arrs))
	return tensor.StackInto(arrs, buf)
}
