// Package dataloader implements the streaming dataloader of §4.6: parallel
// chunk fetching, per-worker decompression and user transforms, collation
// into batches, and bounded prefetching — delivering data fast enough that
// the (simulated) accelerator, not IO, is the bottleneck.
//
// The pipeline is:
//
//	sampler -> readahead scheduler ┐
//	sampler -> fetch+decode+transform workers -> reorder -> collate -> Batches()
//
// Chunks are fetched once into a byte-budgeted buffer cache regardless of
// how many samples or workers need them — concurrent fetches of the same
// chunk are coalesced through a singleflight layer — and a readahead
// scheduler walks the sampler's visit order a few chunks ahead of the
// workers so fetch latency overlaps with decode. Media decoding runs inside
// the worker pool (the Go analogue of the paper's per-process C++ decode
// that avoids the Python GIL).
package dataloader

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/tensor"
	"repro/internal/view"
)

// Transform mutates one sample row; it runs inside the worker pool and must
// be safe for concurrent use.
type Transform func(map[string]*tensor.NDArray) (map[string]*tensor.NDArray, error)

// Options configures a Loader.
type Options struct {
	// BatchSize is the number of samples per batch (default 1).
	BatchSize int
	// Fields restricts the loaded columns; nil loads every view column.
	// Loading fewer tensors streams fewer chunks (§3.1 partial access).
	Fields []string
	// Shuffle enables chunk-aware shuffled streaming (§3.5).
	Shuffle bool
	// ShuffleBuffer is the shuffle buffer size in samples (default 2048).
	ShuffleBuffer int
	// Seed makes shuffling reproducible.
	Seed int64
	// Workers sets the fetch/decode/transform worker count (default
	// GOMAXPROCS).
	Workers int
	// Prefetch is the number of batches buffered ahead of the consumer
	// (default 4).
	Prefetch int
	// Transform is applied per sample in the worker pool.
	Transform Transform
	// DropLast drops a trailing partial batch.
	DropLast bool
	// MemoryBudget caps the chunk buffer cache in bytes (default 256MB).
	// This is the loader's "efficient resource allocation" bound (§4.6).
	MemoryBudget int64
	// Readahead is how many chunks the prefetch scheduler stays ahead of
	// the workers along the sampler's visit order (default 4). Negative
	// disables readahead. Prefetches coalesce with worker fetches through
	// the chunk cache's singleflight layer, so no chunk is read twice.
	Readahead int
	// Decode controls media decoding of sample-compressed tensors.
	// When false, raw stored bytes are exposed as 1-d uint8 arrays
	// (useful for byte-throughput benchmarks). Default true.
	RawBytes bool
}

func (o Options) withDefaults() Options {
	if o.BatchSize <= 0 {
		o.BatchSize = 1
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Prefetch <= 0 {
		o.Prefetch = 4
	}
	if o.ShuffleBuffer <= 0 {
		o.ShuffleBuffer = 2048
	}
	if o.MemoryBudget <= 0 {
		o.MemoryBudget = 256 << 20
	}
	if o.Readahead == 0 {
		o.Readahead = 4
	}
	return o
}

// Batch is one collated batch.
type Batch struct {
	// Index is the batch sequence number, starting at zero.
	Index int
	// Samples holds the per-sample column maps, in order.
	Samples []map[string]*tensor.NDArray
	// Stacked holds, per column, samples stacked along a new leading
	// axis — present only for columns whose samples share shape and
	// dtype (the deep-learning collation of §4.6).
	Stacked map[string]*tensor.NDArray
}

// Loader streams batches from a view.
type Loader struct {
	v     *view.View
	opts  Options
	cache *chunkCache

	err  atomic.Value // error
	rows int64        // rows delivered (stats)
}

// New builds a loader over a view.
func New(v *view.View, opts Options) *Loader {
	opts = opts.withDefaults()
	return &Loader{v: v, opts: opts, cache: newChunkCache(opts.MemoryBudget)}
}

// ForDataset is a convenience wrapper over the identity view.
func ForDataset(ds *core.Dataset, opts Options) *Loader {
	return New(view.All(ds), opts)
}

// Err returns the first pipeline error once Batches' channel is closed.
func (l *Loader) Err() error {
	if e, ok := l.err.Load().(error); ok {
		return e
	}
	return nil
}

// Rows reports how many samples have been delivered.
func (l *Loader) Rows() int64 { return atomic.LoadInt64(&l.rows) }

// CacheStats reports chunk buffer cache hits and misses.
func (l *Loader) CacheStats() (hits, misses int64) { return l.cache.stats() }

// CacheCoalesced reports how many chunk fetches were absorbed into another
// in-flight fetch of the same chunk (workers or the readahead scheduler).
func (l *Loader) CacheCoalesced() int64 { return l.cache.coalescedCount() }

// columns resolves the output column subset.
func (l *Loader) columns() ([]view.Column, error) {
	all := l.v.Columns()
	if l.opts.Fields == nil {
		return all, nil
	}
	var out []view.Column
	for _, f := range l.opts.Fields {
		found := false
		for _, c := range all {
			if c.Name == f {
				out = append(out, c)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("dataloader: unknown field %q", f)
		}
	}
	return out, nil
}

// primaryColumn picks the column whose chunk layout drives shuffling: the
// first identity column (typically the large media tensor).
func primaryColumn(cols []view.Column) string {
	for _, c := range cols {
		if c.Source != "" {
			return c.Source
		}
	}
	return ""
}

type job struct {
	seq int
	row int
}

type result struct {
	seq    int
	sample map[string]*tensor.NDArray
	err    error
}

// Batches starts the pipeline and returns the batch channel. The channel
// closes when the epoch completes, the context is cancelled, or an error
// occurs (check Err afterwards). Batches may only be called once per
// Loader.
func (l *Loader) Batches(ctx context.Context) <-chan Batch {
	out := make(chan Batch, l.opts.Prefetch)
	cols, err := l.columns()
	if err != nil {
		l.err.Store(err)
		close(out)
		return out
	}
	ctx, cancel := context.WithCancel(ctx)
	s := newSampler(l.v, l.opts.Shuffle, l.opts.ShuffleBuffer, l.opts.Seed, primaryColumn(cols))

	jobs := make(chan job, l.opts.Workers*2)
	results := make(chan result, l.opts.Workers*2)

	// Readahead scheduler: prefetch upcoming chunks into the chunk cache,
	// staying at most Readahead chunks ahead of the workers.
	var prog *raProgress
	var plan *prefetchPlan
	if l.opts.Readahead > 0 {
		plan = buildPrefetchPlan(l.v, cols, s.order)
	}
	if plan != nil {
		prog = newRAProgress()
		go func() {
			<-ctx.Done()
			prog.stop()
		}()
		go runReadahead(ctx, l.cache, plan, prog, l.opts.Readahead)
	}

	// Job feeder.
	go func() {
		defer close(jobs)
		for seq, row := range s.order {
			select {
			case jobs <- job{seq: seq, row: row}:
			case <-ctx.Done():
				return
			}
		}
	}()

	// Workers: fetch (through the chunk cache), decode, transform.
	var wg sync.WaitGroup
	for w := 0; w < l.opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if prog != nil {
					prog.advance(plan.rowOrd[j.seq])
				}
				sample, err := l.loadSample(ctx, cols, j.row)
				select {
				case results <- result{seq: j.seq, sample: sample, err: err}:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Reorder + collate + emit.
	go func() {
		defer cancel()
		defer close(out)
		pending := map[int]result{}
		next := 0
		batchIdx := 0
		var cur []map[string]*tensor.NDArray
		flush := func(force bool) bool {
			if len(cur) == 0 {
				return true
			}
			if !force && len(cur) < l.opts.BatchSize {
				return true
			}
			if force && l.opts.DropLast && len(cur) < l.opts.BatchSize {
				cur = nil
				return true
			}
			b := Batch{Index: batchIdx, Samples: cur, Stacked: collate(cur)}
			batchIdx++
			cur = nil
			select {
			case out <- b:
				return true
			case <-ctx.Done():
				return false
			}
		}
		for r := range results {
			pending[r.seq] = r
			for {
				rr, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				next++
				if rr.err != nil {
					l.err.Store(rr.err)
					return
				}
				cur = append(cur, rr.sample)
				atomic.AddInt64(&l.rows, 1)
				if len(cur) == l.opts.BatchSize {
					if !flush(false) {
						return
					}
				}
			}
		}
		if ctx.Err() != nil && l.err.Load() == nil {
			l.err.Store(ctx.Err())
		}
		flush(true)
	}()
	return out
}

// loadSample materializes one row of the selected columns.
func (l *Loader) loadSample(ctx context.Context, cols []view.Column, row int) (map[string]*tensor.NDArray, error) {
	src, err := l.v.SourceRow(row)
	if err != nil {
		return nil, err
	}
	sample := make(map[string]*tensor.NDArray, len(cols))
	for _, c := range cols {
		var arr *tensor.NDArray
		switch {
		case c.Eval != nil:
			arr, err = c.Eval(ctx, src)
		case c.Source != "":
			arr, err = l.loadStored(ctx, c.Source, src)
		default:
			err = fmt.Errorf("dataloader: column %q has neither source nor eval", c.Name)
		}
		if err != nil {
			return nil, fmt.Errorf("dataloader: row %d column %q: %w", row, c.Name, err)
		}
		sample[c.Name] = arr
	}
	if l.opts.Transform != nil {
		out, err := l.opts.Transform(sample)
		if err != nil {
			return nil, fmt.Errorf("dataloader: transform at row %d: %w", row, err)
		}
		sample = out
	}
	return sample, nil
}

// loadStored reads one stored sample through the chunk cache and decodes it
// in this worker.
func (l *Loader) loadStored(ctx context.Context, tensorName string, src uint64) (*tensor.NDArray, error) {
	t := l.v.Dataset().Tensor(tensorName)
	if t == nil {
		return nil, fmt.Errorf("dataloader: unknown tensor %q", tensorName)
	}
	// Sequence/link/tiled samples take the tensor's own read path.
	if t.Htype().Sequence || t.Htype().Link {
		return t.At(ctx, src)
	}
	chunkID, local, err := t.ChunkOf(src)
	if err != nil {
		return nil, err
	}
	samples, err := l.cache.get(ctx, t, chunkID)
	if err != nil {
		return nil, err
	}
	if local >= len(samples) {
		// Tiled samples register under their first tile chunk; fall
		// back to the tensor read path.
		return t.At(ctx, src)
	}
	s := samples[local]
	if l.opts.RawBytes {
		data := make([]byte, len(s.Data))
		copy(data, s.Data)
		return tensor.FromBytes(tensor.UInt8, []int{len(data)}, data)
	}
	return t.DecodeStored(s.Data, s.Shape)
}

// collate stacks equal-shape columns along a new batch axis.
func collate(samples []map[string]*tensor.NDArray) map[string]*tensor.NDArray {
	if len(samples) == 0 {
		return nil
	}
	out := map[string]*tensor.NDArray{}
	for name := range samples[0] {
		arrs := make([]*tensor.NDArray, 0, len(samples))
		for _, s := range samples {
			a, ok := s[name]
			if !ok {
				arrs = nil
				break
			}
			arrs = append(arrs, a)
		}
		if arrs == nil {
			continue
		}
		if stacked, err := tensor.Stack(arrs); err == nil {
			out[name] = stacked
		}
	}
	return out
}
