package dataloader

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/view"
)

// VisitOrder exposes the row order a loader over the full dataset would
// visit with the given shuffle settings; ablation benchmarks use it to
// score shuffle quality without streaming any data.
func VisitOrder(ds *core.Dataset, shuffle bool, shuffleBuffer int, seed int64) []int {
	v := view.All(ds)
	s := newSampler(v, shuffle, shuffleBuffer, seed, primaryColumn(v.Columns()))
	return s.order
}

// sampler produces the order in which view rows are visited.
//
// Sequential order visits rows as stored, which streams chunks exactly once
// front to back. Shuffled order implements the paper's chunk-aware shuffle
// (§3.5): the chunk visit order is randomized and samples spill through a
// bounded shuffle buffer, giving near-uniform shuffling while keeping chunk
// locality — no shuffle cluster required.
type sampler struct {
	order []int
}

func newSampler(v *view.View, shuffle bool, shuffleBuffer int, seed int64, primary string) *sampler {
	n := v.Len()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if !shuffle || n <= 1 {
		return &sampler{order: order}
	}
	rng := rand.New(rand.NewSource(seed))

	// Group view rows by the chunk of the primary tensor so the fetch
	// stage sees chunk-local runs.
	groups := map[uint64][]int{}
	var groupKeys []uint64
	t := v.Dataset().Tensor(primary)
	for row := 0; row < n; row++ {
		src, err := v.SourceRow(row)
		if err != nil {
			continue
		}
		var key uint64
		if t != nil {
			if id, _, err := t.ChunkOf(src); err == nil {
				key = id
			}
		} else {
			key = src // no primary tensor: degenerate per-row groups
		}
		if _, ok := groups[key]; !ok {
			groupKeys = append(groupKeys, key)
		}
		groups[key] = append(groups[key], row)
	}
	// Randomize chunk visit order.
	rng.Shuffle(len(groupKeys), func(i, j int) { groupKeys[i], groupKeys[j] = groupKeys[j], groupKeys[i] })

	// Spill through a bounded shuffle buffer.
	if shuffleBuffer <= 0 {
		shuffleBuffer = 2048
	}
	buf := make([]int, 0, shuffleBuffer)
	out := make([]int, 0, n)
	emit := func() {
		k := rng.Intn(len(buf))
		out = append(out, buf[k])
		buf[k] = buf[len(buf)-1]
		buf = buf[:len(buf)-1]
	}
	for _, key := range groupKeys {
		for _, row := range groups[key] {
			if len(buf) == shuffleBuffer {
				emit()
			}
			buf = append(buf, row)
		}
	}
	for len(buf) > 0 {
		emit()
	}
	return &sampler{order: out}
}
