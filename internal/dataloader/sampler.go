package dataloader

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/view"
)

// The sampler implements the paper's chunk-granular shuffle (§3.5, §4.6)
// as a precomputed epoch plan with two independent orders:
//
//   - the CHUNK VISIT ORDER: the distinct chunks of the primary tensor,
//     shuffled per epoch and sharded disjointly across Rank/WorldSize. This
//     is the order chunks are fetched and decoded in — each exactly once
//     per epoch per rank — and the order the readahead scheduler follows.
//   - the DELIVERY ORDER: the row order the consumer sees, produced by
//     spilling the visit order's rows through a bounded shuffle buffer.
//     Near-uniform shuffling with chunk-local fetches, no shuffle cluster.
//
// Both orders are fixed before any worker starts, so batches are
// byte-identical for a given (Seed, epoch, Rank, WorldSize) at any worker
// count: workers race only over who decodes which chunk, never over what
// the consumer receives.

// noChunk marks a chunk job with no stored primary chunk (computed-only
// views, sequence/link primaries): the job is a degenerate single-row group
// and the readahead scheduler skips it.
const noChunk = ^uint64(0)

// oversubscribe controls how many jobs each worker gets on average: large
// chunk groups are split into sub-jobs so per-sample work (media decode,
// transforms) inside one hot chunk still spreads across the pool — the
// chunk itself is fetched and container-decoded once either way, through
// the shared cache's singleflight layer. More jobs smooth out skew in
// per-chunk cost at slightly more scheduling overhead (the same policy as
// the TQL scan engine).
const oversubscribe = 4

// rowJob is one view row inside a chunk job: the view row, its source row,
// and the delivery sequence at which the reorder stage emits it.
type rowJob struct {
	seq int
	row int
	src uint64
}

// chunkJob is the unit of worker scheduling: one primary-tensor chunk and
// selected rows living in it, in stored order. A worker drains the whole
// job through its reused ScanReaders, so the chunk is fetched and decoded
// once however many rows (or columns) it covers. ord is the job's DISTINCT
// CHUNK ordinal in the (global) visit order: sub-jobs of one split group
// share it, so the readahead window is always measured in chunks.
type chunkJob struct {
	ord     int
	chunkID uint64
	rows    []rowJob
	// pin is the node-cache key the feeder pinned on behalf of this job
	// (valid when pinned is true); the worker that finishes the job drops
	// it. Sub-jobs of one split group each carry their own pin reference.
	pin    cacheKey
	pinned bool
}

// epochShard is one epoch's shuffled, rank-sharded chunk visit order —
// the O(chunks) skeleton computed up front for every epoch, from which row
// counts, the readahead itinerary, and (lazily) the row-level plan derive.
type epochShard struct {
	groups []groupRef
	rows   int
}

// epochPlan is the row-level expansion of one epochShard: chunk jobs with
// delivery sequences. It is O(rows) and built lazily, one epoch at a time,
// by the pipeline's feeder — then dropped, so multi-epoch runs never hold
// more than one epoch's row state. Sequences and ordinals are epoch-local;
// the loader offsets them into a global numbering when chaining epochs.
type epochPlan struct {
	jobs []chunkJob
	rows int
}

// groupRef is one chunk-aligned row group during plan construction.
type groupRef struct {
	key   uint64
	chunk bool // key is a primary chunk id, not a degenerate per-row group
	rows  []int
}

// chunkGroups partitions the view's rows by the primary tensor's chunks,
// preserving stored order inside each group and first-visit order across
// groups. Rows without a stored primary chunk become per-row groups.
func chunkGroups(v *view.View, primary string) []groupRef {
	t := v.Dataset().Tensor(primary)
	if t != nil && (t.Htype().Sequence || t.Htype().Link) {
		t = nil
	}
	n := v.Len()
	idx := map[uint64]int{}
	var groups []groupRef
	for row := 0; row < n; row++ {
		src, err := v.SourceRow(row)
		if err == nil && t != nil {
			if id, _, cerr := t.ChunkOf(src); cerr == nil {
				g, ok := idx[id]
				if !ok {
					g = len(groups)
					idx[id] = g
					groups = append(groups, groupRef{key: id, chunk: true})
				}
				groups[g].rows = append(groups[g].rows, row)
				continue
			}
		}
		groups = append(groups, groupRef{key: noChunk, rows: []int{row}})
	}
	return groups
}

// epochSeed decorrelates per-epoch rngs (§4.6 per-epoch reseeding) while
// keeping epoch 0 of the base seed identical to the single-epoch order.
// salt separates the chunk-order shuffle stream from the buffer-spill
// stream, so the shard skeleton can be computed without the row walk.
func epochSeed(seed int64, epoch int, salt int64) int64 {
	return seed ^ int64(epoch)*-0x61C8864680B583EB ^ salt // golden-ratio stride
}

const (
	shuffleSalt = 0
	spillSalt   = 0x632BE59BD9B4E019
)

// buildShard computes the rank's chunk visit order for one epoch — the
// shuffled, sharded group skeleton, O(chunks) except under the row-striding
// fallback. Every rank of a world must use the same Seed: they all shuffle
// the same chunk list, then rank r keeps chunks r, r+w, r+2w, ... —
// disjoint and complete by construction. When the dataset has fewer chunks
// than ranks, shards degrade to striding rows so no rank starves.
func buildShard(groups []groupRef, o Options, epoch int) epochShard {
	order := append([]groupRef(nil), groups...)
	if o.Shuffle {
		rng := rand.New(rand.NewSource(epochSeed(o.Seed, epoch, shuffleSalt)))
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	if o.WorldSize > 1 {
		if len(order) >= o.WorldSize {
			// Chunk-granular sharding: rank r keeps chunks r, r+w, ...
			mine := make([]groupRef, 0, (len(order)+o.WorldSize-1)/o.WorldSize)
			for i := o.Rank; i < len(order); i += o.WorldSize {
				mine = append(mine, order[i])
			}
			order = mine
		} else {
			// Fewer chunks than ranks: chunk sharding would leave ranks
			// idle, so stride the rows of the visit order instead. Every
			// rank touches (and decodes) the shared chunks, but coverage
			// stays disjoint and complete and no accelerator starves.
			mine := make([]groupRef, 0, len(order))
			i := 0
			for _, g := range order {
				keep := groupRef{key: g.key, chunk: g.chunk}
				for _, row := range g.rows {
					if i%o.WorldSize == o.Rank {
						keep.rows = append(keep.rows, row)
					}
					i++
				}
				if len(keep.rows) > 0 {
					mine = append(mine, keep)
				}
			}
			order = mine
		}
	}
	shard := epochShard{groups: order}
	for _, g := range order {
		shard.rows += len(g.rows)
	}
	return shard
}

// buildPlan expands one epoch's shard into chunk jobs with delivery
// sequences — the O(rows) step the feeder runs lazily per epoch. The
// delivery order is the visit order itself, or, when shuffling, the visit
// order spilled through a bounded buffer.
func buildPlan(v *view.View, shard epochShard, o Options, epoch int) *epochPlan {
	seqOf := make([]int, v.Len())
	next := 0
	if !o.Shuffle {
		for _, g := range shard.groups {
			for _, row := range g.rows {
				seqOf[row] = next
				next++
			}
		}
	} else {
		rng := rand.New(rand.NewSource(epochSeed(o.Seed, epoch, spillSalt)))
		buf := make([]int, 0, o.ShuffleBuffer)
		emit := func() {
			k := rng.Intn(len(buf))
			seqOf[buf[k]] = next
			next++
			buf[k] = buf[len(buf)-1]
			buf = buf[:len(buf)-1]
		}
		for _, g := range shard.groups {
			for _, row := range g.rows {
				if len(buf) == o.ShuffleBuffer {
					emit()
				}
				buf = append(buf, row)
			}
		}
		for len(buf) > 0 {
			emit()
		}
	}

	// Split oversized groups so one hot chunk cannot serialize the pool's
	// per-sample decode work behind a single worker. Sub-jobs keep their
	// group's ordinal: the readahead window counts chunks, not jobs.
	maxRows := (next + o.Workers*oversubscribe - 1) / (o.Workers * oversubscribe)
	if maxRows < 1 {
		maxRows = 1
	}
	plan := &epochPlan{rows: next, jobs: make([]chunkJob, 0, len(shard.groups))}
	for ord, g := range shard.groups {
		for lo := 0; lo < len(g.rows); lo += maxRows {
			hi := lo + maxRows
			if hi > len(g.rows) {
				hi = len(g.rows)
			}
			cj := chunkJob{ord: ord, chunkID: noChunk, rows: make([]rowJob, 0, hi-lo)}
			if g.chunk {
				cj.chunkID = g.key
			}
			for _, row := range g.rows[lo:hi] {
				src, err := v.SourceRow(row)
				if err != nil {
					continue // unreachable: row came from the same view walk
				}
				cj.rows = append(cj.rows, rowJob{seq: seqOf[row], row: row, src: src})
			}
			plan.jobs = append(plan.jobs, cj)
		}
	}
	return plan
}

// VisitOrder exposes the delivery order a single-rank loader over the full
// dataset would use with the given shuffle settings; ablation benchmarks use
// it to score shuffle quality without streaming any data.
func VisitOrder(ds *core.Dataset, shuffle bool, shuffleBuffer int, seed int64) []int {
	v := view.All(ds)
	o := Options{Shuffle: shuffle, ShuffleBuffer: shuffleBuffer, Seed: seed}.withDefaults()
	groups := chunkGroups(v, primaryColumn(v.Columns()))
	plan := buildPlan(v, buildShard(groups, o, 0), o, 0)
	out := make([]int, plan.rows)
	for _, cj := range plan.jobs {
		for _, rj := range cj.rows {
			out[rj.seq] = rj.row
		}
	}
	return out
}
