package dataloader

import (
	"container/list"
	"context"
	"strconv"
	"sync"

	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/storage"
)

// chunkCache is the loader's buffer of fetched-but-not-yet-consumed chunk
// data (§3.5: "maintaining a buffer cache of fetched and unutilized data").
// A singleflight layer (shared with the storage cache, storage.Flight)
// deduplicates concurrent fetches of the same chunk — so however many
// workers need samples from one chunk, it is read and decoded exactly once —
// and least-recently-used chunks are evicted once the byte budget is
// exceeded.
type chunkCache struct {
	budget int64
	flight storage.Flight[[]chunk.Sample]

	mu      sync.Mutex
	entries map[cacheKey]*list.Element
	order   *list.List // front = most recently used
	used    int64

	hits, misses, coalesced, decodes int64
}

type cacheKey struct {
	tensor  string
	chunkID uint64
}

func (k cacheKey) flightKey() string {
	return k.tensor + "\x00" + strconv.FormatUint(k.chunkID, 10)
}

type cacheEntry struct {
	key     cacheKey
	samples []chunk.Sample
	bytes   int64
}

func newChunkCache(budget int64) *chunkCache {
	return &chunkCache{
		budget:  budget,
		entries: map[cacheKey]*list.Element{},
		order:   list.New(),
	}
}

// get returns the samples of one chunk, fetching and decoding through t once
// per chunk regardless of how many workers ask concurrently.
func (c *chunkCache) get(ctx context.Context, t *core.Tensor, chunkID uint64) ([]chunk.Sample, error) {
	key := cacheKey{tensor: t.Name(), chunkID: chunkID}
	if samples, ok := c.lookup(key, true); ok {
		return samples, nil
	}
	samples, coalesced, err := c.flight.GetCoalesced(ctx, key.flightKey(),
		func() ([]chunk.Sample, bool) { return c.lookup(key, false) },
		func() ([]chunk.Sample, error) {
			samples, err := t.ReadChunkSamples(ctx, chunkID)
			if err != nil {
				return nil, err
			}
			c.mu.Lock()
			c.decodes++
			c.mu.Unlock()
			c.admit(key, samples)
			return samples, nil
		})
	if coalesced {
		c.mu.Lock()
		c.coalesced++
		c.mu.Unlock()
	}
	return samples, err
}

// lookup probes the cache; count controls whether the hit/miss ledger is
// updated (the singleflight leader's re-check is not a new lookup).
func (c *chunkCache) lookup(key cacheKey, count bool) ([]chunk.Sample, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		if count {
			c.misses++
		}
		return nil, false
	}
	if count {
		c.hits++
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).samples, true
}

func (c *chunkCache) admit(key cacheKey, samples []chunk.Sample) {
	var bytes int64
	for _, s := range samples {
		bytes += int64(len(s.Data))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, samples: samples, bytes: bytes})
	c.used += bytes
	for c.used > c.budget && c.order.Len() > 1 {
		back := c.order.Back()
		ent := back.Value.(*cacheEntry)
		c.order.Remove(back)
		delete(c.entries, ent.key)
		c.used -= ent.bytes
	}
}

// stats reports cache hits and misses.
func (c *chunkCache) stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// coalescedCount reports how many gets piggybacked on another worker's
// in-flight fetch instead of reading the chunk themselves.
func (c *chunkCache) coalescedCount() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.coalesced
}

// decodeCount reports how many chunk fetch+decodes actually ran; the
// decode-once contract bounds it by the distinct (tensor, chunk) pairs
// visited per epoch.
func (c *chunkCache) decodeCount() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.decodes
}
