package dataloader

import (
	"container/list"
	"context"
	"sync"

	"repro/internal/chunk"
	"repro/internal/core"
)

// chunkCache is the loader's buffer of fetched-but-not-yet-consumed chunk
// data (§3.5: "maintaining a buffer cache of fetched and unutilized data").
// It deduplicates concurrent fetches of the same chunk (so a shuffled batch
// touching one chunk pays one GET) and evicts least-recently-used chunks
// once the byte budget is exceeded.
type chunkCache struct {
	budget int64

	mu       sync.Mutex
	entries  map[cacheKey]*list.Element
	order    *list.List // front = most recently used
	used     int64
	inflight map[cacheKey]*fetchCall

	hits, misses int64
}

type cacheKey struct {
	tensor  string
	chunkID uint64
}

type cacheEntry struct {
	key     cacheKey
	samples []chunk.Sample
	bytes   int64
}

type fetchCall struct {
	done    chan struct{}
	samples []chunk.Sample
	err     error
}

func newChunkCache(budget int64) *chunkCache {
	return &chunkCache{
		budget:   budget,
		entries:  map[cacheKey]*list.Element{},
		order:    list.New(),
		inflight: map[cacheKey]*fetchCall{},
	}
}

// get returns the samples of one chunk, fetching through t once per chunk
// regardless of how many workers ask concurrently.
func (c *chunkCache) get(ctx context.Context, t *core.Tensor, chunkID uint64) ([]chunk.Sample, error) {
	key := cacheKey{tensor: t.Name(), chunkID: chunkID}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		samples := el.Value.(*cacheEntry).samples
		c.mu.Unlock()
		return samples, nil
	}
	if call, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		select {
		case <-call.done:
			return call.samples, call.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	call := &fetchCall{done: make(chan struct{})}
	c.inflight[key] = call
	c.misses++
	c.mu.Unlock()

	samples, err := t.ReadChunkSamples(ctx, chunkID)
	call.samples, call.err = samples, err
	close(call.done)

	c.mu.Lock()
	delete(c.inflight, key)
	if err == nil {
		var bytes int64
		for _, s := range samples {
			bytes += int64(len(s.Data))
		}
		c.entries[key] = c.order.PushFront(&cacheEntry{key: key, samples: samples, bytes: bytes})
		c.used += bytes
		for c.used > c.budget && c.order.Len() > 1 {
			back := c.order.Back()
			ent := back.Value.(*cacheEntry)
			c.order.Remove(back)
			delete(c.entries, ent.key)
			c.used -= ent.bytes
		}
	}
	c.mu.Unlock()
	return samples, err
}

// stats reports cache hits and misses.
func (c *chunkCache) stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
