package dataloader

import (
	"container/list"
	"context"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/storage"
)

// NodeCache is the decoded-chunk buffer of §3.5 ("maintaining a buffer
// cache of fetched and unutilized data") promoted to node scope: one cache
// that any number of Loaders — including the per-rank loaders of a
// multi-rank training job colocated on one node — share through
// Options.Cache, so a chunk needed by several ranks is fetched and decoded
// exactly once per epoch per NODE, not once per rank. Loaders that are not
// given a shared cache get a private one, which degrades to exactly the old
// per-Loader behavior.
//
// The concurrency story is the same as storage.LRU's byte cache: the entry
// table is split across mutex-striped shards keyed by an FNV-1a hash of the
// chunk identity, and a singleflight layer collapses concurrent fetches of
// one chunk — across workers, the readahead scheduler, and every sharing
// Loader — into a single fetch+decode that everyone receives.
//
// Entries are keyed by (dataset scope, commit-scoped chunk object key):
// core.Dataset.ScopeID disambiguates dataset handles (two datasets sharing
// a node cache can never serve each other's bytes even if their tensor
// names and chunk ids collide), and core.Tensor.ChunkIdentity bakes in the
// owning version directory, so the same chunk id on two branches — or
// rebound across a checkout — is two distinct cache entries.
//
// Eviction is least-recently-used over a byte budget, with one contract on
// top: chunks with outstanding planned jobs are pinned and never evicted,
// so a tight budget cannot evict a chunk between its decode and a
// planned-but-unstarted job that needs it (which would force a silent
// re-decode, breaking the documented fetch+decode-once contract). Pins are
// reference counts — one per outstanding sub-job — taken by the job feeder
// before a job is enqueued and dropped when the worker finishes it; a
// Loader releases any leftovers when its pipeline shuts down, so an aborted
// epoch never leaks pins into a long-lived shared cache. The budget is soft
// against pins: if every resident chunk is pinned the cache runs over
// budget rather than breaking the contract (bounded by
// workers×queue-depth×chunk-size, the same working set the pipeline needs
// resident anyway).
type NodeCache struct {
	flight storage.Flight[[]chunk.Sample]
	shards []*cacheShard

	hits, misses, coalesced, decodes, evictions atomic.Int64
}

// NodeCacheStats is a point-in-time copy of a NodeCache's node-level
// counters, aggregated across every Loader sharing the cache.
type NodeCacheStats struct {
	// Hits and Misses count lookups against resident decoded chunks.
	Hits, Misses int64
	// Coalesced counts gets that piggybacked on another caller's in-flight
	// fetch+decode (singleflight) instead of running their own.
	Coalesced int64
	// Decodes counts fetch+decodes that actually reached the tensor read
	// path; the per-node decode-once contract bounds it by the distinct
	// chunks visited per epoch, no matter how many Loaders share the cache.
	Decodes int64
	// Evictions counts entries dropped to stay under the byte budget.
	Evictions int64
	// UsedBytes/Entries describe the resident population; Pinned counts
	// entries currently protected by outstanding planned jobs.
	UsedBytes, Entries, Pinned int64
}

type cacheKey struct {
	// scope is the owning dataset handle's process-unique identity
	// (core.Dataset.ScopeID).
	scope uint64
	// obj is the commit-scoped chunk object key
	// (core.Tensor.ChunkIdentity): versions/<vid>/tensors/<name>/chunks/<id>.
	obj string
}

func (k cacheKey) flightKey() string {
	return strconv.FormatUint(k.scope, 36) + "\x00" + k.obj
}

type cacheEntry struct {
	key     cacheKey
	samples []chunk.Sample
	bytes   int64
}

// cacheShard is one mutex stripe of the entry table.
type cacheShard struct {
	budget int64

	mu      sync.Mutex
	entries map[cacheKey]*list.Element
	order   *list.List // front = most recently used
	used    int64
	// pins maps keys to their outstanding-job reference count. A pin may
	// exist before its entry does (the feeder pins at enqueue time, the
	// decode lands later) and survives the entry's eviction window: pinned
	// entries are skipped by eviction.
	pins map[cacheKey]int
}

// nodeCacheShardCount sizes the stripe count like storage.NewLRU does: one
// shard per 32MB of budget (decoded chunks are a few to ~16MB, so a shard
// always fits several), at most 16.
func nodeCacheShardCount(budget int64) int {
	shards := int(budget / (32 << 20))
	if shards < 1 {
		return 1
	}
	if shards > 16 {
		return 16
	}
	return shards
}

// NewNodeCache builds a node-level decoded-chunk cache with the given byte
// budget (<=0 means the Loader default, 256MB). Hand the same cache to
// every Loader on the node via Options.Cache.
func NewNodeCache(budget int64) *NodeCache {
	if budget <= 0 {
		budget = 256 << 20
	}
	shards := nodeCacheShardCount(budget)
	c := &NodeCache{shards: make([]*cacheShard, shards)}
	per, rem := budget/int64(shards), budget%int64(shards)
	for i := range c.shards {
		b := per
		if int64(i) < rem {
			b++
		}
		c.shards[i] = &cacheShard{
			budget:  b,
			entries: map[cacheKey]*list.Element{},
			order:   list.New(),
			pins:    map[cacheKey]int{},
		}
	}
	return c
}

// Budget returns the cache's total byte budget across shards.
func (c *NodeCache) Budget() int64 {
	var total int64
	for _, s := range c.shards {
		total += s.budget
	}
	return total
}

// shard maps a key to its stripe by FNV-1a hash of the object key (the
// scope is folded in as well so distinct datasets spread independently).
func (c *NodeCache) shard(key cacheKey) *cacheShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	h ^= key.scope
	h *= prime64
	for i := 0; i < len(key.obj); i++ {
		h ^= uint64(key.obj[i])
		h *= prime64
	}
	return c.shards[h%uint64(len(c.shards))]
}

// cacheLedger is one Loader's private view of the shared cache's activity:
// every counter increment lands both here and on the node-level NodeCache
// counters. Decodes and coalesces are attributed to the Loader whose call
// ran (or joined) the fetch, so summing a counter across the sharing
// Loaders equals the node-level figure.
type cacheLedger struct {
	hits, misses, coalesced, decodes atomic.Int64
}

// get returns the samples of one chunk, fetching and decoding through t
// once per chunk per node regardless of how many workers — of how many
// Loaders — ask concurrently. led receives the calling Loader's share of
// the counters.
func (c *NodeCache) get(ctx context.Context, led *cacheLedger, scope uint64, t *core.Tensor, chunkID uint64) ([]chunk.Sample, error) {
	key := cacheKey{scope: scope, obj: t.ChunkIdentity(chunkID)}
	if samples, ok := c.lookup(key, led); ok {
		return samples, nil
	}
	samples, coalesced, err := c.flight.GetCoalesced(ctx, key.flightKey(),
		func() ([]chunk.Sample, bool) { return c.peek(key) },
		func() ([]chunk.Sample, error) {
			samples, err := t.ReadChunkSamples(ctx, chunkID)
			if err != nil {
				return nil, err
			}
			c.decodes.Add(1)
			led.decodes.Add(1)
			c.admit(key, samples)
			return samples, nil
		})
	if coalesced {
		c.coalesced.Add(1)
		led.coalesced.Add(1)
	}
	return samples, err
}

// lookup probes the cache and updates the hit/miss ledgers.
func (c *NodeCache) lookup(key cacheKey, led *cacheLedger) ([]chunk.Sample, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		c.misses.Add(1)
		led.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	led.hits.Add(1)
	s.order.MoveToFront(el)
	return el.Value.(*cacheEntry).samples, true
}

// peek is the singleflight leader's re-check: same probe, no ledger churn
// (it is not a new lookup).
func (c *NodeCache) peek(key cacheKey) ([]chunk.Sample, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		return nil, false
	}
	s.order.MoveToFront(el)
	return el.Value.(*cacheEntry).samples, true
}

func (c *NodeCache) admit(key cacheKey, samples []chunk.Sample) {
	var bytes int64
	for _, s := range samples {
		bytes += int64(len(s.Data))
	}
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[key]; ok {
		return
	}
	s.entries[key] = s.order.PushFront(&cacheEntry{key: key, samples: samples, bytes: bytes})
	s.used += bytes
	// Evict least-recently-used UNPINNED entries. The just-admitted entry
	// (front) is never evicted, pinned entries are skipped, and when
	// nothing evictable remains the shard runs soft-over-budget rather
	// than breaking the decode-once contract.
	for s.used > s.budget && s.order.Len() > 1 {
		el := s.order.Back()
		for el != nil && el != s.order.Front() && s.pins[el.Value.(*cacheEntry).key] > 0 {
			el = el.Prev()
		}
		if el == nil || el == s.order.Front() {
			return
		}
		ent := el.Value.(*cacheEntry)
		s.order.Remove(el)
		delete(s.entries, ent.key)
		s.used -= ent.bytes
		c.evictions.Add(1)
	}
}

// pin protects key from eviction until a matching unpin; calls nest as a
// reference count, one per outstanding planned job. Pinning a key with no
// resident entry is valid (and the common case): the feeder pins at plan
// time, before the decode lands.
func (c *NodeCache) pin(key cacheKey) {
	s := c.shard(key)
	s.mu.Lock()
	s.pins[key]++
	s.mu.Unlock()
}

// unpin drops one pin reference of key.
func (c *NodeCache) unpin(key cacheKey) {
	s := c.shard(key)
	s.mu.Lock()
	if n := s.pins[key]; n > 1 {
		s.pins[key] = n - 1
	} else {
		delete(s.pins, key)
	}
	s.mu.Unlock()
}

// Stats reports the cache's node-level counters.
func (c *NodeCache) Stats() NodeCacheStats {
	st := NodeCacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
		Decodes:   c.decodes.Load(),
		Evictions: c.evictions.Load(),
	}
	for _, s := range c.shards {
		s.mu.Lock()
		st.UsedBytes += s.used
		st.Entries += int64(len(s.entries))
		st.Pinned += int64(len(s.pins))
		s.mu.Unlock()
	}
	return st
}

// pinLedger tracks the pins one Loader currently holds on a (possibly
// shared) NodeCache, so whatever the pipeline leaves outstanding when it
// shuts down — jobs enqueued but never consumed after a cancellation, a
// worker that died mid-job — is released in one sweep instead of leaking
// into a cache that outlives the Loader.
type pinLedger struct {
	mu   sync.Mutex
	held map[cacheKey]int
}

func (p *pinLedger) pin(c *NodeCache, key cacheKey) {
	p.mu.Lock()
	if p.held == nil {
		p.held = map[cacheKey]int{}
	}
	p.held[key]++
	p.mu.Unlock()
	c.pin(key)
}

func (p *pinLedger) unpin(c *NodeCache, key cacheKey) {
	p.mu.Lock()
	if n, ok := p.held[key]; ok {
		if n > 1 {
			p.held[key] = n - 1
		} else {
			delete(p.held, key)
		}
		p.mu.Unlock()
		c.unpin(key)
		return
	}
	// Not held: the pipeline already swept this Loader's pins (releaseAll
	// racing a worker's final unpin); dropping it again would strip
	// another Loader's protection.
	p.mu.Unlock()
}

// releaseAll drops every pin the Loader still holds.
func (p *pinLedger) releaseAll(c *NodeCache) {
	p.mu.Lock()
	held := p.held
	p.held = nil
	p.mu.Unlock()
	for key, n := range held {
		for i := 0; i < n; i++ {
			c.unpin(key)
		}
	}
}
