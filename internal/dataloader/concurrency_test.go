package dataloader

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/storage"
	"repro/internal/tensor"
	"repro/internal/view"
)

// epochRows streams one epoch and returns the first element of "x" per row,
// in delivery order.
func epochRows(t *testing.T, l *Loader) []float64 {
	t.Helper()
	var rows []float64
	for _, b := range drain(t, l) {
		for _, s := range b.Samples {
			v, _ := s["x"].At(0)
			rows = append(rows, v)
		}
	}
	return rows
}

// TestBatchesIdenticalAcrossWorkerCounts is the determinism contract of the
// concurrent read path: worker parallelism, readahead, and fetch coalescing
// must not change what the consumer sees. Run under -race this also shakes
// out data races between workers, the readahead scheduler, and the cache.
func TestBatchesIdenticalAcrossWorkerCounts(t *testing.T) {
	ds := loaderDataset(t, storage.NewMemory(), 300)
	for _, shuffle := range []bool{false, true} {
		run := func(workers int) []float64 {
			l := ForDataset(ds, Options{
				BatchSize: 16, Workers: workers,
				Shuffle: shuffle, Seed: 11, ShuffleBuffer: 64,
			})
			return epochRows(t, l)
		}
		one := run(1)
		sixteen := run(16)
		if len(one) != 300 {
			t.Fatalf("shuffle=%v: delivered %d rows", shuffle, len(one))
		}
		if !reflect.DeepEqual(one, sixteen) {
			t.Fatalf("shuffle=%v: batches differ between 1 and 16 workers", shuffle)
		}
	}
}

// TestReadaheadDoesNotDuplicateFetches: with the scheduler racing the
// workers for every chunk, singleflight must keep origin traffic at one Get
// per chunk.
func TestReadaheadDoesNotDuplicateFetches(t *testing.T) {
	inner := storage.NewMemory()
	counting := storage.NewCounting(inner)
	ds := loaderDataset(t, counting, 256)

	counting.Reset()
	l := ForDataset(ds, Options{BatchSize: 16, Workers: 8, Readahead: 8})
	drain(t, l)
	chunks := int64(ds.Tensor("x").NumChunks() + ds.Tensor("label").NumChunks())
	if gets := counting.Snapshot().Gets; gets > chunks {
		t.Fatalf("epoch fetched %d objects for %d chunks; readahead duplicated fetches", gets, chunks)
	}
}

func TestReadaheadDisabled(t *testing.T) {
	ds := loaderDataset(t, storage.NewMemory(), 64)
	l := ForDataset(ds, Options{BatchSize: 8, Workers: 4, Readahead: -1})
	rows := epochRows(t, l)
	if len(rows) != 64 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, v := range rows {
		if v != float64(i) {
			t.Fatalf("row %d = %v", i, v)
		}
	}
}

// TestReadaheadWarmsCache: a single slow worker should find chunks already
// resident because the scheduler ran ahead of it.
func TestReadaheadWarmsCache(t *testing.T) {
	ds := loaderDataset(t, storage.NewMemory(), 256)
	l := ForDataset(ds, Options{BatchSize: 16, Workers: 1, Readahead: 16})
	drain(t, l)
	hits, _ := l.CacheStats()
	if hits == 0 {
		t.Fatal("no cache hits despite readahead warming the cache")
	}
}

// TestEpochPlanInvariants checks the plan the pipeline relies on: every view
// row appears in exactly one chunk job, the delivery sequences form a
// permutation, sub-jobs of a split group stay adjacent and share their
// group's DISTINCT chunk ordinal (the readahead window is measured in
// chunks, not jobs), and rows inside a job stay in stored order (the
// ScanReader's decode-once walk).
func TestEpochPlanInvariants(t *testing.T) {
	ds := loaderDataset(t, storage.NewMemory(), 128)
	v := view.All(ds)
	primary := primaryColumn(v.Columns())
	groups := chunkGroups(v, primary)
	for _, shuffle := range []bool{false, true} {
		o := Options{Shuffle: shuffle, ShuffleBuffer: 32, Seed: 3}.withDefaults()
		shard := buildShard(groups, o, 0)
		plan := buildPlan(v, shard, o, 0)
		if plan.rows != 128 {
			t.Fatalf("shuffle=%v: plan delivers %d rows, want 128", shuffle, plan.rows)
		}
		seenRow := map[int]bool{}
		seenSeq := map[int]bool{}
		lastOrd := -1
		for _, cj := range plan.jobs {
			if cj.ord != lastOrd && cj.ord != lastOrd+1 {
				t.Fatalf("job ordinal jumps %d -> %d (sub-jobs must stay adjacent, ordinals dense)", lastOrd, cj.ord)
			}
			if cj.ord < 0 || cj.ord >= len(shard.groups) {
				t.Fatalf("ordinal %d out of range for %d visit groups", cj.ord, len(shard.groups))
			}
			if cj.chunkID == noChunk {
				t.Fatalf("ordinal %d has no chunk despite a stored primary", cj.ord)
			}
			if cj.chunkID != shard.groups[cj.ord].key {
				t.Fatalf("ordinal %d carries chunk %d, visit order holds %d", cj.ord, cj.chunkID, shard.groups[cj.ord].key)
			}
			lastOrd = cj.ord
			for i, rj := range cj.rows {
				if seenRow[rj.row] || seenSeq[rj.seq] {
					t.Fatalf("row %d / seq %d appears twice", rj.row, rj.seq)
				}
				seenRow[rj.row] = true
				seenSeq[rj.seq] = true
				if rj.seq < 0 || rj.seq >= plan.rows {
					t.Fatalf("seq %d out of range", rj.seq)
				}
				if i > 0 && rj.src <= cj.rows[i-1].src {
					t.Fatalf("ordinal %d rows not in stored order", cj.ord)
				}
			}
		}
		if lastOrd != len(shard.groups)-1 {
			t.Fatalf("jobs cover %d of %d visit ordinals", lastOrd+1, len(shard.groups))
		}
		if len(seenRow) != 128 {
			t.Fatalf("shuffle=%v: jobs cover %d/128 rows", shuffle, len(seenRow))
		}

		// The readahead scheduler has a driver tensor to prefetch for,
		// and rebuilding the shard reproduces the same visit order (the
		// scheduler and feeder each regenerate it independently).
		if readaheadDriver(v, primary, groups) == nil {
			t.Fatal("readahead driver is nil for a stored primary tensor")
		}
		again := buildShard(groups, o, 0)
		if len(again.groups) != len(shard.groups) || again.rows != shard.rows {
			t.Fatal("rebuilding the epoch shard changed the visit order")
		}
		for i := range again.groups {
			if again.groups[i].key != shard.groups[i].key {
				t.Fatalf("rebuilt shard diverges at visit ordinal %d", i)
			}
		}
	}
}

// TestShuffleBufferBoundsDisplacement: the delivery order may run at most
// ShuffleBuffer rows behind the visit order — the bounded-buffer contract
// that keeps decoded-sample memory in check.
func TestShuffleBufferBoundsDisplacement(t *testing.T) {
	ds := loaderDataset(t, storage.NewMemory(), 256)
	v := view.All(ds)
	const buffer = 16
	o := Options{Shuffle: true, ShuffleBuffer: buffer, Seed: 9}.withDefaults()
	groups := chunkGroups(v, primaryColumn(v.Columns()))
	plan := buildPlan(v, buildShard(groups, o, 0), o, 0)
	visit := 0
	for _, cj := range plan.jobs {
		for _, rj := range cj.rows {
			// A row entering the buffer at visit position p is emitted no
			// earlier than p-buffer.
			if rj.seq < visit-buffer {
				t.Fatalf("row %d entered at visit %d but delivered at %d (buffer %d)", rj.row, visit, rj.seq, buffer)
			}
			visit++
		}
	}
}

// TestPrefetchPlanNilForComputedViews: a view with only computed columns has
// no chunk itinerary and readahead must stand down.
func TestPrefetchPlanNilForComputedViews(t *testing.T) {
	ds := loaderDataset(t, storage.NewMemory(), 16)
	v := view.New(ds, []uint64{0, 1, 2, 3}, []view.Column{
		{Name: "c", Eval: func(ctx context.Context, row uint64) (*tensor.NDArray, error) {
			return tensor.Scalar(tensor.Float64, float64(row)), nil
		}},
	})
	primary := primaryColumn(v.Columns())
	if primary != "" {
		t.Fatalf("computed view has primary %q", primary)
	}
	o := Options{}.withDefaults()
	groups := chunkGroups(v, primary)
	plan := buildPlan(v, buildShard(groups, o, 0), o, 0)
	if got := len(plan.jobs); got != 4 {
		t.Fatalf("computed view produced %d jobs, want 4 per-row jobs", got)
	}
	if d := readaheadDriver(v, primary, groups); d != nil {
		t.Fatalf("readahead driver = %v, want nil", d)
	}
	// The loader still streams fine without a plan.
	l := New(v, Options{BatchSize: 2, Workers: 2})
	if got := len(drain(t, l)); got != 2 {
		t.Fatalf("batches = %d", got)
	}
}
