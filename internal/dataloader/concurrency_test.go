package dataloader

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/storage"
	"repro/internal/tensor"
	"repro/internal/view"
)

// epochRows streams one epoch and returns the first element of "x" per row,
// in delivery order.
func epochRows(t *testing.T, l *Loader) []float64 {
	t.Helper()
	var rows []float64
	for _, b := range drain(t, l) {
		for _, s := range b.Samples {
			v, _ := s["x"].At(0)
			rows = append(rows, v)
		}
	}
	return rows
}

// TestBatchesIdenticalAcrossWorkerCounts is the determinism contract of the
// concurrent read path: worker parallelism, readahead, and fetch coalescing
// must not change what the consumer sees. Run under -race this also shakes
// out data races between workers, the readahead scheduler, and the cache.
func TestBatchesIdenticalAcrossWorkerCounts(t *testing.T) {
	ds := loaderDataset(t, storage.NewMemory(), 300)
	for _, shuffle := range []bool{false, true} {
		run := func(workers int) []float64 {
			l := ForDataset(ds, Options{
				BatchSize: 16, Workers: workers,
				Shuffle: shuffle, Seed: 11, ShuffleBuffer: 64,
			})
			return epochRows(t, l)
		}
		one := run(1)
		sixteen := run(16)
		if len(one) != 300 {
			t.Fatalf("shuffle=%v: delivered %d rows", shuffle, len(one))
		}
		if !reflect.DeepEqual(one, sixteen) {
			t.Fatalf("shuffle=%v: batches differ between 1 and 16 workers", shuffle)
		}
	}
}

// TestReadaheadDoesNotDuplicateFetches: with the scheduler racing the
// workers for every chunk, singleflight must keep origin traffic at one Get
// per chunk.
func TestReadaheadDoesNotDuplicateFetches(t *testing.T) {
	inner := storage.NewMemory()
	counting := storage.NewCounting(inner)
	ds := loaderDataset(t, counting, 256)

	counting.Gets = 0
	l := ForDataset(ds, Options{BatchSize: 16, Workers: 8, Readahead: 8})
	drain(t, l)
	chunks := int64(ds.Tensor("x").NumChunks() + ds.Tensor("label").NumChunks())
	if counting.Gets > chunks {
		t.Fatalf("epoch fetched %d objects for %d chunks; readahead duplicated fetches", counting.Gets, chunks)
	}
}

func TestReadaheadDisabled(t *testing.T) {
	ds := loaderDataset(t, storage.NewMemory(), 64)
	l := ForDataset(ds, Options{BatchSize: 8, Workers: 4, Readahead: -1})
	rows := epochRows(t, l)
	if len(rows) != 64 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, v := range rows {
		if v != float64(i) {
			t.Fatalf("row %d = %v", i, v)
		}
	}
}

// TestReadaheadWarmsCache: a single slow worker should find chunks already
// resident because the scheduler ran ahead of it.
func TestReadaheadWarmsCache(t *testing.T) {
	ds := loaderDataset(t, storage.NewMemory(), 256)
	l := ForDataset(ds, Options{BatchSize: 16, Workers: 1, Readahead: 16})
	drain(t, l)
	hits, _ := l.CacheStats()
	if hits == 0 {
		t.Fatal("no cache hits despite readahead warming the cache")
	}
}

// TestPrefetchPlanCoversOrder checks the itinerary invariants the scheduler
// relies on: one ordinal per sampler position, ordinals are first-visit
// ordered, and every distinct chunk appears exactly once.
func TestPrefetchPlanCoversOrder(t *testing.T) {
	ds := loaderDataset(t, storage.NewMemory(), 128)
	v := view.All(ds)
	cols := v.Columns()
	for _, shuffle := range []bool{false, true} {
		s := newSampler(v, shuffle, 32, 3, primaryColumn(cols))
		plan := buildPrefetchPlan(v, cols, s.order)
		if plan == nil {
			t.Fatal("plan is nil for a stored primary tensor")
		}
		if len(plan.rowOrd) != len(s.order) {
			t.Fatalf("rowOrd len = %d, want %d", len(plan.rowOrd), len(s.order))
		}
		seen := map[uint64]bool{}
		for _, id := range plan.chunks {
			if seen[id] {
				t.Fatalf("chunk %d appears twice in plan", id)
			}
			seen[id] = true
		}
		maxSoFar := -1
		for seq, ord := range plan.rowOrd {
			if ord < 0 || ord >= len(plan.chunks) {
				t.Fatalf("seq %d ordinal %d out of range", seq, ord)
			}
			if ord > maxSoFar+1 {
				t.Fatalf("seq %d jumps to ordinal %d past frontier %d (not first-visit ordered)", seq, ord, maxSoFar)
			}
			if ord > maxSoFar {
				maxSoFar = ord
			}
		}
		if maxSoFar != len(plan.chunks)-1 {
			t.Fatalf("order visits %d ordinals, plan has %d chunks", maxSoFar+1, len(plan.chunks))
		}
	}
}

// TestPrefetchPlanNilForComputedViews: a view with only computed columns has
// no chunk itinerary and readahead must stand down.
func TestPrefetchPlanNilForComputedViews(t *testing.T) {
	ds := loaderDataset(t, storage.NewMemory(), 16)
	v := view.New(ds, []uint64{0, 1, 2, 3}, []view.Column{
		{Name: "c", Eval: func(ctx context.Context, row uint64) (*tensor.NDArray, error) {
			return tensor.Scalar(tensor.Float64, float64(row)), nil
		}},
	})
	cols := v.Columns()
	s := newSampler(v, false, 0, 0, primaryColumn(cols))
	if plan := buildPrefetchPlan(v, cols, s.order); plan != nil {
		t.Fatalf("plan = %+v, want nil", plan)
	}
	// The loader still streams fine without a plan.
	l := New(v, Options{BatchSize: 2, Workers: 2})
	if got := len(drain(t, l)); got != 2 {
		t.Fatalf("batches = %d", got)
	}
}
