package dataloader

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"repro/internal/storage"
	"repro/internal/tensor"
)

// rankRows streams one rank's epoch and returns the first element of "x"
// per row, in delivery order.
func rankRows(t *testing.T, l *Loader) []float64 {
	t.Helper()
	var rows []float64
	for _, b := range drain(t, l) {
		for _, s := range b.Samples {
			v, _ := s["x"].At(0)
			rows = append(rows, v)
		}
	}
	return rows
}

// TestRankShardsAreDisjointAndComplete: for a fixed seed, the Rank/WorldSize
// shards of one epoch must partition the dataset — no row on two ranks, no
// row lost — and each rank's stream must be identical at any worker count.
// World 4 exercises chunk-granular sharding (many chunks per rank); world 64
// exceeds the chunk count and exercises the row-striding fallback, which
// must additionally leave no rank empty.
func TestRankShardsAreDisjointAndComplete(t *testing.T) {
	const n = 300
	ds := loaderDataset(t, storage.NewMemory(), n)
	for _, world := range []int{4, 64} {
		for _, shuffle := range []bool{false, true} {
			seen := map[float64]int{}
			for rank := 0; rank < world; rank++ {
				run := func(workers int) []float64 {
					l := ForDataset(ds, Options{
						BatchSize: 8, Workers: workers, Shuffle: shuffle, Seed: 5,
						ShuffleBuffer: 32, Rank: rank, WorldSize: world,
					})
					return rankRows(t, l)
				}
				one := run(1)
				sixteen := run(16)
				if !reflect.DeepEqual(one, sixteen) {
					t.Fatalf("world=%d shuffle=%v rank %d: stream differs between 1 and 16 workers", world, shuffle, rank)
				}
				if world > ds.Tensor("x").NumChunks() && len(one) == 0 {
					t.Fatalf("world=%d shuffle=%v rank %d: starved despite the row-striding fallback", world, shuffle, rank)
				}
				for _, v := range one {
					seen[v]++
				}
			}
			if len(seen) != n {
				t.Fatalf("world=%d shuffle=%v: ranks covered %d/%d distinct rows", world, shuffle, len(seen), n)
			}
			for v, c := range seen {
				if c != 1 {
					t.Fatalf("world=%d shuffle=%v: row %v delivered %d times across ranks", world, shuffle, v, c)
				}
			}
		}
	}
}

// TestRankOutOfRange: an invalid Rank/WorldSize pair fails fast through
// Err(), not with a hung or empty stream.
func TestRankOutOfRange(t *testing.T) {
	ds := loaderDataset(t, storage.NewMemory(), 8)
	l := ForDataset(ds, Options{Rank: 3, WorldSize: 2})
	for range l.Batches(context.Background()) {
	}
	if err := l.Err(); err == nil {
		t.Fatal("rank 3 of world 2 must error")
	}
}

// TestEpochsReshuffleAndDoNotStraddleBatches: a multi-epoch stream delivers
// every row once per epoch, labels batches with their epoch, never packs one
// batch across an epoch boundary, and reshuffles the order between epochs.
func TestEpochsReshuffleAndDoNotStraddleBatches(t *testing.T) {
	const n, epochs = 100, 3
	ds := loaderDataset(t, storage.NewMemory(), n)
	l := ForDataset(ds, Options{
		BatchSize: 8, Workers: 4, Shuffle: true, Seed: 13, ShuffleBuffer: 16,
		Epochs: epochs,
	})
	perEpoch := make([][]float64, epochs)
	for _, b := range drain(t, l) {
		if b.Epoch < 0 || b.Epoch >= epochs {
			t.Fatalf("batch %d labeled epoch %d", b.Index, b.Epoch)
		}
		for _, s := range b.Samples {
			v, _ := s["x"].At(0)
			perEpoch[b.Epoch] = append(perEpoch[b.Epoch], v)
		}
	}
	for e, rows := range perEpoch {
		if len(rows) != n {
			t.Fatalf("epoch %d delivered %d/%d rows", e, len(rows), n)
		}
		sorted := append([]float64(nil), rows...)
		sort.Float64s(sorted)
		for i, v := range sorted {
			if v != float64(i) {
				t.Fatalf("epoch %d lost/duplicated rows at %d: %v", e, i, v)
			}
		}
	}
	if reflect.DeepEqual(perEpoch[0], perEpoch[1]) {
		t.Fatal("epochs 0 and 1 share one order; per-epoch reseeding is broken")
	}
	if l.Rows() != int64(n*epochs) {
		t.Fatalf("Rows() = %d, want %d", l.Rows(), n*epochs)
	}

	// The trailing partial batch of EVERY epoch is dropped under DropLast
	// (100 rows / batch 8 = 12 full batches + 4 dropped, per epoch).
	ld := ForDataset(ds, Options{BatchSize: 8, Workers: 4, Epochs: epochs, DropLast: true})
	batches := drain(t, ld)
	if len(batches) != 12*epochs {
		t.Fatalf("DropLast kept %d batches, want %d", len(batches), 12*epochs)
	}
	for _, b := range batches {
		if len(b.Samples) != 8 {
			t.Fatalf("DropLast leaked a partial batch of %d", len(b.Samples))
		}
	}
}

// TestChunksDecodedOncePerEpochPerRank is the decode-once contract the
// chunk-aligned pipeline exists for: one epoch decodes every touched chunk
// exactly once (per rank), and origin Gets match — regardless of worker
// count racing the readahead scheduler.
func TestChunksDecodedOncePerEpochPerRank(t *testing.T) {
	inner := storage.NewMemory()
	counting := storage.NewCounting(inner)
	ds := loaderDataset(t, counting, 256)
	chunks := int64(ds.Tensor("x").NumChunks() + ds.Tensor("label").NumChunks())

	// Single rank: equality, not just a bound.
	counting.Reset()
	l := ForDataset(ds, Options{BatchSize: 16, Workers: 16, Shuffle: true, Seed: 3, Readahead: 8})
	drain(t, l)
	if got := l.CacheDecodes(); got != chunks {
		t.Fatalf("epoch decoded %d chunks, want exactly %d", got, chunks)
	}
	if gets := counting.Snapshot().Gets; gets != chunks {
		t.Fatalf("epoch fetched %d objects for %d chunks", gets, chunks)
	}

	// Sharded ranks: each rank decodes its primary shard once; secondary
	// chunks straddling shard boundaries may repeat across ranks but never
	// within one.
	const world = 4
	var total int64
	for rank := 0; rank < world; rank++ {
		lr := ForDataset(ds, Options{
			BatchSize: 16, Workers: 8, Shuffle: true, Seed: 3,
			Rank: rank, WorldSize: world,
		})
		drain(t, lr)
		got := lr.CacheDecodes()
		if got > chunks {
			t.Fatalf("rank %d decoded %d chunks, more than the dataset's %d", rank, got, chunks)
		}
		total += got
	}
	if total < chunks {
		t.Fatalf("ranks decoded %d chunks together, dataset has %d", total, chunks)
	}
}

// TestWorkerErrorSurfacesDeterministically is the regression test for error
// delivery: a failing sample must surface the SAME error through Err()
// after the channel closes — never nil, never the cancellation fallout of
// sibling workers — and the rows delivered first must be an in-order,
// full-batch prefix strictly before the failure's delivery position.
func TestWorkerErrorSurfacesDeterministically(t *testing.T) {
	const n, failRow = 200, 97
	ds := loaderDataset(t, storage.NewMemory(), n)
	boom := errors.New("bad sample")
	for round := 0; round < 20; round++ {
		workers := []int{1, 2, 16}[round%3]
		l := ForDataset(ds, Options{
			BatchSize: 8, Workers: workers,
			Transform: func(s map[string]*tensor.NDArray) (map[string]*tensor.NDArray, error) {
				if v, _ := s["x"].At(0); v == failRow {
					return nil, boom
				}
				return s, nil
			},
		})
		var rows []float64
		for b := range l.Batches(context.Background()) {
			if len(b.Samples) != 8 {
				t.Fatalf("workers=%d: partial batch of %d emitted on the error path", workers, len(b.Samples))
			}
			for _, s := range b.Samples {
				v, _ := s["x"].At(0)
				rows = append(rows, v)
			}
		}
		if err := l.Err(); !errors.Is(err, boom) {
			t.Fatalf("workers=%d round %d: Err() = %v, want injected failure", workers, round, err)
		}
		for i, v := range rows {
			if v != float64(i) {
				t.Fatalf("workers=%d: delivered rows are not the in-order prefix at %d: %v", workers, i, v)
			}
		}
		if len(rows) >= failRow+1 {
			t.Fatalf("workers=%d: delivered %d rows at/past the failing row %d", workers, len(rows), failRow)
		}
	}
}

// TestErrorPositionPicksEarliestFailure: when several rows fail, Err()
// reports the failure at the earliest delivery position for single-worker
// runs (the deterministic reference order).
func TestErrorPositionPicksEarliestFailure(t *testing.T) {
	ds := loaderDataset(t, storage.NewMemory(), 64)
	l := ForDataset(ds, Options{
		BatchSize: 4, Workers: 1,
		Transform: func(s map[string]*tensor.NDArray) (map[string]*tensor.NDArray, error) {
			v, _ := s["x"].At(0)
			if v == 20 || v == 40 {
				return nil, fmt.Errorf("fail at %v", v)
			}
			return s, nil
		},
	})
	for range l.Batches(context.Background()) {
	}
	if err := l.Err(); err == nil || err.Error() != "dataloader: transform at row 20: fail at 20" {
		t.Fatalf("Err() = %v, want the earliest failure (row 20)", l.Err())
	}
}
