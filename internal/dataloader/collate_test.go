package dataloader

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/tensor"
)

// collateSamples builds n samples with the given column widths (one uint8
// row vector per column); a negative width at index i makes that sample's
// column i one element wider, manufacturing a shape mismatch.
func collateSamples(t *testing.T, n int, widths map[string]int, raggedAt map[string]int) []map[string]*tensor.NDArray {
	t.Helper()
	out := make([]map[string]*tensor.NDArray, n)
	for i := 0; i < n; i++ {
		s := map[string]*tensor.NDArray{}
		for name, w := range widths {
			if at, ok := raggedAt[name]; ok && at == i {
				w++
			}
			data := bytes.Repeat([]byte{byte(i + 1)}, w)
			arr, err := tensor.FromBytes(tensor.UInt8, []int{w}, data)
			if err != nil {
				t.Fatal(err)
			}
			s[name] = arr
		}
		out[i] = s
	}
	return out
}

// TestCollateMismatchedShapesSurfaceUnstacked is the regression test for
// the silent-drop bug: a column whose samples disagree on shape must be
// reported in unstacked — with its per-sample values intact — never
// silently vanish from the batch.
func TestCollateMismatchedShapesSurfaceUnstacked(t *testing.T) {
	samples := collateSamples(t, 4,
		map[string]int{"x": 8, "ragged": 5, "alsoragged": 3},
		map[string]int{"ragged": 2, "alsoragged": 0})
	c := newCollator()
	stacked, unstacked := c.collate(samples)

	if _, ok := stacked["x"]; !ok {
		t.Fatal("uniform column x missing from stacked output")
	}
	if _, ok := stacked["ragged"]; ok {
		t.Fatal("mismatched column stacked anyway")
	}
	if want := []string{"alsoragged", "ragged"}; !reflect.DeepEqual(unstacked, want) {
		t.Fatalf("unstacked = %v, want %v", unstacked, want)
	}
	// The per-sample values survive untouched.
	for i, s := range samples {
		if got := s["ragged"].Len(); (i == 2 && got != 6) || (i != 2 && got != 5) {
			t.Fatalf("sample %d ragged column len %d", i, got)
		}
	}
}

// TestCollateArenaMatchesHeapStack: arena-backed stacking changes where the
// batch bytes live, never what they are.
func TestCollateArenaMatchesHeapStack(t *testing.T) {
	samples := collateSamples(t, 6, map[string]int{"a": 16, "b": 7}, nil)
	c := newCollator()
	stacked, unstacked := c.collate(samples)
	if len(unstacked) != 0 {
		t.Fatalf("unexpected unstacked columns %v", unstacked)
	}
	for name := range samples[0] {
		arrs := make([]*tensor.NDArray, len(samples))
		for i, s := range samples {
			arrs[i] = s[name]
		}
		want, err := tensor.Stack(arrs)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := stacked[name]
		if !ok {
			t.Fatalf("column %q missing", name)
		}
		if !reflect.DeepEqual(got.Shape(), want.Shape()) || !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("column %q: arena stack differs from heap stack", name)
		}
	}
}

// TestCollateArenaCutsAllocs is the allocation gate of the arena-backed
// collation path: steady-state batch assembly must cost measurably fewer
// heap allocations than one fresh backing array per column per batch (the
// legacy tensor.Stack path), because the stacked bytes bump-allocate into
// pooled slabs shared across batches.
func TestCollateArenaCutsAllocs(t *testing.T) {
	const cols = 6
	widths := map[string]int{"c0": 64, "c1": 64, "c2": 64, "c3": 64, "c4": 64, "c5": 64}
	samples := collateSamples(t, 16, widths, nil)

	c := newCollator()
	c.collate(samples) // warm the gather scratch and first slab
	arena := testing.AllocsPerRun(200, func() {
		if out, _ := c.collate(samples); len(out) != cols {
			t.Fatal("collate dropped a column")
		}
	})

	legacy := testing.AllocsPerRun(200, func() {
		out := map[string]*tensor.NDArray{}
		for name := range samples[0] {
			arrs := make([]*tensor.NDArray, 0, len(samples))
			for _, s := range samples {
				arrs = append(arrs, s[name])
			}
			stacked, err := tensor.Stack(arrs)
			if err != nil {
				t.Fatal(err)
			}
			out[name] = stacked
		}
		if len(out) != cols {
			t.Fatal("legacy collate dropped a column")
		}
	})

	t.Logf("allocs/op: arena collate %.2f, legacy stack %.2f", arena, legacy)
	// The legacy path pays at least one backing-array allocation per column
	// per batch on top of everything the arena path also pays; require the
	// arena path to save at least half of those.
	if arena > legacy-cols/2 {
		t.Fatalf("arena collate allocs/op %.2f vs legacy %.2f: backing arrays are not amortized", arena, legacy)
	}
}

// TestLoaderSurfacesUnstackedColumns runs the silent-drop regression
// through the whole pipeline: a dataset column with per-row shapes must
// arrive listed in Batch.Unstacked with its rows intact in Batch.Samples.
func TestLoaderSurfacesUnstackedColumns(t *testing.T) {
	ctx := context.Background()
	store := storage.NewMemory()
	ds, err := core.Create(ctx, store, "ragged")
	if err != nil {
		t.Fatal(err)
	}
	x, err := ds.CreateTensor(ctx, core.TensorSpec{Name: "x", Dtype: tensor.UInt8, Bounds: smallBounds})
	if err != nil {
		t.Fatal(err)
	}
	lbl, err := ds.CreateTensor(ctx, core.TensorSpec{Name: "label", Htype: "class_label", Bounds: smallBounds})
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	for i := 0; i < n; i++ {
		w := 4 + i%3 // per-row shape: collation cannot stack this column
		arr, err := tensor.FromBytes(tensor.UInt8, []int{w}, bytes.Repeat([]byte{byte(i)}, w))
		if err != nil {
			t.Fatal(err)
		}
		if err := x.Append(ctx, arr); err != nil {
			t.Fatal(err)
		}
		if err := lbl.Append(ctx, tensor.Scalar(tensor.Int32, float64(i%5))); err != nil {
			t.Fatal(err)
		}
	}
	if err := ds.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	l := ForDataset(ds, Options{BatchSize: 4, Workers: 2})
	batches := drain(t, l)
	if len(batches) != 3 {
		t.Fatalf("batches = %d, want 3", len(batches))
	}
	row := 0
	for _, b := range batches {
		if _, ok := b.Stacked["label"]; !ok {
			t.Fatal("uniform label column missing from Stacked")
		}
		if _, ok := b.Stacked["x"]; ok {
			t.Fatal("ragged column x stacked despite mismatched shapes")
		}
		if !reflect.DeepEqual(b.Unstacked, []string{"x"}) {
			t.Fatalf("Unstacked = %v, want [x]", b.Unstacked)
		}
		for _, s := range b.Samples {
			if got, want := s["x"].Len(), 4+row%3; got != want {
				t.Fatalf("row %d: per-sample x len %d, want %d", row, got, want)
			}
			row++
		}
	}
}
