package dataloader

import (
	"context"
	"sync"
	"testing"

	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/tensor"
)

// The node-cache suite: multiple Loaders sharing one NodeCache on a
// simulated node. Run with -race — the point of the promotion is concurrent
// loaders over shared shards.

// TestSharedNodeCacheDecodesOncePerNode is the tentpole contract: rank
// loaders sharing a NodeCache, streaming concurrently, fetch+decode each
// distinct chunk exactly once per NODE — summed across loaders — where
// rank-private caches would re-decode every shared (secondary) chunk per
// rank.
func TestSharedNodeCacheDecodesOncePerNode(t *testing.T) {
	inner := storage.NewMemory()
	counting := storage.NewCounting(inner)
	ds := loaderDataset(t, counting, 256)
	chunks := int64(ds.Tensor("x").NumChunks() + ds.Tensor("label").NumChunks())
	counting.Reset()

	const world = 4
	node := NewNodeCache(0)
	loaders := make([]*Loader, world)
	rows := make([]int64, world)
	var wg sync.WaitGroup
	for rank := 0; rank < world; rank++ {
		loaders[rank] = ForDataset(ds, Options{
			BatchSize: 16, Workers: 8, Shuffle: true, Seed: 3,
			Rank: rank, WorldSize: world, Cache: node,
		})
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for b := range loaders[rank].Batches(context.Background()) {
				rows[rank] += int64(len(b.Samples))
			}
		}(rank)
	}
	wg.Wait()

	var total, decodes int64
	for rank, l := range loaders {
		if err := l.Err(); err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
		total += rows[rank]
		decodes += l.CacheDecodes()
	}
	if total != 256 {
		t.Fatalf("ranks delivered %d/256 rows together", total)
	}
	if decodes != chunks {
		t.Fatalf("node decoded %d chunks across %d ranks, want exactly %d (decode-once per node)", decodes, world, chunks)
	}
	if ns := node.Stats(); ns.Decodes != decodes {
		t.Fatalf("cache counted %d decodes, loaders attribute %d", ns.Decodes, decodes)
	}
	// Fetch-once holds at node level too: each chunk object moved from
	// origin once for all four ranks.
	if gets := counting.Snapshot().Gets; gets != chunks {
		t.Fatalf("node fetched %d objects for %d chunks (fetch-once per node)", gets, chunks)
	}
}

// offsetDataset builds a dataset shaped exactly like loaderDataset — same
// tensor names, same chunk bounds, therefore the same colliding chunk ids —
// but with every "x" value shifted by off, so any cross-dataset cache
// aliasing delivers detectably wrong bytes.
func offsetDataset(t testing.TB, store storage.Provider, n int, off float64) *core.Dataset {
	t.Helper()
	ctx := context.Background()
	ds, err := core.Create(ctx, store, "offsettest")
	if err != nil {
		t.Fatal(err)
	}
	x, _ := ds.CreateTensor(ctx, core.TensorSpec{Name: "x", Dtype: tensor.Int32, Bounds: smallBounds})
	lbl, _ := ds.CreateTensor(ctx, core.TensorSpec{Name: "label", Htype: "class_label", Bounds: smallBounds})
	for i := 0; i < n; i++ {
		v := float64(i) + off
		arr, _ := tensor.FromFloat64s(tensor.Int32, []int{4}, []float64{v, v + 1, v + 2, v + 3})
		if err := x.Append(ctx, arr); err != nil {
			t.Fatal(err)
		}
		if err := lbl.Append(ctx, tensor.Scalar(tensor.Int32, float64(i%5))); err != nil {
			t.Fatal(err)
		}
	}
	if err := ds.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestSharedNodeCacheCrossDatasetIsolation is the key-collision satellite's
// regression test: two Loaders over two different datasets — identical
// tensor names, identical chunk ids — share one NodeCache and must never
// serve each other's bytes. Under the old (tensor, chunkID) key every
// lookup aliased; the (dataset, commit, tensor, chunk) key isolates them.
func TestSharedNodeCacheCrossDatasetIsolation(t *testing.T) {
	const n, off = 96, 100000
	dsA := loaderDataset(t, storage.NewMemory(), n)
	dsB := offsetDataset(t, storage.NewMemory(), n, off)

	node := NewNodeCache(0)
	check := func(ds *core.Dataset, base float64) []error {
		l := ForDataset(ds, Options{BatchSize: 8, Workers: 4, Cache: node})
		var errs []error
		seen := 0
		for b := range l.Batches(context.Background()) {
			for _, s := range b.Samples {
				v, _ := s["x"].At(0)
				if v != base+float64(seen) {
					t.Errorf("row %d of dataset with base %v delivered %v (cross-dataset cache aliasing)", seen, base, v)
				}
				seen++
			}
		}
		if err := l.Err(); err != nil {
			t.Errorf("loader: %v", err)
		}
		if seen != n {
			t.Errorf("delivered %d/%d rows", seen, n)
		}
		return errs
	}

	// Concurrently, so the aliasing window (if any) is actually exercised.
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); check(dsA, 0) }()
	go func() { defer wg.Done(); check(dsB, off) }()
	wg.Wait()

	// Both datasets' chunks are resident under distinct keys.
	if st := node.Stats(); st.Decodes < 2 {
		t.Fatalf("shared cache decoded %d chunks, want work from both datasets", st.Decodes)
	}
}

// TestNodeCachePinBlocksEviction unit-tests the eviction-pin mechanism: a
// pinned entry survives budget pressure that evicts its unpinned neighbors,
// and loses protection once unpinned.
func TestNodeCachePinBlocksEviction(t *testing.T) {
	c := NewNodeCache(100) // single shard, tiny budget
	mk := func(obj string) (cacheKey, []chunk.Sample) {
		return cacheKey{scope: 1, obj: obj}, []chunk.Sample{{Data: make([]byte, 64)}}
	}
	ka, sa := mk("a")
	kb, sb := mk("b")
	kc, sc := mk("c")

	c.pin(ka) // pinned before its entry exists, like the feeder does
	c.admit(ka, sa)
	c.admit(kb, sb) // over budget; a is pinned, b is the fresh admit → both stay
	if _, ok := c.peek(ka); !ok {
		t.Fatal("pinned entry evicted by the admit that overflowed the budget")
	}
	c.admit(kc, sc) // b is now evictable and LRU → evicted; a stays
	if _, ok := c.peek(kb); ok {
		t.Fatal("unpinned LRU entry survived eviction pressure")
	}
	if _, ok := c.peek(ka); !ok {
		t.Fatal("pinned entry evicted while unpinned victims existed")
	}

	c.unpin(ka)
	kd, sd := mk("d")
	c.admit(kd, sd) // a lost protection: evictable now
	if _, ok := c.peek(ka); ok {
		t.Fatal("unpinned entry survived eviction (pin leaked)")
	}
	if st := c.Stats(); st.Pinned != 0 {
		t.Fatalf("Pinned = %d after final unpin, want 0", st.Pinned)
	}
}

// TestTightBudgetKeepsDecodeOnce is the eviction satellite's loader-level
// regression: a MemoryBudget far smaller than the working set must not
// break the fetch+decode-once contract for chunks with
// planned-but-unstarted jobs, because those are pinned against eviction.
// (The single-field stream makes the contract exact: split sub-jobs of one
// chunk are the planned-but-unstarted window the old eviction violated. A
// chunk needed again megabytes later — a label chunk shared by every job of
// an epoch — is outside the pin window by design: re-reading it under a
// budget that cannot hold it is the budget working, not a contract
// violation.)
func TestTightBudgetKeepsDecodeOnce(t *testing.T) {
	inner := storage.NewMemory()
	counting := storage.NewCounting(inner)
	ds := loaderDataset(t, counting, 256)
	chunks := int64(ds.Tensor("x").NumChunks())
	counting.Reset()

	// 1 byte of budget: every admit overflows instantly, so without pins
	// any chunk still needed by a queued sub-job would be evicted and
	// silently re-decoded.
	l := ForDataset(ds, Options{
		BatchSize: 16, Workers: 8, Shuffle: true, Seed: 7, MemoryBudget: 1, Readahead: 8,
		Fields: []string{"x"},
	})
	batches := drain(t, l)
	rows := 0
	for _, b := range batches {
		rows += len(b.Samples)
	}
	if rows != 256 {
		t.Fatalf("delivered %d/256 rows", rows)
	}
	if got := l.CacheDecodes(); got != chunks {
		t.Fatalf("tight budget decoded %d chunks, want exactly %d (pins must protect planned jobs)", got, chunks)
	}
	if gets := counting.Snapshot().Gets; gets != chunks {
		t.Fatalf("tight budget fetched %d objects for %d chunks", gets, chunks)
	}
	// The pipeline released every pin on shutdown: nothing is left pinned
	// in the cache.
	if st := l.Cache().Stats(); st.Pinned != 0 {
		t.Fatalf("%d pins leaked past pipeline shutdown", st.Pinned)
	}
}
