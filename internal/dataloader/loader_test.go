package dataloader

import (
	"context"
	"errors"
	"reflect"
	"sort"
	"testing"

	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/simnet"
	"repro/internal/storage"
	"repro/internal/tensor"
	"repro/internal/view"
)

var smallBounds = chunk.Bounds{Min: 256, Target: 512, Max: 1024}

// loaderDataset builds a dataset of n rows: "x" [4]int32 identifying the
// row, and "label" scalar int32 = row % 5.
func loaderDataset(t testing.TB, store storage.Provider, n int) *core.Dataset {
	t.Helper()
	ctx := context.Background()
	ds, err := core.Create(ctx, store, "loadertest")
	if err != nil {
		t.Fatal(err)
	}
	x, _ := ds.CreateTensor(ctx, core.TensorSpec{Name: "x", Dtype: tensor.Int32, Bounds: smallBounds})
	lbl, _ := ds.CreateTensor(ctx, core.TensorSpec{Name: "label", Htype: "class_label", Bounds: smallBounds})
	for i := 0; i < n; i++ {
		arr, _ := tensor.FromFloat64s(tensor.Int32, []int{4}, []float64{float64(i), float64(i + 1), float64(i + 2), float64(i + 3)})
		if err := x.Append(ctx, arr); err != nil {
			t.Fatal(err)
		}
		if err := lbl.Append(ctx, tensor.Scalar(tensor.Int32, float64(i%5))); err != nil {
			t.Fatal(err)
		}
	}
	if err := ds.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	return ds
}

func drain(t testing.TB, l *Loader) []Batch {
	t.Helper()
	var out []Batch
	for b := range l.Batches(context.Background()) {
		out = append(out, b)
	}
	if err := l.Err(); err != nil {
		t.Fatalf("loader error: %v", err)
	}
	return out
}

func TestSequentialEpochCoversAllRowsInOrder(t *testing.T) {
	ds := loaderDataset(t, storage.NewMemory(), 100)
	l := ForDataset(ds, Options{BatchSize: 8, Workers: 4})
	batches := drain(t, l)
	if len(batches) != 13 {
		t.Fatalf("batches = %d, want 13 (12 full + partial)", len(batches))
	}
	var rows []float64
	for _, b := range batches {
		for _, s := range b.Samples {
			v, _ := s["x"].At(0)
			rows = append(rows, v)
		}
	}
	if len(rows) != 100 {
		t.Fatalf("delivered %d rows", len(rows))
	}
	for i, v := range rows {
		if v != float64(i) {
			t.Fatalf("row %d delivered out of order: %v", i, v)
		}
	}
	if l.Rows() != 100 {
		t.Fatalf("Rows() = %d", l.Rows())
	}
}

func TestBatchIndexAndStacking(t *testing.T) {
	ds := loaderDataset(t, storage.NewMemory(), 20)
	l := ForDataset(ds, Options{BatchSize: 5, Workers: 2})
	batches := drain(t, l)
	for i, b := range batches {
		if b.Index != i {
			t.Fatalf("batch %d has index %d", i, b.Index)
		}
		stacked, ok := b.Stacked["x"]
		if !ok {
			t.Fatal("x not stacked despite uniform shape")
		}
		if !reflect.DeepEqual(stacked.Shape(), []int{5, 4}) {
			t.Fatalf("stacked shape = %v", stacked.Shape())
		}
	}
}

func TestDropLast(t *testing.T) {
	ds := loaderDataset(t, storage.NewMemory(), 22)
	l := ForDataset(ds, Options{BatchSize: 8, DropLast: true, Workers: 2})
	batches := drain(t, l)
	if len(batches) != 2 {
		t.Fatalf("batches = %d, want 2 (trailing 6 dropped)", len(batches))
	}
}

func TestShuffleIsPermutationAndSeeded(t *testing.T) {
	ds := loaderDataset(t, storage.NewMemory(), 200)
	run := func(seed int64) []float64 {
		l := ForDataset(ds, Options{BatchSize: 10, Shuffle: true, Seed: seed, ShuffleBuffer: 32, Workers: 4})
		var rows []float64
		for _, b := range drain(t, l) {
			for _, s := range b.Samples {
				v, _ := s["x"].At(0)
				rows = append(rows, v)
			}
		}
		return rows
	}
	a := run(1)
	b := run(1)
	c := run(2)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must reproduce the same order")
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds should differ")
	}
	// Permutation property: every row exactly once.
	sorted := append([]float64(nil), a...)
	sort.Float64s(sorted)
	for i, v := range sorted {
		if v != float64(i) {
			t.Fatalf("shuffle lost/duplicated rows at %d: %v", i, v)
		}
	}
	// Not the identity order.
	identity := true
	for i, v := range a {
		if v != float64(i) {
			identity = false
			break
		}
	}
	if identity {
		t.Fatal("shuffle produced identity order")
	}
}

func TestFieldSelection(t *testing.T) {
	ds := loaderDataset(t, storage.NewMemory(), 10)
	l := ForDataset(ds, Options{BatchSize: 2, Fields: []string{"label"}, Workers: 2})
	batches := drain(t, l)
	for _, b := range batches {
		for _, s := range b.Samples {
			if _, ok := s["x"]; ok {
				t.Fatal("x loaded despite field selection")
			}
			if _, ok := s["label"]; !ok {
				t.Fatal("label missing")
			}
		}
	}
	bad := ForDataset(ds, Options{Fields: []string{"zzz"}})
	for range bad.Batches(context.Background()) {
	}
	if bad.Err() == nil {
		t.Fatal("unknown field should error")
	}
}

func TestTransformRunsPerSample(t *testing.T) {
	ds := loaderDataset(t, storage.NewMemory(), 30)
	l := ForDataset(ds, Options{
		BatchSize: 4,
		Workers:   4,
		Transform: func(s map[string]*tensor.NDArray) (map[string]*tensor.NDArray, error) {
			doubled, err := s["x"].Mul(tensor.Scalar(tensor.Float64, 2))
			if err != nil {
				return nil, err
			}
			return map[string]*tensor.NDArray{"x2": doubled}, nil
		},
	})
	batches := drain(t, l)
	total := 0
	for _, b := range batches {
		for _, s := range b.Samples {
			if len(s) != 1 {
				t.Fatalf("transform output keys = %v", s)
			}
			total++
		}
	}
	if total != 30 {
		t.Fatalf("rows = %d", total)
	}
	first, _ := batches[0].Samples[0]["x2"].At(0)
	if first != 0 {
		t.Fatalf("x2[0] = %v", first)
	}
	second, _ := batches[0].Samples[1]["x2"].At(0)
	if second != 2 {
		t.Fatalf("x2 of row 1 = %v, want 2", second)
	}
}

func TestTransformErrorPropagates(t *testing.T) {
	ds := loaderDataset(t, storage.NewMemory(), 10)
	boom := errors.New("bad sample")
	l := ForDataset(ds, Options{
		Workers: 2,
		Transform: func(s map[string]*tensor.NDArray) (map[string]*tensor.NDArray, error) {
			v, _ := s["x"].At(0)
			if v == 5 {
				return nil, boom
			}
			return s, nil
		},
	})
	for range l.Batches(context.Background()) {
	}
	if err := l.Err(); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected failure", err)
	}
}

func TestStorageErrorPropagates(t *testing.T) {
	inner := storage.NewMemory()
	loaderDataset(t, inner, 64)
	boom := errors.New("storage down")
	// Reopen the dataset against a flaky provider.
	flaky := storage.NewFlaky(inner, 3, boom)
	ds2, err := core.Open(context.Background(), flaky)
	if err == nil {
		l := ForDataset(ds2, Options{Workers: 2})
		for range l.Batches(context.Background()) {
		}
		if lerr := l.Err(); !errors.Is(lerr, boom) {
			t.Fatalf("err = %v, want storage failure", lerr)
		}
		return
	}
	// Open itself may hit the injected failure, which is also fine.
	if !errors.Is(err, boom) {
		t.Fatalf("unexpected open error: %v", err)
	}
}

func TestContextCancellationStopsPipeline(t *testing.T) {
	ds := loaderDataset(t, storage.NewMemory(), 1000)
	ctx, cancel := context.WithCancel(context.Background())
	l := ForDataset(ds, Options{BatchSize: 1, Workers: 2, Prefetch: 1})
	ch := l.Batches(ctx)
	<-ch // first batch
	cancel()
	for range ch {
	}
	// No deadlock is the main assertion; Err may report ctx.Canceled.
}

func TestChunkCacheDeduplicatesFetches(t *testing.T) {
	inner := storage.NewMemory()
	counting := storage.NewCounting(inner)
	ds := loaderDataset(t, counting, 256)

	counting.Reset()
	l := ForDataset(ds, Options{BatchSize: 16, Workers: 8})
	drain(t, l)
	chunks := int64(ds.Tensor("x").NumChunks() + ds.Tensor("label").NumChunks())
	if gets := counting.Snapshot().Gets; gets > chunks {
		t.Fatalf("epoch fetched %d objects for %d chunks; cache failed to deduplicate", gets, chunks)
	}
	hits, misses := l.CacheStats()
	if hits == 0 || misses == 0 {
		t.Fatalf("cache stats hits=%d misses=%d", hits, misses)
	}
}

func TestViewStreamingWithComputedColumn(t *testing.T) {
	ds := loaderDataset(t, storage.NewMemory(), 40)
	ctx := context.Background()
	xt := ds.Tensor("x")
	v := view.New(ds, []uint64{5, 10, 15, 20}, []view.Column{
		{Name: "x", Source: "x"},
		{Name: "sum", Eval: func(ctx context.Context, row uint64) (*tensor.NDArray, error) {
			arr, err := xt.At(ctx, row)
			if err != nil {
				return nil, err
			}
			return tensor.Scalar(tensor.Float64, arr.Sum()), nil
		}},
	})
	l := New(v, Options{BatchSize: 2, Workers: 2})
	batches := drain(t, l)
	if len(batches) != 2 {
		t.Fatalf("batches = %d", len(batches))
	}
	s, _ := batches[0].Samples[0]["sum"].Item()
	// Row 5: 5+6+7+8 = 26.
	if s != 26 {
		t.Fatalf("sum = %v", s)
	}
	_ = ctx
}

func TestRawBytesMode(t *testing.T) {
	ds := loaderDataset(t, storage.NewMemory(), 4)
	l := ForDataset(ds, Options{Fields: []string{"x"}, RawBytes: true, Workers: 1})
	batches := drain(t, l)
	arr := batches[0].Samples[0]["x"]
	if arr.Dtype() != tensor.UInt8 || arr.NDim() != 1 {
		t.Fatalf("raw mode array = %v", arr)
	}
	if arr.Len() != 16 { // 4 int32 values
		t.Fatalf("raw bytes = %d", arr.Len())
	}
}

func TestStreamingFromSimulatedS3(t *testing.T) {
	// End-to-end: dataset on a simulated S3 bucket, parallel loader
	// saturates the lanes and completes the epoch.
	profile := simnet.Profile{
		Name: "test-s3", ReadLatency: 2_000_000, WriteLatency: 2_000_000,
		ReadBytesPerSec: 200e6, WriteBytesPerSec: 200e6, Lanes: 16, TimeScale: 1000,
	}
	store := storage.NewSimObjectStore(profile)
	ds := loaderDataset(t, store, 128)
	l := ForDataset(ds, Options{BatchSize: 16, Workers: 8, Shuffle: true, Seed: 7})
	batches := drain(t, l)
	n := 0
	for _, b := range batches {
		n += len(b.Samples)
	}
	if n != 128 {
		t.Fatalf("rows = %d", n)
	}
}

func TestEmptyDataset(t *testing.T) {
	ctx := context.Background()
	ds, _ := core.Create(ctx, storage.NewMemory(), "empty")
	ds.CreateTensor(ctx, core.TensorSpec{Name: "x", Dtype: tensor.Int32})
	l := ForDataset(ds, Options{})
	batches := drain(t, l)
	if len(batches) != 0 {
		t.Fatalf("batches = %d", len(batches))
	}
}

func BenchmarkLoaderThroughput(b *testing.B) {
	ds := loaderDataset(b, storage.NewMemory(), 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := ForDataset(ds, Options{BatchSize: 32, Workers: 8})
		n := 0
		for batch := range l.Batches(context.Background()) {
			n += len(batch.Samples)
		}
		if n != 2000 {
			b.Fatalf("rows = %d", n)
		}
	}
}
