// Package version implements the dataset version-control tree of §4.2:
// commits, branches, checkout, diff and merge bookkeeping. Different
// versions of a dataset live in the same storage, separated by
// sub-directories holding only the chunks modified in that version; this
// package owns the branching tree and its traversal order, while the core
// package owns the per-version chunk sets.
//
// Every branch has exactly one mutable head node (an uncommitted working
// version). Commit freezes the head and creates a fresh mutable child, so
// historical versions are immutable snapshots exactly as in the paper.
package version

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"
)

// DefaultBranch is the branch created with a new dataset.
const DefaultBranch = "main"

// Node is one version in the tree.
type Node struct {
	// ID is the version identifier (also the storage sub-directory name).
	ID string `json:"id"`
	// Parent is the ID of the parent version; empty for the root.
	Parent string `json:"parent,omitempty"`
	// Branch names the branch this node belongs to.
	Branch string `json:"branch"`
	// Message is the commit message (set when committed).
	Message string `json:"message,omitempty"`
	// CreatedAt is when the node was created.
	CreatedAt time.Time `json:"created_at"`
	// CommittedAt is when the node was frozen; zero while mutable.
	CommittedAt time.Time `json:"committed_at,omitempty"`
	// Committed marks an immutable snapshot. Exactly one uncommitted
	// node exists per branch: its head.
	Committed bool `json:"committed"`
}

// Tree is the branching version-control tree stored at the dataset root.
type Tree struct {
	// Nodes maps version ID to node.
	Nodes map[string]*Node `json:"nodes"`
	// Heads maps branch name to its mutable head node ID.
	Heads map[string]string `json:"heads"`
	// Counter feeds deterministic version IDs.
	Counter uint64 `json:"counter"`
}

// NewTree creates a tree with a single mutable head on the default branch.
func NewTree(now time.Time) *Tree {
	t := &Tree{Nodes: map[string]*Node{}, Heads: map[string]string{}}
	head := t.newNode("", DefaultBranch, now)
	t.Heads[DefaultBranch] = head.ID
	return t
}

func (t *Tree) newNode(parent, branch string, now time.Time) *Node {
	t.Counter++
	n := &Node{
		ID:        fmt.Sprintf("v%08d", t.Counter),
		Parent:    parent,
		Branch:    branch,
		CreatedAt: now,
	}
	t.Nodes[n.ID] = n
	return n
}

// Head returns the mutable head node of a branch.
func (t *Tree) Head(branch string) (*Node, error) {
	id, ok := t.Heads[branch]
	if !ok {
		return nil, fmt.Errorf("version: unknown branch %q", branch)
	}
	n, ok := t.Nodes[id]
	if !ok {
		return nil, fmt.Errorf("version: dangling head %q for branch %q", id, branch)
	}
	return n, nil
}

// Resolve maps a ref — branch name or version ID — to a node.
func (t *Tree) Resolve(ref string) (*Node, error) {
	if id, ok := t.Heads[ref]; ok {
		return t.Nodes[id], nil
	}
	if n, ok := t.Nodes[ref]; ok {
		return n, nil
	}
	return nil, fmt.Errorf("version: unknown ref %q", ref)
}

// Branches lists branch names in sorted order.
func (t *Tree) Branches() []string {
	out := make([]string, 0, len(t.Heads))
	for b := range t.Heads {
		out = append(out, b)
	}
	sort.Strings(out)
	return out
}

// Commit freezes the head of branch with a message and creates a fresh
// mutable head whose parent is the frozen node. It returns the frozen
// (commit) node and the new head.
func (t *Tree) Commit(branch, message string, now time.Time) (committed, newHead *Node, err error) {
	head, err := t.Head(branch)
	if err != nil {
		return nil, nil, err
	}
	head.Committed = true
	head.Message = message
	head.CommittedAt = now
	child := t.newNode(head.ID, branch, now)
	t.Heads[branch] = child.ID
	return head, child, nil
}

// CreateBranch forks a new branch whose mutable head descends from the
// given node (typically another branch's last commit or its head).
func (t *Tree) CreateBranch(name, fromRef string, now time.Time) (*Node, error) {
	if _, exists := t.Heads[name]; exists {
		return nil, fmt.Errorf("version: branch %q already exists", name)
	}
	if name == "" {
		return nil, fmt.Errorf("version: empty branch name")
	}
	from, err := t.Resolve(fromRef)
	if err != nil {
		return nil, err
	}
	// Branching from a mutable head forks from its last committed parent
	// so the two branches cannot share a mutable version.
	base := from
	if !base.Committed {
		if base.Parent == "" {
			// Root head with no commits yet: freeze it implicitly is
			// not allowed; fork from the same empty lineage instead.
			head := t.newNode("", name, now)
			t.Heads[name] = head.ID
			return head, nil
		}
		base = t.Nodes[base.Parent]
	}
	head := t.newNode(base.ID, name, now)
	t.Heads[name] = head.ID
	return head, nil
}

// Ancestry returns the chain [id, parent, ..., root]. This is the traversal
// order for chunk resolution (§4.2: "the version control tree is traversed
// starting from the current commit, heading towards the first commit").
func (t *Tree) Ancestry(id string) ([]string, error) {
	var out []string
	seen := map[string]bool{}
	for id != "" {
		if seen[id] {
			return nil, fmt.Errorf("version: cycle at %q", id)
		}
		seen[id] = true
		n, ok := t.Nodes[id]
		if !ok {
			return nil, fmt.Errorf("version: unknown node %q", id)
		}
		out = append(out, id)
		id = n.Parent
	}
	return out, nil
}

// CommonAncestor returns the lowest common ancestor of two refs, the merge
// base.
func (t *Tree) CommonAncestor(a, b string) (string, error) {
	an, err := t.Resolve(a)
	if err != nil {
		return "", err
	}
	bn, err := t.Resolve(b)
	if err != nil {
		return "", err
	}
	aAnc, err := t.Ancestry(an.ID)
	if err != nil {
		return "", err
	}
	inA := map[string]bool{}
	for _, id := range aAnc {
		inA[id] = true
	}
	bAnc, err := t.Ancestry(bn.ID)
	if err != nil {
		return "", err
	}
	for _, id := range bAnc {
		if inA[id] {
			return id, nil
		}
	}
	return "", fmt.Errorf("version: no common ancestor of %q and %q", a, b)
}

// Log returns the committed ancestors of ref, newest first.
func (t *Tree) Log(ref string) ([]*Node, error) {
	n, err := t.Resolve(ref)
	if err != nil {
		return nil, err
	}
	anc, err := t.Ancestry(n.ID)
	if err != nil {
		return nil, err
	}
	var out []*Node
	for _, id := range anc {
		if node := t.Nodes[id]; node.Committed {
			out = append(out, node)
		}
	}
	return out, nil
}

// Marshal serializes the tree as JSON.
func (t *Tree) Marshal() ([]byte, error) { return json.MarshalIndent(t, "", "  ") }

// Unmarshal restores a serialized tree.
func Unmarshal(data []byte) (*Tree, error) {
	var t Tree
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, err
	}
	if t.Nodes == nil || t.Heads == nil {
		return nil, fmt.Errorf("version: malformed tree")
	}
	for branch, id := range t.Heads {
		n, ok := t.Nodes[id]
		if !ok {
			return nil, fmt.Errorf("version: head %q of branch %q missing", id, branch)
		}
		if n.Committed {
			return nil, fmt.Errorf("version: head %q of branch %q is committed", id, branch)
		}
	}
	return &t, nil
}
