package version

import (
	"testing"
	"time"
)

var t0 = time.Date(2023, 1, 8, 0, 0, 0, 0, time.UTC)

func TestNewTreeHasMutableMainHead(t *testing.T) {
	tr := NewTree(t0)
	head, err := tr.Head(DefaultBranch)
	if err != nil {
		t.Fatal(err)
	}
	if head.Committed || head.Parent != "" || head.Branch != DefaultBranch {
		t.Fatalf("head = %+v", head)
	}
	if _, err := tr.Head("dev"); err == nil {
		t.Fatal("unknown branch should error")
	}
}

func TestCommitFreezesAndAdvances(t *testing.T) {
	tr := NewTree(t0)
	first, _ := tr.Head("main")
	committed, newHead, err := tr.Commit("main", "initial data", t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if committed.ID != first.ID || !committed.Committed || committed.Message != "initial data" {
		t.Fatalf("committed = %+v", committed)
	}
	if newHead.Committed || newHead.Parent != committed.ID {
		t.Fatalf("new head = %+v", newHead)
	}
	cur, _ := tr.Head("main")
	if cur.ID != newHead.ID {
		t.Fatal("branch head not advanced")
	}
}

func TestAncestryOrder(t *testing.T) {
	tr := NewTree(t0)
	c1, _, _ := tr.Commit("main", "c1", t0)
	c2, _, _ := tr.Commit("main", "c2", t0)
	head, _ := tr.Head("main")
	anc, err := tr.Ancestry(head.ID)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{head.ID, c2.ID, c1.ID}
	if len(anc) != 3 {
		t.Fatalf("ancestry = %v", anc)
	}
	for i := range want {
		if anc[i] != want[i] {
			t.Fatalf("ancestry = %v, want %v", anc, want)
		}
	}
	if _, err := tr.Ancestry("missing"); err == nil {
		t.Fatal("unknown node should error")
	}
}

func TestBranchingAndResolve(t *testing.T) {
	tr := NewTree(t0)
	c1, _, _ := tr.Commit("main", "base", t0)
	devHead, err := tr.CreateBranch("dev", "main", t0)
	if err != nil {
		t.Fatal(err)
	}
	if devHead.Parent != c1.ID {
		t.Fatalf("dev parent = %q, want last commit %q (branch from mutable head forks at last commit)", devHead.Parent, c1.ID)
	}
	if _, err := tr.CreateBranch("dev", "main", t0); err == nil {
		t.Fatal("duplicate branch should error")
	}
	if _, err := tr.CreateBranch("", "main", t0); err == nil {
		t.Fatal("empty branch name should error")
	}
	if _, err := tr.CreateBranch("x", "nope", t0); err == nil {
		t.Fatal("unknown from ref should error")
	}

	// Resolve by branch and by id.
	n, err := tr.Resolve("dev")
	if err != nil || n.ID != devHead.ID {
		t.Fatalf("Resolve(dev) = %+v, %v", n, err)
	}
	n, err = tr.Resolve(c1.ID)
	if err != nil || n.ID != c1.ID {
		t.Fatalf("Resolve(c1) = %+v, %v", n, err)
	}
	bs := tr.Branches()
	if len(bs) != 2 || bs[0] != "dev" || bs[1] != "main" {
		t.Fatalf("Branches = %v", bs)
	}
}

func TestBranchFromEmptyRoot(t *testing.T) {
	tr := NewTree(t0)
	head, err := tr.CreateBranch("scratch", "main", t0)
	if err != nil {
		t.Fatal(err)
	}
	if head.Parent != "" {
		t.Fatalf("scratch from empty main should have no parent, got %q", head.Parent)
	}
}

func TestCommonAncestor(t *testing.T) {
	tr := NewTree(t0)
	c1, _, _ := tr.Commit("main", "c1", t0)
	tr.CreateBranch("dev", "main", t0)
	tr.Commit("dev", "d1", t0)
	tr.Commit("main", "c2", t0)

	base, err := tr.CommonAncestor("main", "dev")
	if err != nil {
		t.Fatal(err)
	}
	if base != c1.ID {
		t.Fatalf("merge base = %q, want %q", base, c1.ID)
	}
	if _, err := tr.CommonAncestor("main", "ghost"); err == nil {
		t.Fatal("unknown ref should error")
	}
}

func TestLogListsCommitsNewestFirst(t *testing.T) {
	tr := NewTree(t0)
	c1, _, _ := tr.Commit("main", "one", t0)
	c2, _, _ := tr.Commit("main", "two", t0.Add(time.Minute))
	log, err := tr.Log("main")
	if err != nil {
		t.Fatal(err)
	}
	if len(log) != 2 || log[0].ID != c2.ID || log[1].ID != c1.ID {
		t.Fatalf("log = %v", log)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	tr := NewTree(t0)
	tr.Commit("main", "c1", t0)
	tr.CreateBranch("dev", "main", t0)
	blob, err := tr.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Nodes) != len(tr.Nodes) || len(back.Heads) != len(tr.Heads) {
		t.Fatalf("round trip: %d nodes %d heads", len(back.Nodes), len(back.Heads))
	}
	h1, _ := tr.Head("dev")
	h2, err := back.Head("dev")
	if err != nil || h1.ID != h2.ID {
		t.Fatalf("dev head mismatch: %v vs %v", h1, h2)
	}
	if _, err := Unmarshal([]byte("{}")); err == nil {
		t.Fatal("malformed tree should error")
	}
	if _, err := Unmarshal([]byte("not json")); err == nil {
		t.Fatal("garbage should error")
	}
}

func TestUnmarshalRejectsCommittedHead(t *testing.T) {
	tr := NewTree(t0)
	head, _ := tr.Head("main")
	head.Committed = true // corrupt: heads must be mutable
	blob, _ := tr.Marshal()
	if _, err := Unmarshal(blob); err == nil {
		t.Fatal("committed head should be rejected")
	}
}

func TestDeterministicIDs(t *testing.T) {
	a := NewTree(t0)
	b := NewTree(t0)
	ah, _ := a.Head("main")
	bh, _ := b.Head("main")
	if ah.ID != bh.ID {
		t.Fatalf("ids differ across fresh trees: %q vs %q", ah.ID, bh.ID)
	}
}
