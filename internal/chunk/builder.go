package chunk

import "fmt"

// Bounds configures the chunk sizing policy (§3.4): a chunk may close once
// its payload reaches Min bytes and must not grow past Max bytes; Target is
// the preferred size reported in metadata and used by re-chunking.
type Bounds struct {
	Min, Target, Max int
}

// DefaultBounds returns the paper's 8MB default policy.
func DefaultBounds() Bounds {
	return Bounds{Min: DefaultMinBytes, Target: DefaultTargetBytes, Max: DefaultMaxBytes}
}

// Validate checks the invariants 0 < Min <= Target <= Max.
func (b Bounds) Validate() error {
	if b.Min <= 0 || b.Min > b.Target || b.Target > b.Max {
		return fmt.Errorf("chunk: invalid bounds min=%d target=%d max=%d", b.Min, b.Target, b.Max)
	}
	return nil
}

// Builder accumulates samples into one chunk under a Bounds policy.
type Builder struct {
	bounds  Bounds
	samples []Sample
	bytes   int
}

// NewBuilder returns an empty builder. Invalid bounds fall back to defaults.
func NewBuilder(bounds Bounds) *Builder {
	if bounds.Validate() != nil {
		bounds = DefaultBounds()
	}
	return &Builder{bounds: bounds}
}

// Bounds returns the sizing policy.
func (b *Builder) Bounds() Bounds { return b.bounds }

// Len returns the number of buffered samples.
func (b *Builder) Len() int { return len(b.samples) }

// PayloadBytes returns the buffered payload size.
func (b *Builder) PayloadBytes() int { return b.bytes }

// NeedsTiling reports whether a sample of n payload bytes can never fit in
// one chunk and must be tiled (§3.4), except for videos which are exempt.
func (b *Builder) NeedsTiling(n int) bool { return n > b.bounds.Max }

// ShouldFlushBefore reports whether the builder should be flushed before
// appending a sample of n bytes: the chunk already holds data and adding the
// sample would exceed the upper bound, or the chunk already reached its
// target size.
func (b *Builder) ShouldFlushBefore(n int) bool {
	if len(b.samples) == 0 {
		return false
	}
	if b.bytes >= b.bounds.Target {
		return true
	}
	return b.bytes+n > b.bounds.Max
}

// Append buffers one sample. Callers must consult ShouldFlushBefore and
// NeedsTiling first; Append rejects samples that violate the upper bound on
// a non-empty builder.
func (b *Builder) Append(s Sample) error {
	if len(b.samples) > 0 && b.bytes+len(s.Data) > b.bounds.Max {
		return fmt.Errorf("chunk: appending %d bytes would exceed upper bound %d (have %d)", len(s.Data), b.bounds.Max, b.bytes)
	}
	b.samples = append(b.samples, s)
	b.bytes += len(s.Data)
	return nil
}

// Flush encodes the buffered samples into a chunk blob and resets the
// builder. It returns the blob and the number of samples it holds; flushing
// an empty builder returns (nil, 0, nil).
func (b *Builder) Flush() ([]byte, int, error) {
	if len(b.samples) == 0 {
		return nil, 0, nil
	}
	blob, err := Encode(b.samples)
	if err != nil {
		return nil, 0, err
	}
	n := len(b.samples)
	b.samples = b.samples[:0]
	b.bytes = 0
	return blob, n, nil
}
