package chunk

import "fmt"

// Bounds configures the chunk sizing policy (§3.4): a chunk may close once
// its payload reaches Min bytes and must not grow past Max bytes; Target is
// the preferred size reported in metadata and used by re-chunking.
type Bounds struct {
	Min, Target, Max int
}

// DefaultBounds returns the paper's 8MB default policy.
func DefaultBounds() Bounds {
	return Bounds{Min: DefaultMinBytes, Target: DefaultTargetBytes, Max: DefaultMaxBytes}
}

// Validate checks the invariants 0 < Min <= Target <= Max.
func (b Bounds) Validate() error {
	if b.Min <= 0 || b.Min > b.Target || b.Target > b.Max {
		return fmt.Errorf("chunk: invalid bounds min=%d target=%d max=%d", b.Min, b.Target, b.Max)
	}
	return nil
}

// meanSampleFloor is the autotuner's sample-size heuristic: the effective
// target never sits below this many mean-sized samples, so a stream of
// large samples jumps straight to big chunks instead of waiting out the
// doubling schedule.
const meanSampleFloor = 16

// regretNum/regretDen set the shrink-on-regret threshold: a sealed chunk
// whose payload overshot the effective target by more than 3/2 (a closing
// sample worth over half the target blew through the band) walks the
// doubling clock back one level instead of forward.
const (
	regretNum = 3
	regretDen = 2
)

// Builder accumulates samples into one chunk under a Bounds policy.
//
// With autotuning enabled (SetAutotune), the effective target grows from
// Bounds.Target toward the configured cap — doubling with every sealed
// chunk, floored at meanSampleFloor mean observed sample sizes — so an
// ingest that starts with a conservative target converges into the paper's
// 8–16MB band (§3.4) without a priori knowledge of sample sizes. Mixed-size
// appends get the reverse move too: a sealed chunk that overshot the target
// by more than regretNum/regretDen (an oversized closing sample) steps the
// schedule back one level, so occasional huge samples do not ratchet every
// later chunk past the band. The schedule depends only on the sequence of
// Append/Flush calls, never on timing or upload concurrency, so stored
// bytes stay deterministic for a fixed append order at any flush-worker
// count, and its state (AutotuneState) is small enough to persist with
// tensor metadata so a reopened writer resumes exactly where it left off.
type Builder struct {
	bounds  Bounds
	samples []Sample
	bytes   int

	// autoCap enables autotuning when > 0: the ceiling the effective target
	// grows toward.
	autoCap int
	// level is the doubling clock: the effective target is the base target
	// shifted left level times (capped). Grows by one per in-band sealed
	// chunk, shrinks by one per oversized sealed chunk.
	level int
	// obsBytes/obsCount accumulate appended sample sizes for the mean floor.
	obsBytes int64
	obsCount int64
}

// AutotuneState is the autotuner's persistable schedule position: the
// doubling-clock level plus the observed-sample statistics behind the mean
// floor. Persisting it with tensor metadata and restoring it on reopen
// (RestoreAutotune) makes a resumed writer continue the exact chunk-size
// schedule of an uninterrupted one.
type AutotuneState struct {
	Level    int   `json:"level"`
	ObsBytes int64 `json:"obs_bytes"`
	ObsCount int64 `json:"obs_count"`
}

// NewBuilder returns an empty builder. Invalid bounds fall back to defaults.
func NewBuilder(bounds Bounds) *Builder {
	if bounds.Validate() != nil {
		bounds = DefaultBounds()
	}
	return &Builder{bounds: bounds}
}

// Bounds returns the configured (base) sizing policy.
func (b *Builder) Bounds() Bounds { return b.bounds }

// SetAutotune enables chunk-size autotuning with the given target ceiling
// in bytes (at least the base target; the paper's sweet spot is 8–16MB).
// capBytes <= 0 disables autotuning, restoring the static policy.
func (b *Builder) SetAutotune(capBytes int) {
	if capBytes > 0 && capBytes < b.bounds.Target {
		capBytes = b.bounds.Target
	}
	b.autoCap = capBytes
}

// AutotuneState returns the autotuner's current schedule position for
// persistence. Meaningful (but harmless) even when autotuning is disabled.
func (b *Builder) AutotuneState() AutotuneState {
	return AutotuneState{Level: b.level, ObsBytes: b.obsBytes, ObsCount: b.obsCount}
}

// RestoreAutotune rewinds the autotuner to a previously captured schedule
// position, so a reopened writer continues the chunk-size trajectory instead
// of restarting the doubling clock from the base target.
func (b *Builder) RestoreAutotune(s AutotuneState) {
	if s.Level >= 0 {
		b.level = s.Level
	}
	if s.ObsBytes >= 0 && s.ObsCount >= 0 {
		b.obsBytes, b.obsCount = s.ObsBytes, s.ObsCount
	}
}

// EffectiveBounds returns the sizing policy currently in force: the base
// bounds with Target/Max lifted by the autotuner's schedule.
func (b *Builder) EffectiveBounds() Bounds {
	return Bounds{Min: b.bounds.Min, Target: b.effectiveTarget(), Max: b.effectiveMax()}
}

// effectiveTarget is the autotuned preferred chunk size: base target
// doubled per schedule level, floored at meanSampleFloor mean sample sizes,
// capped at autoCap.
func (b *Builder) effectiveTarget() int {
	if b.autoCap <= 0 {
		return b.bounds.Target
	}
	t := b.bounds.Target
	for i := 0; i < b.level && t < b.autoCap; i++ {
		t <<= 1
	}
	if b.obsCount > 0 {
		if floor := int(b.obsBytes / b.obsCount * meanSampleFloor); floor > t {
			t = floor
		}
	}
	if t > b.autoCap {
		t = b.autoCap
	}
	if t < b.bounds.Target {
		t = b.bounds.Target
	}
	return t
}

// effectiveMax keeps the hard ceiling at least twice the autotuned target,
// so a grown target still leaves headroom for the closing sample.
func (b *Builder) effectiveMax() int {
	if b.autoCap <= 0 {
		return b.bounds.Max
	}
	m := b.bounds.Max
	if t := b.effectiveTarget(); m < 2*t {
		m = 2 * t
	}
	return m
}

// Len returns the number of buffered samples.
func (b *Builder) Len() int { return len(b.samples) }

// PayloadBytes returns the buffered payload size.
func (b *Builder) PayloadBytes() int { return b.bytes }

// NeedsTiling reports whether a sample of n payload bytes can never fit in
// one chunk and must be tiled (§3.4), except for videos which are exempt.
func (b *Builder) NeedsTiling(n int) bool { return n > b.effectiveMax() }

// ShouldFlushBefore reports whether the builder should be flushed before
// appending a sample of n bytes: the chunk already holds data and adding the
// sample would exceed the upper bound, or the chunk already reached its
// (autotuned) target size.
func (b *Builder) ShouldFlushBefore(n int) bool {
	if len(b.samples) == 0 {
		return false
	}
	if b.bytes >= b.effectiveTarget() {
		return true
	}
	return b.bytes+n > b.effectiveMax()
}

// Append buffers one sample. Callers must consult ShouldFlushBefore and
// NeedsTiling first; Append rejects samples that violate the upper bound on
// a non-empty builder.
func (b *Builder) Append(s Sample) error {
	if max := b.effectiveMax(); len(b.samples) > 0 && b.bytes+len(s.Data) > max {
		return fmt.Errorf("chunk: appending %d bytes would exceed upper bound %d (have %d)", len(s.Data), max, b.bytes)
	}
	b.samples = append(b.samples, s)
	b.bytes += len(s.Data)
	b.obsBytes += int64(len(s.Data))
	b.obsCount++
	return nil
}

// Flush encodes the buffered samples into a chunk blob and resets the
// builder. It returns the blob and the number of samples it holds; flushing
// an empty builder returns (nil, 0, nil). Each non-empty flush moves the
// autotuner's clock: forward when the sealed payload landed in band, back
// one level when it overshot the target by more than regretNum/regretDen —
// the shrink-on-regret move that keeps mixed-size streams from ratcheting
// past the band on the strength of one oversized closing sample.
func (b *Builder) Flush() ([]byte, int, error) {
	if len(b.samples) == 0 {
		return nil, 0, nil
	}
	blob, err := Encode(b.samples)
	if err != nil {
		return nil, 0, err
	}
	n := len(b.samples)
	if b.autoCap > 0 {
		if t := b.effectiveTarget(); b.bytes*regretDen > t*regretNum {
			if b.level > 0 {
				b.level--
			}
		} else if b.bounds.Target<<uint(b.level) < b.autoCap {
			// Saturate at the cap: surplus levels would make a later
			// shrink step invisible until they unwound.
			b.level++
		}
	}
	b.samples = b.samples[:0]
	b.bytes = 0
	return blob, n, nil
}
