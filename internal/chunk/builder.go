package chunk

import "fmt"

// Bounds configures the chunk sizing policy (§3.4): a chunk may close once
// its payload reaches Min bytes and must not grow past Max bytes; Target is
// the preferred size reported in metadata and used by re-chunking.
type Bounds struct {
	Min, Target, Max int
}

// DefaultBounds returns the paper's 8MB default policy.
func DefaultBounds() Bounds {
	return Bounds{Min: DefaultMinBytes, Target: DefaultTargetBytes, Max: DefaultMaxBytes}
}

// Validate checks the invariants 0 < Min <= Target <= Max.
func (b Bounds) Validate() error {
	if b.Min <= 0 || b.Min > b.Target || b.Target > b.Max {
		return fmt.Errorf("chunk: invalid bounds min=%d target=%d max=%d", b.Min, b.Target, b.Max)
	}
	return nil
}

// meanSampleFloor is the autotuner's sample-size heuristic: the effective
// target never sits below this many mean-sized samples, so a stream of
// large samples jumps straight to big chunks instead of waiting out the
// doubling schedule.
const meanSampleFloor = 16

// Builder accumulates samples into one chunk under a Bounds policy.
//
// With autotuning enabled (SetAutotune), the effective target grows from
// Bounds.Target toward the configured cap — doubling with every sealed
// chunk, floored at meanSampleFloor mean observed sample sizes — so an
// ingest that starts with a conservative target converges into the paper's
// 8–16MB band (§3.4) without a priori knowledge of sample sizes. The
// schedule depends only on the sequence of Append/Flush calls, never on
// timing or upload concurrency, so stored bytes stay deterministic for a
// fixed append order at any flush-worker count.
type Builder struct {
	bounds  Bounds
	samples []Sample
	bytes   int

	// autoCap enables autotuning when > 0: the ceiling the effective target
	// grows toward.
	autoCap int
	// sealed counts non-empty Flush calls (the doubling clock).
	sealed int
	// obsBytes/obsCount accumulate appended sample sizes for the mean floor.
	obsBytes int64
	obsCount int64
}

// NewBuilder returns an empty builder. Invalid bounds fall back to defaults.
func NewBuilder(bounds Bounds) *Builder {
	if bounds.Validate() != nil {
		bounds = DefaultBounds()
	}
	return &Builder{bounds: bounds}
}

// Bounds returns the configured (base) sizing policy.
func (b *Builder) Bounds() Bounds { return b.bounds }

// SetAutotune enables chunk-size autotuning with the given target ceiling
// in bytes (at least the base target; the paper's sweet spot is 8–16MB).
// capBytes <= 0 disables autotuning, restoring the static policy.
func (b *Builder) SetAutotune(capBytes int) {
	if capBytes > 0 && capBytes < b.bounds.Target {
		capBytes = b.bounds.Target
	}
	b.autoCap = capBytes
}

// EffectiveBounds returns the sizing policy currently in force: the base
// bounds with Target/Max lifted by the autotuner's schedule.
func (b *Builder) EffectiveBounds() Bounds {
	return Bounds{Min: b.bounds.Min, Target: b.effectiveTarget(), Max: b.effectiveMax()}
}

// effectiveTarget is the autotuned preferred chunk size: base target
// doubled per sealed chunk, floored at meanSampleFloor mean sample sizes,
// capped at autoCap.
func (b *Builder) effectiveTarget() int {
	if b.autoCap <= 0 {
		return b.bounds.Target
	}
	t := b.bounds.Target
	for i := 0; i < b.sealed && t < b.autoCap; i++ {
		t <<= 1
	}
	if b.obsCount > 0 {
		if floor := int(b.obsBytes / b.obsCount * meanSampleFloor); floor > t {
			t = floor
		}
	}
	if t > b.autoCap {
		t = b.autoCap
	}
	if t < b.bounds.Target {
		t = b.bounds.Target
	}
	return t
}

// effectiveMax keeps the hard ceiling at least twice the autotuned target,
// so a grown target still leaves headroom for the closing sample.
func (b *Builder) effectiveMax() int {
	if b.autoCap <= 0 {
		return b.bounds.Max
	}
	m := b.bounds.Max
	if t := b.effectiveTarget(); m < 2*t {
		m = 2 * t
	}
	return m
}

// Len returns the number of buffered samples.
func (b *Builder) Len() int { return len(b.samples) }

// PayloadBytes returns the buffered payload size.
func (b *Builder) PayloadBytes() int { return b.bytes }

// NeedsTiling reports whether a sample of n payload bytes can never fit in
// one chunk and must be tiled (§3.4), except for videos which are exempt.
func (b *Builder) NeedsTiling(n int) bool { return n > b.effectiveMax() }

// ShouldFlushBefore reports whether the builder should be flushed before
// appending a sample of n bytes: the chunk already holds data and adding the
// sample would exceed the upper bound, or the chunk already reached its
// (autotuned) target size.
func (b *Builder) ShouldFlushBefore(n int) bool {
	if len(b.samples) == 0 {
		return false
	}
	if b.bytes >= b.effectiveTarget() {
		return true
	}
	return b.bytes+n > b.effectiveMax()
}

// Append buffers one sample. Callers must consult ShouldFlushBefore and
// NeedsTiling first; Append rejects samples that violate the upper bound on
// a non-empty builder.
func (b *Builder) Append(s Sample) error {
	if max := b.effectiveMax(); len(b.samples) > 0 && b.bytes+len(s.Data) > max {
		return fmt.Errorf("chunk: appending %d bytes would exceed upper bound %d (have %d)", len(s.Data), max, b.bytes)
	}
	b.samples = append(b.samples, s)
	b.bytes += len(s.Data)
	b.obsBytes += int64(len(s.Data))
	b.obsCount++
	return nil
}

// Flush encodes the buffered samples into a chunk blob and resets the
// builder. It returns the blob and the number of samples it holds; flushing
// an empty builder returns (nil, 0, nil). Each non-empty flush advances the
// autotuner's doubling clock.
func (b *Builder) Flush() ([]byte, int, error) {
	if len(b.samples) == 0 {
		return nil, 0, nil
	}
	blob, err := Encode(b.samples)
	if err != nil {
		return nil, 0, err
	}
	n := len(b.samples)
	b.samples = b.samples[:0]
	b.bytes = 0
	b.sealed++
	return blob, n, nil
}
