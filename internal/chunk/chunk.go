// Package chunk implements the on-storage chunk format of the Tensor
// Storage Format (§3.4): binary blobs holding a directory of sample byte
// ranges and shapes followed by the sample payloads. Chunks are sized
// between a lower and an upper bound so they stay in the range optimal for
// streaming while accommodating mixed-shape samples; samples larger than the
// upper bound are tiled across spatial dimensions by the layer above.
package chunk

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Format constants.
const (
	// Magic identifies a chunk blob.
	Magic = "DLCH"
	// FormatVersion is bumped on incompatible layout changes.
	FormatVersion = 1

	// DefaultTargetBytes is the paper's default chunk size (§3.5: "the
	// default chunk size is 8MB").
	DefaultTargetBytes = 8 << 20
	// DefaultMinBytes is the lower bound: a chunk may close once it holds
	// at least this much payload.
	DefaultMinBytes = DefaultTargetBytes / 2
	// DefaultMaxBytes is the upper bound: appending must not push a chunk
	// past this size; larger samples are tiled.
	DefaultMaxBytes = DefaultTargetBytes * 2
)

// Sample is one entry in a chunk: the (possibly media-encoded) payload plus
// the logical sample shape. For sample-compressed tensors Data holds e.g.
// JPEG bytes while Shape records the decoded pixel shape, so shape queries
// never decode media.
type Sample struct {
	Shape []int
	Data  []byte
}

// header layout: magic(4) version(u16) numSamples(u32) dirBytes(u32).
const headerSize = 4 + 2 + 4 + 4

// Directory describes where each sample lives inside a chunk. Offsets are
// relative to the start of the data section and have length numSamples+1 so
// sample i spans [Offsets[i], Offsets[i+1]).
type Directory struct {
	Offsets []uint64
	Shapes  [][]int
}

// NumSamples returns the number of samples described.
func (d *Directory) NumSamples() int { return len(d.Shapes) }

// DataStart returns the absolute byte offset of the data section for a chunk
// whose directory serializes to dirBytes.
func dataStart(dirBytes int) int { return headerSize + dirBytes }

// Encode serializes samples into a chunk blob.
func Encode(samples []Sample) ([]byte, error) {
	dir, err := encodeDirectory(samples)
	if err != nil {
		return nil, err
	}
	var payload int
	for _, s := range samples {
		payload += len(s.Data)
	}
	out := make([]byte, 0, headerSize+len(dir)+payload)
	out = append(out, Magic...)
	out = binary.LittleEndian.AppendUint16(out, FormatVersion)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(samples)))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(dir)))
	out = append(out, dir...)
	for _, s := range samples {
		out = append(out, s.Data...)
	}
	return out, nil
}

func encodeDirectory(samples []Sample) ([]byte, error) {
	var dir []byte
	var off uint64
	// Offsets: n+1 entries.
	for _, s := range samples {
		dir = binary.LittleEndian.AppendUint64(dir, off)
		off += uint64(len(s.Data))
	}
	dir = binary.LittleEndian.AppendUint64(dir, off)
	// Shapes: ndim(u8) then u32 dims.
	for _, s := range samples {
		if len(s.Shape) > 255 {
			return nil, fmt.Errorf("chunk: sample rank %d exceeds 255", len(s.Shape))
		}
		dir = append(dir, byte(len(s.Shape)))
		for _, d := range s.Shape {
			if d < 0 {
				return nil, fmt.Errorf("chunk: negative dimension %d", d)
			}
			dir = binary.LittleEndian.AppendUint32(dir, uint32(d))
		}
	}
	return dir, nil
}

var errCorrupt = errors.New("chunk: corrupt blob")

// parseHeader validates the fixed header and returns sample count and
// directory length.
func parseHeader(raw []byte) (numSamples, dirBytes int, err error) {
	if len(raw) < headerSize {
		return 0, 0, errCorrupt
	}
	if string(raw[:4]) != Magic {
		return 0, 0, fmt.Errorf("chunk: bad magic %q", raw[:4])
	}
	if v := binary.LittleEndian.Uint16(raw[4:]); v != FormatVersion {
		return 0, 0, fmt.Errorf("chunk: unsupported version %d", v)
	}
	numSamples = int(binary.LittleEndian.Uint32(raw[6:]))
	dirBytes = int(binary.LittleEndian.Uint32(raw[10:]))
	if dirBytes < 0 || headerSize+dirBytes > len(raw) {
		return 0, 0, errCorrupt
	}
	return numSamples, dirBytes, nil
}

// DecodeDirectory parses only the header + directory of a chunk blob. The
// input may be a prefix of the chunk (a header range request), as long as it
// covers the directory.
func DecodeDirectory(raw []byte) (*Directory, error) {
	n, dirBytes, err := parseHeader(raw)
	if err != nil {
		return nil, err
	}
	dir := raw[headerSize : headerSize+dirBytes]
	d := &Directory{Offsets: make([]uint64, 0, n+1), Shapes: make([][]int, 0, n)}
	need := (n + 1) * 8
	if len(dir) < need {
		return nil, errCorrupt
	}
	for i := 0; i <= n; i++ {
		d.Offsets = append(d.Offsets, binary.LittleEndian.Uint64(dir[i*8:]))
	}
	p := need
	for i := 0; i < n; i++ {
		if p >= len(dir) {
			return nil, errCorrupt
		}
		nd := int(dir[p])
		p++
		if p+nd*4 > len(dir) {
			return nil, errCorrupt
		}
		shape := make([]int, nd)
		for j := 0; j < nd; j++ {
			shape[j] = int(binary.LittleEndian.Uint32(dir[p:]))
			p += 4
		}
		d.Shapes = append(d.Shapes, shape)
	}
	// Offsets must be monotone.
	for i := 0; i < n; i++ {
		if d.Offsets[i] > d.Offsets[i+1] {
			return nil, errCorrupt
		}
	}
	return d, nil
}

// HeaderRange returns a conservative byte range [0, n) that is guaranteed to
// contain the header and directory of a chunk with at most maxSamples
// samples of rank at most maxRank. Streaming readers use it to fetch the
// directory with one range request before fetching sample payloads.
func HeaderRange(maxSamples, maxRank int) int64 {
	return int64(headerSize + (maxSamples+1)*8 + maxSamples*(1+4*maxRank))
}

// Decode parses a full chunk blob into its samples. Sample Data slices
// alias raw.
func Decode(raw []byte) ([]Sample, error) { return DecodeAppend(raw, nil) }

// DecodeAppend is Decode reusing dst's capacity for the sample directory,
// so a streaming reader that decodes chunks in a loop pays zero steady-state
// allocations for the slice itself. dst is truncated and appended to; Sample
// Data slices alias raw.
func DecodeAppend(raw []byte, dst []Sample) ([]Sample, error) {
	d, err := DecodeDirectory(raw)
	if err != nil {
		return nil, err
	}
	_, dirBytes, err := parseHeader(raw)
	if err != nil {
		return nil, err
	}
	data := raw[dataStart(dirBytes):]
	n := d.NumSamples()
	if n > 0 && d.Offsets[n] > uint64(len(data)) {
		return nil, errCorrupt
	}
	dst = dst[:0]
	for i := 0; i < n; i++ {
		dst = append(dst, Sample{
			Shape: d.Shapes[i],
			Data:  data[d.Offsets[i]:d.Offsets[i+1]],
		})
	}
	return dst, nil
}

// SampleRange returns the absolute byte range of sample i inside a chunk
// blob, computed from its directory; streaming readers pass it to
// Provider.GetRange to fetch a single sample out of an 8MB chunk (§3.5).
func SampleRange(raw []byte, i int) (offset, length int64, shape []int, err error) {
	d, err := DecodeDirectory(raw)
	if err != nil {
		return 0, 0, nil, err
	}
	return d.SampleRange(raw, i)
}

// SampleRange computes the absolute byte range of sample i given the chunk
// prefix raw (which must include the directory).
func (d *Directory) SampleRange(raw []byte, i int) (offset, length int64, shape []int, err error) {
	if i < 0 || i >= d.NumSamples() {
		return 0, 0, nil, fmt.Errorf("chunk: sample %d out of range (%d samples)", i, d.NumSamples())
	}
	_, dirBytes, err := parseHeader(raw)
	if err != nil {
		return 0, 0, nil, err
	}
	start := int64(dataStart(dirBytes)) + int64(d.Offsets[i])
	return start, int64(d.Offsets[i+1] - d.Offsets[i]), d.Shapes[i], nil
}
