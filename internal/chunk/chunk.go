// Package chunk implements the on-storage chunk format of the Tensor
// Storage Format (§3.4): binary blobs holding a directory of sample byte
// ranges and shapes followed by the sample payloads. Chunks are sized
// between a lower and an upper bound so they stay in the range optimal for
// streaming while accommodating mixed-shape samples; samples larger than the
// upper bound are tiled across spatial dimensions by the layer above.
package chunk

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Format constants.
const (
	// Magic identifies a chunk blob.
	Magic = "DLCH"
	// FormatVersion is bumped on layout changes. Version 2 appends a CRC32C
	// integrity footer (see FooterMagic); version 1 blobs (no footer) are
	// still decoded, with verification reported as skipped.
	FormatVersion = 2
	// legacyVersion is the pre-checksum layout, accepted on decode.
	legacyVersion = 1

	// FooterMagic opens the 8-byte trailer of a version-2 chunk:
	// FooterMagic(4) then CRC32C(4, little-endian, Castagnoli) of every
	// preceding byte of the blob (header, directory, payload, footer magic).
	// The footer sits after the data section so directory-prefix reads and
	// sample range reads are laid out exactly as in version 1.
	FooterMagic = "DLCF"
	// footerSize is the byte length of the version-2 trailer.
	footerSize = len(FooterMagic) + 4

	// DefaultTargetBytes is the paper's default chunk size (§3.5: "the
	// default chunk size is 8MB").
	DefaultTargetBytes = 8 << 20
	// DefaultMinBytes is the lower bound: a chunk may close once it holds
	// at least this much payload.
	DefaultMinBytes = DefaultTargetBytes / 2
	// DefaultMaxBytes is the upper bound: appending must not push a chunk
	// past this size; larger samples are tiled.
	DefaultMaxBytes = DefaultTargetBytes * 2
)

// Sample is one entry in a chunk: the (possibly media-encoded) payload plus
// the logical sample shape. For sample-compressed tensors Data holds e.g.
// JPEG bytes while Shape records the decoded pixel shape, so shape queries
// never decode media.
type Sample struct {
	Shape []int
	Data  []byte
}

// header layout: magic(4) version(u16) numSamples(u32) dirBytes(u32).
const headerSize = 4 + 2 + 4 + 4

// Directory describes where each sample lives inside a chunk. Offsets are
// relative to the start of the data section and have length numSamples+1 so
// sample i spans [Offsets[i], Offsets[i+1]).
type Directory struct {
	Offsets []uint64
	Shapes  [][]int
}

// NumSamples returns the number of samples described.
func (d *Directory) NumSamples() int { return len(d.Shapes) }

// DataStart returns the absolute byte offset of the data section for a chunk
// whose directory serializes to dirBytes.
func dataStart(dirBytes int) int { return headerSize + dirBytes }

// castagnoli is the CRC32C table used by the version-2 integrity footer.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Encode serializes samples into a version-2 chunk blob, including the
// CRC32C integrity footer.
func Encode(samples []Sample) ([]byte, error) {
	dir, err := encodeDirectory(samples)
	if err != nil {
		return nil, err
	}
	var payload int
	for _, s := range samples {
		payload += len(s.Data)
	}
	out := make([]byte, 0, headerSize+len(dir)+payload+footerSize)
	out = append(out, Magic...)
	out = binary.LittleEndian.AppendUint16(out, FormatVersion)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(samples)))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(dir)))
	out = append(out, dir...)
	for _, s := range samples {
		out = append(out, s.Data...)
	}
	out = append(out, FooterMagic...)
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(out, castagnoli))
	return out, nil
}

func encodeDirectory(samples []Sample) ([]byte, error) {
	var dir []byte
	var off uint64
	// Offsets: n+1 entries.
	for _, s := range samples {
		dir = binary.LittleEndian.AppendUint64(dir, off)
		off += uint64(len(s.Data))
	}
	dir = binary.LittleEndian.AppendUint64(dir, off)
	// Shapes: ndim(u8) then u32 dims.
	for _, s := range samples {
		if len(s.Shape) > 255 {
			return nil, fmt.Errorf("chunk: sample rank %d exceeds 255", len(s.Shape))
		}
		dir = append(dir, byte(len(s.Shape)))
		for _, d := range s.Shape {
			if d < 0 {
				return nil, fmt.Errorf("chunk: negative dimension %d", d)
			}
			dir = binary.LittleEndian.AppendUint32(dir, uint32(d))
		}
	}
	return dir, nil
}

// ErrCorrupt marks a chunk blob whose bytes do not form a valid chunk:
// short or garbled header, directory that disagrees with its own length,
// non-monotone offsets, or a failed CRC32C footer check. Every decode-path
// corruption error wraps it, so callers can separate data corruption
// (errors.Is(err, ErrCorrupt) — re-fetch, heal, or fsck) from logic bugs
// like out-of-range sample indices, which do not.
var ErrCorrupt = errors.New("chunk: corrupt blob")

// corruptf builds a corruption error wrapping ErrCorrupt.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
}

// parseHeader validates the fixed header and returns sample count,
// directory length, and the blob's format version.
func parseHeader(raw []byte) (numSamples, dirBytes int, version uint16, err error) {
	if len(raw) < headerSize {
		return 0, 0, 0, corruptf("%d bytes is shorter than the %d-byte header", len(raw), headerSize)
	}
	if string(raw[:4]) != Magic {
		return 0, 0, 0, corruptf("bad magic %q", raw[:4])
	}
	version = binary.LittleEndian.Uint16(raw[4:])
	if version != FormatVersion && version != legacyVersion {
		return 0, 0, 0, corruptf("unsupported version %d", version)
	}
	numSamples = int(binary.LittleEndian.Uint32(raw[6:]))
	dirBytes = int(binary.LittleEndian.Uint32(raw[10:]))
	if dirBytes < 0 || headerSize+dirBytes > len(raw) {
		return 0, 0, 0, corruptf("directory of %d bytes overruns %d-byte blob", dirBytes, len(raw))
	}
	return numSamples, dirBytes, version, nil
}

// Verify checks the integrity footer of a full chunk blob. It returns
// checked=false for version-1 blobs, which predate the footer and cannot be
// verified. A version-2 blob with a missing or mismatched footer yields an
// error wrapping ErrCorrupt. Verify only inspects the header and trailer, so
// it is safe to call before (or instead of) a full Decode.
func Verify(raw []byte) (checked bool, err error) {
	_, _, version, err := parseHeader(raw)
	if err != nil {
		return false, err
	}
	if version < 2 {
		return false, nil
	}
	if len(raw) < headerSize+footerSize {
		return true, corruptf("%d bytes is too short for the version-2 footer", len(raw))
	}
	trailer := raw[len(raw)-footerSize:]
	if string(trailer[:len(FooterMagic)]) != FooterMagic {
		return true, corruptf("bad footer magic %q", trailer[:len(FooterMagic)])
	}
	want := binary.LittleEndian.Uint32(trailer[len(FooterMagic):])
	if got := crc32.Checksum(raw[:len(raw)-4], castagnoli); got != want {
		return true, corruptf("CRC32C mismatch: stored %08x, computed %08x", want, got)
	}
	return true, nil
}

// DecodeDirectory parses only the header + directory of a chunk blob. The
// input may be a prefix of the chunk (a header range request), as long as it
// covers the directory.
func DecodeDirectory(raw []byte) (*Directory, error) {
	n, dirBytes, _, err := parseHeader(raw)
	if err != nil {
		return nil, err
	}
	dir := raw[headerSize : headerSize+dirBytes]
	d := &Directory{Offsets: make([]uint64, 0, n+1), Shapes: make([][]int, 0, n)}
	need := (n + 1) * 8
	if len(dir) < need {
		return nil, corruptf("directory holds %d bytes, %d samples need %d", len(dir), n, need)
	}
	for i := 0; i <= n; i++ {
		d.Offsets = append(d.Offsets, binary.LittleEndian.Uint64(dir[i*8:]))
	}
	p := need
	for i := 0; i < n; i++ {
		if p >= len(dir) {
			return nil, corruptf("directory truncated at shape %d of %d", i, n)
		}
		nd := int(dir[p])
		p++
		if p+nd*4 > len(dir) {
			return nil, corruptf("directory truncated inside rank-%d shape %d", nd, i)
		}
		shape := make([]int, nd)
		for j := 0; j < nd; j++ {
			shape[j] = int(binary.LittleEndian.Uint32(dir[p:]))
			p += 4
		}
		d.Shapes = append(d.Shapes, shape)
	}
	// Offsets must be monotone.
	for i := 0; i < n; i++ {
		if d.Offsets[i] > d.Offsets[i+1] {
			return nil, corruptf("offsets not monotone at sample %d (%d > %d)", i, d.Offsets[i], d.Offsets[i+1])
		}
	}
	return d, nil
}

// HeaderRange returns a conservative byte range [0, n) that is guaranteed to
// contain the header and directory of a chunk with at most maxSamples
// samples of rank at most maxRank. Streaming readers use it to fetch the
// directory with one range request before fetching sample payloads.
func HeaderRange(maxSamples, maxRank int) int64 {
	return int64(headerSize + (maxSamples+1)*8 + maxSamples*(1+4*maxRank))
}

// Decode parses a full chunk blob into its samples. Sample Data slices
// alias raw.
func Decode(raw []byte) ([]Sample, error) { return DecodeAppend(raw, nil) }

// DecodeAppend is Decode reusing dst's capacity for the sample directory,
// so a streaming reader that decodes chunks in a loop pays zero steady-state
// allocations for the slice itself. dst is truncated and appended to; Sample
// Data slices alias raw.
func DecodeAppend(raw []byte, dst []Sample) ([]Sample, error) {
	d, err := DecodeDirectory(raw)
	if err != nil {
		return nil, err
	}
	_, dirBytes, version, err := parseHeader(raw)
	if err != nil {
		return nil, err
	}
	data := raw[dataStart(dirBytes):]
	if version >= 2 {
		// The version-2 trailer sits after the data section.
		if len(data) < footerSize {
			return nil, corruptf("blob too short for the version-2 footer")
		}
		data = data[:len(data)-footerSize]
	}
	n := d.NumSamples()
	if n > 0 && d.Offsets[n] > uint64(len(data)) {
		return nil, corruptf("payload truncated: directory spans %d bytes, data section holds %d", d.Offsets[n], len(data))
	}
	dst = dst[:0]
	for i := 0; i < n; i++ {
		dst = append(dst, Sample{
			Shape: d.Shapes[i],
			Data:  data[d.Offsets[i]:d.Offsets[i+1]],
		})
	}
	return dst, nil
}

// SampleRange returns the absolute byte range of sample i inside a chunk
// blob, computed from its directory; streaming readers pass it to
// Provider.GetRange to fetch a single sample out of an 8MB chunk (§3.5).
func SampleRange(raw []byte, i int) (offset, length int64, shape []int, err error) {
	d, err := DecodeDirectory(raw)
	if err != nil {
		return 0, 0, nil, err
	}
	return d.SampleRange(raw, i)
}

// SampleRange computes the absolute byte range of sample i given the chunk
// prefix raw (which must include the directory).
func (d *Directory) SampleRange(raw []byte, i int) (offset, length int64, shape []int, err error) {
	if i < 0 || i >= d.NumSamples() {
		return 0, 0, nil, fmt.Errorf("chunk: sample %d out of range (%d samples)", i, d.NumSamples())
	}
	_, dirBytes, _, err := parseHeader(raw)
	if err != nil {
		return 0, 0, nil, err
	}
	start := int64(dataStart(dirBytes)) + int64(d.Offsets[i])
	return start, int64(d.Offsets[i+1] - d.Offsets[i]), d.Shapes[i], nil
}
