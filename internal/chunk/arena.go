package chunk

import "sync"

// arenaSlabBytes is the slab granularity: large enough that a slab amortizes
// hundreds of typical decoded samples, small enough that a pooled slab is
// cheap to keep around per worker.
const arenaSlabBytes = 256 << 10

// arenaSlabs recycles slabs across arenas (and across Reset calls), so a
// steady-state scan loop stops asking the heap for sample buffers entirely.
var arenaSlabs = sync.Pool{
	New: func() any {
		b := make([]byte, arenaSlabBytes)
		return &b
	},
}

// Arena is a bump allocator over pooled slabs for decode-path sample
// buffers. Instead of one heap allocation per decoded sample, samples are
// carved out of shared slabs: a scan touching thousands of samples costs a
// handful of slab requests, and Reset hands the slabs back for the next
// chunk or epoch.
//
// Arenas are NOT goroutine-safe — use one per worker. Reset recycles every
// buffer previously handed out, so it must only be called once the caller
// can prove no allocation escaped to a consumer that still holds it (e.g.
// between benchmark iterations, or after copying samples into user-owned
// batches). Production read paths that hand decoded tensors to user code
// keep the arena un-Reset and rely on the bump allocation alone — fewer,
// larger heap allocations — which is still a large allocs/op win.
type Arena struct {
	cur  *[]byte
	off  int
	full []*[]byte
}

// NewArena returns an empty arena; slabs are acquired lazily.
func NewArena() *Arena { return &Arena{} }

// Alloc returns an n-byte buffer carved from the arena. Oversize requests
// (beyond the slab granularity) get a dedicated heap allocation the arena
// never recycles. The returned slice has full capacity n and does not alias
// any other live allocation from this arena.
func (a *Arena) Alloc(n int) []byte {
	if n <= 0 {
		return nil
	}
	if n > arenaSlabBytes {
		return make([]byte, n)
	}
	if a.cur == nil || a.off+n > arenaSlabBytes {
		if a.cur != nil {
			a.full = append(a.full, a.cur)
		}
		a.cur = arenaSlabs.Get().(*[]byte)
		a.off = 0
	}
	buf := (*a.cur)[a.off : a.off+n : a.off+n]
	a.off += n
	return buf
}

// Copy allocates from the arena and copies src into it.
func (a *Arena) Copy(src []byte) []byte {
	if len(src) == 0 {
		return nil
	}
	dst := a.Alloc(len(src))
	copy(dst, src)
	return dst
}

// Reset recycles the arena's slabs for reuse. Every buffer Alloc/Copy has
// handed out becomes invalid — see the type comment for when this is safe.
func (a *Arena) Reset() {
	for _, s := range a.full {
		arenaSlabs.Put(s)
	}
	a.full = a.full[:0]
	a.off = 0
}
