package chunk

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestPlanTilesFitsBound(t *testing.T) {
	l, err := PlanTiles([]int{1000, 1000, 3}, 1, 300_000)
	if err != nil {
		t.Fatal(err)
	}
	bytes := 1
	for _, d := range l.TileShape {
		bytes *= d
	}
	if bytes > 300_000 {
		t.Fatalf("tile %v = %d bytes exceeds bound", l.TileShape, bytes)
	}
	if l.NumTiles() < 4 {
		t.Fatalf("expected multiple tiles, got %d", l.NumTiles())
	}
	// Grid must cover the sample.
	for ax := range l.Grid {
		if l.Grid[ax]*l.TileShape[ax] < l.SampleShape[ax] {
			t.Fatalf("grid axis %d does not cover sample: %v x %v vs %v", ax, l.Grid, l.TileShape, l.SampleShape)
		}
	}
}

func TestPlanTilesSmallSample(t *testing.T) {
	l, err := PlanTiles([]int{4, 4}, 1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if l.NumTiles() != 1 {
		t.Fatalf("small sample should be one tile, got %d", l.NumTiles())
	}
}

func TestPlanTilesErrors(t *testing.T) {
	if _, err := PlanTiles([]int{4}, 0, 10); err == nil {
		t.Fatal("zero elem size should error")
	}
	if _, err := PlanTiles([]int{1, 1}, 8, 4); err == nil {
		t.Fatal("untileable shape should error")
	}
}

func TestTileIndexCoordsRoundTrip(t *testing.T) {
	l := TileLayout{SampleShape: []int{10, 10, 10}, TileShape: []int{4, 5, 3}, Grid: []int{3, 2, 4}}
	for i := 0; i < l.NumTiles(); i++ {
		coords := l.TileCoords(i)
		if got := l.TileIndex(coords); got != i {
			t.Fatalf("index %d -> %v -> %d", i, coords, got)
		}
	}
}

func TestSplitAssembleIdentity(t *testing.T) {
	// 7x9 array tiled 4x4.
	vals := make([]float64, 63)
	for i := range vals {
		vals[i] = float64(i)
	}
	a, _ := tensor.FromFloat64s(tensor.Int32, []int{7, 9}, vals)
	l := TileLayout{SampleShape: []int{7, 9}, TileShape: []int{4, 4}, Grid: []int{2, 3}}

	tiles, err := l.Split(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(tiles) != 6 {
		t.Fatalf("split into %d tiles, want 6", len(tiles))
	}
	// Edge tiles are smaller.
	if !reflect.DeepEqual(tiles[0].Shape(), []int{4, 4}) {
		t.Fatalf("tile 0 shape %v", tiles[0].Shape())
	}
	if !reflect.DeepEqual(tiles[5].Shape(), []int{3, 1}) {
		t.Fatalf("corner tile shape %v", tiles[5].Shape())
	}

	m := map[int]*tensor.NDArray{}
	for i, tl := range tiles {
		m[i] = tl
	}
	back, err := l.Assemble(tensor.Int32, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(a) {
		t.Fatal("assemble(split(a)) != a")
	}
}

func TestAssembleRegionReadsOnlyNeededTiles(t *testing.T) {
	vals := make([]float64, 64)
	for i := range vals {
		vals[i] = float64(i)
	}
	a, _ := tensor.FromFloat64s(tensor.Int32, []int{8, 8}, vals)
	l := TileLayout{SampleShape: []int{8, 8}, TileShape: []int{4, 4}, Grid: []int{2, 2}}
	tiles, _ := l.Split(a)

	region := []tensor.Range{{Start: 1, Stop: 3}, {Start: 1, Stop: 3}}
	needed := l.TilesOverlapping(region)
	if !reflect.DeepEqual(needed, []int{0}) {
		t.Fatalf("tiles overlapping top-left region = %v, want [0]", needed)
	}

	// Assemble with only the needed tile present.
	part, err := l.Assemble(tensor.Int32, map[int]*tensor.NDArray{0: tiles[0]}, region)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := a.Slice(region...)
	if !part.Equal(want) {
		t.Fatalf("region assemble = %v, want %v", part.Float64s(), want.Float64s())
	}

	// Missing tile must error when the region needs it.
	cross := []tensor.Range{{Start: 2, Stop: 6}, {Start: 2, Stop: 6}}
	if _, err := l.Assemble(tensor.Int32, map[int]*tensor.NDArray{0: tiles[0]}, cross); err == nil {
		t.Fatal("assemble with missing tiles should error")
	}
}

func TestTilesOverlappingWholeSample(t *testing.T) {
	l := TileLayout{SampleShape: []int{8, 8}, TileShape: []int{4, 4}, Grid: []int{2, 2}}
	if got := l.TilesOverlapping(nil); len(got) != 4 {
		t.Fatalf("nil region should return all tiles, got %v", got)
	}
}

// Property: split+assemble is the identity for random shapes and bounds.
func TestTilingIdentityProperty(t *testing.T) {
	f := func(d0, d1 uint8, maxKB uint8) bool {
		shape := []int{int(d0)%20 + 1, int(d1)%20 + 1}
		maxBytes := (int(maxKB)%64 + 4) * 4 // 16..268 bytes, elem 4
		l, err := PlanTiles(shape, 4, maxBytes)
		if err != nil {
			return true // untileable tiny bound: skip
		}
		n := shape[0] * shape[1]
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(i%251) - 100
		}
		a, _ := tensor.FromFloat64s(tensor.Float32, shape, vals)
		tiles, err := l.Split(a)
		if err != nil {
			return false
		}
		m := map[int]*tensor.NDArray{}
		for i, tl := range tiles {
			if tl.NumBytes() > maxBytes {
				return false // a tile exceeded the bound
			}
			m[i] = tl
		}
		back, err := l.Assemble(tensor.Float32, m, nil)
		if err != nil {
			return false
		}
		return back.Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
