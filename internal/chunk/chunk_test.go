package chunk

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	samples := []Sample{
		{Shape: []int{2, 3}, Data: []byte("abcdef")},
		{Shape: []int{0}, Data: nil},
		{Shape: nil, Data: []byte{9}}, // scalar
		{Shape: []int{4}, Data: []byte("wxyz")},
	}
	blob, err := Encode(samples)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(samples) {
		t.Fatalf("decoded %d samples, want %d", len(got), len(samples))
	}
	for i := range samples {
		if !bytes.Equal(got[i].Data, samples[i].Data) {
			t.Errorf("sample %d data mismatch", i)
		}
		if len(got[i].Shape) != len(samples[i].Shape) {
			t.Errorf("sample %d shape rank mismatch: %v vs %v", i, got[i].Shape, samples[i].Shape)
			continue
		}
		for j := range samples[i].Shape {
			if got[i].Shape[j] != samples[i].Shape[j] {
				t.Errorf("sample %d shape mismatch: %v vs %v", i, got[i].Shape, samples[i].Shape)
			}
		}
	}
}

func TestEmptyChunk(t *testing.T) {
	blob, err := Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(blob)
	if err != nil || len(got) != 0 {
		t.Fatalf("Decode(empty) = %v, %v", got, err)
	}
}

func TestDecodeRejectsCorrupt(t *testing.T) {
	blob, _ := Encode([]Sample{{Shape: []int{3}, Data: []byte("abc")}})
	cases := map[string][]byte{
		"empty":         {},
		"short":         blob[:5],
		"bad magic":     append([]byte("XXXX"), blob[4:]...),
		"bad version":   append([]byte(Magic), append([]byte{99, 0}, blob[6:]...)...),
		"truncated dir": blob[:headerSize+2],
	}
	for name, raw := range cases {
		err := mustDecodeErr(t, raw)
		if err == nil {
			t.Errorf("%s: Decode should error", name)
			continue
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: error %v does not wrap ErrCorrupt", name, err)
		}
	}
	// Directory claiming more bytes than present.
	bad := append([]byte(nil), blob...)
	bad[10] = 0xFF
	if err := mustDecodeErr(t, bad); !errors.Is(err, ErrCorrupt) {
		t.Errorf("oversized dirBytes: error %v does not wrap ErrCorrupt", err)
	}
}

func mustDecodeErr(t *testing.T, raw []byte) error {
	t.Helper()
	_, err := Decode(raw)
	return err
}

// legacyV1Blob rewrites a version-2 blob into the pre-footer version-1
// layout: strip the trailer and patch the header version field.
func legacyV1Blob(t *testing.T, blob []byte) []byte {
	t.Helper()
	if len(blob) < headerSize+footerSize {
		t.Fatal("blob too short to down-convert")
	}
	old := append([]byte(nil), blob[:len(blob)-footerSize]...)
	old[4] = legacyVersion
	old[5] = 0
	return old
}

func TestVerifyFooter(t *testing.T) {
	blob, err := Encode([]Sample{{Shape: []int{3}, Data: []byte("abc")}})
	if err != nil {
		t.Fatal(err)
	}
	if checked, err := Verify(blob); !checked || err != nil {
		t.Fatalf("Verify(clean v2) = %v, %v; want checked, nil", checked, err)
	}

	// A single flipped payload bit must fail verification with ErrCorrupt,
	// even though the blob still parses structurally.
	flipped := append([]byte(nil), blob...)
	flipped[len(flipped)-footerSize-1] ^= 0x01
	checked, err := Verify(flipped)
	if !checked || err == nil {
		t.Fatalf("Verify(bit flip) = %v, %v; want checked, error", checked, err)
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Verify error %v does not wrap ErrCorrupt", err)
	}

	// Garbled footer magic is corruption too.
	badMagic := append([]byte(nil), blob...)
	copy(badMagic[len(badMagic)-footerSize:], "XXXX")
	if _, err := Verify(badMagic); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Verify(bad footer magic) = %v, want ErrCorrupt", err)
	}
}

func TestLegacyV1BlobsStillDecode(t *testing.T) {
	samples := []Sample{
		{Shape: []int{2}, Data: []byte("hi")},
		{Shape: []int{3}, Data: []byte("bye")},
	}
	blob, err := Encode(samples)
	if err != nil {
		t.Fatal(err)
	}
	old := legacyV1Blob(t, blob)

	got, err := Decode(old)
	if err != nil {
		t.Fatalf("Decode(v1) = %v", err)
	}
	if len(got) != 2 || !bytes.Equal(got[0].Data, []byte("hi")) || !bytes.Equal(got[1].Data, []byte("bye")) {
		t.Fatalf("v1 decode mismatch: %+v", got)
	}
	// No footer to check: verification is skipped, not failed.
	if checked, err := Verify(old); checked || err != nil {
		t.Fatalf("Verify(v1) = %v, %v; want unchecked, nil", checked, err)
	}
	// The directory of a v1 blob parses from a prefix exactly like v2.
	if d, err := DecodeDirectory(old); err != nil || d.NumSamples() != 2 {
		t.Fatalf("DecodeDirectory(v1) = %v, %v", d, err)
	}
}

func TestSampleRange(t *testing.T) {
	samples := []Sample{
		{Shape: []int{1}, Data: []byte("a")},
		{Shape: []int{2}, Data: []byte("bc")},
		{Shape: []int{3}, Data: []byte("def")},
	}
	blob, _ := Encode(samples)
	for i, s := range samples {
		off, n, shape, err := SampleRange(blob, i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(blob[off:off+n], s.Data) {
			t.Errorf("sample %d: range [%d,%d) = %q, want %q", i, off, off+n, blob[off:off+n], s.Data)
		}
		if shape[0] != s.Shape[0] {
			t.Errorf("sample %d shape = %v", i, shape)
		}
	}
	if _, _, _, err := SampleRange(blob, 3); err == nil {
		t.Error("out of range sample should error")
	}
	if _, _, _, err := SampleRange(blob, -1); err == nil {
		t.Error("negative sample should error")
	}
}

func TestDirectoryFromPrefix(t *testing.T) {
	// A reader should be able to parse the directory from a prefix of the
	// chunk, without the payload, to plan range requests.
	samples := []Sample{
		{Shape: []int{100}, Data: bytes.Repeat([]byte{1}, 100)},
		{Shape: []int{200}, Data: bytes.Repeat([]byte{2}, 200)},
	}
	blob, _ := Encode(samples)
	prefix := blob[:int(HeaderRange(2, 1))]
	d, err := DecodeDirectory(prefix)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumSamples() != 2 {
		t.Fatalf("NumSamples = %d", d.NumSamples())
	}
	off, n, _, err := d.SampleRange(prefix, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob[off:off+n], samples[1].Data) {
		t.Fatal("range from prefix directory mismatched")
	}
}

// Property: arbitrary sample sets round-trip through Encode/Decode.
func TestChunkRoundTripProperty(t *testing.T) {
	f := func(seed int64, count uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(count) % 20
		samples := make([]Sample, n)
		for i := range samples {
			rank := rng.Intn(4)
			shape := make([]int, rank)
			size := 1
			for j := range shape {
				shape[j] = rng.Intn(5)
				size *= shape[j]
			}
			data := make([]byte, rng.Intn(100))
			rng.Read(data)
			samples[i] = Sample{Shape: shape, Data: data}
		}
		blob, err := Encode(samples)
		if err != nil {
			return false
		}
		got, err := Decode(blob)
		if err != nil || len(got) != n {
			return false
		}
		for i := range samples {
			if !bytes.Equal(got[i].Data, samples[i].Data) {
				return false
			}
			if !reflect.DeepEqual(normShape(got[i].Shape), normShape(samples[i].Shape)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func normShape(s []int) []int {
	if len(s) == 0 {
		return []int{}
	}
	return s
}

func TestBuilderBoundsPolicy(t *testing.T) {
	b := NewBuilder(Bounds{Min: 10, Target: 20, Max: 30})

	// Empty builder never flushes first.
	if b.ShouldFlushBefore(100) {
		t.Fatal("empty builder should not request flush")
	}
	if err := b.Append(Sample{Shape: []int{8}, Data: make([]byte, 8)}); err != nil {
		t.Fatal(err)
	}
	// 8 bytes buffered, adding 10 = 18 <= max: no flush.
	if b.ShouldFlushBefore(10) {
		t.Fatal("should not flush below target")
	}
	if err := b.Append(Sample{Shape: []int{10}, Data: make([]byte, 10)}); err != nil {
		t.Fatal(err)
	}
	// 18 buffered, adding 20 would exceed max 30: flush first.
	if !b.ShouldFlushBefore(20) {
		t.Fatal("should flush when append would exceed max")
	}
	// 18 < target 20: small sample may still go in.
	if b.ShouldFlushBefore(2) {
		t.Fatal("small sample should still fit")
	}
	if err := b.Append(Sample{Shape: []int{4}, Data: make([]byte, 4)}); err != nil {
		t.Fatal(err)
	}
	// 22 >= target 20: any further append flushes first.
	if !b.ShouldFlushBefore(1) {
		t.Fatal("should flush at target size")
	}

	blob, n, err := b.Flush()
	if err != nil || n != 3 {
		t.Fatalf("Flush = %d samples, %v", n, err)
	}
	if got, _ := Decode(blob); len(got) != 3 {
		t.Fatalf("flushed chunk has %d samples", len(got))
	}
	if b.Len() != 0 || b.PayloadBytes() != 0 {
		t.Fatal("builder not reset after flush")
	}
	if blob2, n2, err := b.Flush(); blob2 != nil || n2 != 0 || err != nil {
		t.Fatal("flushing empty builder should be a no-op")
	}
}

func TestBuilderRejectsOverflow(t *testing.T) {
	b := NewBuilder(Bounds{Min: 10, Target: 20, Max: 30})
	if err := b.Append(Sample{Data: make([]byte, 25)}); err != nil {
		t.Fatal(err)
	}
	if err := b.Append(Sample{Data: make([]byte, 10)}); err == nil {
		t.Fatal("append exceeding max on non-empty builder should error")
	}
}

func TestBuilderTiling(t *testing.T) {
	b := NewBuilder(Bounds{Min: 10, Target: 20, Max: 30})
	if !b.NeedsTiling(31) {
		t.Fatal("31 > max must tile")
	}
	if b.NeedsTiling(30) {
		t.Fatal("30 == max must not tile")
	}
}

func TestInvalidBoundsFallBack(t *testing.T) {
	b := NewBuilder(Bounds{Min: -1, Target: 0, Max: 0})
	if b.Bounds() != DefaultBounds() {
		t.Fatalf("invalid bounds should fall back to defaults, got %+v", b.Bounds())
	}
	if DefaultBounds().Target != 8<<20 {
		t.Fatalf("default target = %d, want 8MB per paper", DefaultBounds().Target)
	}
}
