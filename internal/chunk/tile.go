package chunk

import (
	"fmt"

	"repro/internal/tensor"
)

// TileLayout describes how a sample larger than the chunk upper bound is
// split into a grid of spatial tiles (§3.4: "the sample is tiled into chunks
// across spatial dimensions", as for large aerial or microscopy images).
// Tiles are indexed row-major over the grid; edge tiles may be smaller than
// TileShape.
type TileLayout struct {
	// SampleShape is the full sample shape.
	SampleShape []int `json:"sample_shape"`
	// TileShape is the nominal per-tile shape.
	TileShape []int `json:"tile_shape"`
	// Grid holds the number of tiles along each axis.
	Grid []int `json:"grid"`
}

// PlanTiles chooses a tile shape for a sample of the given shape and element
// size so each tile's payload fits within maxBytes. It repeatedly halves the
// currently largest dimension, preserving aspect ratio as in the paper's
// spatial tiling.
func PlanTiles(shape []int, elemSize, maxBytes int) (TileLayout, error) {
	if elemSize <= 0 || maxBytes <= 0 {
		return TileLayout{}, fmt.Errorf("chunk: invalid tiling params elem=%d max=%d", elemSize, maxBytes)
	}
	tile := append([]int(nil), shape...)
	bytes := elemSize
	for _, d := range tile {
		bytes *= d
	}
	for bytes > maxBytes {
		// Halve the largest dimension > 1.
		largest := -1
		for i, d := range tile {
			if d > 1 && (largest < 0 || d > tile[largest]) {
				largest = i
			}
		}
		if largest < 0 {
			return TileLayout{}, fmt.Errorf("chunk: cannot tile shape %v below %d bytes", shape, maxBytes)
		}
		tile[largest] = (tile[largest] + 1) / 2
		bytes = elemSize
		for _, d := range tile {
			bytes *= d
		}
	}
	grid := make([]int, len(shape))
	for i := range shape {
		if tile[i] == 0 {
			grid[i] = 1
			continue
		}
		grid[i] = (shape[i] + tile[i] - 1) / tile[i]
		if grid[i] == 0 {
			grid[i] = 1
		}
	}
	return TileLayout{SampleShape: append([]int(nil), shape...), TileShape: tile, Grid: grid}, nil
}

// NumTiles returns the total number of tiles in the grid.
func (l *TileLayout) NumTiles() int {
	n := 1
	for _, g := range l.Grid {
		n *= g
	}
	return n
}

// TileCoords converts a row-major tile index to grid coordinates.
func (l *TileLayout) TileCoords(i int) []int {
	coords := make([]int, len(l.Grid))
	for ax := len(l.Grid) - 1; ax >= 0; ax-- {
		coords[ax] = i % l.Grid[ax]
		i /= l.Grid[ax]
	}
	return coords
}

// TileIndex converts grid coordinates to a row-major tile index.
func (l *TileLayout) TileIndex(coords []int) int {
	idx := 0
	for ax, c := range coords {
		idx = idx*l.Grid[ax] + c
	}
	return idx
}

// TileBounds returns the half-open sample-space bounds [lo, hi) of the tile
// at the given grid coordinates.
func (l *TileLayout) TileBounds(coords []int) (lo, hi []int) {
	lo = make([]int, len(coords))
	hi = make([]int, len(coords))
	for ax, c := range coords {
		lo[ax] = c * l.TileShape[ax]
		hi[ax] = lo[ax] + l.TileShape[ax]
		if hi[ax] > l.SampleShape[ax] {
			hi[ax] = l.SampleShape[ax]
		}
	}
	return lo, hi
}

// Split cuts a sample array into its tiles, row-major over the grid.
func (l *TileLayout) Split(a *tensor.NDArray) ([]*tensor.NDArray, error) {
	if !shapeEqual(a.Shape(), l.SampleShape) {
		return nil, fmt.Errorf("chunk: array shape %v does not match layout %v", a.Shape(), l.SampleShape)
	}
	tiles := make([]*tensor.NDArray, 0, l.NumTiles())
	for i := 0; i < l.NumTiles(); i++ {
		lo, hi := l.TileBounds(l.TileCoords(i))
		ranges := make([]tensor.Range, len(lo))
		for ax := range lo {
			ranges[ax] = tensor.Range{Start: lo[ax], Stop: hi[ax]}
		}
		t, err := a.Slice(ranges...)
		if err != nil {
			return nil, err
		}
		tiles = append(tiles, t)
	}
	return tiles, nil
}

// Assemble reconstitutes the full sample (or a slice of it) from tiles.
// tiles maps tile index -> tile array and may omit tiles that do not overlap
// region; region nil means the whole sample.
func (l *TileLayout) Assemble(dtype tensor.Dtype, tiles map[int]*tensor.NDArray, region []tensor.Range) (*tensor.NDArray, error) {
	nd := len(l.SampleShape)
	lo := make([]int, nd)
	hi := make([]int, nd)
	for ax := 0; ax < nd; ax++ {
		lo[ax], hi[ax] = 0, l.SampleShape[ax]
	}
	if region != nil {
		if len(region) > nd {
			return nil, fmt.Errorf("chunk: region rank %d exceeds sample rank %d", len(region), nd)
		}
		for ax, r := range region {
			rlo, rhi, err := resolveRange(r, l.SampleShape[ax])
			if err != nil {
				return nil, err
			}
			lo[ax], hi[ax] = rlo, rhi
		}
	}
	outShape := make([]int, nd)
	for ax := range outShape {
		outShape[ax] = hi[ax] - lo[ax]
	}
	out, err := tensor.New(dtype, outShape...)
	if err != nil {
		return nil, err
	}
	for _, ti := range l.TilesOverlapping(regionFromBounds(lo, hi)) {
		tile, ok := tiles[ti]
		if !ok {
			return nil, fmt.Errorf("chunk: missing tile %d for requested region", ti)
		}
		tlo, thi := l.TileBounds(l.TileCoords(ti))
		// Intersection of [tlo,thi) and [lo,hi).
		srcRanges := make([]tensor.Range, nd)
		for ax := 0; ax < nd; ax++ {
			ilo := max(tlo[ax], lo[ax])
			ihi := min(thi[ax], hi[ax])
			srcRanges[ax] = tensor.Range{Start: ilo - tlo[ax], Stop: ihi - tlo[ax]}
		}
		part, err := tile.Slice(srcRanges...)
		if err != nil {
			return nil, err
		}
		if err := pasteInto(out, part, tlo, lo, hi); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// pasteInto copies part (whose sample-space origin is the intersection of
// the tile origin tlo and region lo) into out at the right offset.
func pasteInto(out, part *tensor.NDArray, tlo, lo, hi []int) error {
	nd := out.NDim()
	dstOrigin := make([]int, nd)
	for ax := 0; ax < nd; ax++ {
		o := tlo[ax]
		if lo[ax] > o {
			o = lo[ax]
		}
		dstOrigin[ax] = o - lo[ax]
	}
	// Iterate over part elements in blocks of the last axis.
	ps := part.Shape()
	if part.Len() == 0 {
		return nil
	}
	idx := make([]int, nd)
	for {
		// Copy one run along the last axis via At/SetAt on runs.
		for k := 0; k < ps[nd-1]; k++ {
			idx[nd-1] = k
			v, err := part.At(idx...)
			if err != nil {
				return err
			}
			dst := make([]int, nd)
			for ax := 0; ax < nd; ax++ {
				dst[ax] = dstOrigin[ax] + idx[ax]
			}
			if err := out.SetAt(v, dst...); err != nil {
				return err
			}
		}
		// Advance all but the last axis.
		ax := nd - 2
		for ; ax >= 0; ax-- {
			idx[ax]++
			if idx[ax] < ps[ax] {
				break
			}
			idx[ax] = 0
		}
		if ax < 0 {
			break
		}
	}
	return nil
}

// TilesOverlapping returns the indices of tiles intersecting region (nil
// means all tiles), so streaming readers fetch only the tiles a slice needs.
func (l *TileLayout) TilesOverlapping(region []tensor.Range) []int {
	nd := len(l.SampleShape)
	lo := make([]int, nd)
	hi := make([]int, nd)
	for ax := 0; ax < nd; ax++ {
		lo[ax], hi[ax] = 0, l.SampleShape[ax]
	}
	for ax := 0; ax < len(region) && ax < nd; ax++ {
		if rlo, rhi, err := resolveRange(region[ax], l.SampleShape[ax]); err == nil {
			lo[ax], hi[ax] = rlo, rhi
		}
	}
	var out []int
	for i := 0; i < l.NumTiles(); i++ {
		tlo, thi := l.TileBounds(l.TileCoords(i))
		overlap := true
		for ax := 0; ax < nd; ax++ {
			if tlo[ax] >= hi[ax] || thi[ax] <= lo[ax] {
				overlap = false
				break
			}
		}
		if overlap {
			out = append(out, i)
		}
	}
	return out
}

func regionFromBounds(lo, hi []int) []tensor.Range {
	r := make([]tensor.Range, len(lo))
	for i := range lo {
		r[i] = tensor.Range{Start: lo[i], Stop: hi[i]}
	}
	return r
}

func resolveRange(r tensor.Range, n int) (int, int, error) {
	lo, hi := r.Start, r.Stop
	if lo < 0 {
		lo += n
	}
	if hi != tensor.End && hi < 0 {
		hi += n
	}
	if hi == tensor.End || hi > n {
		hi = n
	}
	if lo < 0 || lo > n || hi < lo {
		return 0, 0, fmt.Errorf("chunk: invalid range [%d:%d) for size %d", r.Start, r.Stop, n)
	}
	return lo, hi, nil
}

func shapeEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
