package chunk

import (
	"bytes"
	"testing"
)

// fill appends samples of the given size until the builder wants a flush,
// then flushes, returning how many samples the sealed chunk held.
func fillAndSeal(t *testing.T, b *Builder, sampleBytes int) int {
	t.Helper()
	data := bytes.Repeat([]byte{0xAB}, sampleBytes)
	for b.Len() == 0 || !b.ShouldFlushBefore(sampleBytes) {
		if err := b.Append(Sample{Data: data}); err != nil {
			t.Fatal(err)
		}
	}
	_, n, err := b.Flush()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestAutotuneDisabledByDefault(t *testing.T) {
	bounds := Bounds{Min: 10, Target: 100, Max: 200}
	b := NewBuilder(bounds)
	for i := 0; i < 5; i++ {
		fillAndSeal(t, b, 4)
	}
	if got := b.EffectiveBounds(); got != bounds {
		t.Fatalf("static policy drifted without SetAutotune: %+v", got)
	}
}

func TestAutotuneDoublingSchedule(t *testing.T) {
	b := NewBuilder(Bounds{Min: 10, Target: 100, Max: 200})
	b.SetAutotune(800)

	// Small samples keep the mean floor (16x mean) below the base target, so
	// the pure doubling clock is observable: 100 -> 200 -> 400 -> 800 (cap).
	wantTargets := []int{100, 200, 400, 800, 800}
	for seal, want := range wantTargets {
		if got := b.EffectiveBounds().Target; got != want {
			t.Fatalf("after %d sealed chunks: effective target %d, want %d", seal, got, want)
		}
		fillAndSeal(t, b, 4)
	}
	// The hard ceiling keeps headroom: at least twice the grown target.
	if got := b.EffectiveBounds().Max; got != 1600 {
		t.Fatalf("effective max %d, want 2x capped target = 1600", got)
	}
	// Min is never touched by the autotuner.
	if got := b.EffectiveBounds().Min; got != 10 {
		t.Fatalf("effective min %d, want 10", got)
	}
}

func TestAutotuneMeanSampleFloor(t *testing.T) {
	b := NewBuilder(Bounds{Min: 10, Target: 100, Max: 200})
	b.SetAutotune(1 << 20)
	// One 50-byte sample: mean floor = 16*50 = 800, far past the base
	// target, before any chunk has sealed — large samples jump straight to
	// large chunks instead of waiting out the doubling schedule.
	if err := b.Append(Sample{Data: bytes.Repeat([]byte{1}, 50)}); err != nil {
		t.Fatal(err)
	}
	if got := b.EffectiveBounds().Target; got != 800 {
		t.Fatalf("effective target %d, want mean-sample floor 800", got)
	}
	// The floor is still capped.
	b2 := NewBuilder(Bounds{Min: 10, Target: 100, Max: 200})
	b2.SetAutotune(600)
	if err := b2.Append(Sample{Data: bytes.Repeat([]byte{1}, 50)}); err != nil {
		t.Fatal(err)
	}
	if got := b2.EffectiveBounds().Target; got != 600 {
		t.Fatalf("effective target %d, want autotune cap 600", got)
	}
}

func TestAutotuneCapNeverBelowBaseTarget(t *testing.T) {
	b := NewBuilder(Bounds{Min: 10, Target: 100, Max: 200})
	b.SetAutotune(50) // below base target: clamped up, not down
	if got := b.EffectiveBounds().Target; got != 100 {
		t.Fatalf("effective target %d, want base target 100", got)
	}
	b.SetAutotune(0) // disables, restoring the static policy
	fillAndSeal(t, b, 4)
	if got := b.EffectiveBounds(); got != b.Bounds() {
		t.Fatalf("disabled autotune still lifts bounds: %+v", got)
	}
}

// TestAutotuneScheduleIsAppendDriven is the determinism core of the ingest
// autotuner: the effective-target trajectory is a pure function of the
// append/flush sequence. Two builders fed the same sequence report identical
// targets at every step — there is no timing or concurrency input — which is
// what makes autotuned ingest byte-identical at any flush-worker count (the
// core-level golden test covers the full pipeline).
func TestAutotuneScheduleIsAppendDriven(t *testing.T) {
	run := func() []int {
		b := NewBuilder(Bounds{Min: 16, Target: 64, Max: 256})
		b.SetAutotune(4096)
		var targets []int
		sizes := []int{3, 7, 12, 5, 9, 31, 2, 18}
		for i := 0; i < 40; i++ {
			sz := sizes[i%len(sizes)]
			if b.ShouldFlushBefore(sz) {
				if _, _, err := b.Flush(); err != nil {
					t.Fatal(err)
				}
			}
			if err := b.Append(Sample{Data: bytes.Repeat([]byte{byte(i)}, sz)}); err != nil {
				t.Fatal(err)
			}
			targets = append(targets, b.EffectiveBounds().Target)
		}
		return targets
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("step %d: target %d vs %d — schedule not append-driven", i, a[i], b[i])
		}
	}
	grew := false
	for i := 1; i < len(a); i++ {
		if a[i] > a[0] {
			grew = true
		}
	}
	if !grew {
		t.Fatal("schedule never grew the target over 40 appends")
	}
}

// TestAutotuneShrinkOnRegret: a sealed chunk that overshoots the effective
// target by more than 3/2 — a mixed-size stream landing one huge closing
// sample — walks the doubling clock back one level instead of forward, so
// the next chunks return to the band rather than ratcheting past it.
func TestAutotuneShrinkOnRegret(t *testing.T) {
	b := NewBuilder(Bounds{Min: 10, Target: 100, Max: 200})
	b.SetAutotune(1600)

	// Grow with small in-band seals: 100 -> 200 -> 400 -> 800.
	for i := 0; i < 3; i++ {
		fillAndSeal(t, b, 4)
	}
	if got := b.EffectiveBounds().Target; got != 800 {
		t.Fatalf("effective target %d after growth, want 800", got)
	}

	// Fill near the target with small samples, then land one huge closing
	// sample: sealed payload 1500 > 1.5 x 800.
	small := bytes.Repeat([]byte{1}, 4)
	for b.PayloadBytes() < 700 {
		if err := b.Append(Sample{Data: small}); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Append(Sample{Data: bytes.Repeat([]byte{2}, 800)}); err != nil {
		t.Fatal(err)
	}
	if _, n, err := b.Flush(); err != nil || n == 0 {
		t.Fatalf("flush: n=%d err=%v", n, err)
	}
	if got := b.EffectiveBounds().Target; got != 400 {
		t.Fatalf("effective target %d after oversized seal, want shrink to 400", got)
	}

	// An in-band seal grows it right back — regret is one step, not a reset.
	fillAndSeal(t, b, 4)
	if got := b.EffectiveBounds().Target; got != 800 {
		t.Fatalf("effective target %d after recovery seal, want 800", got)
	}
}

// TestAutotuneShrinkNeverBelowBase: regret stops at level zero — the base
// target is the floor, no matter how many oversized chunks seal.
func TestAutotuneShrinkNeverBelowBase(t *testing.T) {
	b := NewBuilder(Bounds{Min: 10, Target: 100, Max: 400})
	b.SetAutotune(800)
	small := bytes.Repeat([]byte{3}, 2)
	for i := 0; i < 4; i++ {
		// Every seal overshoots 1.5x the target: mostly tiny samples (the
		// mean floor stays below the base target) plus one fat closer.
		for b.PayloadBytes() < 99 {
			if err := b.Append(Sample{Data: small}); err != nil {
				t.Fatal(err)
			}
		}
		if err := b.Append(Sample{Data: bytes.Repeat([]byte{4}, 60)}); err != nil {
			t.Fatal(err)
		}
		if _, _, err := b.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.EffectiveBounds().Target; got != 100 {
		t.Fatalf("effective target %d after repeated regret, want base 100", got)
	}
}

// TestAutotuneStateRoundTrip: a builder reconstructed from AutotuneState
// mid-stream tracks the uninterrupted builder's effective target at every
// subsequent step — the schedule survives a writer reopen.
func TestAutotuneStateRoundTrip(t *testing.T) {
	bounds := Bounds{Min: 16, Target: 64, Max: 256}
	const cap = 4096
	sizes := []int{3, 7, 12, 90, 5, 9, 31, 2, 120, 18}
	step := func(b *Builder, i int) {
		sz := sizes[i%len(sizes)]
		if b.ShouldFlushBefore(sz) {
			if _, _, err := b.Flush(); err != nil {
				t.Fatal(err)
			}
		}
		if err := b.Append(Sample{Data: bytes.Repeat([]byte{byte(i)}, sz)}); err != nil {
			t.Fatal(err)
		}
	}

	full := NewBuilder(bounds)
	full.SetAutotune(cap)
	half := NewBuilder(bounds)
	half.SetAutotune(cap)
	const split, total = 40, 80
	for i := 0; i < split; i++ {
		step(full, i)
		step(half, i)
	}
	// "Reopen": a fresh builder restored from the persisted state. The write
	// buffer does not survive a reopen (it is flushed first), so flush both.
	if _, _, err := half.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := full.Flush(); err != nil {
		t.Fatal(err)
	}
	resumed := NewBuilder(bounds)
	resumed.SetAutotune(cap)
	resumed.RestoreAutotune(half.AutotuneState())
	for i := split; i < total; i++ {
		step(full, i)
		step(resumed, i)
		if g, w := resumed.EffectiveBounds(), full.EffectiveBounds(); g != w {
			t.Fatalf("step %d: resumed bounds %+v, uninterrupted %+v", i, g, w)
		}
	}
	if g, w := resumed.AutotuneState(), full.AutotuneState(); g != w {
		t.Fatalf("final state diverged: resumed %+v, uninterrupted %+v", g, w)
	}
}

func TestArenaAllocDoesNotAlias(t *testing.T) {
	a := NewArena()
	bufs := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		buf := a.Alloc(100)
		for j := range buf {
			buf[j] = byte(i)
		}
		bufs = append(bufs, buf)
	}
	for i, buf := range bufs {
		if len(buf) != 100 || cap(buf) != 100 {
			t.Fatalf("alloc %d: len %d cap %d, want 100/100", i, len(buf), cap(buf))
		}
		for j, v := range buf {
			if v != byte(i) {
				t.Fatalf("alloc %d byte %d overwritten by a later allocation", i, j)
			}
		}
	}
}

func TestArenaCopyAndOversize(t *testing.T) {
	a := NewArena()
	src := []byte("payload")
	cp := a.Copy(src)
	if !bytes.Equal(cp, src) {
		t.Fatalf("Copy mismatch: %q", cp)
	}
	src[0] = 'X'
	if cp[0] == 'X' {
		t.Fatal("Copy aliases its source")
	}
	if a.Copy(nil) != nil {
		t.Fatal("empty copy should return nil")
	}
	// Oversize requests bypass the slabs but still work.
	big := a.Alloc(arenaSlabBytes + 1)
	if len(big) != arenaSlabBytes+1 {
		t.Fatalf("oversize alloc len %d", len(big))
	}
}

func TestArenaResetRecyclesSlabs(t *testing.T) {
	a := NewArena()
	first := a.Alloc(64)
	first[0] = 1
	a.Reset()
	second := a.Alloc(64)
	// After Reset the bump pointer rewinds onto the same retained slab, so
	// the next allocation reuses the same backing bytes.
	if &first[0] != &second[0] {
		t.Fatal("Reset did not rewind onto the retained slab")
	}
}

// TestArenaSteadyStateAllocsFree is the allocs/op contract the arena exists
// for: sample-sized allocations from a reset arena never touch the heap.
func TestArenaSteadyStateAllocsFree(t *testing.T) {
	a := NewArena()
	a.Alloc(768) // acquire the first slab outside the measured loop
	allocs := testing.AllocsPerRun(1000, func() {
		a.Reset()
		buf := a.Alloc(768)
		buf[0] = 1
	})
	if allocs > 0 {
		t.Fatalf("steady-state arena allocation costs %.1f heap allocs/op, want 0", allocs)
	}
}

// BenchmarkArenaAlloc measures the arena's bump-allocation fast path.
func BenchmarkArenaAlloc(b *testing.B) {
	a := NewArena()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%1000 == 0 {
			a.Reset()
		}
		buf := a.Alloc(768)
		buf[0] = byte(i)
	}
}

func TestDecodeAppendReusesDst(t *testing.T) {
	samples := []Sample{
		{Data: []byte("alpha")},
		{Data: []byte("beta"), Shape: []int{2, 2}},
		{Data: []byte("gamma")},
	}
	raw, err := Encode(samples)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]Sample, 0, 8)
	base := &dst[:1][0]
	out, err := DecodeAppend(raw, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(samples) {
		t.Fatalf("decoded %d samples, want %d", len(out), len(samples))
	}
	if &out[0] != base {
		t.Fatal("DecodeAppend reallocated a dst that had capacity")
	}
	for i := range samples {
		if !bytes.Equal(out[i].Data, samples[i].Data) {
			t.Fatalf("sample %d payload mismatch", i)
		}
	}
	// A second decode through the same dst truncates and reuses it: same
	// length, same backing array, zero slice growth.
	out2, err := DecodeAppend(raw, out)
	if err != nil {
		t.Fatal(err)
	}
	if len(out2) != len(samples) {
		t.Fatalf("second DecodeAppend: %d samples, want %d", len(out2), len(samples))
	}
	if &out2[0] != base {
		t.Fatal("second DecodeAppend abandoned the reusable backing array")
	}
}
