package gpusim

import (
	"context"
	"testing"
	"time"

	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/dataloader"
	"repro/internal/storage"
	"repro/internal/tensor"
)

func smallDataset(t testing.TB, n int) *core.Dataset {
	t.Helper()
	ctx := context.Background()
	ds, err := core.Create(ctx, storage.NewMemory(), "gpusim")
	if err != nil {
		t.Fatal(err)
	}
	x, _ := ds.CreateTensor(ctx, core.TensorSpec{
		Name: "x", Dtype: tensor.Int32,
		Bounds: chunk.Bounds{Min: 256, Target: 512, Max: 1024},
	})
	for i := 0; i < n; i++ {
		if err := x.Append(ctx, tensor.Scalar(tensor.Int32, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := ds.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestTrainConsumesWholeEpoch(t *testing.T) {
	ds := smallDataset(t, 64)
	l := dataloader.ForDataset(ds, dataloader.Options{BatchSize: 8, Workers: 4})
	gpu := GPU{ComputePerBatch: time.Millisecond, TimeScale: 1000}
	tl := gpu.Train(context.Background(), l, 0)
	if tl.Batches != 8 || tl.Rows != 64 {
		t.Fatalf("batches=%d rows=%d", tl.Batches, tl.Rows)
	}
	if tl.ComputeTime != 8*time.Millisecond {
		t.Fatalf("compute = %v", tl.ComputeTime)
	}
	if tl.Utilization() <= 0 || tl.Utilization() > 1 {
		t.Fatalf("utilization = %v", tl.Utilization())
	}
}

func TestMaxBatchesStopsEarly(t *testing.T) {
	ds := smallDataset(t, 64)
	l := dataloader.ForDataset(ds, dataloader.Options{BatchSize: 8, Workers: 2})
	gpu := GPU{ComputePerBatch: time.Millisecond, TimeScale: 1000}
	tl := gpu.Train(context.Background(), l, 3)
	if tl.Batches != 3 {
		t.Fatalf("batches = %d, want 3", tl.Batches)
	}
}

func TestFastLoaderKeepsGPUBusy(t *testing.T) {
	// With an in-memory store and heavy per-batch compute, stall should
	// be a small fraction: utilization near 1.
	ds := smallDataset(t, 128)
	l := dataloader.ForDataset(ds, dataloader.Options{BatchSize: 16, Workers: 4, Prefetch: 4})
	gpu := GPU{ComputePerBatch: 20 * time.Millisecond, TimeScale: 10}
	tl := gpu.Train(context.Background(), l, 0)
	if u := tl.Utilization(); u < 0.5 {
		t.Fatalf("utilization = %.2f; in-memory loader should keep the GPU mostly busy", u)
	}
	if tl.RowsPerSec() <= 0 {
		t.Fatalf("throughput = %v", tl.RowsPerSec())
	}
}

func TestTimelineRecordsSamples(t *testing.T) {
	ds := smallDataset(t, 64)
	l := dataloader.ForDataset(ds, dataloader.Options{BatchSize: 4, Workers: 2})
	gpu := GPU{ComputePerBatch: 5 * time.Millisecond, TimeScale: 1000}
	tl := gpu.Train(context.Background(), l, 0)
	if len(tl.Samples) == 0 {
		t.Fatal("no utilization samples recorded")
	}
	for i, s := range tl.Samples {
		if s.Busy < 0 || s.Busy > 1 {
			t.Fatalf("sample %d busy = %v", i, s.Busy)
		}
		if i > 0 && s.Offset < tl.Samples[i-1].Offset {
			t.Fatal("timeline offsets not monotone")
		}
	}
}

func TestFleetRunsAllGPUs(t *testing.T) {
	n := 4
	gpus := make([]GPU, n)
	loaders := make([]BatchSource, n)
	for i := range gpus {
		gpus[i] = GPU{ComputePerBatch: time.Millisecond, TimeScale: 1000}
		ds := smallDataset(t, 32)
		loaders[i] = dataloader.ForDataset(ds, dataloader.Options{BatchSize: 8, Workers: 2})
	}
	timelines := Fleet(context.Background(), gpus, loaders, 0)
	if len(timelines) != n {
		t.Fatalf("timelines = %d", len(timelines))
	}
	for i, tl := range timelines {
		if tl == nil || tl.Rows != 32 {
			t.Fatalf("gpu %d timeline = %+v", i, tl)
		}
	}
}
