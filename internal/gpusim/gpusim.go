// Package gpusim simulates the training-side consumer of the streaming
// dataloader: an accelerator that takes a fixed compute time per batch and
// records a busy/idle timeline. Figures 9 and 10 of the paper measure
// whether the dataloader keeps the GPU utilized; this consumer model exposes
// exactly that bottleneck structure — if batches arrive slower than the
// compute time, utilization drops below 100% and the gap is data stall.
package gpusim

import (
	"context"
	"time"

	"repro/internal/dataloader"
)

// BatchSource is anything that produces a stream of collated batches; the
// streaming dataloader satisfies it, and the benchmark harness adapts
// baseline-format iterators to it.
type BatchSource interface {
	Batches(ctx context.Context) <-chan dataloader.Batch
}

// GPU is one simulated accelerator.
type GPU struct {
	// ComputePerBatch is how long the forward/backward pass takes.
	ComputePerBatch time.Duration
	// TimeScale divides simulated compute sleeps (match the simnet
	// profile's scale so IO and compute stay in proportion).
	TimeScale float64
}

// Sample is one utilization measurement.
type Sample struct {
	// Offset is the time since training start.
	Offset time.Duration
	// Busy is the fraction of the last window spent computing.
	Busy float64
}

// Timeline is the recorded utilization of one training run.
type Timeline struct {
	// Samples are windowed utilization measurements.
	Samples []Sample
	// Batches and Rows count consumed work.
	Batches int
	Rows    int
	// ComputeTime is total simulated compute; StallTime is total time
	// spent waiting for data.
	ComputeTime time.Duration
	StallTime   time.Duration
	// FirstBatch is the simulated time the loader took to deliver its
	// first batch (cold-start latency: no copy-everything-first phase).
	FirstBatch time.Duration
	// Wall is the real elapsed time of the run.
	Wall time.Duration
}

// Utilization is the overall busy fraction.
func (t *Timeline) Utilization() float64 {
	total := t.ComputeTime + t.StallTime
	if total == 0 {
		return 0
	}
	return float64(t.ComputeTime) / float64(total)
}

// IdleFraction is the fraction of the run the GPU spent starved for data —
// the quantity Figures 9 and 10 minimize.
func (t *Timeline) IdleFraction() float64 {
	total := t.ComputeTime + t.StallTime
	if total == 0 {
		return 0
	}
	return float64(t.StallTime) / float64(total)
}

// RowsPerSec is the end-to-end training throughput in samples per second of
// simulated time.
func (t *Timeline) RowsPerSec() float64 {
	total := t.ComputeTime + t.StallTime
	if total == 0 {
		return 0
	}
	return float64(t.Rows) / total.Seconds()
}

// Train consumes the loader until the batch channel closes or maxBatches is
// reached (0 = no limit), simulating ComputePerBatch of GPU work per batch
// and recording utilization in fixed windows of simulated time.
func (g GPU) Train(ctx context.Context, l BatchSource, maxBatches int) *Timeline {
	scale := g.TimeScale
	if scale <= 0 {
		scale = 1
	}
	// Everything runs in the wall-time domain (the simnet providers sleep
	// scaled-down durations too, so IO and compute stay in proportion);
	// recorded durations are scaled back up to simulated time at the end.
	computeWall := time.Duration(float64(g.ComputePerBatch) / scale)
	tl := &Timeline{}
	start := time.Now()
	window := computeWall * 4
	if window <= 0 {
		window = time.Millisecond
	}
	var winBusy, winTotal time.Duration

	record := func(busy, stall time.Duration) {
		tl.ComputeTime += busy
		tl.StallTime += stall
		winBusy += busy
		winTotal += busy + stall
		for winTotal >= window {
			frac := 0.0
			if winTotal > 0 {
				frac = float64(winBusy) / float64(winTotal)
			}
			tl.Samples = append(tl.Samples, Sample{
				Offset: time.Duration(float64(tl.ComputeTime+tl.StallTime) * scale),
				Busy:   frac,
			})
			winBusy, winTotal = 0, 0
		}
	}

	batches := l.Batches(ctx)
	for {
		waitStart := time.Now()
		b, ok := <-batches
		if !ok {
			break
		}
		stall := time.Since(waitStart)
		if tl.Batches == 0 {
			tl.FirstBatch = time.Duration(float64(time.Since(start)) * scale)
		}
		if computeWall > 0 {
			time.Sleep(computeWall)
		}
		record(computeWall, stall)
		tl.Batches++
		tl.Rows += len(b.Samples)
		if maxBatches > 0 && tl.Batches >= maxBatches {
			break
		}
	}
	tl.Wall = time.Since(start)
	// Rescale to simulated time for reporting.
	tl.ComputeTime = time.Duration(float64(tl.ComputeTime) * scale)
	tl.StallTime = time.Duration(float64(tl.StallTime) * scale)
	return tl
}

// Fleet trains n identical GPUs against n loaders concurrently (the Fig 10
// 16xA100 setup) and merges their timelines.
func Fleet(ctx context.Context, gpus []GPU, loaders []BatchSource, maxBatches int) []*Timeline {
	out := make([]*Timeline, len(gpus))
	done := make(chan int)
	for i := range gpus {
		go func(i int) {
			out[i] = gpus[i].Train(ctx, loaders[i], maxBatches)
			done <- i
		}(i)
	}
	for range gpus {
		<-done
	}
	return out
}
