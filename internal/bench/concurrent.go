package bench

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/dataloader"
	"repro/internal/simnet"
	"repro/internal/storage"
	"repro/internal/workload"
)

// ConcurrentReaders measures the sharded, read-coalescing storage cache in
// the many-reader regime the ROADMAP targets: first a hot-chunk microbench
// where 16 readers miss on the same object simultaneously (the origin must
// see exactly one Get — singleflight coalescing), then aggregate streaming
// throughput with 1, 4, and 16 concurrent readers sharing one cache over
// simnet-throttled S3. Aggregate throughput should grow with readers: the
// first reader pays the origin fetch for each chunk, the rest ride the cache
// and in-flight fetches.
func ConcurrentReaders(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults(384)
	res := &Result{
		ID:     "readers",
		Title:  "concurrent readers over one sharded read-coalescing cache on S3",
		Better: "higher",
	}
	res.Notes = append(res.Notes,
		"provider chain = sharded LRU + singleflight -> simulated S3 (§3.6)",
		"hot-chunk-origin-gets counts origin fetches for 16 simultaneous misses on one object; 1 = fully coalesced")

	hotGets, coalesced, err := hotChunkCoalescing(ctx)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, Row{
		Name: "hot-chunk-origin-gets", Value: float64(hotGets), Unit: "gets",
		Extra: fmt.Sprintf("16 concurrent misses, %d coalesced", coalesced),
	})

	samples, err := jpegSampleSet(cfg, workload.Small250())
	if err != nil {
		return nil, err
	}
	profile := simnet.S3SameRegion()
	origin := storage.NewSimObjectStore(profile)
	counting := storage.NewCounting(origin)
	if _, err := ingestDeepLake(ctx, counting, samples, chunk.DefaultBounds()); err != nil {
		return nil, err
	}

	for _, readers := range []int{1, 4, 16} {
		cached := storage.NewShardedLRU(counting, 1<<30, storage.DefaultShards)
		counting.Reset()

		var (
			wg       sync.WaitGroup
			total    atomic.Int64
			mu       sync.Mutex
			firstErr error
		)
		start := time.Now()
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				n, err := streamEpoch(ctx, cached, cfg)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				total.Add(int64(n))
			}()
		}
		wg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
		elapsed := time.Since(start).Seconds()
		if got, want := total.Load(), int64(readers)*int64(cfg.N); got != want {
			return nil, fmt.Errorf("readers-%d delivered %d/%d samples", readers, got, want)
		}
		stats := cached.Stats()
		res.Rows = append(res.Rows, Row{
			Name:  fmt.Sprintf("readers-%d", readers),
			Value: float64(total.Load()) / elapsed, Unit: "smp/s",
			Extra: fmt.Sprintf("%d origin requests, %d cache hits, %d coalesced",
				counting.Requests(), stats.Hits, stats.Coalesced),
		})
	}
	return res, nil
}

// hotChunkCoalescing drops one 4MB object behind real-time S3 latency and
// fires 16 cold readers at it through a fresh sharded cache. It returns how
// many Gets reached the origin (1 when coalescing works) and how many
// readers were absorbed into the in-flight fetch.
func hotChunkCoalescing(ctx context.Context) (originGets, coalesced int64, err error) {
	profile := simnet.S3SameRegion()
	profile.TimeScale = 1 // real-time: a wide miss window, paid exactly once
	origin := storage.NewSimObjectStore(profile)
	counting := storage.NewCounting(origin)
	cache := storage.NewLRU(counting, 1<<30)

	if err := counting.Put(ctx, "hot/chunk", make([]byte, 4<<20)); err != nil {
		return 0, 0, err
	}
	counting.Reset()

	const readers = 16
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	startGate := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-startGate
			if _, err := cache.Get(ctx, "hot/chunk"); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}()
	}
	close(startGate)
	wg.Wait()
	if firstErr != nil {
		return 0, 0, firstErr
	}
	return counting.Snapshot().Gets, cache.Stats().Coalesced, nil
}

// streamEpoch opens the dataset through the shared cache and streams one
// full epoch, returning the sample count.
func streamEpoch(ctx context.Context, store storage.Provider, cfg Config) (int, error) {
	ds, err := core.Open(ctx, store)
	if err != nil {
		return 0, err
	}
	l := dataloader.ForDataset(ds, dataloader.Options{
		BatchSize: 32, Workers: cfg.Workers, RawBytes: true,
	})
	n := 0
	for b := range l.Batches(ctx) {
		n += len(b.Samples)
	}
	if err := l.Err(); err != nil {
		return 0, err
	}
	return n, nil
}
