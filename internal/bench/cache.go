package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/dataloader"
	"repro/internal/simnet"
	"repro/internal/storage"
	"repro/internal/workload"
)

// AblationCacheEpochs measures the §3.6 provider chain: an LRU cache of a
// remote S3 store. Epoch 1 populates the cache over the network; epoch 2
// should run at near-local speed with almost no origin traffic.
func AblationCacheEpochs(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults(600)
	samples, err := jpegSampleSet(cfg, workload.Small250())
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "ablation-cache", Title: "LRU cache chained over S3: epoch 1 vs epoch 2", Better: "lower"}
	res.Notes = append(res.Notes, "provider chain = LRU(memory) -> simulated S3 at real-time IO scale (§3.6)")

	profile := simnet.S3SameRegion()
	profile.TimeScale = 1
	origin := storage.NewSimObjectStore(profile)
	counting := storage.NewCounting(origin)
	if _, err := ingestDeepLake(ctx, counting, samples, chunk.DefaultBounds()); err != nil {
		return nil, err
	}
	cached := storage.NewLRU(counting, 1<<30)
	ds, err := core.Open(ctx, cached)
	if err != nil {
		return nil, err
	}
	for epoch := 1; epoch <= 2; epoch++ {
		counting.Reset()
		l := dataloader.ForDataset(ds, dataloader.Options{
			BatchSize: 32, Workers: cfg.Workers, RawBytes: true,
		})
		n := 0
		start := time.Now()
		for b := range l.Batches(ctx) {
			n += len(b.Samples)
		}
		if err := l.Err(); err != nil {
			return nil, err
		}
		if n != cfg.N {
			return nil, fmt.Errorf("cache epoch %d delivered %d/%d", epoch, n, cfg.N)
		}
		res.Rows = append(res.Rows, Row{
			Name:  fmt.Sprintf("epoch-%d", epoch),
			Value: time.Since(start).Seconds(), Unit: "s",
			Extra: fmt.Sprintf("%d origin requests", counting.Requests()),
		})
	}
	return res, nil
}
