package bench

import (
	"context"
	"fmt"
	"hash/fnv"
	"time"

	"repro/internal/baselines"
	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/dataloader"
	"repro/internal/gpusim"
	"repro/internal/simnet"
	"repro/internal/storage"
	"repro/internal/workload"
)

// trainScale is the uniform time compression shared by the network
// simulation and the GPU compute model, keeping IO/compute ratios faithful.
// A mild compression keeps per-request wall latency (3ms) well above Go
// scheduler jitter, so the measured worker-scaling ratio is stable even on
// noisy CI runners.
const trainScale = 5

// trainBatch is the per-step batch size of the simulated train loop.
const trainBatch = 16

// TrainStream measures the §4.6/§6.4 headline: an end-to-end train loop —
// simulated GPU, chunk-granular shuffling, collation — streaming from
// simulated S3 through the chunk-aligned dataloader, against the
// tfrecord/webdataset baselines. Tiny raw images in small chunks at a mild
// time compression keep the epoch latency-bound, the regime a real S3
// train loop lives in, so the worker fan-out (not CPU core count) sets the
// scaling. The runner itself enforces the PR's contracts: 16-worker
// streaming at least 4x the serial (no-readahead) path, every chunk
// fetched and decoded exactly once per epoch per rank (cache/decode
// counters), and the batch stream byte-identical across worker counts for
// a fixed seed.
func TrainStream(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults(384)
	spec := workload.ImageSpec{Height: 16, Width: 16, Channels: 3, Seed: cfg.Seed}
	samples := rawSampleSet(cfg, spec)
	// Tiny chunks (~1 image each) keep the chunk count several waves above
	// the worker count even at CI smoke scale (-n 64), so the 16-worker
	// row measures fan-out, not a handful of serialized round trips.
	bounds := chunk.Bounds{Min: 512, Target: 1 << 10, Max: 2 << 10}
	profile := simnet.S3SameRegion()
	profile.TimeScale = trainScale
	gpu := gpusim.GPU{ComputePerBatch: 2 * time.Millisecond, TimeScale: trainScale}

	res := &Result{
		ID:     "train",
		Title:  fmt.Sprintf("train loop over %d raw %dx%d images streamed from S3 (batch %d)", cfg.N, spec.Height, spec.Width, trainBatch),
		Better: "higher",
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("simulated GPU (2ms/batch) fed by each loader over s3-same-region at time scale %d; throughput in simulated time", trainScale),
		"serial = 1 worker with readahead disabled (the per-sample read path's schedule); workers-N = chunk-aligned pipeline",
		"ranks-4 shards the chunk order across 4 simulated nodes (Rank/WorldSize), 4 workers each, one GPU per rank",
		"every deeplake row is checked: each chunk fetched+decoded exactly once per epoch per rank")

	// Baselines: same samples, same storage profile, 16 iteration workers.
	for _, f := range []baselines.Format{baselines.TFRecord{}, baselines.WebDataset{}} {
		store := storage.NewSimObjectStore(profile)
		if err := f.Write(ctx, store, samples); err != nil {
			return nil, err
		}
		tl := gpu.Train(ctx, formatSource{f: f, store: store, workers: 16, batch: trainBatch}, 0)
		res.Rows = append(res.Rows, Row{
			Name: f.Name(), Value: tl.RowsPerSec(), Unit: "smp/s",
			Extra: fmt.Sprintf("gpu idle %.0f%%", tl.IdleFraction()*100),
		})
	}

	// One ingested dataset behind a counting origin; each run reopens it
	// with a cold loader cache and a reset request ledger.
	origin := storage.NewSimObjectStore(profile)
	counting := storage.NewCounting(origin)
	if _, err := ingestDeepLake(ctx, counting, samples, bounds); err != nil {
		return nil, err
	}
	openCold := func() (*core.Dataset, error) {
		ds, err := core.Open(ctx, counting)
		if err != nil {
			return nil, err
		}
		counting.Reset()
		return ds, nil
	}
	chunksOf := func(ds *core.Dataset) int64 {
		return int64(ds.Tensor("images").NumChunks() + ds.Tensor("labels").NumChunks())
	}
	loaderOpts := func(workers, rank, world, readahead int) dataloader.Options {
		return dataloader.Options{
			BatchSize: trainBatch, Workers: workers, Shuffle: true, Seed: cfg.Seed,
			Fields: []string{"images", "labels"}, Readahead: readahead,
			Rank: rank, WorldSize: world,
		}
	}

	// Serial reference: one worker walking the same shuffled chunk order
	// with no readahead, so every chunk costs a full S3 round trip.
	ds, err := openCold()
	if err != nil {
		return nil, err
	}
	serialTL := gpu.Train(ctx, dataloader.ForDataset(ds, loaderOpts(1, 0, 1, -1)), 0)
	serial := serialTL.RowsPerSec()
	if serialTL.Rows != cfg.N {
		return nil, fmt.Errorf("train: serial run delivered %d/%d rows", serialTL.Rows, cfg.N)
	}
	res.Rows = append(res.Rows, Row{
		Name: "deeplake-serial", Value: serial, Unit: "smp/s",
		Extra: fmt.Sprintf("gpu idle %.0f%%, first batch %s", serialTL.IdleFraction()*100, serialTL.FirstBatch.Round(time.Millisecond)),
	})

	var speedup16 float64
	for _, workers := range []int{1, 4, 16} {
		ds, err := openCold()
		if err != nil {
			return nil, err
		}
		l := dataloader.ForDataset(ds, loaderOpts(workers, 0, 1, 0))
		tl := gpu.Train(ctx, l, 0)
		if err := l.Err(); err != nil {
			return nil, err
		}
		if tl.Rows != cfg.N {
			return nil, fmt.Errorf("train: workers-%d delivered %d/%d rows", workers, tl.Rows, cfg.N)
		}
		chunks := chunksOf(ds)
		if got := l.CacheDecodes(); got != chunks {
			return nil, fmt.Errorf("train: workers-%d decoded %d chunks, want exactly %d (decode-once per epoch)", workers, got, chunks)
		}
		if gets := counting.Requests(); gets != int64(chunks) {
			return nil, fmt.Errorf("train: workers-%d made %d origin requests for %d chunks (fetch-once per epoch)", workers, gets, chunks)
		}
		speedup := tl.RowsPerSec() / serial
		if workers == 16 {
			speedup16 = speedup
		}
		res.Rows = append(res.Rows, Row{
			Name: fmt.Sprintf("workers-%d", workers), Value: tl.RowsPerSec(), Unit: "smp/s",
			Extra: fmt.Sprintf("%.1fx serial, gpu idle %.0f%%, first batch %s",
				speedup, tl.IdleFraction()*100, tl.FirstBatch.Round(time.Millisecond)),
		})
	}
	if speedup16 < 4 {
		return nil, fmt.Errorf("train: 16-worker streaming is %.1fx serial, want >= 4x", speedup16)
	}

	// Distributed: 4 ranks shard one epoch's chunk order disjointly, each
	// feeding its own simulated GPU (the §6.5 multi-node setup).
	{
		const world = 4
		ds, err := openCold()
		if err != nil {
			return nil, err
		}
		chunks := chunksOf(ds)
		gpus := make([]gpusim.GPU, world)
		sources := make([]gpusim.BatchSource, world)
		loaders := make([]*dataloader.Loader, world)
		for r := 0; r < world; r++ {
			gpus[r] = gpu
			loaders[r] = dataloader.ForDataset(ds, loaderOpts(4, r, world, 0))
			sources[r] = loaders[r]
		}
		start := time.Now()
		timelines := gpusim.Fleet(ctx, gpus, sources, 0)
		simWall := time.Since(start).Seconds() * trainScale
		rows := 0
		var idle float64
		for r, tl := range timelines {
			if err := loaders[r].Err(); err != nil {
				return nil, fmt.Errorf("train: rank %d: %w", r, err)
			}
			if got := loaders[r].CacheDecodes(); got > chunks {
				return nil, fmt.Errorf("train: rank %d decoded %d chunks, dataset has %d (decode-once per rank)", r, got, chunks)
			}
			rows += tl.Rows
			idle += tl.IdleFraction()
		}
		if rows != cfg.N {
			return nil, fmt.Errorf("train: 4 ranks delivered %d/%d rows together (shards must partition the epoch)", rows, cfg.N)
		}
		res.Rows = append(res.Rows, Row{
			Name: "ranks-4", Value: float64(rows) / simWall, Unit: "smp/s",
			Extra: fmt.Sprintf("4 ranks x 4 workers, disjoint chunk shards, mean gpu idle %.0f%%", idle/world*100),
		})
	}

	// Determinism: the collated batch stream must be byte-identical across
	// worker counts for a fixed seed (checked on a memory store so only
	// the pipeline schedule varies).
	{
		mem := storage.NewMemory()
		mds, err := ingestDeepLake(ctx, mem, samples, bounds)
		if err != nil {
			return nil, err
		}
		var ref uint64
		for _, workers := range []int{1, 4, 16} {
			h, n, err := streamHash(ctx, mds, workers, cfg.Seed)
			if err != nil {
				return nil, err
			}
			if n != cfg.N {
				return nil, fmt.Errorf("train: determinism pass at %d workers delivered %d/%d rows", workers, n, cfg.N)
			}
			if workers == 1 {
				ref = h
			} else if h != ref {
				return nil, fmt.Errorf("train: batch stream at %d workers differs from serial for seed %d", workers, cfg.Seed)
			}
		}
		res.Notes = append(res.Notes, "batch stream verified byte-identical across 1/4/16 workers for the fixed seed")
	}
	return res, nil
}

// streamHash drains one shuffled epoch and hashes every delivered sample's
// dtype, shape and bytes in delivery order.
func streamHash(ctx context.Context, ds *core.Dataset, workers int, seed int64) (uint64, int, error) {
	fields := []string{"images", "labels"}
	l := dataloader.ForDataset(ds, dataloader.Options{
		BatchSize: trainBatch, Workers: workers, Shuffle: true, Seed: seed, Fields: fields,
	})
	h := fnv.New64a()
	n := 0
	for b := range l.Batches(ctx) {
		for _, s := range b.Samples {
			for _, name := range fields {
				arr := s[name]
				fmt.Fprintf(h, "%s|%v|%v|", name, arr.Dtype(), arr.Shape())
				h.Write(arr.Bytes())
			}
			n++
		}
	}
	return h.Sum64(), n, l.Err()
}
