package bench

import (
	"context"
	"fmt"
	"hash/fnv"
	"os"
	"time"

	"repro/internal/baselines"
	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/dataloader"
	"repro/internal/gpusim"
	"repro/internal/simnet"
	"repro/internal/storage"
	"repro/internal/workload"
)

// trainScale is the uniform time compression shared by the network
// simulation and the GPU compute model, keeping IO/compute ratios faithful.
// A mild compression keeps per-request wall latency (3ms) well above Go
// scheduler jitter, so the measured worker-scaling ratio is stable even on
// noisy CI runners.
const trainScale = 5

// trainBatch is the per-step batch size of the simulated train loop.
const trainBatch = 16

// TrainStream measures the §4.6/§6.4 headline: an end-to-end train loop —
// simulated GPU, chunk-granular shuffling, collation — streaming from
// simulated S3 through the chunk-aligned dataloader, against the
// tfrecord/webdataset baselines. Tiny raw images in small chunks at a mild
// time compression keep the epoch latency-bound, the regime a real S3
// train loop lives in, so request-count economics (not CPU core count) set
// the scaling. The runner itself enforces the PR's contracts: 16-worker
// streaming at or above BOTH format baselines in absolute samples/sec,
// origin requests strictly below the chunk count (the coalesced fetch
// planner batching near-adjacent chunks into ranged multi-gets), every
// chunk moved from origin and decoded exactly once per epoch per rank
// (request ledger + cache/decode counters), and the batch stream
// byte-identical across worker counts for a fixed seed.
func TrainStream(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults(384)
	spec := workload.ImageSpec{Height: 16, Width: 16, Channels: 3, Seed: cfg.Seed}
	samples := rawSampleSet(cfg, spec)
	// Deliberately pathological static bounds (~1 image per chunk) stand in
	// for an untuned ingest; the chunk-size autotuner below is what rescues
	// them, growing the effective target toward autotuneCap exactly as the
	// real knob grows toward the paper's 8–16MB band (the toy samples are
	// ~1000x smaller than real training images, so the cap scales with
	// them). The result is a mid-size chunk layout: enough chunks to
	// exercise fan-out and coalescing, few enough that per-chunk round
	// trips don't drown the pipeline.
	bounds := chunk.Bounds{Min: 512, Target: 1 << 10, Max: 2 << 10}
	autotuneCap := int64(16 << 10)
	if cfg.AutotuneCapBytes > 0 {
		autotuneCap = int64(cfg.AutotuneCapBytes)
	} else if cfg.AutotuneCapBytes < 0 {
		autotuneCap = 0
	}
	fetchBatch := 32
	if cfg.FetchBatch != 0 {
		fetchBatch = cfg.FetchBatch
	}
	profile := simnet.S3SameRegion()
	profile.TimeScale = trainScale
	gpu := gpusim.GPU{ComputePerBatch: 2 * time.Millisecond, TimeScale: trainScale}

	res := &Result{
		ID:     "train",
		Title:  fmt.Sprintf("train loop over %d raw %dx%d images streamed from S3 (batch %d)", cfg.N, spec.Height, spec.Width, trainBatch),
		Better: "higher",
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("simulated GPU (2ms/batch) fed by each loader over s3-same-region at time scale %d; throughput in simulated time", trainScale),
		"serial = 1 worker with readahead disabled (the per-sample read path's schedule); workers-N = chunk-aligned pipeline with coalesced ranged prefetch",
		"ranks-N shards the chunk order across N rank loaders colocated on one node (Rank/WorldSize), 4 workers and one GPU per rank, all sharing one node-level decoded-chunk cache; both RAM tiers derive from one 1GB NodeBudget (3/8 raw-chunk LRU, 5/8 decoded)",
		"every deeplake row is checked: each chunk moved from origin + decoded exactly once per epoch — per loader when alone, per NODE across the rank loaders — and origin requests < chunks (coalescing)",
		"gate: 16-worker streaming must match or beat both format baselines in absolute samples/sec")

	// Baselines: same samples, same storage profile, 16 iteration workers.
	baselineRate := map[string]float64{}
	for _, f := range []baselines.Format{baselines.TFRecord{}, baselines.WebDataset{}} {
		store := storage.NewSimObjectStore(profile)
		if err := f.Write(ctx, store, samples); err != nil {
			return nil, err
		}
		tl := gpu.Train(ctx, formatSource{f: f, store: store, workers: 16, batch: trainBatch}, 0)
		baselineRate[f.Name()] = tl.RowsPerSec()
		res.Rows = append(res.Rows, Row{
			Name: f.Name(), Value: tl.RowsPerSec(), Unit: "smp/s",
			Extra: fmt.Sprintf("gpu idle %.0f%%", tl.IdleFraction()*100),
		})
	}

	// One ingested dataset behind a counting origin; each run reopens it
	// under a fresh byte cache (whose fetch planner coalesces prefetched
	// chunks into batched ranged requests) with a reset request ledger, so
	// the ledger counts exactly that run's origin traffic.
	origin := storage.NewSimObjectStore(profile)
	counting := storage.NewCounting(origin)
	if _, err := ingestDeepLakeOpts(ctx, counting, samples, bounds, core.WriteOptions{AutotuneChunkBytes: autotuneCap}); err != nil {
		return nil, err
	}
	openCold := func() (*core.Dataset, error) {
		ds, err := core.Open(ctx, storage.NewLRU(counting, 1<<30))
		if err != nil {
			return nil, err
		}
		counting.Reset()
		return ds, nil
	}
	chunksOf := func(ds *core.Dataset) int64 {
		return int64(ds.Tensor("images").NumChunks() + ds.Tensor("labels").NumChunks())
	}
	loaderOpts := func(workers, rank, world, readahead int) dataloader.Options {
		return dataloader.Options{
			BatchSize: trainBatch, Workers: workers, Shuffle: true, Seed: cfg.Seed,
			Fields: []string{"images", "labels"}, Readahead: readahead,
			// A deep readahead window with wide fetch strips is the
			// absolute-throughput configuration: the scheduler runs a full
			// strip of chunks ahead of the workers, so whole strips arrive
			// in single batched ranged requests while the previous strip
			// decodes.
			FetchBatch: fetchBatch,
			Rank:       rank, WorldSize: world,
		}
	}

	// Serial reference: one worker walking the same shuffled chunk order
	// with no readahead, so every chunk costs a full S3 round trip.
	ds, err := openCold()
	if err != nil {
		return nil, err
	}
	serialTL := gpu.Train(ctx, dataloader.ForDataset(ds, loaderOpts(1, 0, 1, -1)), 0)
	serial := serialTL.RowsPerSec()
	if serialTL.Rows != cfg.N {
		return nil, fmt.Errorf("train: serial run delivered %d/%d rows", serialTL.Rows, cfg.N)
	}
	res.Rows = append(res.Rows, Row{
		Name: "deeplake-serial", Value: serial, Unit: "smp/s",
		Extra: fmt.Sprintf("gpu idle %.0f%%, first batch %s", serialTL.IdleFraction()*100, serialTL.FirstBatch.Round(time.Millisecond)),
	})

	var rate16 float64
	for _, workers := range []int{1, 4, 16} {
		ds, err := openCold()
		if err != nil {
			return nil, err
		}
		l := dataloader.ForDataset(ds, loaderOpts(workers, 0, 1, 64))
		tl := gpu.Train(ctx, l, 0)
		if err := l.Err(); err != nil {
			return nil, err
		}
		if tl.Rows != cfg.N {
			return nil, fmt.Errorf("train: workers-%d delivered %d/%d rows", workers, tl.Rows, cfg.N)
		}
		chunks := chunksOf(ds)
		if got := l.CacheDecodes(); got != chunks {
			return nil, fmt.Errorf("train: workers-%d decoded %d chunks, want exactly %d (decode-once per epoch)", workers, got, chunks)
		}
		snap := counting.Snapshot()
		// Fetch-once: every chunk object moves from origin exactly once,
		// whether inside a batched ranged request or a single get.
		if moved := snap.Gets + snap.RangeGets + snap.BatchRanges; moved != chunks {
			return nil, fmt.Errorf("train: workers-%d moved %d chunk objects from origin for %d chunks (fetch-once per epoch)", workers, moved, chunks)
		}
		// Coalescing: the fetch planner must pack those moves into strictly
		// fewer origin round trips than chunks. Only enforceable when batched
		// prefetch is on — -fetch-batch < 0 deliberately restores
		// one-request-per-chunk for A/B runs.
		reqs := snap.Requests()
		if fetchBatch > 0 && reqs >= chunks {
			return nil, fmt.Errorf("train: workers-%d made %d origin requests for %d chunks (coalescing must batch them)", workers, reqs, chunks)
		}
		if workers == 16 {
			rate16 = tl.RowsPerSec()
			res.Rows = append(res.Rows, Row{
				Name: "origin-requests-16", Value: float64(reqs), Unit: "req",
				Extra: fmt.Sprintf("%d chunks moved in %d requests (%d batched multi-gets carrying %d ranges)",
					chunks, reqs, snap.BatchGets, snap.BatchRanges),
			})
		}
		res.Rows = append(res.Rows, Row{
			Name: fmt.Sprintf("workers-%d", workers), Value: tl.RowsPerSec(), Unit: "smp/s",
			Extra: fmt.Sprintf("%.1fx serial, %d origin reqs / %d chunks, gpu idle %.0f%%, first batch %s",
				tl.RowsPerSec()/serial, reqs, chunks, tl.IdleFraction()*100, tl.FirstBatch.Round(time.Millisecond)),
		})
	}
	// Absolute-throughput gate: 16-worker streaming must match or beat both
	// format baselines, not merely scale over its own serial path. An explicit
	// A/B run with a throughput knob disabled measures the degraded
	// configuration instead of enforcing the gate against it. Skipped under
	// the race detector, whose instrumentation slows real decode work ~10x
	// against the fixed simulated network clock — a skew production builds
	// never see; the deterministic invariants above stay enforced.
	if raceEnabled {
		res.Notes = append(res.Notes, "absolute gate skipped under the race detector (CPU-time skew vs the simulated network clock)")
	} else if cfg.FetchBatch >= 0 && cfg.AutotuneCapBytes >= 0 {
		for name, rate := range baselineRate {
			if rate16 < rate {
				return nil, fmt.Errorf("train: 16-worker streaming %.0f smp/s is below the %s baseline %.0f smp/s", rate16, name, rate)
			}
		}
	} else {
		res.Notes = append(res.Notes, "absolute gate skipped: a throughput knob (-fetch-batch/-autotune-cap) is explicitly disabled for A/B measurement")
	}

	// Distributed: cfg.Ranks rank loaders shard one epoch's chunk order
	// disjointly, each feeding its own simulated GPU (the §6.5 multi-node
	// setup) — but all colocated on ONE simulated node, sharing a
	// node-level decoded-chunk cache (§3.5 buffer at node scope). The
	// decode-once contract is therefore per node, not per rank: summed
	// across the rank loaders, each chunk is fetched+decoded exactly once.
	{
		world := cfg.Ranks
		if world <= 0 {
			world = 4
		}
		// One declared node budget sizes every RAM tier the rank fleet
		// shares: 3/8 to the raw-chunk LRU the dataset reads through, 5/8
		// to the decoded-chunk node cache — instead of each tier budgeting
		// the machine independently.
		budget := storage.NodeBudget{MemoryBytes: 1 << 30}
		ram := storage.NewLRU(counting, budget.LRUBytes())
		ds, err := core.Open(ctx, ram)
		if err != nil {
			return nil, err
		}
		counting.Reset()
		chunks := chunksOf(ds)
		node := dataloader.NewNodeCache(budget.DecodedBytes())
		if got := ram.Capacity() + node.Budget(); got != budget.MemoryBytes {
			return nil, fmt.Errorf("train: node budget leak: RAM tiers sum to %d bytes, budget is %d", got, budget.MemoryBytes)
		}
		gpus := make([]gpusim.GPU, world)
		sources := make([]gpusim.BatchSource, world)
		loaders := make([]*dataloader.Loader, world)
		for r := 0; r < world; r++ {
			gpus[r] = gpu
			opts := loaderOpts(4, r, world, 64)
			opts.Cache = node
			loaders[r] = dataloader.ForDataset(ds, opts)
			sources[r] = loaders[r]
		}
		start := time.Now()
		timelines := gpusim.Fleet(ctx, gpus, sources, 0)
		simWall := time.Since(start).Seconds() * trainScale
		rows := 0
		var nodeDecodes int64
		var idleFrac float64
		for r, tl := range timelines {
			if err := loaders[r].Err(); err != nil {
				return nil, fmt.Errorf("train: rank %d: %w", r, err)
			}
			nodeDecodes += loaders[r].CacheDecodes()
			rows += tl.Rows
			idleFrac += tl.IdleFraction()
		}
		if rows != cfg.N {
			return nil, fmt.Errorf("train: %d ranks delivered %d/%d rows together (shards must partition the epoch)", world, rows, cfg.N)
		}
		// Per-node decode-once: the rank shards are disjoint over primary
		// chunks but share secondary (label) chunks, so summed across the
		// node's loaders every distinct chunk decodes exactly once — N
		// rank-private caches would decode shared chunks up to N times.
		if nodeDecodes != chunks {
			return nil, fmt.Errorf("train: ranks-%d decoded %d chunks across the node, want exactly %d (decode-once per NODE, not per rank)", world, nodeDecodes, chunks)
		}
		if ns := node.Stats(); ns.Decodes != nodeDecodes {
			return nil, fmt.Errorf("train: node cache ledger mismatch: loaders attribute %d decodes, cache counted %d", nodeDecodes, ns.Decodes)
		}
		res.Rows = append(res.Rows, Row{
			Name: fmt.Sprintf("ranks-%d", world), Value: float64(rows) / simWall, Unit: "smp/s",
			Extra: fmt.Sprintf("%d ranks x 4 workers, disjoint chunk shards, shared node cache: %d/%d chunks decoded once per node, mean gpu idle %.0f%%",
				world, nodeDecodes, chunks, idleFrac/float64(world)*100),
		})
	}

	// Determinism: the collated batch stream must be byte-identical across
	// worker counts for a fixed seed (checked on a memory store so only
	// the pipeline schedule varies). ref — the serial stream's hash — also
	// serves as the byte-identity reference for the warm-restart run below.
	var ref uint64
	{
		mem := storage.NewMemory()
		mds, err := ingestDeepLakeOpts(ctx, mem, samples, bounds, core.WriteOptions{AutotuneChunkBytes: autotuneCap})
		if err != nil {
			return nil, err
		}
		for _, workers := range []int{1, 4, 16} {
			h, n, err := streamHash(ctx, mds, workers, cfg.Seed)
			if err != nil {
				return nil, err
			}
			if n != cfg.N {
				return nil, fmt.Errorf("train: determinism pass at %d workers delivered %d/%d rows", workers, n, cfg.N)
			}
			if workers == 1 {
				ref = h
			} else if h != ref {
				return nil, fmt.Errorf("train: batch stream at %d workers differs from serial for seed %d", workers, cfg.Seed)
			}
		}
		res.Notes = append(res.Notes, "batch stream verified byte-identical across 1/4/16 workers for the fixed seed")
	}

	// Warm restart over the local-disk tier (§3.6 RAM over local disk over
	// origin): a training job is killed mid-epoch, a fresh process reopens
	// the same cache directory, and the restarted epoch is served warm —
	// chunks the dead run already paid origin round trips for come off
	// local disk (checksum-verified against the dataset's manifests), and
	// the delivered batch stream is byte-identical to the cold reference.
	{
		dir, err := os.MkdirTemp("", "bench-disk-tier-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		openTier := func() (*storage.Disk, *core.Dataset, error) {
			disk, err := storage.NewDisk(counting, dir, storage.DiskOptions{})
			if err != nil {
				return nil, nil, err
			}
			tds, err := core.Open(ctx, storage.NewLRU(disk, 1<<30))
			if err != nil {
				return nil, nil, err
			}
			counting.Reset()
			return disk, tds, nil
		}
		// First incarnation: stream part of an epoch, then kill it.
		// Context cancellation mid-stream stands in for SIGKILL — the disk
		// tier publishes every admit atomically (temp+fsync+rename), so
		// whatever landed before the kill is intact for the next process.
		_, ds1, err := openTier()
		if err != nil {
			return nil, err
		}
		killCtx, kill := context.WithCancel(ctx)
		l1 := dataloader.ForDataset(ds1, loaderOpts(4, 0, 1, 64))
		killedAfter := 0
		for range l1.Batches(killCtx) {
			killedAfter++
			if killedAfter >= 4 {
				kill()
			}
		}
		kill()
		// Second incarnation: fresh RAM cache and a fresh disk index over
		// the same directory, full epoch.
		disk2, ds2, err := openTier()
		if err != nil {
			return nil, err
		}
		h, nrows, err := streamHash(ctx, ds2, 4, cfg.Seed)
		if err != nil {
			return nil, err
		}
		if nrows != cfg.N {
			return nil, fmt.Errorf("train: warm-restart run delivered %d/%d rows", nrows, cfg.N)
		}
		if h != ref {
			return nil, fmt.Errorf("train: warm-restart batch stream differs from the cold reference for seed %d", cfg.Seed)
		}
		st := disk2.Stats()
		if st.WarmHits == 0 {
			return nil, fmt.Errorf("train: warm restart served no reads from the disk tier (warm hits = 0)")
		}
		reads := st.Hits + st.Misses
		res.Rows = append(res.Rows, Row{
			Name: "warm-restart", Value: float64(st.WarmHits) / float64(reads) * 100, Unit: "%",
			Extra: fmt.Sprintf("killed after %d batches; reopened epoch: %d of %d disk-tier reads served warm, %d origin misses, batches byte-identical to cold run",
				killedAfter, st.WarmHits, reads, st.Misses),
		})
		res.Notes = append(res.Notes,
			"warm-restart kills a run mid-epoch, reopens the same local-disk cache dir, and must see a nonzero warm hit rate with byte-identical batches")
	}
	return res, nil
}

// streamHash drains one shuffled epoch and hashes every delivered sample's
// dtype, shape and bytes in delivery order.
func streamHash(ctx context.Context, ds *core.Dataset, workers int, seed int64) (uint64, int, error) {
	fields := []string{"images", "labels"}
	l := dataloader.ForDataset(ds, dataloader.Options{
		BatchSize: trainBatch, Workers: workers, Shuffle: true, Seed: seed, Fields: fields,
	})
	h := fnv.New64a()
	n := 0
	for b := range l.Batches(ctx) {
		for _, s := range b.Samples {
			for _, name := range fields {
				arr := s[name]
				fmt.Fprintf(h, "%s|%v|%v|", name, arr.Dtype(), arr.Shape())
				h.Write(arr.Bytes())
			}
			n++
		}
	}
	return h.Sum64(), n, l.Err()
}
