package bench

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

// tiny configs keep the full figure suite runnable inside go test.
func tiny() Config { return Config{N: 24, Workers: 4, ImageSide: 48, Seed: 3} }

func TestFig6ShapeHolds(t *testing.T) {
	// Large enough that the array formats' write amplification shows
	// through the CPU noise floor.
	res, err := Fig6Ingestion(context.Background(), Config{N: 16, Workers: 4, ImageSide: 512})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	dl, ok := res.Value("deeplake")
	if !ok {
		t.Fatal("deeplake row missing")
	}
	zarr, _ := res.Value("zarr")
	// The deterministic mechanism behind the paper's headline: static
	// array formats pay heavy write amplification for ragged appends.
	dlMB := mbWritten(t, res, "deeplake")
	zarrMB := mbWritten(t, res, "zarr")
	n5MB := mbWritten(t, res, "n5")
	if zarrMB < dlMB*2 || n5MB < dlMB*2 {
		t.Fatalf("array formats wrote %.1f/%.1f MB vs deeplake %.1f MB; expected >= 2x amplification", zarrMB, n5MB, dlMB)
	}
	// Loose timing sanity (tight ordering is asserted at full benchfig
	// scale, where IO dominates CPU jitter). Race-detector instrumentation
	// skews this CPU-bound comparison, so it only runs uninstrumented.
	if !raceEnabled && dl > 2*zarr {
		t.Fatalf("deeplake %.3fs should not be 2x slower than zarr %.3fs", dl, zarr)
	}
	if !strings.Contains(res.Format(), "fig6") {
		t.Fatal("formatted output missing id")
	}
}

// mbWritten parses the "X.Y MB written" annotation of a fig6 row.
func mbWritten(t *testing.T, res *Result, name string) float64 {
	t.Helper()
	for _, row := range res.Rows {
		if row.Name == name {
			var mb float64
			if _, err := fmt.Sscanf(row.Extra, "%f MB written", &mb); err != nil {
				t.Fatalf("cannot parse extra %q: %v", row.Extra, err)
			}
			return mb
		}
	}
	t.Fatalf("row %q missing", name)
	return 0
}

func TestFig7ShapeHolds(t *testing.T) {
	res, err := Fig7LocalLoaders(context.Background(), Config{N: 64, Workers: 4, ImageSide: 48})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Value <= 0 {
			t.Fatalf("%s throughput %.1f", row.Name, row.Value)
		}
	}
}

func TestFig8ShapeHolds(t *testing.T) {
	// Payload must be large enough that bandwidth (not request latency)
	// dominates, as in the paper's 50k-image setup; tiny payloads would
	// flip the MinIO/S3 ordering because MinIO has lower latency.
	res, err := Fig8StorageLocations(context.Background(), Config{N: 600, Workers: 8, ImageSide: 160})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	dlLocal, _ := res.Value("deeplake/local")
	dlS3, _ := res.Value("deeplake/s3")
	dlMinio, _ := res.Value("deeplake/minio-lan")
	// Headline: S3 streaming close to local (prefetch hides latency; at
	// this reduced scale "close" means within a small absolute gap), and
	// MinIO LAN slower than S3 (bandwidth bound).
	if dlS3 > dlLocal+0.3 {
		t.Fatalf("deeplake s3 %.3fs too far from local %.3fs", dlS3, dlLocal)
	}
	if dlMinio <= dlS3 {
		t.Fatalf("minio %.3fs should be slower than s3 %.3fs (1GbE bottleneck)", dlMinio, dlS3)
	}
}

func TestFig9ShapeHolds(t *testing.T) {
	res, err := Fig9ImageNetCloud(context.Background(), Config{N: 64, Workers: 8, ImageSide: 48})
	if err != nil {
		t.Fatal(err)
	}
	local, _ := res.Value("local")
	stream, _ := res.Value("deeplake-stream")
	fileMode, _ := res.Value("aws-file-mode")
	fastFile, _ := res.Value("aws-fast-file-mode")
	if local <= 0 || stream <= 0 || fileMode <= 0 || fastFile <= 0 {
		t.Fatalf("rows = %+v", res.Rows)
	}
	// Headline: streaming ~ local; file mode pays the copy phase. Ordering
	// at this reduced scale is within the race detector's noise floor, so
	// it is only asserted in uninstrumented builds.
	if stream > local*3 {
		t.Fatalf("deeplake-stream %.2fs too far from local %.2fs", stream, local)
	}
	if !raceEnabled && fileMode <= stream {
		t.Fatalf("file mode %.2fs should exceed streaming %.2fs", fileMode, stream)
	}
}

func TestFig10ShapeHolds(t *testing.T) {
	res, err := Fig10DistributedCLIP(context.Background(), Config{N: 512, Workers: 4, ImageSide: 48})
	if err != nil {
		t.Fatal(err)
	}
	// The race detector's instrumentation slows the loader relative to the
	// simulated GPU clock, deflating measured utilization; only the sanity
	// floor applies there.
	floor := 40.0
	if raceEnabled {
		floor = 10.0
	}
	util, ok := res.Value("mean-gpu-utilization")
	if !ok || util < floor || util > 100 {
		t.Fatalf("mean utilization = %.1f%%", util)
	}
	agg, ok := res.Value("aggregate-throughput")
	if !ok || agg <= 0 {
		t.Fatalf("aggregate throughput = %v", agg)
	}
}

func TestAblations(t *testing.T) {
	ctx := context.Background()
	t.Run("chunksize", func(t *testing.T) {
		res, err := AblationChunkSize(ctx, Config{N: 32, Workers: 4, ImageSide: 48})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 5 {
			t.Fatalf("rows = %d", len(res.Rows))
		}
	})
	t.Run("shufflebuffer", func(t *testing.T) {
		res, err := AblationShuffleBuffer(ctx, Config{N: 128, Workers: 4, ImageSide: 32})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 4 {
			t.Fatalf("rows = %d", len(res.Rows))
		}
	})
	t.Run("workers", func(t *testing.T) {
		res, err := AblationWorkers(ctx, Config{N: 64, Workers: 4, ImageSide: 32})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 5 {
			t.Fatalf("rows = %d", len(res.Rows))
		}
	})
	t.Run("sparseviews", func(t *testing.T) {
		res, err := AblationSparseViews(ctx, Config{N: 200, Workers: 4, ImageSide: 64})
		if err != nil {
			t.Fatal(err)
		}
		// Assert on the mechanism (bytes moved), which is deterministic,
		// rather than wall time, which jitters under instrumentation.
		sparseB, _ := res.Value("sparse-view-bytes")
		denseB, _ := res.Value("materialized-view-bytes")
		if denseB >= sparseB {
			t.Fatalf("materialized view moved %.2fMB >= sparse %.2fMB", denseB, sparseB)
		}
	})
	t.Run("cache", func(t *testing.T) {
		res, err := AblationCacheEpochs(ctx, Config{N: 128, Workers: 4, ImageSide: 64})
		if err != nil {
			t.Fatal(err)
		}
		e1, _ := res.Value("epoch-1")
		e2, _ := res.Value("epoch-2")
		if e2 >= e1 {
			t.Fatalf("cached epoch 2 (%.3fs) should beat cold epoch 1 (%.3fs)", e2, e1)
		}
	})
	t.Run("versiondepth", func(t *testing.T) {
		res, err := AblationVersionDepth(ctx, Config{N: 32, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 4 {
			t.Fatalf("rows = %d", len(res.Rows))
		}
		// Open latency grows with depth.
		d1, _ := res.Value("depth-1")
		d64, _ := res.Value("depth-64")
		if d64 <= d1 {
			t.Logf("warning: open(depth-64)=%.2fms <= open(depth-1)=%.2fms", d64, d1)
		}
	})
}

func TestResultHelpers(t *testing.T) {
	r := &Result{ID: "x", Title: "t", Better: "lower", Rows: []Row{
		{Name: "b", Value: 2, Unit: "s"},
		{Name: "a", Value: 1, Unit: "s"},
	}}
	sorted := r.Sorted()
	if sorted[0].Name != "a" {
		t.Fatalf("sorted = %v", sorted)
	}
	if _, ok := r.Value("zz"); ok {
		t.Fatal("missing row should not resolve")
	}
}
