package bench

import (
	"context"
	"strings"
	"testing"
)

// TestTrainScenario asserts the PR's acceptance criteria at test scale. The
// TrainStream runner itself fails when 16-worker streaming falls below
// either format baseline in absolute samples/sec, when origin requests are
// not strictly fewer than chunks (coalesced fetch plans), when any chunk is
// fetched or decoded more than once per epoch per rank, or when the batch
// stream is not byte-identical across worker counts — so a clean return
// already covers the contracts; the checks here guard the reported series'
// shape.
func TestTrainScenario(t *testing.T) {
	res, err := TrainStream(context.Background(), Config{N: 96, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	serial, ok := res.Value("deeplake-serial")
	if !ok {
		t.Fatal("deeplake-serial row missing")
	}
	w16, ok := res.Value("workers-16")
	if !ok {
		t.Fatal("workers-16 row missing")
	}
	if serial <= 0 || w16 <= 0 {
		t.Fatalf("non-positive throughput: serial %.1f, workers-16 %.1f", serial, w16)
	}
	if w16 <= serial {
		t.Fatalf("16-worker streaming %.1f smp/s does not beat the serial path %.1f smp/s", w16, serial)
	}
	if _, ok := res.Value("ranks-4"); !ok {
		t.Fatal("ranks-4 row missing")
	}
	for _, name := range []string{"tfrecord", "webdataset"} {
		base, ok := res.Value(name)
		if !ok {
			t.Fatalf("%s baseline row missing", name)
		}
		// The absolute comparison only holds without race instrumentation,
		// which slows real decode work against the simulated network clock
		// (the runner itself skips its gate the same way).
		if !raceEnabled && w16 < base {
			t.Fatalf("16-worker streaming %.1f smp/s is below the %s baseline %.1f smp/s", w16, name, base)
		}
	}
	reqs, ok := res.Value("origin-requests-16")
	if !ok {
		t.Fatal("origin-requests-16 row missing")
	}
	if reqs < 1 {
		t.Fatalf("origin-requests-16 reports %.0f requests", reqs)
	}
	verified := false
	for _, n := range res.Notes {
		if strings.Contains(n, "byte-identical") {
			verified = true
		}
	}
	if !verified {
		t.Fatal("determinism pass did not run")
	}
}
