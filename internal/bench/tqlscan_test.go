package bench

import (
	"context"
	"testing"
)

// TestTQLScanScenario asserts the PR's acceptance criteria at test scale: a
// shape-only WHERE reaches the origin zero times (shape-encoder pushdown),
// the forced full scan does not, and the parallel filter scan beats the
// serial baseline. The TQLScan runner itself fails when pushdown leaks IO
// or when pushdown and full scan disagree on the result set.
func TestTQLScanScenario(t *testing.T) {
	res, err := TQLScan(context.Background(), Config{N: 96, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	push, ok := res.Value("pushdown-origin-requests")
	if !ok {
		t.Fatal("pushdown-origin-requests row missing")
	}
	if push != 0 {
		t.Fatalf("shape-only WHERE made %.0f origin requests, want 0", push)
	}
	full, ok := res.Value("fullscan-origin-requests")
	if !ok {
		t.Fatal("fullscan-origin-requests row missing")
	}
	if full <= 0 {
		t.Fatalf("full scan made %.0f origin requests, want > 0", full)
	}
	t1, ok1 := res.Value("filter-workers-1")
	t16, ok16 := res.Value("filter-workers-16")
	legacy, okl := res.Value("filter-serial-legacy")
	if !ok1 || !ok16 || !okl {
		t.Fatalf("throughput rows missing: %+v", res.Rows)
	}
	if t1 <= 0 || t16 <= 0 || legacy <= 0 {
		t.Fatalf("non-positive throughput: %.1f/%.1f/%.1f", t1, t16, legacy)
	}
	// The speedup gate compares against the pre-strip serial engine
	// (per-partition prefetch, no cross-span lookahead). The strip
	// scheduler made filter-workers-1 nearly IO-stall-free at this toy
	// scale, so 16-vs-1 on the strip path measures goroutine overhead,
	// not the engine; the strip runner separately gates strips vs
	// per-partition on origin requests.
	if t16 <= legacy {
		t.Fatalf("16-worker scan %.1f rows/s should exceed the legacy serial engine %.1f rows/s", t16, legacy)
	}
}
