package bench

import (
	"context"
	"testing"
)

// TestChaosScenario asserts the resilience acceptance criteria at test
// scale. The Chaos runner itself fails when a fault leaks past the retry
// layer, when the delivered batch stream or the stored object set differs
// from the fault-free run, when the hot-chunk fault costs more than one
// extra origin request, or when the faulty epoch blows the recovery bound —
// so a clean return already covers the contracts; the checks here guard the
// reported series' shape.
func TestChaosScenario(t *testing.T) {
	res, err := Chaos(context.Background(), Config{N: 96, Workers: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	extra, ok := res.Value("hot-chunk-extra-requests")
	if !ok {
		t.Fatal("hot-chunk-extra-requests row missing")
	}
	if extra != 1 {
		t.Fatalf("coalesced fault cost %.0f extra origin requests, want exactly 1", extra)
	}
	for _, name := range []string{"train-slowdown", "ingest-slowdown"} {
		v, ok := res.Value(name)
		if !ok {
			t.Fatalf("%s row missing", name)
		}
		if v <= 0 {
			t.Fatalf("%s = %.3f, want positive", name, v)
		}
	}
}

// TestChaosReproducible runs the scenario twice with one seed and asserts
// the injected fault counts match: the whole point of the seeded schedule
// is that a chaos failure can be re-run exactly.
func TestChaosReproducible(t *testing.T) {
	run := func() *Result {
		res, err := Chaos(context.Background(), Config{N: 48, Workers: 4, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.Notes) != len(b.Notes) {
		t.Fatalf("note count differs across identical runs: %d vs %d", len(a.Notes), len(b.Notes))
	}
	// The fault/retry accounting notes embed the injected counts; they must
	// be identical run to run (timings may differ, counts may not).
	for i := range a.Notes {
		if a.Notes[i] != b.Notes[i] {
			t.Fatalf("fault accounting differs across identical runs:\n  %s\n  %s", a.Notes[i], b.Notes[i])
		}
	}
}
