package bench

import (
	"context"
	"strings"
	"testing"
)

// TestChaosScenario asserts the resilience acceptance criteria at test
// scale. The Chaos runner itself fails when a fault leaks past the retry
// layer, when the delivered batch stream or the stored object set differs
// from the fault-free run, when the hot-chunk fault costs more than one
// extra origin request, or when the faulty epoch blows the recovery bound —
// so a clean return already covers the contracts; the checks here guard the
// reported series' shape.
func TestChaosScenario(t *testing.T) {
	res, err := Chaos(context.Background(), Config{N: 96, Workers: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	extra, ok := res.Value("hot-chunk-extra-requests")
	if !ok {
		t.Fatal("hot-chunk-extra-requests row missing")
	}
	if extra != 1 {
		t.Fatalf("coalesced fault cost %.0f extra origin requests, want exactly 1", extra)
	}
	for _, name := range []string{"train-slowdown", "ingest-slowdown"} {
		v, ok := res.Value(name)
		if !ok {
			t.Fatalf("%s row missing", name)
		}
		if v <= 0 {
			t.Fatalf("%s = %.3f, want positive", name, v)
		}
	}
}

// TestChaosReproducible runs the scenario twice with one seed and asserts
// everything with a deterministic call sequence re-runs exactly: the litmus
// rows (hot-chunk retry, batched-fault, worker-death position) issue their
// ops single-threaded against the seeded schedule, so their values and
// accounting must match to the digit. The train/ingest epochs' fault counts
// ride concurrently-interleaved op streams — with coalesced prefetch even
// the number of origin requests depends on which strips raced which
// on-demand reads — so only their invariant outcomes (asserted inside the
// runner: byte-identity, fetch-once, bounded recovery) carry across runs,
// not the exact counts; the storage-level seeded-schedule tests
// (faulty_test.go, batch_test.go) pin call-sequence reproducibility.
func TestChaosReproducible(t *testing.T) {
	run := func() *Result {
		res, err := Chaos(context.Background(), Config{N: 48, Workers: 4, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for _, name := range []string{
		"hot-chunk-extra-requests", "batched-fault-extra-requests", "worker-death-kill-position",
	} {
		av, aok := a.Value(name)
		bv, bok := b.Value(name)
		if !aok || !bok {
			t.Fatalf("%s row missing (run1 %v, run2 %v)", name, aok, bok)
		}
		if av != bv {
			t.Fatalf("%s differs across identical runs: %.0f vs %.0f", name, av, bv)
		}
	}
	if len(a.Notes) != len(b.Notes) {
		t.Fatalf("note count differs across identical runs: %d vs %d", len(a.Notes), len(b.Notes))
	}
	for i := range a.Notes {
		if strings.HasPrefix(a.Notes[i], "train:") || strings.HasPrefix(a.Notes[i], "ingest:") {
			continue // concurrent op streams: counts may legitimately differ
		}
		if a.Notes[i] != b.Notes[i] {
			t.Fatalf("deterministic note differs across identical runs:\n  %s\n  %s", a.Notes[i], b.Notes[i])
		}
	}
}
