//go:build race

package bench

// raceEnabled reports whether the binary was built with the race detector,
// whose instrumentation slows the simulated training loop enough to skew
// timing-sensitive utilization measurements.
const raceEnabled = true
