// Package bench regenerates every figure of the paper's evaluation (§6) as
// text series: ingestion speed across formats (Fig 6), local dataloader
// throughput (Fig 7), streaming from different storage locations (Fig 8),
// ImageNet training modes on S3 (Fig 9), and distributed multi-modal
// training utilization (Fig 10), plus ablations over the design choices
// DESIGN.md calls out. The same runners back the root bench_test.go
// (testing.B, small N) and cmd/benchfig (larger N, printed tables).
package bench

import (
	"fmt"
	"sort"
	"strings"
)

// Row is one measured series point.
type Row struct {
	// Name labels the system/configuration.
	Name string
	// Value is the measurement in Unit.
	Value float64
	// Unit is the measurement unit ("s", "img/s", "%", ...).
	Unit string
	// Extra carries secondary measurements for the table.
	Extra string
}

// Result is one regenerated figure.
type Result struct {
	// ID is the experiment id ("fig6").
	ID string
	// Title describes the experiment.
	Title string
	// Better is "lower" or "higher".
	Better string
	// Rows are the measured series.
	Rows []Row
	// Notes carry caveats (scaling factors, substitutions).
	Notes []string
}

// Format renders the result as an aligned text table.
func (r *Result) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s (%s is better) ==\n", r.ID, r.Title, r.Better)
	nameW := 4
	for _, row := range r.Rows {
		if len(row.Name) > nameW {
			nameW = len(row.Name)
		}
	}
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %-*s  %10.3f %-6s %s\n", nameW, row.Name, row.Value, row.Unit, row.Extra)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "  note: %s\n", n)
	}
	return sb.String()
}

// Sorted returns rows ordered by value (ascending when Better == "lower").
func (r *Result) Sorted() []Row {
	rows := append([]Row(nil), r.Rows...)
	asc := r.Better == "lower"
	sort.SliceStable(rows, func(i, j int) bool {
		if asc {
			return rows[i].Value < rows[j].Value
		}
		return rows[i].Value > rows[j].Value
	})
	return rows
}

// Value returns the measurement of a named row.
func (r *Result) Value(name string) (float64, bool) {
	for _, row := range r.Rows {
		if row.Name == name {
			return row.Value, true
		}
	}
	return 0, false
}

// Config scales an experiment.
type Config struct {
	// N is the sample count (each figure has its own full-scale default;
	// tests pass small values).
	N int
	// Workers is the loader/ingest parallelism (default 8).
	Workers int
	// ImageSide overrides the synthetic image edge length, letting tests
	// shrink the Fig 6 3MB images.
	ImageSide int
	// Seed drives the deterministic generators.
	Seed int64
}

func (c Config) withDefaults(defaultN int) Config {
	if c.N <= 0 {
		c.N = defaultN
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}
