// Package bench regenerates every figure of the paper's evaluation (§6) as
// text series: ingestion speed across formats (Fig 6), local dataloader
// throughput (Fig 7), streaming from different storage locations (Fig 8),
// ImageNet training modes on S3 (Fig 9), and distributed multi-modal
// training utilization (Fig 10), plus ablations over the design choices
// DESIGN.md calls out. The same runners back the root bench_test.go
// (testing.B, small N) and cmd/benchfig (larger N, printed tables).
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Row is one measured series point.
type Row struct {
	// Name labels the system/configuration.
	Name string `json:"name"`
	// Value is the measurement in Unit.
	Value float64 `json:"value"`
	// Unit is the measurement unit ("s", "img/s", "%", ...).
	Unit string `json:"unit"`
	// Extra carries secondary measurements for the table.
	Extra string `json:"extra,omitempty"`
}

// Result is one regenerated figure.
type Result struct {
	// ID is the experiment id ("fig6").
	ID string
	// Title describes the experiment.
	Title string
	// Better is "lower" or "higher".
	Better string
	// Rows are the measured series.
	Rows []Row
	// Notes carry caveats (scaling factors, substitutions).
	Notes []string
}

// Format renders the result as an aligned text table.
func (r *Result) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s (%s is better) ==\n", r.ID, r.Title, r.Better)
	nameW := 4
	for _, row := range r.Rows {
		if len(row.Name) > nameW {
			nameW = len(row.Name)
		}
	}
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %-*s  %10.3f %-6s %s\n", nameW, row.Name, row.Value, row.Unit, row.Extra)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "  note: %s\n", n)
	}
	return sb.String()
}

// Sorted returns rows ordered by value (ascending when Better == "lower").
func (r *Result) Sorted() []Row {
	rows := append([]Row(nil), r.Rows...)
	asc := r.Better == "lower"
	sort.SliceStable(rows, func(i, j int) bool {
		if asc {
			return rows[i].Value < rows[j].Value
		}
		return rows[i].Value > rows[j].Value
	})
	return rows
}

// Value returns the measurement of a named row.
func (r *Result) Value(name string) (float64, bool) {
	for _, row := range r.Rows {
		if row.Name == name {
			return row.Value, true
		}
	}
	return 0, false
}

// Report is the machine-readable form of one scenario run, written by
// cmd/benchfig -json as BENCH_<scenario>.json so the perf trajectory is
// recorded per PR.
type Report struct {
	ID         string   `json:"id"`
	Title      string   `json:"title"`
	Better     string   `json:"better"`
	N          int      `json:"n"`
	Workers    int      `json:"workers"`
	Seed       int64    `json:"seed"`
	ElapsedSec float64  `json:"elapsed_sec"`
	Rows       []Row    `json:"rows"`
	Notes      []string `json:"notes,omitempty"`
}

// WriteJSON writes the result as BENCH_<id>.json under dir (created if
// missing) and returns the path.
func (r *Result) WriteJSON(dir string, cfg Config, elapsed time.Duration) (string, error) {
	rep := Report{
		ID: r.ID, Title: r.Title, Better: r.Better,
		N: cfg.N, Workers: cfg.Workers, Seed: cfg.Seed,
		ElapsedSec: elapsed.Seconds(),
		Rows:       r.Rows, Notes: r.Notes,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", err
	}
	if dir != "" && dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return "", err
		}
	}
	path := filepath.Join(dir, "BENCH_"+r.ID+".json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// Config scales an experiment.
type Config struct {
	// N is the sample count (each figure has its own full-scale default;
	// tests pass small values).
	N int
	// Workers is the loader/ingest parallelism (default 8).
	Workers int
	// ImageSide overrides the synthetic image edge length, letting tests
	// shrink the Fig 6 3MB images.
	ImageSide int
	// Seed drives the deterministic generators.
	Seed int64
	// FetchBatch overrides the train scenario's coalesced-prefetch strip
	// width (chunks per batched ranged origin request; 0 = scenario
	// default of 32, negative disables batching).
	FetchBatch int
	// AutotuneCapBytes overrides the train scenario's ingest chunk-size
	// autotuner ceiling (0 = scenario default; negative disables the
	// autotuner, leaving the deliberately pathological static bounds).
	AutotuneCapBytes int
	// Ranks sets the train scenario's simulated same-node rank count: that
	// many rank-sharded loaders share one node-level decoded-chunk cache,
	// and the runner enforces per-NODE decode-once across them (0 =
	// scenario default of 4).
	Ranks int
}

func (c Config) withDefaults(defaultN int) Config {
	if c.N <= 0 {
		c.N = defaultN
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}
