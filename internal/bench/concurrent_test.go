package bench

import (
	"context"
	"testing"
)

// TestConcurrentReadersScenario asserts the PR's acceptance criteria: 16
// concurrent misses on one hot chunk reach the origin as exactly one Get,
// and 16 readers sharing the cache beat the single-reader baseline in
// aggregate throughput over simnet-throttled storage.
func TestConcurrentReadersScenario(t *testing.T) {
	res, err := ConcurrentReaders(context.Background(), Config{N: 64, Workers: 4, ImageSide: 48})
	if err != nil {
		t.Fatal(err)
	}
	hot, ok := res.Value("hot-chunk-origin-gets")
	if !ok {
		t.Fatal("hot-chunk-origin-gets row missing")
	}
	if hot != 1 {
		t.Fatalf("hot chunk origin Gets = %.0f, want exactly 1 (coalesced)", hot)
	}
	t1, ok1 := res.Value("readers-1")
	t4, ok4 := res.Value("readers-4")
	t16, ok16 := res.Value("readers-16")
	if !ok1 || !ok4 || !ok16 {
		t.Fatalf("throughput rows missing: %+v", res.Rows)
	}
	if t1 <= 0 || t4 <= 0 || t16 <= 0 {
		t.Fatalf("non-positive throughput: %.1f/%.1f/%.1f", t1, t4, t16)
	}
	if t16 <= t1 {
		t.Fatalf("16-reader aggregate %.1f smp/s should exceed 1-reader baseline %.1f smp/s", t16, t1)
	}
}
