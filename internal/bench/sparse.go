package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/chunk"
	"repro/internal/dataloader"
	"repro/internal/simnet"
	"repro/internal/storage"
	"repro/internal/tql"
	"repro/internal/view"
	"repro/internal/workload"
)

// AblationSparseViews quantifies §4.5: a query view selecting scattered
// rows streams sub-optimally (every touched chunk is fetched for a few
// samples), while materializing the view re-packs it into dense chunks that
// stream with minimal transfer. Measured: epoch time and bytes transferred
// for the sparse view vs its materialized twin, both on simulated S3.
func AblationSparseViews(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults(600)
	samples, err := jpegSampleSet(cfg, workload.Small250())
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "ablation-sparseviews", Title: "sparse query view vs materialized view, streaming from S3", Better: "lower"}
	res.Notes = append(res.Notes,
		"view selects every 10th row; sparse streaming fetches whole chunks for single samples (§4.5)")

	profile := simnet.S3SameRegion()
	profile.TimeScale = 1
	inner := storage.NewSimObjectStore(profile)
	counting := storage.NewCounting(inner)
	// Small chunks so the sparse pattern touches many of them.
	ds, err := ingestDeepLake(ctx, counting, samples, chunk.Bounds{Min: 128 << 10, Target: 256 << 10, Max: 512 << 10})
	if err != nil {
		return nil, err
	}

	// The "balancing" query: every 10th sample survives the filter.
	v, err := tql.Run(ctx, ds, "SELECT images, labels FROM bench WHERE ROW() % 10 == 0")
	if err != nil {
		return nil, err
	}
	if !v.IsSparse() {
		return nil, fmt.Errorf("sparse ablation: view unexpectedly dense")
	}

	epoch := func(src *view.View) (time.Duration, int64, error) {
		counting.Reset()
		l := dataloader.New(src, dataloader.Options{BatchSize: 16, Workers: cfg.Workers, RawBytes: true})
		n := 0
		start := time.Now()
		for b := range l.Batches(ctx) {
			n += len(b.Samples)
		}
		if err := l.Err(); err != nil {
			return 0, 0, err
		}
		if n != src.Len() {
			return 0, 0, fmt.Errorf("delivered %d/%d", n, src.Len())
		}
		return time.Since(start), counting.Snapshot().BytesRead, nil
	}

	sparseDur, sparseBytes, err := epoch(v)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, Row{
		Name: "sparse-view", Value: sparseDur.Seconds(), Unit: "s",
		Extra: fmt.Sprintf("%.1f MB transferred for %d rows", float64(sparseBytes)/1e6, v.Len()),
	})
	res.Rows = append(res.Rows, Row{Name: "sparse-view-bytes", Value: float64(sparseBytes) / 1e6, Unit: "MB"})

	// Materialize onto the same class of storage, then stream.
	matInner := storage.NewSimObjectStore(profile)
	matCounting := storage.NewCounting(matInner)
	out, err := view.Materialize(ctx, v, matCounting, view.MaterializeOptions{Name: "dense"})
	if err != nil {
		return nil, err
	}
	counting2 := matCounting
	counting2.Reset()
	l := dataloader.ForDataset(out, dataloader.Options{BatchSize: 16, Workers: cfg.Workers, RawBytes: true})
	n := 0
	start := time.Now()
	for b := range l.Batches(ctx) {
		n += len(b.Samples)
	}
	if err := l.Err(); err != nil {
		return nil, err
	}
	matBytes := counting2.Snapshot().BytesRead
	res.Rows = append(res.Rows, Row{
		Name: "materialized-view", Value: time.Since(start).Seconds(), Unit: "s",
		Extra: fmt.Sprintf("%.1f MB transferred for %d rows", float64(matBytes)/1e6, n),
	})
	res.Rows = append(res.Rows, Row{Name: "materialized-view-bytes", Value: float64(matBytes) / 1e6, Unit: "MB"})
	return res, nil
}
