package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/baselines"
	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/simnet"
	"repro/internal/storage"
	"repro/internal/tensor"
	"repro/internal/workload"
)

// ingestProfile is S3-same-region at a gentler time compression than the
// figure defaults, so per-request upload latency — the thing the flush
// pipeline exists to hide — is realistically visible in the measurement
// (the readers benchmark makes the same move for its hot-chunk microbench).
func ingestProfile() simnet.Profile {
	p := simnet.S3SameRegion()
	p.TimeScale = 50
	return p
}

// ingestBounds keeps chunks small enough that a run seals many chunks, so
// the measurement exercises the upload path rather than one giant buffer.
var ingestBounds = chunk.Bounds{Min: 16 << 10, Target: 32 << 10, Max: 64 << 10}

// IngestThroughput measures the parallel ingestion engine the ROADMAP's
// write-path work targets: raw image samples stream into ONE dataset (one
// images + one labels tensor) on simnet-throttled S3 through 1, 4 and 16
// concurrent writers sharing the background chunk flush pipeline
// (WriteOptions{FlushWorkers}). The serial row is the old write path — one
// writer, synchronous inline Puts, so every sealed chunk stalls the append
// loop for a full S3 round trip — and the tfrecord/webdataset rows are the
// honest external competitors writing the same samples to the same storage
// profile. 16 writers should clear 4x serial: sample validation and
// encoding happen outside the locks, sealed chunks upload on concurrent S3
// lanes while appends continue, and Flush drains the pipeline before
// persisting metadata (in parallel across tensors).
func IngestThroughput(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults(384)
	spec := workload.ImageSpec{Height: 32, Width: 32, Channels: 3}
	samples := rawSampleSet(cfg, spec)
	res := &Result{
		ID:     "ingest",
		Title:  fmt.Sprintf("ingest %d raw %dx%d images into S3 with 1/4/16 parallel writers", cfg.N, spec.Height, spec.Width),
		Better: "higher",
	}
	res.Notes = append(res.Notes,
		"one dataset, one images+labels tensor pair shared by every writer (lock-split write path)",
		"writers-N uses WriteOptions{FlushWorkers: N}: sealed chunks upload in the background, Flush is the barrier",
		"serial = single writer, synchronous inline chunk Puts (the pre-engine write path)",
		"simulated S3 at TimeScale 50 so upload latency is visible; baselines pay the same costs")

	// External baselines on the identical storage profile.
	for _, f := range []baselines.Format{baselines.TFRecord{}, baselines.WebDataset{}} {
		store := storage.NewSimObjectStore(ingestProfile())
		start := time.Now()
		if err := f.Write(ctx, store, samples); err != nil {
			return nil, err
		}
		elapsed := time.Since(start).Seconds()
		res.Rows = append(res.Rows, Row{
			Name: f.Name(), Value: float64(len(samples)) / elapsed, Unit: "smp/s",
		})
	}

	serial, err := ingestParallel(ctx, samples, 1, core.WriteOptions{})
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, Row{Name: "deeplake-serial", Value: serial, Unit: "smp/s"})

	for _, writers := range []int{1, 4, 16} {
		rate, err := ingestParallel(ctx, samples, writers, core.WriteOptions{
			FlushWorkers: writers, MaxPending: 2 * writers,
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Row{
			Name: fmt.Sprintf("writers-%d", writers), Value: rate, Unit: "smp/s",
			Extra: fmt.Sprintf("%.1fx serial", rate/serial),
		})
	}

	if err := autotuneMixedSizes(ctx, res); err != nil {
		return nil, err
	}
	return res, nil
}

// autotuneMixedSizes drives the chunk-size autotuner through a mixed-size
// append stream and enforces the full schedule: grow (uniform small samples
// double the effective target toward the cap), regret (oversized sealed
// chunks walk it back down), recover (small samples again), and resume (a
// reopened writer continues from the persisted schedule rather than
// restarting cold). The chunk-size trajectory lands in the bench notes.
func autotuneMixedSizes(ctx context.Context, res *Result) error {
	store := storage.NewMemory()
	ds, err := core.Create(ctx, store, "autotune")
	if err != nil {
		return err
	}
	const cap = 64 << 10
	if err := ds.SetWriteOptions(core.WriteOptions{AutotuneChunkBytes: cap}); err != nil {
		return err
	}
	x, err := ds.CreateTensor(ctx, core.TensorSpec{
		Name: "x", Htype: "generic", Dtype: tensor.UInt8,
		Bounds: chunk.Bounds{Min: 2 << 10, Target: 4 << 10, Max: 8 << 10},
	})
	if err != nil {
		return err
	}
	var trajectory []int
	record := func() {
		t := x.EffectiveBounds().Target
		if n := len(trajectory); n == 0 || trajectory[n-1] != t {
			trajectory = append(trajectory, t)
		}
	}
	appendN := func(n, size int) error {
		buf := make([]byte, size)
		for i := range buf {
			buf[i] = byte(i % 251)
		}
		for i := 0; i < n; i++ {
			arr, err := tensor.FromBytes(tensor.UInt8, []int{size}, buf)
			if err != nil {
				return err
			}
			if err := x.Append(ctx, arr); err != nil {
				return err
			}
			record()
		}
		return nil
	}
	record()
	base := trajectory[0]
	if err := appendN(512, 256); err != nil { // grow: many uniform small samples
		return err
	}
	peak := x.EffectiveBounds().Target
	// Regret: 120KB samples fit under the grown effectiveMax (128KB at the
	// peak) so they seal as oversized chunks rather than tiling, and each
	// oversized seal overshoots the target by >3/2 — the shrink trigger.
	if err := appendN(6, 120<<10); err != nil {
		return err
	}
	regretted := x.EffectiveBounds().Target
	if err := appendN(128, 256); err != nil { // recover
		return err
	}
	if err := ds.Flush(ctx); err != nil {
		return err
	}
	closed := x.EffectiveBounds()

	if peak <= base {
		return fmt.Errorf("ingest: autotuner never grew: base target %d, after-growth %d", base, peak)
	}
	if regretted >= peak {
		return fmt.Errorf("ingest: autotuner never shrank after oversized seals: peak target %d, after-regret %d", peak, regretted)
	}

	reopened, err := core.Open(ctx, store)
	if err != nil {
		return err
	}
	if err := reopened.SetWriteOptions(core.WriteOptions{AutotuneChunkBytes: cap}); err != nil {
		return err
	}
	resumed := reopened.Tensor("x").EffectiveBounds()
	if resumed != closed {
		return fmt.Errorf("ingest: reopened writer restarted the autotune schedule: closed at %+v, resumed at %+v", closed, resumed)
	}

	res.Rows = append(res.Rows, Row{
		Name: "autotune-target", Value: float64(closed.Target), Unit: "bytes",
		Extra: fmt.Sprintf("base %d, grown to %d, regret-shrunk to %d, resumed at %d after reopen", base, peak, regretted, resumed.Target),
	})
	res.Notes = append(res.Notes,
		fmt.Sprintf("autotune chunk-target trajectory under mixed sizes (cap %d): %v — doubling growth, shrink-on-regret after 120KB oversized seals, schedule persisted across reopen", cap, trajectory))
	return nil
}

// ingestParallel writes the sample set into a fresh dataset on simulated
// S3: `writers` goroutines striding the sample set into one shared
// images+labels tensor pair. It verifies every row landed (reopening the
// flushed dataset) and returns samples/second including the final Flush.
func ingestParallel(ctx context.Context, samples []baselines.Sample, writers int, opts core.WriteOptions) (float64, error) {
	store := storage.NewSimObjectStore(ingestProfile())
	ds, err := core.Create(ctx, store, "ingest")
	if err != nil {
		return 0, err
	}
	if err := ds.SetWriteOptions(opts); err != nil {
		return 0, err
	}
	if _, err := ds.CreateTensor(ctx, core.TensorSpec{
		Name: "images", Htype: "generic", Dtype: tensor.UInt8, Bounds: ingestBounds,
	}); err != nil {
		return 0, err
	}
	if _, err := ds.CreateTensor(ctx, core.TensorSpec{
		Name: "labels", Htype: "class_label", Bounds: ingestBounds,
	}); err != nil {
		return 0, err
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(samples); i += writers {
				arr, err := tensor.FromBytes(tensor.UInt8, samples[i].Shape, samples[i].Data)
				if err == nil {
					// Row-atomic append: images and labels stay aligned
					// however the 16 writers interleave.
					err = ds.Append(ctx, map[string]*tensor.NDArray{
						"images": arr,
						"labels": tensor.Scalar(tensor.Int32, float64(samples[i].Label)),
					})
				}
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("writer %d sample %d: %w", w, i, err)
					}
					mu.Unlock()
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return 0, firstErr
	}
	if err := ds.Flush(ctx); err != nil {
		return 0, err
	}
	elapsed := time.Since(start).Seconds()

	// Verify from storage that every sample landed.
	reopened, err := core.Open(ctx, store)
	if err != nil {
		return 0, err
	}
	for _, name := range []string{"images", "labels"} {
		t := reopened.Tensor(name)
		if t == nil {
			return 0, fmt.Errorf("ingest: tensor %q missing after reopen", name)
		}
		if got := t.Len(); got != uint64(len(samples)) {
			return 0, fmt.Errorf("ingest: %d/%d samples landed in %q", got, len(samples), name)
		}
	}
	return float64(len(samples)) / elapsed, nil
}
