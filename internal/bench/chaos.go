package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/dataloader"
	"repro/internal/simnet"
	"repro/internal/storage"
	"repro/internal/tensor"
	"repro/internal/workload"
)

// chaosFlushRetries bounds both the pipeline's automatic redrive bursts and
// the bench's own Flush retry loop during the faulty ingest phase.
const chaosFlushRetries = 8

// Chaos measures the resilience layer end to end: the same train and ingest
// workloads as the headline scenarios, but running over a fault-injecting
// simulated S3 (seeded transient errors, black-hole stalls, partial reads)
// behind the canonical resilient chain (singleflight cache -> Retry ->
// fault-injecting origin). Every row is gated on a correctness contract, not
// just a throughput number:
//
//   - hot-chunk: one injected transient fault under a 16-way coalesced miss
//     costs exactly ONE extra origin request — the flight leader retries on
//     behalf of all waiters (the Retry-below-singleflight ordering).
//   - train: an epoch over 5%-flaky S3 delivers a batch stream byte-identical
//     to the fault-free epoch, with logical (net-of-retries) origin requests
//     still exactly one per chunk.
//   - ingest: a full ingest over a Put-faulty origin — parked chunk uploads
//     redriven automatically by the flush pipeline under backoff — lands an
//     object set byte-identical to the fault-free ingest.
//   - corruption: an epoch over a wire that silently flips bits and truncates
//     transfers still delivers a byte-identical batch stream — the Verify
//     layer (digests seeded from the chunk checksum manifests at Open)
//     detects and heals every damaged transfer at exactly one extra origin
//     request each, with none quarantined.
//   - crash: a writer killed between chunk upload and root publish leaves
//     the previous generation fully readable; fsck reports only collectable
//     garbage (abandoned staged root, orphan chunks, torn plain metadata),
//     and -repair restores a clean, readable dataset.
func Chaos(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults(384)
	res := &Result{
		ID:     "chaos",
		Title:  fmt.Sprintf("train + ingest of %d samples over faulty simulated S3 (seeded transient errors, stalls, partial reads)", cfg.N),
		Better: "lower",
	}
	res.Notes = append(res.Notes,
		"chain: LRU byte cache (coalesced fetch plans) + loader cache -> Verify (CRC32C + self-heal) -> Counting (logical ledger) -> Retry (capped exp backoff, per-op timeout) -> Faulty -> sim S3",
		"every row asserts a recovery contract: byte-identical delivery, fetch-once net of retries, one extra request per faulted batch or damaged transfer, deterministic worker-death errors, crash-consistent commits")

	if err := chaosHotChunk(ctx, cfg, res); err != nil {
		return nil, err
	}
	if err := chaosBatchedFetch(ctx, cfg, res); err != nil {
		return nil, err
	}
	if err := chaosWorkerDeath(ctx, cfg, res); err != nil {
		return nil, err
	}
	if err := chaosTrain(ctx, cfg, res); err != nil {
		return nil, err
	}
	if err := chaosIngest(ctx, cfg, res); err != nil {
		return nil, err
	}
	if err := chaosCorruptHotChunk(ctx, cfg, res); err != nil {
		return nil, err
	}
	if err := chaosCorruption(ctx, cfg, res); err != nil {
		return nil, err
	}
	if err := chaosCrash(ctx, cfg, res); err != nil {
		return nil, err
	}
	return res, nil
}

// chaosCorruptHotChunk is the silent-fault mirror of the hot-chunk litmus:
// 16 readers coalesce on one cold chunk whose first transfer arrives with a
// flipped bit. The Verify layer under the singleflight cache must detect the
// mismatch against the seeded digest and heal with exactly ONE extra origin
// request — the flight leader re-fetches on behalf of every waiter, and
// nobody ever sees the poisoned bytes.
func chaosCorruptHotChunk(ctx context.Context, cfg Config, res *Result) error {
	mem := storage.NewMemory()
	payload := bytes.Repeat([]byte{0xCD}, 1<<20)
	if err := mem.Put(ctx, "hot/chunk", payload); err != nil {
		return err
	}
	faulty := storage.NewFaulty(mem, storage.FaultConfig{Seed: cfg.Seed, CorruptRate: 1, MaxFaults: 1})
	attempts := storage.NewCounting(faulty)
	verify := storage.NewVerify(attempts, storage.VerifyOptions{})
	verify.SeedDigest("hot/chunk", storage.Checksum(payload))
	cache := storage.NewLRU(verify, 1<<30)

	const readers = 16
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	gate := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-gate
			data, err := cache.Get(ctx, "hot/chunk")
			if err == nil && !bytes.Equal(data, payload) {
				err = fmt.Errorf("chaos: corrupted hot chunk bytes leaked past verification")
			}
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}()
	}
	close(gate)
	wg.Wait()
	if firstErr != nil {
		return fmt.Errorf("chaos: corrupt-hot-chunk reader failed (heal did not absorb the flip): %w", firstErr)
	}
	gets := attempts.Snapshot().Gets
	if gets != 2 {
		return fmt.Errorf("chaos: corrupted hot chunk cost %d origin Gets, want exactly 2 (one poisoned + one heal for all %d waiters)", gets, readers)
	}
	stats := cache.Stats()
	if stats.CorruptionsDetected != 1 || stats.CorruptionsRepaired != 1 {
		return fmt.Errorf("chaos: cache stats report %d detected / %d repaired corruptions, want 1/1", stats.CorruptionsDetected, stats.CorruptionsRepaired)
	}
	res.Rows = append(res.Rows, Row{
		Name: "corruption-extra-requests", Value: float64(gets - 1), Unit: "reqs",
		Extra: fmt.Sprintf("%d coalesced readers, 1 flipped bit, %d origin Gets, 1 heal", readers, gets),
	})
	return nil
}

// chaosCorruption runs the train epoch over a wire that silently damages
// transfers — seeded bit flips and truncations that the transport reports as
// success — with the Verify layer stacked under the byte cache and digests
// seeded from the per-tensor checksum manifests at Open. The contract: the
// delivered batch stream is byte-identical to the fault-free epoch, every
// damaged transfer is detected and healed (none quarantined), and each
// damaged transfer costs exactly ONE extra origin request.
func chaosCorruption(ctx context.Context, cfg Config, res *Result) error {
	spec := workload.ImageSpec{Height: 16, Width: 16, Channels: 3, Seed: cfg.Seed}
	samples := rawSampleSet(cfg, spec)
	bounds := chunk.Bounds{Min: 512, Target: 1 << 10, Max: 2 << 10}
	profile := simnet.S3SameRegion()
	profile.TimeScale = trainScale

	origin := storage.NewSimObjectStore(profile)
	// Silent faults only: no transport errors, so no Retry layer — every
	// recovery below is the integrity machinery's own doing. The combined
	// rate is 1 with a small MaxFaults budget, so EXACTLY chaosDamageBudget
	// transfers arrive damaged regardless of how the readahead scheduler
	// batches requests — the coalesced plans draw too few schedule positions
	// for probabilistic rates to be reliable. A heal re-fetch draws from the
	// same schedule, so one unlucky key can eat several budget units in its
	// heal loop; HealAttempts must exceed the whole budget.
	const chaosDamageBudget = 6
	faulty := storage.NewFaulty(origin, storage.FaultConfig{
		Seed:         cfg.Seed,
		CorruptRate:  0.7,
		TruncateRate: 0.3,
		MaxFaults:    chaosDamageBudget,
	})
	faulty.SetArmed(false)
	logical := storage.NewCounting(faulty)
	verify := storage.NewVerify(logical, storage.VerifyOptions{HealAttempts: chaosDamageBudget + 2, QuarantineAfter: -1})

	if _, err := ingestDeepLake(ctx, logical, samples, bounds); err != nil {
		return err
	}
	openCold := func() (*core.Dataset, *storage.LRU, int64, error) {
		cache := storage.NewLRU(verify, 1<<30)
		ds, err := core.Open(ctx, cache)
		if err != nil {
			return nil, nil, 0, err
		}
		if info := ds.Integrity(); info.SeededDigests == 0 || info.ChunksWithoutChecksum != 0 {
			return nil, nil, 0, fmt.Errorf("chaos: digest seeding incomplete at open: %+v", info)
		}
		chunks := int64(ds.Tensor("images").NumChunks() + ds.Tensor("labels").NumChunks())
		logical.Reset()
		return ds, cache, chunks, nil
	}

	ds, _, _, err := openCold()
	if err != nil {
		return err
	}
	refHash, refN, err := streamHash(ctx, ds, cfg.Workers, cfg.Seed)
	if err != nil {
		return fmt.Errorf("chaos: fault-free reference epoch: %w", err)
	}
	if refN != cfg.N {
		return fmt.Errorf("chaos: reference epoch delivered %d/%d rows", refN, cfg.N)
	}

	ds, cache, chunks, err := openCold()
	if err != nil {
		return err
	}
	faulty.SetArmed(true)
	hash, n, err := streamHash(ctx, ds, cfg.Workers, cfg.Seed)
	faulty.SetArmed(false)
	if err != nil {
		return fmt.Errorf("chaos: epoch over corrupting wire failed (verification must heal silent faults): %w", err)
	}
	if n != cfg.N {
		return fmt.Errorf("chaos: corrupted epoch delivered %d/%d rows", n, cfg.N)
	}
	if hash != refHash {
		return fmt.Errorf("chaos: corrupted epoch batch stream differs from fault-free epoch (a silent fault leaked through)")
	}
	fs := faulty.Stats()
	damaged := fs.Corruptions + fs.Truncations
	if damaged == 0 {
		return fmt.Errorf("chaos: fault schedule damaged nothing (seed %d too sparse for n=%d)", cfg.Seed, cfg.N)
	}
	stats := cache.Stats()
	if stats.CorruptionsDetected != damaged || stats.CorruptionsRepaired != damaged {
		return fmt.Errorf("chaos: %d transfers damaged but verify detected %d / repaired %d", damaged, stats.CorruptionsDetected, stats.CorruptionsRepaired)
	}
	if stats.Quarantined != 0 {
		return fmt.Errorf("chaos: %d keys quarantined during a recoverable epoch", stats.Quarantined)
	}
	// The price of integrity: each damaged transfer costs exactly one extra
	// origin request (the heal re-fetch), on top of fetch-once per chunk.
	snap := logical.Snapshot()
	moved := snap.Gets + snap.RangeGets + snap.BatchRanges
	if moved != chunks+damaged {
		return fmt.Errorf("chaos: corrupted epoch moved %d objects for %d chunks + %d damaged transfers (heals must cost exactly one re-fetch each)", moved, chunks, damaged)
	}
	res.Rows = append(res.Rows, Row{
		Name: "corruption-extra-requests-per-fault", Value: float64(moved-chunks) / float64(damaged), Unit: "reqs",
		Extra: fmt.Sprintf("%d flips + %d truncations over %d chunks, all healed, stream byte-identical", fs.Corruptions, fs.Truncations, chunks),
	})
	res.Notes = append(res.Notes,
		fmt.Sprintf("corruption: %d damaged transfers (%d flipped, %d truncated); verify detected %d, repaired %d, quarantined %d; batch stream byte-identical",
			damaged, fs.Corruptions, fs.Truncations, stats.CorruptionsDetected, stats.CorruptionsRepaired, stats.Quarantined))
	return nil
}

// publishGuillotine simulates a writer killed at the publish point of the
// staged-root commit protocol: once armed, the Put that rewrites
// dataset.json fails permanently. Chunk uploads, plain metadata and the
// staged roots/<gen> snapshot all land; the generation is never published.
type publishGuillotine struct {
	storage.Provider
	armed bool
}

func (g *publishGuillotine) Put(ctx context.Context, key string, data []byte) error {
	if g.armed && key == "dataset.json" {
		return fmt.Errorf("chaos: simulated crash before publishing %q", key)
	}
	return g.Provider.Put(ctx, key, data)
}

// chaosCrash kills a writer between chunk upload and root publish, then
// holds the survivors to the crash-consistency contract: the dataset reopens
// at the previous generation with every published row intact, fsck reports
// the crash footprint (abandoned staged root, orphan chunks, torn plain
// metadata) with NOTHING missing or corrupt, and fsck -repair collects it
// all, after which the dataset is clean and still readable.
func chaosCrash(ctx context.Context, cfg Config, res *Result) error {
	spec := workload.ImageSpec{Height: 16, Width: 16, Channels: 3, Seed: cfg.Seed}
	samples := rawSampleSet(cfg, spec)
	bounds := chunk.Bounds{Min: 512, Target: 1 << 10, Max: 2 << 10}
	half := len(samples) / 2

	mem := storage.NewMemory()
	g := &publishGuillotine{Provider: mem}
	ds, err := core.Create(ctx, g, "chaos-crash")
	if err != nil {
		return err
	}
	images, err := ds.CreateTensor(ctx, core.TensorSpec{Name: "images", Htype: "generic", Dtype: tensor.UInt8, Bounds: bounds})
	if err != nil {
		return err
	}
	labels, err := ds.CreateTensor(ctx, core.TensorSpec{Name: "labels", Htype: "class_label", Bounds: bounds})
	if err != nil {
		return err
	}
	appendRange := func(from, to int) error {
		for _, s := range samples[from:to] {
			arr, err := tensor.FromBytes(tensor.UInt8, s.Shape, s.Data)
			if err != nil {
				return err
			}
			if err := images.Append(ctx, arr); err != nil {
				return err
			}
			if err := labels.Append(ctx, tensor.Scalar(tensor.Int32, float64(s.Label))); err != nil {
				return err
			}
		}
		return nil
	}
	if err := appendRange(0, half); err != nil {
		return err
	}
	if err := ds.Flush(ctx); err != nil {
		return err
	}

	// The kill: the second half's chunks and plain metadata land, the
	// staged root lands, the publish never happens.
	g.armed = true
	if err := appendRange(half, len(samples)); err != nil {
		return err
	}
	if err := ds.Flush(ctx); err == nil {
		return fmt.Errorf("chaos: flush through the publish guillotine should fail")
	}

	back, err := core.Open(ctx, mem)
	if err != nil {
		return fmt.Errorf("chaos: reopen after crash: %w", err)
	}
	if n := back.NumRows(); n != uint64(half) {
		return fmt.Errorf("chaos: crashed dataset reopened at %d rows, want the %d of the published generation", n, half)
	}
	info := back.Integrity()
	if info.AbandonedGeneration != info.Generation+1 {
		return fmt.Errorf("chaos: abandoned generation not detected: %+v", info)
	}
	for _, i := range []int{0, half / 2, half - 1} {
		arr, err := back.Tensor("images").At(ctx, uint64(i))
		if err != nil {
			return fmt.Errorf("chaos: read row %d after crash: %w", i, err)
		}
		if !bytes.Equal(arr.Bytes(), samples[i].Data) {
			return fmt.Errorf("chaos: row %d bytes differ after crash recovery", i)
		}
	}

	rep, err := core.Fsck(ctx, mem, core.FsckOptions{})
	if err != nil {
		return err
	}
	if rep.Clean() {
		return fmt.Errorf("chaos: fsck missed the crashed writer's footprint")
	}
	orphans := 0
	for _, issue := range rep.Issues {
		switch issue.Kind {
		case core.FsckOrphanChunk:
			orphans++
		case core.FsckMissingChunk, core.FsckMissingObject, core.FsckChecksumMismatch, core.FsckMissingRoot:
			return fmt.Errorf("chaos: crash must not lose or corrupt published data: %s", issue)
		}
		if !issue.Repairable {
			return fmt.Errorf("chaos: crash footprint must be fully repairable: %s", issue)
		}
	}
	if orphans == 0 {
		return fmt.Errorf("chaos: no orphan chunks found from the dead generation:\n%s", rep.Format())
	}
	repairRep, err := core.Fsck(ctx, mem, core.FsckOptions{Repair: true})
	if err != nil {
		return err
	}
	if !repairRep.Clean() {
		return fmt.Errorf("chaos: fsck -repair left issues:\n%s", repairRep.Format())
	}
	rep, err = core.Fsck(ctx, mem, core.FsckOptions{})
	if err != nil {
		return err
	}
	if !rep.Clean() || len(rep.Issues) != 0 {
		return fmt.Errorf("chaos: dataset not clean after repair:\n%s", rep.Format())
	}
	back, err = core.Open(ctx, mem)
	if err != nil {
		return fmt.Errorf("chaos: reopen after repair: %w", err)
	}
	if n := back.NumRows(); n != uint64(half) {
		return fmt.Errorf("chaos: repaired dataset has %d rows, want %d", n, half)
	}
	res.Rows = append(res.Rows, Row{
		Name: "crash-orphans-repaired", Value: float64(orphans), Unit: "chunks",
		Extra: fmt.Sprintf("killed before publishing gen %d; reopened at gen %d with %d rows; %d issues repaired", info.AbandonedGeneration, info.Generation, half, len(repairRep.Issues)),
	})
	res.Notes = append(res.Notes,
		fmt.Sprintf("crash: writer killed between chunk upload and root publish; previous generation fully readable, %d orphan chunks collected by fsck -repair", orphans))
	return nil
}

// chaosHotChunk is the singleflight+retry litmus: 16 readers coalesce on one
// cold chunk whose first origin Get is forced to fail transiently. The flight
// leader must retry once on behalf of everyone — origin sees exactly two
// Gets, no waiter sees an error, and the retry surfaces in the cache Stats.
func chaosHotChunk(ctx context.Context, cfg Config, res *Result) error {
	mem := storage.NewMemory()
	payload := bytes.Repeat([]byte{0xAB}, 1<<20)
	if err := mem.Put(ctx, "hot/chunk", payload); err != nil {
		return err
	}
	// MaxFaults 1 + GetErrRate 1: the first Get fails, everything after
	// passes — the minimal reproducible fault.
	faulty := storage.NewFaulty(mem, storage.FaultConfig{Seed: cfg.Seed, GetErrRate: 1, MaxFaults: 1})
	attempts := storage.NewCounting(faulty)
	retry := storage.NewRetry(attempts, storage.RetryOptions{
		Attempts: 4,
		Backoff:  storage.Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond, Seed: cfg.Seed},
	})
	cache := storage.NewLRU(retry, 1<<30)

	const readers = 16
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	gate := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-gate
			data, err := cache.Get(ctx, "hot/chunk")
			if err == nil && !bytes.Equal(data, payload) {
				err = fmt.Errorf("chaos: hot chunk bytes corrupted through retry")
			}
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}()
	}
	close(gate)
	wg.Wait()
	if firstErr != nil {
		return fmt.Errorf("chaos: hot-chunk reader failed (fault leaked past retry): %w", firstErr)
	}
	gets := attempts.Snapshot().Gets
	if gets != 2 {
		return fmt.Errorf("chaos: hot chunk cost %d origin Gets, want exactly 2 (one fault + one retry for all %d waiters)", gets, readers)
	}
	stats := cache.Stats()
	if stats.Retries != 1 {
		return fmt.Errorf("chaos: cache stats report %d retries, want 1", stats.Retries)
	}
	if stats.Faults != 1 {
		return fmt.Errorf("chaos: cache stats report %d faults, want 1", stats.Faults)
	}
	res.Rows = append(res.Rows, Row{
		Name: "hot-chunk-extra-requests", Value: float64(gets - 1), Unit: "reqs",
		Extra: fmt.Sprintf("%d coalesced readers, %d origin Gets, %d retry", readers, gets, stats.Retries),
	})
	return nil
}

// chaosBatchedFetch is the coalesced-fetch analogue of the hot-chunk litmus:
// the LRU's fetch planner packs N cold chunks into ONE batched ranged origin
// request, and that request is forced to fault mid-batch. The batch contract
// (ranges served before the cut stay served) plus Retry's missing-only
// re-issue must make the fault cost exactly ONE extra origin request — never
// a resend of bytes already received, never one recovery request per waiter.
func chaosBatchedFetch(ctx context.Context, cfg Config, res *Result) error {
	mem := storage.NewMemory()
	const chunks = 12
	const chunkBytes = 64 << 10
	keys := make([]string, chunks)
	for i := range keys {
		keys[i] = fmt.Sprintf("cold/chunk-%03d", i)
		if err := mem.Put(ctx, keys[i], bytes.Repeat([]byte{byte(i)}, chunkBytes)); err != nil {
			return err
		}
	}
	// MaxFaults 1 + GetErrRate 1: the first batched get faults at a seeded
	// mid-batch cut point, everything after passes.
	faulty := storage.NewFaulty(mem, storage.FaultConfig{Seed: cfg.Seed, GetErrRate: 1, MaxFaults: 1})
	attempts := storage.NewCounting(faulty)
	retry := storage.NewRetry(attempts, storage.RetryOptions{
		Attempts: 4,
		Backoff:  storage.Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond, Seed: cfg.Seed},
	})
	cache := storage.NewLRU(retry, 1<<30)

	fetched, err := cache.Prefetch(ctx, keys, storage.PlanOptions{SizeHint: chunkBytes})
	if err != nil {
		return fmt.Errorf("chaos: coalesced prefetch failed (batch fault leaked past retry): %w", err)
	}
	if fetched != chunks {
		return fmt.Errorf("chaos: coalesced prefetch landed %d/%d chunks", fetched, chunks)
	}
	snap := attempts.Snapshot()
	if snap.BatchGets != 2 {
		return fmt.Errorf("chaos: one mid-batch fault cost %d batched origin requests, want exactly 2 (the batch + one missing-tail retry)", snap.BatchGets)
	}
	if snap.BatchRanges >= 2*chunks {
		return fmt.Errorf("chaos: retry resent already-received ranges (%d wire ranges for %d chunks)", snap.BatchRanges, chunks)
	}
	if snap.Gets != 0 || snap.RangeGets != 0 {
		return fmt.Errorf("chaos: recovery degraded to per-chunk requests: %+v", snap)
	}
	// Every chunk must now be cache-resident and intact, with zero further
	// origin traffic.
	for i, key := range keys {
		data, err := cache.Get(ctx, key)
		if err != nil {
			return err
		}
		if len(data) != chunkBytes || data[0] != byte(i) || data[chunkBytes-1] != byte(i) {
			return fmt.Errorf("chaos: chunk %q corrupted through the faulted batch", key)
		}
	}
	if after := attempts.Snapshot(); after.Requests() != snap.Requests() {
		return fmt.Errorf("chaos: post-prefetch reads reached the origin (%d -> %d requests)", snap.Requests(), after.Requests())
	}
	res.Rows = append(res.Rows, Row{
		Name: "batched-fault-extra-requests", Value: float64(snap.BatchGets - 1), Unit: "reqs",
		Extra: fmt.Sprintf("%d chunks in one fetch plan, %d batched requests, %d wire ranges (fault cut mid-batch)",
			chunks, snap.BatchGets, snap.BatchRanges),
	})
	return nil
}

// chaosWorkerDeath kills a dataloader worker goroutine mid-epoch (user code
// calling runtime.Goexit inside a Transform — the Go analogue of a worker
// process dying) and asserts the deterministic error-delivery contract: the
// delivered rows are an in-order prefix of full batches strictly before the
// dying row's delivery position, and Loader.Err reports ErrWorkerDied with
// that position — identically on every run and at any worker count.
func chaosWorkerDeath(ctx context.Context, cfg Config, res *Result) error {
	rows := cfg.N
	if rows > 128 {
		rows = 128
	}
	killRow := rows / 2
	mem := storage.NewMemory()
	ds, err := core.Create(ctx, mem, "chaos-death")
	if err != nil {
		return err
	}
	x, err := ds.CreateTensor(ctx, core.TensorSpec{
		Name: "x", Dtype: tensor.Int32,
		Bounds: chunk.Bounds{Min: 128, Target: 256, Max: 512},
	})
	if err != nil {
		return err
	}
	for i := 0; i < rows; i++ {
		arr, err := tensor.FromFloat64s(tensor.Int32, []int{4},
			[]float64{float64(i), float64(i + 1), float64(i + 2), float64(i + 3)})
		if err != nil {
			return err
		}
		if err := x.Append(ctx, arr); err != nil {
			return err
		}
	}
	if err := ds.Flush(ctx); err != nil {
		return err
	}

	var errTexts []string
	for run, workers := range []int{1, cfg.Workers} {
		l := dataloader.ForDataset(ds, dataloader.Options{
			BatchSize: 8, Workers: workers,
			Transform: func(s map[string]*tensor.NDArray) (map[string]*tensor.NDArray, error) {
				if v, _ := s["x"].At(0); int(v) == killRow {
					runtime.Goexit() // the kill: this worker goroutine dies here
				}
				return s, nil
			},
		})
		next := 0
		for b := range l.Batches(ctx) {
			if len(b.Samples) != 8 {
				return fmt.Errorf("chaos: worker death leaked a partial batch of %d (run %d, %d workers)", len(b.Samples), run, workers)
			}
			for _, s := range b.Samples {
				if v, _ := s["x"].At(0); int(v) != next {
					return fmt.Errorf("chaos: row %v delivered out of order after worker death (want %d)", v, next)
				}
				next++
			}
		}
		if next > killRow {
			return fmt.Errorf("chaos: %d rows delivered at/past the dying row %d", next, killRow)
		}
		err := l.Err()
		if !errors.Is(err, dataloader.ErrWorkerDied) {
			return fmt.Errorf("chaos: worker death surfaced as %v, want ErrWorkerDied (silent truncation?)", err)
		}
		errTexts = append(errTexts, err.Error())
	}
	if errTexts[0] != errTexts[1] {
		return fmt.Errorf("chaos: worker-death error not deterministic across worker counts: %q vs %q", errTexts[0], errTexts[1])
	}
	res.Rows = append(res.Rows, Row{
		Name: "worker-death-kill-position", Value: float64(killRow), Unit: "row",
		Extra: fmt.Sprintf("goroutine killed at row %d of %d; in-order prefix delivered, then %q — identical at 1 and %d workers",
			killRow, rows, errTexts[0], cfg.Workers),
	})
	return nil
}

// chaosTrain streams one shuffled epoch over a faulty origin and proves the
// delivered batch stream is byte-identical to the fault-free epoch, with the
// logical request ledger (counted above Retry, so net of recovery traffic)
// still exactly one fetch per chunk.
func chaosTrain(ctx context.Context, cfg Config, res *Result) error {
	spec := workload.ImageSpec{Height: 16, Width: 16, Channels: 3, Seed: cfg.Seed}
	samples := rawSampleSet(cfg, spec)
	bounds := chunk.Bounds{Min: 512, Target: 1 << 10, Max: 2 << 10}
	profile := simnet.S3SameRegion()
	profile.TimeScale = trainScale

	origin := storage.NewSimObjectStore(profile)
	faulty := storage.NewFaulty(origin, storage.FaultConfig{
		Seed:         cfg.Seed,
		GetErrRate:   0.05,
		RangeErrRate: 0.05,
		StallRate:    0.02,
		PartialRate:  0.03,
		PartialBytes: 256,
	})
	retry := storage.NewRetry(faulty, storage.RetryOptions{
		Attempts:  6,
		OpTimeout: 200 * time.Millisecond,
		Backoff:   storage.Backoff{Base: 2 * time.Millisecond, Max: 50 * time.Millisecond, Seed: cfg.Seed},
	})
	logical := storage.NewCounting(retry)

	// Ingest and the fault-free reference epoch run disarmed; only the
	// epoch under study sees faults.
	faulty.SetArmed(false)
	if _, err := ingestDeepLake(ctx, logical, samples, bounds); err != nil {
		return err
	}
	openCold := func() (*core.Dataset, int64, error) {
		// A fresh byte cache per epoch run keeps the run cold, and its
		// presence makes the readahead scheduler's coalesced fetch plans run
		// through the faulty wire — batched multi-range requests are in the
		// chaos chain, not just per-chunk Gets.
		cache := storage.NewLRU(logical, 1<<30)
		ds, err := core.Open(ctx, cache)
		if err != nil {
			return nil, 0, err
		}
		chunks := int64(ds.Tensor("images").NumChunks() + ds.Tensor("labels").NumChunks())
		logical.Reset()
		return ds, chunks, nil
	}

	ds, _, err := openCold()
	if err != nil {
		return err
	}
	cleanStart := time.Now()
	refHash, refN, err := streamHash(ctx, ds, cfg.Workers, cfg.Seed)
	if err != nil {
		return fmt.Errorf("chaos: fault-free reference epoch: %w", err)
	}
	cleanElapsed := time.Since(cleanStart)
	if refN != cfg.N {
		return fmt.Errorf("chaos: reference epoch delivered %d/%d rows", refN, cfg.N)
	}

	ds, chunks, err := openCold()
	if err != nil {
		return err
	}
	faulty.SetArmed(true)
	chaosStart := time.Now()
	hash, n, err := streamHash(ctx, ds, cfg.Workers, cfg.Seed)
	chaosElapsed := time.Since(chaosStart)
	faulty.SetArmed(false)
	if err != nil {
		return fmt.Errorf("chaos: epoch over faulty origin failed (retry layer must absorb transient faults): %w", err)
	}
	if n != cfg.N {
		return fmt.Errorf("chaos: faulty epoch delivered %d/%d rows", n, cfg.N)
	}
	if hash != refHash {
		return fmt.Errorf("chaos: faulty epoch batch stream differs from fault-free epoch (byte-identity broken by recovery)")
	}
	// Fetch-once under coalescing: every chunk object moved over the wire
	// exactly once net of retries (whole gets + range gets + ranges inside
	// batched gets), while the logical request count stays strictly below
	// the chunk count — the fetch planner kept batching even under faults.
	snap := logical.Snapshot()
	if moved := snap.Gets + snap.RangeGets + snap.BatchRanges; moved != chunks {
		return fmt.Errorf("chaos: faulty epoch moved %d chunk objects for %d chunks (fetch-once net of retries broken)", moved, chunks)
	}
	if got := snap.Requests(); got >= chunks {
		return fmt.Errorf("chaos: faulty epoch made %d logical origin requests for %d chunks (coalescing collapsed under faults)", got, chunks)
	}
	// Generous recovery bound: stalls cost an OpTimeout each, so the faulty
	// epoch is slower, but it must not degrade to anything like a restart.
	if limit := 20*cleanElapsed + 10*time.Second; chaosElapsed > limit {
		return fmt.Errorf("chaos: faulty epoch took %s vs %s clean (recovery too slow, limit %s)", chaosElapsed, cleanElapsed, limit)
	}
	rs, fs := retry.Stats(), faulty.Stats()
	res.Rows = append(res.Rows, Row{
		Name: "train-slowdown", Value: chaosElapsed.Seconds() / cleanElapsed.Seconds(), Unit: "x",
		Extra: fmt.Sprintf("%s vs %s clean; %d faults (%d err, %d stall, %d partial), %d retries, stream byte-identical",
			chaosElapsed.Round(time.Millisecond), cleanElapsed.Round(time.Millisecond),
			fs.Total(), fs.Errors, fs.Stalls, fs.Partials, rs.Retries),
	})
	res.Notes = append(res.Notes,
		fmt.Sprintf("train: %d injected faults recovered by %d retries; %d chunks moved once each in %d coalesced logical requests",
			fs.Total(), rs.Retries, chunks, snap.Requests()))
	return nil
}

// jsonEqualIgnoringTimes compares two JSON documents with every object key
// ending in "_at" (wall-clock timestamps) removed, recursively.
func jsonEqualIgnoringTimes(a, b []byte) bool {
	var va, vb any
	if json.Unmarshal(a, &va) != nil || json.Unmarshal(b, &vb) != nil {
		return bytes.Equal(a, b)
	}
	return reflect.DeepEqual(stripTimes(va), stripTimes(vb))
}

func stripTimes(v any) any {
	switch t := v.(type) {
	case map[string]any:
		for k, vv := range t {
			if strings.HasSuffix(k, "_at") {
				delete(t, k)
				continue
			}
			t[k] = stripTimes(vv)
		}
	case []any:
		for i, vv := range t {
			t[i] = stripTimes(vv)
		}
	}
	return v
}

// chaosIngest writes the sample set twice with an identical deterministic
// schedule — once onto a clean origin, once onto a Put-faulty origin where
// failed chunk uploads park in the flush pipeline and are redriven
// automatically under backoff — and byte-compares the two stored object
// sets. Appends that surface a DeferredFlushError keep going (the bytes are
// parked, not lost), and Flush is retried while it reports transient
// failures, exercising the sticky-error-clearing redrive path.
func chaosIngest(ctx context.Context, cfg Config, res *Result) error {
	spec := workload.ImageSpec{Height: 16, Width: 16, Channels: 3, Seed: cfg.Seed}
	samples := rawSampleSet(cfg, spec)
	bounds := chunk.Bounds{Min: 512, Target: 1 << 10, Max: 2 << 10}
	profile := simnet.S3SameRegion()
	profile.TimeScale = trainScale

	run := func(faultCfg *storage.FaultConfig) (storage.Provider, *storage.Faulty, time.Duration, error) {
		origin := storage.NewSimObjectStore(profile)
		var (
			store  storage.Provider = origin
			faulty *storage.Faulty
		)
		if faultCfg != nil {
			faulty = storage.NewFaulty(origin, *faultCfg)
			faulty.SetArmed(false) // arm only after dataset setup
			store = faulty
		}
		ds, err := core.Create(ctx, store, "chaos-ingest")
		if err != nil {
			return nil, nil, 0, err
		}
		if err := ds.SetWriteOptions(core.WriteOptions{
			FlushWorkers: 4, MaxPending: 8,
			FlushRetries: chaosFlushRetries,
			FlushBackoff: storage.Backoff{Base: 2 * time.Millisecond, Max: 50 * time.Millisecond, Seed: cfg.Seed},
		}); err != nil {
			return nil, nil, 0, err
		}
		for _, spec := range []core.TensorSpec{
			{Name: "images", Htype: "generic", Dtype: tensor.UInt8, Bounds: bounds},
			{Name: "labels", Htype: "class_label", Bounds: bounds},
		} {
			if _, err := ds.CreateTensor(ctx, spec); err != nil {
				return nil, nil, 0, err
			}
		}
		if faulty != nil {
			faulty.SetArmed(true)
		}
		start := time.Now()
		// Single writer: the append order (and so every stored byte) is
		// deterministic; only the upload schedule sees faults.
		for i, s := range samples {
			arr, err := tensor.FromBytes(tensor.UInt8, s.Shape, s.Data)
			if err == nil {
				err = ds.Append(ctx, map[string]*tensor.NDArray{
					"images": arr,
					"labels": tensor.Scalar(tensor.Int32, float64(s.Label)),
				})
			}
			var dfe *core.DeferredFlushError
			if errors.As(err, &dfe) {
				// Uploads are failing right now; the row IS recorded and the
				// chunk parked for redrive. Keep ingesting.
				continue
			}
			if err != nil {
				return nil, nil, 0, fmt.Errorf("chaos: ingest sample %d: %w", i, err)
			}
		}
		// Flush drains the pipeline (redriving parked chunks) and persists
		// metadata; metadata Puts hit the faulty origin directly, so retry
		// the whole barrier while it fails transiently.
		// Every failed barrier consumes at least one fault from the capped
		// schedule, so budgeting an attempt per possible fault guarantees the
		// loop converges under any goroutine interleaving (which faults land
		// on chunk uploads vs metadata Puts depends on flush-worker timing).
		attempts := chaosFlushRetries
		if faultCfg != nil {
			attempts += int(faultCfg.MaxFaults)
		}
		var flushErr error
		for attempt := 0; attempt < attempts; attempt++ {
			if flushErr = ds.Flush(ctx); flushErr == nil {
				break
			}
			if !storage.IsRetryable(flushErr) && !errors.Is(flushErr, context.DeadlineExceeded) {
				return nil, nil, 0, fmt.Errorf("chaos: ingest flush failed non-transiently: %w", flushErr)
			}
		}
		if flushErr != nil {
			return nil, nil, 0, fmt.Errorf("chaos: ingest flush still failing after %d attempts: %w", attempts, flushErr)
		}
		elapsed := time.Since(start)
		if faulty != nil {
			faulty.SetArmed(false)
		}
		return store, faulty, elapsed, nil
	}

	cleanStore, _, cleanElapsed, err := run(nil)
	if err != nil {
		return err
	}
	// Cap the schedule at a quarter of the expected chunk uploads: plenty of
	// parked-and-redriven chunks, but the tail of the run (including the
	// final metadata Puts) is guaranteed to converge for any seed.
	faultCfg := storage.FaultConfig{Seed: cfg.Seed, PutErrRate: 0.1, MaxFaults: int64(len(samples))/4 + 2}
	chaosStore, faulty, chaosElapsed, err := run(&faultCfg)
	if err != nil {
		return err
	}

	// The two origins must hold byte-identical object sets: faults may delay
	// uploads, never change or lose what lands.
	cleanKeys, err := cleanStore.List(ctx, "")
	if err != nil {
		return err
	}
	chaosKeys, err := chaosStore.List(ctx, "")
	if err != nil {
		return err
	}
	if len(cleanKeys) != len(chaosKeys) {
		return fmt.Errorf("chaos: faulty ingest stored %d objects, clean stored %d", len(chaosKeys), len(cleanKeys))
	}
	for i, key := range cleanKeys {
		if chaosKeys[i] != key {
			return fmt.Errorf("chaos: object set diverged at %q vs %q", chaosKeys[i], key)
		}
		want, err := cleanStore.Get(ctx, key)
		if err != nil {
			return err
		}
		got, err := chaosStore.Get(ctx, key)
		if err != nil {
			return err
		}
		// The root metadata files — dataset.json, the version tree, and the
		// staged generation snapshots that embed both — carry wall-clock
		// creation/commit timestamps that legitimately differ between the
		// runs; compare them with timestamps stripped. Every data-bearing
		// object (chunks, chunk sets, encoders, tensor metadata) must match
		// byte for byte.
		if key == "dataset.json" || key == "version_control.json" || strings.HasPrefix(key, "roots/") {
			if !jsonEqualIgnoringTimes(got, want) {
				return fmt.Errorf("chaos: %q differs beyond timestamps after faulty ingest", key)
			}
			continue
		}
		if !bytes.Equal(got, want) {
			return fmt.Errorf("chaos: stored bytes differ for %q after faulty ingest", key)
		}
	}
	fs := faulty.Stats()
	if fs.Total() == 0 {
		return fmt.Errorf("chaos: fault schedule injected nothing into the ingest (seed %d too sparse for n=%d)", cfg.Seed, cfg.N)
	}
	res.Rows = append(res.Rows, Row{
		Name: "ingest-slowdown", Value: chaosElapsed.Seconds() / cleanElapsed.Seconds(), Unit: "x",
		Extra: fmt.Sprintf("%s vs %s clean; %d Put faults parked+redriven, %d objects byte-identical",
			chaosElapsed.Round(time.Millisecond), cleanElapsed.Round(time.Millisecond), fs.Total(), len(cleanKeys)),
	})
	res.Notes = append(res.Notes,
		fmt.Sprintf("ingest: %d injected Put faults; all %d stored objects byte-identical to the fault-free run", fs.Total(), len(cleanKeys)))
	return nil
}
