package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/dataloader"
	"repro/internal/simnet"
	"repro/internal/storage"
	"repro/internal/tensor"
	"repro/internal/workload"
)

// AblationChunkSize sweeps the chunk target size (§3.4-3.5: the default 8MB
// trades request count against transfer granularity). Measured: epoch time
// and GET-request count streaming from simulated S3.
func AblationChunkSize(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults(400)
	samples, err := jpegSampleSet(cfg, workload.Small250())
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "ablation-chunksize", Title: "chunk target size sweep, streaming from S3", Better: "lower"}
	res.Notes = append(res.Notes,
		"epoch streams raw bytes at real-time IO scale; random reads one sample per request",
		"small chunks pay per-request latency on scans; huge chunks pay full-chunk transfer on point reads")
	profile := simnet.S3SameRegion()
	profile.TimeScale = 1 // real-time IO so the trade-off is visible
	for _, target := range []int{64 << 10, 256 << 10, 1 << 20, 8 << 20, 32 << 20} {
		bounds := chunk.Bounds{Min: target / 2, Target: target, Max: target * 2}
		inner := storage.NewSimObjectStore(profile)
		counting := storage.NewCounting(inner)
		ds, err := ingestDeepLake(ctx, counting, samples, bounds)
		if err != nil {
			return nil, err
		}
		counting.Reset()
		n, dur, err := deepLakeEpochOpts(ctx, ds, cfg.Workers, false, true)
		if err != nil {
			return nil, err
		}
		if n != cfg.N {
			return nil, fmt.Errorf("chunksize %d: delivered %d/%d", target, n, cfg.N)
		}
		// Random point reads: one sample from each of 8 positions,
		// through a cold loader cache (tensor.At fetches the chunk).
		randStart := time.Now()
		img := ds.Tensor("images")
		for k := 0; k < 8; k++ {
			idx := uint64(k * (cfg.N / 8))
			if _, err := img.At(ctx, idx); err != nil {
				return nil, err
			}
		}
		randDur := time.Since(randStart)
		res.Rows = append(res.Rows, Row{
			Name:  fmt.Sprintf("target-%s", byteSize(target)),
			Value: dur.Seconds(), Unit: "s",
			Extra: fmt.Sprintf("%d GETs; 8 point reads %.3fs", counting.Requests(), randDur.Seconds()),
		})
	}
	return res, nil
}

// AblationShuffleBuffer sweeps the shuffle buffer (§3.5: buffer cache of
// fetched-but-unused data instead of a shuffle cluster). Measured: epoch
// time and shuffle quality (mean normalized displacement; 0 = sequential,
// ~0.33 = uniform shuffle).
func AblationShuffleBuffer(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults(1000)
	samples, err := jpegSampleSet(cfg, workload.ImageSpec{Height: 64, Width: 64, Channels: 3, Seed: 12})
	if err != nil {
		return nil, err
	}
	profile := simnet.S3SameRegion()
	profile.TimeScale = 1
	store := storage.NewSimObjectStore(profile)
	ds, err := ingestDeepLake(ctx, store, samples, chunk.Bounds{Min: 128 << 10, Target: 256 << 10, Max: 512 << 10})
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "ablation-shufflebuffer", Title: "shuffle buffer size: epoch time vs shuffle quality (remote store)", Better: "lower"}
	res.Notes = append(res.Notes,
		"displacement 0 = sequential order, ~0.33 = uniform shuffle",
		"chunk-aware shuffling keeps fetch locality even at large buffers (§3.5)")
	for _, buf := range []int{1, 16, 128, 1024} {
		l := dataloader.ForDataset(ds, dataloader.Options{
			BatchSize: 32, Workers: cfg.Workers, Shuffle: true, ShuffleBuffer: buf, Seed: 7,
			RawBytes: true,
		})
		n := 0
		start := time.Now()
		for b := range l.Batches(ctx) {
			n += len(b.Samples)
		}
		if err := l.Err(); err != nil {
			return nil, err
		}
		dur := time.Since(start)
		if n != cfg.N {
			return nil, fmt.Errorf("shufflebuffer %d: delivered %d/%d", buf, n, cfg.N)
		}
		hits, misses := l.CacheStats()
		quality := shuffleQuality(ctx, ds, buf)
		res.Rows = append(res.Rows, Row{
			Name:  fmt.Sprintf("buffer-%d", buf),
			Value: dur.Seconds(), Unit: "s",
			Extra: fmt.Sprintf("displacement %.3f, cache %d/%d hits", quality, hits, hits+misses),
		})
	}
	return res, nil
}

// shuffleQuality computes mean |position - original| / N over the shuffled
// visit order (0 = sequential, ~0.33 = uniform permutation).
func shuffleQuality(ctx context.Context, ds *core.Dataset, buf int) float64 {
	n := int(ds.NumRows())
	if n == 0 {
		return 0
	}
	order := dataloader.VisitOrder(ds, true, buf, 7)
	var sum float64
	for pos, row := range order {
		d := float64(pos - row)
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum / float64(n) / float64(n)
}

// AblationWorkers sweeps loader worker count (§4.6 scheduler sizing).
func AblationWorkers(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults(800)
	samples, err := jpegSampleSet(cfg, workload.Small250())
	if err != nil {
		return nil, err
	}
	store := storage.NewMemory()
	ds, err := ingestDeepLake(ctx, store, samples, chunk.DefaultBounds())
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "ablation-workers", Title: "dataloader worker scaling", Better: "higher"}
	for _, w := range []int{1, 2, 4, 8, 16} {
		n, dur, err := deepLakeEpoch(ctx, ds, w, false)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Row{
			Name:  fmt.Sprintf("workers-%d", w),
			Value: float64(n) / dur.Seconds(), Unit: "img/s",
		})
	}
	return res, nil
}

// AblationVersionDepth measures dataset-open latency against commit-chain
// depth: chunk resolution walks the version tree reading one chunk_set per
// ancestor (§4.2), so deep histories cost more at open time while reads
// stay O(1) afterwards.
func AblationVersionDepth(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults(50)
	res := &Result{ID: "ablation-versiondepth", Title: "dataset open latency vs commit depth", Better: "lower"}
	for _, depth := range []int{1, 8, 32, 64} {
		store := storage.NewMemory()
		ds, err := core.Create(ctx, store, "versions")
		if err != nil {
			return nil, err
		}
		x, err := ds.CreateTensor(ctx, core.TensorSpec{Name: "x", Dtype: tensor.Int32,
			Bounds: chunk.Bounds{Min: 64, Target: 128, Max: 256}})
		if err != nil {
			return nil, err
		}
		for d := 0; d < depth; d++ {
			for k := 0; k < cfg.N/depth+1; k++ {
				if err := x.Append(ctx, tensor.Scalar(tensor.Int32, float64(d))); err != nil {
					return nil, err
				}
			}
			if _, err := ds.Commit(ctx, fmt.Sprintf("commit %d", d)); err != nil {
				return nil, err
			}
		}
		start := time.Now()
		reopened, err := core.Open(ctx, store)
		if err != nil {
			return nil, err
		}
		openDur := time.Since(start)
		// Post-open read latency stays flat.
		start = time.Now()
		if _, err := reopened.Tensor("x").At(ctx, 0); err != nil {
			return nil, err
		}
		readDur := time.Since(start)
		res.Rows = append(res.Rows, Row{
			Name:  fmt.Sprintf("depth-%d", depth),
			Value: openDur.Seconds() * 1000, Unit: "ms",
			Extra: fmt.Sprintf("first read %.3fms", float64(readDur.Microseconds())/1000),
		})
	}
	return res, nil
}

func byteSize(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKB", n>>10)
	}
	return fmt.Sprintf("%dB", n)
}
