package bench

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/baselines"
	"repro/internal/chunk"
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/dataloader"
	"repro/internal/gpusim"
	"repro/internal/simnet"
	"repro/internal/storage"
	"repro/internal/tensor"
	"repro/internal/workload"
)

// rawSampleSet synthesizes n raw (uncompressed) images.
func rawSampleSet(cfg Config, spec workload.ImageSpec) []baselines.Sample {
	if cfg.ImageSide > 0 {
		spec.Height, spec.Width = cfg.ImageSide, cfg.ImageSide
	}
	out := make([]baselines.Sample, cfg.N)
	for i := range out {
		img := spec.Image(i)
		lbl, _ := workload.Label(cfg.Seed, i, 1000).Item()
		out[i] = baselines.Sample{
			Index: i, Data: img.Bytes(), Shape: img.Shape(),
			Encoding: "raw", Label: int32(lbl),
		}
	}
	return out
}

// jpegSampleSet synthesizes n JPEG-encoded images.
func jpegSampleSet(cfg Config, spec workload.ImageSpec) ([]baselines.Sample, error) {
	if cfg.ImageSide > 0 {
		spec.Height, spec.Width = cfg.ImageSide, cfg.ImageSide
	}
	codec, err := compress.SampleByName("jpeg")
	if err != nil {
		return nil, err
	}
	out := make([]baselines.Sample, cfg.N)
	for i := range out {
		img := spec.Image(i)
		s := img.Shape()
		enc, err := codec.Encode(img.Bytes(), s[0], s[1], s[2])
		if err != nil {
			return nil, err
		}
		lbl, _ := workload.Label(cfg.Seed, i, 1000).Item()
		out[i] = baselines.Sample{Index: i, Data: enc, Shape: s, Encoding: "jpeg", Label: int32(lbl)}
	}
	return out, nil
}

// ingestDeepLake writes a sample set into a fresh Deep Lake dataset on the
// provider. JPEG samples take the direct-copy path (§5).
func ingestDeepLake(ctx context.Context, store storage.Provider, samples []baselines.Sample, bounds chunk.Bounds) (*core.Dataset, error) {
	return ingestDeepLakeOpts(ctx, store, samples, bounds, core.WriteOptions{})
}

// ingestDeepLakeOpts is ingestDeepLake with explicit write options, for
// runners that exercise the ingest-time knobs (chunk-size autotuning,
// background flush workers).
func ingestDeepLakeOpts(ctx context.Context, store storage.Provider, samples []baselines.Sample, bounds chunk.Bounds, opts core.WriteOptions) (*core.Dataset, error) {
	ds, err := core.Create(ctx, store, "bench")
	if err != nil {
		return nil, err
	}
	if err := ds.SetWriteOptions(opts); err != nil {
		return nil, err
	}
	spec := core.TensorSpec{Name: "images", Htype: "generic", Dtype: tensor.UInt8, Bounds: bounds}
	if len(samples) > 0 && samples[0].Encoding == "jpeg" {
		spec = core.TensorSpec{Name: "images", Htype: "image", SampleCompression: "jpeg", Bounds: bounds}
	}
	images, err := ds.CreateTensor(ctx, spec)
	if err != nil {
		return nil, err
	}
	labels, err := ds.CreateTensor(ctx, core.TensorSpec{Name: "labels", Htype: "class_label", Bounds: bounds})
	if err != nil {
		return nil, err
	}
	for _, s := range samples {
		if s.Encoding == "jpeg" {
			if err := images.AppendEncoded(ctx, s.Data); err != nil {
				return nil, err
			}
		} else {
			arr, err := tensor.FromBytes(tensor.UInt8, s.Shape, s.Data)
			if err != nil {
				return nil, err
			}
			if err := images.Append(ctx, arr); err != nil {
				return nil, err
			}
		}
		if err := labels.Append(ctx, tensor.Scalar(tensor.Int32, float64(s.Label))); err != nil {
			return nil, err
		}
	}
	if err := ds.Flush(ctx); err != nil {
		return nil, err
	}
	return ds, nil
}

// Fig6Ingestion reproduces Fig 6: serially ingesting N uncompressed
// FFHQ-like images into each format on a local-disk cost model (lower is
// better). Expected shape: Deep Lake on par with binary formats
// (WebDataset, Beton) and far ahead of static array formats (Zarr, N5),
// with file-per-sample paying one request per image.
func Fig6Ingestion(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults(64)
	samples := rawSampleSet(cfg, workload.FFHQLike())
	res := &Result{ID: "fig6", Title: fmt.Sprintf("ingest %d raw images into each format", cfg.N), Better: "lower"}
	res.Notes = append(res.Notes,
		"synthetic FFHQ-like images; simulated local-disk write costs",
		"reported time = serialization CPU time + simulated storage IO time")

	newStore := func() *storage.Sim { return storage.NewSimObjectStore(simnet.Local()) }
	addRow := func(name string, store *storage.Sim, cpu time.Duration) {
		_, in, _, simulated := store.Network().Stats()
		res.Rows = append(res.Rows, Row{Name: name, Value: cpu.Seconds() + simulated.Seconds(), Unit: "s",
			Extra: fmt.Sprintf("%.1f MB written", float64(in)/1e6)})
	}

	// Deep Lake.
	{
		store := newStore()
		start := time.Now()
		if _, err := ingestDeepLake(ctx, store, samples, chunk.DefaultBounds()); err != nil {
			return nil, err
		}
		addRow("deeplake", store, time.Since(start))
	}
	for _, f := range []baselines.Format{
		baselines.WebDataset{},
		baselines.Beton{},
		baselines.ArrayStore{Flavor: "zarr"},
		baselines.ArrayStore{Flavor: "n5"},
		baselines.TFRecord{},
		baselines.Squirrel{},
		baselines.FileSample{},
		baselines.ParquetLite{},
	} {
		store := newStore()
		start := time.Now()
		if err := f.Write(ctx, store, samples); err != nil {
			return nil, err
		}
		addRow(f.Name(), store, time.Since(start))
	}
	return res, nil
}

// countingIterate measures a full decoded pass over a baseline format.
func countingIterate(ctx context.Context, f baselines.Format, store storage.Provider, workers int) (int, time.Duration, error) {
	var n int64
	start := time.Now()
	err := f.Iterate(ctx, store, workers, func(baselines.Sample) error {
		atomic.AddInt64(&n, 1)
		return nil
	})
	return int(atomic.LoadInt64(&n)), time.Since(start), err
}

// deepLakeEpoch measures a full decoded pass with the streaming dataloader.
func deepLakeEpoch(ctx context.Context, ds *core.Dataset, workers int, shuffle bool) (int, time.Duration, error) {
	return deepLakeEpochOpts(ctx, ds, workers, shuffle, false)
}

func deepLakeEpochOpts(ctx context.Context, ds *core.Dataset, workers int, shuffle, rawBytes bool) (int, time.Duration, error) {
	l := dataloader.ForDataset(ds, dataloader.Options{
		BatchSize: 32, Workers: workers, Shuffle: shuffle, Fields: []string{"images", "labels"},
		RawBytes: rawBytes,
	})
	n := 0
	start := time.Now()
	for b := range l.Batches(ctx) {
		n += len(b.Samples)
	}
	return n, time.Since(start), l.Err()
}

// Fig7LocalLoaders reproduces Fig 7: images/sec iterating N small JPEG
// images in a training loop without a model, on local storage (higher is
// better). Expected shape: Deep Lake and Beton (FFCV) lead; the naive
// file-per-sample loader (PyTorch default) trails.
func Fig7LocalLoaders(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults(2000)
	samples, err := jpegSampleSet(cfg, workload.Small250())
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "fig7", Title: fmt.Sprintf("iterate %d jpeg images, local storage", cfg.N), Better: "higher"}
	res.Notes = append(res.Notes, "decode to raw pixels included in every loader; no model attached")

	// Deep Lake loader.
	{
		store := storage.NewMemory()
		ds, err := ingestDeepLake(ctx, store, samples, chunk.DefaultBounds())
		if err != nil {
			return nil, err
		}
		n, dur, err := deepLakeEpoch(ctx, ds, cfg.Workers, false)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Row{Name: "deeplake", Value: float64(n) / dur.Seconds(), Unit: "img/s"})
	}
	for _, f := range []baselines.Format{
		baselines.Beton{},
		// Shards sized so every worker owns several shards, the standard
		// WebDataset/TFRecord deployment advice.
		baselines.WebDataset{ShardBytes: 4 << 20},
		baselines.Squirrel{SamplesPerShard: 64},
		baselines.TFRecord{RecordsPerFile: 128},
		baselines.ParquetLite{},
		baselines.FileSample{}, // the "pytorch" file-folder baseline
	} {
		store := storage.NewMemory()
		if err := f.Write(ctx, store, samples); err != nil {
			return nil, err
		}
		name := f.Name()
		if name == "filesample" {
			name = "pytorch (files)"
		}
		n, dur, err := countingIterate(ctx, f, store, cfg.Workers)
		if err != nil {
			return nil, err
		}
		if n != cfg.N {
			return nil, fmt.Errorf("fig7: %s delivered %d/%d samples", f.Name(), n, cfg.N)
		}
		res.Rows = append(res.Rows, Row{Name: name, Value: float64(n) / dur.Seconds(), Unit: "img/s"})
	}
	return res, nil
}

// Fig8StorageLocations reproduces Fig 8: one epoch over the Fig 7 dataset
// streamed from local disk, S3 and MinIO-on-LAN (lower is better). Expected
// shape: Deep Lake from S3 runs close to local (prefetch pipelines hide
// latency); both Deep Lake and WebDataset degrade on the low-bandwidth
// MinIO link.
func Fig8StorageLocations(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults(800)
	samples, err := jpegSampleSet(cfg, workload.Small250())
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "fig8", Title: fmt.Sprintf("epoch over %d jpeg images per storage location", cfg.N), Better: "lower"}
	res.Notes = append(res.Notes,
		"simulated storage profiles (local nvme, s3 same-region, minio 1GbE lan) at real-time IO scale",
		"iteration without media decode: isolates the storage path the figure measures")

	profiles := []simnet.Profile{simnet.Local(), simnet.S3SameRegion(), simnet.MinIOLAN()}
	for _, p := range profiles {
		p.TimeScale = 1 // real-time IO
		// Deep Lake.
		store := storage.NewSimObjectStore(p)
		ds, err := ingestDeepLake(ctx, store, samples, chunk.DefaultBounds())
		if err != nil {
			return nil, err
		}
		n, dur, err := deepLakeEpochOpts(ctx, ds, cfg.Workers, false, true)
		if err != nil {
			return nil, err
		}
		if n != cfg.N {
			return nil, fmt.Errorf("fig8: deeplake/%s delivered %d/%d", p.Name, n, cfg.N)
		}
		res.Rows = append(res.Rows, Row{Name: "deeplake/" + p.Name, Value: dur.Seconds(), Unit: "s"})

		// WebDataset.
		wstore := storage.NewSimObjectStore(p)
		wd := baselines.WebDataset{ShardBytes: 4 << 20, NoDecode: true}
		if err := wd.Write(ctx, wstore, samples); err != nil {
			return nil, err
		}
		_, wdur, err := countingIterate(ctx, wd, wstore, cfg.Workers)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Row{Name: "webdataset/" + p.Name, Value: wdur.Seconds(), Unit: "s"})
	}
	return res, nil
}

// formatSource adapts a baseline format iteration into a gpusim.BatchSource.
type formatSource struct {
	f       baselines.Format
	store   storage.Provider
	workers int
	batch   int
}

// Batches implements gpusim.BatchSource.
func (s formatSource) Batches(ctx context.Context) <-chan dataloader.Batch {
	out := make(chan dataloader.Batch, 4)
	go func() {
		defer close(out)
		var cur []map[string]*tensor.NDArray
		idx := 0
		flush := func() bool {
			if len(cur) == 0 {
				return true
			}
			b := dataloader.Batch{Index: idx, Samples: cur}
			idx++
			cur = nil
			select {
			case out <- b:
				return true
			case <-ctx.Done():
				return false
			}
		}
		collect := make(chan map[string]*tensor.NDArray, s.workers)
		done := make(chan error, 1)
		go func() {
			done <- s.f.Iterate(ctx, s.store, s.workers, func(smp baselines.Sample) error {
				arr, err := tensor.FromBytes(tensor.UInt8, smp.Shape, smp.Data)
				if err != nil {
					return err
				}
				select {
				case collect <- map[string]*tensor.NDArray{"images": arr}:
					return nil
				case <-ctx.Done():
					return ctx.Err()
				}
			})
		}()
		finished := false
		for !finished {
			select {
			case smp := <-collect:
				cur = append(cur, smp)
				if len(cur) >= s.batch {
					if !flush() {
						return
					}
				}
			case <-done:
				finished = true
			case <-ctx.Done():
				return
			}
		}
		// Drain anything the workers enqueued before done fired.
		for {
			select {
			case smp := <-collect:
				cur = append(cur, smp)
				if len(cur) >= s.batch {
					if !flush() {
						return
					}
				}
			default:
				flush()
				return
			}
		}
	}()
	return out
}

// Fig9ImageNetCloud reproduces Fig 9: training an epoch over an
// ImageNet-like dataset stored on S3 (lower total time is better). Modes:
// AWS File Mode copies everything before training; Fast File Mode starts
// instantly but trains slowly; Deep Lake streams at near-local speed; Local
// is the reference.
func Fig9ImageNetCloud(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults(600)
	samples, err := jpegSampleSet(cfg, workload.ImageNetLike())
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "fig9", Title: fmt.Sprintf("imagenet-like epoch (%d images) from S3", cfg.N), Better: "lower"}
	res.Notes = append(res.Notes,
		"file mode = copy files first, then train local; fast file mode = stream file-per-sample lazily",
		"simulated s3 same-region profile, uniform time scale 20x")

	const batchSize = 32
	// Uniform 20x compression for both the network simulation and the GPU
	// compute model keeps IO/compute ratios faithful.
	const fig9Scale = 20
	s3Profile := simnet.S3SameRegion()
	s3Profile.TimeScale = fig9Scale
	gpu := gpusim.GPU{ComputePerBatch: 400 * time.Millisecond, TimeScale: fig9Scale}

	addRow := func(name string, ttfb, total time.Duration, tl *gpusim.Timeline) {
		extra := fmt.Sprintf("first-batch %.2fs, gpu util %.0f%%", ttfb.Seconds(), tl.Utilization()*100)
		res.Rows = append(res.Rows, Row{Name: name, Value: total.Seconds(), Unit: "s", Extra: extra})
	}

	// Local reference.
	{
		store := storage.NewMemory()
		ds, err := ingestDeepLake(ctx, store, samples, chunk.DefaultBounds())
		if err != nil {
			return nil, err
		}
		l := dataloader.ForDataset(ds, dataloader.Options{BatchSize: batchSize, Workers: cfg.Workers, Fields: []string{"images", "labels"}})
		start := time.Now()
		tl := gpu.Train(ctx, l, 0)
		addRow("local", 0, time.Since(start), tl)
	}
	// Deep Lake streaming from S3.
	{
		store := storage.NewSimObjectStore(s3Profile)
		ds, err := ingestDeepLake(ctx, store, samples, chunk.DefaultBounds())
		if err != nil {
			return nil, err
		}
		l := dataloader.ForDataset(ds, dataloader.Options{BatchSize: batchSize, Workers: cfg.Workers, Fields: []string{"images", "labels"}})
		start := time.Now()
		tl := gpu.Train(ctx, l, 0)
		addRow("deeplake-stream", 0, time.Since(start), tl)
	}
	// AWS File Mode: copy everything, then train from local files.
	{
		remote := storage.NewSimObjectStore(s3Profile)
		fs := baselines.FileSample{}
		if err := fs.Write(ctx, remote, samples); err != nil {
			return nil, err
		}
		local := storage.NewMemory()
		start := time.Now()
		keys, err := remote.List(ctx, "")
		if err != nil {
			return nil, err
		}
		type copyJob = string
		jobs := make(chan copyJob)
		errc := make(chan error, cfg.Workers)
		for w := 0; w < cfg.Workers; w++ {
			go func() {
				for k := range jobs {
					blob, err := remote.Get(ctx, k)
					if err == nil {
						err = local.Put(ctx, k, blob)
					}
					if err != nil {
						errc <- err
						return
					}
				}
				errc <- nil
			}()
		}
		for _, k := range keys {
			jobs <- k
		}
		close(jobs)
		for w := 0; w < cfg.Workers; w++ {
			if err := <-errc; err != nil {
				return nil, err
			}
		}
		copyDur := time.Since(start)
		tl := gpu.Train(ctx, formatSource{f: fs, store: local, workers: cfg.Workers, batch: batchSize}, 0)
		addRow("aws-file-mode", copyDur, copyDur+tl.Wall, tl)
	}
	// AWS Fast File Mode: stream file-per-sample straight from S3.
	{
		remote := storage.NewSimObjectStore(s3Profile)
		fs := baselines.FileSample{}
		if err := fs.Write(ctx, remote, samples); err != nil {
			return nil, err
		}
		start := time.Now()
		tl := gpu.Train(ctx, formatSource{f: fs, store: remote, workers: 4, batch: batchSize}, 0)
		addRow("aws-fast-file-mode", 0, time.Since(start), tl)
	}
	return res, nil
}

// Fig10DistributedCLIP reproduces Fig 10: 16 simulated GPUs training a
// CLIP-like model over a LAION-like image+caption dataset streamed
// cross-region. Reported: mean GPU utilization, aggregate images/sec, and
// the utilization timeline shape (higher utilization is better).
func Fig10DistributedCLIP(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults(1024)
	const numGPUs = 16
	res := &Result{ID: "fig10", Title: fmt.Sprintf("16-GPU CLIP-like training over %d image+text pairs, cross-region", cfg.N), Better: "higher"}
	res.Notes = append(res.Notes, "simulated us-east bucket / us-central GPUs (55ms RTT), uniform time scale 10x")

	// Build the multimodal dataset on a cross-region bucket. The network
	// and GPU models share a uniform 50x time compression.
	crossProfile := simnet.S3CrossRegion()
	crossProfile.TimeScale = 10
	store := storage.NewSimObjectStore(crossProfile)
	ds, err := core.Create(ctx, store, "laion")
	if err != nil {
		return nil, err
	}
	images, err := ds.CreateTensor(ctx, core.TensorSpec{Name: "images", Htype: "image", SampleCompression: "jpeg"})
	if err != nil {
		return nil, err
	}
	texts, err := ds.CreateTensor(ctx, core.TensorSpec{Name: "captions", Htype: "text"})
	if err != nil {
		return nil, err
	}
	codec, err := compress.SampleByName("jpeg")
	if err != nil {
		return nil, err
	}
	spec := workload.LAIONLike()
	if cfg.ImageSide > 0 {
		spec.Height, spec.Width = cfg.ImageSide, cfg.ImageSide
	}
	for i := 0; i < cfg.N; i++ {
		img := spec.Image(i)
		s := img.Shape()
		enc, err := codec.Encode(img.Bytes(), s[0], s[1], s[2])
		if err != nil {
			return nil, err
		}
		if err := images.AppendEncoded(ctx, enc); err != nil {
			return nil, err
		}
		if err := texts.Append(ctx, tensor.FromString(workload.Caption(cfg.Seed, i))); err != nil {
			return nil, err
		}
	}
	if err := ds.Flush(ctx); err != nil {
		return nil, err
	}

	// Shard the chunk visit order across GPUs (Rank/WorldSize: disjoint
	// chunk shards under one shared seed) and train the fleet.
	gpus := make([]gpusim.GPU, numGPUs)
	sources := make([]gpusim.BatchSource, numGPUs)
	for g := 0; g < numGPUs; g++ {
		gpus[g] = gpusim.GPU{ComputePerBatch: 600 * time.Millisecond, TimeScale: 10}
		sources[g] = dataloader.ForDataset(ds, dataloader.Options{
			BatchSize: 8, Workers: 4, Shuffle: true, Seed: cfg.Seed, Prefetch: 8,
			Rank: g, WorldSize: numGPUs,
		})
	}
	start := time.Now()
	timelines := gpusim.Fleet(ctx, gpus, sources, 0)
	wall := time.Since(start)

	var utilSum float64
	rows := 0
	for _, tl := range timelines {
		utilSum += tl.Utilization()
		rows += tl.Rows
	}
	meanUtil := utilSum / numGPUs
	// Aggregate throughput in simulated time: wall * time scale.
	simWall := wall.Seconds() * 10
	res.Rows = append(res.Rows,
		Row{Name: "mean-gpu-utilization", Value: meanUtil * 100, Unit: "%"},
		Row{Name: "aggregate-throughput", Value: float64(rows) / simWall, Unit: "img/s",
			Extra: fmt.Sprintf("%d rows across %d GPUs", rows, numGPUs)},
	)
	// Loader-only (no model) throughput — the paper's "without model up
	// to 80,000 images/s per machine" companion measurement, run against
	// the same cross-region dataset.
	{
		l := dataloader.ForDataset(ds, dataloader.Options{BatchSize: 64, Workers: cfg.Workers})
		n := 0
		start := time.Now()
		for b := range l.Batches(ctx) {
			n += len(b.Samples)
		}
		if err := l.Err(); err != nil {
			return nil, err
		}
		simSecs := time.Since(start).Seconds() * 10
		res.Rows = append(res.Rows, Row{Name: "loader-only-throughput", Value: float64(n) / simSecs, Unit: "img/s",
			Extra: "no model attached"})
	}
	// Utilization timeline shape: report the mean utilization of the
	// first and second half of GPU 0's timeline (warmup vs steady state).
	if tl := timelines[0]; len(tl.Samples) >= 2 {
		half := len(tl.Samples) / 2
		var a, b float64
		for i, s := range tl.Samples {
			if i < half {
				a += s.Busy
			} else {
				b += s.Busy
			}
		}
		res.Rows = append(res.Rows,
			Row{Name: "gpu0-util-first-half", Value: a / float64(half) * 100, Unit: "%"},
			Row{Name: "gpu0-util-second-half", Value: b / float64(len(tl.Samples)-half) * 100, Unit: "%"},
		)
	}
	return res, nil
}
