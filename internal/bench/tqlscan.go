package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/simnet"
	"repro/internal/storage"
	"repro/internal/tql"
	"repro/internal/workload"
)

// TQLScan measures the chunk-partitioned parallel TQL scan engine over
// simulated S3: filter-scan throughput with 1, 4 and 16 workers on a cold
// sharded cache (a data-touching WHERE must fetch and decode every chunk,
// so workers overlap origin latency), then the shape-encoder pushdown's
// origin-request count for a shape-only WHERE (must be 0) against the same
// query forced through a full data scan.
func TQLScan(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults(384)
	res := &Result{
		ID:     "tql",
		Title:  "TQL parallel chunk scan + shape-encoder pushdown on S3",
		Better: "higher",
	}
	res.Notes = append(res.Notes,
		"filter-workers-N scans a data-touching WHERE (MEAN(images)) over a cold sharded cache on simulated S3",
		"pushdown-origin-requests is the origin traffic of a shape-only WHERE; 0 = answered entirely from the shape encoder",
		"fullscan-origin-requests is the same shape-only WHERE with pushdown disabled (shapes measured from decoded chunk data)",
		"strip- vs perpartition-origin-requests A/B the cross-partition strip scheduler against the legacy per-partition prefetch at 16 workers; strips must cost strictly fewer origin requests for identical results")

	// Tiny raw images in small chunks at a mild time compression: the
	// filter scan spans many chunks and per-request origin latency dwarfs
	// the per-row compute, so the worker fan-out (not CPU core count)
	// sets the scaling — the regime a real S3 scan lives in.
	spec := workload.ImageSpec{Height: 16, Width: 16, Channels: 3, Seed: cfg.Seed}
	samples := rawSampleSet(cfg, spec)
	bounds := chunk.Bounds{Min: 2 << 10, Target: 4 << 10, Max: 8 << 10}

	profile := simnet.S3SameRegion()
	profile.TimeScale = 10 // ~1.5ms first byte: latency-bound like real S3
	origin := storage.NewSimObjectStore(profile)
	counting := storage.NewCounting(origin)
	if _, err := ingestDeepLake(ctx, counting, samples, bounds); err != nil {
		return nil, err
	}

	const dataQuery = `SELECT labels FROM bench WHERE MEAN(images) >= 0`
	openCold := func() (*core.Dataset, error) {
		cached := storage.NewShardedLRU(counting, 1<<30, storage.DefaultShards)
		ds, err := core.Open(ctx, cached)
		if err != nil {
			return nil, err
		}
		counting.Reset()
		return ds, nil
	}

	var serial float64
	for _, workers := range []int{1, 4, 16} {
		ds, err := openCold()
		if err != nil {
			return nil, err
		}
		start := time.Now()
		v, err := tql.RunWith(ctx, ds, dataQuery, tql.Options{Workers: workers})
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start).Seconds()
		if v.Len() != cfg.N {
			return nil, fmt.Errorf("filter-workers-%d returned %d/%d rows", workers, v.Len(), cfg.N)
		}
		throughput := float64(cfg.N) / elapsed
		if workers == 1 {
			serial = throughput
		}
		extra := fmt.Sprintf("%d origin requests", counting.Requests())
		if workers > 1 && serial > 0 {
			extra += fmt.Sprintf(", %.1fx vs serial", throughput/serial)
		}
		res.Rows = append(res.Rows, Row{
			Name:  fmt.Sprintf("filter-workers-%d", workers),
			Value: throughput, Unit: "rows/s",
			Extra: extra,
		})
	}

	// The pre-strip serial engine: one worker, per-partition prefetch, so
	// every span pays its own origin round trip with no cross-span
	// lookahead. This is the PR 3 baseline the parallel strip engine is
	// gated against — strips erased most of the serial path's IO stalls,
	// so filter-workers-1 above is no longer a handicapped baseline.
	ds, err := openCold()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	legacyV, err := tql.RunWith(ctx, ds, dataQuery, tql.Options{Workers: 1, PerPartitionPrefetch: true})
	if err != nil {
		return nil, err
	}
	legacyRate := float64(cfg.N) / time.Since(start).Seconds()
	if legacyV.Len() != cfg.N {
		return nil, fmt.Errorf("filter-serial-legacy returned %d/%d rows", legacyV.Len(), cfg.N)
	}
	res.Rows = append(res.Rows, Row{
		Name: "filter-serial-legacy", Value: legacyRate, Unit: "rows/s",
		Extra: fmt.Sprintf("%d origin requests, 1 worker, per-partition prefetch (pre-strip serial engine)", counting.Requests()),
	})

	// Cross-partition strips vs the legacy per-partition prefetch: the same
	// 16-worker scan, byte-identical row set, strictly fewer origin requests
	// because strips pack chunks owned by different workers into shared
	// coalesced batches.
	ds, err = openCold()
	if err != nil {
		return nil, err
	}
	var stripStats tql.ScanStats
	sv, err := tql.RunWith(ctx, ds, dataQuery, tql.Options{Workers: 16, Stats: &stripStats})
	if err != nil {
		return nil, err
	}
	stripReqs := counting.Requests()
	ds, err = openCold()
	if err != nil {
		return nil, err
	}
	var perStats tql.ScanStats
	lv, err := tql.RunWith(ctx, ds, dataQuery, tql.Options{Workers: 16, PerPartitionPrefetch: true, Stats: &perStats})
	if err != nil {
		return nil, err
	}
	perReqs := counting.Requests()
	if !equalRows(sv.Indices(), lv.Indices()) {
		return nil, fmt.Errorf("strip scan and per-partition scan disagree: %d vs %d rows", sv.Len(), lv.Len())
	}
	res.Rows = append(res.Rows,
		Row{
			Name: "strip-origin-requests", Value: float64(stripReqs), Unit: "reqs",
			Extra: fmt.Sprintf("16 workers, %s", &stripStats),
		},
		Row{
			Name: "perpartition-origin-requests", Value: float64(perReqs), Unit: "reqs",
			Extra: fmt.Sprintf("16 workers, legacy A/B baseline, %s", &perStats),
		})
	if stripReqs >= perReqs {
		return nil, fmt.Errorf("cross-partition strips cost %d origin requests, per-partition prefetch %d; strips must be strictly cheaper", stripReqs, perReqs)
	}

	// Shape-encoder pushdown vs forced full scan: identical results,
	// radically different origin traffic.
	const shapeQuery = `SELECT labels FROM bench WHERE SHAPE(images)[0] >= 1 AND NDIM(images) == 3`
	ds, err = openCold()
	if err != nil {
		return nil, err
	}
	pv, err := tql.RunWith(ctx, ds, shapeQuery, tql.Options{Workers: 16})
	if err != nil {
		return nil, err
	}
	pushGets := counting.Requests()
	res.Rows = append(res.Rows, Row{
		Name: "pushdown-origin-requests", Value: float64(pushGets), Unit: "reqs",
		Extra: fmt.Sprintf("%d rows matched, %d chunk Gets (0 = pure shape-encoder answer)", pv.Len(), counting.Snapshot().Gets),
	})

	ds, err = openCold()
	if err != nil {
		return nil, err
	}
	fv, err := tql.RunWith(ctx, ds, shapeQuery, tql.Options{Workers: 16, DisablePushdown: true})
	if err != nil {
		return nil, err
	}
	fullGets := counting.Requests()
	if pv.Len() != fv.Len() {
		return nil, fmt.Errorf("pushdown returned %d rows, full scan %d", pv.Len(), fv.Len())
	}
	res.Rows = append(res.Rows, Row{
		Name: "fullscan-origin-requests", Value: float64(fullGets), Unit: "reqs",
		Extra: fmt.Sprintf("%d rows matched, identical result set", fv.Len()),
	})
	if pushGets != 0 {
		return nil, fmt.Errorf("shape-only WHERE reached the origin %d times; pushdown must do zero chunk IO", pushGets)
	}
	return res, nil
}

func equalRows(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
