package bench

import (
	"context"
	"testing"
)

// TestIngestScenario asserts the write-path acceptance criteria at test
// scale: every writer configuration lands all samples (the runner verifies
// row counts against a reopened dataset), and parallel writers with the
// background flush pipeline beat the serial synchronous path. The full ≥4x
// target is checked at CLI scale by `benchfig ingest`.
func TestIngestScenario(t *testing.T) {
	res, err := IngestThroughput(context.Background(), Config{N: 96, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	serial, ok := res.Value("deeplake-serial")
	if !ok {
		t.Fatal("deeplake-serial row missing")
	}
	w16, ok := res.Value("writers-16")
	if !ok {
		t.Fatal("writers-16 row missing")
	}
	if serial <= 0 || w16 <= 0 {
		t.Fatalf("non-positive ingest throughput: serial %.1f, writers-16 %.1f", serial, w16)
	}
	if w16 <= serial {
		t.Fatalf("16-writer ingest %.1f smp/s should exceed serial %.1f smp/s", w16, serial)
	}
	for _, name := range []string{"tfrecord", "webdataset"} {
		if v, ok := res.Value(name); !ok || v <= 0 {
			t.Fatalf("baseline %s missing or non-positive", name)
		}
	}
}
