package storage

import (
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
)

// ErrCorrupted marks an object whose bytes failed CRC32C verification
// against its recorded digest. IsCorrupted separates silent data corruption
// (a flipped bit, a truncated transfer, a poisoned cache) from missing keys
// and transport failures.
var ErrCorrupted = errors.New("storage: object corrupted (checksum mismatch)")

// IsCorrupted reports whether err indicates a failed integrity check.
func IsCorrupted(err error) bool { return errors.Is(err, ErrCorrupted) }

// castagnoli is the CRC32C table shared by all storage-level digests.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32C (Castagnoli) digest of data — the digest
// recorded per stored object by Verify and in per-tensor chunk manifests.
func Checksum(data []byte) uint32 { return crc32.Checksum(data, castagnoli) }

// VerifyOptions tunes a Verify wrapper.
type VerifyOptions struct {
	// HealAttempts bounds how many extra fetches a single Get spends trying
	// to obtain bytes that match the recorded digest before giving up with a
	// transient ErrCorrupted. Zero means DefaultHealAttempts.
	HealAttempts int
	// QuarantineAfter is the number of operations that may exhaust their
	// heal attempts on a key before the key is quarantined: further reads
	// fail fast (permanently, without touching the origin) until a Put
	// replaces the object. Zero means DefaultQuarantineAfter; negative
	// disables quarantining.
	QuarantineAfter int
}

// Default Verify tuning.
const (
	DefaultHealAttempts    = 3
	DefaultQuarantineAfter = 3
)

// VerifyStats is a point-in-time copy of a Verify wrapper's counters.
type VerifyStats struct {
	// Verified counts reads checked against a recorded digest and found
	// intact on the first fetch.
	Verified int64
	// Unverified counts reads of keys with no recorded digest (legacy
	// objects), which pass through unchecked.
	Unverified int64
	// Detected counts digest mismatches observed (every corrupted fetch,
	// including failed heal attempts).
	Detected int64
	// Repaired counts detected mismatches that were resolved by a re-fetch
	// returning verified bytes.
	Repaired int64
	// Quarantined counts keys put into quarantine after repeated mismatches.
	Quarantined int64
}

// Verify wraps a provider with CRC32C verify-on-read and self-healing
// re-fetch. It keeps an in-memory registry of expected digests — recorded on
// every Put and seedable from a persisted manifest via SeedDigest — and
// checks whole-object Get/GetRanges results against it. See the package doc
// ("Integrity") for where Verify sits in the chain and why a mismatch is
// classified transient.
//
// On a mismatch the wrapper re-fetches from the inner chain (whose Retry
// layer shields the re-fetch from ordinary transient faults) up to
// HealAttempts times; bytes that verify are returned as if nothing happened
// and the repair is counted. A key that keeps failing is quarantined after
// QuarantineAfter exhausted operations: further reads fail fast with a
// permanent error instead of hammering the origin for bytes known to be bad.
// The terminal mismatch error is marked Transient *and* wraps ErrCorrupted,
// so a caller's own retry loop may try again later while IsCorrupted still
// classifies the failure.
//
// Reads of keys with no recorded digest pass through unchecked and are
// counted as Unverified, so pre-checksum datasets keep working and the gap
// is visible in stats.
type Verify struct {
	inner Provider
	opts  VerifyOptions

	mu          sync.Mutex
	digests     map[string]uint32
	strikes     map[string]int
	quarantined map[string]bool

	verified    atomic.Int64
	unverified  atomic.Int64
	detected    atomic.Int64
	repaired    atomic.Int64
	quarantines atomic.Int64
}

// NewVerify wraps inner with digest verification.
func NewVerify(inner Provider, opts VerifyOptions) *Verify {
	if opts.HealAttempts <= 0 {
		opts.HealAttempts = DefaultHealAttempts
	}
	if opts.QuarantineAfter == 0 {
		opts.QuarantineAfter = DefaultQuarantineAfter
	}
	return &Verify{
		inner:       inner,
		opts:        opts,
		digests:     make(map[string]uint32),
		strikes:     make(map[string]int),
		quarantined: make(map[string]bool),
	}
}

// Unwrap returns the wrapped provider.
func (v *Verify) Unwrap() Provider { return v.inner }

// Stats reports the wrapper's counters.
func (v *Verify) Stats() VerifyStats {
	return VerifyStats{
		Verified:    v.verified.Load(),
		Unverified:  v.unverified.Load(),
		Detected:    v.detected.Load(),
		Repaired:    v.repaired.Load(),
		Quarantined: v.quarantines.Load(),
	}
}

// SeedDigest registers the expected CRC32C digest for key, typically from a
// persisted manifest (per-tensor chunk checksums) when a dataset is opened.
func (v *Verify) SeedDigest(key string, crc uint32) {
	v.mu.Lock()
	v.digests[key] = crc
	v.mu.Unlock()
}

// Digest returns the recorded digest for key, if any.
func (v *Verify) Digest(key string) (uint32, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	crc, ok := v.digests[key]
	return crc, ok
}

// Quarantined reports whether key is currently quarantined.
func (v *Verify) Quarantined(key string) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.quarantined[key]
}

// expect returns the recorded digest for key and whether the key is
// quarantined.
func (v *Verify) expect(key string) (crc uint32, known, quarantined bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	crc, known = v.digests[key]
	return crc, known, v.quarantined[key]
}

// record notes a Put (or repaired write) of data under key: the digest is
// replaced and any quarantine lifted — new bytes get a clean slate.
func (v *Verify) record(key string, crc uint32) {
	v.mu.Lock()
	v.digests[key] = crc
	delete(v.strikes, key)
	delete(v.quarantined, key)
	v.mu.Unlock()
}

// clearStrikes resets the failure streak for key after a verified read.
func (v *Verify) clearStrikes(key string) {
	v.mu.Lock()
	delete(v.strikes, key)
	v.mu.Unlock()
}

// strike records one operation that exhausted its heal attempts on key and
// reports whether the key just crossed into quarantine.
func (v *Verify) strike(key string) bool {
	if v.opts.QuarantineAfter < 0 {
		return false
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.strikes[key]++
	if v.strikes[key] >= v.opts.QuarantineAfter && !v.quarantined[key] {
		v.quarantined[key] = true
		v.quarantines.Add(1)
		return true
	}
	return false
}

func (v *Verify) quarantineErr(key string) error {
	return fmt.Errorf("storage: %q is quarantined after repeated checksum mismatches (replace the object to clear): %w", key, ErrCorrupted)
}

// checkAndHeal verifies data for key against want, re-fetching from the
// inner chain until the bytes verify or the heal budget runs out. It is the
// single verification path for whole-object reads; the terminal error is
// Transient (an upper retry layer may legitimately try again — the origin
// copy could be rewritten meanwhile) and wraps ErrCorrupted.
func (v *Verify) checkAndHeal(ctx context.Context, key string, want uint32, data []byte) ([]byte, error) {
	if Checksum(data) == want {
		v.verified.Add(1)
		v.clearStrikes(key)
		return data, nil
	}
	mismatches := int64(1)
	v.detected.Add(1)
	for attempt := 0; attempt < v.opts.HealAttempts; attempt++ {
		fresh, err := v.inner.Get(ctx, key)
		if err != nil {
			return nil, fmt.Errorf("storage: re-fetch of corrupted %q failed: %w", key, err)
		}
		if Checksum(fresh) == want {
			v.repaired.Add(mismatches)
			v.clearStrikes(key)
			return fresh, nil
		}
		mismatches++
		v.detected.Add(1)
	}
	v.strike(key)
	return nil, Transient(fmt.Errorf("storage: %q failed CRC32C verification after %d fetches: %w",
		key, v.opts.HealAttempts+1, ErrCorrupted))
}

// Get implements Provider: fetch, verify against the recorded digest, heal
// on mismatch.
func (v *Verify) Get(ctx context.Context, key string) ([]byte, error) {
	want, known, quarantined := v.expect(key)
	if quarantined {
		return nil, v.quarantineErr(key)
	}
	data, err := v.inner.Get(ctx, key)
	if err != nil {
		return nil, err
	}
	if !known {
		v.unverified.Add(1)
		return data, nil
	}
	return v.checkAndHeal(ctx, key, want, data)
}

// GetRanges implements BatchProvider. Whole-object results are verified
// against recorded digests; a corrupted entry is healed individually with a
// re-fetch, so one flipped bit in a coalesced batch costs one extra request
// for that object, not a re-issue of the whole plan. Sub-object ranges
// cannot be checked against a whole-object digest and pass through (the
// chunk-level footer above catches what slips past).
func (v *Verify) GetRanges(ctx context.Context, reqs []RangeReq) ([][]byte, error) {
	for _, r := range reqs {
		if v.Quarantined(r.Key) {
			return make([][]byte, len(reqs)), v.quarantineErr(r.Key)
		}
	}
	out, err := GetRanges(ctx, v.inner, reqs)
	if err != nil {
		return out, err
	}
	for i, r := range reqs {
		if !r.whole() || out[i] == nil {
			continue
		}
		want, known, _ := v.expect(r.Key)
		if !known {
			v.unverified.Add(1)
			continue
		}
		healed, herr := v.checkAndHeal(ctx, r.Key, want, out[i])
		if herr != nil {
			return out, herr
		}
		out[i] = healed
	}
	return out, nil
}

// GetRange implements Provider. Sub-object ranges cannot be verified against
// a whole-object digest, but quarantined keys still fail fast.
func (v *Verify) GetRange(ctx context.Context, key string, offset, length int64) ([]byte, error) {
	if v.Quarantined(key) {
		return nil, v.quarantineErr(key)
	}
	return v.inner.GetRange(ctx, key, offset, length)
}

// Put implements Provider: the stored bytes' digest is recorded and any
// quarantine on the key lifted.
func (v *Verify) Put(ctx context.Context, key string, data []byte) error {
	crc := Checksum(data)
	if err := v.inner.Put(ctx, key, data); err != nil {
		return err
	}
	v.record(key, crc)
	return nil
}

// Delete implements Provider and forgets the key's digest.
func (v *Verify) Delete(ctx context.Context, key string) error {
	if err := v.inner.Delete(ctx, key); err != nil {
		return err
	}
	v.mu.Lock()
	delete(v.digests, key)
	delete(v.strikes, key)
	delete(v.quarantined, key)
	v.mu.Unlock()
	return nil
}

// Exists implements Provider.
func (v *Verify) Exists(ctx context.Context, key string) (bool, error) {
	return v.inner.Exists(ctx, key)
}

// List implements Provider.
func (v *Verify) List(ctx context.Context, prefix string) ([]string, error) {
	return v.inner.List(ctx, prefix)
}

// Size implements Provider.
func (v *Verify) Size(ctx context.Context, key string) (int64, error) {
	return v.inner.Size(ctx, key)
}

// SeedDigests walks the provider chain from p and registers the given
// digests with every Verify and Disk layer it finds, returning how many
// were seeded (zero when the chain has neither layer — integrity
// verification is optional). Disk tiers need the digests too: their
// warm-start population was written by a previous process, so reads from it
// are verified against the dataset's checksum manifests, not against
// anything recorded in this process's lifetime. The walk stops at a Prefix
// wrapper, whose key rewriting would invalidate the digest keys.
func SeedDigests(p Provider, digests map[string]uint32) int {
	seeded := 0
	for p != nil {
		switch v := p.(type) {
		case *Verify:
			for key, crc := range digests {
				v.SeedDigest(key, crc)
			}
			seeded = len(digests)
		case *Disk:
			for key, crc := range digests {
				v.SeedDigest(key, crc)
			}
			seeded = len(digests)
		case *Prefix:
			return seeded
		}
		u, ok := p.(interface{ Unwrap() Provider })
		if !ok {
			return seeded
		}
		p = u.Unwrap()
	}
	return seeded
}

// Evict drops key from every LRU cache layer in the provider chain rooted
// at p. Readers that detect corruption above the cache (the chunk footer
// check) use it to purge the poisoned entry before re-fetching, so the heal
// does not simply re-read the bad cached bytes. Like SeedDigests, the walk
// stops at a Prefix wrapper.
func Evict(p Provider, key string) {
	for p != nil {
		if l, ok := p.(*LRU); ok {
			l.Evict(key)
		}
		if _, ok := p.(*Prefix); ok {
			return
		}
		u, ok := p.(interface{ Unwrap() Provider })
		if !ok {
			return
		}
		p = u.Unwrap()
	}
}
