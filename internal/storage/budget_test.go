package storage

import "testing"

func TestNodeBudgetSplitSumsExactly(t *testing.T) {
	for _, mem := range []int64{1, 7, 8, 1000, 1 << 20, 1<<30 + 3} {
		b := NodeBudget{MemoryBytes: mem}
		lru, dec := b.LRUBytes(), b.DecodedBytes()
		if lru+dec != mem {
			t.Fatalf("MemoryBytes=%d: LRU %d + decoded %d != budget", mem, lru, dec)
		}
		if lru < 0 || dec < 0 {
			t.Fatalf("MemoryBytes=%d: negative share (lru=%d dec=%d)", mem, lru, dec)
		}
		if mem >= 8 && lru == 0 {
			t.Fatalf("MemoryBytes=%d: LRU share collapsed to zero", mem)
		}
	}
}

func TestNodeBudgetDefaults(t *testing.T) {
	var b NodeBudget
	if got := b.LRUBytes() + b.DecodedBytes(); got != DefaultNodeMemoryBytes {
		t.Fatalf("zero budget shares sum to %d, want DefaultNodeMemoryBytes", got)
	}
	if b.DiskCapacity() != 0 {
		t.Fatalf("zero DiskBytes should pass through as 0 (DiskOptions maps it to the default), got %d", b.DiskCapacity())
	}
	if got := (NodeBudget{DiskBytes: -1}).DiskCapacity(); got != -1 {
		t.Fatalf("negative DiskBytes (unbounded) should pass through, got %d", got)
	}
	if got := (NodeBudget{MemoryBytes: -5}).LRUBytes(); got != DefaultNodeMemoryBytes*3/8 {
		t.Fatalf("negative MemoryBytes should fall back to the default split, got %d", got)
	}
}

// TestNodeBudgetDrivesDiskTier closes the loop with the disk tier: a budget
// with explicit DiskBytes bounds the tier, and the default budget gets
// DefaultDiskCapacity.
func TestNodeBudgetDrivesDiskTier(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDisk(NewMemory(), dir, DiskOptions{Capacity: NodeBudget{DiskBytes: 1 << 20}.DiskCapacity()})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Capacity(); got != 1<<20 {
		t.Fatalf("disk tier capacity = %d, want budget's 1MB", got)
	}
	d2, err := NewDisk(NewMemory(), t.TempDir(), DiskOptions{Capacity: NodeBudget{}.DiskCapacity()})
	if err != nil {
		t.Fatal(err)
	}
	if got := d2.Capacity(); got != DefaultDiskCapacity {
		t.Fatalf("default budget disk capacity = %d, want DefaultDiskCapacity", got)
	}
}
