package storage

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// ErrTransient marks a failure as retry-safe: a provider (or fault injector)
// that knows an error is a momentary origin hiccup — a 5xx, a dropped
// connection, a partial body — wraps it so IsRetryable reports true and a
// Retry layer re-attempts the operation. Permanent failures (ErrNotFound,
// malformed requests) and context errors must never carry this marker.
var ErrTransient = errors.New("storage: transient error")

// Transient wraps err so IsRetryable reports true for it. A nil err returns
// nil. The wrapped error still matches err via errors.Is/As.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

type transientError struct{ err error }

func (e *transientError) Error() string { return "storage: transient: " + e.err.Error() }

// Unwrap exposes the cause to errors.Is/As.
func (e *transientError) Unwrap() error { return e.err }

// Transient marks the error retry-safe for IsRetryable.
func (e *transientError) Transient() bool { return true }

// IsRetryable reports whether err is a transient failure that a Retry layer
// may safely re-attempt. Classification rules, in order:
//
//   - nil, context.Canceled and context.DeadlineExceeded are never retryable:
//     a caller that gave up must not have work re-issued on its behalf. (The
//     Retry wrapper itself distinguishes its own per-op timeout from the
//     caller's deadline by checking the parent context.)
//   - ErrNotFound is never retryable: a missing key is a stable fact, and
//     retrying it would turn every negative lookup into a backoff storm.
//   - Anything carrying ErrTransient in its chain, or implementing
//     interface{ Transient() bool } returning true, is retryable.
//
// Wrappers must preserve the chain (wrap with %w or return inner errors
// unchanged) for this classification to survive Prefix/Sim/LRU/Counting.
func IsRetryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if errors.Is(err, ErrNotFound) {
		return false
	}
	if errors.Is(err, ErrTransient) {
		return true
	}
	var t interface{ Transient() bool }
	if errors.As(err, &t) {
		return t.Transient()
	}
	return false
}

// Backoff computes capped exponential delays with deterministic seeded
// jitter: attempt k (1-based) waits Base<<(k-1) capped at Max, scaled into
// [1/2, 1) of that span by a hash of (Seed, attempt). Two Backoff values
// with the same fields produce identical schedules, so chaos runs are
// reproducible; different seeds de-synchronize concurrent retriers.
type Backoff struct {
	// Base is the first delay. Zero means 10ms.
	Base time.Duration
	// Max caps the exponential growth. Zero means 1s.
	Max time.Duration
	// Seed drives the deterministic jitter.
	Seed int64
}

// Delay returns the pause before re-attempt number attempt (1-based).
func (b Backoff) Delay(attempt int) time.Duration {
	base, max := b.Base, b.Max
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	if max <= 0 {
		max = time.Second
	}
	if max < base {
		max = base
	}
	if attempt < 1 {
		attempt = 1
	}
	d := base
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= max || d <= 0 {
			d = max
			break
		}
	}
	if d > max {
		d = max
	}
	// Deterministic jitter in [d/2, d): same (Seed, attempt) -> same delay.
	h := splitmix64(uint64(b.Seed)<<16 ^ uint64(attempt))
	frac := float64(h>>11) / (1 << 53)
	return d/2 + time.Duration(frac*float64(d/2))
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-mixed 64-bit hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// RetryOptions configures a Retry wrapper.
type RetryOptions struct {
	// Attempts is the maximum tries per operation, including the first.
	// Zero means 4.
	Attempts int
	// Backoff shapes the inter-attempt delays.
	Backoff Backoff
	// OpTimeout bounds each individual attempt. When an attempt dies of
	// this deadline while the caller's own context is still live, the
	// failure counts as transient (a stalled origin connection) and is
	// retried. Zero means no per-attempt deadline — a black-holed origin
	// call then hangs until the caller's context expires.
	OpTimeout time.Duration
	// Budget caps the total number of re-attempts the wrapper will issue
	// over its lifetime, so a persistently failing origin degrades to
	// fail-fast instead of multiplying traffic. Zero means unlimited.
	Budget int64
}

func (o RetryOptions) withDefaults() RetryOptions {
	if o.Attempts <= 0 {
		o.Attempts = 4
	}
	return o
}

// RetryStats is a point-in-time copy of a Retry wrapper's counters.
type RetryStats struct {
	// Attempts counts every call issued to the inner provider, first tries
	// included.
	Attempts int64
	// Retries counts re-attempts only (Attempts minus logical operations).
	Retries int64
	// Exhausted counts operations that still failed after the last allowed
	// attempt.
	Exhausted int64
	// BudgetDenied counts retries that were skipped because the lifetime
	// retry budget ran out.
	BudgetDenied int64
}

// Retry wraps a provider with transient-failure recovery: every operation is
// re-attempted under capped exponential backoff while IsRetryable approves
// (or the failure was the wrapper's own per-attempt timeout), up to
// RetryOptions.Attempts tries and the lifetime budget. Context errors and
// ErrNotFound are returned immediately, and a context cancelled mid-backoff
// aborts the wait at once.
//
// Stack Retry *below* the read-coalescing cache (LRU's singleflight): a miss
// shared by N waiters then retries once on behalf of all of them, instead of
// each waiter observing the fault and re-issuing its own recovery — one
// transient fault costs one extra origin request, never N.
//
// All operations on the Provider contract are idempotent (whole-object puts,
// deletes, lookups), so re-attempting any of them is safe.
type Retry struct {
	inner Provider
	opts  RetryOptions

	attempts     atomic.Int64
	retries      atomic.Int64
	exhausted    atomic.Int64
	budgetDenied atomic.Int64
	budgetLeft   atomic.Int64 // meaningful only when opts.Budget > 0
}

// NewRetry wraps inner with the given retry policy.
func NewRetry(inner Provider, opts RetryOptions) *Retry {
	r := &Retry{inner: inner, opts: opts.withDefaults()}
	r.budgetLeft.Store(opts.Budget)
	return r
}

// Unwrap returns the wrapped provider.
func (r *Retry) Unwrap() Provider { return r.inner }

// Stats reports the wrapper's counters.
func (r *Retry) Stats() RetryStats {
	return RetryStats{
		Attempts:     r.attempts.Load(),
		Retries:      r.retries.Load(),
		Exhausted:    r.exhausted.Load(),
		BudgetDenied: r.budgetDenied.Load(),
	}
}

// takeBudget consumes one unit of the lifetime retry budget.
func (r *Retry) takeBudget() bool {
	if r.opts.Budget <= 0 {
		return true
	}
	for {
		left := r.budgetLeft.Load()
		if left <= 0 {
			return false
		}
		if r.budgetLeft.CompareAndSwap(left, left-1) {
			return true
		}
	}
}

// do runs op under the retry protocol. op receives the per-attempt context.
func (r *Retry) do(ctx context.Context, opName, key string, op func(context.Context) error) error {
	for attempt := 1; ; attempt++ {
		attemptCtx, cancel := ctx, context.CancelFunc(func() {})
		if r.opts.OpTimeout > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, r.opts.OpTimeout)
		}
		r.attempts.Add(1)
		err := op(attemptCtx)
		cancel()
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			// The caller gave up (or its deadline passed); never retry on
			// its behalf, and surface its context error over the inner one.
			return err
		}
		// Our own per-attempt deadline firing while the caller is still
		// live is a stalled origin call: transient by construction.
		ownTimeout := errors.Is(err, context.DeadlineExceeded)
		if !IsRetryable(err) && !ownTimeout {
			return err
		}
		if attempt >= r.opts.Attempts {
			r.exhausted.Add(1)
			return fmt.Errorf("storage: %s %q failed after %d attempts: %w", opName, key, attempt, err)
		}
		if !r.takeBudget() {
			r.budgetDenied.Add(1)
			return fmt.Errorf("storage: %s %q retry budget exhausted: %w", opName, key, err)
		}
		t := time.NewTimer(r.opts.Backoff.Delay(attempt))
		select {
		case <-t.C:
		case <-ctx.Done():
			// Cancelled mid-backoff: stop waiting immediately.
			t.Stop()
			return ctx.Err()
		}
		t.Stop()
		r.retries.Add(1)
	}
}

// Get implements Provider.
func (r *Retry) Get(ctx context.Context, key string) ([]byte, error) {
	var out []byte
	err := r.do(ctx, "Get", key, func(c context.Context) error {
		data, err := r.inner.Get(c, key)
		if err != nil {
			return err
		}
		out = data
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// GetRanges implements BatchProvider. Recovery is incremental: ranges
// served before a mid-batch fault are kept, and each re-attempt re-issues
// only the still-missing ranges as one new batch — so one fault inside a
// coalesced request costs exactly one extra origin round trip, never a
// resend of bytes already received.
func (r *Retry) GetRanges(ctx context.Context, reqs []RangeReq) ([][]byte, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	out := make([][]byte, len(reqs))
	missing := make([]int, len(reqs))
	for i := range reqs {
		missing[i] = i
	}
	err := r.do(ctx, "GetRanges", fmt.Sprintf("batch[%d] %s…", len(reqs), reqs[0].Key), func(c context.Context) error {
		sub := make([]RangeReq, len(missing))
		for j, i := range missing {
			sub[j] = reqs[i]
		}
		res, err := GetRanges(c, r.inner, sub)
		still := missing[:0]
		for j, i := range missing {
			if j < len(res) && res[j] != nil {
				out[i] = res[j]
			} else {
				still = append(still, i)
			}
		}
		missing = still
		if err != nil {
			return err
		}
		if len(missing) > 0 {
			return fmt.Errorf("storage: batched get left %d ranges unserved: %w", len(missing), ErrTransient)
		}
		return nil
	})
	return out, err
}

// GetRange implements Provider.
func (r *Retry) GetRange(ctx context.Context, key string, offset, length int64) ([]byte, error) {
	var out []byte
	err := r.do(ctx, "GetRange", key, func(c context.Context) error {
		data, err := r.inner.GetRange(c, key, offset, length)
		if err != nil {
			return err
		}
		out = data
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Put implements Provider. Whole-object puts are idempotent, so a put whose
// response was lost re-runs safely.
func (r *Retry) Put(ctx context.Context, key string, data []byte) error {
	return r.do(ctx, "Put", key, func(c context.Context) error {
		return r.inner.Put(c, key, data)
	})
}

// Delete implements Provider.
func (r *Retry) Delete(ctx context.Context, key string) error {
	return r.do(ctx, "Delete", key, func(c context.Context) error {
		return r.inner.Delete(c, key)
	})
}

// Exists implements Provider.
func (r *Retry) Exists(ctx context.Context, key string) (bool, error) {
	var out bool
	err := r.do(ctx, "Exists", key, func(c context.Context) error {
		ok, err := r.inner.Exists(c, key)
		if err != nil {
			return err
		}
		out = ok
		return nil
	})
	if err != nil {
		return false, err
	}
	return out, nil
}

// List implements Provider.
func (r *Retry) List(ctx context.Context, prefix string) ([]string, error) {
	var out []string
	err := r.do(ctx, "List", prefix, func(c context.Context) error {
		keys, err := r.inner.List(c, prefix)
		if err != nil {
			return err
		}
		out = keys
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Size implements Provider.
func (r *Retry) Size(ctx context.Context, key string) (int64, error) {
	var out int64
	err := r.do(ctx, "Size", key, func(c context.Context) error {
		n, err := r.inner.Size(c, key)
		if err != nil {
			return err
		}
		out = n
		return nil
	})
	if err != nil {
		return 0, err
	}
	return out, nil
}
