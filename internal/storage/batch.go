package storage

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// RangeReq names one byte range of one object. Offset 0 with a negative
// Length requests the whole object.
type RangeReq struct {
	// Key is the object key.
	Key string
	// Offset is the first byte wanted.
	Offset int64
	// Length is the byte count; negative means "to the end of the object",
	// mirroring GetRange semantics.
	Length int64
}

// whole reports whether the request covers the full object.
func (r RangeReq) whole() bool { return r.Offset == 0 && r.Length < 0 }

// BatchProvider is the multi-get extension of Provider: one round trip
// serving many ranges. Origins that price by request (S3 and the Sim model)
// implement it so a batch of N ranges costs one request's latency instead of
// N.
//
// Contract: the result slice is parallel to reqs. Requests are served in
// order; on error, every request served before the failure has a non-nil
// entry, the failed request and everything after it are nil, and the error
// is returned alongside the partial results. A fault mid-batch therefore
// never poisons sibling ranges already received. An empty reqs slice returns
// (nil, nil).
type BatchProvider interface {
	GetRanges(ctx context.Context, reqs []RangeReq) ([][]byte, error)
}

// GetRanges serves a batch of ranges through p: in one call when p
// implements BatchProvider, otherwise by sequential Get/GetRange calls with
// the same partial-results-on-error contract.
func GetRanges(ctx context.Context, p Provider, reqs []RangeReq) ([][]byte, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	if bp, ok := p.(BatchProvider); ok {
		return bp.GetRanges(ctx, reqs)
	}
	out := make([][]byte, len(reqs))
	for i, r := range reqs {
		var (
			data []byte
			err  error
		)
		if r.whole() {
			data, err = p.Get(ctx, r.Key)
		} else {
			data, err = p.GetRange(ctx, r.Key, r.Offset, r.Length)
		}
		if err != nil {
			return out, err
		}
		out[i] = data
	}
	return out, nil
}

// PlanOptions shape how Coalesce turns individual range requests into few
// large origin requests.
type PlanOptions struct {
	// GapTolerance is the largest same-key byte gap bridged by one ranged
	// request: two ranges of the same object whose gap is at most this many
	// bytes merge into one request that over-reads the gap. Zero merges only
	// touching/overlapping ranges; negative disables same-key merging
	// entirely.
	GapTolerance int64
	// MaxRequestBytes caps the estimated payload of one coalesced origin
	// request; a batch closes when adding the next range would exceed it.
	// Zero means DefaultMaxRequestBytes.
	MaxRequestBytes int64
	// SizeHint estimates the payload of a whole-object request (Length < 0)
	// for packing purposes — callers that know their chunk target pass it.
	// Zero means DefaultSizeHint.
	SizeHint int64
}

const (
	// DefaultMaxRequestBytes is the per-request payload cap: 32MB, two of
	// the paper's 16MB ceiling chunks.
	DefaultMaxRequestBytes = 32 << 20
	// DefaultSizeHint is the packing estimate for whole-object requests,
	// the paper's 8MB chunk target.
	DefaultSizeHint = 8 << 20
)

func (o PlanOptions) withDefaults() PlanOptions {
	if o.MaxRequestBytes <= 0 {
		o.MaxRequestBytes = DefaultMaxRequestBytes
	}
	if o.SizeHint <= 0 {
		o.SizeHint = DefaultSizeHint
	}
	return o
}

// PlanPart maps one original request onto a slice of one wire payload.
type PlanPart struct {
	// Index is the position of the original request in the Coalesce input.
	Index int
	// Offset is where the original range starts inside the wire payload.
	Offset int64
	// Length is the original range's byte count; negative means "to the end
	// of the wire payload".
	Length int64
}

// Plan is one origin round trip: the coalesced wire requests issued
// together through GetRanges, and, per wire request, the parts of the
// original input it satisfies.
type Plan struct {
	// Wire is the ranged requests sent in this round trip.
	Wire []RangeReq
	// Parts is parallel to Wire: Parts[i] lists the original requests
	// served by Wire[i]'s payload.
	Parts [][]PlanPart
}

// Requests counts the wire requests across a set of plans.
func Requests(plans []Plan) int {
	n := 0
	for _, p := range plans {
		n += len(p.Wire)
	}
	return n
}

// Coalesce turns a list of range requests into few large origin round
// trips: same-key ranges within GapTolerance merge into one over-reading
// request, then merged requests pack greedily, in order, into batches whose
// estimated payload stays under MaxRequestBytes. Each returned Plan is one
// GetRanges call — one request's latency for all its wire ranges.
func Coalesce(reqs []RangeReq, opts PlanOptions) []Plan {
	opts = opts.withDefaults()
	if len(reqs) == 0 {
		return nil
	}

	// Phase 1: same-key merging. Requests are grouped by key (keys keep
	// first-appearance order so the visit order the caller planned is
	// preserved), sorted by offset within the key, and merged while the gap
	// fits the tolerance and the merged payload fits one request. A
	// whole-object request subsumes every range of its key.
	type wireReq struct {
		req   RangeReq
		parts []PlanPart
	}
	var merged []wireReq
	if opts.GapTolerance < 0 {
		merged = make([]wireReq, len(reqs))
		for i, r := range reqs {
			merged[i] = wireReq{req: r, parts: []PlanPart{{Index: i, Offset: 0, Length: r.Length}}}
		}
	} else {
		keyOrder := make([]string, 0, len(reqs))
		byKey := make(map[string][]int, len(reqs))
		for i, r := range reqs {
			if _, seen := byKey[r.Key]; !seen {
				keyOrder = append(keyOrder, r.Key)
			}
			byKey[r.Key] = append(byKey[r.Key], i)
		}
		for _, key := range keyOrder {
			idxs := byKey[key]
			sort.SliceStable(idxs, func(a, b int) bool {
				ra, rb := reqs[idxs[a]], reqs[idxs[b]]
				if ra.whole() != rb.whole() {
					return ra.whole() // whole-object first: it subsumes
				}
				return ra.Offset < rb.Offset
			})
			for _, i := range idxs {
				r := reqs[i]
				if n := len(merged); n > 0 && merged[n-1].req.Key == key {
					cur := &merged[n-1]
					if covers, off := mergeInto(&cur.req, r, opts); covers {
						cur.parts = append(cur.parts, PlanPart{Index: i, Offset: off, Length: r.Length})
						continue
					}
				}
				merged = append(merged, wireReq{
					req:   r,
					parts: []PlanPart{{Index: i, Offset: 0, Length: r.Length}},
				})
			}
		}
	}

	// Phase 2: greedy in-order packing into round trips.
	estimate := func(r RangeReq) int64 {
		if r.Length < 0 {
			return opts.SizeHint
		}
		return r.Length
	}
	var plans []Plan
	var cur Plan
	var curBytes int64
	flush := func() {
		if len(cur.Wire) > 0 {
			plans = append(plans, cur)
			cur, curBytes = Plan{}, 0
		}
	}
	for _, w := range merged {
		sz := estimate(w.req)
		if len(cur.Wire) > 0 && curBytes+sz > opts.MaxRequestBytes {
			flush()
		}
		cur.Wire = append(cur.Wire, w.req)
		cur.Parts = append(cur.Parts, w.parts)
		curBytes += sz
	}
	flush()
	return plans
}

// mergeInto extends cur to also cover next when the two ranges of the same
// key touch within the gap tolerance and the merged payload stays under the
// request cap. On success it reports the offset of next's range inside
// cur's merged payload.
func mergeInto(cur *RangeReq, next RangeReq, opts PlanOptions) (bool, int64) {
	if cur.whole() {
		// Whole object covers everything.
		return true, next.Offset
	}
	if next.whole() {
		return false, 0
	}
	if cur.Length < 0 {
		// cur reads to the end: next is covered iff it starts at or after
		// cur's offset (ranges are offset-sorted, so it does).
		if next.Offset >= cur.Offset {
			return true, next.Offset - cur.Offset
		}
		return false, 0
	}
	curEnd := cur.Offset + cur.Length
	if next.Offset > curEnd+opts.GapTolerance {
		return false, 0
	}
	end := curEnd
	if next.Length < 0 {
		cur.Length = -1
		return true, next.Offset - cur.Offset
	}
	if e := next.Offset + next.Length; e > end {
		end = e
	}
	if end-cur.Offset > opts.MaxRequestBytes {
		return false, 0
	}
	cur.Length = end - cur.Offset
	return true, next.Offset - cur.Offset
}

// ExecutePlans runs each plan as one GetRanges round trip against p and
// scatters the wire payloads back into a result slice parallel to the
// original Coalesce input (nReqs entries). The round trips run concurrently
// — Coalesce already sized each one at the payload cap, so sibling plans
// only exist because one request couldn't carry them, and serializing them
// would stack their latencies for nothing. Plans keep executing past a
// failed round trip — a fault in one batch never blocks sibling batches —
// and the first error (in plan order) is returned once all plans ran.
// Entries the failed round trips could not serve stay nil.
func ExecutePlans(ctx context.Context, p Provider, nReqs int, plans []Plan) ([][]byte, error) {
	out := make([][]byte, nReqs)
	errs := make([]error, len(plans))
	var wg sync.WaitGroup
	for pi, plan := range plans {
		wg.Add(1)
		go func(pi int, plan Plan) {
			defer wg.Done()
			payloads, err := GetRanges(ctx, p, plan.Wire)
			errs[pi] = err
			// Scatter is race-free: each original request index belongs to
			// exactly one plan's parts.
			for wi, parts := range plan.Parts {
				if wi >= len(payloads) || payloads[wi] == nil {
					continue
				}
				payload := payloads[wi]
				for _, pt := range parts {
					if pt.Index < 0 || pt.Index >= nReqs {
						continue
					}
					lo, hi, ok := clampRange(int64(len(payload)), pt.Offset, pt.Length)
					if !ok {
						continue
					}
					out[pt.Index] = payload[lo:hi]
				}
			}
		}(pi, plan)
	}
	wg.Wait()
	var firstErr error
	for _, err := range errs {
		if err != nil {
			firstErr = err
			break
		}
	}
	return out, firstErr
}

// Prefetcher is the cache-side face of the fetch-plan layer: providers that
// can warm themselves with coalesced batched origin reads implement it. The
// storage LRU does. Prefetch blocks until the bytes land; fetched reports
// how many objects actually came over the wire (cached and already-in-flight
// keys are skipped). PrefetchAsync claims the same keys synchronously — so a
// reader arriving next instant coalesces onto the in-flight batch instead of
// issuing its own round trip — but runs the origin round trips in the
// background, returning how many objects it is fetching. Pipelines that
// overlap fetch with setup use the async form; tests and cache-warming tools
// that need completion use the blocking form.
type Prefetcher interface {
	Prefetch(ctx context.Context, keys []string, opts PlanOptions) (fetched int, err error)
	PrefetchAsync(ctx context.Context, keys []string, opts PlanOptions) (claimed int)
}

// errPrefetchShed marks a key a coalesced prefetch could not serve (its
// round trip failed before reaching it). Readers coalesced onto the
// prefetch flight recover by issuing their own fetch instead of inheriting
// the batch's failure.
var errPrefetchShed = errors.New("storage: prefetch batch did not reach this key")

// Prefetch warms the cache for the given keys using coalesced batched
// origin requests: cached keys are skipped, keys already being fetched by
// another caller are skipped (their flight serves any waiter), and the rest
// are planned with Coalesce and fetched via GetRanges — N cold chunks cost
// ≪N origin round trips on a batch-aware origin. Fetched objects are
// admitted per-key, so cache granularity stays per-chunk, and any reader
// that coalesced onto an in-flight prefetch key shares the batch's result.
//
// A failed round trip sheds its unserved keys back to on-demand fetching
// (readers waiting on them retry their own Get); sibling batches still
// execute. fetched counts objects actually transferred and admitted.
func (l *LRU) Prefetch(ctx context.Context, keys []string, opts PlanOptions) (int, error) {
	reqs, finishes := l.prefetchClaim(keys)
	if len(reqs) == 0 {
		return 0, nil
	}
	return l.prefetchExec(ctx, reqs, finishes, opts)
}

// PrefetchAsync implements Prefetcher: leadership over every eligible key is
// taken before it returns — a reader arriving next instant coalesces onto
// the in-flight batch through the singleflight layer — while the coalesced
// origin round trips run in the background. Returns how many objects are
// being fetched.
func (l *LRU) PrefetchAsync(ctx context.Context, keys []string, opts PlanOptions) int {
	reqs, finishes := l.prefetchClaim(keys)
	if len(reqs) == 0 {
		return 0
	}
	go func() { _, _ = l.prefetchExec(ctx, reqs, finishes, opts) }()
	return len(reqs)
}

// prefetchClaim takes fetch leadership for every key that is neither cached
// nor already in flight, returning the whole-object requests to issue and,
// parallel to them, the flight-completion callbacks.
func (l *LRU) prefetchClaim(keys []string) ([]RangeReq, []func([]byte, error)) {
	reqs := make([]RangeReq, 0, len(keys))
	finishes := make([]func([]byte, error), 0, len(keys))
	for _, key := range keys {
		sh := l.shard(key)
		if _, ok := sh.peek(key); ok {
			continue // already cached: no wire traffic
		}
		finish, ok := l.flight.Lead(key)
		if !ok {
			continue // another caller is already fetching it
		}
		reqs = append(reqs, RangeReq{Key: key, Offset: 0, Length: -1})
		finishes = append(finishes, finish)
	}
	return reqs, finishes
}

// prefetchExec runs the claimed requests as coalesced plans and admits what
// lands, completing every claimed flight (with data, or with errPrefetchShed
// so waiting readers fall back to their own fetch).
func (l *LRU) prefetchExec(ctx context.Context, reqs []RangeReq, finishes []func([]byte, error), opts PlanOptions) (int, error) {
	plans := Coalesce(reqs, opts)
	results, err := ExecutePlans(ctx, l.origin, len(reqs), plans)
	fetched := 0
	for i, data := range results {
		if data != nil {
			// Admit a private copy: ExecutePlans payload slices may alias a
			// larger wire buffer shared with sibling parts.
			cp := make([]byte, len(data))
			copy(cp, data)
			l.admit(reqs[i].Key, cp)
			finishes[i](cp, nil)
			fetched++
			continue
		}
		cause := err
		if cause == nil {
			cause = ErrNotFound
		}
		l.shed.Add(1)
		finishes[i](nil, fmt.Errorf("%w (key %q): %w", errPrefetchShed, reqs[i].Key, cause))
	}
	l.prefetched.Add(int64(fetched))
	return fetched, err
}
