package storage

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/simnet"
)

func TestFaultyScheduleIsReproducible(t *testing.T) {
	ctx := context.Background()
	run := func() (FaultStats, []bool) {
		mem := NewMemory()
		if err := mem.Put(ctx, "k", []byte("v")); err != nil {
			t.Fatal(err)
		}
		f := NewFaulty(mem, FaultConfig{Seed: 99, GetErrRate: 0.3})
		outcomes := make([]bool, 50)
		for i := range outcomes {
			_, err := f.Get(ctx, "k")
			outcomes[i] = err != nil
		}
		return f.Stats(), outcomes
	}
	s1, o1 := run()
	s2, o2 := run()
	if s1 != s2 {
		t.Fatalf("stats differ across identical runs: %+v vs %+v", s1, s2)
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("op %d outcome differs across identical runs", i)
		}
	}
	if s1.Errors == 0 || s1.Errors == 50 {
		t.Fatalf("error rate 0.3 over 50 ops injected %d faults; schedule degenerate", s1.Errors)
	}
}

func TestFaultyScheduleIndependentPerClass(t *testing.T) {
	// Interleaving writes between reads must not change which reads fault:
	// each op class draws from its own sequence.
	ctx := context.Background()
	run := func(interleavePuts bool) []bool {
		mem := NewMemory()
		if err := mem.Put(ctx, "k", []byte("v")); err != nil {
			t.Fatal(err)
		}
		f := NewFaulty(mem, FaultConfig{Seed: 7, GetErrRate: 0.4})
		outcomes := make([]bool, 30)
		for i := range outcomes {
			if interleavePuts {
				_ = f.Put(ctx, "other", []byte("x"))
			}
			_, err := f.Get(ctx, "k")
			outcomes[i] = err != nil
		}
		return outcomes
	}
	plain, interleaved := run(false), run(true)
	for i := range plain {
		if plain[i] != interleaved[i] {
			t.Fatalf("get %d fault outcome changed when puts were interleaved", i)
		}
	}
}

func TestFaultyMaxFaultsCap(t *testing.T) {
	ctx := context.Background()
	mem := NewMemory()
	if err := mem.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	f := NewFaulty(mem, FaultConfig{GetErrRate: 1, MaxFaults: 3})
	failures := 0
	for i := 0; i < 20; i++ {
		if _, err := f.Get(ctx, "k"); err != nil {
			failures++
		}
	}
	if failures != 3 {
		t.Fatalf("%d failures with MaxFaults 3", failures)
	}
	if got := f.Stats().Total(); got != 3 {
		t.Fatalf("stats count %d faults, want 3", got)
	}
}

func TestFaultyDisarmedIsTransparent(t *testing.T) {
	ctx := context.Background()
	mem := NewMemory()
	if err := mem.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	f := NewFaulty(mem, FaultConfig{Seed: 3, GetErrRate: 1})
	f.SetArmed(false)
	for i := 0; i < 10; i++ {
		if _, err := f.Get(ctx, "k"); err != nil {
			t.Fatalf("disarmed get %d failed: %v", i, err)
		}
	}
	if f.Stats().Total() != 0 {
		t.Fatal("disarmed wrapper injected faults")
	}
	// Disarmed ops must not consume schedule positions: the first armed op
	// is still sequence 1, which faults under rate 1.
	f.SetArmed(true)
	if _, err := f.Get(ctx, "k"); err == nil {
		t.Fatal("first armed get should fault")
	}
}

func TestFaultyErrorsAreRetryable(t *testing.T) {
	ctx := context.Background()
	f := NewFaulty(NewMemory(), FaultConfig{GetErrRate: 1, PutErrRate: 1, MetaErrRate: 1, RangeErrRate: 1})
	if _, err := f.Get(ctx, "k"); !IsRetryable(err) {
		t.Fatalf("injected Get error not retryable: %v", err)
	}
	if _, err := f.GetRange(ctx, "k", 0, 1); !IsRetryable(err) {
		t.Fatalf("injected GetRange error not retryable: %v", err)
	}
	if err := f.Put(ctx, "k", []byte("v")); !IsRetryable(err) {
		t.Fatalf("injected Put error not retryable: %v", err)
	}
	if _, err := f.Size(ctx, "k"); !IsRetryable(err) {
		t.Fatalf("injected Size error not retryable: %v", err)
	}
}

func TestFaultyStallBlocksUntilContextDeadline(t *testing.T) {
	mem := NewMemory()
	f := NewFaulty(mem, FaultConfig{StallRate: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := f.Get(ctx, "k")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stall returned %v, want the context deadline", err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("stall returned after %v, before the deadline", elapsed)
	}
	// Stalls must not be retryable on their own: without a Retry OpTimeout
	// the caller's context died, and retrying for it is forbidden.
	if IsRetryable(err) {
		t.Fatal("stall context error classified retryable")
	}
}

func TestFaultyPartialReadChargesSimulatedNetwork(t *testing.T) {
	// A partial read transfers its prefix through the inner provider, so a
	// Sim layer below really pays for the wasted bytes.
	ctx := context.Background()
	profile := simnet.Profile{
		Name: "test", ReadLatency: time.Millisecond, WriteLatency: time.Millisecond,
		ReadBytesPerSec: 1 << 30, WriteBytesPerSec: 1 << 30, Lanes: 4, TimeScale: 1000,
	}
	sim := NewSim(NewMemory(), profile)
	if err := sim.Put(ctx, "k", make([]byte, 1<<20)); err != nil {
		t.Fatal(err)
	}
	counting := NewCounting(sim)
	f := NewFaulty(counting, FaultConfig{PartialRate: 1, PartialBytes: 4096, MaxFaults: 1})
	_, err := f.Get(ctx, "k")
	if !IsRetryable(err) {
		t.Fatalf("partial read error not retryable: %v", err)
	}
	snap := counting.Snapshot()
	if snap.RangeGets != 1 || snap.BytesRead != 4096 {
		t.Fatalf("partial read charged %d range gets / %d bytes, want 1 / 4096", snap.RangeGets, snap.BytesRead)
	}
	if f.Stats().Partials != 1 {
		t.Fatalf("partials = %d, want 1", f.Stats().Partials)
	}
}

func TestFaultyConcurrentUseIsSafe(t *testing.T) {
	// Hammer every op class from many goroutines under -race; totals must
	// reconcile with the per-class sequence counters.
	ctx := context.Background()
	mem := NewMemory()
	if err := mem.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	f := NewFaulty(mem, FaultConfig{Seed: 5, GetErrRate: 0.2, PutErrRate: 0.2, MetaErrRate: 0.2})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_, _ = f.Get(ctx, "k")
				_ = f.Put(ctx, "w", []byte("x"))
				_, _ = f.Exists(ctx, "k")
			}
		}()
	}
	wg.Wait()
	if f.Stats().Total() == 0 {
		t.Fatal("no faults injected across 2400 ops at 20% rates")
	}
}
