package storage

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestJitteredHerdOnHotPrefix is the ROADMAP "many processes, one hot
// prefix" stress test: a herd of goroutines hammers a handful of hot keys
// through the full resilient chain — LRU (singleflight) -> Verify -> Retry
// -> Faulty -> Memory — while the fault layer injects both transient errors
// and silent bit flips. It asserts the coalesced-miss invariant holds under
// faults with an exact request ledger: every attempt the origin sees is
// either a first fetch of a key, a Retry re-attempt, or a Verify heal.
func TestJitteredHerdOnHotPrefix(t *testing.T) {
	ctx := context.Background()
	mem := NewMemory()
	const hotKeys = 4
	payloads := make(map[string][]byte, hotKeys)
	for i := 0; i < hotKeys; i++ {
		key := fmt.Sprintf("hot/%04d", i)
		data := bytes.Repeat([]byte{byte(i + 1)}, 64<<10)
		if err := mem.Put(ctx, key, data); err != nil {
			t.Fatal(err)
		}
		payloads[key] = data
	}

	faulty := NewFaulty(mem, FaultConfig{
		Seed:        9,
		GetErrRate:  0.25,
		CorruptRate: 0.25,
	})
	counting := NewCounting(faulty)
	retry := NewRetry(counting, RetryOptions{
		Attempts: 10,
		Backoff:  Backoff{Base: 200 * time.Microsecond, Max: time.Millisecond, Seed: 42},
	})
	verify := NewVerify(retry, VerifyOptions{HealAttempts: 8})
	for key, data := range payloads {
		verify.SeedDigest(key, Checksum(data))
	}
	cache := NewShardedLRU(verify, 1<<20, 1)

	const herd = 64
	var wg sync.WaitGroup
	errs := make(chan error, herd*hotKeys)
	for g := 0; g < herd; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < hotKeys; i++ {
				// Spread goroutines over the prefix in different orders so
				// the herd genuinely collides on every key.
				key := fmt.Sprintf("hot/%04d", (g+i)%hotKeys)
				data, err := cache.Get(ctx, key)
				if err != nil {
					errs <- fmt.Errorf("reader %d key %s: %w", g, key, err)
					return
				}
				if !bytes.Equal(data, payloads[key]) {
					errs <- fmt.Errorf("reader %d key %s: wrong bytes", g, key)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	stats := cache.Stats()
	rs := retry.Stats()
	vs := verify.Stats()
	fs := faulty.Stats()
	attempts := counting.Snapshot().Gets

	// Exact ledger: injected error faults never reach the origin, so every
	// Get the Counting layer records is a first fetch (hotKeys of them), a
	// Retry re-attempt, or a Verify heal re-fetch. The herd itself adds
	// nothing — that is the coalesced-miss invariant under faults.
	want := int64(hotKeys) + rs.Retries + vs.Detected
	if attempts != want {
		t.Fatalf("origin attempts = %d, want %d (%d keys + %d retries + %d heals); faults: %+v",
			attempts, want, hotKeys, rs.Retries, vs.Detected, fs)
	}
	// The schedule must actually have exercised both recovery paths, and
	// the herd must actually have coalesced.
	if fs.Errors == 0 || fs.Corruptions == 0 {
		t.Fatalf("fault schedule too quiet for a herd test: %+v", fs)
	}
	if vs.Repaired != vs.Detected {
		t.Fatalf("not every corruption healed: %+v", vs)
	}
	if stats.Coalesced == 0 {
		t.Fatalf("herd of %d readers never coalesced: %+v", herd, stats)
	}
	if stats.Quarantined != 0 {
		t.Fatalf("transient corruption must not quarantine: %+v", vs)
	}
}

// TestBackoffJitterDesynchronizesHerd asserts the property the herd relies
// on: distinct backoff seeds (one per process/worker) give retry delays that
// all stay inside the capped-exponential window [d/2, d) but do not agree
// with each other, so a herd that faults together does not retry together.
func TestBackoffJitterDesynchronizesHerd(t *testing.T) {
	const seeds = 16
	base, max := 10*time.Millisecond, 80*time.Millisecond
	for attempt := 1; attempt <= 4; attempt++ {
		// Full (un-jittered) capped exponential delay for this attempt.
		full := base << (attempt - 1)
		if full > max {
			full = max
		}
		distinct := make(map[time.Duration]bool, seeds)
		for seed := int64(1); seed <= seeds; seed++ {
			d := Backoff{Base: base, Max: max, Seed: seed}.Delay(attempt)
			if d < full/2 || d >= full {
				t.Fatalf("attempt %d seed %d: delay %v outside jitter window [%v, %v)",
					attempt, seed, d, full/2, full)
			}
			distinct[d] = true
		}
		// A herd of 16 workers sleeping after a shared fault must spread
		// out: nearly every seed gets its own delay.
		if len(distinct) < seeds/2 {
			t.Fatalf("attempt %d: only %d distinct delays across %d seeds — herd stays synchronized",
				attempt, len(distinct), seeds)
		}
	}
}
