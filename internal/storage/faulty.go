package storage

import (
	"context"
	"fmt"
	"sync/atomic"
)

// Fault op classes: each class draws from its own deterministic schedule, so
// a run's fault pattern depends only on (Seed, per-class operation sequence),
// not on how goroutines interleave reads with writes or metadata calls.
const (
	faultClassGet = iota
	faultClassRange
	faultClassPut
	faultClassMeta  // Exists, Size, List, Delete
	faultClassBatch // GetRanges
	faultClasses
)

var faultClassName = [faultClasses]string{"get", "getrange", "put", "meta", "getranges"}

// FaultConfig describes a reproducible fault schedule for a Faulty provider.
// All rates are probabilities in [0, 1]; outcomes are decided by hashing
// (Seed, op class, per-class sequence number), so the same config over the
// same per-class operation sequence injects exactly the same faults —
// regardless of goroutine interleaving across classes.
type FaultConfig struct {
	// Seed drives the deterministic schedule.
	Seed int64
	// GetErrRate / RangeErrRate / PutErrRate / MetaErrRate are per-op-class
	// probabilities of failing with a transient error (IsRetryable = true)
	// before the inner provider is touched.
	GetErrRate, RangeErrRate, PutErrRate, MetaErrRate float64
	// StallRate is the probability (any class) that an operation
	// black-holes: it blocks until the operation's context is done and
	// returns the context error, the way a dead TCP peer looks to an SDK
	// with no socket timeout. Pair with Retry's OpTimeout.
	StallRate float64
	// PartialRate is the probability that a Get delivers only a prefix:
	// PartialBytes are actually read through the inner provider (charging
	// any simulated network underneath for the wasted transfer) and then
	// the call fails with a transient error.
	PartialRate float64
	// PartialBytes is the prefix length of a partial read. Zero means 1KB.
	PartialBytes int64
	// CorruptRate is the probability that a Get (or one range of a batched
	// GetRanges) *succeeds* with silently corrupted bytes: the object is
	// genuinely fetched through the inner provider, then one seeded byte is
	// flipped. Unlike the error-kind faults this failure is invisible to the
	// transport — only a digest check (Verify) or chunk footer catches it.
	CorruptRate float64
	// TruncateRate is the probability that a Get (or one range of a batched
	// GetRanges) *succeeds* with the payload cut short at a seeded point —
	// the silent-truncation cousin of CorruptRate.
	TruncateRate float64
	// MaxFaults caps the total number of injected faults; once reached the
	// provider becomes transparent. Zero means unlimited. A cap of 1 with
	// GetErrRate 1 injects exactly one fault on the first Get — the
	// singleflight-retry litmus configuration.
	MaxFaults int64
}

// FaultStats is a point-in-time copy of a Faulty wrapper's counters.
type FaultStats struct {
	// Errors, Stalls and Partials count injected faults by kind.
	Errors, Stalls, Partials int64
	// Corruptions and Truncations count reads that succeeded with silently
	// damaged bytes (bit flip / short payload).
	Corruptions, Truncations int64
}

// Total is the number of faults injected so far.
func (s FaultStats) Total() int64 {
	return s.Errors + s.Stalls + s.Partials + s.Corruptions + s.Truncations
}

// Faulty wraps a provider with deterministic fault injection for chaos
// testing: per-op-class transient error rates, stalls that black-hole until
// the context deadline, fail-after-N-bytes partial reads, and silent
// bit-flip/truncation faults that succeed with damaged bytes (CorruptRate /
// TruncateRate — the faults only a Verify layer or chunk footer catches).
// Injected errors carry ErrTransient, so a Retry layer stacked above
// recovers them while tests without one observe the raw failure. Typically Faulty wraps a
// Sim provider, making the flaky endpoint also pay simulated network costs.
//
// The schedule is seeded and reproducible (see FaultConfig); SetArmed(false)
// makes the wrapper transparent without consuming schedule positions, so a
// test can open a dataset cleanly and arm faults only for the phase under
// study.
type Faulty struct {
	inner Provider
	cfg   FaultConfig

	armed       atomic.Bool
	seq         [faultClasses]atomic.Int64
	injected    atomic.Int64
	errors      atomic.Int64
	stalls      atomic.Int64
	partials    atomic.Int64
	corruptions atomic.Int64
	truncations atomic.Int64
}

// NewFaulty wraps inner with the given fault schedule, armed.
func NewFaulty(inner Provider, cfg FaultConfig) *Faulty {
	if cfg.PartialBytes <= 0 {
		cfg.PartialBytes = 1 << 10
	}
	f := &Faulty{inner: inner, cfg: cfg}
	f.armed.Store(true)
	return f
}

// Unwrap returns the wrapped provider.
func (f *Faulty) Unwrap() Provider { return f.inner }

// SetArmed enables or disables fault injection. While disarmed, operations
// pass straight through and do not advance the fault schedule.
func (f *Faulty) SetArmed(on bool) { f.armed.Store(on) }

// Stats reports how many faults have been injected, by kind.
func (f *Faulty) Stats() FaultStats {
	return FaultStats{
		Errors:      f.errors.Load(),
		Stalls:      f.stalls.Load(),
		Partials:    f.partials.Load(),
		Corruptions: f.corruptions.Load(),
		Truncations: f.truncations.Load(),
	}
}

type faultKind int

const (
	faultNone faultKind = iota
	faultStall
	faultErr
	faultPartial
	faultCorrupt
	faultTruncate
)

// roll decides the outcome for the next operation of the given class.
func (f *Faulty) roll(class int, errRate float64) faultKind {
	kind, _ := f.rollSeq(class, errRate)
	return kind
}

// rollSeq is roll plus the operation's position in its class schedule, which
// seeds per-operation decisions beyond the fault kind (the batch cut point).
func (f *Faulty) rollSeq(class int, errRate float64) (faultKind, int64) {
	if !f.armed.Load() {
		return faultNone, 0
	}
	n := f.seq[class].Add(1)
	h := splitmix64(uint64(f.cfg.Seed)<<20 ^ uint64(class)<<56 ^ uint64(n))
	u := float64(h>>11) / (1 << 53)
	kind := faultNone
	// The corruption kinds extend the threshold ladder past the existing
	// kinds, so configs that predate them draw exactly the same schedule.
	partialClass := class == faultClassGet || class == faultClassBatch
	switch {
	case u < f.cfg.StallRate:
		kind = faultStall
	case u < f.cfg.StallRate+errRate:
		kind = faultErr
	case partialClass && u < f.cfg.StallRate+errRate+f.cfg.PartialRate:
		kind = faultPartial
	case partialClass && u < f.cfg.StallRate+errRate+f.cfg.PartialRate+f.cfg.CorruptRate:
		kind = faultCorrupt
	case partialClass && u < f.cfg.StallRate+errRate+f.cfg.PartialRate+f.cfg.CorruptRate+f.cfg.TruncateRate:
		kind = faultTruncate
	}
	if kind == faultNone {
		return faultNone, n
	}
	if f.cfg.MaxFaults > 0 && f.injected.Add(1) > f.cfg.MaxFaults {
		return faultNone, n
	} else if f.cfg.MaxFaults <= 0 {
		f.injected.Add(1)
	}
	switch kind {
	case faultStall:
		f.stalls.Add(1)
	case faultErr:
		f.errors.Add(1)
	case faultPartial:
		f.partials.Add(1)
	case faultCorrupt:
		f.corruptions.Add(1)
	case faultTruncate:
		f.truncations.Add(1)
	}
	return kind, n
}

// damage applies the seeded silent fault to data fetched successfully from
// the inner provider: faultCorrupt XORs one byte at a seeded position,
// faultTruncate cuts the payload at a seeded point. Empty payloads are
// returned unchanged (there is nothing to damage).
func (f *Faulty) damage(kind faultKind, seq int64, data []byte) []byte {
	if len(data) == 0 {
		return data
	}
	h := splitmix64(uint64(f.cfg.Seed)<<28 ^ uint64(seq))
	switch kind {
	case faultCorrupt:
		data[h%uint64(len(data))] ^= 0xA5
	case faultTruncate:
		data = data[:h%uint64(len(data))] // cut in [0, len)
	}
	return data
}

// stall blocks until ctx is done and returns its error: the black-hole
// failure mode. A context with no deadline or cancellation hangs forever,
// exactly like an SDK with no socket timeout — stack Retry with OpTimeout
// (or give the caller a deadline) when stalls are enabled.
func (f *Faulty) stall(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}

func (f *Faulty) injectedErr(class int, key string) error {
	return fmt.Errorf("storage: injected %s fault on %q: %w", faultClassName[class], key, ErrTransient)
}

// Get implements Provider.
func (f *Faulty) Get(ctx context.Context, key string) ([]byte, error) {
	kind, seq := f.rollSeq(faultClassGet, f.cfg.GetErrRate)
	switch kind {
	case faultStall:
		return nil, f.stall(ctx)
	case faultErr:
		return nil, f.injectedErr(faultClassGet, key)
	case faultPartial:
		// The prefix really transfers (and really costs simulated network
		// time below), then the connection "drops".
		_, _ = f.inner.GetRange(ctx, key, 0, f.cfg.PartialBytes)
		return nil, fmt.Errorf("storage: injected partial read of %q after %d bytes: %w",
			key, f.cfg.PartialBytes, ErrTransient)
	case faultCorrupt, faultTruncate:
		// A silent fault: the full object genuinely transfers (charging any
		// simulated network below), then the bytes are damaged on the way up
		// and the call *succeeds* — only an integrity check can tell.
		data, err := f.inner.Get(ctx, key)
		if err != nil {
			return data, err
		}
		return f.damage(kind, seq, data), nil
	}
	return f.inner.Get(ctx, key)
}

// GetRanges implements BatchProvider. Batched gets draw from their own
// fault-class schedule (seeded, per-class sequence — reproducible for a
// fixed config regardless of interleaving) using the Get rates: GetErrRate
// for connection drops, StallRate for black holes, PartialRate for
// mid-transfer cuts. A fault lands mid-batch at a deterministic cut point:
// ranges before the cut are genuinely served through the inner provider
// (siblings already received are never poisoned — the partial-results
// contract holds through the fault), the cut range and everything after are
// lost, and the call fails transiently so a Retry layer re-issues only the
// missing tail.
func (f *Faulty) GetRanges(ctx context.Context, reqs []RangeReq) ([][]byte, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	kind, seq := f.rollSeq(faultClassBatch, f.cfg.GetErrRate)
	switch kind {
	case faultStall:
		return make([][]byte, len(reqs)), f.stall(ctx)
	case faultCorrupt, faultTruncate:
		// The whole batch genuinely serves, then one seeded victim range is
		// silently damaged; the call succeeds, its siblings are untouched.
		out, err := GetRanges(ctx, f.inner, reqs)
		if err != nil {
			return out, err
		}
		victim := int(splitmix64(uint64(f.cfg.Seed)<<24^uint64(seq)) % uint64(len(reqs)))
		out[victim] = f.damage(kind, seq, out[victim])
		return out, nil
	case faultErr, faultPartial:
		// Deterministic cut: depends only on (Seed, class sequence), so the
		// same config over the same batch sequence cuts at the same points.
		cut := int(splitmix64(uint64(f.cfg.Seed)<<24^uint64(seq)) % uint64(len(reqs)))
		out := make([][]byte, len(reqs))
		if cut > 0 {
			served, err := GetRanges(ctx, f.inner, reqs[:cut])
			copy(out, served)
			if err != nil {
				return out, err
			}
		}
		if kind == faultPartial {
			// The victim range's prefix really transfers (charging any
			// simulated network below for the wasted bytes) before the drop.
			victim := reqs[cut]
			_, _ = f.inner.GetRange(ctx, victim.Key, victim.Offset, f.cfg.PartialBytes)
			return out, fmt.Errorf("storage: injected partial batch read of %q after %d/%d ranges: %w",
				victim.Key, cut, len(reqs), ErrTransient)
		}
		return out, fmt.Errorf("storage: injected %s fault after %d/%d ranges: %w",
			faultClassName[faultClassBatch], cut, len(reqs), ErrTransient)
	}
	return GetRanges(ctx, f.inner, reqs)
}

// GetRange implements Provider.
func (f *Faulty) GetRange(ctx context.Context, key string, offset, length int64) ([]byte, error) {
	switch f.roll(faultClassRange, f.cfg.RangeErrRate) {
	case faultStall:
		return nil, f.stall(ctx)
	case faultErr:
		return nil, f.injectedErr(faultClassRange, key)
	}
	return f.inner.GetRange(ctx, key, offset, length)
}

// Put implements Provider.
func (f *Faulty) Put(ctx context.Context, key string, data []byte) error {
	switch f.roll(faultClassPut, f.cfg.PutErrRate) {
	case faultStall:
		return f.stall(ctx)
	case faultErr:
		return f.injectedErr(faultClassPut, key)
	}
	return f.inner.Put(ctx, key, data)
}

// Delete implements Provider.
func (f *Faulty) Delete(ctx context.Context, key string) error {
	switch f.roll(faultClassMeta, f.cfg.MetaErrRate) {
	case faultStall:
		return f.stall(ctx)
	case faultErr:
		return f.injectedErr(faultClassMeta, key)
	}
	return f.inner.Delete(ctx, key)
}

// Exists implements Provider.
func (f *Faulty) Exists(ctx context.Context, key string) (bool, error) {
	switch f.roll(faultClassMeta, f.cfg.MetaErrRate) {
	case faultStall:
		return false, f.stall(ctx)
	case faultErr:
		return false, f.injectedErr(faultClassMeta, key)
	}
	return f.inner.Exists(ctx, key)
}

// List implements Provider.
func (f *Faulty) List(ctx context.Context, prefix string) ([]string, error) {
	switch f.roll(faultClassMeta, f.cfg.MetaErrRate) {
	case faultStall:
		return nil, f.stall(ctx)
	case faultErr:
		return nil, f.injectedErr(faultClassMeta, prefix)
	}
	return f.inner.List(ctx, prefix)
}

// Size implements Provider.
func (f *Faulty) Size(ctx context.Context, key string) (int64, error) {
	switch f.roll(faultClassMeta, f.cfg.MetaErrRate) {
	case faultStall:
		return 0, f.stall(ctx)
	case faultErr:
		return 0, f.injectedErr(faultClassMeta, key)
	}
	return f.inner.Size(ctx, key)
}
