package storage

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/simnet"
)

// providers returns one fresh instance of every Provider implementation so
// the contract tests run against all of them.
func providers(t *testing.T) map[string]Provider {
	t.Helper()
	fsp, err := NewFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fast := simnet.Profile{Name: "fast", Lanes: 16, TimeScale: 1e9,
		ReadBytesPerSec: 1e12, WriteBytesPerSec: 1e12}
	disk, err := NewDisk(NewMemory(), t.TempDir(), DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Provider{
		"memory": NewMemory(),
		"fs":     fsp,
		"sim":    NewSim(NewMemory(), fast),
		"lru":    NewLRU(NewMemory(), 1<<20),
		"prefix": NewPrefix(NewMemory(), "sub/dir"),
		"count":  NewCounting(NewMemory()),
		"disk":   disk,
	}
}

func TestProviderContract(t *testing.T) {
	ctx := context.Background()
	for name, p := range providers(t) {
		t.Run(name, func(t *testing.T) {
			// Missing key behavior.
			if _, err := p.Get(ctx, "nope"); !IsNotFound(err) {
				t.Fatalf("Get missing: err = %v, want ErrNotFound", err)
			}
			if _, err := p.Size(ctx, "nope"); !IsNotFound(err) {
				t.Fatalf("Size missing: err = %v, want ErrNotFound", err)
			}
			if ok, err := p.Exists(ctx, "nope"); err != nil || ok {
				t.Fatalf("Exists missing = %v, %v; want false, nil", ok, err)
			}
			if err := p.Delete(ctx, "nope"); err != nil {
				t.Fatalf("Delete missing: %v", err)
			}

			// Round trip.
			data := []byte("hello tensor storage format")
			if err := p.Put(ctx, "a/b/c", data); err != nil {
				t.Fatal(err)
			}
			got, err := p.Get(ctx, "a/b/c")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("Get = %q, want %q", got, data)
			}
			if n, err := p.Size(ctx, "a/b/c"); err != nil || n != int64(len(data)) {
				t.Fatalf("Size = %d, %v; want %d", n, err, len(data))
			}

			// Range reads.
			got, err = p.GetRange(ctx, "a/b/c", 6, 6)
			if err != nil || string(got) != "tensor" {
				t.Fatalf("GetRange = %q, %v; want \"tensor\"", got, err)
			}
			got, err = p.GetRange(ctx, "a/b/c", 6, -1)
			if err != nil || string(got) != "tensor storage format" {
				t.Fatalf("GetRange open-ended = %q, %v", got, err)
			}
			// Truncated past-end read.
			got, err = p.GetRange(ctx, "a/b/c", int64(len(data))-3, 100)
			if err != nil || string(got) != "mat" {
				t.Fatalf("GetRange truncated = %q, %v", got, err)
			}
			// Out-of-bounds offset errors.
			if _, err := p.GetRange(ctx, "a/b/c", int64(len(data))+1, 1); err == nil {
				t.Fatal("GetRange past end: want error")
			}

			// Overwrite.
			if err := p.Put(ctx, "a/b/c", []byte("v2")); err != nil {
				t.Fatal(err)
			}
			if got, _ := p.Get(ctx, "a/b/c"); string(got) != "v2" {
				t.Fatalf("after overwrite Get = %q, want v2", got)
			}

			// List ordering and prefix filter.
			for _, k := range []string{"t/img/chunk2", "t/img/chunk0", "t/img/chunk1", "t/lbl/chunk0"} {
				if err := p.Put(ctx, k, []byte{1}); err != nil {
					t.Fatal(err)
				}
			}
			keys, err := p.List(ctx, "t/img/")
			if err != nil {
				t.Fatal(err)
			}
			want := []string{"t/img/chunk0", "t/img/chunk1", "t/img/chunk2"}
			if !reflect.DeepEqual(keys, want) {
				t.Fatalf("List = %v, want %v", keys, want)
			}

			// Delete removes.
			if err := p.Delete(ctx, "a/b/c"); err != nil {
				t.Fatal(err)
			}
			if ok, _ := p.Exists(ctx, "a/b/c"); ok {
				t.Fatal("object survived delete")
			}
		})
	}
}

func TestMemoryIsolation(t *testing.T) {
	ctx := context.Background()
	m := NewMemory()
	buf := []byte("mutable")
	if err := m.Put(ctx, "k", buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X' // caller mutates its slice after Put
	got, _ := m.Get(ctx, "k")
	if string(got) != "mutable" {
		t.Fatalf("Put did not copy: got %q", got)
	}
	got[0] = 'Y' // caller mutates returned slice
	again, _ := m.Get(ctx, "k")
	if string(again) != "mutable" {
		t.Fatalf("Get did not copy: got %q", again)
	}
}

func TestLRUHitsAndEviction(t *testing.T) {
	ctx := context.Background()
	origin := NewCounting(NewMemory())
	// One shard: globally exact LRU ordering makes eviction deterministic.
	cache := NewShardedLRU(origin, 100, 1)

	if err := cache.Put(ctx, "a", make([]byte, 40)); err != nil {
		t.Fatal(err)
	}
	if err := cache.Put(ctx, "b", make([]byte, 40)); err != nil {
		t.Fatal(err)
	}
	origin.Reset()

	// Both resident: no origin reads.
	if _, err := cache.Get(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := cache.Get(ctx, "b"); err != nil {
		t.Fatal(err)
	}
	if gets := origin.Snapshot().Gets; gets != 0 {
		t.Fatalf("origin Gets = %d, want 0 (cache hits)", gets)
	}

	// Insert c (40 bytes): capacity 100 forces eviction of LRU entry.
	// Access order so far: a, b → least recent is a.
	if err := cache.Put(ctx, "c", make([]byte, 40)); err != nil {
		t.Fatal(err)
	}
	if _, err := cache.Get(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if gets := origin.Snapshot().Gets; gets != 1 {
		t.Fatalf("origin Gets = %d, want 1 (a was evicted)", gets)
	}
	stats := cache.Stats()
	if stats.Hits == 0 || stats.Misses == 0 {
		t.Fatalf("stats hits=%d misses=%d, want both > 0", stats.Hits, stats.Misses)
	}
	if stats.UsedBytes > 100 {
		t.Fatalf("resident bytes %d exceed capacity", stats.UsedBytes)
	}
}

func TestLRUOversizeObjectBypassesCache(t *testing.T) {
	ctx := context.Background()
	origin := NewCounting(NewMemory())
	cache := NewLRU(origin, 10)
	if err := cache.Put(ctx, "big", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if used := cache.Stats().UsedBytes; used != 0 {
		t.Fatalf("oversize object cached: used = %d", used)
	}
	if _, err := cache.Get(ctx, "big"); err != nil {
		t.Fatal(err)
	}
	if gets := origin.Snapshot().Gets; gets != 1 {
		t.Fatalf("origin Gets = %d, want 1", gets)
	}
}

func TestLRURangeReadDoesNotPromote(t *testing.T) {
	ctx := context.Background()
	origin := NewCounting(NewMemory())
	cache := NewLRU(origin, 1<<20)
	if err := origin.Put(ctx, "chunk", make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	if _, err := cache.GetRange(ctx, "chunk", 10, 10); err != nil {
		t.Fatal(err)
	}
	if used := cache.Stats().UsedBytes; used != 0 {
		t.Fatalf("range read promoted object into cache: used = %d", used)
	}
}

func TestPrefixIsolatesNamespace(t *testing.T) {
	ctx := context.Background()
	base := NewMemory()
	v1 := NewPrefix(base, "versions/v1")
	v2 := NewPrefix(base, "versions/v2")
	if err := v1.Put(ctx, "meta.json", []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := v2.Put(ctx, "meta.json", []byte("two")); err != nil {
		t.Fatal(err)
	}
	got, err := v1.Get(ctx, "meta.json")
	if err != nil || string(got) != "one" {
		t.Fatalf("v1 read = %q, %v", got, err)
	}
	keys, err := base.List(ctx, "versions/")
	if err != nil || len(keys) != 2 {
		t.Fatalf("base list = %v, %v", keys, err)
	}
	rel, err := v1.List(ctx, "")
	if err != nil || len(rel) != 1 || rel[0] != "meta.json" {
		t.Fatalf("prefix-relative list = %v, %v", rel, err)
	}
}

func TestFlakyInjectsFailures(t *testing.T) {
	ctx := context.Background()
	boom := errors.New("boom")
	inner := NewMemory()
	if err := inner.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	f := NewFlaky(inner, 3, boom)
	var failures int
	for i := 0; i < 9; i++ {
		if _, err := f.Get(ctx, "k"); errors.Is(err, boom) {
			failures++
		}
	}
	if failures != 3 {
		t.Fatalf("failures = %d, want 3 (every 3rd op)", failures)
	}
}

func TestSimChargesTraffic(t *testing.T) {
	ctx := context.Background()
	fast := simnet.Profile{Name: "f", Lanes: 4, TimeScale: 1e9, ReadBytesPerSec: 1e12, WriteBytesPerSec: 1e12}
	s := NewSimObjectStore(fast)
	if err := s.Put(ctx, "k", make([]byte, 1234)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetRange(ctx, "k", 0, 100); err != nil {
		t.Fatal(err)
	}
	_, in, out, _ := s.Network().Stats()
	if in != 1234 {
		t.Fatalf("bytesIn = %d, want 1234", in)
	}
	if out != 1234+100 {
		t.Fatalf("bytesOut = %d, want 1334", out)
	}
}

func TestCountingCounts(t *testing.T) {
	ctx := context.Background()
	c := NewCounting(NewMemory())
	if err := c.Put(ctx, "k", []byte("abcd")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetRange(ctx, "k", 0, 2); err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()
	if snap.Puts != 1 || snap.Gets != 1 || snap.RangeGets != 1 {
		t.Fatalf("counts = %d/%d/%d, want 1/1/1", snap.Puts, snap.Gets, snap.RangeGets)
	}
	if snap.BytesWritten != 4 || snap.BytesRead != 6 {
		t.Fatalf("bytes = w%d r%d, want w4 r6", snap.BytesWritten, snap.BytesRead)
	}
	if c.Requests() != 2 {
		t.Fatalf("Requests = %d, want 2", c.Requests())
	}
}

// Property: for any object and any (offset, length), GetRange agrees with
// slicing the full object under HTTP Range semantics.
func TestRangeSemanticsProperty(t *testing.T) {
	ctx := context.Background()
	m := NewMemory()
	f := func(data []byte, offset, length int16) bool {
		key := fmt.Sprintf("obj-%d", len(data))
		if err := m.Put(ctx, key, data); err != nil {
			return false
		}
		off, ln := int64(offset), int64(length)
		got, err := m.GetRange(ctx, key, off, ln)
		if off < 0 || off > int64(len(data)) {
			return err != nil
		}
		if err != nil {
			return false
		}
		lo := off
		hi := int64(len(data))
		if ln >= 0 && lo+ln < hi {
			hi = lo + ln
		}
		return bytes.Equal(got, data[lo:hi])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestClampRange(t *testing.T) {
	cases := []struct {
		n, off, length int64
		lo, hi         int64
		ok             bool
	}{
		{10, 0, -1, 0, 10, true},
		{10, 0, 5, 0, 5, true},
		{10, 5, 5, 5, 10, true},
		{10, 5, 100, 5, 10, true},
		{10, 10, 1, 10, 10, true},
		{10, 11, 1, 0, 0, false},
		{10, -1, 1, 0, 0, false},
		{0, 0, 0, 0, 0, true},
	}
	for _, c := range cases {
		lo, hi, ok := clampRange(c.n, c.off, c.length)
		if lo != c.lo || hi != c.hi || ok != c.ok {
			t.Errorf("clampRange(%d,%d,%d) = %d,%d,%v; want %d,%d,%v",
				c.n, c.off, c.length, lo, hi, ok, c.lo, c.hi, c.ok)
		}
	}
}
