package storage

import (
	"context"
	"errors"
	"sync"
)

// Flight deduplicates concurrent calls by key: while one caller (the leader)
// executes fn, every other caller arriving with the same key blocks and
// shares the leader's result instead of issuing its own call. This is the
// read-coalescing layer of the §3.6 provider chain — when many dataloader
// workers miss on the same chunk at once, exactly one origin fetch happens.
//
// The zero value is ready to use. Flight is safe for concurrent use.
type Flight[V any] struct {
	mu    sync.Mutex
	calls map[string]*flightCall[V]
}

type flightCall[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Do executes fn once per key across concurrent callers. The leader runs fn
// in its own goroutine context; followers block until the leader finishes or
// their own ctx is cancelled, whichever comes first. shared reports whether
// the returned value came from another caller's in-flight execution (i.e.
// this call was coalesced).
//
// A follower's cancellation does not abort the leader. If the leader itself
// fails, every follower observes the leader's error; callers that need
// isolation from a cancelled leader should retry when SharedCancellation
// reports the error came from the leader's context, not their own.
func (f *Flight[V]) Do(ctx context.Context, key string, fn func() (V, error)) (v V, shared bool, err error) {
	f.mu.Lock()
	if f.calls == nil {
		f.calls = make(map[string]*flightCall[V])
	}
	if c, ok := f.calls[key]; ok {
		f.mu.Unlock()
		select {
		case <-c.done:
			return c.val, true, c.err
		case <-ctx.Done():
			return v, true, ctx.Err()
		}
	}
	c := &flightCall[V]{done: make(chan struct{}), err: errFlightAbandoned}
	f.calls[key] = c
	f.mu.Unlock()

	// Cleanup runs even if fn panics or Goexits: the key is released and
	// followers observe errFlightAbandoned instead of blocking forever on a
	// done channel that never closes.
	defer func() {
		f.mu.Lock()
		delete(f.calls, key)
		f.mu.Unlock()
		close(c.done)
	}()
	c.val, c.err = fn()

	return c.val, false, c.err
}

// errFlightAbandoned is what followers observe when a leader's fn panicked
// or exited without returning.
var errFlightAbandoned = errors.New("storage: singleflight leader exited without a result")

// GetCoalesced runs the full read-coalescing miss protocol shared by the
// storage LRU and the dataloader chunk cache: win leadership or join an
// in-flight call; as leader, re-check the caller's cache via peek (another
// caller may have admitted the value between the caller's miss and
// leadership) before fetching; as follower, retry on a fresh flight when the
// leader failed of its own cancellation rather than inheriting its error.
// coalesced reports that the value came from — or was made unnecessary by —
// another caller's work, i.e. a fetch was avoided.
func (f *Flight[V]) GetCoalesced(ctx context.Context, key string, peek func() (V, bool), fetch func() (V, error)) (v V, coalesced bool, err error) {
	for {
		rescued := false
		v, shared, err := f.Do(ctx, key, func() (V, error) {
			if v, ok := peek(); ok {
				rescued = true
				return v, nil
			}
			return fetch()
		})
		if shared && SharedCancellation(ctx, err) {
			continue
		}
		return v, err == nil && (shared || rescued), err
	}
}

// SharedCancellation reports whether a shared flight error is another
// caller's context cancellation rather than the given (still live) context's
// own: the signal that a follower should retry instead of failing.
func SharedCancellation(ctx context.Context, err error) bool {
	return err != nil && ctx.Err() == nil &&
		(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
}

// Lead attempts to take non-blocking leadership of key: ok is false when a
// call for key is already in flight (its leader will serve any waiter). On
// success the caller MUST invoke finish exactly once with the result, which
// releases the key and wakes every follower that joined via Do in the
// meantime. This is how a batch prefetch registers many keys at once and
// delivers each key's bytes as they arrive, while on-demand readers
// coalesce onto the batch instead of issuing duplicate fetches.
func (f *Flight[V]) Lead(key string) (finish func(V, error), ok bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.calls == nil {
		f.calls = make(map[string]*flightCall[V])
	}
	if _, exists := f.calls[key]; exists {
		return nil, false
	}
	c := &flightCall[V]{done: make(chan struct{}), err: errFlightAbandoned}
	f.calls[key] = c
	return func(v V, err error) {
		c.val, c.err = v, err
		f.mu.Lock()
		delete(f.calls, key)
		f.mu.Unlock()
		close(c.done)
	}, true
}

// Inflight reports how many keys currently have an executing leader.
func (f *Flight[V]) Inflight() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.calls)
}
