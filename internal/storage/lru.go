package storage

import (
	"container/list"
	"context"
	"sync"
)

// LRU chains a fast cache in front of a slower origin provider (§3.6: "LRU
// cache of remote S3 storage with local in-memory data"). Whole objects are
// cached on Get and Put; range reads consult the cache and fall back to a
// range request against the origin without promoting the full object, so
// streaming sub-chunk access never inflates the cache with 8MB chunks the
// training loop only needed a slice of.
type LRU struct {
	origin   Provider
	capacity int64

	mu    sync.Mutex
	used  int64
	order *list.List // front = most recently used; values are *lruEntry
	items map[string]*list.Element

	hits, misses int64
}

type lruEntry struct {
	key  string
	data []byte
}

// NewLRU wraps origin with an in-memory LRU cache of the given byte
// capacity.
func NewLRU(origin Provider, capacity int64) *LRU {
	return &LRU{
		origin:   origin,
		capacity: capacity,
		order:    list.New(),
		items:    make(map[string]*list.Element),
	}
}

// Origin returns the wrapped provider.
func (l *LRU) Origin() Provider { return l.origin }

// Stats reports cache hits, misses, and resident bytes.
func (l *LRU) Stats() (hits, misses, usedBytes int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.hits, l.misses, l.used
}

func (l *LRU) lookup(key string) ([]byte, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	el, ok := l.items[key]
	if !ok {
		l.misses++
		return nil, false
	}
	l.hits++
	l.order.MoveToFront(el)
	return el.Value.(*lruEntry).data, true
}

func (l *LRU) admit(key string, data []byte) {
	if int64(len(data)) > l.capacity {
		return // object larger than the whole cache
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if el, ok := l.items[key]; ok {
		l.used += int64(len(data)) - int64(len(el.Value.(*lruEntry).data))
		el.Value.(*lruEntry).data = data
		l.order.MoveToFront(el)
	} else {
		l.items[key] = l.order.PushFront(&lruEntry{key: key, data: data})
		l.used += int64(len(data))
	}
	for l.used > l.capacity {
		back := l.order.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*lruEntry)
		l.order.Remove(back)
		delete(l.items, ent.key)
		l.used -= int64(len(ent.data))
	}
}

func (l *LRU) evict(key string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if el, ok := l.items[key]; ok {
		l.order.Remove(el)
		delete(l.items, key)
		l.used -= int64(len(el.Value.(*lruEntry).data))
	}
}

// Get implements Provider.
func (l *LRU) Get(ctx context.Context, key string) ([]byte, error) {
	if data, ok := l.lookup(key); ok {
		out := make([]byte, len(data))
		copy(out, data)
		return out, nil
	}
	data, err := l.origin.Get(ctx, key)
	if err != nil {
		return nil, err
	}
	l.admit(key, data)
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// GetRange implements Provider.
func (l *LRU) GetRange(ctx context.Context, key string, offset, length int64) ([]byte, error) {
	if data, ok := l.lookup(key); ok {
		lo, hi, ok := clampRange(int64(len(data)), offset, length)
		if !ok {
			return nil, rangeErr(key, offset, length, int64(len(data)))
		}
		out := make([]byte, hi-lo)
		copy(out, data[lo:hi])
		return out, nil
	}
	return l.origin.GetRange(ctx, key, offset, length)
}

// Put implements Provider. Write-through: the object lands in the origin and
// the cache.
func (l *LRU) Put(ctx context.Context, key string, data []byte) error {
	if err := l.origin.Put(ctx, key, data); err != nil {
		return err
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	l.admit(key, cp)
	return nil
}

// Delete implements Provider.
func (l *LRU) Delete(ctx context.Context, key string) error {
	l.evict(key)
	return l.origin.Delete(ctx, key)
}

// Exists implements Provider.
func (l *LRU) Exists(ctx context.Context, key string) (bool, error) {
	if _, ok := l.lookup(key); ok {
		return true, nil
	}
	return l.origin.Exists(ctx, key)
}

// List implements Provider. Listing always consults the origin: the cache
// holds a subset and cannot answer authoritatively.
func (l *LRU) List(ctx context.Context, prefix string) ([]string, error) {
	return l.origin.List(ctx, prefix)
}

// Size implements Provider.
func (l *LRU) Size(ctx context.Context, key string) (int64, error) {
	if data, ok := l.lookup(key); ok {
		return int64(len(data)), nil
	}
	return l.origin.Size(ctx, key)
}
