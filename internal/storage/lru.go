package storage

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// DefaultShards is the maximum shard count NewLRU chooses. Sixteen
// mutex-striped shards keep lock hold times short enough that dozens of
// dataloader workers probe the cache without serializing behind one another.
const DefaultShards = 16

// minShardBytes floors the automatic per-shard capacity at two of the
// paper's ~8MB target chunks (§3.4), so sharding a modest cache never
// silently un-caches the very objects the chain exists to hold.
const minShardBytes = 16 << 20

// defaultShardCount scales the shard count to capacity: one shard per
// minShardBytes, at most DefaultShards, at least one.
func defaultShardCount(capacity int64) int {
	n := int(capacity / minShardBytes)
	if n > DefaultShards {
		n = DefaultShards
	}
	if n < 1 {
		n = 1
	}
	return n
}

// LRU chains a fast cache in front of a slower origin provider (§3.6: "LRU
// cache of remote S3 storage with local in-memory data"). Whole objects are
// cached on Get and Put; range reads consult the cache and fall back to a
// range request against the origin without promoting the full object, so
// streaming sub-chunk access never inflates the cache with 8MB chunks the
// training loop only needed a slice of.
//
// The cache is built for the many-reader regime: entries are spread over
// mutex-striped shards keyed by a hash of the object key, and a singleflight
// layer coalesces concurrent misses so any number of workers missing on the
// same object trigger exactly one origin Get.
type LRU struct {
	origin Provider
	shards []*lruShard
	flight Flight[[]byte]

	coalesced  atomic.Int64
	prefetched atomic.Int64
	bypassed   atomic.Int64
	shed       atomic.Int64
}

type lruShard struct {
	capacity int64

	mu    sync.Mutex
	used  int64
	order *list.List // front = most recently used; values are *lruEntry
	items map[string]*list.Element

	hits, misses int64
}

type lruEntry struct {
	key  string
	data []byte
}

// NewLRU wraps origin with an in-memory cache of the given byte capacity.
// The shard count scales with capacity (one shard per 16MB, at most
// DefaultShards), so per-shard capacity always fits full-size chunks.
func NewLRU(origin Provider, capacity int64) *LRU {
	return NewShardedLRU(origin, capacity, defaultShardCount(capacity))
}

// NewShardedLRU wraps origin with an in-memory cache of the given byte
// capacity split across the given number of mutex-striped shards — evenly,
// with the division remainder spread one byte at a time over the leading
// shards, so no fraction of the configured budget is silently lost. A
// single shard
// gives globally exact LRU ordering (useful for deterministic tests); more
// shards trade eviction precision for lookup concurrency. Note that an
// object larger than one shard's budget bypasses the cache entirely — the
// bypass is counted in Stats.Bypassed, and callers choosing an explicit
// shard count are expected to size shards for their objects, or use NewLRU
// which does so automatically.
func NewShardedLRU(origin Provider, capacity int64, shards int) *LRU {
	if shards < 1 {
		shards = 1
	}
	l := &LRU{origin: origin, shards: make([]*lruShard, shards)}
	per, rem := capacity/int64(shards), capacity%int64(shards)
	for i := range l.shards {
		cap := per
		if int64(i) < rem {
			cap++
		}
		l.shards[i] = &lruShard{
			capacity: cap,
			order:    list.New(),
			items:    make(map[string]*list.Element),
		}
	}
	return l
}

// Origin returns the wrapped provider.
func (l *LRU) Origin() Provider { return l.origin }

// Unwrap returns the wrapped provider (the chain-walking alias of Origin).
func (l *LRU) Unwrap() Provider { return l.origin }

// NumShards returns the shard count.
func (l *LRU) NumShards() int { return len(l.shards) }

// Capacity returns the cache's total byte capacity across shards.
func (l *LRU) Capacity() int64 {
	var total int64
	for _, s := range l.shards {
		total += s.capacity
	}
	return total
}

// shard maps a key to its shard by FNV-1a hash.
func (l *LRU) shard(key string) *lruShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return l.shards[h%uint64(len(l.shards))]
}

// ShardStats reports one shard's counters.
type ShardStats struct {
	// Hits and Misses count lookups resolved from / past this shard.
	Hits, Misses int64
	// UsedBytes is the shard's resident payload size.
	UsedBytes int64
	// Entries is the number of cached objects in the shard.
	Entries int
}

// Stats aggregates cache counters: totals across shards plus the per-shard
// breakdown, the number of origin fetches avoided by read coalescing, and —
// when a Retry or Faulty layer sits below this cache in the provider chain —
// the resilience counters (origin re-attempts, injected faults).
type Stats struct {
	// Hits and Misses are summed over all shards.
	Hits, Misses int64
	// Coalesced counts Gets that piggybacked on another caller's in-flight
	// origin fetch instead of issuing their own.
	Coalesced int64
	// Prefetched counts objects admitted by coalesced batch prefetches
	// (Prefetch) rather than on-demand misses.
	Prefetched int64
	// PrefetchShed counts prefetch-claimed keys whose coalesced round trip
	// failed before reaching them: their flights completed with a shed
	// marker and any waiting readers fell back to on-demand fetches. A
	// nonzero value means prefetching is degraded (origin faults mid-batch),
	// not that data was lost.
	PrefetchShed int64
	// Bypassed counts objects that could not be cached because they were
	// larger than one shard's byte budget — the signal that the shard
	// count is too high (or the capacity too low) for the object sizes
	// flowing through the chain.
	Bypassed int64
	// UsedBytes is the total resident payload size.
	UsedBytes int64
	// Origin is the per-op-class origin request ledger gathered from the
	// first Counting layer below this cache in the provider chain (zero when
	// none is stacked), so callers can assert request-count contracts like
	// "N chunks, ≪N origin requests" straight off the cache stats.
	Origin CountingStats
	// Retries counts origin re-attempts issued by a Retry layer below this
	// cache (0 when none is stacked).
	Retries int64
	// Faults counts faults injected by a Faulty layer below this cache
	// (0 when none is stacked).
	Faults int64
	// CorruptionsDetected, CorruptionsRepaired and Quarantined are gathered
	// from a Verify layer below this cache (all 0 when none is stacked):
	// digest mismatches observed, mismatches resolved by a self-healing
	// re-fetch, and keys quarantined after repeated mismatches.
	CorruptionsDetected, CorruptionsRepaired, Quarantined int64
	// Disk aggregates the local-disk tier's counters when a Disk layer
	// sits below this cache in the provider chain (§3.6 RAM → disk →
	// origin); the zero value when none is stacked.
	Disk DiskStats
	// Shards is the per-shard breakdown, indexed by shard number.
	Shards []ShardStats
}

// Stats reports cache counters across all shards, plus retry/fault counters
// gathered by walking the origin chain through Unwrap.
func (l *LRU) Stats() Stats {
	s := Stats{
		Coalesced:    l.coalesced.Load(),
		Prefetched:   l.prefetched.Load(),
		Bypassed:     l.bypassed.Load(),
		PrefetchShed: l.shed.Load(),
		Shards:       make([]ShardStats, len(l.shards)),
	}
	for i, sh := range l.shards {
		sh.mu.Lock()
		ss := ShardStats{Hits: sh.hits, Misses: sh.misses, UsedBytes: sh.used, Entries: len(sh.items)}
		sh.mu.Unlock()
		s.Shards[i] = ss
		s.Hits += ss.Hits
		s.Misses += ss.Misses
		s.UsedBytes += ss.UsedBytes
	}
	sawCounting := false
	for p := l.origin; p != nil; {
		switch v := p.(type) {
		case *Retry:
			s.Retries += v.Stats().Retries
		case *Faulty:
			s.Faults += v.Stats().Total()
		case *Verify:
			vs := v.Stats()
			s.CorruptionsDetected += vs.Detected
			s.CorruptionsRepaired += vs.Repaired
			s.Quarantined += vs.Quarantined
		case *Disk:
			ds := v.Stats()
			s.Disk.Hits += ds.Hits
			s.Disk.WarmHits += ds.WarmHits
			s.Disk.Misses += ds.Misses
			s.Disk.Evictions += ds.Evictions
			s.Disk.Bypassed += ds.Bypassed
			s.Disk.CorruptionsDetected += ds.CorruptionsDetected
			s.Disk.UsedBytes += ds.UsedBytes
			s.Disk.Entries += ds.Entries
		case *Counting:
			if !sawCounting {
				s.Origin = v.Snapshot()
				sawCounting = true
			}
		}
		u, ok := p.(interface{ Unwrap() Provider })
		if !ok {
			break
		}
		p = u.Unwrap()
	}
	return s
}

func (s *lruShard) lookup(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		s.misses++
		return nil, false
	}
	s.hits++
	s.order.MoveToFront(el)
	return el.Value.(*lruEntry).data, true
}

// peek is lookup without touching the hit/miss counters; the singleflight
// leader uses it to re-check the shard after winning leadership, so a miss
// that raced with another caller's admit does not refetch from the origin.
func (s *lruShard) peek(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		return nil, false
	}
	s.order.MoveToFront(el)
	return el.Value.(*lruEntry).data, true
}

// admit inserts (or refreshes) key and reports whether the object was
// actually cached; an object larger than the whole shard is rejected.
func (s *lruShard) admit(key string, data []byte) bool {
	if int64(len(data)) > s.capacity {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		s.used += int64(len(data)) - int64(len(el.Value.(*lruEntry).data))
		el.Value.(*lruEntry).data = data
		s.order.MoveToFront(el)
	} else {
		s.items[key] = s.order.PushFront(&lruEntry{key: key, data: data})
		s.used += int64(len(data))
	}
	for s.used > s.capacity {
		back := s.order.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*lruEntry)
		s.order.Remove(back)
		delete(s.items, ent.key)
		s.used -= int64(len(ent.data))
	}
	return true
}

// admit routes an object to its shard and counts the silent-bypass case —
// an object larger than one shard's budget that the cache cannot hold —
// so undersized shard configurations are visible in Stats.Bypassed instead
// of masquerading as a stream of misses.
func (l *LRU) admit(key string, data []byte) {
	if !l.shard(key).admit(key, data) {
		l.bypassed.Add(1)
	}
}

func (s *lruShard) evict(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		s.order.Remove(el)
		delete(s.items, key)
		s.used -= int64(len(el.Value.(*lruEntry).data))
	}
}

// Evict drops key from the cache without touching the origin. Callers that
// discover a cached object is bad (a failed chunk-footer check above the
// cache) evict it so the next Get re-fetches through the verifying chain.
func (l *LRU) Evict(key string) { l.shard(key).evict(key) }

// Get implements Provider. Concurrent misses on the same key are coalesced
// into a single origin fetch.
func (l *LRU) Get(ctx context.Context, key string) ([]byte, error) {
	sh := l.shard(key)
	if data, ok := sh.lookup(key); ok {
		out := make([]byte, len(data))
		copy(out, data)
		return out, nil
	}
	fetch := func() ([]byte, error) {
		data, err := l.origin.Get(ctx, key)
		if err != nil {
			return nil, err
		}
		l.admit(key, data)
		return data, nil
	}
	data, coalesced, err := l.flight.GetCoalesced(ctx, key,
		func() ([]byte, bool) { return sh.peek(key) }, fetch)
	if coalesced {
		l.coalesced.Add(1)
	}
	if err != nil && errors.Is(err, errPrefetchShed) && ctx.Err() == nil {
		// This reader coalesced onto a batch prefetch whose round trip
		// failed before reaching the key; fall back to an on-demand fetch
		// instead of inheriting the batch's failure.
		data, err = fetch()
	}
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// GetRange implements Provider.
func (l *LRU) GetRange(ctx context.Context, key string, offset, length int64) ([]byte, error) {
	if data, ok := l.shard(key).lookup(key); ok {
		lo, hi, ok := clampRange(int64(len(data)), offset, length)
		if !ok {
			return nil, rangeErr(key, offset, length, int64(len(data)))
		}
		out := make([]byte, hi-lo)
		copy(out, data[lo:hi])
		return out, nil
	}
	return l.origin.GetRange(ctx, key, offset, length)
}

// Put implements Provider. Write-through: the object lands in the origin and
// the cache.
func (l *LRU) Put(ctx context.Context, key string, data []byte) error {
	if err := l.origin.Put(ctx, key, data); err != nil {
		return err
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	l.admit(key, cp)
	return nil
}

// Delete implements Provider.
func (l *LRU) Delete(ctx context.Context, key string) error {
	l.shard(key).evict(key)
	return l.origin.Delete(ctx, key)
}

// Exists implements Provider.
func (l *LRU) Exists(ctx context.Context, key string) (bool, error) {
	if _, ok := l.shard(key).lookup(key); ok {
		return true, nil
	}
	return l.origin.Exists(ctx, key)
}

// List implements Provider. Listing always consults the origin: the cache
// holds a subset and cannot answer authoritatively.
func (l *LRU) List(ctx context.Context, prefix string) ([]string, error) {
	return l.origin.List(ctx, prefix)
}

// Size implements Provider.
func (l *LRU) Size(ctx context.Context, key string) (int64, error) {
	if data, ok := l.shard(key).lookup(key); ok {
		return int64(len(data)), nil
	}
	return l.origin.Size(ctx, key)
}
