package storage

// NodeBudget is the one knob a training node gets for its cache hierarchy.
// PR 7/PR 9 left the three tiers — the raw-chunk RAM LRU, the dataloader's
// decoded-chunk NodeCache, and the local-disk tier — sizing themselves
// independently, so the same machine could be budgeted three times over.
// NodeBudget splits a single declared capacity instead:
//
//   - MemoryBytes is divided between the two RAM consumers: 3/8 to the
//     raw-chunk LRU (LRUBytes) and 5/8 to the decoded-chunk cache
//     (DecodedBytes). Decoded chunks get the larger share because media
//     decode inflates payloads (a JPEG chunk decodes to several times its
//     stored size) and re-decoding is the more expensive miss: a raw-chunk
//     miss costs one coalesced origin round trip, a decoded-chunk miss
//     costs fetch plus decode for every rank on the node.
//   - DiskBytes caps the local-disk tier, with DiskOptions semantics:
//     zero means DefaultDiskCapacity, negative means unbounded.
//
// Zero or negative MemoryBytes means DefaultNodeMemoryBytes. The split is
// a default derivation, not a cage — callers needing asymmetric tiers keep
// sizing them directly.
type NodeBudget struct {
	// MemoryBytes is the RAM the node grants to caching, shared by the
	// raw-chunk LRU and the decoded-chunk NodeCache.
	MemoryBytes int64
	// DiskBytes is the local-disk tier's capacity (DiskOptions.Capacity
	// semantics: zero = DefaultDiskCapacity, negative = unbounded).
	DiskBytes int64
}

// DefaultNodeMemoryBytes is the memory budget assumed when NodeBudget leaves
// MemoryBytes unset: 1GB, enough for ~64 paper-target 8MB raw chunks in the
// LRU share plus their decoded forms in the NodeCache share.
const DefaultNodeMemoryBytes = 1 << 30

func (b NodeBudget) memory() int64 {
	if b.MemoryBytes > 0 {
		return b.MemoryBytes
	}
	return DefaultNodeMemoryBytes
}

// LRUBytes is the raw-chunk RAM cache's share of the memory budget: 3/8.
func (b NodeBudget) LRUBytes() int64 { return b.memory() * 3 / 8 }

// DecodedBytes is the decoded-chunk cache's share of the memory budget: the
// remaining 5/8 (exactly MemoryBytes - LRUBytes, so the shares always sum
// to the budget).
func (b NodeBudget) DecodedBytes() int64 { return b.memory() - b.LRUBytes() }

// DiskCapacity is the value to hand DiskOptions.Capacity: DiskBytes as
// given, since DiskOptions already maps zero to DefaultDiskCapacity and
// negative to unbounded.
func (b NodeBudget) DiskCapacity() int64 { return b.DiskBytes }
