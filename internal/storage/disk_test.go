package storage

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The disk-tier suite: warm restart, checksum verification of survivor
// files, LRU eviction of the on-disk population, and the batched read path.
// Plus the PR's durability satellites: FS.Put temp-file hygiene and the
// sharded LRU's remainder/bypass accounting.

func TestDiskTierWarmRestart(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	origin := NewMemory()

	d1, err := NewDisk(origin, dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d1.Put(ctx, "t/a", []byte("alpha-bytes")); err != nil {
		t.Fatal(err)
	}
	if err := d1.Put(ctx, "t/b", []byte("beta-bytes")); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh tier over the same directory must index the
	// survivors and serve them as warm hits without touching the origin.
	d2, err := NewDisk(NewMemory(), dir, DiskOptions{}) // empty origin: a fallthrough would fail
	if err != nil {
		t.Fatal(err)
	}
	if st := d2.Stats(); st.Entries != 2 {
		t.Fatalf("restart indexed %d entries, want 2", st.Entries)
	}
	got, err := d2.Get(ctx, "t/a")
	if err != nil || !bytes.Equal(got, []byte("alpha-bytes")) {
		t.Fatalf("warm Get = %q, %v", got, err)
	}
	st := d2.Stats()
	if st.Hits != 1 || st.WarmHits != 1 {
		t.Fatalf("after warm Get: hits=%d warmHits=%d, want 1/1", st.Hits, st.WarmHits)
	}

	// A fresh miss is admitted non-warm: its later hits do not count warm.
	d3, err := NewDisk(origin, t.TempDir(), DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d3.Get(ctx, "t/a"); err != nil {
		t.Fatal(err)
	}
	if _, err := d3.Get(ctx, "t/a"); err != nil {
		t.Fatal(err)
	}
	if st := d3.Stats(); st.Misses != 1 || st.Hits != 1 || st.WarmHits != 0 {
		t.Fatalf("cold tier: hits=%d warmHits=%d misses=%d, want 1/0/1", st.Hits, st.WarmHits, st.Misses)
	}
}

func TestDiskTierVerifiesWarmFilesAgainstSeededDigests(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	origin := NewMemory()
	data := []byte("the canonical chunk bytes")

	d1, err := NewDisk(origin, dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d1.Put(ctx, "chunks/0", data); err != nil {
		t.Fatal(err)
	}

	// Corrupt the file while "the process is down".
	path := filepath.Join(dir, "chunks", "0")
	if err := os.WriteFile(path, []byte("the cAnonical chunk bytes"), 0o644); err != nil {
		t.Fatal(err)
	}

	d2, err := NewDisk(origin, dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Seed the manifest digest the way core.Open does through SeedDigests.
	if n := SeedDigests(d2, map[string]uint32{"chunks/0": Checksum(data)}); n != 1 {
		t.Fatalf("SeedDigests seeded %d, want 1", n)
	}
	got, err := d2.Get(ctx, "chunks/0")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Get after corruption = %q, %v; want healed bytes", got, err)
	}
	st := d2.Stats()
	if st.CorruptionsDetected != 1 {
		t.Fatalf("CorruptionsDetected = %d, want 1", st.CorruptionsDetected)
	}
	if st.Misses != 1 {
		t.Fatalf("corrupt read should fall through to origin once, misses = %d", st.Misses)
	}
	// The heal re-admits the good bytes: next read is a clean (cold) hit.
	if _, err := d2.Get(ctx, "chunks/0"); err != nil {
		t.Fatal(err)
	}
	if st := d2.Stats(); st.Hits != 1 || st.CorruptionsDetected != 1 {
		t.Fatalf("after heal: hits=%d corruptions=%d, want 1/1", st.Hits, st.CorruptionsDetected)
	}
}

func TestDiskTierEvictsLRUFilesAndBypassesOversize(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	d, err := NewDisk(NewMemory(), dir, DiskOptions{Capacity: 128})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put(ctx, "a", make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if err := d.Put(ctx, "b", make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Get(ctx, "a"); err != nil { // touch a: b becomes LRU
		t.Fatal(err)
	}
	if err := d.Put(ctx, "c", make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Evictions != 1 || st.UsedBytes != 128 {
		t.Fatalf("evictions=%d used=%d, want 1/128", st.Evictions, st.UsedBytes)
	}
	if _, err := os.Stat(filepath.Join(dir, "b")); !os.IsNotExist(err) {
		t.Fatalf("evicted entry's file still on disk (stat err = %v)", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "a")); err != nil {
		t.Fatalf("recently used entry's file missing: %v", err)
	}

	// An object larger than the whole tier is bypassed, not thrashed.
	if err := d.Put(ctx, "huge", make([]byte, 256)); err != nil {
		t.Fatal(err)
	}
	if st := d.Stats(); st.Bypassed != 1 {
		t.Fatalf("Bypassed = %d, want 1", st.Bypassed)
	}
	if _, err := os.Stat(filepath.Join(dir, "huge")); !os.IsNotExist(err) {
		t.Fatalf("bypassed object landed on disk (stat err = %v)", err)
	}
}

func TestDiskTierGetRangesServesCachedWholeObjects(t *testing.T) {
	ctx := context.Background()
	origin := NewCounting(NewMemory())
	d, err := NewDisk(origin, t.TempDir(), DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := origin.Put(ctx, "cold", []byte("cold-bytes")); err != nil {
		t.Fatal(err)
	}
	if err := d.Put(ctx, "warm", []byte("warm-bytes")); err != nil {
		t.Fatal(err)
	}
	origin.Reset()
	out, err := GetRanges(ctx, d, []RangeReq{
		{Key: "warm", Offset: 0, Length: -1},
		{Key: "cold", Offset: 0, Length: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out[0], []byte("warm-bytes")) || !bytes.Equal(out[1], []byte("cold-bytes")) {
		t.Fatalf("GetRanges = %q / %q", out[0], out[1])
	}
	snap := origin.Snapshot()
	if snap.Gets+snap.RangeGets+snap.BatchRanges != 1 {
		t.Fatalf("origin served %d objects, want only the cold one", snap.Gets+snap.RangeGets+snap.BatchRanges)
	}
	st := d.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", st.Hits, st.Misses)
	}
	// The forwarded whole object was admitted on the way back.
	origin.Reset()
	if _, err := d.Get(ctx, "cold"); err != nil {
		t.Fatal(err)
	}
	if snap := origin.Snapshot(); snap.Gets != 0 {
		t.Fatalf("re-read of forwarded object hit origin (%d gets)", snap.Gets)
	}
}

// TestFSPutCrashPathLeavesNoTempResidue is the fsync satellite's test: a
// failed publish (rename refused) must remove its temp file, and a
// successful Put must leave exactly the destination behind — no .tmp-*
// residue survives either path.
func TestFSPutCrashPathLeavesNoTempResidue(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	f, err := NewFS(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Simulated crash path: the destination is occupied by a directory, so
	// the temp file is written and fsynced but the rename publish fails.
	if err := os.MkdirAll(filepath.Join(dir, "obj"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := f.Put(ctx, "obj", []byte("payload")); err == nil {
		t.Fatal("Put over a directory succeeded, want rename failure")
	}
	assertNoTempResidue(t, dir)

	// Successful path.
	if err := f.Put(ctx, "ok/obj", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	assertNoTempResidue(t, dir)
	if got, err := f.Get(ctx, "ok/obj"); err != nil || !bytes.Equal(got, []byte("payload")) {
		t.Fatalf("Get after Put = %q, %v", got, err)
	}
}

func assertNoTempResidue(t *testing.T, dir string) {
	t.Helper()
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if strings.HasPrefix(filepath.Base(path), ".tmp-") {
			t.Fatalf("temp residue survived: %s", path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestShardedLRUDistributesRemainder is the budget satellite's test: the
// capacity division remainder is spread over the leading shards instead of
// silently dropped.
func TestShardedLRUDistributesRemainder(t *testing.T) {
	l := NewShardedLRU(NewMemory(), 4099, 8)
	var total int64
	for i, s := range l.shards {
		total += s.capacity
		want := int64(512)
		if i < 3 { // 4099 = 8*512 + 3
			want = 513
		}
		if s.capacity != want {
			t.Fatalf("shard %d capacity = %d, want %d", i, s.capacity, want)
		}
	}
	if total != 4099 {
		t.Fatalf("shard capacities sum to %d, want the full 4099", total)
	}
}

// TestLRUBypassSurfacedInStats: objects too large for their shard used to
// bypass the cache with no signal; both the Put and the Get-fill paths must
// now count the bypass.
func TestLRUBypassSurfacedInStats(t *testing.T) {
	ctx := context.Background()
	l := NewShardedLRU(NewMemory(), 64, 1)
	if err := l.Put(ctx, "big-put", make([]byte, 128)); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().Bypassed; got != 1 {
		t.Fatalf("Bypassed after oversized Put = %d, want 1", got)
	}
	if err := l.Origin().Put(ctx, "big-get", make([]byte, 128)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Get(ctx, "big-get"); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().Bypassed; got != 2 {
		t.Fatalf("Bypassed after oversized Get fill = %d, want 2", got)
	}
	// Objects that fit do not count.
	if err := l.Put(ctx, "small", make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().Bypassed; got != 2 {
		t.Fatalf("Bypassed after fitting Put = %d, want 2", got)
	}
}
