package storage

import (
	"bytes"
	"context"
	"errors"
	"testing"
)

func putObj(t *testing.T, p Provider, key string, data []byte) {
	t.Helper()
	if err := p.Put(context.Background(), key, data); err != nil {
		t.Fatal(err)
	}
}

// corruptInPlace flips one byte of the stored object behind every wrapper's
// back, simulating at-rest corruption.
func corruptInPlace(t *testing.T, mem *Memory, key string) {
	t.Helper()
	ctx := context.Background()
	raw, err := mem.Get(ctx, key)
	if err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 0xFF
	if err := mem.Put(ctx, key, raw); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyPassThroughAndDigestRecording(t *testing.T) {
	ctx := context.Background()
	mem := NewMemory()
	v := NewVerify(mem, VerifyOptions{})

	want := []byte("hello integrity")
	putObj(t, v, "k", want)

	got, err := v.Get(ctx, "k")
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if crc, ok := v.Digest("k"); !ok || crc != Checksum(want) {
		t.Fatalf("digest not recorded on Put: %08x, %v", crc, ok)
	}
	s := v.Stats()
	if s.Verified != 1 || s.Detected != 0 || s.Unverified != 0 {
		t.Fatalf("stats after clean read: %+v", s)
	}

	// A key with no digest passes through unverified.
	putObj(t, mem, "legacy", []byte("no digest"))
	if _, err := v.Get(ctx, "legacy"); err != nil {
		t.Fatal(err)
	}
	if s := v.Stats(); s.Unverified != 1 {
		t.Fatalf("unverified not counted: %+v", s)
	}
}

func TestVerifyHealsPersistentCorruptionFromOrigin(t *testing.T) {
	// At-rest corruption in a Memory store is permanent: every re-fetch
	// returns the same bad bytes, so the heal budget runs out and the error
	// must be transient + corrupted.
	ctx := context.Background()
	mem := NewMemory()
	counting := NewCounting(mem)
	v := NewVerify(counting, VerifyOptions{HealAttempts: 2, QuarantineAfter: 2})
	putObj(t, v, "k", []byte("payload"))
	corruptInPlace(t, mem, "k")

	_, err := v.Get(ctx, "k")
	if err == nil {
		t.Fatal("corrupted read should fail")
	}
	if !IsCorrupted(err) {
		t.Fatalf("error %v is not classified corrupted", err)
	}
	if !IsRetryable(err) {
		t.Fatalf("mismatch error %v must be transient so upper retries can re-fetch", err)
	}
	s := v.Stats()
	if s.Detected != 3 { // first fetch + 2 heal attempts
		t.Fatalf("Detected = %d, want 3", s.Detected)
	}
	if s.Repaired != 0 {
		t.Fatalf("Repaired = %d, want 0", s.Repaired)
	}

	// Second failing operation crosses QuarantineAfter=2: key quarantined,
	// further reads fail fast with a permanent error.
	if _, err := v.Get(ctx, "k"); err == nil {
		t.Fatal("second corrupted read should fail")
	}
	if !v.Quarantined("k") {
		t.Fatal("key should be quarantined after 2 exhausted operations")
	}
	gets := counting.Snapshot().Gets
	_, err = v.Get(ctx, "k")
	if err == nil || !IsCorrupted(err) || IsRetryable(err) {
		t.Fatalf("quarantined read = %v; want fast permanent corrupted error", err)
	}
	if counting.Snapshot().Gets != gets {
		t.Fatal("quarantined read must not touch the origin")
	}
	if v.Stats().Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1", v.Stats().Quarantined)
	}

	// A rewrite clears the quarantine.
	putObj(t, v, "k", []byte("fresh bytes"))
	if got, err := v.Get(ctx, "k"); err != nil || string(got) != "fresh bytes" {
		t.Fatalf("post-rewrite Get = %q, %v", got, err)
	}
}

func TestVerifyHealsTransientCorruption(t *testing.T) {
	// In-flight corruption (Faulty bit flips) is transient: the re-fetch
	// returns clean bytes and the read succeeds invisibly.
	ctx := context.Background()
	mem := NewMemory()
	payload := bytes.Repeat([]byte{7}, 4<<10)
	putObj(t, mem, "k", payload)

	faulty := NewFaulty(mem, FaultConfig{Seed: 11, CorruptRate: 1, MaxFaults: 1})
	counting := NewCounting(faulty)
	v := NewVerify(counting, VerifyOptions{})
	v.SeedDigest("k", Checksum(payload))

	got, err := v.Get(ctx, "k")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("Get through one bit flip = %d bytes, %v", len(got), err)
	}
	s := v.Stats()
	if s.Detected != 1 || s.Repaired != 1 || s.Quarantined != 0 {
		t.Fatalf("stats = %+v, want 1 detected, 1 repaired", s)
	}
	// Exactly one extra origin request: the heal re-fetch.
	if gets := counting.Snapshot().Gets; gets != 2 {
		t.Fatalf("origin Gets = %d, want 2 (fetch + heal)", gets)
	}
}

func TestVerifyGetRangesHealsVictimOnly(t *testing.T) {
	ctx := context.Background()
	mem := NewMemory()
	var reqs []RangeReq
	digests := map[string]uint32{}
	payloads := map[string][]byte{}
	for _, k := range []string{"a", "b", "c", "d"} {
		data := bytes.Repeat([]byte(k), 2<<10)
		putObj(t, mem, k, data)
		payloads[k] = data
		digests[k] = Checksum(data)
		reqs = append(reqs, RangeReq{Key: k, Offset: 0, Length: -1})
	}

	faulty := NewFaulty(mem, FaultConfig{Seed: 5, CorruptRate: 1, MaxFaults: 1})
	counting := NewCounting(faulty)
	v := NewVerify(counting, VerifyOptions{})
	if n := SeedDigests(v, digests); n != len(digests) {
		t.Fatalf("SeedDigests = %d, want %d", n, len(digests))
	}

	out, err := v.GetRanges(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range reqs {
		if !bytes.Equal(out[i], payloads[r.Key]) {
			t.Fatalf("range %d (%s) not healed", i, r.Key)
		}
	}
	s := v.Stats()
	if s.Detected != 1 || s.Repaired != 1 {
		t.Fatalf("stats = %+v", s)
	}
	// One batched call + one single-key heal Get, not a batch re-issue.
	snap := counting.Snapshot()
	if snap.Gets != 1 {
		t.Fatalf("heal Gets = %d, want exactly 1", snap.Gets)
	}
}

func TestVerifyUnderLRUCoalescesHeal(t *testing.T) {
	// The chain contract: Verify under the LRU singleflight means a
	// corruption on a hot object is healed once by the flight leader, and
	// only verified bytes are admitted to the cache.
	ctx := context.Background()
	mem := NewMemory()
	payload := bytes.Repeat([]byte{3}, 8<<10)
	putObj(t, mem, "hot", payload)

	faulty := NewFaulty(mem, FaultConfig{Seed: 2, CorruptRate: 1, MaxFaults: 1})
	counting := NewCounting(faulty)
	v := NewVerify(counting, VerifyOptions{})
	v.SeedDigest("hot", Checksum(payload))
	cache := NewShardedLRU(v, 1<<20, 1)

	const readers = 16
	errs := make(chan error, readers)
	for i := 0; i < readers; i++ {
		go func() {
			data, err := cache.Get(ctx, "hot")
			if err == nil && !bytes.Equal(data, payload) {
				err = errors.New("reader got wrong bytes")
			}
			errs <- err
		}()
	}
	for i := 0; i < readers; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	stats := cache.Stats()
	if stats.CorruptionsDetected != 1 || stats.CorruptionsRepaired != 1 {
		t.Fatalf("cache stats: detected=%d repaired=%d, want 1/1",
			stats.CorruptionsDetected, stats.CorruptionsRepaired)
	}
	// 16 readers, 1 corruption: exactly 2 origin Gets (fetch + heal).
	if gets := counting.Snapshot().Gets; gets != 2 {
		t.Fatalf("origin Gets = %d, want 2", gets)
	}
	// The cached copy is the verified one.
	if data, err := cache.Get(ctx, "hot"); err != nil || !bytes.Equal(data, payload) {
		t.Fatalf("cached read = %d bytes, %v", len(data), err)
	}
}

func TestFaultyTruncateIsCaughtByVerify(t *testing.T) {
	ctx := context.Background()
	mem := NewMemory()
	payload := bytes.Repeat([]byte{9}, 4<<10)
	putObj(t, mem, "k", payload)

	faulty := NewFaulty(mem, FaultConfig{Seed: 3, TruncateRate: 1, MaxFaults: 1})
	v := NewVerify(faulty, VerifyOptions{})
	v.SeedDigest("k", Checksum(payload))

	got, err := v.Get(ctx, "k")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("Get through truncation = %d bytes, %v", len(got), err)
	}
	fs := faulty.Stats()
	if fs.Truncations != 1 {
		t.Fatalf("Truncations = %d, want 1", fs.Truncations)
	}
	if s := v.Stats(); s.Detected != 1 || s.Repaired != 1 {
		t.Fatalf("verify stats = %+v", s)
	}
}

func TestEvictWalksChain(t *testing.T) {
	ctx := context.Background()
	mem := NewMemory()
	putObj(t, mem, "k", []byte("v1"))
	cache := NewShardedLRU(NewCounting(mem), 1<<20, 1)
	if _, err := cache.Get(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	// Mutate behind the cache; cached copy is now stale/poisoned.
	putObj(t, mem, "k", []byte("v2"))
	if got, _ := cache.Get(ctx, "k"); string(got) != "v1" {
		t.Fatalf("expected stale cached read, got %q", got)
	}
	Evict(cache, "k")
	if got, _ := cache.Get(ctx, "k"); string(got) != "v2" {
		t.Fatalf("post-evict read = %q, want fresh bytes", got)
	}
}
