package storage

import (
	"context"

	"repro/internal/simnet"
)

// Sim wraps a provider with a simulated network cost model, turning an
// in-memory map into "an S3 bucket in us-east". Every operation first pays
// the simnet charge (latency + bandwidth on a bounded lane pool), then
// delegates to the inner provider.
type Sim struct {
	inner Provider
	net   *simnet.Network
}

// NewSim wraps inner with the given cost profile.
func NewSim(inner Provider, profile simnet.Profile) *Sim {
	return &Sim{inner: inner, net: simnet.NewNetwork(profile)}
}

// NewSimObjectStore is the common construction: a fresh in-memory bucket
// behind the given network profile.
func NewSimObjectStore(profile simnet.Profile) *Sim {
	return NewSim(NewMemory(), profile)
}

// Network exposes the underlying transport for traffic statistics.
func (s *Sim) Network() *simnet.Network { return s.net }

// Inner returns the wrapped provider.
func (s *Sim) Inner() Provider { return s.inner }

// Unwrap returns the wrapped provider (the chain-walking alias of Inner).
func (s *Sim) Unwrap() Provider { return s.inner }

// Get implements Provider. Exactly one inner call and one network charge per
// logical request: anything stacked below (fault injection, counting) sees a
// Get as a single origin touch, and the object cannot change between a
// separate size probe and the read.
func (s *Sim) Get(ctx context.Context, key string) ([]byte, error) {
	data, err := s.inner.Get(ctx, key)
	if err != nil {
		// A failed lookup still costs a round trip.
		if nerr := s.net.Read(ctx, 0); nerr != nil {
			return nil, nerr
		}
		return nil, err
	}
	if err := s.net.Read(ctx, len(data)); err != nil {
		return nil, err
	}
	return data, nil
}

// GetRange implements Provider.
func (s *Sim) GetRange(ctx context.Context, key string, offset, length int64) ([]byte, error) {
	data, err := s.inner.GetRange(ctx, key, offset, length)
	if err != nil {
		if nerr := s.net.Read(ctx, 0); nerr != nil {
			return nil, nerr
		}
		return nil, err
	}
	if err := s.net.Read(ctx, len(data)); err != nil {
		return nil, err
	}
	return data, nil
}

// GetRanges implements BatchProvider with batch pricing: the whole batch
// pays ONE round-trip latency plus bandwidth for the total payload, instead
// of one latency charge per range the sequential fallback would cost. This
// is the request-count economics the fetch-plan layer exists for — N chunk
// ranges in one request cost one RTT. A batch that fails partway still pays
// one round trip (latency plus whatever payload did transfer).
func (s *Sim) GetRanges(ctx context.Context, reqs []RangeReq) ([][]byte, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	out, err := GetRanges(ctx, s.inner, reqs)
	total := 0
	for _, data := range out {
		total += len(data)
	}
	if nerr := s.net.Read(ctx, total); nerr != nil && err == nil {
		err = nerr
	}
	return out, err
}

// Put implements Provider.
func (s *Sim) Put(ctx context.Context, key string, data []byte) error {
	if err := s.net.Write(ctx, len(data)); err != nil {
		return err
	}
	return s.inner.Put(ctx, key, data)
}

// Delete implements Provider.
func (s *Sim) Delete(ctx context.Context, key string) error {
	if err := s.net.Write(ctx, 0); err != nil {
		return err
	}
	return s.inner.Delete(ctx, key)
}

// Exists implements Provider.
func (s *Sim) Exists(ctx context.Context, key string) (bool, error) {
	if err := s.net.Read(ctx, 0); err != nil {
		return false, err
	}
	return s.inner.Exists(ctx, key)
}

// List implements Provider. Listing pays one round trip per thousand keys,
// mirroring paginated LIST APIs.
func (s *Sim) List(ctx context.Context, prefix string) ([]string, error) {
	keys, err := s.inner.List(ctx, prefix)
	if err != nil {
		return nil, err
	}
	pages := len(keys)/1000 + 1
	for i := 0; i < pages; i++ {
		if err := s.net.Read(ctx, 0); err != nil {
			return nil, err
		}
	}
	return keys, nil
}

// Size implements Provider. Metadata-only HEAD request: latency, no bytes.
func (s *Sim) Size(ctx context.Context, key string) (int64, error) {
	if err := s.net.Read(ctx, 0); err != nil {
		return 0, err
	}
	return s.inner.Size(ctx, key)
}
