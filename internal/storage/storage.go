// Package storage defines the pluggable storage-provider abstraction from
// §3.6 of the paper. A Deep Lake dataset is a flat namespace of objects
// (chunks, encoders, metadata files) that can live on object storage, a POSIX
// filesystem, or in memory, and providers can be chained — most importantly
// an LRU cache of a remote store backed by local memory.
//
// # Error classification contract
//
// Two predicates classify provider errors across the whole chain:
//
//   - IsNotFound(err): the key does not exist. Permanent; never retried.
//   - IsRetryable(err): a transient origin failure (marked with ErrTransient
//     or an interface{ Transient() bool }) that a Retry wrapper may safely
//     re-attempt. Context errors and ErrNotFound are never retryable.
//
// A third predicate covers silent corruption:
//
//   - IsCorrupted(err): stored bytes failed a CRC32C check against their
//     recorded digest (see Verify). Distinct from both of the above: the key
//     exists and the transport worked, but the bytes are wrong.
//
// Every wrapper in the chain (Prefix, Sim, LRU, Counting, Flaky, Faulty,
// Retry, Verify) must keep these predicates working through it: return inner
// errors unchanged, or wrap them with fmt.Errorf("...: %w", err) so
// errors.Is/As still see the sentinels. A wrapper that flattens an inner
// error into a new string breaks retry classification for everything stacked
// above it. Providers signal a missing key with ErrNotFound (wrapped or
// bare) and mark only genuinely momentary failures transient — never
// validation errors.
//
// # Resilient chain order
//
// The canonical resilient read chain is, outermost first:
//
//	LRU (singleflight + cache) -> Verify -> Retry -> Counting -> Sim/S3 origin
//
// Retry sits below the LRU's singleflight so that when N readers coalesce on
// one miss, a transient origin fault is retried once by the flight leader on
// behalf of all N waiters — one extra origin request total, not N recovery
// storms. Counting placed below Retry observes per-attempt traffic; placed
// above it, logical (net-of-retries) traffic.
//
// # Integrity
//
// Verify sits under the LRU and above Retry: under the LRU so that only
// bytes that passed their digest check are ever admitted to the cache (and
// so a corruption heal, like any miss, runs exactly once for N coalesced
// waiters — the flight leader heals on behalf of all of them); above Retry
// so its own re-fetch of a corrupted object rides the ordinary retry/backoff
// machinery below and is itself shielded from transient faults. A digest
// mismatch that survives the heal budget is reported as an error that is
// both Transient and ErrCorrupted: transient because a re-fetch can
// legitimately return different — correct — bytes (the origin copy may be
// rewritten, the corruption may live in a middlebox), so an upper retry
// layer is allowed to try again; ErrCorrupted so callers and fsck can still
// classify the failure precisely. Keys that keep failing are quarantined and
// fail fast without touching the origin until a Put replaces the object.
package storage

import (
	"context"
	"errors"
	"fmt"
)

// ErrNotFound is returned when a key does not exist in a provider.
var ErrNotFound = errors.New("storage: key not found")

// IsNotFound reports whether err indicates a missing key.
func IsNotFound(err error) bool { return errors.Is(err, ErrNotFound) }

// Provider is the minimal object-store contract the Tensor Storage Format
// needs: whole-object get/put, byte-range get (S3 Range requests power
// sub-chunk streaming, §3.5), existence checks, listing, and delete.
//
// Implementations must be safe for concurrent use.
type Provider interface {
	// Get returns the full object stored under key.
	Get(ctx context.Context, key string) ([]byte, error)
	// GetRange returns length bytes starting at offset. If length is
	// negative, it returns everything from offset to the end. Reads past
	// the end are truncated, mirroring HTTP Range semantics.
	GetRange(ctx context.Context, key string, offset, length int64) ([]byte, error)
	// Put stores data under key, replacing any previous object.
	Put(ctx context.Context, key string, data []byte) error
	// Delete removes key. Deleting a missing key is not an error.
	Delete(ctx context.Context, key string) error
	// Exists reports whether key is present.
	Exists(ctx context.Context, key string) (bool, error)
	// List returns all keys with the given prefix, in lexical order.
	List(ctx context.Context, prefix string) ([]string, error)
	// Size returns the byte length of the object at key.
	Size(ctx context.Context, key string) (int64, error)
}

// clampRange resolves an (offset, length) pair against an object of size n
// using HTTP Range semantics. ok is false when offset is out of bounds.
func clampRange(n int64, offset, length int64) (lo, hi int64, ok bool) {
	if offset < 0 || offset > n {
		return 0, 0, false
	}
	if length < 0 {
		return offset, n, true
	}
	hi = offset + length
	if hi > n {
		hi = n
	}
	return offset, hi, true
}

// rangeErr builds a descriptive out-of-range error.
func rangeErr(key string, offset, length, size int64) error {
	return fmt.Errorf("storage: range [%d, %d+%d) out of bounds for %q (size %d)", offset, offset, length, key, size)
}
