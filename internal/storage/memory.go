package storage

import (
	"context"
	"sort"
	"strings"
	"sync"
)

// Memory is an in-process provider backed by a map. It is the fastest
// backend and the building block for the simulated object stores.
type Memory struct {
	mu      sync.RWMutex
	objects map[string][]byte
}

// NewMemory returns an empty in-memory provider.
func NewMemory() *Memory {
	return &Memory{objects: make(map[string][]byte)}
}

// Get implements Provider.
func (m *Memory) Get(ctx context.Context, key string) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.mu.RLock()
	data, ok := m.objects[key]
	m.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// GetRange implements Provider.
func (m *Memory) GetRange(ctx context.Context, key string, offset, length int64) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.mu.RLock()
	data, ok := m.objects[key]
	m.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound
	}
	lo, hi, ok := clampRange(int64(len(data)), offset, length)
	if !ok {
		return nil, rangeErr(key, offset, length, int64(len(data)))
	}
	out := make([]byte, hi-lo)
	copy(out, data[lo:hi])
	return out, nil
}

// GetRanges implements BatchProvider: requests are served in order with the
// partial-results-on-error contract. Memory has no per-request latency, so
// the batch is purely a contract implementation here; the Sim wrapper above
// it is what turns the batch into one charged round trip.
func (m *Memory) GetRanges(ctx context.Context, reqs []RangeReq) ([][]byte, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	out := make([][]byte, len(reqs))
	for i, r := range reqs {
		var (
			data []byte
			err  error
		)
		if r.whole() {
			data, err = m.Get(ctx, r.Key)
		} else {
			data, err = m.GetRange(ctx, r.Key, r.Offset, r.Length)
		}
		if err != nil {
			return out, err
		}
		out[i] = data
	}
	return out, nil
}

// Put implements Provider.
func (m *Memory) Put(ctx context.Context, key string, data []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	m.mu.Lock()
	m.objects[key] = cp
	m.mu.Unlock()
	return nil
}

// Delete implements Provider.
func (m *Memory) Delete(ctx context.Context, key string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	m.mu.Lock()
	delete(m.objects, key)
	m.mu.Unlock()
	return nil
}

// Exists implements Provider.
func (m *Memory) Exists(ctx context.Context, key string) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	m.mu.RLock()
	_, ok := m.objects[key]
	m.mu.RUnlock()
	return ok, nil
}

// List implements Provider.
func (m *Memory) List(ctx context.Context, prefix string) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.mu.RLock()
	keys := make([]string, 0, len(m.objects))
	for k := range m.objects {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	m.mu.RUnlock()
	sort.Strings(keys)
	return keys, nil
}

// Size implements Provider.
func (m *Memory) Size(ctx context.Context, key string) (int64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	m.mu.RLock()
	data, ok := m.objects[key]
	m.mu.RUnlock()
	if !ok {
		return 0, ErrNotFound
	}
	return int64(len(data)), nil
}

// TotalBytes reports the sum of all object sizes, used by storage-footprint
// ablations.
func (m *Memory) TotalBytes() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var n int64
	for _, v := range m.objects {
		n += int64(len(v))
	}
	return n
}

// Len reports the number of stored objects.
func (m *Memory) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.objects)
}
