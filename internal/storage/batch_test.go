package storage

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/simnet"
)

// --- Coalesce units ---------------------------------------------------------

func TestCoalesceGapTolerance(t *testing.T) {
	reqs := []RangeReq{
		{Key: "a", Offset: 0, Length: 100},
		{Key: "a", Offset: 150, Length: 100}, // gap of 50 to the first
		{Key: "a", Offset: 500, Length: 100}, // gap of 250 to the merged pair
	}

	// Gap 64 bridges the 50-byte hole but not the 250-byte one.
	plans := Coalesce(reqs, PlanOptions{GapTolerance: 64})
	if got := Requests(plans); got != 2 {
		t.Fatalf("gap 64: want 2 wire requests, got %d: %+v", got, plans)
	}
	w := plans[0].Wire[0]
	if w.Offset != 0 || w.Length != 250 {
		t.Fatalf("merged request should over-read [0,250), got offset %d length %d", w.Offset, w.Length)
	}
	// The second original range maps 150 bytes into the merged payload.
	if pt := plans[0].Parts[0][1]; pt.Index != 1 || pt.Offset != 150 || pt.Length != 100 {
		t.Fatalf("part mapping wrong: %+v", pt)
	}

	// Gap 0 merges only touching ranges: all three stay separate.
	if got := Requests(Coalesce(reqs, PlanOptions{GapTolerance: 0})); got != 3 {
		t.Fatalf("gap 0: want 3 wire requests, got %d", got)
	}

	// A big enough tolerance collapses everything into one request.
	plans = Coalesce(reqs, PlanOptions{GapTolerance: 4096})
	if got := Requests(plans); got != 1 {
		t.Fatalf("gap 4096: want 1 wire request, got %d", got)
	}
	if w := plans[0].Wire[0]; w.Offset != 0 || w.Length != 600 {
		t.Fatalf("fully merged request should cover [0,600), got %+v", w)
	}
}

func TestCoalesceNegativeGapDisablesMerging(t *testing.T) {
	reqs := []RangeReq{
		{Key: "a", Offset: 0, Length: 10},
		{Key: "a", Offset: 10, Length: 10}, // touching: would merge at gap 0
		{Key: "a", Offset: 5, Length: 10},  // overlapping: would merge too
	}
	plans := Coalesce(reqs, PlanOptions{GapTolerance: -1})
	if got := Requests(plans); got != 3 {
		t.Fatalf("negative gap tolerance must disable merging: want 3 wire requests, got %d", got)
	}
	// Input order is preserved when merging is off.
	var order []int64
	for _, p := range plans {
		for _, w := range p.Wire {
			order = append(order, w.Offset)
		}
	}
	if !reflect.DeepEqual(order, []int64{0, 10, 5}) {
		t.Fatalf("unmerged requests out of order: %v", order)
	}
}

func TestCoalesceWholeObjectSubsumes(t *testing.T) {
	reqs := []RangeReq{
		{Key: "a", Offset: 100, Length: 50},
		{Key: "a", Offset: 0, Length: -1}, // whole object
		{Key: "a", Offset: 9000, Length: 50},
	}
	plans := Coalesce(reqs, PlanOptions{GapTolerance: 0})
	if got := Requests(plans); got != 1 {
		t.Fatalf("whole-object request must subsume sibling ranges: want 1 wire request, got %d", got)
	}
	w := plans[0].Wire[0]
	if !w.whole() {
		t.Fatalf("surviving wire request should be whole-object, got %+v", w)
	}
	parts := plans[0].Parts[0]
	if len(parts) != 3 {
		t.Fatalf("want 3 parts on the whole-object request, got %+v", parts)
	}
	for _, pt := range parts {
		switch pt.Index {
		case 0:
			if pt.Offset != 100 || pt.Length != 50 {
				t.Fatalf("part 0 mapping wrong: %+v", pt)
			}
		case 1:
			if pt.Offset != 0 || pt.Length != -1 {
				t.Fatalf("part 1 mapping wrong: %+v", pt)
			}
		case 2:
			if pt.Offset != 9000 || pt.Length != 50 {
				t.Fatalf("part 2 mapping wrong: %+v", pt)
			}
		}
	}
}

func TestCoalesceMaxRequestBytesPacking(t *testing.T) {
	// Six distinct objects at 10 bytes each, cap 25: greedy in-order packing
	// yields ceil(60/25)=3 round trips of at most 2 requests... actually
	// 2+2+2: batches close when the next range would overflow.
	var reqs []RangeReq
	for i := 0; i < 6; i++ {
		reqs = append(reqs, RangeReq{Key: fmt.Sprintf("k%d", i), Offset: 0, Length: 10})
	}
	plans := Coalesce(reqs, PlanOptions{MaxRequestBytes: 25})
	if len(plans) != 3 {
		t.Fatalf("cap 25 over 6x10B: want 3 plans, got %d: %+v", len(plans), plans)
	}
	for i, p := range plans {
		if len(p.Wire) != 2 {
			t.Fatalf("plan %d: want 2 wire requests, got %d", i, len(p.Wire))
		}
	}

	// Whole-object requests are estimated at SizeHint for packing.
	whole := []RangeReq{
		{Key: "a", Offset: 0, Length: -1},
		{Key: "b", Offset: 0, Length: -1},
		{Key: "c", Offset: 0, Length: -1},
	}
	plans = Coalesce(whole, PlanOptions{MaxRequestBytes: 100, SizeHint: 60})
	if len(plans) != 3 {
		t.Fatalf("size-hint 60 under cap 100: want 3 single-request plans, got %d", len(plans))
	}
	plans = Coalesce(whole, PlanOptions{MaxRequestBytes: 150, SizeHint: 60})
	if len(plans) != 2 {
		t.Fatalf("size-hint 60 under cap 150: want 2 plans (2+1), got %d", len(plans))
	}
	plans = Coalesce(whole, PlanOptions{MaxRequestBytes: 200, SizeHint: 60})
	if len(plans) != 1 {
		t.Fatalf("size-hint 60 under cap 200: all 3 fit one plan, got %d", len(plans))
	}

	// A single oversized range still travels (one request per plan) instead
	// of being dropped.
	big := []RangeReq{{Key: "x", Offset: 0, Length: 1 << 30}}
	plans = Coalesce(big, PlanOptions{MaxRequestBytes: 1024})
	if len(plans) != 1 || len(plans[0].Wire) != 1 {
		t.Fatalf("oversized single range must form its own plan, got %+v", plans)
	}
}

// --- ExecutePlans ------------------------------------------------------------

func TestExecutePlansScatter(t *testing.T) {
	ctx := context.Background()
	mem := NewMemory()
	payload := make([]byte, 1000)
	for i := range payload {
		payload[i] = byte(i % 251)
	}
	if err := mem.Put(ctx, "obj", payload); err != nil {
		t.Fatal(err)
	}
	reqs := []RangeReq{
		{Key: "obj", Offset: 0, Length: 100},
		{Key: "obj", Offset: 120, Length: 80}, // merges with gap tolerance
		{Key: "obj", Offset: 900, Length: -1}, // tail read, separate
	}
	plans := Coalesce(reqs, PlanOptions{GapTolerance: 64})
	if got := Requests(plans); got != 2 {
		t.Fatalf("want 2 wire requests, got %d", got)
	}
	out, err := ExecutePlans(ctx, mem, len(reqs), plans)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{payload[0:100], payload[120:200], payload[900:]}
	for i := range want {
		if !bytes.Equal(out[i], want[i]) {
			t.Fatalf("request %d: scattered payload mismatch (%d vs %d bytes)", i, len(out[i]), len(want[i]))
		}
	}
}

// failKeyProvider fails any batch that contains the poisoned key, serving
// requests before it per the partial-results contract.
type failKeyProvider struct {
	*Memory
	failKey string
}

func (p *failKeyProvider) GetRanges(ctx context.Context, reqs []RangeReq) ([][]byte, error) {
	out := make([][]byte, len(reqs))
	for i, r := range reqs {
		if r.Key == p.failKey {
			return out, fmt.Errorf("boom on %q: %w", r.Key, ErrTransient)
		}
		data, err := GetRanges(ctx, p.Memory, []RangeReq{r})
		if err != nil {
			return out, err
		}
		out[i] = data[0]
	}
	return out, nil
}

func TestExecutePlansPartialFailure(t *testing.T) {
	ctx := context.Background()
	mem := NewMemory()
	for _, k := range []string{"a", "b", "c", "d"} {
		if err := mem.Put(ctx, k, []byte("data-"+k)); err != nil {
			t.Fatal(err)
		}
	}
	origin := &failKeyProvider{Memory: mem, failKey: "c"}
	reqs := []RangeReq{
		{Key: "a", Offset: 0, Length: -1},
		{Key: "b", Offset: 0, Length: -1},
		{Key: "c", Offset: 0, Length: -1},
		{Key: "d", Offset: 0, Length: -1},
	}
	// SizeHint 10 under cap 20 -> plans of 2: {a,b} and {c,d}. The second
	// plan fails on "c" before reaching "d"; the first must still be served.
	plans := Coalesce(reqs, PlanOptions{MaxRequestBytes: 20, SizeHint: 10})
	if len(plans) != 2 {
		t.Fatalf("want 2 plans, got %d", len(plans))
	}
	out, err := ExecutePlans(ctx, origin, len(reqs), plans)
	if err == nil {
		t.Fatal("want the failed plan's error")
	}
	if !IsRetryable(err) {
		t.Fatalf("plan error should stay transient through ExecutePlans: %v", err)
	}
	if string(out[0]) != "data-a" || string(out[1]) != "data-b" {
		t.Fatalf("sibling plan's results lost: %q %q", out[0], out[1])
	}
	if out[2] != nil || out[3] != nil {
		t.Fatalf("unserved entries must stay nil, got %q %q", out[2], out[3])
	}
}

// --- LRU prefetch ------------------------------------------------------------

func TestLRUPrefetchSkipsCachedKeys(t *testing.T) {
	ctx := context.Background()
	counting := NewCounting(NewMemory())
	lru := NewLRU(counting, 1<<20)
	keys := make([]string, 8)
	for i := range keys {
		keys[i] = fmt.Sprintf("chunk/%03d", i)
		if err := counting.Put(ctx, keys[i], bytes.Repeat([]byte{byte(i)}, 64)); err != nil {
			t.Fatal(err)
		}
	}
	// Warm two keys through the cache the on-demand way.
	for _, k := range keys[:2] {
		if _, err := lru.Get(ctx, k); err != nil {
			t.Fatal(err)
		}
	}
	counting.Reset()

	// SizeHint matches the object size so all 6 whole-object requests pack
	// into one round trip under the default request cap.
	fetched, err := lru.Prefetch(ctx, keys, PlanOptions{SizeHint: 64})
	if err != nil {
		t.Fatal(err)
	}
	if fetched != 6 {
		t.Fatalf("want 6 fetched (2 cached skipped), got %d", fetched)
	}
	snap := counting.Snapshot()
	if snap.BatchGets != 1 {
		t.Fatalf("6 small objects should coalesce into 1 batched get, got %d", snap.BatchGets)
	}
	if snap.Gets != 0 || snap.RangeGets != 0 {
		t.Fatalf("prefetch must not issue per-object requests: %+v", snap)
	}
	if got := lru.Stats().Prefetched; got != 6 {
		t.Fatalf("Stats().Prefetched = %d, want 6", got)
	}

	// Everything is cached now: a second prefetch touches no wire at all.
	counting.Reset()
	fetched, err = lru.Prefetch(ctx, keys, PlanOptions{})
	if err != nil || fetched != 0 {
		t.Fatalf("second prefetch: fetched %d err %v, want 0 nil", fetched, err)
	}
	if reqs := counting.Snapshot().Requests(); reqs != 0 {
		t.Fatalf("second prefetch issued %d origin requests", reqs)
	}
	for i, k := range keys {
		data, err := lru.Get(ctx, k)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, bytes.Repeat([]byte{byte(i)}, 64)) {
			t.Fatalf("cached payload for %q corrupted after admit-copy", k)
		}
	}
	if reqs := counting.Snapshot().Requests(); reqs != 0 {
		t.Fatalf("reads after prefetch reached the origin %d times", reqs)
	}
}

// gatedProvider blocks GetRanges until released, so a test can hold a
// prefetch batch in flight deterministically.
type gatedProvider struct {
	*Memory
	gate chan struct{}
}

func (p *gatedProvider) GetRanges(ctx context.Context, reqs []RangeReq) ([][]byte, error) {
	select {
	case <-p.gate:
	case <-ctx.Done():
		return make([][]byte, len(reqs)), ctx.Err()
	}
	return p.Memory.GetRanges(ctx, reqs)
}

func TestLRUPrefetchSkipsInflightKeys(t *testing.T) {
	ctx := context.Background()
	mem := NewMemory()
	origin := &gatedProvider{Memory: mem, gate: make(chan struct{})}
	lru := NewLRU(origin, 1<<20)
	keys := []string{"a", "b", "c"}
	for _, k := range keys {
		if err := mem.Put(ctx, k, []byte("v-"+k)); err != nil {
			t.Fatal(err)
		}
	}
	// PrefetchAsync claims leadership synchronously before its round trips
	// run (they are parked on the gate).
	if claimed := lru.PrefetchAsync(ctx, keys, PlanOptions{}); claimed != 3 {
		t.Fatalf("async claim: want 3, got %d", claimed)
	}
	// A competing blocking prefetch finds every key already in flight.
	fetched, err := lru.Prefetch(ctx, keys, PlanOptions{})
	if err != nil || fetched != 0 {
		t.Fatalf("competing prefetch: fetched %d err %v, want 0 nil", fetched, err)
	}
	// A reader issued now coalesces onto the in-flight batch and gets its
	// bytes once the gate opens.
	got := make(chan error, 1)
	go func() {
		data, err := lru.Get(ctx, "b")
		if err == nil && string(data) != "v-b" {
			err = fmt.Errorf("wrong payload %q", data)
		}
		got <- err
	}()
	close(origin.gate)
	if err := <-got; err != nil {
		t.Fatal(err)
	}
}

// shedProvider fails every batched get outright (nothing served) but serves
// plain Gets, modelling a prefetch round trip dying while on-demand reads
// still work.
type shedProvider struct {
	*Memory
	batchFails bool
	mu         sync.Mutex
	gets       int
}

func (p *shedProvider) GetRanges(ctx context.Context, reqs []RangeReq) ([][]byte, error) {
	if p.batchFails {
		return make([][]byte, len(reqs)), fmt.Errorf("batch lost: %w", ErrTransient)
	}
	return p.Memory.GetRanges(ctx, reqs)
}

func (p *shedProvider) Get(ctx context.Context, key string) ([]byte, error) {
	p.mu.Lock()
	p.gets++
	p.mu.Unlock()
	return p.Memory.Get(ctx, key)
}

func TestLRUPrefetchShedReadersRecover(t *testing.T) {
	ctx := context.Background()
	mem := NewMemory()
	origin := &shedProvider{Memory: mem, batchFails: true}
	lru := NewLRU(origin, 1<<20)
	keys := []string{"a", "b"}
	for _, k := range keys {
		if err := mem.Put(ctx, k, []byte("v-"+k)); err != nil {
			t.Fatal(err)
		}
	}
	fetched, err := lru.Prefetch(ctx, keys, PlanOptions{})
	if err == nil {
		t.Fatal("want the batch failure surfaced")
	}
	if fetched != 0 {
		t.Fatalf("nothing landed, yet fetched = %d", fetched)
	}
	// The degradation is visible in the cache stats, one count per shed key.
	if shed := lru.Stats().PrefetchShed; shed != int64(len(keys)) {
		t.Fatalf("Stats().PrefetchShed = %d, want %d", shed, len(keys))
	}
	// The flights were completed with errPrefetchShed, not left dangling:
	// readers issue their own fetch and succeed.
	for _, k := range keys {
		data, err := lru.Get(ctx, k)
		if err != nil {
			t.Fatalf("reader after shed prefetch: %v", err)
		}
		if string(data) != "v-"+k {
			t.Fatalf("reader got %q", data)
		}
	}
	if origin.gets != 2 {
		t.Fatalf("readers should have fallen back to 2 on-demand Gets, saw %d", origin.gets)
	}
}

// --- Sim batch pricing -------------------------------------------------------

func TestSimBatchedGetCostsOneRoundTrip(t *testing.T) {
	ctx := context.Background()
	fast := simnet.Profile{Name: "fast", Lanes: 16, TimeScale: 1e9,
		ReadBytesPerSec: 1e12, WriteBytesPerSec: 1e12}
	sim := NewSim(NewMemory(), fast)
	const n = 16
	var reqs []RangeReq
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("k%02d", i)
		if err := sim.Put(ctx, k, bytes.Repeat([]byte{byte(i)}, 128)); err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, RangeReq{Key: k, Offset: 0, Length: -1})
	}
	base, _, _, _ := sim.Network().Stats()

	out, err := sim.GetRanges(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, data := range out {
		if len(data) != 128 || data[0] != byte(i) {
			t.Fatalf("range %d payload wrong", i)
		}
	}
	afterBatch, batchBytes, _, _ := sim.Network().Stats()
	if afterBatch-base != 1 {
		t.Fatalf("a %d-range batch must pay exactly 1 simulated request, paid %d", n, afterBatch-base)
	}
	if batchBytes < int64(n*128) {
		t.Fatalf("batch must pay bandwidth for the full payload, charged %d bytes", batchBytes)
	}

	// The same reads issued individually pay n requests.
	for i := 0; i < n; i++ {
		if _, err := sim.Get(ctx, fmt.Sprintf("k%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	afterSingles, _, _, _ := sim.Network().Stats()
	if afterSingles-afterBatch != n {
		t.Fatalf("%d individual gets must pay %d requests, paid %d", n, n, afterSingles-afterBatch)
	}
}

func TestCountingBatchCounters(t *testing.T) {
	ctx := context.Background()
	c := NewCounting(NewMemory())
	for _, k := range []string{"a", "b", "c"} {
		if err := c.Put(ctx, k, []byte("xyz")); err != nil {
			t.Fatal(err)
		}
	}
	c.Reset()
	reqs := []RangeReq{
		{Key: "a", Offset: 0, Length: -1},
		{Key: "b", Offset: 0, Length: 2},
		{Key: "c", Offset: 1, Length: 2},
	}
	if _, err := c.GetRanges(ctx, reqs); err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()
	if snap.BatchGets != 1 {
		t.Fatalf("BatchGets = %d, want 1", snap.BatchGets)
	}
	if snap.BatchRanges != 3 {
		t.Fatalf("BatchRanges = %d, want 3", snap.BatchRanges)
	}
	if snap.Gets != 0 || snap.RangeGets != 0 {
		t.Fatalf("batched get must not count as per-object ops: %+v", snap)
	}
	if snap.Requests() != 1 {
		t.Fatalf("Requests() = %d, want 1 (batch is one round trip)", snap.Requests())
	}
}

// --- Retry over batched gets -------------------------------------------------

func TestRetryGetRangesReissuesOnlyMissing(t *testing.T) {
	ctx := context.Background()
	mem := NewMemory()
	const n = 8
	var reqs []RangeReq
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("k%d", i)
		if err := mem.Put(ctx, k, []byte("v-"+k)); err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, RangeReq{Key: k, Offset: 0, Length: -1})
	}
	// Exactly one injected fault on the first batched get, then transparent:
	// the ISSUE's litmus — one fault inside a coalesced request costs exactly
	// one extra origin round trip.
	faulty := NewFaulty(mem, FaultConfig{Seed: 7, GetErrRate: 1, MaxFaults: 1})
	counting := NewCounting(faulty)
	retry := NewRetry(counting, RetryOptions{Attempts: 3})

	out, err := retry.GetRanges(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, data := range out {
		if string(data) != "v-"+reqs[i].Key {
			t.Fatalf("range %d: got %q", i, data)
		}
	}
	if got := faulty.Stats().Total(); got != 1 {
		t.Fatalf("want exactly 1 injected fault, got %d", got)
	}
	snap := counting.Snapshot()
	if snap.BatchGets != 2 {
		t.Fatalf("one mid-batch fault must cost exactly one extra batched request: BatchGets = %d, want 2", snap.BatchGets)
	}
	// The re-issue carries only the missing tail: total ranges on the wire
	// stay under 2n (a full resend).
	if snap.BatchRanges >= 2*n {
		t.Fatalf("retry resent already-received ranges: %d wire ranges for %d requests", snap.BatchRanges, n)
	}
	if snap.BatchRanges < n {
		t.Fatalf("wire ranges %d cannot be below the request count %d", snap.BatchRanges, n)
	}
	if got := retry.Stats().Retries; got != 1 {
		t.Fatalf("Retries = %d, want 1", got)
	}
}

// --- Faulty batched-get schedule ---------------------------------------------

// faultTrace records one GetRanges outcome for reproducibility comparison.
type faultTrace struct {
	served  int
	nilTail int
	failed  bool
}

func runFaultySchedule(t *testing.T, seed int64) []faultTrace {
	t.Helper()
	ctx := context.Background()
	mem := NewMemory()
	const n = 6
	var reqs []RangeReq
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("k%d", i)
		if err := mem.Put(ctx, k, bytes.Repeat([]byte{byte('A' + i)}, 32)); err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, RangeReq{Key: k, Offset: 0, Length: -1})
	}
	f := NewFaulty(mem, FaultConfig{Seed: seed, GetErrRate: 0.5})
	var trace []faultTrace
	for call := 0; call < 20; call++ {
		out, err := f.GetRanges(ctx, reqs)
		tr := faultTrace{failed: err != nil}
		// Count the served prefix and verify the partial-results contract:
		// non-nil entries form a prefix, every non-nil entry carries the
		// right bytes, and everything after the cut is nil.
		cut := len(out)
		for i, data := range out {
			if data == nil {
				cut = i
				break
			}
			if want := bytes.Repeat([]byte{byte('A' + i)}, 32); !bytes.Equal(data, want) {
				t.Fatalf("call %d: served sibling %d poisoned by mid-batch fault", call, i)
			}
		}
		tr.served = cut
		for i := cut; i < len(out); i++ {
			if out[i] != nil {
				t.Fatalf("call %d: non-nil entry %d after the cut at %d", call, i, cut)
			}
			tr.nilTail++
		}
		if err == nil && tr.served != n {
			t.Fatalf("call %d: clean call served only %d/%d", call, tr.served, n)
		}
		if err != nil && !IsRetryable(err) {
			t.Fatalf("call %d: injected batch fault must stay transient: %v", call, err)
		}
		trace = append(trace, tr)
	}
	if f.Stats().Total() == 0 {
		t.Fatalf("seed %d injected no faults over 20 calls at rate 0.5", seed)
	}
	return trace
}

func TestFaultyBatchedGetSeededReproducibility(t *testing.T) {
	a := runFaultySchedule(t, 42)
	b := runFaultySchedule(t, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different fault schedule:\n%+v\n%+v", a, b)
	}
	c := runFaultySchedule(t, 43)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules (suspicious hash)")
	}
}
