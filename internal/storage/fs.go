package storage

import (
	"context"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// FS is a provider rooted at a directory of a POSIX filesystem. Keys map to
// file paths under the root; slashes in keys become directories.
type FS struct {
	root string
}

// NewFS creates (if needed) and opens a filesystem provider rooted at dir.
func NewFS(dir string) (*FS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return &FS{root: abs}, nil
}

// Root returns the absolute directory backing this provider.
func (f *FS) Root() string { return f.root }

func (f *FS) path(key string) string {
	return filepath.Join(f.root, filepath.FromSlash(key))
}

// Get implements Provider.
func (f *FS) Get(ctx context.Context, key string) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(f.path(key))
	if os.IsNotExist(err) {
		return nil, ErrNotFound
	}
	return data, err
}

// GetRange implements Provider.
func (f *FS) GetRange(ctx context.Context, key string, offset, length int64) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	file, err := os.Open(f.path(key))
	if os.IsNotExist(err) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, err
	}
	defer file.Close()
	info, err := file.Stat()
	if err != nil {
		return nil, err
	}
	lo, hi, ok := clampRange(info.Size(), offset, length)
	if !ok {
		return nil, rangeErr(key, offset, length, info.Size())
	}
	out := make([]byte, hi-lo)
	if _, err := file.ReadAt(out, lo); err != nil && err != io.EOF {
		return nil, err
	}
	return out, nil
}

// Put implements Provider. The write is atomic AND durable: data lands in a
// temp file that is fsynced, renamed over the destination, and sealed with
// an fsync of the parent directory — so concurrent readers never observe a
// torn object, and a power cut after Put returns cannot roll the rename
// back or resurface a half-written file. The directory fsync is what makes
// the rename a real publish point: without it the staged-root commit
// protocol's "atomic publish" (core.persistRoot) could tear on crash, with
// dataset.json pointing at a generation whose rename never hit the disk.
// Every failure path removes the temp file, so no .tmp-* residue outlives a
// failed Put.
func (f *FS) Put(ctx context.Context, key string, data []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	dst := f.path(key)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(dst), ".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, dst); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(filepath.Dir(dst))
}

// syncDir fsyncs a directory so a completed rename inside it survives a
// power cut. Filesystems that refuse to fsync directories (some network
// mounts) degrade to the pre-fsync behavior rather than failing the write.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}

// Delete implements Provider.
func (f *FS) Delete(ctx context.Context, key string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	err := os.Remove(f.path(key))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// Exists implements Provider.
func (f *FS) Exists(ctx context.Context, key string) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	_, err := os.Stat(f.path(key))
	if os.IsNotExist(err) {
		return false, nil
	}
	return err == nil, err
}

// List implements Provider.
func (f *FS) List(ctx context.Context, prefix string) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var keys []string
	err := filepath.WalkDir(f.root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		rel, err := filepath.Rel(f.root, path)
		if err != nil {
			return err
		}
		key := filepath.ToSlash(rel)
		if strings.HasPrefix(key, prefix) && !strings.HasPrefix(filepath.Base(key), ".tmp-") {
			keys = append(keys, key)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(keys)
	return keys, nil
}

// Size implements Provider.
func (f *FS) Size(ctx context.Context, key string) (int64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	info, err := os.Stat(f.path(key))
	if os.IsNotExist(err) {
		return 0, ErrNotFound
	}
	if err != nil {
		return 0, err
	}
	return info.Size(), nil
}
