package storage

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestIsRetryableClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"canceled", context.Canceled, false},
		{"deadline", context.DeadlineExceeded, false},
		{"not-found", ErrNotFound, false},
		{"wrapped-not-found", fmt.Errorf("layer: %w", ErrNotFound), false},
		{"transient", Transient(errors.New("boom")), true},
		{"wrapped-transient", fmt.Errorf("layer: %w", Transient(errors.New("boom"))), true},
		{"bare-sentinel", ErrTransient, true},
		{"plain", errors.New("boom"), false},
		// A transient marker wrapping a context error: the context error
		// wins — the caller gave up, retrying is never allowed.
		{"transient-canceled", Transient(context.Canceled), false},
	}
	for _, tc := range cases {
		if got := IsRetryable(tc.err); got != tc.want {
			t.Errorf("IsRetryable(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestTransientPreservesCause(t *testing.T) {
	cause := errors.New("root cause")
	err := fmt.Errorf("wrapper: %w", Transient(cause))
	if !errors.Is(err, cause) {
		t.Fatal("Transient must keep the cause visible to errors.Is")
	}
	if Transient(nil) != nil {
		t.Fatal("Transient(nil) must be nil")
	}
}

func TestBackoffDeterministicAndCapped(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Seed: 7}
	for attempt := 1; attempt <= 12; attempt++ {
		d1, d2 := b.Delay(attempt), b.Delay(attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: delay not deterministic (%v vs %v)", attempt, d1, d2)
		}
		// Jitter keeps the delay in [cap/2, cap) of the exponential step.
		step := 10 * time.Millisecond << (attempt - 1)
		if step > 80*time.Millisecond || step <= 0 {
			step = 80 * time.Millisecond
		}
		if d1 < step/2 || d1 >= step {
			t.Fatalf("attempt %d: delay %v outside [%v, %v)", attempt, d1, step/2, step)
		}
	}
	if d := (Backoff{Seed: 1}).Delay(1); d <= 0 || d >= 10*time.Millisecond {
		t.Fatalf("default backoff delay = %v, want in (0, 10ms)", d)
	}
	// Different seeds de-synchronize.
	if (Backoff{Seed: 1}).Delay(3) == (Backoff{Seed: 2}).Delay(3) {
		t.Fatal("different seeds produced identical jitter")
	}
}

func TestRetryRecoversTransientFaults(t *testing.T) {
	ctx := context.Background()
	mem := NewMemory()
	if err := mem.Put(ctx, "k", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	// Every 2nd read-path op fails transiently: each logical Get needs one
	// retry, and the Retry layer must hide all of it.
	flaky := NewFlaky(mem, 2, Transient(errors.New("injected")))
	r := NewRetry(flaky, RetryOptions{Attempts: 3, Backoff: Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond}})
	for i := 0; i < 8; i++ {
		data, err := r.Get(ctx, "k")
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if !bytes.Equal(data, []byte("payload")) {
			t.Fatalf("get %d: wrong bytes %q", i, data)
		}
	}
	st := r.Stats()
	if st.Retries == 0 {
		t.Fatal("no retries recorded despite injected faults")
	}
	if st.Exhausted != 0 {
		t.Fatalf("exhausted = %d, want 0", st.Exhausted)
	}
}

func TestRetryNeverRetriesNotFound(t *testing.T) {
	ctx := context.Background()
	counting := NewCounting(NewMemory())
	r := NewRetry(counting, RetryOptions{Attempts: 5})
	if _, err := r.Get(ctx, "missing"); !IsNotFound(err) {
		t.Fatalf("err = %v, want not-found", err)
	}
	if gets := counting.Snapshot().Gets; gets != 1 {
		t.Fatalf("missing key cost %d attempts, want 1 (never retry a stable fact)", gets)
	}
}

func TestRetryExhaustionPreservesClassification(t *testing.T) {
	ctx := context.Background()
	faulty := NewFaulty(NewMemory(), FaultConfig{GetErrRate: 1})
	r := NewRetry(faulty, RetryOptions{Attempts: 3, Backoff: Backoff{Base: time.Microsecond, Max: time.Microsecond}})
	_, err := r.Get(ctx, "k")
	if err == nil {
		t.Fatal("want error after exhausting attempts")
	}
	if !IsRetryable(err) {
		t.Fatal("exhaustion error must keep the transient marker for outer layers")
	}
	if st := r.Stats(); st.Exhausted != 1 || st.Attempts != 3 {
		t.Fatalf("stats = %+v, want 1 exhausted over 3 attempts", st)
	}
}

func TestRetryOpTimeoutResolvesStalls(t *testing.T) {
	ctx := context.Background()
	mem := NewMemory()
	if err := mem.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// One stall (MaxFaults 1): the first attempt black-holes until the
	// per-op timeout, the second passes.
	faulty := NewFaulty(mem, FaultConfig{StallRate: 1, MaxFaults: 1})
	r := NewRetry(faulty, RetryOptions{
		Attempts:  3,
		OpTimeout: 20 * time.Millisecond,
		Backoff:   Backoff{Base: time.Millisecond, Max: time.Millisecond},
	})
	start := time.Now()
	data, err := r.Get(ctx, "k")
	if err != nil {
		t.Fatalf("stall not recovered: %v", err)
	}
	if string(data) != "v" {
		t.Fatalf("bytes = %q", data)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("recovered in %v, faster than the stall timeout — stall never happened", elapsed)
	}
	if r.Stats().Retries != 1 {
		t.Fatalf("retries = %d, want 1", r.Stats().Retries)
	}
}

func TestRetryHonorsCallerDeadline(t *testing.T) {
	// The caller's own deadline expiring must not be retried, even though
	// the failure is a DeadlineExceeded.
	faulty := NewFaulty(NewMemory(), FaultConfig{StallRate: 1})
	r := NewRetry(faulty, RetryOptions{Attempts: 5})
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	_, err := r.Get(ctx, "k")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want caller deadline", err)
	}
	if st := r.Stats(); st.Attempts != 1 {
		t.Fatalf("caller deadline cost %d attempts, want 1 (never retry on a dead caller's behalf)", st.Attempts)
	}
}

func TestRetryCancelDuringBackoffReturnsPromptly(t *testing.T) {
	faulty := NewFaulty(NewMemory(), FaultConfig{GetErrRate: 1})
	r := NewRetry(faulty, RetryOptions{
		Attempts: 2,
		Backoff:  Backoff{Base: 10 * time.Second, Max: 10 * time.Second},
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := r.Get(ctx, "k")
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the first attempt fail and enter backoff
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("cancel did not abort the 10s backoff wait")
	}
}

func TestRetryBudgetDegradesToFailFast(t *testing.T) {
	ctx := context.Background()
	faulty := NewFaulty(NewMemory(), FaultConfig{GetErrRate: 1})
	r := NewRetry(faulty, RetryOptions{
		Attempts: 4, Budget: 2,
		Backoff: Backoff{Base: time.Microsecond, Max: time.Microsecond},
	})
	// First op burns the 2-retry budget (3 attempts, then exhausted at 4).
	// Later ops fail on their first attempt without multiplying traffic.
	for i := 0; i < 3; i++ {
		if _, err := r.Get(ctx, "k"); err == nil {
			t.Fatalf("get %d: want error", i)
		}
	}
	st := r.Stats()
	if st.Retries != 2 {
		t.Fatalf("retries = %d, want exactly the budget of 2", st.Retries)
	}
	if st.BudgetDenied == 0 {
		t.Fatal("no budget denials recorded")
	}
}

// TestSingleflightRetryNoFanout is the resilience layer's core ordering
// contract under -race: with Retry stacked below the LRU's singleflight, one
// transient fault on a hot chunk is recovered once by the flight leader —
// none of the coalesced waiters observe an error, and the origin sees
// exactly two Gets (the fault and the retry), never N recovery attempts.
func TestSingleflightRetryNoFanout(t *testing.T) {
	ctx := context.Background()
	mem := NewMemory()
	payload := bytes.Repeat([]byte{0x5A}, 1<<16)
	if err := mem.Put(ctx, "hot", payload); err != nil {
		t.Fatal(err)
	}
	faulty := NewFaulty(mem, FaultConfig{Seed: 42, GetErrRate: 1, MaxFaults: 1})
	counting := NewCounting(faulty)
	retry := NewRetry(counting, RetryOptions{Attempts: 4, Backoff: Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond}})
	cache := NewLRU(retry, 1<<20)

	const waiters = 24
	var wg sync.WaitGroup
	errs := make([]error, waiters)
	gate := make(chan struct{})
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-gate
			data, err := cache.Get(ctx, "hot")
			if err == nil && !bytes.Equal(data, payload) {
				err = errors.New("corrupted bytes")
			}
			errs[i] = err
		}(i)
	}
	close(gate)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("waiter %d saw the fault through singleflight+retry: %v", i, err)
		}
	}
	if gets := counting.Snapshot().Gets; gets != 2 {
		t.Fatalf("origin saw %d Gets, want exactly 2 (fault + one shared retry)", gets)
	}
	stats := cache.Stats()
	if stats.Retries != 1 || stats.Faults != 1 {
		t.Fatalf("cache stats = %d retries / %d faults, want 1/1 (chain-walk accounting)", stats.Retries, stats.Faults)
	}
}

// TestRetryClassificationSurvivesWrappers asserts the package's error
// contract end to end: transient and not-found classifications pass through
// Prefix and Counting unchanged, so a Retry stacked anywhere above still
// classifies correctly.
func TestRetryClassificationSurvivesWrappers(t *testing.T) {
	ctx := context.Background()
	faulty := NewFaulty(NewMemory(), FaultConfig{GetErrRate: 1, MaxFaults: 1})
	chain := NewCounting(NewPrefix(faulty, "ds/"))
	_, err := chain.Get(ctx, "k")
	if !IsRetryable(err) {
		t.Fatalf("transient marker lost through Prefix+Counting: %v", err)
	}
	_, err = chain.Get(ctx, "k") // fault budget spent; now a clean miss
	if !IsNotFound(err) || IsRetryable(err) {
		t.Fatalf("not-found misclassified through the chain: %v", err)
	}
}
